# Empty dependencies file for bench_fig02_old_vs_new.
# This may be replaced when dependencies are built.
