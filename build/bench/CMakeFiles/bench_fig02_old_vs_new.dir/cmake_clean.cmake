file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_old_vs_new.dir/bench_fig02_old_vs_new.cpp.o"
  "CMakeFiles/bench_fig02_old_vs_new.dir/bench_fig02_old_vs_new.cpp.o.d"
  "bench_fig02_old_vs_new"
  "bench_fig02_old_vs_new.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_old_vs_new.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
