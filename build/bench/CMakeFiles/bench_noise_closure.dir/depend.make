# Empty dependencies file for bench_noise_closure.
# This may be replaced when dependencies are built.
