file(REMOVE_RECURSE
  "CMakeFiles/bench_noise_closure.dir/bench_noise_closure.cpp.o"
  "CMakeFiles/bench_noise_closure.dir/bench_noise_closure.cpp.o.d"
  "bench_noise_closure"
  "bench_noise_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noise_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
