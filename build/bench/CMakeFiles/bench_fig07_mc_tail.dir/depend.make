# Empty dependencies file for bench_fig07_mc_tail.
# This may be replaced when dependencies are built.
