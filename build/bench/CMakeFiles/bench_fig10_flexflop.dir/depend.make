# Empty dependencies file for bench_fig10_flexflop.
# This may be replaced when dependencies are built.
