file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_flexflop.dir/bench_fig10_flexflop.cpp.o"
  "CMakeFiles/bench_fig10_flexflop.dir/bench_fig10_flexflop.cpp.o.d"
  "bench_fig10_flexflop"
  "bench_fig10_flexflop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_flexflop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
