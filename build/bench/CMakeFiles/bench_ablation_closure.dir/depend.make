# Empty dependencies file for bench_ablation_closure.
# This may be replaced when dependencies are built.
