file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_closure.dir/bench_ablation_closure.cpp.o"
  "CMakeFiles/bench_ablation_closure.dir/bench_ablation_closure.cpp.o.d"
  "bench_ablation_closure"
  "bench_ablation_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
