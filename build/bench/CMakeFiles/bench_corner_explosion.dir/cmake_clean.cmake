file(REMOVE_RECURSE
  "CMakeFiles/bench_corner_explosion.dir/bench_corner_explosion.cpp.o"
  "CMakeFiles/bench_corner_explosion.dir/bench_corner_explosion.cpp.o.d"
  "bench_corner_explosion"
  "bench_corner_explosion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_corner_explosion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
