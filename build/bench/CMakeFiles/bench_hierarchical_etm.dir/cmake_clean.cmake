file(REMOVE_RECURSE
  "CMakeFiles/bench_hierarchical_etm.dir/bench_hierarchical_etm.cpp.o"
  "CMakeFiles/bench_hierarchical_etm.dir/bench_hierarchical_etm.cpp.o.d"
  "bench_hierarchical_etm"
  "bench_hierarchical_etm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hierarchical_etm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
