# Empty compiler generated dependencies file for bench_hierarchical_etm.
# This may be replaced when dependencies are built.
