# Empty compiler generated dependencies file for bench_fig03_care_abouts.
# This may be replaced when dependencies are built.
