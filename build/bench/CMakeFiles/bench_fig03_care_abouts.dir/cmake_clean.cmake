file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_care_abouts.dir/bench_fig03_care_abouts.cpp.o"
  "CMakeFiles/bench_fig03_care_abouts.dir/bench_fig03_care_abouts.cpp.o.d"
  "bench_fig03_care_abouts"
  "bench_fig03_care_abouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_care_abouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
