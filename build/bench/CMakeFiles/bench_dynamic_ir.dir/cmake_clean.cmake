file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic_ir.dir/bench_dynamic_ir.cpp.o"
  "CMakeFiles/bench_dynamic_ir.dir/bench_dynamic_ir.cpp.o.d"
  "bench_dynamic_ir"
  "bench_dynamic_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
