# Empty compiler generated dependencies file for bench_dynamic_ir.
# This may be replaced when dependencies are built.
