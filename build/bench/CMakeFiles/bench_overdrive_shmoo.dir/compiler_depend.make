# Empty compiler generated dependencies file for bench_overdrive_shmoo.
# This may be replaced when dependencies are built.
