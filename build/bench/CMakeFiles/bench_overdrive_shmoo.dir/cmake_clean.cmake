file(REMOVE_RECURSE
  "CMakeFiles/bench_overdrive_shmoo.dir/bench_overdrive_shmoo.cpp.o"
  "CMakeFiles/bench_overdrive_shmoo.dir/bench_overdrive_shmoo.cpp.o.d"
  "bench_overdrive_shmoo"
  "bench_overdrive_shmoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overdrive_shmoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
