file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_avs_aging.dir/bench_fig09_avs_aging.cpp.o"
  "CMakeFiles/bench_fig09_avs_aging.dir/bench_fig09_avs_aging.cpp.o.d"
  "bench_fig09_avs_aging"
  "bench_fig09_avs_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_avs_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
