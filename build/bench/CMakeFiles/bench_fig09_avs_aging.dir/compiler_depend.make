# Empty compiler generated dependencies file for bench_fig09_avs_aging.
# This may be replaced when dependencies are built.
