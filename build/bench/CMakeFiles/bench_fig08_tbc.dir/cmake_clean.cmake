file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_tbc.dir/bench_fig08_tbc.cpp.o"
  "CMakeFiles/bench_fig08_tbc.dir/bench_fig08_tbc.cpp.o.d"
  "bench_fig08_tbc"
  "bench_fig08_tbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_tbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
