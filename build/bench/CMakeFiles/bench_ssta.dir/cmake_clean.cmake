file(REMOVE_RECURSE
  "CMakeFiles/bench_ssta.dir/bench_ssta.cpp.o"
  "CMakeFiles/bench_ssta.dir/bench_ssta.cpp.o.d"
  "bench_ssta"
  "bench_ssta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ssta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
