# Empty compiler generated dependencies file for bench_ssta.
# This may be replaced when dependencies are built.
