file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06b_temp_inversion.dir/bench_fig06b_temp_inversion.cpp.o"
  "CMakeFiles/bench_fig06b_temp_inversion.dir/bench_fig06b_temp_inversion.cpp.o.d"
  "bench_fig06b_temp_inversion"
  "bench_fig06b_temp_inversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06b_temp_inversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
