# Empty compiler generated dependencies file for bench_fig06b_temp_inversion.
# This may be replaced when dependencies are built.
