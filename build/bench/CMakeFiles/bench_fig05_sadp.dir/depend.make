# Empty dependencies file for bench_fig05_sadp.
# This may be replaced when dependencies are built.
