
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig05_sadp.cpp" "bench/CMakeFiles/bench_fig05_sadp.dir/bench_fig05_sadp.cpp.o" "gcc" "bench/CMakeFiles/bench_fig05_sadp.dir/bench_fig05_sadp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/signoff/CMakeFiles/tc_signoff.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/tc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/tc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/tc_place.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/tc_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/tc_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/tc_network.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/tc_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/tc_device.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
