file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_sadp.dir/bench_fig05_sadp.cpp.o"
  "CMakeFiles/bench_fig05_sadp.dir/bench_fig05_sadp.cpp.o.d"
  "bench_fig05_sadp"
  "bench_fig05_sadp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_sadp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
