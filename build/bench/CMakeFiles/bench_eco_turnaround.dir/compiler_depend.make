# Empty compiler generated dependencies file for bench_eco_turnaround.
# This may be replaced when dependencies are built.
