file(REMOVE_RECURSE
  "CMakeFiles/bench_eco_turnaround.dir/bench_eco_turnaround.cpp.o"
  "CMakeFiles/bench_eco_turnaround.dir/bench_eco_turnaround.cpp.o.d"
  "bench_eco_turnaround"
  "bench_eco_turnaround.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eco_turnaround.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
