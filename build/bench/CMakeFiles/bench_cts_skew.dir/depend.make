# Empty dependencies file for bench_cts_skew.
# This may be replaced when dependencies are built.
