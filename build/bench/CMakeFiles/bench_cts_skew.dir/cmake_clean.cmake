file(REMOVE_RECURSE
  "CMakeFiles/bench_cts_skew.dir/bench_cts_skew.cpp.o"
  "CMakeFiles/bench_cts_skew.dir/bench_cts_skew.cpp.o.d"
  "bench_cts_skew"
  "bench_cts_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cts_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
