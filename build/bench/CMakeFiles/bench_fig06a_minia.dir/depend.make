# Empty dependencies file for bench_fig06a_minia.
# This may be replaced when dependencies are built.
