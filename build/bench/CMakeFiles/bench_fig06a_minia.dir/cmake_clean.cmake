file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06a_minia.dir/bench_fig06a_minia.cpp.o"
  "CMakeFiles/bench_fig06a_minia.dir/bench_fig06a_minia.cpp.o.d"
  "bench_fig06a_minia"
  "bench_fig06a_minia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06a_minia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
