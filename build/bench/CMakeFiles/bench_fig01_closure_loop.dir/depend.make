# Empty dependencies file for bench_fig01_closure_loop.
# This may be replaced when dependencies are built.
