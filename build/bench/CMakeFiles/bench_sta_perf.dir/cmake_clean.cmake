file(REMOVE_RECURSE
  "CMakeFiles/bench_sta_perf.dir/bench_sta_perf.cpp.o"
  "CMakeFiles/bench_sta_perf.dir/bench_sta_perf.cpp.o.d"
  "bench_sta_perf"
  "bench_sta_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sta_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
