# Empty compiler generated dependencies file for bench_sta_perf.
# This may be replaced when dependencies are built.
