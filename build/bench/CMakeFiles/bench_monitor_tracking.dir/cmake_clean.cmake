file(REMOVE_RECURSE
  "CMakeFiles/bench_monitor_tracking.dir/bench_monitor_tracking.cpp.o"
  "CMakeFiles/bench_monitor_tracking.dir/bench_monitor_tracking.cpp.o.d"
  "bench_monitor_tracking"
  "bench_monitor_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_monitor_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
