# Empty dependencies file for bench_monitor_tracking.
# This may be replaced when dependencies are built.
