# Empty dependencies file for bench_pba_vs_gba.
# This may be replaced when dependencies are built.
