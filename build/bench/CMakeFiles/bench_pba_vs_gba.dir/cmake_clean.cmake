file(REMOVE_RECURSE
  "CMakeFiles/bench_pba_vs_gba.dir/bench_pba_vs_gba.cpp.o"
  "CMakeFiles/bench_pba_vs_gba.dir/bench_pba_vs_gba.cpp.o.d"
  "bench_pba_vs_gba"
  "bench_pba_vs_gba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pba_vs_gba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
