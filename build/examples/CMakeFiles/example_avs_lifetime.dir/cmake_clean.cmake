file(REMOVE_RECURSE
  "CMakeFiles/example_avs_lifetime.dir/avs_lifetime.cpp.o"
  "CMakeFiles/example_avs_lifetime.dir/avs_lifetime.cpp.o.d"
  "example_avs_lifetime"
  "example_avs_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_avs_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
