# Empty compiler generated dependencies file for example_avs_lifetime.
# This may be replaced when dependencies are built.
