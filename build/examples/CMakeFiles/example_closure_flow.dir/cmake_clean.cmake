file(REMOVE_RECURSE
  "CMakeFiles/example_closure_flow.dir/closure_flow.cpp.o"
  "CMakeFiles/example_closure_flow.dir/closure_flow.cpp.o.d"
  "example_closure_flow"
  "example_closure_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_closure_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
