# Empty compiler generated dependencies file for example_closure_flow.
# This may be replaced when dependencies are built.
