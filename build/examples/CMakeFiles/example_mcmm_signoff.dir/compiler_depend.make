# Empty compiler generated dependencies file for example_mcmm_signoff.
# This may be replaced when dependencies are built.
