file(REMOVE_RECURSE
  "CMakeFiles/example_mcmm_signoff.dir/mcmm_signoff.cpp.o"
  "CMakeFiles/example_mcmm_signoff.dir/mcmm_signoff.cpp.o.d"
  "example_mcmm_signoff"
  "example_mcmm_signoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mcmm_signoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
