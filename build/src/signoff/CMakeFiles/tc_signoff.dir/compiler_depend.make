# Empty compiler generated dependencies file for tc_signoff.
# This may be replaced when dependencies are built.
