
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signoff/avs.cpp" "src/signoff/CMakeFiles/tc_signoff.dir/avs.cpp.o" "gcc" "src/signoff/CMakeFiles/tc_signoff.dir/avs.cpp.o.d"
  "/root/repo/src/signoff/corners.cpp" "src/signoff/CMakeFiles/tc_signoff.dir/corners.cpp.o" "gcc" "src/signoff/CMakeFiles/tc_signoff.dir/corners.cpp.o.d"
  "/root/repo/src/signoff/etm.cpp" "src/signoff/CMakeFiles/tc_signoff.dir/etm.cpp.o" "gcc" "src/signoff/CMakeFiles/tc_signoff.dir/etm.cpp.o.d"
  "/root/repo/src/signoff/flexflop.cpp" "src/signoff/CMakeFiles/tc_signoff.dir/flexflop.cpp.o" "gcc" "src/signoff/CMakeFiles/tc_signoff.dir/flexflop.cpp.o.d"
  "/root/repo/src/signoff/ir.cpp" "src/signoff/CMakeFiles/tc_signoff.dir/ir.cpp.o" "gcc" "src/signoff/CMakeFiles/tc_signoff.dir/ir.cpp.o.d"
  "/root/repo/src/signoff/margin.cpp" "src/signoff/CMakeFiles/tc_signoff.dir/margin.cpp.o" "gcc" "src/signoff/CMakeFiles/tc_signoff.dir/margin.cpp.o.d"
  "/root/repo/src/signoff/monitor.cpp" "src/signoff/CMakeFiles/tc_signoff.dir/monitor.cpp.o" "gcc" "src/signoff/CMakeFiles/tc_signoff.dir/monitor.cpp.o.d"
  "/root/repo/src/signoff/overdrive.cpp" "src/signoff/CMakeFiles/tc_signoff.dir/overdrive.cpp.o" "gcc" "src/signoff/CMakeFiles/tc_signoff.dir/overdrive.cpp.o.d"
  "/root/repo/src/signoff/tbc.cpp" "src/signoff/CMakeFiles/tc_signoff.dir/tbc.cpp.o" "gcc" "src/signoff/CMakeFiles/tc_signoff.dir/tbc.cpp.o.d"
  "/root/repo/src/signoff/yield.cpp" "src/signoff/CMakeFiles/tc_signoff.dir/yield.cpp.o" "gcc" "src/signoff/CMakeFiles/tc_signoff.dir/yield.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opt/CMakeFiles/tc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/tc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/tc_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/tc_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/tc_network.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/tc_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/tc_device.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/tc_place.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
