file(REMOVE_RECURSE
  "libtc_signoff.a"
)
