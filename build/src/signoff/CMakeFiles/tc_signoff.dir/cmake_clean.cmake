file(REMOVE_RECURSE
  "CMakeFiles/tc_signoff.dir/avs.cpp.o"
  "CMakeFiles/tc_signoff.dir/avs.cpp.o.d"
  "CMakeFiles/tc_signoff.dir/corners.cpp.o"
  "CMakeFiles/tc_signoff.dir/corners.cpp.o.d"
  "CMakeFiles/tc_signoff.dir/etm.cpp.o"
  "CMakeFiles/tc_signoff.dir/etm.cpp.o.d"
  "CMakeFiles/tc_signoff.dir/flexflop.cpp.o"
  "CMakeFiles/tc_signoff.dir/flexflop.cpp.o.d"
  "CMakeFiles/tc_signoff.dir/ir.cpp.o"
  "CMakeFiles/tc_signoff.dir/ir.cpp.o.d"
  "CMakeFiles/tc_signoff.dir/margin.cpp.o"
  "CMakeFiles/tc_signoff.dir/margin.cpp.o.d"
  "CMakeFiles/tc_signoff.dir/monitor.cpp.o"
  "CMakeFiles/tc_signoff.dir/monitor.cpp.o.d"
  "CMakeFiles/tc_signoff.dir/overdrive.cpp.o"
  "CMakeFiles/tc_signoff.dir/overdrive.cpp.o.d"
  "CMakeFiles/tc_signoff.dir/tbc.cpp.o"
  "CMakeFiles/tc_signoff.dir/tbc.cpp.o.d"
  "CMakeFiles/tc_signoff.dir/yield.cpp.o"
  "CMakeFiles/tc_signoff.dir/yield.cpp.o.d"
  "libtc_signoff.a"
  "libtc_signoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_signoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
