# Empty compiler generated dependencies file for tc_place.
# This may be replaced when dependencies are built.
