file(REMOVE_RECURSE
  "CMakeFiles/tc_place.dir/minia.cpp.o"
  "CMakeFiles/tc_place.dir/minia.cpp.o.d"
  "CMakeFiles/tc_place.dir/placement.cpp.o"
  "CMakeFiles/tc_place.dir/placement.cpp.o.d"
  "libtc_place.a"
  "libtc_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
