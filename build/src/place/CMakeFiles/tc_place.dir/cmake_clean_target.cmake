file(REMOVE_RECURSE
  "libtc_place.a"
)
