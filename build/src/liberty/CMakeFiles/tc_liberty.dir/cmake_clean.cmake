file(REMOVE_RECURSE
  "CMakeFiles/tc_liberty.dir/builder.cpp.o"
  "CMakeFiles/tc_liberty.dir/builder.cpp.o.d"
  "CMakeFiles/tc_liberty.dir/interdep.cpp.o"
  "CMakeFiles/tc_liberty.dir/interdep.cpp.o.d"
  "CMakeFiles/tc_liberty.dir/liberty_writer.cpp.o"
  "CMakeFiles/tc_liberty.dir/liberty_writer.cpp.o.d"
  "CMakeFiles/tc_liberty.dir/library.cpp.o"
  "CMakeFiles/tc_liberty.dir/library.cpp.o.d"
  "CMakeFiles/tc_liberty.dir/serialize.cpp.o"
  "CMakeFiles/tc_liberty.dir/serialize.cpp.o.d"
  "libtc_liberty.a"
  "libtc_liberty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_liberty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
