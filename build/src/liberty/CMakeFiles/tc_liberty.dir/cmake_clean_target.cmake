file(REMOVE_RECURSE
  "libtc_liberty.a"
)
