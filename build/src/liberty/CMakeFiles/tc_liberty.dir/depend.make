# Empty dependencies file for tc_liberty.
# This may be replaced when dependencies are built.
