
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/liberty/builder.cpp" "src/liberty/CMakeFiles/tc_liberty.dir/builder.cpp.o" "gcc" "src/liberty/CMakeFiles/tc_liberty.dir/builder.cpp.o.d"
  "/root/repo/src/liberty/interdep.cpp" "src/liberty/CMakeFiles/tc_liberty.dir/interdep.cpp.o" "gcc" "src/liberty/CMakeFiles/tc_liberty.dir/interdep.cpp.o.d"
  "/root/repo/src/liberty/liberty_writer.cpp" "src/liberty/CMakeFiles/tc_liberty.dir/liberty_writer.cpp.o" "gcc" "src/liberty/CMakeFiles/tc_liberty.dir/liberty_writer.cpp.o.d"
  "/root/repo/src/liberty/library.cpp" "src/liberty/CMakeFiles/tc_liberty.dir/library.cpp.o" "gcc" "src/liberty/CMakeFiles/tc_liberty.dir/library.cpp.o.d"
  "/root/repo/src/liberty/serialize.cpp" "src/liberty/CMakeFiles/tc_liberty.dir/serialize.cpp.o" "gcc" "src/liberty/CMakeFiles/tc_liberty.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/device/CMakeFiles/tc_device.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
