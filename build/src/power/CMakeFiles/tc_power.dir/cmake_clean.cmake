file(REMOVE_RECURSE
  "CMakeFiles/tc_power.dir/power.cpp.o"
  "CMakeFiles/tc_power.dir/power.cpp.o.d"
  "libtc_power.a"
  "libtc_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
