# Empty dependencies file for tc_power.
# This may be replaced when dependencies are built.
