file(REMOVE_RECURSE
  "libtc_power.a"
)
