file(REMOVE_RECURSE
  "CMakeFiles/tc_interconnect.dir/extract.cpp.o"
  "CMakeFiles/tc_interconnect.dir/extract.cpp.o.d"
  "CMakeFiles/tc_interconnect.dir/rctree.cpp.o"
  "CMakeFiles/tc_interconnect.dir/rctree.cpp.o.d"
  "CMakeFiles/tc_interconnect.dir/sadp.cpp.o"
  "CMakeFiles/tc_interconnect.dir/sadp.cpp.o.d"
  "CMakeFiles/tc_interconnect.dir/spef.cpp.o"
  "CMakeFiles/tc_interconnect.dir/spef.cpp.o.d"
  "CMakeFiles/tc_interconnect.dir/steiner.cpp.o"
  "CMakeFiles/tc_interconnect.dir/steiner.cpp.o.d"
  "CMakeFiles/tc_interconnect.dir/wire.cpp.o"
  "CMakeFiles/tc_interconnect.dir/wire.cpp.o.d"
  "libtc_interconnect.a"
  "libtc_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
