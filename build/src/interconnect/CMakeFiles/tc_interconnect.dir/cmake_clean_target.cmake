file(REMOVE_RECURSE
  "libtc_interconnect.a"
)
