
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interconnect/extract.cpp" "src/interconnect/CMakeFiles/tc_interconnect.dir/extract.cpp.o" "gcc" "src/interconnect/CMakeFiles/tc_interconnect.dir/extract.cpp.o.d"
  "/root/repo/src/interconnect/rctree.cpp" "src/interconnect/CMakeFiles/tc_interconnect.dir/rctree.cpp.o" "gcc" "src/interconnect/CMakeFiles/tc_interconnect.dir/rctree.cpp.o.d"
  "/root/repo/src/interconnect/sadp.cpp" "src/interconnect/CMakeFiles/tc_interconnect.dir/sadp.cpp.o" "gcc" "src/interconnect/CMakeFiles/tc_interconnect.dir/sadp.cpp.o.d"
  "/root/repo/src/interconnect/spef.cpp" "src/interconnect/CMakeFiles/tc_interconnect.dir/spef.cpp.o" "gcc" "src/interconnect/CMakeFiles/tc_interconnect.dir/spef.cpp.o.d"
  "/root/repo/src/interconnect/steiner.cpp" "src/interconnect/CMakeFiles/tc_interconnect.dir/steiner.cpp.o" "gcc" "src/interconnect/CMakeFiles/tc_interconnect.dir/steiner.cpp.o.d"
  "/root/repo/src/interconnect/wire.cpp" "src/interconnect/CMakeFiles/tc_interconnect.dir/wire.cpp.o" "gcc" "src/interconnect/CMakeFiles/tc_interconnect.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/network/CMakeFiles/tc_network.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/tc_device.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/tc_liberty.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
