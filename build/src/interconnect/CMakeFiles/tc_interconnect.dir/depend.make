# Empty dependencies file for tc_interconnect.
# This may be replaced when dependencies are built.
