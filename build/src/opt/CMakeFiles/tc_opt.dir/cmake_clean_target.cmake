file(REMOVE_RECURSE
  "libtc_opt.a"
)
