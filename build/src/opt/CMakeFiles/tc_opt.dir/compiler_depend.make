# Empty compiler generated dependencies file for tc_opt.
# This may be replaced when dependencies are built.
