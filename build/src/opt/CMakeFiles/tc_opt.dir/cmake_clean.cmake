file(REMOVE_RECURSE
  "CMakeFiles/tc_opt.dir/closure.cpp.o"
  "CMakeFiles/tc_opt.dir/closure.cpp.o.d"
  "CMakeFiles/tc_opt.dir/cts.cpp.o"
  "CMakeFiles/tc_opt.dir/cts.cpp.o.d"
  "CMakeFiles/tc_opt.dir/transforms.cpp.o"
  "CMakeFiles/tc_opt.dir/transforms.cpp.o.d"
  "libtc_opt.a"
  "libtc_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
