
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/aging.cpp" "src/device/CMakeFiles/tc_device.dir/aging.cpp.o" "gcc" "src/device/CMakeFiles/tc_device.dir/aging.cpp.o.d"
  "/root/repo/src/device/latch.cpp" "src/device/CMakeFiles/tc_device.dir/latch.cpp.o" "gcc" "src/device/CMakeFiles/tc_device.dir/latch.cpp.o.d"
  "/root/repo/src/device/mosfet.cpp" "src/device/CMakeFiles/tc_device.dir/mosfet.cpp.o" "gcc" "src/device/CMakeFiles/tc_device.dir/mosfet.cpp.o.d"
  "/root/repo/src/device/process.cpp" "src/device/CMakeFiles/tc_device.dir/process.cpp.o" "gcc" "src/device/CMakeFiles/tc_device.dir/process.cpp.o.d"
  "/root/repo/src/device/stage.cpp" "src/device/CMakeFiles/tc_device.dir/stage.cpp.o" "gcc" "src/device/CMakeFiles/tc_device.dir/stage.cpp.o.d"
  "/root/repo/src/device/tech.cpp" "src/device/CMakeFiles/tc_device.dir/tech.cpp.o" "gcc" "src/device/CMakeFiles/tc_device.dir/tech.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
