file(REMOVE_RECURSE
  "CMakeFiles/tc_device.dir/aging.cpp.o"
  "CMakeFiles/tc_device.dir/aging.cpp.o.d"
  "CMakeFiles/tc_device.dir/latch.cpp.o"
  "CMakeFiles/tc_device.dir/latch.cpp.o.d"
  "CMakeFiles/tc_device.dir/mosfet.cpp.o"
  "CMakeFiles/tc_device.dir/mosfet.cpp.o.d"
  "CMakeFiles/tc_device.dir/process.cpp.o"
  "CMakeFiles/tc_device.dir/process.cpp.o.d"
  "CMakeFiles/tc_device.dir/stage.cpp.o"
  "CMakeFiles/tc_device.dir/stage.cpp.o.d"
  "CMakeFiles/tc_device.dir/tech.cpp.o"
  "CMakeFiles/tc_device.dir/tech.cpp.o.d"
  "libtc_device.a"
  "libtc_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
