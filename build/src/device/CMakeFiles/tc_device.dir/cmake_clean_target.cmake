file(REMOVE_RECURSE
  "libtc_device.a"
)
