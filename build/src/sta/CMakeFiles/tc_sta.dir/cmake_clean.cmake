file(REMOVE_RECURSE
  "CMakeFiles/tc_sta.dir/delay_calc.cpp.o"
  "CMakeFiles/tc_sta.dir/delay_calc.cpp.o.d"
  "CMakeFiles/tc_sta.dir/engine.cpp.o"
  "CMakeFiles/tc_sta.dir/engine.cpp.o.d"
  "CMakeFiles/tc_sta.dir/graph.cpp.o"
  "CMakeFiles/tc_sta.dir/graph.cpp.o.d"
  "CMakeFiles/tc_sta.dir/mc.cpp.o"
  "CMakeFiles/tc_sta.dir/mc.cpp.o.d"
  "CMakeFiles/tc_sta.dir/mis.cpp.o"
  "CMakeFiles/tc_sta.dir/mis.cpp.o.d"
  "CMakeFiles/tc_sta.dir/pba.cpp.o"
  "CMakeFiles/tc_sta.dir/pba.cpp.o.d"
  "CMakeFiles/tc_sta.dir/report.cpp.o"
  "CMakeFiles/tc_sta.dir/report.cpp.o.d"
  "CMakeFiles/tc_sta.dir/si.cpp.o"
  "CMakeFiles/tc_sta.dir/si.cpp.o.d"
  "CMakeFiles/tc_sta.dir/ssta.cpp.o"
  "CMakeFiles/tc_sta.dir/ssta.cpp.o.d"
  "libtc_sta.a"
  "libtc_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
