file(REMOVE_RECURSE
  "libtc_sta.a"
)
