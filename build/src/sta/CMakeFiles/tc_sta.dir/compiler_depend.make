# Empty compiler generated dependencies file for tc_sta.
# This may be replaced when dependencies are built.
