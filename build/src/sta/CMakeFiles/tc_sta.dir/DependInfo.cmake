
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sta/delay_calc.cpp" "src/sta/CMakeFiles/tc_sta.dir/delay_calc.cpp.o" "gcc" "src/sta/CMakeFiles/tc_sta.dir/delay_calc.cpp.o.d"
  "/root/repo/src/sta/engine.cpp" "src/sta/CMakeFiles/tc_sta.dir/engine.cpp.o" "gcc" "src/sta/CMakeFiles/tc_sta.dir/engine.cpp.o.d"
  "/root/repo/src/sta/graph.cpp" "src/sta/CMakeFiles/tc_sta.dir/graph.cpp.o" "gcc" "src/sta/CMakeFiles/tc_sta.dir/graph.cpp.o.d"
  "/root/repo/src/sta/mc.cpp" "src/sta/CMakeFiles/tc_sta.dir/mc.cpp.o" "gcc" "src/sta/CMakeFiles/tc_sta.dir/mc.cpp.o.d"
  "/root/repo/src/sta/mis.cpp" "src/sta/CMakeFiles/tc_sta.dir/mis.cpp.o" "gcc" "src/sta/CMakeFiles/tc_sta.dir/mis.cpp.o.d"
  "/root/repo/src/sta/pba.cpp" "src/sta/CMakeFiles/tc_sta.dir/pba.cpp.o" "gcc" "src/sta/CMakeFiles/tc_sta.dir/pba.cpp.o.d"
  "/root/repo/src/sta/report.cpp" "src/sta/CMakeFiles/tc_sta.dir/report.cpp.o" "gcc" "src/sta/CMakeFiles/tc_sta.dir/report.cpp.o.d"
  "/root/repo/src/sta/si.cpp" "src/sta/CMakeFiles/tc_sta.dir/si.cpp.o" "gcc" "src/sta/CMakeFiles/tc_sta.dir/si.cpp.o.d"
  "/root/repo/src/sta/ssta.cpp" "src/sta/CMakeFiles/tc_sta.dir/ssta.cpp.o" "gcc" "src/sta/CMakeFiles/tc_sta.dir/ssta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interconnect/CMakeFiles/tc_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/tc_network.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/tc_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/tc_device.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
