file(REMOVE_RECURSE
  "CMakeFiles/tc_network.dir/netgen.cpp.o"
  "CMakeFiles/tc_network.dir/netgen.cpp.o.d"
  "CMakeFiles/tc_network.dir/netlist.cpp.o"
  "CMakeFiles/tc_network.dir/netlist.cpp.o.d"
  "CMakeFiles/tc_network.dir/verilog.cpp.o"
  "CMakeFiles/tc_network.dir/verilog.cpp.o.d"
  "libtc_network.a"
  "libtc_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tc_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
