file(REMOVE_RECURSE
  "libtc_network.a"
)
