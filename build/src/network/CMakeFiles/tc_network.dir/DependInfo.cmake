
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/network/netgen.cpp" "src/network/CMakeFiles/tc_network.dir/netgen.cpp.o" "gcc" "src/network/CMakeFiles/tc_network.dir/netgen.cpp.o.d"
  "/root/repo/src/network/netlist.cpp" "src/network/CMakeFiles/tc_network.dir/netlist.cpp.o" "gcc" "src/network/CMakeFiles/tc_network.dir/netlist.cpp.o.d"
  "/root/repo/src/network/verilog.cpp" "src/network/CMakeFiles/tc_network.dir/verilog.cpp.o" "gcc" "src/network/CMakeFiles/tc_network.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/liberty/CMakeFiles/tc_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/tc_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
