# Empty compiler generated dependencies file for tc_network.
# This may be replaced when dependencies are built.
