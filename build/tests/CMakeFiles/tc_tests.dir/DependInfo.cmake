
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cts_ir_test.cpp" "tests/CMakeFiles/tc_tests.dir/cts_ir_test.cpp.o" "gcc" "tests/CMakeFiles/tc_tests.dir/cts_ir_test.cpp.o.d"
  "/root/repo/tests/device_test.cpp" "tests/CMakeFiles/tc_tests.dir/device_test.cpp.o" "gcc" "tests/CMakeFiles/tc_tests.dir/device_test.cpp.o.d"
  "/root/repo/tests/eco_test.cpp" "tests/CMakeFiles/tc_tests.dir/eco_test.cpp.o" "gcc" "tests/CMakeFiles/tc_tests.dir/eco_test.cpp.o.d"
  "/root/repo/tests/etm_test.cpp" "tests/CMakeFiles/tc_tests.dir/etm_test.cpp.o" "gcc" "tests/CMakeFiles/tc_tests.dir/etm_test.cpp.o.d"
  "/root/repo/tests/interchange_test.cpp" "tests/CMakeFiles/tc_tests.dir/interchange_test.cpp.o" "gcc" "tests/CMakeFiles/tc_tests.dir/interchange_test.cpp.o.d"
  "/root/repo/tests/interconnect_test.cpp" "tests/CMakeFiles/tc_tests.dir/interconnect_test.cpp.o" "gcc" "tests/CMakeFiles/tc_tests.dir/interconnect_test.cpp.o.d"
  "/root/repo/tests/liberty_test.cpp" "tests/CMakeFiles/tc_tests.dir/liberty_test.cpp.o" "gcc" "tests/CMakeFiles/tc_tests.dir/liberty_test.cpp.o.d"
  "/root/repo/tests/network_test.cpp" "tests/CMakeFiles/tc_tests.dir/network_test.cpp.o" "gcc" "tests/CMakeFiles/tc_tests.dir/network_test.cpp.o.d"
  "/root/repo/tests/opt_test.cpp" "tests/CMakeFiles/tc_tests.dir/opt_test.cpp.o" "gcc" "tests/CMakeFiles/tc_tests.dir/opt_test.cpp.o.d"
  "/root/repo/tests/place_test.cpp" "tests/CMakeFiles/tc_tests.dir/place_test.cpp.o" "gcc" "tests/CMakeFiles/tc_tests.dir/place_test.cpp.o.d"
  "/root/repo/tests/power_test.cpp" "tests/CMakeFiles/tc_tests.dir/power_test.cpp.o" "gcc" "tests/CMakeFiles/tc_tests.dir/power_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/tc_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/tc_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/si_monitor_test.cpp" "tests/CMakeFiles/tc_tests.dir/si_monitor_test.cpp.o" "gcc" "tests/CMakeFiles/tc_tests.dir/si_monitor_test.cpp.o.d"
  "/root/repo/tests/signoff_test.cpp" "tests/CMakeFiles/tc_tests.dir/signoff_test.cpp.o" "gcc" "tests/CMakeFiles/tc_tests.dir/signoff_test.cpp.o.d"
  "/root/repo/tests/ssta_test.cpp" "tests/CMakeFiles/tc_tests.dir/ssta_test.cpp.o" "gcc" "tests/CMakeFiles/tc_tests.dir/ssta_test.cpp.o.d"
  "/root/repo/tests/sta_test.cpp" "tests/CMakeFiles/tc_tests.dir/sta_test.cpp.o" "gcc" "tests/CMakeFiles/tc_tests.dir/sta_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/tc_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/tc_tests.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/signoff/CMakeFiles/tc_signoff.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/tc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/tc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/tc_place.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/tc_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/tc_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/tc_network.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/tc_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/tc_device.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
