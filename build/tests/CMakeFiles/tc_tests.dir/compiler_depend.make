# Empty compiler generated dependencies file for tc_tests.
# This may be replaced when dependencies are built.
