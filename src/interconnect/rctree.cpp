#include "interconnect/rctree.h"

#include <cmath>
#include <stdexcept>

namespace tc {

int RcTree::addNode(int parent, KOhm r, Ff c) {
  if (parent < 0 || parent >= nodeCount())
    throw std::invalid_argument("RcTree::addNode: bad parent");
  Node n;
  n.parent = parent;
  n.r = r;
  n.cap = c;
  nodes_.push_back(n);
  analyzed_ = false;
  return nodeCount() - 1;
}

Ff RcTree::totalCap() const {
  Ff c = 0.0;
  for (const auto& n : nodes_) c += n.cap;
  return c;
}

void RcTree::analyze() const {
  const std::size_t n = nodes_.size();
  downCap_.assign(n, 0.0);
  m1_.assign(n, 0.0);
  m2_.assign(n, 0.0);
  // Children are always appended after parents, so a reverse sweep
  // accumulates subtree caps and a forward sweep propagates moments.
  for (std::size_t i = n; i-- > 0;) {
    downCap_[i] += nodes_[i].cap;
    if (nodes_[i].parent >= 0)
      downCap_[static_cast<std::size_t>(nodes_[i].parent)] += downCap_[i];
  }
  // m1 (Elmore): m1(child) = m1(parent) + R * downCap(child). kOhm*fF = ps.
  for (std::size_t i = 1; i < n; ++i) {
    const auto p = static_cast<std::size_t>(nodes_[i].parent);
    m1_[i] = m1_[p] + nodes_[i].r * downCap_[i];
  }
  // Second moment: m2(child) = m2(parent) + R * sum_subtree(C_k * m1_k).
  std::vector<double> downCapM1(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    downCapM1[i] += nodes_[i].cap * m1_[i];
    if (nodes_[i].parent >= 0)
      downCapM1[static_cast<std::size_t>(nodes_[i].parent)] += downCapM1[i];
  }
  for (std::size_t i = 1; i < n; ++i) {
    const auto p = static_cast<std::size_t>(nodes_[i].parent);
    m2_[i] = m2_[p] + nodes_[i].r * downCapM1[i];
  }
  analyzed_ = true;
}

Ps RcTree::elmore(int node) const {
  if (!analyzed_) analyze();
  return m1_[static_cast<std::size_t>(node)];
}

Ps RcTree::d2m(int node) const {
  if (!analyzed_) analyze();
  const double m1 = m1_[static_cast<std::size_t>(node)];
  const double m2 = m2_[static_cast<std::size_t>(node)];
  if (m2 <= 0.0) return m1;
  return std::min(m1, 0.6931471805599453 * m1 * m1 / std::sqrt(m2));
}

Ff RcTree::effectiveCap(Ps driverSlew) const {
  if (!analyzed_) analyze();
  // Split the tree cap into "near" (directly at root) and "far"; shield the
  // far component by the ratio of wire RC to the driver transition time.
  const Ff cNear = nodes_[0].cap;
  const Ff cTotal = totalCap();
  const Ff cFar = cTotal - cNear;
  if (cFar <= 0.0) return cTotal;
  double maxM1 = 0.0;
  for (std::size_t i = 1; i < nodes_.size(); ++i)
    maxM1 = std::max(maxM1, m1_[i]);
  // Fraction of the far cap hidden behind wire resistance: approaches 1/2
  // when the wire RC dwarfs the driver transition, 0 for slow edges.
  const double shield =
      2.0 * maxM1 / (2.0 * maxM1 + std::max(driverSlew, 1.0));
  return cNear + cFar * (1.0 - 0.5 * shield);
}

Ps RcTree::degradeSlew(Ps slewIn, int node) const {
  const double wireSlew = 2.1972245773362196 * elmore(node);  // ln(9)*m1
  return std::sqrt(slewIn * slewIn + wireSlew * wireSlew);
}

}  // namespace tc
