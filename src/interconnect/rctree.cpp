#include "interconnect/rctree.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tc {

int RcTree::addNode(int parent, KOhm r, Ff c) {
  if (parent < 0 || parent >= nodeCount())
    throw std::invalid_argument("RcTree::addNode: bad parent");
  parent_.push_back(parent);
  r_.push_back(r);
  cap_.push_back(c);
  analyzed_ = false;
  return nodeCount() - 1;
}

Ff RcTree::totalCap() const {
  Ff c = 0.0;
  for (const Ff nc : cap_) c += nc;
  return c;
}

void RcTree::analyze() const {
  const std::size_t n = parent_.size();
  downCap_.assign(n, 0.0);
  m1_.assign(n, 0.0);
  m2_.assign(n, 0.0);
  // Children are always appended after parents, so a reverse sweep
  // accumulates subtree caps and a forward sweep propagates moments.
  for (std::size_t i = n; i-- > 0;) {
    downCap_[i] += cap_[i];
    if (parent_[i] >= 0)
      downCap_[static_cast<std::size_t>(parent_[i])] += downCap_[i];
  }
  // m1 (Elmore): m1(child) = m1(parent) + R * downCap(child). kOhm*fF = ps.
  for (std::size_t i = 1; i < n; ++i) {
    const auto p = static_cast<std::size_t>(parent_[i]);
    m1_[i] = m1_[p] + r_[i] * downCap_[i];
  }
  // Second moment: m2(child) = m2(parent) + R * sum_subtree(C_k * m1_k).
  std::vector<double> downCapM1(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    downCapM1[i] += cap_[i] * m1_[i];
    if (parent_[i] >= 0)
      downCapM1[static_cast<std::size_t>(parent_[i])] += downCapM1[i];
  }
  for (std::size_t i = 1; i < n; ++i) {
    const auto p = static_cast<std::size_t>(parent_[i]);
    m2_[i] = m2_[p] + r_[i] * downCapM1[i];
  }
  // Driver-facing summaries for the O(1) effectiveCap(): accumulated in
  // the same node order the former per-call loops used, so the sums and
  // maxima are bit-identical to computing them on demand.
  cTotal_ = 0.0;
  for (const Ff nc : cap_) cTotal_ += nc;
  maxM1_ = 0.0;
  for (std::size_t i = 1; i < n; ++i) maxM1_ = std::max(maxM1_, m1_[i]);
  analyzed_ = true;
}

Ps RcTree::elmore(int node) const {
  if (!analyzed_) analyze();
  return m1_[static_cast<std::size_t>(node)];
}

Ps RcTree::d2m(int node) const {
  if (!analyzed_) analyze();
  const double m1 = m1_[static_cast<std::size_t>(node)];
  const double m2 = m2_[static_cast<std::size_t>(node)];
  if (m2 <= 0.0) return m1;
  return std::min(m1, 0.6931471805599453 * m1 * m1 / std::sqrt(m2));
}

Ff RcTree::effectiveCap(Ps driverSlew) const {
  if (!analyzed_) analyze();
  // Split the tree cap into "near" (directly at root) and "far"; shield the
  // far component by the ratio of wire RC to the driver transition time.
  // cTotal_ and maxM1_ are precomputed by analyze(): this is one cell-arc
  // candidate's load lookup in the engine's hot loop, and the former
  // per-call O(nodes) scans dominated large-fanout nets.
  const Ff cNear = cap_[0];
  const Ff cFar = cTotal_ - cNear;
  if (cFar <= 0.0) return cTotal_;
  // Fraction of the far cap hidden behind wire resistance: approaches 1/2
  // when the wire RC dwarfs the driver transition, 0 for slow edges.
  const double shield =
      2.0 * maxM1_ / (2.0 * maxM1_ + std::max(driverSlew, 1.0));
  return cNear + cFar * (1.0 - 0.5 * shield);
}

Ps RcTree::degradeSlew(Ps slewIn, int node) const {
  const double wireSlew = 2.1972245773362196 * elmore(node);  // ln(9)*m1
  return std::sqrt(slewIn * slewIn + wireSlew * wireSlew);
}

}  // namespace tc
