#include "interconnect/sadp.h"

#include <cmath>

namespace tc {

const char* toString(SadpCase c) {
  switch (c) {
    case SadpCase::kMandrelMandrel: return "mandrel/mandrel";
    case SadpCase::kSpacerSpacer: return "spacer/spacer";
    case SadpCase::kMandrelBlock: return "mandrel/block";
    case SadpCase::kSpacerBlock: return "spacer/block";
  }
  return "?";
}

const std::vector<SadpCase>& allSadpCases() {
  static const std::vector<SadpCase> kAll = {
      SadpCase::kMandrelMandrel, SadpCase::kSpacerSpacer,
      SadpCase::kMandrelBlock, SadpCase::kSpacerBlock};
  return kAll;
}

double SadpModel::cdSigmaNm(SadpCase c) const {
  const double sM = sigmaMandrelNm;
  const double sS = sigmaSpacerNm;
  const double sB = sigmaBlockNm;
  const double sMB = sigmaMandrelBlockNm;
  double var = 0.0;
  switch (c) {
    case SadpCase::kMandrelMandrel:
      var = sM * sM;
      break;
    case SadpCase::kSpacerSpacer:
      var = sM * sM + 2.0 * sS * sS;
      break;
    case SadpCase::kMandrelBlock:
      var = 0.25 * sM * sM + sMB * sMB + 0.25 * sB * sB;
      break;
    case SadpCase::kSpacerBlock:
      var = 0.25 * sM * sM + sS * sS + sMB * sMB + 0.25 * sB * sB;
      break;
  }
  return std::sqrt(var);
}

SadpCase SadpModel::sampleCase(Rng& rng) const {
  const double r = rng.uniform();
  double acc = 0.0;
  for (int i = 0; i < 4; ++i) {
    acc += caseProbability[i];
    if (r < acc) return allSadpCases()[static_cast<std::size_t>(i)];
  }
  return SadpCase::kSpacerBlock;
}

Ff SadpModel::expectedCutMaskCap(Um wirelength, int terminals) const {
  return lineEndProbability * terminals * lineEndExtensionCapFf +
         fillAdjacencyPerUm * wirelength * floatingFillCouplingFf;
}

Ff SadpModel::sampleCutMaskCap(Um wirelength, int terminals, Rng& rng) const {
  Ff cap = 0.0;
  for (int t = 0; t < terminals; ++t)
    if (rng.chance(lineEndProbability)) cap += lineEndExtensionCapFf;
  const double lambda = fillAdjacencyPerUm * wirelength;
  // Poisson sample via sequential Bernoulli on unit segments (lambda small).
  const int segments = static_cast<int>(std::ceil(wirelength));
  const double p = segments > 0 ? lambda / segments : 0.0;
  for (int s = 0; s < segments; ++s)
    if (rng.chance(p)) cap += floatingFillCouplingFf;
  return cap;
}

}  // namespace tc
