#pragma once
/// \file rctree.h
/// \brief RC tree parasitics with Elmore and two-moment (D2M) delay metrics
/// and a simple effective-capacitance model — the interconnect half of the
/// delay-calculation history the paper walks through ("lumped-C ... Elmore's
/// bound ... O'Brien-Savarino", Sec. 3.1).

#include <vector>

#include "util/units.h"

namespace tc {

/// A grounded RC tree rooted at the driver (node 0).
class RcTree {
 public:
  RcTree() { nodes_.push_back({}); }  // root

  /// Add a node connected to `parent` through resistance r, with grounded
  /// cap c. Returns the new node id.
  int addNode(int parent, KOhm r, Ff c);
  void addCap(int node, Ff c) { nodes_[static_cast<std::size_t>(node)].cap += c; }
  int nodeCount() const { return static_cast<int>(nodes_.size()); }

  Ff totalCap() const;
  Ff nodeCap(int node) const { return nodes_[static_cast<std::size_t>(node)].cap; }
  /// Parent node id (-1 for the root) and the resistance of the edge to it
  /// (exposed for parasitics writers such as SPEF).
  int parentOf(int node) const {
    return nodes_[static_cast<std::size_t>(node)].parent;
  }
  KOhm resistanceTo(int node) const {
    return nodes_[static_cast<std::size_t>(node)].r;
  }

  /// First moment (Elmore delay) from the root to `node`, in ps.
  Ps elmore(int node) const;
  /// D2M two-moment metric: ln2 * m1^2 / sqrt(m2) — tighter than Elmore for
  /// far sinks, never larger.
  Ps d2m(int node) const;
  /// Resistance-shielded effective capacitance seen by the driver, given
  /// the driver's output transition time.
  Ff effectiveCap(Ps driverSlew) const;

  /// Wire-induced slew at a node (PERI-style): sqrt(slewIn^2 + (ln9*m1)^2).
  Ps degradeSlew(Ps slewIn, int node) const;

  /// Force the lazy moment analysis now. Concurrent readers of a shared
  /// tree are only safe after this ran (the delay calculator calls it when
  /// warming its cache for a parallel pass); afterwards every query above
  /// is a pure read.
  void ensureAnalyzed() const {
    if (!analyzed_) analyze();
  }

 private:
  struct Node {
    int parent = -1;
    KOhm r = 0.0;  ///< resistance to parent
    Ff cap = 0.0;
    // cached analysis results
  };
  void analyze() const;

  std::vector<Node> nodes_;
  mutable std::vector<Ff> downCap_;
  mutable std::vector<double> m1_;      // ps
  mutable std::vector<double> m2_;      // ps^2
  mutable bool analyzed_ = false;
};

}  // namespace tc
