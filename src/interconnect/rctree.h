#pragma once
/// \file rctree.h
/// \brief RC tree parasitics with Elmore and two-moment (D2M) delay metrics
/// and a simple effective-capacitance model — the interconnect half of the
/// delay-calculation history the paper walks through ("lumped-C ... Elmore's
/// bound ... O'Brien-Savarino", Sec. 3.1).

#include <vector>

#include "util/units.h"

namespace tc {

/// A grounded RC tree rooted at the driver (node 0).
///
/// Topology and caps are stored as flat per-field arrays (parent index,
/// edge resistance, grounded cap) rather than node structs: the moment
/// analysis and every per-sink query then stream over dense arrays, and a
/// tree is three buffers instead of one allocation per node struct view.
/// The driver-facing summaries effectiveCap() depends on (total cap, max
/// first moment) are precomputed by analyze(), making effectiveCap O(1) —
/// it is called once per cell-arc candidate in the engine's hot loop.
class RcTree {
 public:
  RcTree() : parent_(1, -1), r_(1, 0.0), cap_(1, 0.0) {}  // root

  /// Add a node connected to `parent` through resistance r, with grounded
  /// cap c. Returns the new node id.
  int addNode(int parent, KOhm r, Ff c);
  void addCap(int node, Ff c) {
    cap_[static_cast<std::size_t>(node)] += c;
    analyzed_ = false;  // cached moments and cap summaries are stale
  }
  int nodeCount() const { return static_cast<int>(parent_.size()); }

  Ff totalCap() const;
  Ff nodeCap(int node) const { return cap_[static_cast<std::size_t>(node)]; }
  /// Parent node id (-1 for the root) and the resistance of the edge to it
  /// (exposed for parasitics writers such as SPEF).
  int parentOf(int node) const {
    return parent_[static_cast<std::size_t>(node)];
  }
  KOhm resistanceTo(int node) const {
    return r_[static_cast<std::size_t>(node)];
  }

  /// First moment (Elmore delay) from the root to `node`, in ps.
  Ps elmore(int node) const;
  /// D2M two-moment metric: ln2 * m1^2 / sqrt(m2) — tighter than Elmore for
  /// far sinks, never larger.
  Ps d2m(int node) const;
  /// Resistance-shielded effective capacitance seen by the driver, given
  /// the driver's output transition time. O(1) after analysis.
  Ff effectiveCap(Ps driverSlew) const;

  /// Wire-induced slew at a node (PERI-style): sqrt(slewIn^2 + (ln9*m1)^2).
  Ps degradeSlew(Ps slewIn, int node) const;

  /// Force the lazy moment analysis now. Concurrent readers of a shared
  /// tree are only safe after this ran (the delay calculator calls it when
  /// warming its cache for a parallel pass); afterwards every query above
  /// is a pure read.
  void ensureAnalyzed() const {
    if (!analyzed_) analyze();
  }

  /// Driver-side summaries feeding DelayCalculator's flat load table: the
  /// grounded cap at the root, the analyzed total cap, and the max branch
  /// first moment — the exact words effectiveCap() computes from, exposed
  /// so a flat copy evaluates bit-identically without touching the tree.
  Ff rootCap() const { return cap_[0]; }
  Ff analyzedTotalCap() const {
    ensureAnalyzed();
    return cTotal_;
  }
  double maxM1() const {
    ensureAnalyzed();
    return maxM1_;
  }

 private:
  void analyze() const;

  // SoA topology: node i connects to parent_[i] through r_[i], with
  // grounded cap cap_[i]. Children are always appended after parents.
  std::vector<int> parent_;
  std::vector<KOhm> r_;
  std::vector<Ff> cap_;
  // cached analysis results
  mutable std::vector<Ff> downCap_;
  mutable std::vector<double> m1_;      // ps
  mutable std::vector<double> m2_;      // ps^2
  mutable Ff cTotal_ = 0.0;             // sum of cap_ in node order
  mutable double maxM1_ = 0.0;          // max m1 over non-root nodes
  mutable bool analyzed_ = false;
};

}  // namespace tc
