#pragma once
/// \file steiner.h
/// \brief Net topology generation: rectilinear spanning/Steiner-lite trees
/// over placed pin locations, used by the extractor to build RC trees.

#include <vector>

#include "util/units.h"

namespace tc {

struct Point {
  Um x = 0.0, y = 0.0;
};

inline Um manhattan(const Point& a, const Point& b) {
  return (a.x > b.x ? a.x - b.x : b.x - a.x) +
         (a.y > b.y ? a.y - b.y : b.y - a.y);
}

/// A routing tree: node 0 is the driver; nodes 1..n are the sinks in input
/// order; edges connect each node to a previously-added node.
struct RouteTree {
  struct Edge {
    int from = 0;  ///< node closer to the driver
    int to = 0;
    Um length = 0.0;
  };
  std::vector<Point> points;  ///< [0] driver, then sinks
  std::vector<Edge> edges;    ///< one per non-driver node, `to` unique

  Um totalLength() const {
    Um l = 0.0;
    for (const auto& e : edges) l += e.length;
    return l;
  }
};

/// Prim-style rectilinear minimum spanning tree: each sink attaches to the
/// nearest already-connected node (L1 metric). For small fanouts this is
/// within a few percent of RSMT length, which is all the RC model needs.
RouteTree buildRouteTree(const Point& driver, const std::vector<Point>& sinks);

/// Half-perimeter wirelength of the pin bounding box (placement cost metric).
Um hpwl(const Point& driver, const std::vector<Point>& sinks);

}  // namespace tc
