#pragma once
/// \file extract.h
/// \brief Parasitic extraction: placed netlist -> per-net RC trees at a
/// chosen BEOL corner (or per-layer Monte Carlo sample), with optional
/// SADP cut-mask capacitance and NDR-aware R/C scaling.

#include <optional>
#include <vector>

#include "interconnect/rctree.h"
#include "interconnect/sadp.h"
#include "interconnect/steiner.h"
#include "interconnect/wire.h"
#include "network/netlist.h"

namespace tc {

/// Per-extraction context.
struct ExtractionOptions {
  BeolCorner corner = BeolCorner::kTypical;
  Celsius temp = 25.0;
  /// Miller factor applied to coupling cap when lumping to ground
  /// (1.0 = quiet aggressors; 2.0 = SI-pessimistic opposite switching).
  double millerFactor = 1.0;
  /// Optional SADP model: adds expected line-end / fill capacitance.
  const SadpModel* sadp = nullptr;
  /// Optional per-layer multipliers for decorrelated BEOL Monte Carlo,
  /// indexed like BeolStack::layers. Applied on top of the corner scales.
  const std::vector<double>* layerRScale = nullptr;
  const std::vector<double>* layerCScale = nullptr;
  /// Corner-tightening factor (TBC, Sec. 3.2): scales the corner excursion
  /// to k-sigma instead of the conventional 3-sigma. 3.0 = conventional.
  double tightenSigma = 3.0;
};

/// Extraction result for one net.
struct NetParasitics {
  RcTree tree;
  std::vector<int> sinkNode;  ///< tree node per net sink (input order)
  Ff totalCap = 0.0;          ///< wire + pin caps
  Ff wireCap = 0.0;
  Um wirelength = 0.0;
  int layer = 3;
};

/// Extractor over a (possibly placed) netlist. Unplaced designs fall back
/// to a fanout-based wire-load model, as pre-placement synthesis flows do.
class Extractor {
 public:
  Extractor(const Netlist& netlist, BeolStack stack)
      : nl_(netlist), stack_(std::move(stack)) {}

  NetParasitics extract(NetId net, const ExtractionOptions& opt) const;

  /// Layer chosen for a net of the given spanned length.
  int layerForLength(Um length) const;

  const BeolStack& stack() const { return stack_; }

  /// True when instances carry meaningful placement. Cached after the
  /// first scan — extract() consults this per net, and the former
  /// every-call scan over all instances made extraction O(design) per net
  /// at scale. Owners that observe placement edits must call
  /// invalidatePlacement() (the delay calculator does so whenever a net's
  /// parasitics are invalidated, which every placement edit triggers).
  bool isPlaced() const {
    if (placedCached_ < 0) placedCached_ = scanPlaced() ? 1 : 0;
    return placedCached_ != 0;
  }
  /// Drop the cached placement flag (an instance moved, or placement was
  /// assigned for the first time).
  void invalidatePlacement() { placedCached_ = -1; }

 private:
  bool scanPlaced() const;

  const Netlist& nl_;
  BeolStack stack_;
  /// -1 unknown, else 0/1. Lazily filled under const: warmCache() resolves
  /// it before fanning extraction out, so parallel extracts are pure reads.
  mutable int placedCached_ = -1;
};

}  // namespace tc
