#pragma once
/// \file spef.h
/// \brief SPEF (IEEE 1481) parasitics writer.
///
/// Emits the extracted RC of every net in the standard exchange format
/// signoff tools consume: header with unit declarations, a name map, and
/// per-net *D_NET sections with *CONN / *CAP / *RES. The paper's history
/// section tracks interconnect modeling from lumped C through SPEF-based
/// signoff — and mourns Sensitivity SPEF (SSPEF), which "seems to have
/// recently dropped by the wayside"; writeSensitivitySpef emits that
/// variationally-annotated flavor too, per-layer sigma annotations
/// included, as a nod to the paper's Futures list ("Statistical SPEF or
/// similar will be revived").

#include <iosfwd>
#include <string>
#include <vector>

#include "interconnect/extract.h"
#include "network/netlist.h"
#include "util/status.h"

namespace tc {

/// Write standard SPEF for all nets at the given extraction context.
void writeSpef(const Netlist& nl, const Extractor& extractor,
               const ExtractionOptions& opt, std::ostream& os,
               const std::string& designName = "top");
std::string toSpef(const Netlist& nl, const Extractor& extractor,
                   const ExtractionOptions& opt,
                   const std::string& designName = "top");

/// Write SSPEF-flavored output: each *CAP / *RES entry carries a *SC
/// (sensitivity) annotation with the owning layer's 1-sigma fractional
/// variation.
void writeSensitivitySpef(const Netlist& nl, const Extractor& extractor,
                          const ExtractionOptions& opt, std::ostream& os,
                          const std::string& designName = "top");

// ---------------------------------------------------------------------------
// Read side
// ---------------------------------------------------------------------------

/// One parsed *D_NET section. Node names keep their textual form
/// ("*<idx>:<node>" resolved through the name map to "<net>:<node>").
struct SpefNet {
  std::string name;
  double totalCap = 0.0;  ///< header lumped cap, fF
  struct CapEntry {
    std::string node;
    double value = 0.0;  ///< fF
  };
  struct ResEntry {
    std::string from, to;
    double value = 0.0;  ///< kOhm
  };
  std::vector<CapEntry> caps;
  std::vector<ResEntry> res;

  double capSum() const;
};

/// A parsed SPEF file.
struct SpefDesign {
  std::string designName;
  std::vector<SpefNet> nets;
  const SpefNet* findNet(const std::string& name) const;
};

/// Parse SPEF written by writeSpef (or the *D_NET/*CONN/*CAP/*RES subset of
/// IEEE 1481). Recoverable: problems are reported to `sink` with line
/// numbers and net names. Degenerate parasitics — negative or non-finite
/// R/C values — are clamped to zero with a warning (bounded pessimism: a
/// clamped value never *hides* load), and duplicate *D_NET sections keep
/// the first occurrence. Only syntax-level corruption fails the parse.
Result<SpefDesign> parseSpef(const std::string& text, DiagnosticSink& sink);
Result<SpefDesign> readSpef(std::istream& is, DiagnosticSink& sink);

}  // namespace tc
