#pragma once
/// \file spef.h
/// \brief SPEF (IEEE 1481) parasitics writer.
///
/// Emits the extracted RC of every net in the standard exchange format
/// signoff tools consume: header with unit declarations, a name map, and
/// per-net *D_NET sections with *CONN / *CAP / *RES. The paper's history
/// section tracks interconnect modeling from lumped C through SPEF-based
/// signoff — and mourns Sensitivity SPEF (SSPEF), which "seems to have
/// recently dropped by the wayside"; writeSensitivitySpef emits that
/// variationally-annotated flavor too, per-layer sigma annotations
/// included, as a nod to the paper's Futures list ("Statistical SPEF or
/// similar will be revived").

#include <iosfwd>
#include <string>

#include "interconnect/extract.h"
#include "network/netlist.h"

namespace tc {

/// Write standard SPEF for all nets at the given extraction context.
void writeSpef(const Netlist& nl, const Extractor& extractor,
               const ExtractionOptions& opt, std::ostream& os,
               const std::string& designName = "top");
std::string toSpef(const Netlist& nl, const Extractor& extractor,
                   const ExtractionOptions& opt,
                   const std::string& designName = "top");

/// Write SSPEF-flavored output: each *CAP / *RES entry carries a *SC
/// (sensitivity) annotation with the owning layer's 1-sigma fractional
/// variation.
void writeSensitivitySpef(const Netlist& nl, const Extractor& extractor,
                          const ExtractionOptions& opt, std::ostream& os,
                          const std::string& designName = "top");

}  // namespace tc
