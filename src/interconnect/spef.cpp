#include "interconnect/spef.h"

#include <ostream>
#include <sstream>

#include "network/verilog.h"

namespace tc {

namespace {

void writeHeader(std::ostream& os, const std::string& designName) {
  os << "*SPEF \"IEEE 1481-1998\"\n";
  os << "*DESIGN \"" << designName << "\"\n";
  os << "*PROGRAM \"goalposts\"\n";
  os << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 KOHM\n*L_UNIT 1 HENRY\n";
  os << "*DIVIDER /\n*DELIMITER :\n*BUS_DELIMITER [ ]\n\n";
}

void writeNameMap(const Netlist& nl, std::ostream& os) {
  os << "*NAME_MAP\n";
  for (NetId n = 0; n < nl.netCount(); ++n)
    os << "*" << n + 1 << " " << nl.net(n).name << "\n";
  os << "\n";
}

/// One net's *D_NET section; optionally annotate per-entry sensitivities.
void writeNet(const Netlist& nl, const Extractor& extractor,
              const ExtractionOptions& opt, NetId n, std::ostream& os,
              bool sensitivity) {
  const Net& net = nl.net(n);
  const NetParasitics p = extractor.extract(n, opt);
  const WireLayer& layer = extractor.stack().layer(p.layer);

  os << "*D_NET *" << n + 1 << " "
     << static_cast<double>(p.totalCap) << "\n";

  os << "*CONN\n";
  if (net.driver >= 0) {
    os << "*I " << nl.instance(net.driver).name << ":"
       << (nl.cellOf(net.driver).isSequential ? "Q" : "Y") << " O\n";
  } else if (net.driverPort >= 0) {
    os << "*P " << nl.port(net.driverPort).name << " I\n";
  }
  for (const auto& s : net.sinks) {
    os << "*I " << nl.instance(s.inst).name << ":"
       << pinName(nl.cellOf(s.inst), s.pin) << " I\n";
  }

  os << "*CAP\n";
  int capIdx = 1;
  for (int node = 0; node < p.tree.nodeCount(); ++node) {
    if (p.tree.nodeCap(node) <= 0.0) continue;
    os << capIdx++ << " *" << n + 1 << ":" << node << " "
       << p.tree.nodeCap(node);
    if (sensitivity) os << " *SC " << layer.cSigmaFrac;
    os << "\n";
  }

  os << "*RES\n";
  int resIdx = 1;
  for (int node = 1; node < p.tree.nodeCount(); ++node) {
    os << resIdx++ << " *" << n + 1 << ":" << p.tree.parentOf(node) << " *"
       << n + 1 << ":" << node << " " << p.tree.resistanceTo(node);
    if (sensitivity) os << " *SC " << layer.rSigmaFrac;
    os << "\n";
  }
  os << "*END\n\n";
}

void writeAll(const Netlist& nl, const Extractor& extractor,
              const ExtractionOptions& opt, std::ostream& os,
              const std::string& designName, bool sensitivity) {
  writeHeader(os, designName);
  if (sensitivity)
    os << "// SSPEF flavor: *SC entries carry 1-sigma fractional layer "
          "variation\n\n";
  writeNameMap(nl, os);
  for (NetId n = 0; n < nl.netCount(); ++n)
    writeNet(nl, extractor, opt, n, os, sensitivity);
}

}  // namespace

void writeSpef(const Netlist& nl, const Extractor& extractor,
               const ExtractionOptions& opt, std::ostream& os,
               const std::string& designName) {
  writeAll(nl, extractor, opt, os, designName, false);
}

std::string toSpef(const Netlist& nl, const Extractor& extractor,
                   const ExtractionOptions& opt,
                   const std::string& designName) {
  std::ostringstream os;
  writeSpef(nl, extractor, opt, os, designName);
  return os.str();
}

void writeSensitivitySpef(const Netlist& nl, const Extractor& extractor,
                          const ExtractionOptions& opt, std::ostream& os,
                          const std::string& designName) {
  writeAll(nl, extractor, opt, os, designName, true);
}

}  // namespace tc
