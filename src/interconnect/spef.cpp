#include "interconnect/spef.h"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "network/verilog.h"

namespace tc {

namespace {

void writeHeader(std::ostream& os, const std::string& designName) {
  os << "*SPEF \"IEEE 1481-1998\"\n";
  os << "*DESIGN \"" << designName << "\"\n";
  os << "*PROGRAM \"goalposts\"\n";
  os << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 KOHM\n*L_UNIT 1 HENRY\n";
  os << "*DIVIDER /\n*DELIMITER :\n*BUS_DELIMITER [ ]\n\n";
}

void writeNameMap(const Netlist& nl, std::ostream& os) {
  os << "*NAME_MAP\n";
  for (NetId n = 0; n < nl.netCount(); ++n)
    os << "*" << n + 1 << " " << nl.net(n).name << "\n";
  os << "\n";
}

/// One net's *D_NET section; optionally annotate per-entry sensitivities.
void writeNet(const Netlist& nl, const Extractor& extractor,
              const ExtractionOptions& opt, NetId n, std::ostream& os,
              bool sensitivity) {
  const Net& net = nl.net(n);
  const NetParasitics p = extractor.extract(n, opt);
  const WireLayer& layer = extractor.stack().layer(p.layer);

  os << "*D_NET *" << n + 1 << " "
     << static_cast<double>(p.totalCap) << "\n";

  os << "*CONN\n";
  if (net.driver >= 0) {
    os << "*I " << nl.instance(net.driver).name << ":"
       << (nl.cellOf(net.driver).isSequential ? "Q" : "Y") << " O\n";
  } else if (net.driverPort >= 0) {
    os << "*P " << nl.port(net.driverPort).name << " I\n";
  }
  for (const auto& s : net.sinks) {
    os << "*I " << nl.instance(s.inst).name << ":"
       << pinName(nl.cellOf(s.inst), s.pin) << " I\n";
  }

  os << "*CAP\n";
  int capIdx = 1;
  for (int node = 0; node < p.tree.nodeCount(); ++node) {
    if (p.tree.nodeCap(node) <= 0.0) continue;
    os << capIdx++ << " *" << n + 1 << ":" << node << " "
       << p.tree.nodeCap(node);
    if (sensitivity) os << " *SC " << layer.cSigmaFrac;
    os << "\n";
  }

  os << "*RES\n";
  int resIdx = 1;
  for (int node = 1; node < p.tree.nodeCount(); ++node) {
    os << resIdx++ << " *" << n + 1 << ":" << p.tree.parentOf(node) << " *"
       << n + 1 << ":" << node << " " << p.tree.resistanceTo(node);
    if (sensitivity) os << " *SC " << layer.rSigmaFrac;
    os << "\n";
  }
  os << "*END\n\n";
}

void writeAll(const Netlist& nl, const Extractor& extractor,
              const ExtractionOptions& opt, std::ostream& os,
              const std::string& designName, bool sensitivity) {
  writeHeader(os, designName);
  if (sensitivity)
    os << "// SSPEF flavor: *SC entries carry 1-sigma fractional layer "
          "variation\n\n";
  writeNameMap(nl, os);
  for (NetId n = 0; n < nl.netCount(); ++n)
    writeNet(nl, extractor, opt, n, os, sensitivity);
}

}  // namespace

void writeSpef(const Netlist& nl, const Extractor& extractor,
               const ExtractionOptions& opt, std::ostream& os,
               const std::string& designName) {
  writeAll(nl, extractor, opt, os, designName, false);
}

std::string toSpef(const Netlist& nl, const Extractor& extractor,
                   const ExtractionOptions& opt,
                   const std::string& designName) {
  std::ostringstream os;
  writeSpef(nl, extractor, opt, os, designName);
  return os.str();
}

void writeSensitivitySpef(const Netlist& nl, const Extractor& extractor,
                          const ExtractionOptions& opt, std::ostream& os,
                          const std::string& designName) {
  writeAll(nl, extractor, opt, os, designName, true);
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

double SpefNet::capSum() const {
  double s = 0.0;
  for (const auto& c : caps) s += c.value;
  return s;
}

const SpefNet* SpefDesign::findNet(const std::string& name) const {
  for (const auto& n : nets)
    if (n.name == name) return &n;
  return nullptr;
}

namespace {

std::vector<std::string> splitTokens(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string t;
  while (is >> t) toks.push_back(std::move(t));
  return toks;
}

std::string unquote(const std::string& s) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"')
    return s.substr(1, s.size() - 2);
  return s;
}

}  // namespace

Result<SpefDesign> readSpef(std::istream& is, DiagnosticSink& sink) {
  std::ostringstream buf;
  buf << is.rdbuf();
  return parseSpef(buf.str(), sink);
}

Result<SpefDesign> parseSpef(const std::string& text, DiagnosticSink& sink) {
  SpefDesign out;
  std::map<std::string, std::string> nameMap;  // "12" -> net name
  std::set<std::string> seenNets;
  SpefNet* cur = nullptr;
  enum class Section { kNone, kConn, kCap, kRes };
  Section sect = Section::kNone;
  bool inNameMap = false;
  int lineNo = 0;
  const int errorsBefore = sink.errorCount();
  // Bail out once a corrupted file has produced this many errors: every
  // one costs a diagnostic record and a heavily mutated megabyte input
  // should not turn the reader into an accidental O(n * diags) pass.
  constexpr int kMaxErrors = 100;

  auto resolve = [&](const std::string& tok) -> std::string {
    if (tok.empty() || tok[0] != '*') return tok;
    const std::string body = tok.substr(1);
    std::string idx = body, suffix;
    const auto colon = body.find(':');
    if (colon != std::string::npos) {
      idx = body.substr(0, colon);
      suffix = body.substr(colon);
    }
    const auto it = nameMap.find(idx);
    if (it == nameMap.end()) {
      sink.error(DiagCode::kSpefUnknownNet, "unmapped name index *" + idx,
                 cur ? cur->name : std::string(), lineNo);
      return tok;
    }
    return it->second + suffix;
  };
  auto parseNum = [&](const std::string& tok, double* v) -> bool {
    // from_chars, not strtod: SPEF numerics must parse identically under
    // any LC_NUMERIC the embedding process sets.
    const auto [end, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), *v);
    if (ec != std::errc() || end != tok.data() + tok.size() || tok.empty()) {
      sink.error(DiagCode::kSpefBadNumber, "bad numeric field '" + tok + "'",
                 cur ? cur->name : std::string(), lineNo);
      return false;
    }
    return true;
  };
  // Degenerate parasitics clamp to zero with a warning instead of flowing
  // NaN/negative loads into delay calculation.
  auto clampRc = [&](double v, DiagCode negCode, const char* what) -> double {
    if (!std::isfinite(v)) {
      sink.warn(DiagCode::kSpefNanValue,
                std::string("non-finite ") + what + " clamped to 0",
                cur ? cur->name : std::string(), lineNo);
      return 0.0;
    }
    if (v < 0.0) {
      sink.warn(negCode, std::string("negative ") + what + " clamped to 0",
                cur ? cur->name : std::string(), lineNo);
      return 0.0;
    }
    return v;
  };

  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    ++lineNo;
    if (sink.errorCount() - errorsBefore >= kMaxErrors) {
      sink.error(DiagCode::kSpefSyntax,
                 "too many errors; giving up on this file", {}, lineNo);
      break;
    }
    const auto comment = line.find("//");
    if (comment != std::string::npos) line.resize(comment);
    const auto toks = splitTokens(line);
    if (toks.empty()) continue;
    const std::string& t0 = toks[0];

    if (t0 == "*DESIGN") {
      if (toks.size() >= 2) out.designName = unquote(toks[1]);
      continue;
    }
    if (t0 == "*NAME_MAP") {
      inNameMap = true;
      continue;
    }
    if (t0 == "*D_NET") {
      inNameMap = false;
      sect = Section::kNone;
      cur = nullptr;
      if (toks.size() < 3) {
        sink.error(DiagCode::kSpefSyntax, "*D_NET needs a name and a cap",
                   {}, lineNo);
        continue;
      }
      const std::string name = resolve(toks[1]);
      double cap = 0.0;
      if (!parseNum(toks[2], &cap)) continue;
      if (!seenNets.insert(name).second) {
        sink.warn(DiagCode::kSpefDuplicateNet,
                  "duplicate *D_NET section; keeping the first", name,
                  lineNo);
        continue;
      }
      SpefNet net;
      net.name = name;
      out.nets.push_back(std::move(net));
      cur = &out.nets.back();
      cur->totalCap = clampRc(cap, DiagCode::kSpefNegativeCap, "total cap");
      continue;
    }
    if (t0 == "*CONN") {
      sect = Section::kConn;
      continue;
    }
    if (t0 == "*CAP") {
      sect = Section::kCap;
      continue;
    }
    if (t0 == "*RES") {
      sect = Section::kRes;
      continue;
    }
    if (t0 == "*END") {
      cur = nullptr;
      sect = Section::kNone;
      continue;
    }
    if (inNameMap && t0[0] == '*') {
      if (toks.size() < 2) {
        sink.error(DiagCode::kSpefSyntax, "name map entry without a name",
                   {}, lineNo);
        continue;
      }
      nameMap[t0.substr(1)] = toks[1];
      continue;
    }
    if (sect == Section::kConn) continue;  // *I/*P pins: advisory only
    if (sect == Section::kCap && cur) {
      if (toks.size() < 3) {
        sink.error(DiagCode::kSpefSyntax, "malformed *CAP entry", cur->name,
                   lineNo);
        continue;
      }
      double v = 0.0;
      if (!parseNum(toks[2], &v)) continue;
      cur->caps.push_back(
          {resolve(toks[1]), clampRc(v, DiagCode::kSpefNegativeCap, "cap")});
      continue;
    }
    if (sect == Section::kRes && cur) {
      if (toks.size() < 4) {
        sink.error(DiagCode::kSpefSyntax, "malformed *RES entry", cur->name,
                   lineNo);
        continue;
      }
      double v = 0.0;
      if (!parseNum(toks[3], &v)) continue;
      cur->res.push_back(
          {resolve(toks[1]), resolve(toks[2]),
           clampRc(v, DiagCode::kSpefNegativeRes, "resistance")});
      continue;
    }
    if (t0[0] == '*') continue;  // header directives: *SPEF, *T_UNIT, ...
    sink.error(DiagCode::kSpefSyntax,
               "unexpected content '" + t0 + "' outside any section", {},
               lineNo);
  }

  if (sink.errorCount() != errorsBefore)
    return Status::failure(DiagCode::kSpefSyntax,
                           "SPEF parse rejected (see diagnostics)");
  return out;
}

}  // namespace tc
