#include "interconnect/steiner.h"

#include <algorithm>
#include <limits>

namespace tc {

RouteTree buildRouteTree(const Point& driver,
                         const std::vector<Point>& sinks) {
  RouteTree t;
  t.points.push_back(driver);
  for (const auto& s : sinks) t.points.push_back(s);

  const std::size_t n = t.points.size();
  std::vector<bool> connected(n, false);
  connected[0] = true;
  // Prim with per-node nearest-tree distances: O(n^2) total instead of the
  // former rescan-everything O(n^3). dist[i] is the L1 distance from
  // unconnected node i to the nearest connected node. Tie-breaking must
  // reproduce the old double loop exactly (it picked the lexicographically
  // smallest (i, j) index pair at the global minimum): the selection scan
  // below runs ascending over i with a strict '<', and the chosen node's
  // parent is re-resolved by an ascending scan over connected j — the
  // incremental dist updates alone would remember the *earliest-joined*
  // nearest j, not the smallest-indexed one.
  std::vector<Um> dist(n, std::numeric_limits<double>::max());
  for (std::size_t i = 1; i < n; ++i)
    dist[i] = manhattan(t.points[i], t.points[0]);
  for (std::size_t added = 1; added < n; ++added) {
    Um best = std::numeric_limits<double>::max();
    std::size_t bestTo = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (connected[i]) continue;
      if (dist[i] < best) {
        best = dist[i];
        bestTo = i;
      }
    }
    std::size_t bestFrom = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (!connected[j]) continue;
      if (manhattan(t.points[bestTo], t.points[j]) == best) {
        bestFrom = j;
        break;
      }
    }
    connected[bestTo] = true;
    t.edges.push_back({static_cast<int>(bestFrom), static_cast<int>(bestTo),
                       best});
    for (std::size_t i = 0; i < n; ++i) {
      if (connected[i]) continue;
      const Um d = manhattan(t.points[i], t.points[bestTo]);
      if (d < dist[i]) dist[i] = d;
    }
  }
  return t;
}

Um hpwl(const Point& driver, const std::vector<Point>& sinks) {
  Um xmin = driver.x, xmax = driver.x, ymin = driver.y, ymax = driver.y;
  for (const auto& s : sinks) {
    xmin = std::min(xmin, s.x);
    xmax = std::max(xmax, s.x);
    ymin = std::min(ymin, s.y);
    ymax = std::max(ymax, s.y);
  }
  return (xmax - xmin) + (ymax - ymin);
}

}  // namespace tc
