#include "interconnect/steiner.h"

#include <algorithm>
#include <limits>

namespace tc {

RouteTree buildRouteTree(const Point& driver,
                         const std::vector<Point>& sinks) {
  RouteTree t;
  t.points.push_back(driver);
  for (const auto& s : sinks) t.points.push_back(s);

  const std::size_t n = t.points.size();
  std::vector<bool> connected(n, false);
  connected[0] = true;
  // Prim: repeatedly attach the unconnected point nearest to the tree.
  for (std::size_t added = 1; added < n; ++added) {
    Um best = std::numeric_limits<double>::max();
    std::size_t bestFrom = 0, bestTo = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (connected[i]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (!connected[j]) continue;
        const Um d = manhattan(t.points[i], t.points[j]);
        if (d < best) {
          best = d;
          bestFrom = j;
          bestTo = i;
        }
      }
    }
    connected[bestTo] = true;
    t.edges.push_back({static_cast<int>(bestFrom), static_cast<int>(bestTo),
                       best});
  }
  return t;
}

Um hpwl(const Point& driver, const std::vector<Point>& sinks) {
  Um xmin = driver.x, xmax = driver.x, ymin = driver.y, ymax = driver.y;
  for (const auto& s : sinks) {
    xmin = std::min(xmin, s.x);
    xmax = std::max(xmax, s.x);
    ymin = std::min(ymin, s.y);
    ymax = std::max(ymax, s.y);
  }
  return (xmax - xmin) + (ymax - ymin);
}

}  // namespace tc
