#pragma once
/// \file sadp.h
/// \brief Self-aligned double/quadruple patterning CD-variation model
/// (paper Sec. 2.2, Fig. 5).
///
/// In SID-type SADP a wire segment's two edges are each defined by one of
/// {mandrel edge, spacer edge, block-mask edge}, giving four composition
/// cases with different CD sigmas (Fig. 5(c)):
///
///   (i)   mandrel/mandrel : sigma^2 = sigma_M^2
///   (ii)  spacer/spacer   : sigma^2 = sigma_M^2 + 2 sigma_S^2
///   (iii) mandrel/block   : sigma^2 = (0.5 sigma_M)^2 + sigma_MB^2
///                                     + (0.5 sigma_B)^2
///   (iv)  spacer/block    : sigma^2 = (0.5 sigma_M)^2 + sigma_S^2
///                                     + sigma_MB^2 + (0.5 sigma_B)^2
///
/// The cut-mask restrictions additionally force line-end extensions and
/// floating fill wires (Fig. 5(b)) that add unpredictable grounded and
/// coupling capacitance to a net.

#include <string>
#include <vector>

#include "util/rng.h"
#include "util/units.h"

namespace tc {

enum class SadpCase {
  kMandrelMandrel,  ///< (i)
  kSpacerSpacer,    ///< (ii)
  kMandrelBlock,    ///< (iii)
  kSpacerBlock,     ///< (iv)
};

const char* toString(SadpCase c);
const std::vector<SadpCase>& allSadpCases();

struct SadpModel {
  // Edge-placement sigmas in nm.
  double sigmaMandrelNm = 1.2;
  double sigmaSpacerNm = 0.8;
  double sigmaBlockNm = 1.5;
  double sigmaMandrelBlockNm = 1.0;  ///< mandrel-to-block overlay
  double nominalCdNm = 32.0;         ///< drawn wire width

  // Fractions of wire segments that land in each patterning case, set by
  // router color assignment; defaults roughly balanced.
  double caseProbability[4] = {0.35, 0.35, 0.15, 0.15};

  // Line-end / fill effects (Fig. 5(b)).
  double lineEndExtensionCapFf = 0.12;   ///< per affected line end
  double floatingFillCouplingFf = 0.25;  ///< per fill wire adjacency
  double lineEndProbability = 0.30;      ///< per net terminal
  double fillAdjacencyPerUm = 0.02;      ///< expected fill neighbors per um

  /// CD sigma (nm) for each composition case, per the Fig. 5(c) formulas.
  double cdSigmaNm(SadpCase c) const;

  /// Fractional width sigma: sigma_CD / CD.
  double widthSigmaFrac(SadpCase c) const { return cdSigmaNm(c) / nominalCdNm; }

  /// First-order electrical sensitivities for a width excursion dW/W:
  /// R ~ 1/W so dR/R = -dW/W; side-wall coupling grows with W while the
  /// gap shrinks, dCc/Cc ~ +1.6 dW/W; area/fringe ground cap ~ +0.6 dW/W.
  double rSigmaFrac(SadpCase c) const { return widthSigmaFrac(c); }
  double ccSigmaFrac(SadpCase c) const { return 1.6 * widthSigmaFrac(c); }
  double cgSigmaFrac(SadpCase c) const { return 0.6 * widthSigmaFrac(c); }

  /// Draw a patterning case per the router color distribution.
  SadpCase sampleCase(Rng& rng) const;

  /// Expected added capacitance on a net of the given length from line-end
  /// extensions and floating fill (deterministic mean; MC adds jitter).
  Ff expectedCutMaskCap(Um wirelength, int terminals) const;
  /// Sampled added capacitance (Poisson-ish jitter around the mean).
  Ff sampleCutMaskCap(Um wirelength, int terminals, Rng& rng) const;
};

}  // namespace tc
