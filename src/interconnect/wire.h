#pragma once
/// \file wire.h
/// \brief BEOL wire models: per-layer R/C, the conventional BEOL corner set
/// (Cw/Cb/Ccw/Ccb/RCw/RCb), per-layer variation sigmas for the decorrelated
/// statistical analysis of Sec. 3.2 (tightened BEOL corners), and
/// non-default routing rules (NDRs) used by the closure optimizer.
///
/// "The rise of the MOL and BEOL": resistance per micron scales with the
/// technology node's wireResScale, which explodes toward 7nm (Sec. 1.3).

#include <string>
#include <vector>

#include "device/tech.h"
#include "util/units.h"

namespace tc {

/// Conventional BEOL corners (CBCs) of Sec. 3.2 / Fig. 8.
enum class BeolCorner {
  kTypical,
  kCworst,   ///< max ground+coupling cap, correlated min R
  kCbest,
  kCcworst,  ///< coupling-dominant worst
  kCcbest,
  kRCworst,  ///< max R, moderately high C
  kRCbest,
};

const char* toString(BeolCorner corner);
const std::vector<BeolCorner>& allBeolCorners();

/// Non-default routing rule: width/spacing multipliers expressed as R/C
/// scale factors. Index 0 is the default rule.
struct NdrRule {
  std::string name = "default";
  double rScale = 1.0;
  double cgScale = 1.0;
  double ccScale = 1.0;
};

const std::vector<NdrRule>& ndrRules();

/// One metal layer's electrical model (per micron of wire).
struct WireLayer {
  std::string name;      ///< "M2".."M6"
  int index = 2;
  KOhm rPerUm = 0.010;   ///< typical, 25C
  Ff cgPerUm = 0.08;     ///< ground cap
  Ff ccPerUm = 0.10;     ///< coupling cap to neighbors
  double rTempCoPerC = 0.0035;  ///< copper resistivity tempco
  bool doublePatterned = false;
  // Per-layer 1-sigma fractional variations (independent across layers —
  // the decorrelation TBC exploits).
  double rSigmaFrac = 0.04;
  double cSigmaFrac = 0.035;

  /// Corner-resolved values. Corners are defined as +/-3 sigma excursions
  /// of the appropriate (R, C) combination, applied homogeneously — which
  /// is exactly the pessimism TBC attacks.
  KOhm rAt(BeolCorner corner, Celsius temp) const;
  Ff cgAt(BeolCorner corner) const;
  Ff ccAt(BeolCorner corner) const;
};

/// The full metal stack for a technology node.
struct BeolStack {
  std::vector<WireLayer> layers;  ///< index 0 = lowest routable (M2)

  static BeolStack forNode(const TechNode& node);
  const WireLayer& layer(int mIndex) const;  ///< by metal index (2..)
};

/// Corner R/C multipliers relative to typical (shared by all layers; the
/// per-layer sigmas above add the decorrelated component).
struct CornerScales {
  double r = 1.0, cg = 1.0, cc = 1.0;
};
CornerScales cornerScales(BeolCorner corner);

/// Scale factor `k` for a tightened corner: the excursion is k/3 of the
/// conventional 3-sigma corner (Sec. 3.2, TBC).
CornerScales tightenedScales(BeolCorner corner, double kSigma);

}  // namespace tc
