#include "interconnect/extract.h"

#include <algorithm>
#include <cmath>

namespace tc {

namespace {
constexpr Ff kPortLoadFf = 2.0;
constexpr Um kSegmentUm = 25.0;  ///< max RC segment before subdivision
}  // namespace

bool Extractor::scanPlaced() const {
  for (InstId i = 0; i < nl_.instanceCount(); ++i) {
    const Instance& inst = nl_.instance(i);
    if (inst.x != 0.0 || inst.y != 0.0) return true;
  }
  return false;
}

int Extractor::layerForLength(Um length) const {
  if (length < 20.0) return 2;
  if (length < 60.0) return 3;
  if (length < 150.0) return 4;
  if (length < 400.0) return 5;
  return 6;
}

NetParasitics Extractor::extract(NetId netId,
                                 const ExtractionOptions& opt) const {
  const Net& net = nl_.net(netId);
  NetParasitics out;

  // --- topology -------------------------------------------------------------
  Point driver;
  std::vector<Point> sinkPts;
  const bool placed = isPlaced();
  if (placed) {
    if (net.driver >= 0) {
      driver = {nl_.instance(net.driver).x, nl_.instance(net.driver).y};
    } else if (!net.sinks.empty()) {
      // Port-driven: approximate the entry point by the sink centroid.
      double cx = 0, cy = 0;
      for (const auto& s : net.sinks) {
        cx += nl_.instance(s.inst).x;
        cy += nl_.instance(s.inst).y;
      }
      driver = {cx / net.sinks.size(), cy / net.sinks.size()};
    }
    for (const auto& s : net.sinks)
      sinkPts.push_back({nl_.instance(s.inst).x, nl_.instance(s.inst).y});
  }

  RouteTree topo;
  if (placed && !sinkPts.empty()) {
    topo = buildRouteTree(driver, sinkPts);
  } else {
    // Wire-load model: star with fanout-dependent total length.
    const int nSinks = std::max<int>(static_cast<int>(net.sinks.size()), 1);
    const Um total = 6.0 + 5.0 * (nSinks - 1);
    const Um per = total / nSinks;
    topo.points.assign(static_cast<std::size_t>(nSinks) + 1, Point{});
    for (int s = 0; s < nSinks; ++s) topo.edges.push_back({0, s + 1, per});
  }
  out.wirelength = topo.totalLength();
  out.layer = net.layer > 0 ? layerForLength(out.wirelength) : 3;

  // --- electrical parameters ------------------------------------------------
  const WireLayer& layer = stack_.layer(out.layer);
  const CornerScales cs = tightenedScales(opt.corner, opt.tightenSigma);
  const NdrRule& ndr =
      ndrRules()[static_cast<std::size_t>(std::min<int>(
          net.ndrClass, static_cast<int>(ndrRules().size()) - 1))];
  const double tempScale = 1.0 + layer.rTempCoPerC * (opt.temp - 25.0);
  double rScale = cs.r * tempScale * ndr.rScale;
  double cgScale = cs.cg * ndr.cgScale;
  double ccScale = cs.cc * ndr.ccScale;
  if (opt.layerRScale) {
    const auto li = static_cast<std::size_t>(out.layer - 2);
    if (li < opt.layerRScale->size()) rScale *= (*opt.layerRScale)[li];
  }
  if (opt.layerCScale) {
    const auto li = static_cast<std::size_t>(out.layer - 2);
    if (li < opt.layerCScale->size()) {
      cgScale *= (*opt.layerCScale)[li];
      ccScale *= (*opt.layerCScale)[li];
    }
  }
  const KOhm rPerUm = layer.rPerUm * rScale;
  const double miller =
      net.millerOverride > 0.0 ? net.millerOverride : opt.millerFactor;
  const Ff cPerUm =
      layer.cgPerUm * cgScale + layer.ccPerUm * ccScale * miller;

  // --- build the RC tree -----------------------------------------------------
  std::vector<int> rcNode(topo.points.size(), -1);
  rcNode[0] = 0;
  for (const auto& e : topo.edges) {
    const int nSegs = std::max(
        1, static_cast<int>(std::ceil(e.length / kSegmentUm)));
    const Um segLen = e.length / nSegs;
    int at = rcNode[static_cast<std::size_t>(e.from)];
    for (int s = 0; s < nSegs; ++s) {
      // Pi segment: half cap stays on the upstream node.
      out.tree.addCap(at, 0.5 * cPerUm * segLen);
      at = out.tree.addNode(at, rPerUm * segLen, 0.5 * cPerUm * segLen);
    }
    rcNode[static_cast<std::size_t>(e.to)] = at;
  }

  // Pin loads at sinks.
  out.sinkNode.resize(net.sinks.size(), 0);
  for (std::size_t s = 0; s < net.sinks.size(); ++s) {
    const int node = rcNode[s + 1];
    out.sinkNode[s] = node >= 0 ? node : 0;
    out.tree.addCap(out.sinkNode[s], nl_.cellOf(net.sinks[s].inst).pinCap);
  }
  if (net.loadPort >= 0) out.tree.addCap(0, kPortLoadFf);

  // SADP cut-mask effects: line-end extensions at terminals, floating fill
  // along the wire (expected value; MC benches sample instead).
  if (opt.sadp && layer.doublePatterned) {
    const Ff extra = opt.sadp->expectedCutMaskCap(
        out.wirelength, static_cast<int>(net.sinks.size()) + 1);
    const Ff half = 0.5 * extra;
    out.tree.addCap(0, half);
    if (!out.sinkNode.empty()) {
      const Ff per = half / static_cast<double>(out.sinkNode.size());
      for (int node : out.sinkNode) out.tree.addCap(node, per);
    } else {
      out.tree.addCap(0, half);
    }
  }

  out.totalCap = out.tree.totalCap();
  out.wireCap = cPerUm * out.wirelength;
  return out;
}

}  // namespace tc
