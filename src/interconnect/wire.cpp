#include "interconnect/wire.h"

#include <stdexcept>

namespace tc {

const char* toString(BeolCorner corner) {
  switch (corner) {
    case BeolCorner::kTypical: return "typ";
    case BeolCorner::kCworst: return "Cw";
    case BeolCorner::kCbest: return "Cb";
    case BeolCorner::kCcworst: return "Ccw";
    case BeolCorner::kCcbest: return "Ccb";
    case BeolCorner::kRCworst: return "RCw";
    case BeolCorner::kRCbest: return "RCb";
  }
  return "?";
}

const std::vector<BeolCorner>& allBeolCorners() {
  static const std::vector<BeolCorner> kAll = {
      BeolCorner::kTypical, BeolCorner::kCworst,  BeolCorner::kCbest,
      BeolCorner::kCcworst, BeolCorner::kCcbest,  BeolCorner::kRCworst,
      BeolCorner::kRCbest};
  return kAll;
}

const std::vector<NdrRule>& ndrRules() {
  static const std::vector<NdrRule> kRules = {
      {"default", 1.0, 1.0, 1.0},
      // Double-width: halved resistance, more area cap.
      {"2W", 0.52, 1.30, 1.05},
      // Double-width double-spacing: also sheds coupling.
      {"2W2S", 0.52, 1.30, 0.45},
  };
  return kRules;
}

CornerScales cornerScales(BeolCorner corner) {
  // 3-sigma excursions with the classic correlation pattern: thicker metal
  // (lower R) comes with higher cap, and vice versa.
  switch (corner) {
    case BeolCorner::kTypical: return {1.00, 1.00, 1.00};
    case BeolCorner::kCworst: return {0.90, 1.12, 1.12};
    case BeolCorner::kCbest: return {1.08, 0.88, 0.88};
    case BeolCorner::kCcworst: return {0.92, 1.05, 1.28};
    case BeolCorner::kCcbest: return {1.06, 0.95, 0.74};
    case BeolCorner::kRCworst: return {1.15, 1.04, 1.04};
    case BeolCorner::kRCbest: return {0.86, 0.95, 0.95};
  }
  return {};
}

CornerScales tightenedScales(BeolCorner corner, double kSigma) {
  const CornerScales full = cornerScales(corner);
  const double f = kSigma / 3.0;
  return {1.0 + (full.r - 1.0) * f, 1.0 + (full.cg - 1.0) * f,
          1.0 + (full.cc - 1.0) * f};
}

KOhm WireLayer::rAt(BeolCorner corner, Celsius temp) const {
  const double tempScale = 1.0 + rTempCoPerC * (temp - 25.0);
  return rPerUm * cornerScales(corner).r * tempScale;
}

Ff WireLayer::cgAt(BeolCorner corner) const {
  return cgPerUm * cornerScales(corner).cg;
}

Ff WireLayer::ccAt(BeolCorner corner) const {
  return ccPerUm * cornerScales(corner).cc;
}

BeolStack BeolStack::forNode(const TechNode& node) {
  BeolStack s;
  // Reference 28nm-class stack; R scales with the node's wireResScale,
  // which captures the "rise of the BEOL". Lower layers are thinner (more
  // resistive) and more tightly coupled; double patterning applies to the
  // lowest `doublePatternedLayers` routable layers and widens their sigma.
  struct Proto {
    const char* name;
    int idx;
    double r, cg, cc;
  };
  const Proto protos[] = {
      {"M2", 2, 0.080, 0.065, 0.115}, {"M3", 3, 0.060, 0.070, 0.105},
      {"M4", 4, 0.030, 0.080, 0.085}, {"M5", 5, 0.018, 0.085, 0.070},
      {"M6", 6, 0.009, 0.095, 0.050},
  };
  for (const auto& p : protos) {
    WireLayer l;
    l.name = p.name;
    l.index = p.idx;
    l.rPerUm = p.r * node.wireResScale;
    l.cgPerUm = p.cg * node.wireCapScale;
    l.ccPerUm = p.cc * node.wireCapScale;
    l.doublePatterned = (p.idx - 2) < node.doublePatternedLayers;
    if (l.doublePatterned) {
      l.rSigmaFrac = 0.07;
      l.cSigmaFrac = 0.06;
    }
    s.layers.push_back(l);
  }
  return s;
}

const WireLayer& BeolStack::layer(int mIndex) const {
  for (const auto& l : layers)
    if (l.index == mIndex) return l;
  throw std::invalid_argument("no such layer M" + std::to_string(mIndex));
}

}  // namespace tc
