#pragma once
/// \file trace.h
/// \brief Structured tracing: RAII spans with thread-safe buffering and
/// Chrome `chrome://tracing` JSON export.
///
/// The Figure-1 closure loop and the MCMM signoff runs are iterative,
/// multi-engine flows whose cost drivers (per-level sweep time, PBA recalc
/// counts, scenario fan-out, incremental dirty frontiers) are invisible to
/// an end-to-end wall clock. Spans make them visible: every hot layer opens
/// a span (`TC_SPAN("sta", "propagate")`), the collector buffers events per
/// thread without locks on the hot path, and `traceExportChrome()` writes a
/// file `chrome://tracing` / Perfetto loads directly.
///
/// Zero overhead when off, two ways:
///  - compile time: building with -DTC_DISABLE_TRACING turns every macro
///    into nothing and every function into an empty inline stub;
///  - run time: tracing defaults to disabled. A disabled span is one
///    relaxed atomic load — no clock read, no allocation, no buffering
///    (trace_metrics_test pins the no-allocation property).
///
/// Tracing never feeds back into analysis: spans read the clock and copy
/// names, nothing else, so every determinism contract (MCMM merge order,
/// incremental-vs-full bit identity) holds with tracing on. See DESIGN.md
/// "Observability".

#include <cstdint>
#include <string>

#ifndef TC_DISABLE_TRACING
#define TC_TRACING_ENABLED 1
#else
#define TC_TRACING_ENABLED 0
#endif

namespace tc {

/// One buffered trace event (Chrome trace "X" complete / "i" instant).
struct TraceEvent {
  const char* cat = "";   ///< category — must be a string literal
  std::string name;       ///< span/event name
  std::string args;       ///< pre-rendered JSON object body ("" = none)
  double tsUs = 0.0;      ///< start, microseconds since trace epoch
  double durUs = 0.0;     ///< duration (complete events)
  int tid = 0;            ///< stable per-thread id (registration order)
  char phase = 'X';       ///< 'X' complete, 'i' instant
};

#if TC_TRACING_ENABLED

/// Runtime switch. Off by default; benches flip it on under `--trace`.
bool traceEnabled();
void traceSetEnabled(bool on);

/// Drop every buffered event (thread buffers stay registered).
void traceClear();

/// Number of buffered events across all threads (test introspection).
std::size_t traceEventCount();
/// Number of registered per-thread buffers (test introspection).
std::size_t traceThreadBufferCount();

/// Record an instant event ('i') at "now".
void traceInstant(const char* cat, std::string name, std::string args = {});
/// Record a pre-timed complete event (the TraceSpan destructor's path).
void traceComplete(const char* cat, std::string name, std::string args,
                   double tsUs, double durUs);

/// Microseconds since the process-wide trace epoch.
double traceNowUs();

/// Render every buffered event as Chrome trace JSON
/// (`{"traceEvents":[...]}`), events ordered by (tid, ts) so the export is
/// a pure function of the recorded events.
std::string traceRenderChrome();
/// Write traceRenderChrome() to `path`; false (with a log line) on I/O
/// failure.
bool traceExportChrome(const std::string& path);

/// printf-format a span name. Only call when traceEnabled() — the macros
/// below guard it so the disabled path never formats.
std::string traceFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// RAII span: records one complete event from construction to destruction.
/// Inactive (and allocation-free) when tracing is off at construction.
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name) {
    if (traceEnabled()) open(cat, name);
  }
  TraceSpan(const char* cat, std::string name) {
    if (traceEnabled() && !name.empty()) open(cat, std::move(name));
  }
  ~TraceSpan() {
    if (active_) close();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach one "args" key to the span (rendered into the Chrome event's
  /// args object). No-ops on an inactive span.
  void arg(const char* key, double value);
  void arg(const char* key, std::int64_t value);
  void arg(const char* key, const char* value);

 private:
  void open(const char* cat, std::string name);
  void close();

  bool active_ = false;
  const char* cat_ = "";
  std::string name_;
  std::string args_;
  double startUs_ = 0.0;
};

#else  // !TC_TRACING_ENABLED — every entry point collapses to a stub.

inline bool traceEnabled() { return false; }
inline void traceSetEnabled(bool) {}
inline void traceClear() {}
inline std::size_t traceEventCount() { return 0; }
inline std::size_t traceThreadBufferCount() { return 0; }
inline void traceInstant(const char*, std::string, std::string = {}) {}
inline void traceComplete(const char*, std::string, std::string, double,
                          double) {}
inline double traceNowUs() { return 0.0; }
inline std::string traceRenderChrome() { return "{\"traceEvents\":[]}\n"; }
inline bool traceExportChrome(const std::string&) { return false; }
inline std::string traceFormat(const char*, ...) { return {}; }

class TraceSpan {
 public:
  TraceSpan(const char*, const char*) {}
  TraceSpan(const char*, std::string) {}
  void arg(const char*, double) {}
  void arg(const char*, std::int64_t) {}
  void arg(const char*, const char*) {}
};

#endif  // TC_TRACING_ENABLED

#define TC_TRACE_CONCAT2(a, b) a##b
#define TC_TRACE_CONCAT(a, b) TC_TRACE_CONCAT2(a, b)

/// Open a span for the rest of the enclosing scope. `name` may be a string
/// literal (allocation-free when disabled) or a std::string.
#define TC_SPAN(cat, name) \
  ::tc::TraceSpan TC_TRACE_CONCAT(tcSpan_, __LINE__)(cat, name)

/// Span with a printf-formatted name; the format only runs when tracing is
/// enabled (the ternary keeps the disabled path allocation-free).
#define TC_SPAN_F(var, cat, ...)                                      \
  ::tc::TraceSpan var(cat, ::tc::traceEnabled()                       \
                               ? ::tc::traceFormat(__VA_ARGS__)       \
                               : std::string())

}  // namespace tc
