#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tc {

void TextTable::setHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::addRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << ' ' << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  rule();
  if (!header_.empty()) {
    line(header_);
    rule();
  }
  for (const auto& r : rows_) line(r);
  rule();
  for (const auto& f : footnotes_) os << "  * " << f << '\n';
  return os.str();
}

void TextTable::print() const { std::fputs(render().c_str(), stdout); }

std::string asciiBar(double value, double maxValue, int width) {
  if (maxValue <= 0.0 || value <= 0.0 || width <= 0) return "";
  const int n = std::min(
      width, static_cast<int>(value / maxValue * width + 0.5));
  return std::string(static_cast<std::size_t>(std::max(n, 0)), '#');
}

}  // namespace tc
