#pragma once
/// \file metrics.h
/// \brief Typed counter/gauge/histogram registry with deterministic export.
///
/// Where trace spans answer "where did the time go", metrics answer "how
/// much work happened": RC-cache hit rates, dirty-frontier sizes,
/// NaN-quarantine counts, scenario fan-out. Counters are always on — one
/// relaxed atomic add on the hot path — because the counts themselves are
/// the perf contract `tools/bench_compare.py` gates on (a cache hit-rate
/// drop is a regression even when the wall clock hides it).
///
/// Registration: instrument sites hold a `static Counter&` (function-local
/// static => one registry lookup per process), so steady-state cost is the
/// atomic op alone. Export is deterministic: metrics render sorted by name,
/// values are a pure function of the work performed, so two identical runs
/// export byte-identical text (trace_metrics_test pins this).
///
/// Stability: sites tag each metric kStable (value is a deterministic
/// function of the workload: cache hits, frontier sizes, edit counts) or
/// kNoisy (scheduling-dependent: work steals, per-worker busy time,
/// characterization disk-cache hits). Only stable metrics are folded into
/// bench `--json` files and gated by CI; noisy ones still export for humans.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tc {

enum class MetricStability { kStable, kNoisy };

/// Monotonic event count. Thread-safe; relaxed adds (the total is the only
/// observable, and it is summed, not ordered).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value (pool widths, current WNS, ...).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Power-of-two-bucketed distribution (dirty-frontier sizes, level widths).
/// observe() is thread-safe: bucket counts and the count are relaxed adds;
/// sum/min/max converge by CAS. Totals are order-independent, so parallel
/// and serial runs of the same work export identically.
class Histogram {
 public:
  static constexpr int kBuckets = 40;  ///< bucket i covers [2^(i-1), 2^i)

  void observe(double v);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  ///< 0 when empty
  double max() const;  ///< 0 when empty
  std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> any_{false};
};

/// One exported metric's state, flattened for report generation.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  std::string unit;
  Kind kind = Kind::kCounter;
  MetricStability stability = MetricStability::kStable;
  double value = 0.0;         ///< counter/gauge value; histogram mean
  std::uint64_t count = 0;    ///< histogram observation count
  double sum = 0.0, min = 0.0, max = 0.0;  ///< histogram aggregates
};

/// Process-wide metric registry. counter()/gauge()/histogram() find or
/// create by name; returned references stay valid for the process lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(const std::string& name, const std::string& unit = "",
                   MetricStability stability = MetricStability::kStable);
  Gauge& gauge(const std::string& name, const std::string& unit = "",
               MetricStability stability = MetricStability::kStable);
  Histogram& histogram(const std::string& name, const std::string& unit = "",
                       MetricStability stability = MetricStability::kStable);

  /// Zero every registered metric (registrations persist). Benches call
  /// this between phases to scope the counters they fold into JSON.
  void resetAll();

  /// All metrics, sorted by name (deterministic).
  std::vector<MetricSnapshot> snapshot() const;
  /// Metrics whose name starts with `prefix`, sorted by name. The serving
  /// layer's live `metrics` command uses this to scope a dump to one
  /// subsystem ("serve.", "sta.") without exporting the whole registry.
  std::vector<MetricSnapshot> snapshot(const std::string& prefix) const;

  /// Human-readable table, one metric per line, sorted by name.
  std::string exportText() const;
  /// JSON array of metric objects, sorted by name.
  std::string exportJson() const;

 private:
  struct Entry;
  MetricsRegistry() = default;
  Entry& findOrCreate(const std::string& name, const std::string& unit,
                      MetricStability stability, MetricSnapshot::Kind kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  ///< sorted by name
};

}  // namespace tc
