#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace tc {

namespace {

const Json& nullJson() {
  static const Json kNull;
  return kNull;
}

void appendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(ch);
        }
    }
  }
  out->push_back('"');
}

/// Recursive-descent parser over a bounded view. Never throws; every
/// failure path produces a Status naming the offset, and nesting depth is
/// explicit so hostile "[[[[..." input cannot exhaust the stack.
class Parser {
 public:
  Parser(std::string_view text, int maxDepth)
      : text_(text), maxDepth_(maxDepth) {}

  Result<Json> run() {
    skipWs();
    Json root;
    Status st = value(&root, 0);
    if (!st.ok()) return st;
    skipWs();
    if (pos_ != text_.size())
      return fail(DiagCode::kJsonTrailingData,
                  "trailing bytes after JSON value");
    return root;
  }

 private:
  Status fail(DiagCode code, const std::string& what) {
    return Status::failure(code, what + " at byte " + std::to_string(pos_));
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (text_.size() - pos_ < n) return false;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  Status value(Json* out, int depth) {
    if (depth > maxDepth_)
      return fail(DiagCode::kJsonDepthExceeded,
                  "nesting deeper than " + std::to_string(maxDepth_));
    if (pos_ >= text_.size())
      return fail(DiagCode::kJsonSyntax, "unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return object(out, depth);
      case '[': return array(out, depth);
      case '"': {
        std::string s;
        Status st = string(&s);
        if (!st.ok()) return st;
        *out = Json(std::move(s));
        return Status::okStatus();
      }
      case 't':
        if (literal("true")) {
          *out = Json(true);
          return Status::okStatus();
        }
        return fail(DiagCode::kJsonSyntax, "bad literal");
      case 'f':
        if (literal("false")) {
          *out = Json(false);
          return Status::okStatus();
        }
        return fail(DiagCode::kJsonSyntax, "bad literal");
      case 'n':
        if (literal("null")) {
          *out = Json();
          return Status::okStatus();
        }
        return fail(DiagCode::kJsonSyntax, "bad literal");
      default:
        return number(out);
    }
  }

  Status object(Json* out, int depth) {
    ++pos_;  // '{'
    *out = Json::object();
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::okStatus();
    }
    for (;;) {
      skipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail(DiagCode::kJsonSyntax, "expected object key");
      std::string key;
      Status st = string(&key);
      if (!st.ok()) return st;
      skipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':')
        return fail(DiagCode::kJsonSyntax, "expected ':'");
      ++pos_;
      skipWs();
      Json member;
      st = value(&member, depth + 1);
      if (!st.ok()) return st;
      out->set(key, std::move(member));
      skipWs();
      if (pos_ >= text_.size())
        return fail(DiagCode::kJsonSyntax, "unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Status::okStatus();
      }
      return fail(DiagCode::kJsonSyntax, "expected ',' or '}'");
    }
  }

  Status array(Json* out, int depth) {
    ++pos_;  // '['
    *out = Json::array();
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::okStatus();
    }
    for (;;) {
      skipWs();
      Json elem;
      Status st = value(&elem, depth + 1);
      if (!st.ok()) return st;
      out->push(std::move(elem));
      skipWs();
      if (pos_ >= text_.size())
        return fail(DiagCode::kJsonSyntax, "unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::okStatus();
      }
      return fail(DiagCode::kJsonSyntax, "expected ',' or ']'");
    }
  }

  Status string(std::string* out) {
    ++pos_;  // '"'
    for (;;) {
      if (pos_ >= text_.size())
        return fail(DiagCode::kJsonSyntax, "unterminated string");
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::okStatus();
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail(DiagCode::kJsonSyntax,
                    "raw control character in string");
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size())
        return fail(DiagCode::kJsonBadEscape, "truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          Status st = hex4(&cp);
          if (!st.ok()) return st;
          // Surrogate pair -> one code point; lone surrogates reject.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (text_.size() - pos_ < 2 || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              return fail(DiagCode::kJsonBadEscape, "lone high surrogate");
            pos_ += 2;
            unsigned lo = 0;
            st = hex4(&lo);
            if (!st.ok()) return st;
            if (lo < 0xDC00 || lo > 0xDFFF)
              return fail(DiagCode::kJsonBadEscape, "bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail(DiagCode::kJsonBadEscape, "lone low surrogate");
          }
          appendUtf8(cp, out);
          break;
        }
        default:
          return fail(DiagCode::kJsonBadEscape, "unknown escape");
      }
    }
  }

  Status hex4(unsigned* out) {
    if (text_.size() - pos_ < 4)
      return fail(DiagCode::kJsonBadEscape, "truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<unsigned>(c - 'A' + 10);
      else
        return fail(DiagCode::kJsonBadEscape, "bad hex digit in \\u");
    }
    pos_ += 4;
    *out = v;
    return Status::okStatus();
  }

  static void appendUtf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status number(Json* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
      return pos_ > before;
    };
    if (!digits())
      return fail(DiagCode::kJsonBadNumber, "expected digits");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits())
        return fail(DiagCode::kJsonBadNumber, "expected fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (!digits())
        return fail(DiagCode::kJsonBadNumber, "expected exponent digits");
    }
    // from_chars, not strtod: strtod honors LC_NUMERIC, so an embedding
    // process with a comma-decimal locale would reject "1.5". from_chars
    // is locale-independent by specification.
    const std::string_view tok = text_.substr(start, pos_ - start);
    double v = 0.0;
    const auto [end, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (ec != std::errc() || end != tok.data() + tok.size() ||
        !std::isfinite(v))
      return fail(DiagCode::kJsonBadNumber, "unrepresentable number");
    *out = Json(v);
    return Status::okStatus();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int maxDepth_;
};

}  // namespace

const Json& Json::operator[](const std::string& key) const {
  if (isObject()) {
    const auto it = obj_.find(key);
    if (it != obj_.end()) return it->second;
  }
  return nullJson();
}

Json& Json::set(const std::string& key, Json value) {
  if (type_ != Type::kObject) {
    *this = object();
  }
  obj_[key] = std::move(value);
  return *this;
}

const Json& Json::at(std::size_t i) const {
  if (isArray() && i < arr_.size()) return arr_[i];
  return nullJson();
}

Json& Json::push(Json value) {
  if (type_ != Type::kArray) {
    *this = array();
  }
  arr_.push_back(std::move(value));
  return *this;
}

std::string Json::numberToString(double v) {
  if (!std::isfinite(v)) return "null";
  // Integral values in the exact-double range print bare, so ids, counts
  // and epochs read as integers on the wire.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  // General format with 17 significant digits round-trips every double,
  // which is what makes two renders of the same timing state
  // byte-identical. to_chars (unlike snprintf "%.17g") always formats in
  // the C locale, so a comma-decimal LC_NUMERIC cannot break the
  // byte-deterministic dump contract.
  char buf[40];
  const auto res = std::to_chars(buf, buf + sizeof buf, v,
                                 std::chars_format::general, 17);
  return std::string(buf, res.ptr);
}

void Json::dumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull: *out += "null"; break;
    case Type::kBool: *out += bool_ ? "true" : "false"; break;
    case Type::kNumber: *out += numberToString(num_); break;
    case Type::kString: appendEscaped(str_, out); break;
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out->push_back(',');
        first = false;
        appendEscaped(k, out);
        out->push_back(':');
        v.dumpTo(out);
      }
      out->push_back('}');
      break;
    }
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& v : arr_) {
        if (!first) out->push_back(',');
        first = false;
        v.dumpTo(out);
      }
      out->push_back(']');
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dumpTo(&out);
  return out;
}

bool Json::operator==(const Json& o) const {
  if (type_ != o.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == o.bool_;
    case Type::kNumber: return num_ == o.num_;
    case Type::kString: return str_ == o.str_;
    case Type::kObject: return obj_ == o.obj_;
    case Type::kArray: return arr_ == o.arr_;
  }
  return false;
}

Result<Json> Json::parse(std::string_view text, int maxDepth) {
  return Parser(text, maxDepth).run();
}

}  // namespace tc
