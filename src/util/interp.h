#pragma once
/// \file interp.h
/// \brief 1-D and 2-D table interpolation, the numerical core of NLDM / LVF
/// library lookups and of lib-group voltage interpolation.
///
/// Liberty-style tables extrapolate linearly beyond the characterized grid,
/// which is what signoff STA tools do; both helpers here follow that rule.

#include <cstddef>
#include <vector>

namespace tc {

/// A strictly increasing axis of sample points.
class Axis {
 public:
  Axis() = default;
  explicit Axis(std::vector<double> points);

  std::size_t size() const { return points_.size(); }
  double operator[](std::size_t i) const { return points_[i]; }
  const std::vector<double>& points() const { return points_; }

  /// Index i such that points[i] <= x < points[i+1], clamped so that both i
  /// and i+1 are valid (enables linear extrapolation at the ends).
  std::size_t segment(double x) const;
  /// Fractional position of x within its segment (may be <0 or >1 when
  /// extrapolating).
  double fraction(double x, std::size_t seg) const;

 private:
  std::vector<double> points_;
};

/// Piecewise-linear 1-D interpolation with linear extrapolation.
double interp1(const Axis& axis, const std::vector<double>& values, double x);

/// Row-major 2-D bilinear table: value(x, y) with x indexing rows.
class Table2D {
 public:
  Table2D() = default;
  Table2D(Axis xAxis, Axis yAxis, std::vector<double> values);

  bool empty() const { return values_.empty(); }
  const Axis& xAxis() const { return x_; }
  const Axis& yAxis() const { return y_; }
  double at(std::size_t ix, std::size_t iy) const {
    return values_[ix * y_.size() + iy];
  }
  double& at(std::size_t ix, std::size_t iy) {
    return values_[ix * y_.size() + iy];
  }

  /// Bilinear interpolation with linear extrapolation outside the grid.
  double lookup(double x, double y) const;

  /// The general bilinear tail of lookup() with the segment/fraction pairs
  /// already resolved by the caller. When several tables share one (x, y)
  /// grid — an NLDM arc's delay/slew/sigma surfaces are characterized on
  /// the same axes — the caller resolves the segments once and evaluates
  /// every table through here; the arithmetic is lookup()'s own, so the
  /// results are bit-identical. Only valid when both axis sizes are >= 2.
  double lookupAt(std::size_t sx, std::size_t sy, double fx,
                  double fy) const {
    const double v00 = at(sx, sy);
    const double v01 = at(sx, sy + 1);
    const double v10 = at(sx + 1, sy);
    const double v11 = at(sx + 1, sy + 1);
    const double v0 = v00 + fy * (v01 - v00);
    const double v1 = v10 + fy * (v11 - v10);
    return v0 + fx * (v1 - v0);
  }

  /// Apply f to every stored value (used to derate whole tables).
  template <typename F>
  void transform(F&& f) {
    for (double& v : values_) v = f(v);
  }

 private:
  Axis x_, y_;
  std::vector<double> values_;
};

}  // namespace tc
