#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace tc {

namespace {

/// Bucket index for a histogram observation: 0 for v < 1, else
/// 1 + floor(log2(v)) clamped to the last bucket.
int bucketIndex(double v) {
  if (!(v >= 1.0)) return 0;  // also catches NaN
  int i = 1;
  while (i < Histogram::kBuckets - 1 && v >= 2.0) {
    v *= 0.5;
    ++i;
  }
  return i;
}

/// CAS-accumulate: out = op(out, v). Relaxed is fine — every mutation
/// happens through this loop, so the final value is order-independent.
template <class Op>
void atomicAccumulate(std::atomic<double>& out, double v, Op op) {
  double cur = out.load(std::memory_order_relaxed);
  while (!out.compare_exchange_weak(cur, op(cur, v),
                                    std::memory_order_relaxed)) {
  }
}

/// Format a double the way the bench JSON does: shortest round-trippable
/// form is overkill here; %.6g is stable and readable.
std::string fmtNum(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void appendEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

void Histogram::observe(double v) {
  buckets_[static_cast<std::size_t>(bucketIndex(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomicAccumulate(sum_, v, [](double a, double b) { return a + b; });
  if (!any_.load(std::memory_order_relaxed)) {
    // First observation seeds min/max; racing observers both run the CAS
    // loops below afterwards, so a lost race only costs a retry.
    bool expected = false;
    if (any_.compare_exchange_strong(expected, true,
                                     std::memory_order_relaxed)) {
      min_.store(v, std::memory_order_relaxed);
      max_.store(v, std::memory_order_relaxed);
      return;
    }
  }
  atomicAccumulate(min_, v, [](double a, double b) { return std::min(a, b); });
  atomicAccumulate(max_, v, [](double a, double b) { return std::max(a, b); });
}

double Histogram::min() const {
  return any_.load(std::memory_order_relaxed)
             ? min_.load(std::memory_order_relaxed)
             : 0.0;
}

double Histogram::max() const {
  return any_.load(std::memory_order_relaxed)
             ? max_.load(std::memory_order_relaxed)
             : 0.0;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  any_.store(false, std::memory_order_relaxed);
}

struct MetricsRegistry::Entry {
  std::string name;
  std::string unit;
  MetricStability stability = MetricStability::kStable;
  MetricSnapshot::Kind kind = MetricSnapshot::Kind::kCounter;
  Counter counter;
  Gauge gauge;
  Histogram histogram;
};

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* r = new MetricsRegistry;  // leaked: safe in dtors
  return *r;
}

MetricsRegistry::Entry& MetricsRegistry::findOrCreate(
    const std::string& name, const std::string& unit,
    MetricStability stability, MetricSnapshot::Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const std::unique_ptr<Entry>& e, const std::string& n) {
        return e->name < n;
      });
  if (it != entries_.end() && (*it)->name == name) return **it;
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->unit = unit;
  e->stability = stability;
  e->kind = kind;
  return **entries_.insert(it, std::move(e));
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& unit,
                                  MetricStability stability) {
  return findOrCreate(name, unit, stability, MetricSnapshot::Kind::kCounter)
      .counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& unit,
                              MetricStability stability) {
  return findOrCreate(name, unit, stability, MetricSnapshot::Kind::kGauge)
      .gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& unit,
                                      MetricStability stability) {
  return findOrCreate(name, unit, stability, MetricSnapshot::Kind::kHistogram)
      .histogram;
}

void MetricsRegistry::resetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : entries_) {
    e->counter.reset();
    e->gauge.reset();
    e->histogram.reset();
  }
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricSnapshot s;
    s.name = e->name;
    s.unit = e->unit;
    s.kind = e->kind;
    s.stability = e->stability;
    switch (e->kind) {
      case MetricSnapshot::Kind::kCounter:
        s.value = static_cast<double>(e->counter.value());
        break;
      case MetricSnapshot::Kind::kGauge:
        s.value = e->gauge.value();
        break;
      case MetricSnapshot::Kind::kHistogram:
        s.count = e->histogram.count();
        s.sum = e->histogram.sum();
        s.min = e->histogram.min();
        s.max = e->histogram.max();
        s.value = s.count ? s.sum / static_cast<double>(s.count) : 0.0;
        break;
    }
    out.push_back(std::move(s));
  }
  return out;  // entries_ is kept name-sorted, so the snapshot is too
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot(
    const std::string& prefix) const {
  std::vector<MetricSnapshot> all = snapshot();
  if (prefix.empty()) return all;
  std::vector<MetricSnapshot> out;
  for (auto& s : all)
    if (s.name.rfind(prefix, 0) == 0) out.push_back(std::move(s));
  return out;
}

std::string MetricsRegistry::exportText() const {
  std::string out;
  for (const MetricSnapshot& s : snapshot()) {
    char line[256];
    switch (s.kind) {
      case MetricSnapshot::Kind::kCounter:
        std::snprintf(line, sizeof line, "%-44s %14llu %s\n", s.name.c_str(),
                      static_cast<unsigned long long>(s.value),
                      s.unit.c_str());
        break;
      case MetricSnapshot::Kind::kGauge:
        std::snprintf(line, sizeof line, "%-44s %14.6g %s\n", s.name.c_str(),
                      s.value, s.unit.c_str());
        break;
      case MetricSnapshot::Kind::kHistogram:
        std::snprintf(line, sizeof line,
                      "%-44s n=%llu mean=%.6g min=%.6g max=%.6g %s\n",
                      s.name.c_str(), static_cast<unsigned long long>(s.count),
                      s.value, s.min, s.max, s.unit.c_str());
        break;
    }
    out += line;
  }
  return out;
}

std::string MetricsRegistry::exportJson() const {
  std::string out = "[";
  bool first = true;
  for (const MetricSnapshot& s : snapshot()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\":\"";
    appendEscaped(out, s.name);
    out += "\",\"kind\":\"";
    out += s.kind == MetricSnapshot::Kind::kCounter    ? "counter"
           : s.kind == MetricSnapshot::Kind::kGauge    ? "gauge"
                                                       : "histogram";
    out += "\",\"unit\":\"";
    appendEscaped(out, s.unit);
    out += "\",\"stability\":\"";
    out += s.stability == MetricStability::kStable ? "stable" : "noisy";
    out += "\"";
    if (s.kind == MetricSnapshot::Kind::kHistogram) {
      out += ",\"count\":" + std::to_string(s.count);
      out += ",\"sum\":" + fmtNum(s.sum);
      out += ",\"min\":" + fmtNum(s.min);
      out += ",\"max\":" + fmtNum(s.max);
      out += ",\"mean\":" + fmtNum(s.value);
    } else {
      out += ",\"value\":" + fmtNum(s.value);
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

}  // namespace tc
