#include "util/log.h"

#include <atomic>
#include <cstdio>

namespace tc {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

void logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[%s] ", tag(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace tc
