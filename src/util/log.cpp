#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace tc {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

// Guards stderr emission and the capture sink. A plain function-local
// static would race on first use from multiple threads pre-C++11; a
// namespace-scope mutex is constant-initialized and safe.
std::mutex g_mu;
LogCaptureFn g_capture;                  // guarded by g_mu
std::atomic<bool> g_captureEcho{true};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

LogCaptureFn setLogCaptureSink(LogCaptureFn sink) {
  std::lock_guard<std::mutex> lock(g_mu);
  LogCaptureFn prev = std::move(g_capture);
  g_capture = std::move(sink);
  return prev;
}

void setLogCaptureEcho(bool echo) { g_captureEcho.store(echo); }

void logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;

  // Format the whole line first so the locked section is a single write
  // and concurrent lines never interleave.
  char stackBuf[512];
  va_list args;
  va_start(args, fmt);
  va_list argsCopy;
  va_copy(argsCopy, args);
  const int need = std::vsnprintf(stackBuf, sizeof stackBuf, fmt, args);
  va_end(args);

  std::string msg;
  if (need < 0) {
    msg = "(log format error)";
    va_end(argsCopy);
  } else if (static_cast<std::size_t>(need) < sizeof stackBuf) {
    msg.assign(stackBuf, static_cast<std::size_t>(need));
    va_end(argsCopy);
  } else {
    msg.resize(static_cast<std::size_t>(need));
    std::vsnprintf(msg.data(), msg.size() + 1, fmt, argsCopy);
    va_end(argsCopy);
  }

  std::lock_guard<std::mutex> lock(g_mu);
  const bool captured = static_cast<bool>(g_capture);
  if (captured) g_capture(level, msg);
  if (!captured || g_captureEcho.load())
    std::fprintf(stderr, "[%s] %s\n", tag(level), msg.c_str());
}

struct LogCapture::Impl {
  mutable std::mutex mu;
  std::vector<std::pair<LogLevel, std::string>> lines;
};

LogCapture::LogCapture() : impl_(new Impl) {
  Impl* impl = impl_;
  previous_ = setLogCaptureSink([impl](LogLevel lvl, const std::string& s) {
    std::lock_guard<std::mutex> lock(impl->mu);
    impl->lines.emplace_back(lvl, s);
  });
  previousEcho_ = g_captureEcho.load();
  setLogCaptureEcho(false);
}

LogCapture::~LogCapture() {
  setLogCaptureSink(std::move(previous_));
  setLogCaptureEcho(previousEcho_);
  delete impl_;
}

std::vector<std::pair<LogLevel, std::string>> LogCapture::lines() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->lines;
}

bool LogCapture::contains(const std::string& needle) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const auto& [lvl, s] : impl_->lines)
    if (s.find(needle) != std::string::npos) return true;
  return false;
}

int LogCapture::countAt(LogLevel level) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  int n = 0;
  for (const auto& [lvl, s] : impl_->lines)
    if (lvl == level) ++n;
  return n;
}

}  // namespace tc
