#pragma once
/// \file table.h
/// \brief ASCII table / series renderer used by the benchmark harness to
/// print the rows and series of each figure the paper reports.

#include <string>
#include <vector>

namespace tc {

/// Column-aligned text table with a title, header row and footnotes.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  void setHeader(std::vector<std::string> header);
  void addRow(std::vector<std::string> row);
  void addFootnote(std::string note) { footnotes_.push_back(std::move(note)); }

  /// Format helper: fixed-precision double.
  static std::string num(double v, int precision = 3);
  /// Format helper: percentage with sign.
  static std::string pct(double fraction, int precision = 1);

  std::string render() const;
  /// Render to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> footnotes_;
};

/// Minimal inline bar chart: value scaled to a run of '#' characters,
/// for printing distributions/series in bench output.
std::string asciiBar(double value, double maxValue, int width = 40);

}  // namespace tc
