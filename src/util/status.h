#pragma once
/// \file status.h
/// \brief tc::Status / tc::Result<T>: the recoverable error model.
///
/// Policy (see DESIGN.md "Error handling & degradation policy"): anything
/// that consumes *external* input — file readers, netlist construction from
/// parsed text, user-supplied tables — returns Status/Result and reports
/// detail through a DiagnosticSink. `throw` is reserved for programmer
/// errors on internal APIs (bad index from our own code), where a crash in
/// tests is the feature.

#include <cassert>
#include <optional>
#include <string>
#include <utility>

#include "util/diag.h"

namespace tc {

class [[nodiscard]] Status {
 public:
  Status() = default;  ///< OK
  static Status okStatus() { return {}; }
  static Status failure(DiagCode code, std::string message) {
    Status s;
    s.code_ = code;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return code_ == DiagCode::kOk; }
  explicit operator bool() const { return ok(); }
  DiagCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "[CODE] message".
  std::string str() const {
    if (ok()) return "OK";
    return std::string("[") + toString(code_) + "] " + message_;
  }

 private:
  DiagCode code_ = DiagCode::kOk;
  std::string message_;
};

/// Either a value or a failure Status. T needs no default constructor.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result from OK status needs a value");
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T take() && {
    assert(ok());
    return std::move(*value_);
  }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace tc
