#pragma once
/// \file thread_pool.h
/// \brief Work-stealing thread pool for the parallel analysis runtime.
///
/// The MCMM "corner super-explosion" (Sec. 2.3) multiplies independent STA
/// work: scenarios are embarrassingly parallel, and within one scenario each
/// topological level of the timing graph is. This pool is the substrate for
/// both layers:
///  - submit() returns a future (exceptions propagate to the waiter);
///  - parallelFor() runs fn(i) for i in [0, n) with the *caller
///    participating*, so nested parallelFor calls (a scenario task that
///    parallelizes its own levels) cannot deadlock even when every worker
///    is busy;
///  - workers own LIFO deques and steal FIFO from each other, so fine
///    per-level tasks stay cache-warm while idle workers drain the heavy
///    tail.
///
/// Determinism contract: parallelFor guarantees each index runs exactly
/// once; callers write results into per-index slots and reduce in index
/// order afterwards. Nothing about *which thread* ran an index is
/// observable in the reduction, which is how the parallel engine stays
/// bit-identical to the serial one (see DESIGN.md "Concurrency model").
///
/// ThreadPool(0) is the degenerate case: no workers are spawned and all
/// work runs inline on the calling thread — the `--serial` fallback.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tc {

class ThreadPool {
 public:
  /// Spawn `threads` workers. 0 => fully inline (serial) execution;
  /// negative => one worker per hardware thread.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (0 for the inline pool).
  int threadCount() const { return static_cast<int>(workers_.size()); }

  /// Enqueue one task; the future rethrows any exception the task threw.
  /// With zero workers the task runs inline before submit() returns.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    if (workers_.empty()) {
      (*task)();
      return fut;
    }
    push([task] { (*task)(); });
    return fut;
  }

  /// Run fn(i) for every i in [0, n), distributing contiguous chunks of
  /// `grain` indices across the workers *and* the calling thread. Blocks
  /// until every index has run. The first exception thrown by any index is
  /// rethrown here (remaining indices may or may not run). Safe to call
  /// from inside a pool task (nested parallelism): the caller always makes
  /// progress itself, so no cycle of waiters can form.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                   std::size_t grain = 1);

  /// Process-wide pool, lazily constructed with one worker per hardware
  /// thread (minus one for the caller). setGlobalThreads() before first use
  /// overrides the size; callers that need a specific width (benches, the
  /// determinism tests) should own their pool instead.
  static ThreadPool& global();

  /// Total time worker `worker` spent inside tasks, in milliseconds.
  /// Utilization = workerBusyMs / pool lifetime; a skewed distribution
  /// means the level decomposition isn't feeding the pool evenly.
  double workerBusyMs(int worker) const;
  /// Number of tasks worker `worker` has run (scheduling-dependent).
  std::uint64_t workerTaskCount(int worker) const;

 private:
  struct Task {
    std::function<void()> fn;
  };

  void push(std::function<void()> fn);
  bool tryRun(int self);  ///< pop own deque / steal; true when a task ran
  void workerLoop(int index);

  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> q;
  };

  /// Per-worker observability, cache-line padded so the hot-path updates
  /// (worker-local, relaxed) never share a line across workers.
  struct alignas(64) WorkerStat {
    std::atomic<std::uint64_t> busyNs{0};
    std::atomic<std::uint64_t> tasks{0};
  };

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::unique_ptr<WorkerStat>> stats_;
  std::vector<std::thread> workers_;
  std::mutex wakeMu_;
  std::condition_variable wakeCv_;
  std::size_t nextQueue_ = 0;  ///< round-robin target for external pushes
  bool stop_ = false;
};

}  // namespace tc
