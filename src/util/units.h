#pragma once
/// \file units.h
/// \brief Unit conventions used throughout the goalposts framework.
///
/// All quantities are plain `double`s held in one *consistent* unit system so
/// that products and ratios need no conversion factors:
///
///   time         : picoseconds  (ps)
///   capacitance  : femtofarads  (fF)
///   resistance   : kilo-ohms    (kOhm)      -> kOhm * fF == ps
///   voltage      : volts        (V)
///   current      : micro-amps   (uA)        -> fF * V / uA == ns? no: see below
///   temperature  : degrees Celsius (C)
///   distance     : microns      (um)
///   area         : square microns (um^2)
///   energy       : femtojoules  (fJ)        -> fF * V^2 == fJ
///   power        : micro-watts  (uW)
///   frequency    : gigahertz    (GHz)       -> 1/ns; note 1e3/ps-period
///
/// Note on current: with I in uA, C in fF and V in volts, the slewing time
/// t = C*V/I comes out in units of (fF*V/uA) = 1e-15*1/1e-6 s = 1e-9 s = ns.
/// The device layer therefore multiplies by `kNsToPs` when integrating.
///
/// The aliases below are documentation, not type safety: they make signatures
/// self-describing while keeping numeric code frictionless.

namespace tc {

using Ps = double;    ///< time in picoseconds
using Ns = double;    ///< time in nanoseconds (device layer only)
using Ff = double;    ///< capacitance in femtofarads
using KOhm = double;  ///< resistance in kilo-ohms
using Volt = double;  ///< voltage in volts
using MicroAmp = double;  ///< current in micro-amps
using Celsius = double;   ///< temperature in degrees Celsius
using Um = double;        ///< distance in microns
using Um2 = double;       ///< area in square microns
using Fj = double;        ///< energy in femtojoules
using MicroWatt = double; ///< power in micro-watts

inline constexpr double kNsToPs = 1000.0;
inline constexpr double kPsToNs = 1e-3;
inline constexpr double kZeroCelsiusInKelvin = 273.15;
/// Boltzmann constant in eV/K (used by the BTI aging model).
inline constexpr double kBoltzmannEvPerK = 8.617333262e-5;

/// Convert Celsius to Kelvin.
constexpr double kelvin(Celsius t) { return t + kZeroCelsiusInKelvin; }

}  // namespace tc
