#include "util/interp.h"

#include <algorithm>
#include <stdexcept>

namespace tc {

Axis::Axis(std::vector<double> points) : points_(std::move(points)) {
  if (points_.empty()) throw std::invalid_argument("Axis: empty point list");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i] <= points_[i - 1])
      throw std::invalid_argument("Axis: points must be strictly increasing");
  }
}

std::size_t Axis::segment(double x) const {
  if (points_.size() < 2) return 0;
  auto it = std::upper_bound(points_.begin(), points_.end(), x);
  auto idx = static_cast<std::size_t>(std::distance(points_.begin(), it));
  if (idx == 0) return 0;
  return std::min(idx - 1, points_.size() - 2);
}

double Axis::fraction(double x, std::size_t seg) const {
  if (points_.size() < 2) return 0.0;
  const double lo = points_[seg];
  const double hi = points_[seg + 1];
  return (x - lo) / (hi - lo);
}

double interp1(const Axis& axis, const std::vector<double>& values, double x) {
  if (values.size() != axis.size())
    throw std::invalid_argument("interp1: axis/value size mismatch");
  if (axis.size() == 1) return values[0];
  const std::size_t s = axis.segment(x);
  const double f = axis.fraction(x, s);
  return values[s] + f * (values[s + 1] - values[s]);
}

Table2D::Table2D(Axis xAxis, Axis yAxis, std::vector<double> values)
    : x_(std::move(xAxis)), y_(std::move(yAxis)), values_(std::move(values)) {
  if (values_.size() != x_.size() * y_.size())
    throw std::invalid_argument("Table2D: value count != |x|*|y|");
}

double Table2D::lookup(double x, double y) const {
  if (values_.empty()) throw std::logic_error("Table2D: lookup on empty table");
  if (x_.size() == 1 && y_.size() == 1) return values_[0];
  if (x_.size() == 1) {
    const std::size_t s = y_.segment(y);
    const double f = y_.fraction(y, s);
    return at(0, s) + f * (at(0, s + 1) - at(0, s));
  }
  if (y_.size() == 1) {
    const std::size_t s = x_.segment(x);
    const double f = x_.fraction(x, s);
    return at(s, 0) + f * (at(s + 1, 0) - at(s, 0));
  }
  const std::size_t sx = x_.segment(x);
  const std::size_t sy = y_.segment(y);
  const double fx = x_.fraction(x, sx);
  const double fy = y_.fraction(y, sy);
  const double v00 = at(sx, sy);
  const double v01 = at(sx, sy + 1);
  const double v10 = at(sx + 1, sy);
  const double v11 = at(sx + 1, sy + 1);
  const double v0 = v00 + fy * (v01 - v00);
  const double v1 = v10 + fy * (v11 - v10);
  return v0 + fx * (v1 - v0);
}

}  // namespace tc
