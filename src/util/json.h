#pragma once
/// \file json.h
/// \brief Minimal JSON value type with a recoverable parser and a
/// deterministic writer, for the line-delimited-JSON serving protocol
/// (src/serve) and any other tool-facing structured I/O.
///
/// Design constraints, in order:
///  - Hostile input is normal input: parse() consumes bytes off a network
///    socket and must reject malformed, truncated, oversized-nesting and
///    bad-escape inputs with a clean tc::Status (kJson* codes) — never a
///    crash, never unbounded recursion (depth is capped).
///  - Deterministic output: objects render with keys sorted (std::map),
///    doubles render with a fixed shortest-round-trip format, so two
///    renders of the same value are byte-identical. The serving oracle
///    test compares server responses against a freshly computed reference
///    *as bytes*; that contract rides on this.
///  - Numbers are doubles (like JSON itself). Integral values within the
///    exact-double range render without a decimal point so ids and counts
///    look like ints on the wire. Non-finite doubles render as null
///    (bench_json.h precedent).

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace tc {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  using Object = std::map<std::string, Json>;
  using Array = std::vector<Json>;

  Json() = default;                      ///< null
  Json(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT: implicit by design
  Json(double v) : type_(Type::kNumber), num_(v) {}           // NOLINT
  Json(int v) : type_(Type::kNumber), num_(v) {}              // NOLINT
  Json(std::int64_t v)                                        // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(std::uint64_t v)                                       // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), str_(s) {}      // NOLINT

  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  Type type() const { return type_; }
  bool isNull() const { return type_ == Type::kNull; }
  bool isBool() const { return type_ == Type::kBool; }
  bool isNumber() const { return type_ == Type::kNumber; }
  bool isString() const { return type_ == Type::kString; }
  bool isObject() const { return type_ == Type::kObject; }
  bool isArray() const { return type_ == Type::kArray; }

  bool asBool(bool dflt = false) const { return isBool() ? bool_ : dflt; }
  double asDouble(double dflt = 0.0) const {
    return isNumber() ? num_ : dflt;
  }
  /// Truncating; 0 when not a number.
  std::int64_t asInt(std::int64_t dflt = 0) const {
    return isNumber() ? static_cast<std::int64_t>(num_) : dflt;
  }
  const std::string& asString() const {
    static const std::string kEmpty;
    return isString() ? str_ : kEmpty;
  }

  // --- object access ---------------------------------------------------------
  /// Member lookup; returns a shared null for missing keys / non-objects.
  const Json& operator[](const std::string& key) const;
  bool contains(const std::string& key) const {
    return isObject() && obj_.find(key) != obj_.end();
  }
  /// Insert or overwrite a member (converts this value to an object).
  Json& set(const std::string& key, Json value);
  const Object& items() const { return obj_; }

  // --- array access ----------------------------------------------------------
  std::size_t size() const {
    return isArray() ? arr_.size() : (isObject() ? obj_.size() : 0);
  }
  const Json& at(std::size_t i) const;
  /// Append an element (converts this value to an array).
  Json& push(Json value);
  const Array& elements() const { return arr_; }

  // --- text ------------------------------------------------------------------
  /// Compact deterministic rendering (sorted keys, fixed number format).
  std::string dump() const;

  /// Parse one JSON value (plus trailing whitespace only). Every malformed
  /// input — truncation, bad escapes, nesting deeper than `maxDepth`,
  /// trailing garbage, non-finite number syntax — fails with a kJson*
  /// Status naming the byte offset.
  static Result<Json> parse(std::string_view text, int maxDepth = 96);

  /// The fixed number rendering dump() uses (17 significant digits via
  /// locale-independent std::to_chars, integers bare, non-finite -> null).
  /// Exposed so non-Json renderers can match bytes.
  static std::string numberToString(double v);

  bool operator==(const Json& o) const;
  bool operator!=(const Json& o) const { return !(*this == o); }

 private:
  void dumpTo(std::string* out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Object obj_;
  Array arr_;
};

}  // namespace tc
