#pragma once
/// \file binio.h
/// \brief Native-endian binary stream helpers shared by the liberty
/// serializer (liberty/serialize.cpp) and design snapshots
/// (signoff/snapshot.cpp).
///
/// Writers mirror readers exactly; doubles are written as their in-memory
/// representation so every round trip is bitwise (the determinism contracts
/// of the farm depend on serialized timing quantities reloading exactly).
/// Readers never trust a length field blindly: strings and vectors carry
/// plausibility caps so a corrupt count fails the read instead of driving a
/// multi-gigabyte allocation. Files produced on one endianness are not
/// readable on the other — acceptable for snapshot/cache files consumed on
/// the machine (or cluster) that wrote them.

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace tc::binio {

inline void putU32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
inline void putI32(std::ostream& os, std::int32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
inline void putU64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
inline void putF64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
inline void putStr(std::ostream& os, const std::string& s) {
  putU32(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}
inline void putVec(std::ostream& os, const std::vector<double>& v) {
  putU32(os, static_cast<std::uint32_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(double)));
}

inline bool getU32(std::istream& is, std::uint32_t& v) {
  return static_cast<bool>(is.read(reinterpret_cast<char*>(&v), sizeof v));
}
inline bool getI32(std::istream& is, std::int32_t& v) {
  return static_cast<bool>(is.read(reinterpret_cast<char*>(&v), sizeof v));
}
inline bool getU64(std::istream& is, std::uint64_t& v) {
  return static_cast<bool>(is.read(reinterpret_cast<char*>(&v), sizeof v));
}
inline bool getF64(std::istream& is, double& v) {
  return static_cast<bool>(is.read(reinterpret_cast<char*>(&v), sizeof v));
}
/// `maxLen` caps the declared size (default 1 MiB — no design entity name
/// or diagnostic message is legitimately larger).
inline bool getStr(std::istream& is, std::string& s,
                   std::uint32_t maxLen = 1u << 20) {
  std::uint32_t n = 0;
  if (!getU32(is, n) || n > maxLen) return false;
  s.resize(n);
  return static_cast<bool>(is.read(s.data(), n));
}
/// `maxLen` caps the element count (default 16M doubles = 128 MiB).
inline bool getVec(std::istream& is, std::vector<double>& v,
                   std::uint32_t maxLen = 1u << 24) {
  std::uint32_t n = 0;
  if (!getU32(is, n) || n > maxLen) return false;
  v.resize(n);
  return static_cast<bool>(
      is.read(reinterpret_cast<char*>(v.data()),
              static_cast<std::streamsize>(n * sizeof(double))));
}

}  // namespace tc::binio
