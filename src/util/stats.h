#pragma once
/// \file stats.h
/// \brief Streaming and batch statistics used by Monte Carlo timing analyses
/// (Fig. 7 tail asymmetry, Fig. 8 pessimism metrics) and by report writers.

#include <cstddef>
#include <vector>

namespace tc {

/// Numerically stable streaming moments (Welford / Pébay update), giving
/// mean, variance, skewness and excess kurtosis without storing samples.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? m1_ : 0.0; }
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double skewness() const;  ///< Fisher-Pearson g1 (0 for symmetric data)
  double kurtosis() const;  ///< excess kurtosis (0 for a Gaussian)
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double m1_ = 0.0, m2_ = 0.0, m3_ = 0.0, m4_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
};

/// Batch sample set with quantiles and one-sided deviations. The paper's
/// Fig. 7 motivates *separate* early/late sigmas: `sigmaBelowMean` and
/// `sigmaAboveMean` are RMS deviations computed over the samples on each side
/// of the mean, exactly the quantity an LVF `sigma_early`/`sigma_late` pair
/// models.
class SampleSet {
 public:
  void reserve(std::size_t n) { samples_.reserve(n); }
  void add(double x) { samples_.push_back(x); sorted_ = false; }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const std::vector<double>& samples() const { return samples_; }

  double mean() const;
  double stddev() const;
  double skewness() const;
  /// Linear-interpolated quantile, q in [0,1]. Out-of-range q clamps with
  /// a STATS_DOMAIN_CLAMPED warning; an empty set returns 0 with a
  /// STATS_EMPTY_SAMPLES warning (never throws).
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  /// RMS deviation of samples strictly below the mean (early-mode sigma).
  double sigmaBelowMean() const;
  /// RMS deviation of samples at or above the mean (late-mode sigma).
  double sigmaAboveMean() const;
  double min() const { return quantile(0.0); }
  double max() const { return quantile(1.0); }

  /// Fixed-width histogram over [lo, hi] with `bins` buckets; out-of-range
  /// samples clamp to the end buckets. Used by bench table renderers.
  std::vector<std::size_t> histogram(double lo, double hi,
                                     std::size_t bins) const;

 private:
  void ensureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_samples_;
  mutable bool sorted_ = false;
};

/// Standard normal CDF.
double normalCdf(double z);
/// Inverse standard normal CDF (Acklam's rational approximation,
/// |error| < 1.15e-9) — used for slack->yield conversion. p outside (0,1)
/// clamps to the nearest interior point (|z| ~ 8.2) with a
/// STATS_DOMAIN_CLAMPED warning instead of throwing.
double normalInverseCdf(double p);

}  // namespace tc
