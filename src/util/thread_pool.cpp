#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "util/metrics.h"

namespace tc {

namespace {
// Scheduling-dependent by nature (which worker runs or steals a task varies
// run to run), so both are kNoisy: exported for humans, never gated.
Counter& tasksRunCtr() {
  static Counter& c = MetricsRegistry::global().counter(
      "pool.tasks_run", "count", MetricStability::kNoisy);
  return c;
}
Counter& stealsCtr() {
  static Counter& c = MetricsRegistry::global().counter(
      "pool.steals", "count", MetricStability::kNoisy);
  return c;
}
}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads < 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 1 ? static_cast<int>(hw) - 1 : 0;
  }
  if (threads == 0) return;  // inline pool: no queues, no workers
  queues_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  stats_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    stats_.push_back(std::make_unique<WorkerStat>());
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wakeMu_);
    stop_ = true;
  }
  wakeCv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::push(std::function<void()> fn) {
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(wakeMu_);
    target = nextQueue_++ % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->q.push_back(std::move(fn));
  }
  wakeCv_.notify_one();
}

bool ThreadPool::tryRun(int self) {
  // Own deque first (LIFO: newest task is cache-warm), then steal the
  // oldest task from a sibling (FIFO: large chunks migrate, small tails
  // stay local).
  const std::size_t n = queues_.size();
  std::function<void()> fn;
  bool stolen = false;
  if (self >= 0) {
    WorkerQueue& mine = *queues_[static_cast<std::size_t>(self)];
    std::lock_guard<std::mutex> lock(mine.mu);
    if (!mine.q.empty()) {
      fn = std::move(mine.q.back());
      mine.q.pop_back();
    }
  }
  if (!fn) {
    const std::size_t start =
        self >= 0 ? static_cast<std::size_t>(self) + 1 : 0;
    for (std::size_t k = 0; k < n && !fn; ++k) {
      WorkerQueue& other = *queues_[(start + k) % n];
      std::lock_guard<std::mutex> lock(other.mu);
      if (!other.q.empty()) {
        fn = std::move(other.q.front());
        other.q.pop_front();
        stolen = (start + k) % n != static_cast<std::size_t>(self);
      }
    }
  }
  if (!fn) return false;
  // Tasks are coarse (a parallelFor helper drains chunks until the range is
  // empty), so a clock pair per task costs noise-level time.
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto dt = std::chrono::steady_clock::now() - t0;
  if (self >= 0) {
    WorkerStat& st = *stats_[static_cast<std::size_t>(self)];
    st.busyNs.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()),
        std::memory_order_relaxed);
    st.tasks.fetch_add(1, std::memory_order_relaxed);
  }
  tasksRunCtr().add();
  if (stolen) stealsCtr().add();
  return true;
}

void ThreadPool::workerLoop(int index) {
  for (;;) {
    if (tryRun(index)) continue;
    std::unique_lock<std::mutex> lock(wakeMu_);
    if (stop_) return;
    wakeCv_.wait_for(lock, std::chrono::milliseconds(10));
    if (stop_) return;
  }
}

namespace {

/// Shared state of one parallelFor call. Helper tasks hold a shared_ptr so
/// a task that wakes after the caller returned still finds live state.
struct ForContext {
  std::size_t n = 0;
  std::size_t grain = 1;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> nextIndex{0};
  std::atomic<std::size_t> doneCount{0};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  ///< guarded by mu; `failed` is the fast flag

  /// Claim and run chunks until the range is exhausted. Returns the number
  /// of indices this participant completed.
  void drain() {
    for (;;) {
      const std::size_t begin =
          nextIndex.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = std::min(begin + grain, n);
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          for (std::size_t i = begin; i < end; ++i) (*fn)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
      const std::size_t done =
          doneCount.fetch_add(end - begin, std::memory_order_acq_rel) +
          (end - begin);
      if (done >= n) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn,
                             std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (workers_.empty() || n <= grain) {
    // Inline pool or a range too small to split.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto ctx = std::make_shared<ForContext>();
  ctx->n = n;
  ctx->grain = grain;
  ctx->fn = &fn;

  // One helper per worker is enough: each helper loops until the range is
  // empty. Helpers that never get scheduled are harmless (the caller and
  // the scheduled helpers finish the range without them).
  const std::size_t helpers =
      std::min(workers_.size(), (n + grain - 1) / grain - 1);
  for (std::size_t i = 0; i < helpers; ++i) push([ctx] { ctx->drain(); });

  ctx->drain();  // the caller participates — nested calls stay live

  {
    std::unique_lock<std::mutex> lock(ctx->mu);
    ctx->cv.wait(lock, [&] {
      return ctx->doneCount.load(std::memory_order_acquire) >= ctx->n;
    });
  }
  // `fn` must not dangle inside helpers that wake late: after doneCount
  // reached n, every remaining drain() exits on the nextIndex check without
  // touching fn.
  ctx->fn = nullptr;
  if (ctx->error) std::rethrow_exception(ctx->error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(-1);
  return pool;
}

double ThreadPool::workerBusyMs(int worker) const {
  if (worker < 0 || static_cast<std::size_t>(worker) >= stats_.size())
    return 0.0;
  return static_cast<double>(stats_[static_cast<std::size_t>(worker)]
                                 ->busyNs.load(std::memory_order_relaxed)) *
         1e-6;
}

std::uint64_t ThreadPool::workerTaskCount(int worker) const {
  if (worker < 0 || static_cast<std::size_t>(worker) >= stats_.size())
    return 0;
  return stats_[static_cast<std::size_t>(worker)]->tasks.load(
      std::memory_order_relaxed);
}

}  // namespace tc
