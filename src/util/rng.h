#pragma once
/// \file rng.h
/// \brief Deterministic, fast random number generation for Monte Carlo
/// analyses and synthetic workload generation.
///
/// The framework never uses std::random_device or global RNG state: every
/// stochastic component takes an explicit `Rng` (or a seed) so that all
/// experiments are exactly reproducible run-to-run.

#include <cstdint>
#include <cmath>

namespace tc {

/// xoshiro256** by Blackman & Vigna — small, fast, high-quality.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9E3779B97F4A7C15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      s = x ^ (x >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }

  /// Standard normal via Marsaglia polar method (cached second deviate).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    cached_ = v * m;
    has_cached_ = true;
    return u * m;
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double sigma) { return mean + sigma * normal(); }

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent stream (for per-thread / per-component use).
  Rng fork() { return Rng(next() ^ 0xD1B54A32D192ED03ull); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace tc
