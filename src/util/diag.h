#pragma once
/// \file diag.h
/// \brief Recoverable diagnostics: machine-readable codes, source/entity
/// locations, and the DiagnosticSink collector.
///
/// The paper's thesis is that signoff tools live in a hostile world —
/// exploding corner counts, mismatched parasitics, model/hardware
/// miscorrelation — and must degrade with bounded pessimism instead of
/// falling over. The first requirement for that is an error channel that
/// is *not* process death: every reader and lint rule in this framework
/// reports through a DiagnosticSink (severity, code, entity, line) so a
/// flow can decide per-problem whether to quarantine, clamp, or abort.
/// See DESIGN.md "Error handling & degradation policy".

#include <mutex>
#include <string>
#include <vector>

namespace tc {

enum class Severity { kNote = 0, kWarning = 1, kError = 2 };

/// Machine-readable diagnostic codes. Grouped by subsystem; the registry
/// lives in DESIGN.md. toString() yields the stable SCREAMING_SNAKE name
/// emitted in logs (greppable by flow scripts).
enum class DiagCode {
  kOk = 0,

  // --- Verilog reader ------------------------------------------------------
  kVerilogSyntax,          ///< token-level parse failure
  kVerilogUnexpectedEof,   ///< input truncated mid-construct
  kVerilogMissingEndmodule,
  kVerilogUnknownCell,     ///< instantiated cell not in reference library
  kVerilogUnknownPin,      ///< named pin not on the cell
  kVerilogDoubleDriver,    ///< two outputs (or output + input port) on a net
  kVerilogDuplicateName,   ///< instance/port name re-declared

  // --- SPEF reader ---------------------------------------------------------
  kSpefSyntax,
  kSpefUnexpectedEof,
  kSpefBadNumber,          ///< unparseable numeric field
  kSpefUnknownNet,         ///< *D_NET references an unmapped name index
  kSpefDuplicateNet,       ///< same net appears in two *D_NET sections
  kSpefNegativeCap,        ///< clamped to 0 with a warning
  kSpefNegativeRes,        ///< clamped to 0 with a warning
  kSpefNanValue,           ///< non-finite R/C entry, clamped

  // --- Liberty binary reader ----------------------------------------------
  kLibMissingFile,
  kLibBadMagic,
  kLibVersionMismatch,
  kLibTruncated,           ///< stream ended inside a record
  kLibCorrupt,             ///< implausible count / size field
  kLibChecksumMismatch,    ///< body CRC does not match the header

  // --- Netlist structure ---------------------------------------------------
  kNetBadCellIndex,
  kNetBadPinIndex,
  kNetBadId,               ///< net/instance/port id out of range
  kNetDoubleDriver,
  kNetFloatingInput,
  kNetDanglingOutput,
  kNetUndrivenNet,
  kNetUnloadedNet,
  kNetNonClockClocked,     ///< flop CK traces to a non-clock port
  kNetCombLoop,
  kNetFootprintMismatch,
  kNetPinCountMismatch,

  // --- Lint / graceful degradation ----------------------------------------
  kLintLoopBroken,         ///< loop cut; pessimistic borrowed arrival seeded
  kLintDanglingPinQuarantined,
  kLintNonMonotoneTable,   ///< NLDM surface clamped monotone
  kLintNonFiniteTable,     ///< NaN/Inf table entry repaired
  kLintNegativeRc,         ///< degenerate parasitic element clamped
  kLintNanQuarantined,     ///< non-finite arrival rejected during STA

  // --- Stats / numeric utilities ------------------------------------------
  kStatsEmptySamples,      ///< quantile of an empty SampleSet (clamped to 0)
  kStatsDomainClamped,     ///< normalInverseCdf p clamped into (0,1)

  // --- Path-based analysis -------------------------------------------------
  kPbaRetraceWorseThanGba, ///< exact retrace evaluated beyond its GBA bound

  // --- Design snapshot (farm serialization) --------------------------------
  kSnapBadMagic,           ///< not a tc snapshot file
  kSnapVersionMismatch,    ///< written by an incompatible format revision
  kSnapTruncated,          ///< stream ended inside the header or payload
  kSnapChecksumMismatch,   ///< payload CRC disagrees with the header
  kSnapCorrupt,            ///< well-framed but implausible/inconsistent data
  kSnapUnsupported,        ///< design uses a feature snapshots cannot carry

  // --- Scenario farm (multi-process dispatch) ------------------------------
  kFarmWorkerMissing,      ///< worker binary not found / not executable
  kFarmWorkerCrashed,      ///< worker exited without a valid result frame
  kFarmWorkerTimeout,      ///< scenario exceeded its wall-clock budget
  kFarmWorkerHung,         ///< heartbeat silence past the hang threshold
  kFarmFrameCorrupt,       ///< result frame truncated or failed its CRC
  kFarmDuplicateResult,    ///< second result for a scenario (retry race)
  kFarmScenarioQuarantined,///< poison corner: every attempt failed

  // --- JSON (util/json.h, hostile-input parser) ----------------------------
  kJsonSyntax,             ///< malformed token / unterminated construct
  kJsonBadNumber,          ///< unparseable or non-finite number literal
  kJsonBadEscape,          ///< bad \\-escape or broken surrogate pair
  kJsonDepthExceeded,      ///< nesting past the recursion cap
  kJsonTrailingData,       ///< bytes after the closing token

  // --- Serving (goalposts-server protocol + epoch manager) -----------------
  kServeBadRequest,        ///< request line is not a JSON object / bad field
  kServeUnknownCommand,    ///< "cmd" names nothing the server speaks
  kServeUnknownDesign,     ///< design name not loaded
  kServeBadScenario,       ///< scenario index out of the design's range
  kServeBadEndpoint,       ///< endpoint index out of range for the epoch
  kServeOversized,         ///< request line exceeded the size cap
  kServeTxnState,          ///< txn op/commit without begin, begin inside txn
  kServeTxnRejected,       ///< ECO transaction failed validation
  kServeDuplicateDesign,   ///< load under a name already serving
  kServeIo,                ///< socket-level failure (bind/accept/write)

  // --- Corner pruning (signoff/prune.h) ------------------------------------
  kPruneScenarioPruned,    ///< corner closed by certificate, not an exact run
  kPruneQuarantinedEvidence,///< quarantined exact run excluded from evidence
};

/// One past the last defined code. Wire codecs (farm frames, snapshots)
/// validate decoded codes against this instead of hard-coding the tail
/// enumerator, so adding a code cannot silently widen what they accept.
inline constexpr unsigned kDiagCodeCount =
    static_cast<unsigned>(DiagCode::kPruneQuarantinedEvidence) + 1;

const char* toString(DiagCode code);
const char* toString(Severity severity);

/// One reported problem. `line` is 1-based for text inputs (-1 when not
/// applicable); `entity` names the offending design object (net, instance,
/// cell, port) when the problem is attributable to one.
struct Diagnostic {
  Severity severity = Severity::kError;
  DiagCode code = DiagCode::kOk;
  std::string message;
  std::string entity;
  int line = -1;

  /// "ERROR [VERILOG_UNKNOWN_CELL] line 12 (inst 'u3'): ..." rendering.
  std::string str() const;
};

/// Collects diagnostics from readers / lint passes / the STA engine.
/// Thread-safe: multiple analysis threads may share one sink. By default
/// each diagnostic is echoed through tc::logf (WARN/ERROR level), so flows
/// that never look at the sink still see problems on stderr.
class DiagnosticSink {
 public:
  void report(Diagnostic d);
  void error(DiagCode code, std::string message, std::string entity = {},
             int line = -1);
  void warn(DiagCode code, std::string message, std::string entity = {},
            int line = -1);
  void note(DiagCode code, std::string message, std::string entity = {},
            int line = -1);

  std::vector<Diagnostic> diagnostics() const;
  int errorCount() const;
  int warningCount() const;
  bool hasErrors() const { return errorCount() > 0; }
  /// Number of diagnostics carrying `code`.
  int count(DiagCode code) const;
  /// First diagnostic with the code, or nullopt-like empty Diagnostic check
  /// via found flag.
  bool first(DiagCode code, Diagnostic* out) const;
  void clear();

  /// Disable the logf echo (benches that inject thousands of faults).
  void setEcho(bool echo) { echo_ = echo; }

 private:
  mutable std::mutex mu_;
  std::vector<Diagnostic> diags_;
  int errors_ = 0;
  int warnings_ = 0;
  bool echo_ = true;
};

}  // namespace tc
