#pragma once
/// \file log.h
/// \brief Tiny leveled logger. Tools in this framework report progress the
/// way signoff flows do: terse INFO lines, loud WARN/ERROR.
///
/// Thread-safe: concurrent logf calls never interleave within a line (each
/// line is formatted to a buffer and written with a single locked write).
/// Tests can install a capture sink to assert on emitted WARN/ERROR lines.

#include <cstdarg>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace tc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide log threshold (defaults to kInfo; benches may silence).
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// printf-style logging, prefixed with the level tag.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// Capture callback: receives (level, formatted message without the level
/// tag or trailing newline) for every line that passes the threshold.
using LogCaptureFn = std::function<void(LogLevel, const std::string&)>;

/// Install / replace the process-wide capture sink (nullptr clears it).
/// Returns the previously installed sink so scopes can nest.
LogCaptureFn setLogCaptureSink(LogCaptureFn sink);

/// When true (default), logf also writes to stderr while a capture sink is
/// installed; tests typically pass false to keep output quiet.
void setLogCaptureEcho(bool echo);

/// RAII capture for tests: records every line emitted during its lifetime
/// and silences stderr; restores the previous sink on destruction.
class LogCapture {
 public:
  LogCapture();
  ~LogCapture();
  LogCapture(const LogCapture&) = delete;
  LogCapture& operator=(const LogCapture&) = delete;

  std::vector<std::pair<LogLevel, std::string>> lines() const;
  /// True when any captured line contains `needle`.
  bool contains(const std::string& needle) const;
  /// Number of captured lines at exactly `level`.
  int countAt(LogLevel level) const;

 private:
  struct Impl;
  Impl* impl_;
  LogCaptureFn previous_;
  bool previousEcho_;
};

#define TC_DEBUG(...) ::tc::logf(::tc::LogLevel::kDebug, __VA_ARGS__)
#define TC_INFO(...) ::tc::logf(::tc::LogLevel::kInfo, __VA_ARGS__)
#define TC_WARN(...) ::tc::logf(::tc::LogLevel::kWarn, __VA_ARGS__)
#define TC_ERROR(...) ::tc::logf(::tc::LogLevel::kError, __VA_ARGS__)

}  // namespace tc
