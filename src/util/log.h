#pragma once
/// \file log.h
/// \brief Tiny leveled logger. Tools in this framework report progress the
/// way signoff flows do: terse INFO lines, loud WARN/ERROR.

#include <cstdarg>
#include <string>

namespace tc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide log threshold (defaults to kInfo; benches may silence).
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// printf-style logging, prefixed with the level tag.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define TC_DEBUG(...) ::tc::logf(::tc::LogLevel::kDebug, __VA_ARGS__)
#define TC_INFO(...) ::tc::logf(::tc::LogLevel::kInfo, __VA_ARGS__)
#define TC_WARN(...) ::tc::logf(::tc::LogLevel::kWarn, __VA_ARGS__)
#define TC_ERROR(...) ::tc::logf(::tc::LogLevel::kError, __VA_ARGS__)

}  // namespace tc
