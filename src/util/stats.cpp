#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/diag.h"
#include "util/log.h"

namespace tc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - m1_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  m1_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3 * n + 3) + 6 * delta_n2 * m2_ -
         4 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2) - 3 * delta_n * m2_;
  m2_ += term1;
}

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double n = na + nb;
  const double delta = o.m1_ - m1_;
  const double d2 = delta * delta;
  const double d3 = d2 * delta;
  const double d4 = d2 * d2;

  RunningStats r;
  r.n_ = n_ + o.n_;
  r.m1_ = (na * m1_ + nb * o.m1_) / n;
  r.m2_ = m2_ + o.m2_ + d2 * na * nb / n;
  r.m3_ = m3_ + o.m3_ + d3 * na * nb * (na - nb) / (n * n) +
          3.0 * delta * (na * o.m2_ - nb * m2_) / n;
  r.m4_ = m4_ + o.m4_ +
          d4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
          6.0 * d2 * (na * na * o.m2_ + nb * nb * m2_) / (n * n) +
          4.0 * delta * (na * o.m3_ - nb * m3_) / n;
  r.min_ = std::min(min_, o.min_);
  r.max_ = std::max(max_, o.max_);
  *this = r;
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::skewness() const {
  if (n_ < 3 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double RunningStats::kurtosis() const {
  if (n_ < 4 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

void SampleSet::ensureSorted() const {
  if (sorted_) return;
  sorted_samples_ = samples_;
  std::sort(sorted_samples_.begin(), sorted_samples_.end());
  sorted_ = true;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

double SampleSet::skewness() const {
  RunningStats rs;
  for (double x : samples_) rs.add(x);
  return rs.skewness();
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) {
    // Recoverable: an empty Monte Carlo batch (every trial quarantined)
    // should degrade the report, not kill the flow.
    TC_WARN("[%s] quantile(%g) of empty SampleSet; returning 0",
            toString(DiagCode::kStatsEmptySamples), q);
    return 0.0;
  }
  ensureSorted();
  if (q < 0.0 || q > 1.0)
    TC_WARN("[%s] quantile probability %g clamped into [0,1]",
            toString(DiagCode::kStatsDomainClamped), q);
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_samples_[lo] * (1.0 - frac) + sorted_samples_[hi] * frac;
}

double SampleSet::sigmaBelowMean() const {
  const double m = mean();
  double s = 0.0;
  std::size_t n = 0;
  for (double x : samples_) {
    if (x < m) {
      s += (x - m) * (x - m);
      ++n;
    }
  }
  return n ? std::sqrt(s / static_cast<double>(n)) : 0.0;
}

double SampleSet::sigmaAboveMean() const {
  const double m = mean();
  double s = 0.0;
  std::size_t n = 0;
  for (double x : samples_) {
    if (x >= m) {
      s += (x - m) * (x - m);
      ++n;
    }
  }
  return n ? std::sqrt(s / static_cast<double>(n)) : 0.0;
}

std::vector<std::size_t> SampleSet::histogram(double lo, double hi,
                                              std::size_t bins) const {
  std::vector<std::size_t> h(bins, 0);
  if (bins == 0 || hi <= lo) return h;
  const double w = (hi - lo) / static_cast<double>(bins);
  for (double x : samples_) {
    auto b = static_cast<long>((x - lo) / w);
    b = std::clamp<long>(b, 0, static_cast<long>(bins) - 1);
    ++h[static_cast<std::size_t>(b)];
  }
  return h;
}

double normalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normalInverseCdf(double p) {
  // Edge probabilities are clamped to the last representable interior
  // point (z = ∓8.2 sigma) with a diagnostic: a yield model asked for the
  // 0th/100th percentile gets a bounded-pessimism answer, not a crash.
  constexpr double kTiny = 1e-16;
  if (p <= 0.0 || p >= 1.0) {
    TC_WARN("[%s] normalInverseCdf(%g) clamped into (0,1)",
            toString(DiagCode::kStatsDomainClamped), p);
    p = std::clamp(p, kTiny, 1.0 - kTiny);
  }
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  double q = 0.0;
  double r = 0.0;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

}  // namespace tc
