#include "util/diag.h"

#include <sstream>

#include "util/log.h"

namespace tc {

const char* toString(DiagCode code) {
  switch (code) {
    case DiagCode::kOk: return "OK";
    case DiagCode::kVerilogSyntax: return "VERILOG_SYNTAX";
    case DiagCode::kVerilogUnexpectedEof: return "VERILOG_UNEXPECTED_EOF";
    case DiagCode::kVerilogMissingEndmodule:
      return "VERILOG_MISSING_ENDMODULE";
    case DiagCode::kVerilogUnknownCell: return "VERILOG_UNKNOWN_CELL";
    case DiagCode::kVerilogUnknownPin: return "VERILOG_UNKNOWN_PIN";
    case DiagCode::kVerilogDoubleDriver: return "VERILOG_DOUBLE_DRIVER";
    case DiagCode::kVerilogDuplicateName: return "VERILOG_DUPLICATE_NAME";
    case DiagCode::kSpefSyntax: return "SPEF_SYNTAX";
    case DiagCode::kSpefUnexpectedEof: return "SPEF_UNEXPECTED_EOF";
    case DiagCode::kSpefBadNumber: return "SPEF_BAD_NUMBER";
    case DiagCode::kSpefUnknownNet: return "SPEF_UNKNOWN_NET";
    case DiagCode::kSpefDuplicateNet: return "SPEF_DUPLICATE_NET";
    case DiagCode::kSpefNegativeCap: return "SPEF_NEGATIVE_CAP";
    case DiagCode::kSpefNegativeRes: return "SPEF_NEGATIVE_RES";
    case DiagCode::kSpefNanValue: return "SPEF_NAN_VALUE";
    case DiagCode::kLibMissingFile: return "LIB_MISSING_FILE";
    case DiagCode::kLibBadMagic: return "LIB_BAD_MAGIC";
    case DiagCode::kLibVersionMismatch: return "LIB_VERSION_MISMATCH";
    case DiagCode::kLibTruncated: return "LIB_TRUNCATED";
    case DiagCode::kLibCorrupt: return "LIB_CORRUPT";
    case DiagCode::kLibChecksumMismatch: return "LIB_CHECKSUM_MISMATCH";
    case DiagCode::kNetBadCellIndex: return "NET_BAD_CELL_INDEX";
    case DiagCode::kNetBadPinIndex: return "NET_BAD_PIN_INDEX";
    case DiagCode::kNetBadId: return "NET_BAD_ID";
    case DiagCode::kNetDoubleDriver: return "NET_DOUBLE_DRIVER";
    case DiagCode::kNetFloatingInput: return "NET_FLOATING_INPUT";
    case DiagCode::kNetDanglingOutput: return "NET_DANGLING_OUTPUT";
    case DiagCode::kNetUndrivenNet: return "NET_UNDRIVEN_NET";
    case DiagCode::kNetUnloadedNet: return "NET_UNLOADED_NET";
    case DiagCode::kNetNonClockClocked: return "NET_NON_CLOCK_CLOCKED";
    case DiagCode::kNetCombLoop: return "NET_COMB_LOOP";
    case DiagCode::kNetFootprintMismatch: return "NET_FOOTPRINT_MISMATCH";
    case DiagCode::kNetPinCountMismatch: return "NET_PIN_COUNT_MISMATCH";
    case DiagCode::kLintLoopBroken: return "LINT_LOOP_BROKEN";
    case DiagCode::kLintDanglingPinQuarantined:
      return "LINT_DANGLING_PIN_QUARANTINED";
    case DiagCode::kLintNonMonotoneTable: return "LINT_NON_MONOTONE_TABLE";
    case DiagCode::kLintNonFiniteTable: return "LINT_NON_FINITE_TABLE";
    case DiagCode::kLintNegativeRc: return "LINT_NEGATIVE_RC";
    case DiagCode::kLintNanQuarantined: return "LINT_NAN_QUARANTINED";
    case DiagCode::kStatsEmptySamples: return "STATS_EMPTY_SAMPLES";
    case DiagCode::kStatsDomainClamped: return "STATS_DOMAIN_CLAMPED";
    case DiagCode::kPbaRetraceWorseThanGba:
      return "PBA_RETRACE_WORSE_THAN_GBA";
    case DiagCode::kSnapBadMagic: return "SNAP_BAD_MAGIC";
    case DiagCode::kSnapVersionMismatch: return "SNAP_VERSION_MISMATCH";
    case DiagCode::kSnapTruncated: return "SNAP_TRUNCATED";
    case DiagCode::kSnapChecksumMismatch: return "SNAP_CHECKSUM_MISMATCH";
    case DiagCode::kSnapCorrupt: return "SNAP_CORRUPT";
    case DiagCode::kSnapUnsupported: return "SNAP_UNSUPPORTED";
    case DiagCode::kFarmWorkerMissing: return "FARM_WORKER_MISSING";
    case DiagCode::kFarmWorkerCrashed: return "FARM_WORKER_CRASHED";
    case DiagCode::kFarmWorkerTimeout: return "FARM_WORKER_TIMEOUT";
    case DiagCode::kFarmWorkerHung: return "FARM_WORKER_HUNG";
    case DiagCode::kFarmFrameCorrupt: return "FARM_FRAME_CORRUPT";
    case DiagCode::kFarmDuplicateResult: return "FARM_DUPLICATE_RESULT";
    case DiagCode::kFarmScenarioQuarantined:
      return "FARM_SCENARIO_QUARANTINED";
    case DiagCode::kJsonSyntax: return "JSON_SYNTAX";
    case DiagCode::kJsonBadNumber: return "JSON_BAD_NUMBER";
    case DiagCode::kJsonBadEscape: return "JSON_BAD_ESCAPE";
    case DiagCode::kJsonDepthExceeded: return "JSON_DEPTH_EXCEEDED";
    case DiagCode::kJsonTrailingData: return "JSON_TRAILING_DATA";
    case DiagCode::kServeBadRequest: return "SERVE_BAD_REQUEST";
    case DiagCode::kServeUnknownCommand: return "SERVE_UNKNOWN_COMMAND";
    case DiagCode::kServeUnknownDesign: return "SERVE_UNKNOWN_DESIGN";
    case DiagCode::kServeBadScenario: return "SERVE_BAD_SCENARIO";
    case DiagCode::kServeBadEndpoint: return "SERVE_BAD_ENDPOINT";
    case DiagCode::kServeOversized: return "SERVE_OVERSIZED";
    case DiagCode::kServeTxnState: return "SERVE_TXN_STATE";
    case DiagCode::kServeTxnRejected: return "SERVE_TXN_REJECTED";
    case DiagCode::kServeDuplicateDesign: return "SERVE_DUPLICATE_DESIGN";
    case DiagCode::kServeIo: return "SERVE_IO";
    case DiagCode::kPruneScenarioPruned: return "PRUNE_SCENARIO_PRUNED";
    case DiagCode::kPruneQuarantinedEvidence:
      return "PRUNE_QUARANTINED_EVIDENCE";
  }
  return "UNKNOWN";
}

const char* toString(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Diagnostic::str() const {
  std::ostringstream os;
  os << toString(severity) << " [" << toString(code) << "]";
  if (line >= 0) os << " line " << line;
  if (!entity.empty()) os << " (" << entity << ")";
  os << ": " << message;
  return os.str();
}

void DiagnosticSink::report(Diagnostic d) {
  if (echo_) {
    const LogLevel lvl = d.severity == Severity::kError ? LogLevel::kError
                         : d.severity == Severity::kWarning
                             ? LogLevel::kWarn
                             : LogLevel::kInfo;
    logf(lvl, "%s", d.str().c_str());
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (d.severity == Severity::kError) ++errors_;
  if (d.severity == Severity::kWarning) ++warnings_;
  diags_.push_back(std::move(d));
}

void DiagnosticSink::error(DiagCode code, std::string message,
                           std::string entity, int line) {
  report({Severity::kError, code, std::move(message), std::move(entity),
          line});
}

void DiagnosticSink::warn(DiagCode code, std::string message,
                          std::string entity, int line) {
  report({Severity::kWarning, code, std::move(message), std::move(entity),
          line});
}

void DiagnosticSink::note(DiagCode code, std::string message,
                          std::string entity, int line) {
  report({Severity::kNote, code, std::move(message), std::move(entity),
          line});
}

std::vector<Diagnostic> DiagnosticSink::diagnostics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return diags_;
}

int DiagnosticSink::errorCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return errors_;
}

int DiagnosticSink::warningCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return warnings_;
}

int DiagnosticSink::count(DiagCode code) const {
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (const auto& d : diags_)
    if (d.code == code) ++n;
  return n;
}

bool DiagnosticSink::first(DiagCode code, Diagnostic* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& d : diags_) {
    if (d.code == code) {
      if (out) *out = d;
      return true;
    }
  }
  return false;
}

void DiagnosticSink::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  diags_.clear();
  errors_ = warnings_ = 0;
}

}  // namespace tc
