#include "util/trace.h"

#if TC_TRACING_ENABLED

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdlib>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "util/log.h"

namespace tc {

namespace {

/// Tracing starts enabled when TC_TRACE is set non-empty (and not "0") in
/// the environment — the hook CI uses to re-run the determinism suites
/// with tracing live, proving spans never feed back into results.
bool envTraceDefault() {
  const char* e = std::getenv("TC_TRACE");
  return e && *e && !(e[0] == '0' && e[1] == '\0');
}

std::atomic<bool> gEnabled{envTraceDefault()};

/// Per-thread event buffer. Owned by the registry (shared_ptr) so events
/// survive thread exit — MCMM pool workers die before the bench exports.
/// The owning thread appends without locks; the registry lock only guards
/// registration, clear, and export, which callers run from quiescent points
/// (no spans in flight — the export happens after the traced work joined).
struct ThreadBuffer {
  int tid = 0;
  std::vector<TraceEvent> events;
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  int nextTid = 1;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: usable during static dtors
  return *r;
}

ThreadBuffer& localBuffer() {
  thread_local ThreadBuffer* buf = nullptr;
  if (!buf) {
    auto owned = std::make_shared<ThreadBuffer>();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    owned->tid = r.nextTid++;
    r.buffers.push_back(owned);
    buf = owned.get();
  }
  return *buf;
}

std::chrono::steady_clock::time_point epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

/// Minimal JSON string escaping (names/categories are ours, but a scenario
/// name with a quote must not corrupt the file).
void appendEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

bool traceEnabled() { return gEnabled.load(std::memory_order_relaxed); }

void traceSetEnabled(bool on) {
  epoch();  // pin the epoch before the first event
  gEnabled.store(on, std::memory_order_relaxed);
}

void traceClear() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& b : r.buffers) b->events.clear();
}

std::size_t traceEventCount() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::size_t n = 0;
  for (const auto& b : r.buffers) n += b->events.size();
  return n;
}

std::size_t traceThreadBufferCount() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.buffers.size();
}

double traceNowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch())
      .count();
}

void traceInstant(const char* cat, std::string name, std::string args) {
  if (!traceEnabled()) return;
  ThreadBuffer& buf = localBuffer();
  TraceEvent e;
  e.cat = cat;
  e.name = std::move(name);
  e.args = std::move(args);
  e.tsUs = traceNowUs();
  e.tid = buf.tid;
  e.phase = 'i';
  buf.events.push_back(std::move(e));
}

void traceComplete(const char* cat, std::string name, std::string args,
                   double tsUs, double durUs) {
  ThreadBuffer& buf = localBuffer();
  TraceEvent e;
  e.cat = cat;
  e.name = std::move(name);
  e.args = std::move(args);
  e.tsUs = tsUs;
  e.durUs = durUs;
  e.tid = buf.tid;
  e.phase = 'X';
  buf.events.push_back(std::move(e));
}

std::string traceFormat(const char* fmt, ...) {
  char buf[192];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  return buf;
}

std::string traceRenderChrome() {
  // Copy events out under the lock, then render. Events are ordered by
  // (tid, ts): each thread's buffer is already time-ordered, so the export
  // is a stable function of what was recorded, not of export timing.
  std::vector<TraceEvent> all;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto& b : r.buffers)
      all.insert(all.end(), b->events.begin(), b->events.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.tsUs < b.tsUs;
                   });

  std::string out;
  out.reserve(all.size() * 96 + 64);
  out += "{\"traceEvents\":[";
  char num[64];
  for (std::size_t i = 0; i < all.size(); ++i) {
    const TraceEvent& e = all[i];
    if (i) out += ",";
    out += "\n{\"name\":\"";
    appendEscaped(out, e.name);
    out += "\",\"cat\":\"";
    appendEscaped(out, e.cat);
    out += "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":1,\"tid\":";
    std::snprintf(num, sizeof num, "%d", e.tid);
    out += num;
    std::snprintf(num, sizeof num, ",\"ts\":%.3f", e.tsUs);
    out += num;
    if (e.phase == 'X') {
      std::snprintf(num, sizeof num, ",\"dur\":%.3f", e.durUs);
      out += num;
    }
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    if (!e.args.empty()) {
      out += ",\"args\":{";
      out += e.args;  // pre-rendered "key":value[,...] body
      out += "}";
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool traceExportChrome(const std::string& path) {
  const std::string json = traceRenderChrome();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    TC_WARN("trace: cannot write %s", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

void TraceSpan::open(const char* cat, std::string name) {
  active_ = true;
  cat_ = cat;
  name_ = std::move(name);
  startUs_ = traceNowUs();
}

void TraceSpan::close() {
  const double end = traceNowUs();
  traceComplete(cat_, std::move(name_), std::move(args_), startUs_,
                end - startUs_);
  active_ = false;
}

namespace {
void appendArgKey(std::string& args, const char* key) {
  if (!args.empty()) args += ",";
  args += "\"";
  appendEscaped(args, key);
  args += "\":";
}
}  // namespace

void TraceSpan::arg(const char* key, double value) {
  if (!active_) return;
  appendArgKey(args_, key);
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  args_ += buf;
}

void TraceSpan::arg(const char* key, std::int64_t value) {
  if (!active_) return;
  appendArgKey(args_, key);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  args_ += buf;
}

void TraceSpan::arg(const char* key, const char* value) {
  if (!active_) return;
  appendArgKey(args_, key);
  args_ += "\"";
  appendEscaped(args_, value);
  args_ += "\"";
}

}  // namespace tc

#endif  // TC_TRACING_ENABLED
