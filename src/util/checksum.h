#pragma once
/// \file checksum.h
/// \brief CRC-32 (ISO-HDLC polynomial) for framing binary payloads.
///
/// The multi-process scenario farm moves designs and results across
/// process boundaries where a crashed or wedged worker can truncate or
/// scribble on a stream mid-write. Every snapshot payload and every result
/// frame therefore carries a CRC so corruption is *detected* and routed
/// through tc::Status / DiagnosticSink instead of being parsed into
/// garbage. CRC-32 catches all single-byte and burst errors shorter than
/// 32 bits, which covers the truncate/bit-flip fault model the
/// farm-faultinject suite injects (see DESIGN.md "Process fault model").

#include <cstddef>
#include <cstdint>

namespace tc {

/// CRC-32 of `len` bytes, continuing from `seed` (pass the previous return
/// value to checksum a stream in chunks; 0 starts a fresh checksum).
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

}  // namespace tc
