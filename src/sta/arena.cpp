#include "sta/arena.h"

#include "sta/engine.h"

namespace tc {

void TimingArena::reset(int slots, double noTime) {
  slots_ = slots;
  const auto n = static_cast<std::size_t>(slots);
  HotWords h = {};
  for (int c = 0; c < 4; ++c) h.arr[c] = noTime;
  hot_.assign(n, h);
  for (int c = 0; c < 4; ++c) {
    parentEdge_[c].assign(n, -1);
    parentTrans_[c].assign(n, 0);
    parentDelay_[c].assign(n, 0.0);
    parentVar_[c].assign(n, 0.0);
  }
}

void TimingArena::resetSlot(int slot, double noTime) {
  const auto s = static_cast<std::size_t>(slot);
  HotWords& h = hot_[s];
  h = HotWords{};
  for (int c = 0; c < 4; ++c) {
    h.arr[c] = noTime;
    parentEdge_[c][s] = -1;
    parentTrans_[c][s] = 0;
    parentDelay_[c][s] = 0.0;
    parentVar_[c][s] = 0.0;
  }
}

void TimingArena::resetRequired(double inf) {
  const auto n = static_cast<std::size_t>(slots_);
  req_.assign(n, ReqPair{{inf, inf}});
}

VertexTiming TimingArena::gather(int slot) const {
  const auto s = static_cast<std::size_t>(slot);
  const HotWords& h = hot_[s];
  VertexTiming t;
  for (int m = 0; m < 2; ++m)
    for (int tr = 0; tr < 2; ++tr) {
      const int c = ch(m, tr);
      t.arr[m][tr] = h.arr[c];
      t.slew[m][tr] = h.slew[c];
      t.var[m][tr] = h.var[c];
      t.depth[m][tr] = h.depth[c];
      t.parentEdge[m][tr] = parentEdge_[c][s];
      t.parentTrans[m][tr] = parentTrans_[c][s];
      t.parentDelay[m][tr] = parentDelay_[c][s];
      t.parentVar[m][tr] = parentVar_[c][s];
    }
  return t;
}

}  // namespace tc
