#include "sta/report.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/stats.h"
#include "util/table.h"

namespace tc {

std::string timingSummary(const StaEngine& engine) {
  std::ostringstream os;
  const auto b = breakdown(engine);
  os << "scenario " << engine.scenario().name << " ["
     << toString(engine.scenario().derate.mode) << ", BEOL "
     << toString(engine.scenario().beol) << "]\n";
  os << "  setup: WNS " << TextTable::num(b.setupWns, 1) << " ps, TNS "
     << TextTable::num(b.setupTns, 1) << " ps, " << b.setupViolations
     << " violating endpoints\n";
  os << "  hold : WNS " << TextTable::num(b.holdWns, 1) << " ps, TNS "
     << TextTable::num(b.holdTns, 1) << " ps, " << b.holdViolations
     << " violating endpoints\n";
  os << "  DRV  : " << b.maxTransViolations << " maxtrans, "
     << b.maxCapViolations << " maxcap\n";
  return os.str();
}

std::string pathReport(const StaEngine& engine, const EndpointTiming& ep,
                       Check check) {
  std::ostringstream os;
  const Mode mode = check == Check::kSetup ? Mode::kLate : Mode::kEarly;
  const int trans = check == Check::kSetup ? ep.setupTrans : ep.holdTrans;
  const auto path = engine.tracePath(ep.vertex, mode, trans);
  const Netlist& nl = engine.netlist();
  const TimingGraph& g = engine.graph();

  os << (check == Check::kSetup ? "Setup" : "Hold") << " path, slack "
     << TextTable::num(check == Check::kSetup ? ep.setupSlack : ep.holdSlack,
                       1)
     << " ps (CPPR credit "
     << TextTable::num(check == Check::kSetup ? ep.cpprSetup : ep.cpprHold, 1)
     << " ps)\n";
  for (const auto& step : path) {
    const auto& v = g.vertex(step.vertex);
    std::string name;
    switch (v.kind) {
      case TimingGraph::VertexKind::kPort:
        name = "port " + nl.port(v.port).name;
        break;
      case TimingGraph::VertexKind::kCellInput:
        name = nl.instance(v.inst).name + "/" +
               (nl.isSequential(v.inst) ? (v.pin == 0 ? "D" : "CK")
                                        : "in" + std::to_string(v.pin)) +
               " (" + nl.cellOf(v.inst).name + ")";
        break;
      case TimingGraph::VertexKind::kCellOutput:
        name = nl.instance(v.inst).name + "/out (" + nl.cellOf(v.inst).name +
               ")";
        break;
    }
    os << "  " << (step.trans == 0 ? "r " : "f ") << TextTable::num(step.arrival, 1)
       << "  +" << TextTable::num(step.edgeDelay, 1) << "  " << name << "\n";
  }
  return os.str();
}

std::vector<int> worstEndpointIndices(const StaEngine& engine, Check check,
                                      int k) {
  const auto& eps = engine.endpoints();
  std::vector<int> idx(eps.size());
  for (std::size_t i = 0; i < eps.size(); ++i) idx[i] = static_cast<int>(i);
  const auto slackOf = [&](int i) {
    const auto& ep = eps[static_cast<std::size_t>(i)];
    return check == Check::kSetup ? ep.setupSlack : ep.holdSlack;
  };
  std::sort(idx.begin(), idx.end(), [&](int a, int b) {
    const double sa = slackOf(a), sb = slackOf(b);
    if (sa != sb) return sa < sb;
    return a < b;
  });
  if (k >= 0 && static_cast<int>(idx.size()) > k)
    idx.resize(static_cast<std::size_t>(k));
  return idx;
}

std::vector<EndpointTiming> worstEndpoints(const StaEngine& engine,
                                           Check check, int k) {
  std::vector<EndpointTiming> out;
  for (int i : worstEndpointIndices(engine, check, k))
    out.push_back(engine.endpoints()[static_cast<std::size_t>(i)]);
  return out;
}

SlackHistogramBins slackHistogramBins(const StaEngine& engine, Check check,
                                      int bins) {
  SlackHistogramBins out;
  if (bins < 1) bins = 1;
  SampleSet s;
  for (const auto& ep : engine.endpoints()) {
    const double v = check == Check::kSetup ? ep.setupSlack : ep.holdSlack;
    if (std::isfinite(v)) s.add(v);
  }
  if (s.empty()) return out;
  out.min = s.min();
  out.max = s.max();
  out.lo = out.min;
  const double hi = std::max(out.max, out.lo + 1.0);
  out.binWidth = (hi - out.lo) / bins;
  const auto h = s.histogram(out.lo, hi, static_cast<std::size_t>(bins));
  out.counts.assign(h.begin(), h.end());
  for (const auto c : out.counts) out.total += c;
  return out;
}

std::string slackHistogram(const StaEngine& engine, Check check, int bins) {
  const SlackHistogramBins h = slackHistogramBins(engine, check, bins);
  if (h.total == 0) return "no constrained endpoints\n";
  std::ostringstream os;
  std::uint64_t peak = 1;
  for (const auto c : h.counts) peak = std::max(peak, c);
  for (std::size_t b = 0; b < h.counts.size(); ++b) {
    const double x = h.lo + static_cast<double>(b) * h.binWidth;
    os << TextTable::num(x, 0) << ".." << TextTable::num(x + h.binWidth, 0)
       << " ps | "
       << asciiBar(static_cast<double>(h.counts[b]),
                   static_cast<double>(peak), 40)
       << " " << h.counts[b] << "\n";
  }
  return os.str();
}

FailureBreakdown breakdown(const StaEngine& engine) {
  FailureBreakdown b;
  b.setupWns = engine.wns(Check::kSetup);
  b.setupTns = engine.tns(Check::kSetup);
  b.holdWns = engine.wns(Check::kHold);
  b.holdTns = engine.tns(Check::kHold);
  b.setupViolations = engine.violationCount(Check::kSetup);
  b.holdViolations = engine.violationCount(Check::kHold);
  for (const auto& v : engine.drvViolations()) {
    if (v.isTransition)
      ++b.maxTransViolations;
    else
      ++b.maxCapViolations;
  }
  return b;
}

}  // namespace tc
