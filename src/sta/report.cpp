#include "sta/report.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/stats.h"
#include "util/table.h"

namespace tc {

std::string timingSummary(const StaEngine& engine) {
  std::ostringstream os;
  const auto b = breakdown(engine);
  os << "scenario " << engine.scenario().name << " ["
     << toString(engine.scenario().derate.mode) << ", BEOL "
     << toString(engine.scenario().beol) << "]\n";
  os << "  setup: WNS " << TextTable::num(b.setupWns, 1) << " ps, TNS "
     << TextTable::num(b.setupTns, 1) << " ps, " << b.setupViolations
     << " violating endpoints\n";
  os << "  hold : WNS " << TextTable::num(b.holdWns, 1) << " ps, TNS "
     << TextTable::num(b.holdTns, 1) << " ps, " << b.holdViolations
     << " violating endpoints\n";
  os << "  DRV  : " << b.maxTransViolations << " maxtrans, "
     << b.maxCapViolations << " maxcap\n";
  return os.str();
}

std::string pathReport(const StaEngine& engine, const EndpointTiming& ep,
                       Check check) {
  std::ostringstream os;
  const Mode mode = check == Check::kSetup ? Mode::kLate : Mode::kEarly;
  const int trans = check == Check::kSetup ? ep.setupTrans : ep.holdTrans;
  const auto path = engine.tracePath(ep.vertex, mode, trans);
  const Netlist& nl = engine.netlist();
  const TimingGraph& g = engine.graph();

  os << (check == Check::kSetup ? "Setup" : "Hold") << " path, slack "
     << TextTable::num(check == Check::kSetup ? ep.setupSlack : ep.holdSlack,
                       1)
     << " ps (CPPR credit "
     << TextTable::num(check == Check::kSetup ? ep.cpprSetup : ep.cpprHold, 1)
     << " ps)\n";
  for (const auto& step : path) {
    const auto& v = g.vertex(step.vertex);
    std::string name;
    switch (v.kind) {
      case TimingGraph::VertexKind::kPort:
        name = "port " + nl.port(v.port).name;
        break;
      case TimingGraph::VertexKind::kCellInput:
        name = nl.instance(v.inst).name + "/" +
               (nl.isSequential(v.inst) ? (v.pin == 0 ? "D" : "CK")
                                        : "in" + std::to_string(v.pin)) +
               " (" + nl.cellOf(v.inst).name + ")";
        break;
      case TimingGraph::VertexKind::kCellOutput:
        name = nl.instance(v.inst).name + "/out (" + nl.cellOf(v.inst).name +
               ")";
        break;
    }
    os << "  " << (step.trans == 0 ? "r " : "f ") << TextTable::num(step.arrival, 1)
       << "  +" << TextTable::num(step.edgeDelay, 1) << "  " << name << "\n";
  }
  return os.str();
}

std::vector<EndpointTiming> worstEndpoints(const StaEngine& engine,
                                           Check check, int k) {
  std::vector<EndpointTiming> eps = engine.endpoints();
  std::sort(eps.begin(), eps.end(),
            [check](const EndpointTiming& a, const EndpointTiming& b) {
              return (check == Check::kSetup ? a.setupSlack : a.holdSlack) <
                     (check == Check::kSetup ? b.setupSlack : b.holdSlack);
            });
  if (static_cast<int>(eps.size()) > k) eps.resize(static_cast<std::size_t>(k));
  return eps;
}

std::string slackHistogram(const StaEngine& engine, Check check, int bins) {
  SampleSet s;
  for (const auto& ep : engine.endpoints()) {
    const double v = check == Check::kSetup ? ep.setupSlack : ep.holdSlack;
    if (std::isfinite(v)) s.add(v);
  }
  std::ostringstream os;
  if (s.empty()) return "no constrained endpoints\n";
  const double lo = s.min();
  const double hi = std::max(s.max(), lo + 1.0);
  const auto h = s.histogram(lo, hi, static_cast<std::size_t>(bins));
  const double w = (hi - lo) / bins;
  std::size_t peak = 1;
  for (auto c : h) peak = std::max(peak, c);
  for (int b = 0; b < bins; ++b) {
    const double x = lo + b * w;
    os << TextTable::num(x, 0) << ".." << TextTable::num(x + w, 0) << " ps | "
       << asciiBar(static_cast<double>(h[static_cast<std::size_t>(b)]),
                   static_cast<double>(peak), 40)
       << " " << h[static_cast<std::size_t>(b)] << "\n";
  }
  return os.str();
}

FailureBreakdown breakdown(const StaEngine& engine) {
  FailureBreakdown b;
  b.setupWns = engine.wns(Check::kSetup);
  b.setupTns = engine.tns(Check::kSetup);
  b.holdWns = engine.wns(Check::kHold);
  b.holdTns = engine.tns(Check::kHold);
  b.setupViolations = engine.violationCount(Check::kSetup);
  b.holdViolations = engine.violationCount(Check::kHold);
  for (const auto& v : engine.drvViolations()) {
    if (v.isTransition)
      ++b.maxTransViolations;
    else
      ++b.maxCapViolations;
  }
  return b;
}

}  // namespace tc
