#pragma once
/// \file ssta.h
/// \brief Block-based statistical STA — the paper's "holy grail" that the
/// industry "has ... for over a decade flirted with" yet which "seems to
/// remain perpetually in the future" (Sec. 3.1).
///
/// This is the canonical first-order flavor: every arc delay is a Gaussian
/// (mean from NLDM, sigma from the LVF characterization, independent local
/// variables), sums add moments, and path merges use Clark's MAX
/// approximation, so statistical arrival distributions propagate through
/// the whole graph instead of a single corner number.
///
/// Its purpose here is exactly the paper's footnote-13 argument: measured
/// against the Monte Carlo golden, block-based SSTA buys little over
/// LVF-based mean + k*sigma propagation — quantified by bench_ssta.

#include <vector>

#include "sta/engine.h"

namespace tc {

/// Gaussian arrival: mean and variance.
struct GaussianTime {
  double mean = 0.0;
  double var = 0.0;

  double sigma() const;
  /// Quantile mean + z*sigma.
  double at(double z) const;
};

/// Clark's approximation of max(a, b) for (possibly correlated-free)
/// Gaussians. Exposed for tests.
GaussianTime clarkMax(const GaussianTime& a, const GaussianTime& b);

struct SstaEndpoint {
  VertexId vertex = -1;
  InstId flop = -1;
  GaussianTime slack;      ///< statistical setup-slack distribution
  double slack3Sigma = 0.0;  ///< mean - 3 sigma
  double yield = 1.0;        ///< P(slack >= 0)
};

class SstaAnalyzer {
 public:
  /// Uses the engine's graph, delay calculator and scenario; the engine
  /// must have run (clock arrivals / constraints are reused).
  explicit SstaAnalyzer(StaEngine& engine) : eng_(&engine) {}

  /// Forward statistical propagation (late mode), then endpoint checks.
  std::vector<SstaEndpoint> run();

  /// Statistical WNS at 3 sigma from the last run().
  Ps wns3Sigma() const { return wns3_; }

 private:
  StaEngine* eng_;
  Ps wns3_ = 0.0;
};

}  // namespace tc
