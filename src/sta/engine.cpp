#include "sta/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "util/metrics.h"
#include "util/trace.h"

namespace tc {

const char* toString(DerateMode mode) {
  switch (mode) {
    case DerateMode::kNone: return "none";
    case DerateMode::kFlatOcv: return "flat-OCV";
    case DerateMode::kAocv: return "AOCV";
    case DerateMode::kPocv: return "POCV";
    case DerateMode::kLvf: return "LVF";
  }
  return "?";
}

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

StaEngine::StaEngine(const Netlist& netlist, const Scenario& scenario)
    : nl_(&netlist), sc_(&scenario), graph_(netlist), dc_(netlist, scenario) {
  if (!scenario.lib)
    throw std::invalid_argument("Scenario has no library");
  // The netlist's reference library and the scenario library must agree on
  // cell identity (same builder => same ordering); verify a sample.
  if (scenario.lib->cellCount() != netlist.library().cellCount())
    throw std::invalid_argument("scenario library cell set mismatch");
  // Subscribe to in-place edits so transforms and ECOs mark the dirty
  // frontier without every call site knowing about this engine. The
  // netlist must outlive the engine (it already must: nl_ is a pointer).
  nl_->addListener(this);
}

StaEngine::~StaEngine() { nl_->removeListener(this); }

Ps StaEngine::clockPeriod() const {
  if (nl_->clocks().empty())
    throw std::logic_error("no clock defined");
  return nl_->clocks().front().period;
}

void StaEngine::initSources() {
  tw_.reset(graph_.vertexCount(), kNoTime);

  // Clock roots.
  for (const auto& c : nl_->clocks()) {
    const int s = graph_.slotOf(graph_.portVertex(c.port));
    for (int m = 0; m < 2; ++m)
      for (int tr = 0; tr < 2; ++tr) {
        tw_.arr(m, tr, s) = c.sourceLatency;
        tw_.slew(m, tr, s) = 20.0;
      }
  }
  // Data primary inputs.
  const Ps inputDelay =
      sc_->inputDelay > 0.0
          ? sc_->inputDelay
          : (nl_->clocks().empty() ? 0.0 : 0.25 * clockPeriod());
  for (PortId p = 0; p < nl_->portCount(); ++p) {
    if (sc_->disableDataInputs) break;
    if (!nl_->port(p).isInput) continue;
    if (nl_->port(p).constant) continue;  // case analysis: no transitions
    bool isClock = false;
    for (const auto& c : nl_->clocks())
      if (c.port == p) isClock = true;
    if (isClock) continue;
    const int s = graph_.slotOf(graph_.portVertex(p));
    for (int m = 0; m < 2; ++m)
      for (int tr = 0; tr < 2; ++tr) {
        tw_.arr(m, tr, s) = inputDelay;
        tw_.slew(m, tr, s) = sc_->inputSlew;
      }
  }

  // Quarantined pins (lint-broken loops, contained dangling inputs) have
  // no incoming net arc; seed them with a pessimistic borrowed arrival —
  // late = a full clock period, early = 0 — so every path through them is
  // timed at least as badly as any real arrival could make it. This is
  // the bounded-pessimism half of the quarantine contract: degraded WNS
  // can only be <= clean WNS.
  const Ps borrowedLate = nl_->clocks().empty() ? inputDelay : clockPeriod();
  for (const auto& qp : nl_->quarantinedPins()) {
    const VertexId v = graph_.inputVertex(qp.inst, qp.pin);
    if (v < 0) continue;
    const int s = graph_.slotOf(v);
    for (int tr = 0; tr < 2; ++tr) {
      tw_.arr(0, tr, s) = borrowedLate;  // late
      tw_.arr(1, tr, s) = 0.0;           // early
      tw_.slew(0, tr, s) = tw_.slew(1, tr, s) = sc_->inputSlew;
    }
  }
}

double StaEngine::key(VertexId v, Mode m, int trans) const {
  const int s = graph_.slotOf(v);
  const int mi = static_cast<int>(m);
  const double arr = tw_.arr(mi, trans, s);
  if (arr == kNoTime) return m == Mode::kLate ? kNoTime : kInf;
  const auto& d = sc_->derate;
  switch (d.mode) {
    case DerateMode::kNone:
    case DerateMode::kFlatOcv:
      return arr;  // flat factors folded into edge delays
    case DerateMode::kAocv: {
      const auto& aocv = sc_->lib->aocv();
      const int depth = std::max(tw_.depth(mi, trans, s), 1);
      return m == Mode::kLate ? arr * aocv.late(depth)
                              : arr * aocv.early(depth);
    }
    case DerateMode::kPocv:
    case DerateMode::kLvf: {
      const double sigma = std::sqrt(std::max(tw_.var(mi, trans, s), 0.0));
      return m == Mode::kLate ? arr + d.sigmaCount * sigma
                              : arr - d.sigmaCount * sigma;
    }
  }
  return arr;
}

Ps StaEngine::arrivalKey(VertexId v, Mode m, int trans) const {
  return key(v, m, trans);
}

Ps StaEngine::arrivalKey(VertexId v, Mode m) const {
  const double r = key(v, m, 0);
  const double f = key(v, m, 1);
  if (m == Mode::kLate) return std::max(r, f);
  // early: ignore unreached (kNoTime maps to +inf in key()); take min.
  return std::min(r, f);
}

Ps StaEngine::slewAt(VertexId v, Mode m) const {
  const int s = graph_.slotOf(v);
  const int mi = static_cast<int>(m);
  return std::max(tw_.slew(mi, 0, s), tw_.slew(mi, 1, s));
}

void StaEngine::relax(VertexId to, Mode m, int trans, double arr,
                      double slewIn, double var, int depth, EdgeId via,
                      int fromTrans, double edgeDelay, double edgeVar) {
  // NaN/Inf quarantine: a degenerate delay-calc result (bad parasitics,
  // corrupt table) must not poison the forward cone. Reject the candidate
  // locally; the vertex keeps its previous (or unreached) state and every
  // other path through it still times normally. Events are buffered, not
  // reported inline, so a parallel sweep produces the same diagnostics as
  // a serial one (flushNanEvents orders them by topo position).
  if (!std::isfinite(arr) || !std::isfinite(slewIn) || !std::isfinite(var)) {
    std::lock_guard<std::mutex> lock(nanMu_);
    nanEvents_.push_back(
        {to, static_cast<std::uint8_t>(!std::isfinite(arr) ? 1 : 0)});
    return;
  }
  const int s = graph_.slotOf(to);
  const int mi = static_cast<int>(m);
  const auto& d = sc_->derate;

  // Selection key for the candidate.
  double candKey = arr;
  double curKey = tw_.arr(mi, trans, s);
  if (d.mode == DerateMode::kPocv || d.mode == DerateMode::kLvf) {
    const double sc = d.sigmaCount;
    candKey = m == Mode::kLate ? arr + sc * std::sqrt(std::max(var, 0.0))
                               : arr - sc * std::sqrt(std::max(var, 0.0));
    if (curKey != kNoTime) {
      const double cs = std::sqrt(std::max(tw_.var(mi, trans, s), 0.0));
      curKey = m == Mode::kLate ? tw_.arr(mi, trans, s) + sc * cs
                                : tw_.arr(mi, trans, s) - sc * cs;
    }
  }

  const bool better =
      curKey == kNoTime ||
      (m == Mode::kLate ? candKey > curKey : candKey < curKey);
  if (better) {
    tw_.arr(mi, trans, s) = arr;
    tw_.var(mi, trans, s) = var;
    tw_.depth(mi, trans, s) = depth;
    tw_.parentEdge(mi, trans, s) = via;
    tw_.parentTrans(mi, trans, s) = fromTrans;
    tw_.parentDelay(mi, trans, s) = edgeDelay;
    tw_.parentVar(mi, trans, s) = edgeVar;
  }
  // Worst-slew merging, independent of arrival selection (classic GBA
  // pessimism that PBA later recovers).
  double& sl = tw_.slew(mi, trans, s);
  if (sl <= 0.0) {
    sl = slewIn;
  } else if (m == Mode::kLate) {
    sl = std::max(sl, slewIn);
  } else {
    sl = std::min(sl, slewIn);
  }
}

void StaEngine::processEdge(EdgeId e) {
  const TimingGraph::Edge& ed = graph_.edge(e);
  const int fs = graph_.slotOf(ed.from);
  // Relax every producible (mode, trIn, trOut) candidate. The iteration
  // order matches the pre-refactor per-kind loops exactly, and the
  // arithmetic lives in edgeCandidate(), shared with the PBA enumerator's
  // pruning bounds. (Adding a zero skew / zero variance term is bitwise
  // neutral here: arrivals and variances are non-negative.)
  for (int m = 0; m < 2; ++m) {
    for (int trIn = 0; trIn < 2; ++trIn) {
      for (int trOut = 0; trOut < 2; ++trOut) {
        const EdgeCand c =
            edgeCandidate(e, static_cast<Mode>(m), trIn, trOut);
        if (!c.valid) continue;
        relax(ed.to, static_cast<Mode>(m), trOut,
              tw_.arr(m, trIn, fs) + c.delay + c.skew, c.outSlew,
              tw_.var(m, trIn, fs) + c.var, tw_.depth(m, trIn, fs) + c.depthInc,
              e, trIn, c.delay, c.var);
      }
    }
  }
}

// --- batched level sweep ----------------------------------------------------
// The serial forward sweep runs each level in three phases: stageEdge()
// records every producible candidate (its source words and everything the
// relax call needs) and gathers the NLDM table requests into one contiguous
// array; evalNldmBatch() evaluates the whole array in a tight loop; then
// flushBatch() replays the candidates through relax() in the exact order
// the scalar sweep would have produced them. Bitwise identity holds
// because (a) every candidate reads only strictly-lower-level state, which
// is final before the level starts, so deferring the relax writes cannot
// change any input, and (b) the replay preserves the scalar (vertex,
// in-edge, mode, trIn, trOut) nest order, so relax sees candidates in the
// same sequence. Wire delays and driver loads come from the flat edge
// plans / flat load table — the precomputed words are the exact doubles
// the scalar dc_.wire()/driverLoad() calls would derive, fed through the
// identical arithmetic (see buildEdgePlans and DelayCalculator::flatLoad),
// so results are unchanged bit for bit; only the parasitics-cache hit
// counters move (the flat paths never touch the cache — warmFlat() fills
// it once up front instead).

void StaEngine::buildEdgePlans() {
  TC_SPAN("sta", "build_edge_plans");
  const auto& d = sc_->derate;
  const auto sharesGrid = [](const Table2D& ref, const Table2D& t) {
    return ref.xAxis().points() == t.xAxis().points() &&
           ref.yAxis().points() == t.yAxis().points();
  };
  // Per-edge facts shared by both plan shapes. The load words are the
  // flat-load summaries warmFlat() derived (propagate() warms before
  // building); the wire words are the doubles dc_.wire() would derive per
  // candidate — the GBA Elmore delay is slew-independent, and PERI
  // degradation reduces to sqrt(slewIn^2 + slewSq) with the coefficient
  // squared here: the same doubles in the same operations.
  const auto wireWords = [this](const TimingGraph::Edge& ed, double* delay,
                                double* slewSq, double* skew,
                                std::int8_t* portSink) {
    const TimingGraph::Vertex& tv = graph_.vertex(ed.to);
    if (tv.kind == TimingGraph::VertexKind::kCellInput && tv.pin == 1 &&
        nl_->isSequential(tv.inst))
      *skew = nl_->instance(tv.inst).usefulSkew;
    const NetParasitics& p = dc_.parasitics(ed.net);
    if (ed.sinkIndex < 0 ||
        static_cast<std::size_t>(ed.sinkIndex) >= p.sinkNode.size()) {
      *portSink = 1;  // lumped at the root: delay 0, slew unchanged
    } else {
      const int node = p.sinkNode[static_cast<std::size_t>(ed.sinkIndex)];
      *delay = p.tree.elmore(node);
      const double ws = 2.1972245773362196 * p.tree.elmore(node);
      *slewSq = ws * ws;
    }
  };
  const auto loadWords = [this](InstId inst, LoadWords* w) {
    const NetId net = nl_->instance(inst).fanout;
    if (net < 0) return false;
    const DelayCalculator::FlatLoad& f = dc_.flatWords(net);
    w->cNear = f.cNear;
    w->cFar = f.cFar;
    w->cTotal = f.cTotal;
    w->twoMaxM1 = f.twoMaxM1;
    return true;
  };

  // Forward plans in the exact ascending-level in-edge iteration order of
  // the forward sweep, so sweepLevelBatched() streams them sequentially.
  fwdPlans_.clear();
  fwdPlans_.reserve(static_cast<std::size_t>(graph_.edgeCount()));
  fwdLevelOff_.assign(static_cast<std::size_t>(graph_.levelCount()) + 1, 0);
  for (int li = 0; li < graph_.levelCount(); ++li) {
    fwdLevelOff_[static_cast<std::size_t>(li)] = fwdPlans_.size();
    for (const VertexId v : graph_.level(li)) {
      for (const EdgeId e : graph_.inEdges(v)) {
        const TimingGraph::Edge& ed = graph_.edge(e);
        FwdPlan pl;
        pl.e = e;
        pl.kind = ed.kind;
        pl.to = ed.to;
        pl.fromSlot = graph_.slotOf(ed.from);
        switch (ed.kind) {
          case TimingGraph::EdgeKind::kNetArc: {
            pl.u.wire.delay = 0.0;
            pl.u.wire.slewSq = 0.0;
            pl.u.wire.skew = 0.0;
            wireWords(ed, &pl.u.wire.delay, &pl.u.wire.slewSq,
                      &pl.u.wire.skew, &pl.portSink);
            break;
          }
          case TimingGraph::EdgeKind::kCellArc: {
            const InstId inst = graph_.vertex(ed.from).inst;
            pl.inst = inst;
            pl.hasNet = loadWords(inst, &pl.u.load) ? 1 : 0;
            const Cell& cell = dc_.cellOf(inst);
            const TimingArc& arc =
                cell.arcs[static_cast<std::size_t>(ed.arcIndex)];
            pl.unate = arc.unate == Unateness::kPositive   ? 1
                       : arc.unate == Unateness::kNegative ? 2
                                                           : 0;
            if (d.mode == DerateMode::kLvf) {
              pl.sigmaKind = 1;
            } else if (d.mode == DerateMode::kPocv) {
              pl.sigmaKind = 2;
              pl.ratio = cell.pocvSigmaRatio;
            }
            for (int trOut = 0; trOut < 2; ++trOut) {
              const NldmSurface& s = arc.surface(trOut == 0);
              pl.surf[trOut] = &s;
              const LvfSurface& lvf = arc.lvf(trOut == 0);
              if (d.mode == DerateMode::kLvf && !lvf.empty())
                pl.lvf[trOut] = &lvf;
              bool fused = s.delay.xAxis().size() >= 2 &&
                           s.delay.yAxis().size() >= 2 &&
                           sharesGrid(s.delay, s.slew);
              if (fused && pl.lvf[trOut])
                fused = sharesGrid(s.delay, lvf.sigmaEarly) &&
                        sharesGrid(s.delay, lvf.sigmaLate);
              pl.fused[trOut] = fused ? 1 : 0;
            }
            break;
          }
          case TimingGraph::EdgeKind::kClockToQ: {
            const InstId flop = graph_.vertex(ed.from).inst;
            pl.inst = flop;
            pl.hasNet = loadWords(flop, &pl.u.load) ? 1 : 0;
            const Cell& cell = dc_.cellOf(flop);
            if (d.mode == DerateMode::kLvf || d.mode == DerateMode::kPocv) {
              pl.sigmaKind = 2;
              pl.ratio =
                  cell.pocvSigmaRatio > 0 ? cell.pocvSigmaRatio : 0.03;
            }
            pl.surf[0] = &cell.flop->c2qRise;
            pl.surf[1] = &cell.flop->c2qFall;
            for (int trOut = 0; trOut < 2; ++trOut) {
              const NldmSurface& s = *pl.surf[trOut];
              pl.fused[trOut] = (s.delay.xAxis().size() >= 2 &&
                                 s.delay.yAxis().size() >= 2 &&
                                 sharesGrid(s.delay, s.slew))
                                    ? 1
                                    : 0;
            }
            break;
          }
        }
        fwdPlans_.push_back(pl);
      }
    }
  }
  fwdLevelOff_[static_cast<std::size_t>(graph_.levelCount())] =
      fwdPlans_.size();

  // Backward plans in the exact descending-level out-edge iteration order
  // of the required pull.
  bwdPlans_.clear();
  bwdPlans_.reserve(static_cast<std::size_t>(graph_.edgeCount()));
  for (int li = graph_.levelCount(); li-- > 0;) {
    for (const VertexId v : graph_.level(li)) {
      for (const EdgeId e : graph_.outEdges(v)) {
        const TimingGraph::Edge& ed = graph_.edge(e);
        BwdPlan pl;
        pl.kind = ed.kind;
        pl.toSlot = graph_.slotOf(ed.to);
        switch (ed.kind) {
          case TimingGraph::EdgeKind::kNetArc: {
            pl.u.wire.delay = 0.0;
            pl.u.wire.skew = 0.0;
            double slewSq = 0.0;
            std::int8_t portSink = 0;
            wireWords(ed, &pl.u.wire.delay, &slewSq, &pl.u.wire.skew,
                      &portSink);
            break;
          }
          case TimingGraph::EdgeKind::kCellArc: {
            const InstId inst = graph_.vertex(ed.from).inst;
            pl.inst = inst;
            pl.hasNet = loadWords(inst, &pl.u.load) ? 1 : 0;
            const Cell& cell = dc_.cellOf(inst);
            const TimingArc& arc =
                cell.arcs[static_cast<std::size_t>(ed.arcIndex)];
            pl.unate = arc.unate == Unateness::kPositive   ? 1
                       : arc.unate == Unateness::kNegative ? 2
                                                           : 0;
            pl.surf[0] = &arc.surface(true);
            pl.surf[1] = &arc.surface(false);
            break;
          }
          case TimingGraph::EdgeKind::kClockToQ: {
            const InstId flop = graph_.vertex(ed.from).inst;
            pl.inst = flop;
            pl.hasNet = loadWords(flop, &pl.u.load) ? 1 : 0;
            const Cell& cell = dc_.cellOf(flop);
            pl.surf[0] = &cell.flop->c2qRise;
            pl.surf[1] = &cell.flop->c2qFall;
            break;
          }
        }
        bwdPlans_.push_back(pl);
      }
    }
  }
  plansValid_ = true;
}

void StaEngine::stageEdge(const FwdPlan& pl) {
  const int fs = pl.fromSlot;
  for (int m = 0; m < 2; ++m) {
    for (int trIn = 0; trIn < 2; ++trIn) {
      if (tw_.arr(m, trIn, fs) == kNoTime) continue;
      const double inSlew = tw_.slew(m, trIn, fs);
      switch (pl.kind) {
        case TimingGraph::EdgeKind::kNetArc: {
          // trOut == trIn only; wire results need no table batch.
          BatchOp op;
          op.e = pl.e;
          op.to = pl.to;
          op.m = static_cast<std::int8_t>(m);
          op.trIn = op.trOut = static_cast<std::int8_t>(trIn);
          op.skew = pl.u.wire.skew;
          op.wDelay = pl.u.wire.delay;
          op.wOutSlew = pl.portSink
                            ? inSlew
                            : std::sqrt(inSlew * inSlew + pl.u.wire.slewSq);
          op.fromArr = tw_.arr(m, trIn, fs);
          op.fromVar = tw_.var(m, trIn, fs);
          op.fromDepth = tw_.depth(m, trIn, fs);
          batchOps_.push_back(op);
          break;
        }
        case TimingGraph::EdgeKind::kCellArc: {
          int outLo = 0, outHi = 1;
          if (pl.unate == 2) outLo = outHi = 1 - trIn;
          if (pl.unate == 1) outLo = outHi = trIn;
          // The load is a pure function of (net, inSlew): one flat
          // resolution serves both output transitions bit-identically.
          const Ff load = pl.hasNet ? loadOf(pl.u.load, inSlew) : 2.0;
          for (int trOut = outLo; trOut <= outHi; ++trOut) {
            BatchOp op;
            op.e = pl.e;
            op.to = pl.to;
            op.m = static_cast<std::int8_t>(m);
            op.trIn = static_cast<std::int8_t>(trIn);
            op.trOut = static_cast<std::int8_t>(trOut);
            op.depthInc = 1;
            op.req = static_cast<int>(batchReqs_.size());
            DelayCalculator::NldmRequest rq;
            rq.surf = pl.surf[trOut];
            rq.lvf = pl.lvf[trOut];
            rq.fusedAxes = pl.fused[trOut] != 0;
            rq.inSlew = inSlew;
            rq.load = load;
            batchReqs_.push_back(rq);
            if (m == static_cast<int>(Mode::kLate) && !misLate_.empty())
              op.mis = misLate_[static_cast<std::size_t>(pl.inst)]
                               [static_cast<std::size_t>(trOut)];
            if (m == static_cast<int>(Mode::kEarly) && !misEarly_.empty())
              op.mis = misEarly_[static_cast<std::size_t>(pl.inst)]
                                [static_cast<std::size_t>(trOut)];
            op.sigmaKind = pl.sigmaKind;
            op.ratio = pl.ratio;
            op.fromArr = tw_.arr(m, trIn, fs);
            op.fromVar = tw_.var(m, trIn, fs);
            op.fromDepth = tw_.depth(m, trIn, fs);
            batchOps_.push_back(op);
          }
          break;
        }
        case TimingGraph::EdgeKind::kClockToQ: {
          if (trIn != 0) break;  // rising-edge flops
          const Ff load = pl.hasNet ? loadOf(pl.u.load, inSlew) : 2.0;
          for (int trOut = 0; trOut < 2; ++trOut) {
            BatchOp op;
            op.e = pl.e;
            op.to = pl.to;
            op.m = static_cast<std::int8_t>(m);
            op.trIn = 0;
            op.trOut = static_cast<std::int8_t>(trOut);
            op.depthInc = 1;
            op.req = static_cast<int>(batchReqs_.size());
            DelayCalculator::NldmRequest rq;
            rq.surf = pl.surf[trOut];
            rq.fusedAxes = pl.fused[trOut] != 0;
            rq.inSlew = inSlew;
            rq.load = load;
            batchReqs_.push_back(rq);
            op.sigmaKind = pl.sigmaKind;
            op.ratio = pl.ratio;
            op.fromArr = tw_.arr(m, trIn, fs);
            op.fromVar = tw_.var(m, trIn, fs);
            op.fromDepth = tw_.depth(m, trIn, fs);
            batchOps_.push_back(op);
          }
          break;
        }
      }
    }
  }
}

void StaEngine::flushBatch() {
  if (batchOps_.empty()) return;
  batchRes_.resize(batchReqs_.size());
  dc_.evalNldmBatch(batchReqs_.data(), batchReqs_.size(), batchRes_.data());
  const auto& d = sc_->derate;
  for (const BatchOp& op : batchOps_) {
    const Mode m = static_cast<Mode>(op.m);
    const double f =
        d.mode == DerateMode::kFlatOcv
            ? (m == Mode::kLate ? d.flatLate : d.flatEarly)
            : 1.0;
    double delay, outSlew, var = 0.0;
    if (op.req < 0) {
      delay = op.wDelay * f;
      outSlew = op.wOutSlew;
    } else {
      const DelayCalculator::ArcResult& r =
          batchRes_[static_cast<std::size_t>(op.req)];
      // op.mis defaults to 1.0: multiplying by 1.0 is the bitwise
      // identity on every finite double, so the unconditional multiply
      // matches the scalar path's "only when MIS vectors are set" form.
      const double rd = r.delay * op.mis;
      double sigma = 0.0;
      if (op.sigmaKind == 1)
        sigma = m == Mode::kLate ? r.sigmaLate : r.sigmaEarly;
      else if (op.sigmaKind == 2)
        sigma = op.ratio * rd;
      delay = rd * f;
      outSlew = r.outSlew;
      var = sigma * sigma;
    }
    relax(op.to, m, op.trOut, op.fromArr + delay + op.skew, outSlew,
          op.fromVar + var, op.fromDepth + op.depthInc, op.e, op.trIn,
          delay, var);
  }
  batchOps_.clear();
  batchReqs_.clear();
}

void StaEngine::sweepLevelBatched(int levelIndex) {
  // Flushing a staged prefix early (memory bound at 1M+ instances) is
  // safe anywhere on a vertex boundary: replay order still equals the
  // scalar order, and current-level writes are never read by this level.
  constexpr std::size_t kFlushThreshold = 1 << 16;
  std::size_t cur = fwdLevelOff_[static_cast<std::size_t>(levelIndex)];
  for (const VertexId v : graph_.level(levelIndex)) {
    const std::size_t n = graph_.inEdges(v).size();
    for (std::size_t k = 0; k < n; ++k) stageEdge(fwdPlans_[cur++]);
    if (batchOps_.size() >= kFlushThreshold) flushBatch();
  }
  flushBatch();
}

namespace {
constexpr int kMaxNanReports = 20;
}  // namespace

void StaEngine::emitNanWarn(DiagnosticSink& sink, VertexId vertex,
                            bool badArrival, std::size_t index,
                            std::size_t total) const {
  if (static_cast<int>(index) >= kMaxNanReports) return;
  const TimingGraph::Vertex& vx = graph_.vertex(vertex);
  const std::string entity = vx.kind == TimingGraph::VertexKind::kPort
                                 ? nl_->port(vx.port).name
                                 : nl_->instance(vx.inst).name;
  sink.warn(DiagCode::kLintNanQuarantined,
            std::string("non-finite ") +
                (badArrival ? "arrival" : "slew/variance") +
                " rejected during propagation" +
                (static_cast<int>(index) == kMaxNanReports - 1 &&
                         total > static_cast<std::size_t>(kMaxNanReports)
                     ? " (further reports suppressed)"
                     : ""),
            entity);
}

void StaEngine::flushNanEvents() {
  if (!nanEvents_.empty()) {
    static Counter& nanCtr =
        MetricsRegistry::global().counter("sta.nan_quarantined", "count");
    nanCtr.add(nanEvents_.size());
  }
  // Stable-sort by topo position: within one vertex the discovery order is
  // the vertex task's own deterministic in-edge order, and across vertices
  // the topo position is thread-independent — so serial and parallel runs
  // emit identical diagnostics.
  std::stable_sort(nanEvents_.begin(), nanEvents_.end(),
                   [this](const NanEvent& a, const NanEvent& b) {
                     return graph_.topoPosition(a.vertex) <
                            graph_.topoPosition(b.vertex);
                   });
  for (std::size_t i = 0; i < nanEvents_.size(); ++i) {
    ++propNan_;
    nanKinds_[static_cast<std::size_t>(nanEvents_[i].vertex)].push_back(
        nanEvents_[i].badArrival ? 1 : 0);
    if (diagSink_)
      emitNanWarn(*diagSink_, nanEvents_[i].vertex,
                  nanEvents_[i].badArrival != 0, i, nanEvents_.size());
  }
  nanEvents_.clear();
}

void StaEngine::replayTimingDiagnostics(DiagnosticSink& sink) const {
  // Propagation rejections, globally ordered by topo position. Each
  // vertex's stored kinds are already in its deterministic discovery
  // order, so walking vertices by topo position reproduces the fresh
  // run's stable sort (including the reporting cap, which depends on the
  // global event index).
  std::vector<VertexId> withEvents;
  for (VertexId v = 0; v < graph_.vertexCount(); ++v)
    if (!nanKinds_[static_cast<std::size_t>(v)].empty())
      withEvents.push_back(v);
  std::sort(withEvents.begin(), withEvents.end(),
            [this](VertexId a, VertexId b) {
              return graph_.topoPosition(a) < graph_.topoPosition(b);
            });
  const std::size_t total = static_cast<std::size_t>(propNan_);
  std::size_t index = 0;
  for (const VertexId v : withEvents)
    for (const std::uint8_t badArrival : nanKinds_[static_cast<std::size_t>(v)])
      emitNanWarn(sink, v, badArrival != 0, index++, total);

  // Endpoint drops, in endpoint-index order — the order checkEndpoints
  // reports them on a full pass.
  const auto& eps = graph_.endpoints();
  for (std::size_t i = 0; i < eps.size(); ++i) {
    if (!epDropped_[i]) continue;
    const TimingGraph::Vertex& vx = graph_.vertex(eps[i]);
    if (vx.kind == TimingGraph::VertexKind::kPort)
      sink.warn(DiagCode::kLintNanQuarantined,
                "output-port endpoint dropped: non-finite arrival",
                nl_->port(vx.port).name);
    else
      sink.warn(
          DiagCode::kLintNanQuarantined, "endpoint dropped: non-finite slack",
          vx.inst >= 0 ? nl_->instance(vx.inst).name : std::string());
  }
}

void StaEngine::propagate() {
  // Pull model: each vertex relaxes over its own in-edges. Ascending level
  // order is a refinement of topoOrder() for the pull model (every in-edge
  // comes from a strictly lower level, and per-vertex in-edge order is
  // what fixes the arithmetic), so the level-batched serial sweep, the
  // traced serial sweep and the per-level parallel sweep are all
  // bit-identical.
  TC_SPAN("sta", "propagate");
  if (pool_ && pool_->threadCount() > 0) {
    // All delay-calc lookups must be pure reads before tasks share them.
    dc_.warmCache(pool_);
    for (int li = 0; li < graph_.levelCount(); ++li) {
      const VertexSpan lv = graph_.level(li);
      TC_SPAN_F(span, "sta.level", "fwd_L%d", li);
      span.arg("width", static_cast<std::int64_t>(lv.size()));
      pool_->parallelFor(
          lv.size(),
          [this, lv](std::size_t i) {
            for (EdgeId e : graph_.inEdges(lv[i])) processEdge(e);
          },
          /*grain=*/8);
    }
  } else {
    // Serial sweeps run on the flat edge plans: parasitics summaries and
    // per-edge tables are resolved once up front, not per candidate.
    dc_.warmFlat();
    if (!plansValid_) buildEdgePlans();
    if (traceEnabled()) {
      for (int li = 0; li < graph_.levelCount(); ++li) {
        TC_SPAN_F(span, "sta.level", "fwd_L%d", li);
        span.arg("width", static_cast<std::int64_t>(graph_.level(li).size()));
        sweepLevelBatched(li);
      }
    } else {
      for (int li = 0; li < graph_.levelCount(); ++li) sweepLevelBatched(li);
    }
  }
  flushNanEvents();
}

std::vector<PathStep> StaEngine::tracePath(VertexId endpoint, Mode mode,
                                           int trans) const {
  std::vector<PathStep> rev;
  const int mi = static_cast<int>(mode);
  VertexId v = endpoint;
  int tr = trans;
  int guard = 0;
  while (v >= 0 && guard++ < graph_.vertexCount() + 1) {
    const int s = graph_.slotOf(v);
    PathStep step;
    step.vertex = v;
    step.trans = tr;
    step.arrival = tw_.arr(mi, tr, s);
    step.viaEdge = tw_.parentEdge(mi, tr, s);
    step.edgeDelay = tw_.parentDelay(mi, tr, s);
    step.edgeVar = tw_.parentVar(mi, tr, s);
    rev.push_back(step);
    if (step.viaEdge < 0) break;
    const TimingGraph::Edge& ed = graph_.edge(step.viaEdge);
    const int nextTr = tw_.parentTrans(mi, tr, s);
    v = ed.from;
    tr = nextTr;
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

Ps StaEngine::cpprCredit(VertexId dataEndpoint, int dataTrans,
                         VertexId captureCk, Check check) const {
  if (!sc_->derate.cppr) return 0.0;
  const Mode dataMode = check == Check::kSetup ? Mode::kLate : Mode::kEarly;
  const Mode capMode = check == Check::kSetup ? Mode::kEarly : Mode::kLate;

  const auto dataPath = tracePath(dataEndpoint, dataMode, dataTrans);
  // Capture clock: rising edge at CK.
  const auto capPath = tracePath(captureCk, capMode, 0);
  if (dataPath.empty() || capPath.empty()) return 0.0;

  // Walk the common clock-network prefix. Both paths start at the clock
  // port if the data path launches from a flop.
  double credit = 0.0;
  double commonVar = 0.0;
  const std::size_t n = std::min(dataPath.size(), capPath.size());
  for (std::size_t i = 1; i < n; ++i) {
    if (dataPath[i].viaEdge != capPath[i].viaEdge ||
        dataPath[i].trans != capPath[i].trans)
      break;
    const VertexId v = dataPath[i].vertex;
    if (!graph_.vertex(v).onClockNetwork) break;
    const int s = graph_.slotOf(v);
    const int tr = dataPath[i].trans;
    const double late = tw_.parentDelay(0, tr, s);
    const double early = tw_.parentDelay(1, tr, s);
    // Credit only when both modes traversed this same edge.
    if (tw_.parentEdge(0, tr, s) == dataPath[i].viaEdge &&
        tw_.parentEdge(1, tr, s) == dataPath[i].viaEdge) {
      credit += std::max(late - early, 0.0);
      commonVar +=
          std::max(tw_.parentVar(0, tr, s), tw_.parentVar(1, tr, s));
    }
  }
  const auto& d = sc_->derate;
  if (d.mode == DerateMode::kPocv || d.mode == DerateMode::kLvf)
    credit += 2.0 * d.sigmaCount * std::sqrt(commonVar);
  return credit;
}

bool StaEngine::evalEndpoint(VertexId v, EndpointTiming* out,
                             bool* droppedNonFinite) const {
  *droppedNonFinite = false;
  const Ps period = nl_->clocks().empty() ? 1e9 : clockPeriod();
  const TimingGraph::Vertex& vx = graph_.vertex(v);
  EndpointTiming ep;
  ep.vertex = v;

  if (vx.kind == TimingGraph::VertexKind::kPort) {
    // Output port constrained against the clock period.
    const double late = arrivalKey(v, Mode::kLate);
    if (late == kNoTime) return false;
    if (!std::isfinite(late)) {
      *droppedNonFinite = true;
      return false;
    }
    ep.dataLate = late;
    ep.setupSlack = period - sc_->clockUncertaintySetup -
                    sc_->extraSetupMargin - late;
    ep.setupTrans = key(v, Mode::kLate, 0) >= key(v, Mode::kLate, 1) ? 0 : 1;
    ep.holdSlack = kInf;
    *out = ep;
    return true;
  }

  const InstId flop = vx.inst;
  ep.flop = flop;
  const VertexId ckV = graph_.inputVertex(flop, 1);
  const Cell& cell = dc_.cellOf(flop);
  if (!cell.flop) return false;

  const double dLateR = key(v, Mode::kLate, 0);
  const double dLateF = key(v, Mode::kLate, 1);
  if (dLateR == kNoTime && dLateF == kNoTime) return false;
  ep.setupTrans = dLateR >= dLateF ? 0 : 1;
  ep.dataLate = std::max(dLateR, dLateF);
  const double dEarlyR = key(v, Mode::kEarly, 0);
  const double dEarlyF = key(v, Mode::kEarly, 1);
  ep.holdTrans = dEarlyR <= dEarlyF ? 0 : 1;
  ep.dataEarly = std::min(dEarlyR, dEarlyF);

  ep.captureEarly = key(ckV, Mode::kEarly, 0);
  ep.captureLate = key(ckV, Mode::kLate, 0);
  if (ep.captureEarly == kInf || ep.captureLate == kNoTime) return false;

  ep.setupConstraint = dc_.setupTime(flop);
  ep.holdConstraint = dc_.holdTime(flop);

  ep.cpprSetup = cpprCredit(v, ep.setupTrans, ckV, Check::kSetup);
  ep.cpprHold = cpprCredit(v, ep.holdTrans, ckV, Check::kHold);

  ep.setupSlack = period + ep.captureEarly - ep.setupConstraint -
                  sc_->clockUncertaintySetup - sc_->extraSetupMargin -
                  ep.dataLate + ep.cpprSetup;
  ep.holdSlack = ep.dataEarly - ep.captureLate - ep.holdConstraint -
                 sc_->clockUncertaintyHold - sc_->extraHoldMargin +
                 ep.cpprHold;
  // One untimeable endpoint (NaN slack from degenerate inputs the
  // quarantine upstream could not absorb) is dropped with a diagnostic
  // instead of corrupting WNS/TNS for the whole design.
  if (std::isnan(ep.setupSlack) || std::isnan(ep.holdSlack)) {
    *droppedNonFinite = true;
    return false;
  }
  *out = ep;
  return true;
}

void StaEngine::checkEndpoints() {
  // Full pass: (re)build the persistent per-endpoint slots, then evaluate
  // every endpoint. Endpoints are independent: evaluate into the slots
  // (CPPR path tracing is the expensive part), then compact and report
  // drops in the graph's endpoint order, so parallel and serial runs agree
  // exactly. Incremental updates later refresh a subset of these slots.
  const auto& eps = graph_.endpoints();
  epSlots_.assign(eps.size(), EndpointTiming{});
  epOk_.assign(eps.size(), 0);
  epDropped_.assign(eps.size(), 0);
  epIndexOfVertex_.assign(static_cast<std::size_t>(graph_.vertexCount()), -1);
  for (std::size_t i = 0; i < eps.size(); ++i)
    epIndexOfVertex_[static_cast<std::size_t>(eps[i])] =
        static_cast<int>(i);

  std::vector<std::size_t> all(eps.size());
  for (std::size_t i = 0; i < eps.size(); ++i) all[i] = i;
  reevaluateEndpoints(all);
}

void StaEngine::reevaluateEndpoints(const std::vector<std::size_t>& idxs) {
  const auto& eps = graph_.endpoints();
  TraceSpan epSpan("sta", "check_endpoints");
  epSpan.arg("endpoints", static_cast<std::int64_t>(idxs.size()));
  auto evalOne = [&](std::size_t k) {
    const std::size_t i = idxs[k];
    bool drop = false;
    epOk_[i] = evalEndpoint(eps[i], &epSlots_[i], &drop) ? 1 : 0;
    epDropped_[i] = drop ? 1 : 0;
  };
  if (pool_ && pool_->threadCount() > 0)
    pool_->parallelFor(idxs.size(), evalOne, /*grain=*/4);
  else
    for (std::size_t k = 0; k < idxs.size(); ++k) evalOne(k);

  // Drop diagnostics for the evaluated subset, in endpoint-index order
  // (idxs is always ascending), so the stream stays byte-stable.
  for (const std::size_t i : idxs) {
    if (!epDropped_[i] || !diagSink_) continue;
    const TimingGraph::Vertex& vx = graph_.vertex(eps[i]);
    if (vx.kind == TimingGraph::VertexKind::kPort)
      diagSink_->warn(DiagCode::kLintNanQuarantined,
                      "output-port endpoint dropped: non-finite arrival",
                      nl_->port(vx.port).name);
    else
      diagSink_->warn(
          DiagCode::kLintNanQuarantined, "endpoint dropped: non-finite slack",
          vx.inst >= 0 ? nl_->instance(vx.inst).name : std::string());
  }

  // The drop count and the compacted list are re-derived from the slots so
  // repeated (incremental) evaluation never double-counts an endpoint.
  epDropNan_ = 0;
  endpoints_.clear();
  for (std::size_t i = 0; i < eps.size(); ++i) {
    if (epDropped_[i]) ++epDropNan_;
    if (epOk_[i]) endpoints_.push_back(epSlots_[i]);
  }
}

void StaEngine::checkDrv() {
  TC_SPAN("sta", "check_drv");
  drvs_.clear();
  for (NetId n = 0; n < nl_->netCount(); ++n) {
    const Net& net = nl_->net(n);
    VertexId drv = -1;
    if (net.driver >= 0)
      drv = graph_.outputVertex(net.driver);
    else if (net.driverPort >= 0)
      drv = graph_.portVertex(net.driverPort);
    if (drv < 0) continue;
    const Ps slew = slewAt(drv, Mode::kLate);
    const Ff cap = dc_.parasitics(n).totalCap;
    if (slew > sc_->limits.maxTransition)
      drvs_.push_back({n, slew, cap, true});
    if (cap > sc_->limits.maxCapacitance)
      drvs_.push_back({n, slew, cap, false});
  }
}

std::array<double, 2> StaEngine::endpointReqSeed(VertexId v) const {
  // The allowed arrival time at an endpoint is transition-independent;
  // reconstruct it from the worst transition's mean arrival + slack. Both
  // the full and the incremental backward pass seed through here, so their
  // arithmetic (hence their results) is identical.
  std::array<double, 2> r = {kInf, kInf};
  const int idx = epIndexOfVertex_[static_cast<std::size_t>(v)];
  if (idx < 0 || !epOk_[static_cast<std::size_t>(idx)]) return r;
  const EndpointTiming& ep = epSlots_[static_cast<std::size_t>(idx)];
  if (ep.setupSlack == kInf) return r;
  const int s = graph_.slotOf(v);
  const int wt = ep.setupTrans;
  if (tw_.arr(0, wt, s) == kNoTime) return r;
  const double reqTime = tw_.arr(0, wt, s) + ep.setupSlack;
  r[0] = r[1] = reqTime;
  return r;
}

void StaEngine::computeRequired() {
  // Full backward required-time propagation over every edge, resolved per
  // transition (mean-arrival domain; exact for flat/no-derate scenarios,
  // optimizer guidance otherwise).
  TC_SPAN("sta", "compute_required");
  tw_.resetRequired(kInf);
  for (const VertexId v : graph_.endpoints()) {
    const auto seed = endpointReqSeed(v);
    const int s = graph_.slotOf(v);
    tw_.req(0, s) = seed[0];
    tw_.req(1, s) = seed[1];
  }

  if (pool_ && pool_->threadCount() > 0) {
    // Reverse level order: every out-edge of a level-L vertex lands on a
    // level > L, already final when level L's pulls run.
    for (int li = graph_.levelCount(); li-- > 0;) {
      const VertexSpan lv = graph_.level(li);
      TC_SPAN_F(span, "sta.level", "bwd_L%d", li);
      span.arg("width", static_cast<std::int64_t>(lv.size()));
      pool_->parallelFor(
          lv.size(),
          [this, lv](std::size_t i) { pullRequired(lv[i]); },
          /*grain=*/8);
    }
  } else {
    // Descending level order refines reverse topo order the same way the
    // forward sweep's ascending order refines topo order: out-edges land
    // on strictly higher levels, already final when this level pulls.
    // Serial pulls ride the flat plans built by the forward sweep; the
    // guard covers the (defensive) case of a backward pass without them.
    const bool flat = plansValid_ && dc_.flatValid();
    std::size_t cur = 0;  // bwdPlans_ streams in this exact pull order
    if (traceEnabled()) {
      for (int li = graph_.levelCount(); li-- > 0;) {
        const VertexSpan lv = graph_.level(li);
        TC_SPAN_F(span, "sta.level", "bwd_L%d", li);
        span.arg("width", static_cast<std::int64_t>(lv.size()));
        for (VertexId v : lv) {
          if (flat)
            cur = pullRequiredFlat(v, cur);
          else
            pullRequired(v);
        }
      }
    } else {
      for (int li = graph_.levelCount(); li-- > 0;)
        for (VertexId v : graph_.level(li)) {
          if (flat)
            cur = pullRequiredFlat(v, cur);
          else
            pullRequired(v);
        }
    }
  }
}

void StaEngine::pullRequired(VertexId u) {
  const auto& d = sc_->derate;
  const double lateF = d.mode == DerateMode::kFlatOcv ? d.flatLate : 1.0;
  const int su = graph_.slotOf(u);
  for (EdgeId e : graph_.outEdges(u)) {
    const TimingGraph::Edge& ed = graph_.edge(e);
    const int sv = graph_.slotOf(ed.to);
    const double reqV0 = tw_.req(0, sv);
    const double reqV1 = tw_.req(1, sv);
    if (reqV0 == kInf && reqV1 == kInf) continue;
    switch (ed.kind) {
      case TimingGraph::EdgeKind::kNetArc: {
        Ps skew = 0.0;
        const TimingGraph::Vertex& tv = graph_.vertex(ed.to);
        if (tv.kind == TimingGraph::VertexKind::kCellInput && tv.pin == 1 &&
            nl_->isSequential(tv.inst))
          skew = nl_->instance(tv.inst).usefulSkew;
        for (int tr = 0; tr < 2; ++tr) {
          const double reqV = tr == 0 ? reqV0 : reqV1;
          if (reqV == kInf || tw_.arr(0, tr, su) == kNoTime) continue;
          const auto w = dc_.wire(ed.net, ed.sinkIndex, tw_.slew(0, tr, su));
          tw_.req(tr, su) =
              std::min(tw_.req(tr, su), reqV - w.delay * lateF - skew);
        }
        break;
      }
      case TimingGraph::EdgeKind::kCellArc: {
        const InstId inst = graph_.vertex(u).inst;
        const Cell& cell = dc_.cellOf(inst);
        const TimingArc& arc =
            cell.arcs[static_cast<std::size_t>(ed.arcIndex)];
        for (int trIn = 0; trIn < 2; ++trIn) {
          if (tw_.arr(0, trIn, su) == kNoTime) continue;
          int outLo = 0, outHi = 1;
          if (arc.unate == Unateness::kNegative) outLo = outHi = 1 - trIn;
          if (arc.unate == Unateness::kPositive) outLo = outHi = trIn;
          for (int trOut = outLo; trOut <= outHi; ++trOut) {
            const double reqV = trOut == 0 ? reqV0 : reqV1;
            if (reqV == kInf) continue;
            auto r = dc_.cellArc(inst, ed.arcIndex, trOut == 0,
                                 tw_.slew(0, trIn, su));
            if (!misLate_.empty())
              r.delay *= misLate_[static_cast<std::size_t>(inst)]
                                 [static_cast<std::size_t>(trOut)];
            tw_.req(trIn, su) =
                std::min(tw_.req(trIn, su), reqV - r.delay * lateF);
          }
        }
        break;
      }
      case TimingGraph::EdgeKind::kClockToQ: {
        const InstId flop = graph_.vertex(u).inst;
        if (tw_.arr(0, 0, su) == kNoTime) break;
        for (int trQ = 0; trQ < 2; ++trQ) {
          const double reqV = trQ == 0 ? reqV0 : reqV1;
          if (reqV == kInf) continue;
          const auto r = dc_.clockToQ(flop, trQ == 0, tw_.slew(0, 0, su));
          tw_.req(0, su) = std::min(tw_.req(0, su), reqV - r.delay * lateF);
        }
        break;
      }
    }
  }
}

std::size_t StaEngine::pullRequiredFlat(VertexId u, std::size_t cursor) {
  // pullRequired() over the flat edge plans, streamed in the pull's own
  // iteration order. Same candidates in the same order with the same
  // arithmetic — the load words and Elmore delays are the identical
  // doubles the scalar dc_ calls derive — but each candidate evaluates
  // only the one delay table the pull consumes, where cellArc()/
  // clockToQ() also run the slew (and LVF sigma) lookups for results the
  // backward pass discards.
  const auto& d = sc_->derate;
  const double lateF = d.mode == DerateMode::kFlatOcv ? d.flatLate : 1.0;
  const int su = graph_.slotOf(u);
  const std::size_t n = graph_.outEdges(u).size();
  for (std::size_t k = 0; k < n; ++k) {
    const BwdPlan& pl = bwdPlans_[cursor++];
    const int sv = pl.toSlot;
    const double reqV0 = tw_.req(0, sv);
    const double reqV1 = tw_.req(1, sv);
    if (reqV0 == kInf && reqV1 == kInf) continue;
    switch (pl.kind) {
      case TimingGraph::EdgeKind::kNetArc: {
        for (int tr = 0; tr < 2; ++tr) {
          const double reqV = tr == 0 ? reqV0 : reqV1;
          if (reqV == kInf || tw_.arr(0, tr, su) == kNoTime) continue;
          tw_.req(tr, su) = std::min(
              tw_.req(tr, su), reqV - pl.u.wire.delay * lateF - pl.u.wire.skew);
        }
        break;
      }
      case TimingGraph::EdgeKind::kCellArc: {
        for (int trIn = 0; trIn < 2; ++trIn) {
          if (tw_.arr(0, trIn, su) == kNoTime) continue;
          int outLo = 0, outHi = 1;
          if (pl.unate == 2) outLo = outHi = 1 - trIn;
          if (pl.unate == 1) outLo = outHi = trIn;
          const Ps slewIn = tw_.slew(0, trIn, su);
          const Ff load = pl.hasNet ? loadOf(pl.u.load, slewIn) : 2.0;
          for (int trOut = outLo; trOut <= outHi; ++trOut) {
            const double reqV = trOut == 0 ? reqV0 : reqV1;
            if (reqV == kInf) continue;
            double delay = pl.surf[trOut]->delay.lookup(slewIn, load);
            if (!misLate_.empty())
              delay *= misLate_[static_cast<std::size_t>(pl.inst)]
                               [static_cast<std::size_t>(trOut)];
            tw_.req(trIn, su) =
                std::min(tw_.req(trIn, su), reqV - delay * lateF);
          }
        }
        break;
      }
      case TimingGraph::EdgeKind::kClockToQ: {
        if (tw_.arr(0, 0, su) == kNoTime) break;
        const Ps slewIn = tw_.slew(0, 0, su);
        const Ff load = pl.hasNet ? loadOf(pl.u.load, slewIn) : 2.0;
        for (int trQ = 0; trQ < 2; ++trQ) {
          const double reqV = trQ == 0 ? reqV0 : reqV1;
          if (reqV == kInf) continue;
          const double delay = pl.surf[trQ]->delay.lookup(slewIn, load);
          tw_.req(0, su) = std::min(tw_.req(0, su), reqV - delay * lateF);
        }
        break;
      }
    }
  }
  return cursor;
}

Ps StaEngine::vertexSlack(VertexId v) const {
  const int s = graph_.slotOf(v);
  double slack = kInf;
  for (int tr = 0; tr < 2; ++tr) {
    if (tw_.req(tr, s) == kInf || tw_.arr(0, tr, s) == kNoTime) continue;
    slack = std::min(slack, tw_.req(tr, s) - tw_.arr(0, tr, s));
  }
  return slack;
}

void StaEngine::setMisFactors(std::vector<std::array<double, 2>> late,
                              std::vector<std::array<double, 2>> early) {
  misLate_ = std::move(late);
  misEarly_ = std::move(early);
  valuesDirty_ = true;  // every combinational arc delay changed
}

void StaEngine::clearMisFactors() {
  misLate_.clear();
  misEarly_.clear();
  valuesDirty_ = true;
}

StaEngine::RecomputeResult StaEngine::recomputeVertex(VertexId v) {
  // Sources (no in-edges) keep their initSources() values; quarantined
  // pins keep their borrowed arrivals the same way.
  if (graph_.inEdges(v).empty()) return {};
  const int s = graph_.slotOf(v);
  const VertexTiming before = tw_.gather(s);
  tw_.resetSlot(s, kNoTime);
  for (EdgeId e : graph_.inEdges(v)) processEdge(e);
  // Bitwise convergence: a from-scratch retime relaxes this vertex over
  // the same in-edge order with the same inputs, so "unchanged" here means
  // "indistinguishable from a full run" — the exactness contract the
  // equivalence property test enforces. VertexTiming is all 8-byte-aligned
  // scalar arrays (no padding), so memcmp compares exactly the fields.
  const VertexTiming after = tw_.gather(s);
  RecomputeResult res;
  res.changed = std::memcmp(&before, &after, sizeof(VertexTiming)) != 0;
  if (res.changed) {
    res.pathChanged =
        std::memcmp(before.parentEdge, after.parentEdge,
                    sizeof(before.parentEdge)) != 0 ||
        std::memcmp(before.parentTrans, after.parentTrans,
                    sizeof(before.parentTrans)) != 0;
  }
  return res;
}

bool StaEngine::recomputeRequired(VertexId u) {
  const int s = graph_.slotOf(u);
  const double before[2] = {tw_.req(0, s), tw_.req(1, s)};
  const auto seed = endpointReqSeed(u);
  tw_.req(0, s) = seed[0];
  tw_.req(1, s) = seed[1];
  pullRequired(u);
  const double after[2] = {tw_.req(0, s), tw_.req(1, s)};
  return std::memcmp(before, after, sizeof(before)) != 0;
}

void StaEngine::invalidateNet(NetId net) {
  if (net < 0) return;
  if (net >= nl_->netCount()) return;
  plansValid_ = false;  // the net's flat wire/load words are stale
  dirtyNets_.push_back(net);
  const Net& n = nl_->net(net);
  if (n.driver >= 0) {
    if (n.driver >= graph_.instanceSpan()) {
      structureDirty_ = true;  // net rewired onto a post-snapshot instance
      return;
    }
    // The driver's arc delays changed (new load): re-relax its output
    // forward, and re-pull the driving instance's inputs backward (their
    // out cell-arcs read the same load).
    const VertexId v = graph_.outputVertex(n.driver);
    if (v >= 0) {
      dirtyVerts_.push_back(v);
      dirtyBack_.push_back(v);
    }
    const Instance& drv = nl_->instance(n.driver);
    for (int pin = 0; pin < static_cast<int>(drv.fanin.size()); ++pin) {
      const VertexId iv = graph_.inputVertex(n.driver, pin);
      if (iv >= 0) dirtyBack_.push_back(iv);
    }
  } else if (n.driverPort >= 0) {
    // Port-driven: the port vertex is a source (nothing to re-relax) but
    // its net arcs changed, so its required times must be re-pulled.
    const VertexId v = graph_.portVertex(n.driverPort);
    if (v >= 0) dirtyBack_.push_back(v);
  }
  // Sink arrivals shift with the new wire delay.
  for (const auto& snk : n.sinks) {
    const VertexId v = graph_.inputVertex(snk.inst, snk.pin);
    if (v >= 0)
      dirtyVerts_.push_back(v);
    else if (snk.inst >= graph_.instanceSpan())
      structureDirty_ = true;
  }
}

void StaEngine::invalidatePin(InstId inst, int pin) {
  const VertexId v = graph_.inputVertex(inst, pin);
  if (v >= 0) {
    dirtyVerts_.push_back(v);
    dirtyBack_.push_back(v);
  } else if (inst >= graph_.instanceSpan()) {
    structureDirty_ = true;
  }
}

void StaEngine::invalidateInstance(InstId inst) {
  if (inst < 0) return;
  plansValid_ = false;  // its arcs' surface/unateness pointers are stale
  if (inst >= graph_.instanceSpan()) {
    structureDirty_ = true;
    return;
  }
  const Instance& i = nl_->instance(inst);
  // Pin caps changed every fanin net's parasitics; the fanout net's driver
  // arcs changed surface. invalidateNet covers both directions.
  for (const NetId n : i.fanin)
    if (n >= 0) invalidateNet(n);
  if (i.fanout >= 0) invalidateNet(i.fanout);
  // A swapped flop also changes its setup/hold constraint tables, which an
  // arrival-convergence test cannot see: force the endpoint through
  // re-evaluation even if no arrival in its cone moves.
  if (nl_->isSequential(inst)) {
    const VertexId d = graph_.inputVertex(inst, 0);
    if (d >= 0) {
      forcedEndpointVerts_.push_back(d);
      dirtyBack_.push_back(d);
    }
  }
}

void StaEngine::invalidateStructure() {
  structureDirty_ = true;
  plansValid_ = false;  // edge ids are reassigned by the graph rebuild
}

bool StaEngine::hasPendingInvalidation() const {
  return structureDirty_ || valuesDirty_ || !dirtyNets_.empty() ||
         !dirtyVerts_.empty() || !dirtyBack_.empty() ||
         !forcedEndpointVerts_.empty();
}

void StaEngine::clearInvalidation() {
  structureDirty_ = false;
  valuesDirty_ = false;
  dirtyNets_.clear();
  dirtyVerts_.clear();
  dirtyBack_.clear();
  forcedEndpointVerts_.clear();
}

void StaEngine::onCellSwapped(InstId inst) { invalidateInstance(inst); }

void StaEngine::onPlacementChanged(InstId inst) { invalidateInstance(inst); }

void StaEngine::onNetAttrChanged(NetId net) { invalidateNet(net); }

void StaEngine::onSkewChanged(InstId flop) {
  plansValid_ = false;  // the CK net arc's plan bakes the useful skew in
  if (flop >= graph_.instanceSpan()) {
    structureDirty_ = true;
    return;
  }
  // The skew lands on the net arc into the flop's CK pin: re-relax the CK
  // vertex forward, and re-pull the clock node driving it (its backward
  // pull reads the skew directly). No parasitics changed.
  const VertexId ck = graph_.inputVertex(flop, 1);
  if (ck >= 0) {
    dirtyVerts_.push_back(ck);
    dirtyBack_.push_back(ck);
  }
  const auto& fanin = nl_->instance(flop).fanin;
  const NetId ckNet = fanin.size() > 1 ? fanin[1] : -1;
  if (ckNet >= 0) {
    const Net& n = nl_->net(ckNet);
    VertexId drv = -1;
    if (n.driver >= 0)
      drv = graph_.outputVertex(n.driver);
    else if (n.driverPort >= 0)
      drv = graph_.portVertex(n.driverPort);
    if (drv >= 0) dirtyBack_.push_back(drv);
  }
}

void StaEngine::onStructureChanged() { invalidateStructure(); }

StaEngine::UpdateStats StaEngine::updateTiming() {
  UpdateStats st;
  const bool pooled = pool_ && pool_->threadCount() > 0;

  if (!hasRun_ || structureDirty_ || valuesDirty_) {
    traceInstant("sta.incremental", "retime_full");
    // First run, a structural edit (levelization stale), or a global value
    // change (MIS factors): full retime. The graph is rebuilt against the
    // current netlist; the delay calculator is reused with its cache fully
    // invalidated (it holds references into the netlist, so reassignment
    // is neither possible nor needed).
    st.full = true;
    if (hasRun_ && structureDirty_) {
      graph_ = TimingGraph(*nl_);
      dc_.invalidateAll();
      plansValid_ = false;
    }
    run();
    st.forwardRecomputed = graph_.vertexCount();
    st.requiredRecomputed = graph_.vertexCount();
    st.endpointsReevaluated = static_cast<int>(graph_.endpoints().size());
    lastUpdate_ = st;
    return st;
  }
  if (!hasPendingInvalidation()) {
    lastUpdate_ = st;
    return st;
  }

  static Counter& incrCtr =
      MetricsRegistry::global().counter("sta.retime.incremental", "count");
  incrCtr.add();
  TraceSpan updSpan("sta.incremental", "update_timing");

  // Stale parasitics out before any recompute; when pooled, refill them
  // now so the parallel sweeps below stay pure reads.
  for (const NetId n : dirtyNets_) dc_.invalidateNet(n);
  if (pooled) dc_.warmCache(pool_);

  const int nv = graph_.vertexCount();
  const auto nLevels = static_cast<std::size_t>(graph_.levelCount());

  // --- forward: level-bucketed re-relaxation with bitwise early exit --------
  // Out-edges always land on strictly higher levels, so processing buckets
  // in ascending level order is a refinement of the full sweep: a vertex
  // is recomputed only after every dirty predecessor settled. Buckets are
  // sorted so the schedule is independent of seed discovery order.
  std::vector<std::uint8_t> queued(static_cast<std::size_t>(nv), 0);
  std::vector<std::vector<VertexId>> buckets(nLevels);
  auto enqueue = [&](VertexId v) {
    if (v < 0 || queued[static_cast<std::size_t>(v)]) return;
    queued[static_cast<std::size_t>(v)] = 1;
    buckets[static_cast<std::size_t>(graph_.levelOf(v))].push_back(v);
  };
  for (const VertexId v : dirtyVerts_) enqueue(v);

  bool pathChanged = false;
  bool clockChanged = false;
  std::vector<VertexId> changedList;
  std::vector<RecomputeResult> results;
  for (auto& bucket : buckets) {
    if (bucket.empty()) continue;
    std::sort(bucket.begin(), bucket.end());
    // Retract this bucket's stale NaN rejections before re-relaxing: the
    // recompute re-discovers whichever are still real.
    for (const VertexId v : bucket) {
      const auto idx = static_cast<std::size_t>(v);
      propNan_ -= static_cast<int>(nanKinds_[idx].size());
      nanKinds_[idx].clear();
    }
    results.assign(bucket.size(), RecomputeResult{});
    auto work = [&](std::size_t i) { results[i] = recomputeVertex(bucket[i]); };
    if (pooled)
      pool_->parallelFor(bucket.size(), work, /*grain=*/4);
    else
      for (std::size_t i = 0; i < bucket.size(); ++i) work(i);
    st.forwardRecomputed += static_cast<int>(bucket.size());
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (!results[i].changed) continue;
      const VertexId v = bucket[i];
      changedList.push_back(v);
      if (results[i].pathChanged) pathChanged = true;
      if (graph_.vertex(v).onClockNetwork) clockChanged = true;
      for (const EdgeId e : graph_.outEdges(v)) enqueue(graph_.edge(e).to);
    }
  }
  flushNanEvents();

  // --- endpoint checks -------------------------------------------------------
  // A slot is stale when its slack inputs could have moved: its D or CK
  // vertex changed, a forced re-check was requested (constraint tables
  // changed under a flop swap), or — because CPPR reads the clock network
  // and the traced path identity — any clock vertex changed or any worst
  // path switched parents. The latter two re-check everything: path
  // switches under bitwise-tied arrivals are rare, and correctness beats
  // the saved subset.
  const auto& eps = graph_.endpoints();
  std::vector<std::size_t> reeval;
  if (pathChanged || clockChanged) {
    reeval.resize(eps.size());
    for (std::size_t i = 0; i < eps.size(); ++i) reeval[i] = i;
  } else {
    std::vector<std::uint8_t> mark(eps.size(), 0);
    auto markEp = [&](VertexId v) {
      if (v < 0) return;
      const int idx = epIndexOfVertex_[static_cast<std::size_t>(v)];
      if (idx >= 0) mark[static_cast<std::size_t>(idx)] = 1;
    };
    for (const VertexId v : changedList) {
      markEp(v);  // D pins and constrained output ports are endpoint keys
      const TimingGraph::Vertex& vx = graph_.vertex(v);
      if (vx.kind == TimingGraph::VertexKind::kCellInput && vx.pin == 1 &&
          nl_->isSequential(vx.inst))
        markEp(graph_.inputVertex(vx.inst, 0));  // CK moved -> D endpoint
    }
    for (const VertexId v : forcedEndpointVerts_) markEp(v);
    for (std::size_t i = 0; i < eps.size(); ++i)
      if (mark[i]) reeval.push_back(i);
  }
  st.endpointsReevaluated = static_cast<int>(reeval.size());
  if (!reeval.empty()) reevaluateEndpoints(reeval);

  // DRV checks are a cheap linear scan over nets with cached parasitics;
  // rerun them whole so the violation list stays byte-stable.
  checkDrv();

  // --- backward: incremental required times ---------------------------------
  // Seeds: every forward-changed vertex (its arrivals/slews feed edge
  // delays both ways), the extra backward seeds recorded at invalidation
  // time (vertices whose *out*-edge delays changed without their own state
  // moving), and every re-evaluated endpoint (its seed derives from the
  // slot's slack). In-edges come from strictly lower levels, so buckets
  // run in descending level order and a changed pull re-queues only
  // predecessors.
  std::vector<std::uint8_t> queuedBack(static_cast<std::size_t>(nv), 0);
  std::vector<std::vector<VertexId>> backBuckets(nLevels);
  auto enqueueBack = [&](VertexId v) {
    if (v < 0 || queuedBack[static_cast<std::size_t>(v)]) return;
    queuedBack[static_cast<std::size_t>(v)] = 1;
    backBuckets[static_cast<std::size_t>(graph_.levelOf(v))].push_back(v);
  };
  for (const VertexId v : changedList) enqueueBack(v);
  for (const VertexId v : dirtyBack_) enqueueBack(v);
  for (const std::size_t i : reeval) enqueueBack(eps[i]);

  std::vector<std::uint8_t> reqChanged;
  for (auto it = backBuckets.rbegin(); it != backBuckets.rend(); ++it) {
    auto& bucket = *it;
    if (bucket.empty()) continue;
    std::sort(bucket.begin(), bucket.end());
    reqChanged.assign(bucket.size(), 0);
    auto work = [&](std::size_t i) {
      reqChanged[i] = recomputeRequired(bucket[i]) ? 1 : 0;
    };
    if (pooled)
      pool_->parallelFor(bucket.size(), work, /*grain=*/4);
    else
      for (std::size_t i = 0; i < bucket.size(); ++i) work(i);
    st.requiredRecomputed += static_cast<int>(bucket.size());
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (!reqChanged[i]) continue;
      for (const EdgeId e : graph_.inEdges(bucket[i]))
        enqueueBack(graph_.edge(e).from);
    }
  }

  static Histogram& frontierHist = MetricsRegistry::global().histogram(
      "sta.incremental.frontier", "vertices");
  frontierHist.observe(static_cast<double>(st.forwardRecomputed));
  updSpan.arg("fwd", static_cast<std::int64_t>(st.forwardRecomputed));
  updSpan.arg("bwd", static_cast<std::int64_t>(st.requiredRecomputed));
  updSpan.arg("endpoints", static_cast<std::int64_t>(st.endpointsReevaluated));

  clearInvalidation();
  lastUpdate_ = st;
  return st;
}

void StaEngine::updateAfterEco(const std::vector<NetId>& dirtyNets) {
  for (const NetId n : dirtyNets) invalidateNet(n);
  updateTiming();
}

std::vector<NetId> StaEngine::netsAffectedBySwap(InstId inst) const {
  std::vector<NetId> nets;
  for (NetId n : nl_->instance(inst).fanin)
    if (n >= 0) nets.push_back(n);
  if (nl_->instance(inst).fanout >= 0)
    nets.push_back(nl_->instance(inst).fanout);
  return nets;
}

void StaEngine::run() {
  static Counter& fullCtr =
      MetricsRegistry::global().counter("sta.retime.full", "count");
  fullCtr.add();
  TC_SPAN("sta", "retime_full");
  // Reset quarantine accounting: a full retime re-derives every rejection.
  propNan_ = 0;
  epDropNan_ = 0;
  nanKinds_.assign(static_cast<std::size_t>(graph_.vertexCount()), {});
  initSources();
  propagate();
  checkEndpoints();
  checkDrv();
  computeRequired();
  hasRun_ = true;
  // A full pass absorbs every pending edit, however it was triggered.
  clearInvalidation();
}

void StaEngine::repropagate() {
  if (!hasRun_) {
    run();
    return;
  }
  TC_SPAN("sta", "repropagate");
  // Propagation-side quarantine accounting is re-derived by the sweep
  // (endpoint-side drops are untouched, as are the endpoints themselves).
  propNan_ = 0;
  nanKinds_.assign(static_cast<std::size_t>(graph_.vertexCount()), {});
  initSources();
  propagate();
  computeRequired();
}

Ps StaEngine::wns(Check check) const {
  double w = kInf;
  for (const auto& ep : endpoints_)
    w = std::min(w, check == Check::kSetup ? ep.setupSlack : ep.holdSlack);
  return w;
}

Ps StaEngine::tns(Check check) const {
  double t = 0.0;
  for (const auto& ep : endpoints_) {
    const double s = check == Check::kSetup ? ep.setupSlack : ep.holdSlack;
    if (s < 0.0 && s != -kInf) t += s;
  }
  return t;
}

int StaEngine::violationCount(Check check) const {
  int n = 0;
  for (const auto& ep : endpoints_)
    if ((check == Check::kSetup ? ep.setupSlack : ep.holdSlack) < 0.0) ++n;
  return n;
}

}  // namespace tc
