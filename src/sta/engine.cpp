#include "sta/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "util/metrics.h"
#include "util/trace.h"

namespace tc {

const char* toString(DerateMode mode) {
  switch (mode) {
    case DerateMode::kNone: return "none";
    case DerateMode::kFlatOcv: return "flat-OCV";
    case DerateMode::kAocv: return "AOCV";
    case DerateMode::kPocv: return "POCV";
    case DerateMode::kLvf: return "LVF";
  }
  return "?";
}

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

StaEngine::StaEngine(const Netlist& netlist, const Scenario& scenario)
    : nl_(&netlist), sc_(&scenario), graph_(netlist), dc_(netlist, scenario) {
  if (!scenario.lib)
    throw std::invalid_argument("Scenario has no library");
  // The netlist's reference library and the scenario library must agree on
  // cell identity (same builder => same ordering); verify a sample.
  if (scenario.lib->cellCount() != netlist.library().cellCount())
    throw std::invalid_argument("scenario library cell set mismatch");
  // Subscribe to in-place edits so transforms and ECOs mark the dirty
  // frontier without every call site knowing about this engine. The
  // netlist must outlive the engine (it already must: nl_ is a pointer).
  nl_->addListener(this);
}

StaEngine::~StaEngine() { nl_->removeListener(this); }

Ps StaEngine::clockPeriod() const {
  if (nl_->clocks().empty())
    throw std::logic_error("no clock defined");
  return nl_->clocks().front().period;
}

void StaEngine::initSources() {
  vt_.assign(static_cast<std::size_t>(graph_.vertexCount()), VertexTiming{});
  for (auto& t : vt_) {
    for (int m = 0; m < 2; ++m)
      for (int tr = 0; tr < 2; ++tr) {
        t.arr[m][tr] = kNoTime;
        t.slew[m][tr] = 0.0;
        t.var[m][tr] = 0.0;
        t.depth[m][tr] = 0;
        t.parentEdge[m][tr] = -1;
        t.parentTrans[m][tr] = 0;
        t.parentDelay[m][tr] = 0.0;
        t.parentVar[m][tr] = 0.0;
      }
  }

  // Clock roots.
  for (const auto& c : nl_->clocks()) {
    VertexTiming& t = vt_[static_cast<std::size_t>(graph_.portVertex(c.port))];
    for (int m = 0; m < 2; ++m)
      for (int tr = 0; tr < 2; ++tr) {
        t.arr[m][tr] = c.sourceLatency;
        t.slew[m][tr] = 20.0;
      }
  }
  // Data primary inputs.
  const Ps inputDelay =
      sc_->inputDelay > 0.0
          ? sc_->inputDelay
          : (nl_->clocks().empty() ? 0.0 : 0.25 * clockPeriod());
  for (PortId p = 0; p < nl_->portCount(); ++p) {
    if (sc_->disableDataInputs) break;
    if (!nl_->port(p).isInput) continue;
    if (nl_->port(p).constant) continue;  // case analysis: no transitions
    bool isClock = false;
    for (const auto& c : nl_->clocks())
      if (c.port == p) isClock = true;
    if (isClock) continue;
    VertexTiming& t = vt_[static_cast<std::size_t>(graph_.portVertex(p))];
    for (int m = 0; m < 2; ++m)
      for (int tr = 0; tr < 2; ++tr) {
        t.arr[m][tr] = inputDelay;
        t.slew[m][tr] = sc_->inputSlew;
      }
  }

  // Quarantined pins (lint-broken loops, contained dangling inputs) have
  // no incoming net arc; seed them with a pessimistic borrowed arrival —
  // late = a full clock period, early = 0 — so every path through them is
  // timed at least as badly as any real arrival could make it. This is
  // the bounded-pessimism half of the quarantine contract: degraded WNS
  // can only be <= clean WNS.
  const Ps borrowedLate = nl_->clocks().empty() ? inputDelay : clockPeriod();
  for (const auto& qp : nl_->quarantinedPins()) {
    const VertexId v = graph_.inputVertex(qp.inst, qp.pin);
    if (v < 0) continue;
    VertexTiming& t = vt_[static_cast<std::size_t>(v)];
    for (int tr = 0; tr < 2; ++tr) {
      t.arr[0][tr] = borrowedLate;  // late
      t.arr[1][tr] = 0.0;           // early
      t.slew[0][tr] = t.slew[1][tr] = sc_->inputSlew;
    }
  }
}

double StaEngine::key(VertexId v, Mode m, int trans) const {
  const VertexTiming& t = vt_[static_cast<std::size_t>(v)];
  const int mi = static_cast<int>(m);
  const double arr = t.arr[mi][trans];
  if (arr == kNoTime) return m == Mode::kLate ? kNoTime : kInf;
  const auto& d = sc_->derate;
  switch (d.mode) {
    case DerateMode::kNone:
    case DerateMode::kFlatOcv:
      return arr;  // flat factors folded into edge delays
    case DerateMode::kAocv: {
      const auto& aocv = sc_->lib->aocv();
      const int depth = std::max(t.depth[mi][trans], 1);
      return m == Mode::kLate ? arr * aocv.late(depth)
                              : arr * aocv.early(depth);
    }
    case DerateMode::kPocv:
    case DerateMode::kLvf: {
      const double sigma = std::sqrt(std::max(t.var[mi][trans], 0.0));
      return m == Mode::kLate ? arr + d.sigmaCount * sigma
                              : arr - d.sigmaCount * sigma;
    }
  }
  return arr;
}

Ps StaEngine::arrivalKey(VertexId v, Mode m, int trans) const {
  return key(v, m, trans);
}

Ps StaEngine::arrivalKey(VertexId v, Mode m) const {
  const double r = key(v, m, 0);
  const double f = key(v, m, 1);
  if (m == Mode::kLate) return std::max(r, f);
  // early: ignore unreached (kNoTime maps to +inf in key()); take min.
  return std::min(r, f);
}

Ps StaEngine::slewAt(VertexId v, Mode m) const {
  const VertexTiming& t = vt_[static_cast<std::size_t>(v)];
  const int mi = static_cast<int>(m);
  return std::max(t.slew[mi][0], t.slew[mi][1]);
}

void StaEngine::relax(VertexId to, Mode m, int trans, double arr,
                      double slewIn, double var, int depth, EdgeId via,
                      int fromTrans, double edgeDelay, double edgeVar) {
  // NaN/Inf quarantine: a degenerate delay-calc result (bad parasitics,
  // corrupt table) must not poison the forward cone. Reject the candidate
  // locally; the vertex keeps its previous (or unreached) state and every
  // other path through it still times normally. Events are buffered, not
  // reported inline, so a parallel sweep produces the same diagnostics as
  // a serial one (flushNanEvents orders them by topo position).
  if (!std::isfinite(arr) || !std::isfinite(slewIn) || !std::isfinite(var)) {
    std::lock_guard<std::mutex> lock(nanMu_);
    nanEvents_.push_back(
        {to, static_cast<std::uint8_t>(!std::isfinite(arr) ? 1 : 0)});
    return;
  }
  VertexTiming& t = vt_[static_cast<std::size_t>(to)];
  const int mi = static_cast<int>(m);
  const auto& d = sc_->derate;

  // Selection key for the candidate.
  double candKey = arr;
  double curKey = t.arr[mi][trans];
  if (d.mode == DerateMode::kPocv || d.mode == DerateMode::kLvf) {
    const double s = d.sigmaCount;
    candKey = m == Mode::kLate ? arr + s * std::sqrt(std::max(var, 0.0))
                               : arr - s * std::sqrt(std::max(var, 0.0));
    if (curKey != kNoTime) {
      const double cs = std::sqrt(std::max(t.var[mi][trans], 0.0));
      curKey = m == Mode::kLate ? t.arr[mi][trans] + s * cs
                                : t.arr[mi][trans] - s * cs;
    }
  }

  const bool better =
      curKey == kNoTime ||
      (m == Mode::kLate ? candKey > curKey : candKey < curKey);
  if (better) {
    t.arr[mi][trans] = arr;
    t.var[mi][trans] = var;
    t.depth[mi][trans] = depth;
    t.parentEdge[mi][trans] = via;
    t.parentTrans[mi][trans] = fromTrans;
    t.parentDelay[mi][trans] = edgeDelay;
    t.parentVar[mi][trans] = edgeVar;
  }
  // Worst-slew merging, independent of arrival selection (classic GBA
  // pessimism that PBA later recovers).
  if (t.slew[mi][trans] <= 0.0) {
    t.slew[mi][trans] = slewIn;
  } else if (m == Mode::kLate) {
    t.slew[mi][trans] = std::max(t.slew[mi][trans], slewIn);
  } else {
    t.slew[mi][trans] = std::min(t.slew[mi][trans], slewIn);
  }
}

void StaEngine::processEdge(EdgeId e) {
  const TimingGraph::Edge& ed = graph_.edge(e);
  const VertexTiming& ft = vt_[static_cast<std::size_t>(ed.from)];
  // Relax every producible (mode, trIn, trOut) candidate. The iteration
  // order matches the pre-refactor per-kind loops exactly, and the
  // arithmetic lives in edgeCandidate(), shared with the PBA enumerator's
  // pruning bounds. (Adding a zero skew / zero variance term is bitwise
  // neutral here: arrivals and variances are non-negative.)
  for (int m = 0; m < 2; ++m) {
    for (int trIn = 0; trIn < 2; ++trIn) {
      for (int trOut = 0; trOut < 2; ++trOut) {
        const EdgeCand c =
            edgeCandidate(e, static_cast<Mode>(m), trIn, trOut);
        if (!c.valid) continue;
        relax(ed.to, static_cast<Mode>(m), trOut,
              ft.arr[m][trIn] + c.delay + c.skew, c.outSlew,
              ft.var[m][trIn] + c.var, ft.depth[m][trIn] + c.depthInc, e,
              trIn, c.delay, c.var);
      }
    }
  }
}

namespace {
constexpr int kMaxNanReports = 20;
}  // namespace

void StaEngine::emitNanWarn(DiagnosticSink& sink, VertexId vertex,
                            bool badArrival, std::size_t index,
                            std::size_t total) const {
  if (static_cast<int>(index) >= kMaxNanReports) return;
  const TimingGraph::Vertex& vx = graph_.vertex(vertex);
  const std::string entity = vx.kind == TimingGraph::VertexKind::kPort
                                 ? nl_->port(vx.port).name
                                 : nl_->instance(vx.inst).name;
  sink.warn(DiagCode::kLintNanQuarantined,
            std::string("non-finite ") +
                (badArrival ? "arrival" : "slew/variance") +
                " rejected during propagation" +
                (static_cast<int>(index) == kMaxNanReports - 1 &&
                         total > static_cast<std::size_t>(kMaxNanReports)
                     ? " (further reports suppressed)"
                     : ""),
            entity);
}

void StaEngine::flushNanEvents() {
  if (!nanEvents_.empty()) {
    static Counter& nanCtr =
        MetricsRegistry::global().counter("sta.nan_quarantined", "count");
    nanCtr.add(nanEvents_.size());
  }
  // Stable-sort by topo position: within one vertex the discovery order is
  // the vertex task's own deterministic in-edge order, and across vertices
  // the topo position is thread-independent — so serial and parallel runs
  // emit identical diagnostics.
  std::stable_sort(nanEvents_.begin(), nanEvents_.end(),
                   [this](const NanEvent& a, const NanEvent& b) {
                     return graph_.topoPosition(a.vertex) <
                            graph_.topoPosition(b.vertex);
                   });
  for (std::size_t i = 0; i < nanEvents_.size(); ++i) {
    ++propNan_;
    nanKinds_[static_cast<std::size_t>(nanEvents_[i].vertex)].push_back(
        nanEvents_[i].badArrival ? 1 : 0);
    if (diagSink_)
      emitNanWarn(*diagSink_, nanEvents_[i].vertex,
                  nanEvents_[i].badArrival != 0, i, nanEvents_.size());
  }
  nanEvents_.clear();
}

void StaEngine::replayTimingDiagnostics(DiagnosticSink& sink) const {
  // Propagation rejections, globally ordered by topo position. Each
  // vertex's stored kinds are already in its deterministic discovery
  // order, so walking vertices by topo position reproduces the fresh
  // run's stable sort (including the reporting cap, which depends on the
  // global event index).
  std::vector<VertexId> withEvents;
  for (VertexId v = 0; v < graph_.vertexCount(); ++v)
    if (!nanKinds_[static_cast<std::size_t>(v)].empty())
      withEvents.push_back(v);
  std::sort(withEvents.begin(), withEvents.end(),
            [this](VertexId a, VertexId b) {
              return graph_.topoPosition(a) < graph_.topoPosition(b);
            });
  const std::size_t total = static_cast<std::size_t>(propNan_);
  std::size_t index = 0;
  for (const VertexId v : withEvents)
    for (const std::uint8_t badArrival : nanKinds_[static_cast<std::size_t>(v)])
      emitNanWarn(sink, v, badArrival != 0, index++, total);

  // Endpoint drops, in endpoint-index order — the order checkEndpoints
  // reports them on a full pass.
  const auto& eps = graph_.endpoints();
  for (std::size_t i = 0; i < eps.size(); ++i) {
    if (!epDropped_[i]) continue;
    const TimingGraph::Vertex& vx = graph_.vertex(eps[i]);
    if (vx.kind == TimingGraph::VertexKind::kPort)
      sink.warn(DiagCode::kLintNanQuarantined,
                "output-port endpoint dropped: non-finite arrival",
                nl_->port(vx.port).name);
    else
      sink.warn(
          DiagCode::kLintNanQuarantined, "endpoint dropped: non-finite slack",
          vx.inst >= 0 ? nl_->instance(vx.inst).name : std::string());
  }
}

void StaEngine::propagate() {
  // Pull model: each vertex relaxes over its own in-edges. Serially this
  // visits edges in exactly the order the per-level parallel sweep does
  // per vertex, which is what makes serial and parallel bit-identical.
  TC_SPAN("sta", "propagate");
  if (pool_ && pool_->threadCount() > 0) {
    // All delay-calc lookups must be pure reads before tasks share them.
    dc_.warmCache(pool_);
    const auto& levels = graph_.levels();
    for (std::size_t li = 0; li < levels.size(); ++li) {
      const auto& level = levels[li];
      TC_SPAN_F(span, "sta.level", "fwd_L%zu", li);
      span.arg("width", static_cast<std::int64_t>(level.size()));
      pool_->parallelFor(
          level.size(),
          [this, &level](std::size_t i) {
            for (EdgeId e : graph_.inEdges(level[i])) processEdge(e);
          },
          /*grain=*/8);
    }
  } else if (traceEnabled()) {
    // Per-level spans need level boundaries; ascending level order is a
    // refinement of topoOrder() for the pull model (every in-edge comes
    // from a strictly lower level, and per-vertex in-edge order is what
    // fixes the arithmetic), so this sweep is bit-identical to the topo
    // sweep below.
    const auto& levels = graph_.levels();
    for (std::size_t li = 0; li < levels.size(); ++li) {
      const auto& level = levels[li];
      TC_SPAN_F(span, "sta.level", "fwd_L%zu", li);
      span.arg("width", static_cast<std::int64_t>(level.size()));
      for (VertexId v : level)
        for (EdgeId e : graph_.inEdges(v)) processEdge(e);
    }
  } else {
    for (VertexId v : graph_.topoOrder())
      for (EdgeId e : graph_.inEdges(v)) processEdge(e);
  }
  flushNanEvents();
}

std::vector<PathStep> StaEngine::tracePath(VertexId endpoint, Mode mode,
                                           int trans) const {
  std::vector<PathStep> rev;
  const int mi = static_cast<int>(mode);
  VertexId v = endpoint;
  int tr = trans;
  int guard = 0;
  while (v >= 0 && guard++ < graph_.vertexCount() + 1) {
    const VertexTiming& t = vt_[static_cast<std::size_t>(v)];
    PathStep step;
    step.vertex = v;
    step.trans = tr;
    step.arrival = t.arr[mi][tr];
    step.viaEdge = t.parentEdge[mi][tr];
    step.edgeDelay = t.parentDelay[mi][tr];
    step.edgeVar = t.parentVar[mi][tr];
    rev.push_back(step);
    if (step.viaEdge < 0) break;
    const TimingGraph::Edge& ed = graph_.edge(step.viaEdge);
    const int nextTr = t.parentTrans[mi][tr];
    v = ed.from;
    tr = nextTr;
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

Ps StaEngine::cpprCredit(VertexId dataEndpoint, int dataTrans,
                         VertexId captureCk, Check check) const {
  if (!sc_->derate.cppr) return 0.0;
  const Mode dataMode = check == Check::kSetup ? Mode::kLate : Mode::kEarly;
  const Mode capMode = check == Check::kSetup ? Mode::kEarly : Mode::kLate;

  const auto dataPath = tracePath(dataEndpoint, dataMode, dataTrans);
  // Capture clock: rising edge at CK.
  const auto capPath = tracePath(captureCk, capMode, 0);
  if (dataPath.empty() || capPath.empty()) return 0.0;

  // Walk the common clock-network prefix. Both paths start at the clock
  // port if the data path launches from a flop.
  double credit = 0.0;
  double commonVar = 0.0;
  const std::size_t n = std::min(dataPath.size(), capPath.size());
  for (std::size_t i = 1; i < n; ++i) {
    if (dataPath[i].viaEdge != capPath[i].viaEdge ||
        dataPath[i].trans != capPath[i].trans)
      break;
    const VertexId v = dataPath[i].vertex;
    if (!graph_.vertex(v).onClockNetwork) break;
    const VertexTiming& t = vt_[static_cast<std::size_t>(v)];
    const int tr = dataPath[i].trans;
    const double late = t.parentDelay[0][tr];
    const double early = t.parentDelay[1][tr];
    // Credit only when both modes traversed this same edge.
    if (t.parentEdge[0][tr] == dataPath[i].viaEdge &&
        t.parentEdge[1][tr] == dataPath[i].viaEdge) {
      credit += std::max(late - early, 0.0);
      commonVar += std::max(t.parentVar[0][tr], t.parentVar[1][tr]);
    }
  }
  const auto& d = sc_->derate;
  if (d.mode == DerateMode::kPocv || d.mode == DerateMode::kLvf)
    credit += 2.0 * d.sigmaCount * std::sqrt(commonVar);
  return credit;
}

bool StaEngine::evalEndpoint(VertexId v, EndpointTiming* out,
                             bool* droppedNonFinite) const {
  *droppedNonFinite = false;
  const Ps period = nl_->clocks().empty() ? 1e9 : clockPeriod();
  const TimingGraph::Vertex& vx = graph_.vertex(v);
  EndpointTiming ep;
  ep.vertex = v;

  if (vx.kind == TimingGraph::VertexKind::kPort) {
    // Output port constrained against the clock period.
    const double late = arrivalKey(v, Mode::kLate);
    if (late == kNoTime) return false;
    if (!std::isfinite(late)) {
      *droppedNonFinite = true;
      return false;
    }
    ep.dataLate = late;
    ep.setupSlack = period - sc_->clockUncertaintySetup -
                    sc_->extraSetupMargin - late;
    ep.setupTrans = key(v, Mode::kLate, 0) >= key(v, Mode::kLate, 1) ? 0 : 1;
    ep.holdSlack = kInf;
    *out = ep;
    return true;
  }

  const InstId flop = vx.inst;
  ep.flop = flop;
  const VertexId ckV = graph_.inputVertex(flop, 1);
  const Cell& cell = dc_.cellOf(flop);
  if (!cell.flop) return false;

  const double dLateR = key(v, Mode::kLate, 0);
  const double dLateF = key(v, Mode::kLate, 1);
  if (dLateR == kNoTime && dLateF == kNoTime) return false;
  ep.setupTrans = dLateR >= dLateF ? 0 : 1;
  ep.dataLate = std::max(dLateR, dLateF);
  const double dEarlyR = key(v, Mode::kEarly, 0);
  const double dEarlyF = key(v, Mode::kEarly, 1);
  ep.holdTrans = dEarlyR <= dEarlyF ? 0 : 1;
  ep.dataEarly = std::min(dEarlyR, dEarlyF);

  ep.captureEarly = key(ckV, Mode::kEarly, 0);
  ep.captureLate = key(ckV, Mode::kLate, 0);
  if (ep.captureEarly == kInf || ep.captureLate == kNoTime) return false;

  ep.setupConstraint = dc_.setupTime(flop);
  ep.holdConstraint = dc_.holdTime(flop);

  ep.cpprSetup = cpprCredit(v, ep.setupTrans, ckV, Check::kSetup);
  ep.cpprHold = cpprCredit(v, ep.holdTrans, ckV, Check::kHold);

  ep.setupSlack = period + ep.captureEarly - ep.setupConstraint -
                  sc_->clockUncertaintySetup - sc_->extraSetupMargin -
                  ep.dataLate + ep.cpprSetup;
  ep.holdSlack = ep.dataEarly - ep.captureLate - ep.holdConstraint -
                 sc_->clockUncertaintyHold - sc_->extraHoldMargin +
                 ep.cpprHold;
  // One untimeable endpoint (NaN slack from degenerate inputs the
  // quarantine upstream could not absorb) is dropped with a diagnostic
  // instead of corrupting WNS/TNS for the whole design.
  if (std::isnan(ep.setupSlack) || std::isnan(ep.holdSlack)) {
    *droppedNonFinite = true;
    return false;
  }
  *out = ep;
  return true;
}

void StaEngine::checkEndpoints() {
  // Full pass: (re)build the persistent per-endpoint slots, then evaluate
  // every endpoint. Endpoints are independent: evaluate into the slots
  // (CPPR path tracing is the expensive part), then compact and report
  // drops in the graph's endpoint order, so parallel and serial runs agree
  // exactly. Incremental updates later refresh a subset of these slots.
  const auto& eps = graph_.endpoints();
  epSlots_.assign(eps.size(), EndpointTiming{});
  epOk_.assign(eps.size(), 0);
  epDropped_.assign(eps.size(), 0);
  epIndexOfVertex_.assign(static_cast<std::size_t>(graph_.vertexCount()), -1);
  for (std::size_t i = 0; i < eps.size(); ++i)
    epIndexOfVertex_[static_cast<std::size_t>(eps[i])] =
        static_cast<int>(i);

  std::vector<std::size_t> all(eps.size());
  for (std::size_t i = 0; i < eps.size(); ++i) all[i] = i;
  reevaluateEndpoints(all);
}

void StaEngine::reevaluateEndpoints(const std::vector<std::size_t>& idxs) {
  const auto& eps = graph_.endpoints();
  TraceSpan epSpan("sta", "check_endpoints");
  epSpan.arg("endpoints", static_cast<std::int64_t>(idxs.size()));
  auto evalOne = [&](std::size_t k) {
    const std::size_t i = idxs[k];
    bool drop = false;
    epOk_[i] = evalEndpoint(eps[i], &epSlots_[i], &drop) ? 1 : 0;
    epDropped_[i] = drop ? 1 : 0;
  };
  if (pool_ && pool_->threadCount() > 0)
    pool_->parallelFor(idxs.size(), evalOne, /*grain=*/4);
  else
    for (std::size_t k = 0; k < idxs.size(); ++k) evalOne(k);

  // Drop diagnostics for the evaluated subset, in endpoint-index order
  // (idxs is always ascending), so the stream stays byte-stable.
  for (const std::size_t i : idxs) {
    if (!epDropped_[i] || !diagSink_) continue;
    const TimingGraph::Vertex& vx = graph_.vertex(eps[i]);
    if (vx.kind == TimingGraph::VertexKind::kPort)
      diagSink_->warn(DiagCode::kLintNanQuarantined,
                      "output-port endpoint dropped: non-finite arrival",
                      nl_->port(vx.port).name);
    else
      diagSink_->warn(
          DiagCode::kLintNanQuarantined, "endpoint dropped: non-finite slack",
          vx.inst >= 0 ? nl_->instance(vx.inst).name : std::string());
  }

  // The drop count and the compacted list are re-derived from the slots so
  // repeated (incremental) evaluation never double-counts an endpoint.
  epDropNan_ = 0;
  endpoints_.clear();
  for (std::size_t i = 0; i < eps.size(); ++i) {
    if (epDropped_[i]) ++epDropNan_;
    if (epOk_[i]) endpoints_.push_back(epSlots_[i]);
  }
}

void StaEngine::checkDrv() {
  TC_SPAN("sta", "check_drv");
  drvs_.clear();
  for (NetId n = 0; n < nl_->netCount(); ++n) {
    const Net& net = nl_->net(n);
    VertexId drv = -1;
    if (net.driver >= 0)
      drv = graph_.outputVertex(net.driver);
    else if (net.driverPort >= 0)
      drv = graph_.portVertex(net.driverPort);
    if (drv < 0) continue;
    const Ps slew = slewAt(drv, Mode::kLate);
    const Ff cap = dc_.parasitics(n).totalCap;
    if (slew > sc_->limits.maxTransition)
      drvs_.push_back({n, slew, cap, true});
    if (cap > sc_->limits.maxCapacitance)
      drvs_.push_back({n, slew, cap, false});
  }
}

std::array<double, 2> StaEngine::endpointReqSeed(VertexId v) const {
  // The allowed arrival time at an endpoint is transition-independent;
  // reconstruct it from the worst transition's mean arrival + slack. Both
  // the full and the incremental backward pass seed through here, so their
  // arithmetic (hence their results) is identical.
  std::array<double, 2> r = {kInf, kInf};
  const int idx = epIndexOfVertex_[static_cast<std::size_t>(v)];
  if (idx < 0 || !epOk_[static_cast<std::size_t>(idx)]) return r;
  const EndpointTiming& ep = epSlots_[static_cast<std::size_t>(idx)];
  if (ep.setupSlack == kInf) return r;
  const VertexTiming& t = vt_[static_cast<std::size_t>(v)];
  const int wt = ep.setupTrans;
  if (t.arr[0][wt] == kNoTime) return r;
  const double reqTime = t.arr[0][wt] + ep.setupSlack;
  r[0] = r[1] = reqTime;
  return r;
}

void StaEngine::computeRequired() {
  // Full backward required-time propagation over every edge, resolved per
  // transition (mean-arrival domain; exact for flat/no-derate scenarios,
  // optimizer guidance otherwise).
  TC_SPAN("sta", "compute_required");
  requiredLate_.assign(static_cast<std::size_t>(graph_.vertexCount()),
                       {kInf, kInf});
  for (const VertexId v : graph_.endpoints())
    requiredLate_[static_cast<std::size_t>(v)] = endpointReqSeed(v);

  if (pool_ && pool_->threadCount() > 0) {
    // Reverse level order: every out-edge of a level-L vertex lands on a
    // level > L, already final when level L's pulls run.
    const auto& levels = graph_.levels();
    for (std::size_t li = levels.size(); li-- > 0;) {
      const auto& level = levels[li];
      TC_SPAN_F(span, "sta.level", "bwd_L%zu", li);
      span.arg("width", static_cast<std::int64_t>(level.size()));
      pool_->parallelFor(
          level.size(),
          [this, &level](std::size_t i) { pullRequired(level[i]); },
          /*grain=*/8);
    }
  } else if (traceEnabled()) {
    // Descending level order refines reverse topo order the same way the
    // forward sweep's ascending order refines topo order: out-edges land
    // on strictly higher levels, already final when this level pulls.
    const auto& levels = graph_.levels();
    for (std::size_t li = levels.size(); li-- > 0;) {
      const auto& level = levels[li];
      TC_SPAN_F(span, "sta.level", "bwd_L%zu", li);
      span.arg("width", static_cast<std::int64_t>(level.size()));
      for (VertexId v : level) pullRequired(v);
    }
  } else {
    const auto& topo = graph_.topoOrder();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) pullRequired(*it);
  }
}

void StaEngine::pullRequired(VertexId u) {
  const auto& d = sc_->derate;
  const double lateF = d.mode == DerateMode::kFlatOcv ? d.flatLate : 1.0;
  const VertexTiming& ft = vt_[static_cast<std::size_t>(u)];
  auto& reqU = requiredLate_[static_cast<std::size_t>(u)];
  for (EdgeId e : graph_.outEdges(u)) {
    const TimingGraph::Edge& ed = graph_.edge(e);
    const auto& reqV = requiredLate_[static_cast<std::size_t>(ed.to)];
    if (reqV[0] == kInf && reqV[1] == kInf) continue;
    switch (ed.kind) {
      case TimingGraph::EdgeKind::kNetArc: {
        Ps skew = 0.0;
        const TimingGraph::Vertex& tv = graph_.vertex(ed.to);
        if (tv.kind == TimingGraph::VertexKind::kCellInput && tv.pin == 1 &&
            nl_->isSequential(tv.inst))
          skew = nl_->instance(tv.inst).usefulSkew;
        for (int tr = 0; tr < 2; ++tr) {
          if (reqV[tr] == kInf || ft.arr[0][tr] == kNoTime) continue;
          const auto w = dc_.wire(ed.net, ed.sinkIndex, ft.slew[0][tr]);
          reqU[tr] = std::min(reqU[tr], reqV[tr] - w.delay * lateF - skew);
        }
        break;
      }
      case TimingGraph::EdgeKind::kCellArc: {
        const InstId inst = graph_.vertex(u).inst;
        const Cell& cell = dc_.cellOf(inst);
        const TimingArc& arc =
            cell.arcs[static_cast<std::size_t>(ed.arcIndex)];
        for (int trIn = 0; trIn < 2; ++trIn) {
          if (ft.arr[0][trIn] == kNoTime) continue;
          int outLo = 0, outHi = 1;
          if (arc.unate == Unateness::kNegative) outLo = outHi = 1 - trIn;
          if (arc.unate == Unateness::kPositive) outLo = outHi = trIn;
          for (int trOut = outLo; trOut <= outHi; ++trOut) {
            if (reqV[trOut] == kInf) continue;
            auto r = dc_.cellArc(inst, ed.arcIndex, trOut == 0,
                                 ft.slew[0][trIn]);
            if (!misLate_.empty())
              r.delay *= misLate_[static_cast<std::size_t>(inst)]
                                 [static_cast<std::size_t>(trOut)];
            reqU[trIn] =
                std::min(reqU[trIn], reqV[trOut] - r.delay * lateF);
          }
        }
        break;
      }
      case TimingGraph::EdgeKind::kClockToQ: {
        const InstId flop = graph_.vertex(u).inst;
        if (ft.arr[0][0] == kNoTime) break;
        for (int trQ = 0; trQ < 2; ++trQ) {
          if (reqV[trQ] == kInf) continue;
          const auto r = dc_.clockToQ(flop, trQ == 0, ft.slew[0][0]);
          reqU[0] = std::min(reqU[0], reqV[trQ] - r.delay * lateF);
        }
        break;
      }
    }
  }
}

Ps StaEngine::vertexSlack(VertexId v) const {
  const auto& req = requiredLate_[static_cast<std::size_t>(v)];
  const VertexTiming& t = vt_[static_cast<std::size_t>(v)];
  double slack = kInf;
  for (int tr = 0; tr < 2; ++tr) {
    if (req[tr] == kInf || t.arr[0][tr] == kNoTime) continue;
    slack = std::min(slack, req[tr] - t.arr[0][tr]);
  }
  return slack;
}

void StaEngine::setMisFactors(std::vector<std::array<double, 2>> late,
                              std::vector<std::array<double, 2>> early) {
  misLate_ = std::move(late);
  misEarly_ = std::move(early);
  valuesDirty_ = true;  // every combinational arc delay changed
}

void StaEngine::clearMisFactors() {
  misLate_.clear();
  misEarly_.clear();
  valuesDirty_ = true;
}

StaEngine::RecomputeResult StaEngine::recomputeVertex(VertexId v) {
  // Sources (no in-edges) keep their initSources() values; quarantined
  // pins keep their borrowed arrivals the same way.
  if (graph_.inEdges(v).empty()) return {};
  const VertexTiming before = vt_[static_cast<std::size_t>(v)];
  VertexTiming& t = vt_[static_cast<std::size_t>(v)];
  for (int m = 0; m < 2; ++m)
    for (int tr = 0; tr < 2; ++tr) {
      t.arr[m][tr] = kNoTime;
      t.slew[m][tr] = 0.0;
      t.var[m][tr] = 0.0;
      t.depth[m][tr] = 0;
      t.parentEdge[m][tr] = -1;
      t.parentTrans[m][tr] = 0;
      t.parentDelay[m][tr] = 0.0;
      t.parentVar[m][tr] = 0.0;
    }
  for (EdgeId e : graph_.inEdges(v)) processEdge(e);
  // Bitwise convergence: a from-scratch retime relaxes this vertex over
  // the same in-edge order with the same inputs, so "unchanged" here means
  // "indistinguishable from a full run" — the exactness contract the
  // equivalence property test enforces. VertexTiming is all 8-byte-aligned
  // scalar arrays (no padding), so memcmp compares exactly the fields.
  RecomputeResult res;
  res.changed = std::memcmp(&before, &t, sizeof(VertexTiming)) != 0;
  if (res.changed) {
    res.pathChanged =
        std::memcmp(before.parentEdge, t.parentEdge,
                    sizeof(before.parentEdge)) != 0 ||
        std::memcmp(before.parentTrans, t.parentTrans,
                    sizeof(before.parentTrans)) != 0;
  }
  return res;
}

bool StaEngine::recomputeRequired(VertexId u) {
  auto& r = requiredLate_[static_cast<std::size_t>(u)];
  const std::array<double, 2> before = r;
  r = endpointReqSeed(u);
  pullRequired(u);
  return std::memcmp(&before, &r, sizeof(before)) != 0;
}

void StaEngine::invalidateNet(NetId net) {
  if (net < 0) return;
  if (net >= nl_->netCount()) return;
  dirtyNets_.push_back(net);
  const Net& n = nl_->net(net);
  if (n.driver >= 0) {
    if (n.driver >= graph_.instanceSpan()) {
      structureDirty_ = true;  // net rewired onto a post-snapshot instance
      return;
    }
    // The driver's arc delays changed (new load): re-relax its output
    // forward, and re-pull the driving instance's inputs backward (their
    // out cell-arcs read the same load).
    const VertexId v = graph_.outputVertex(n.driver);
    if (v >= 0) {
      dirtyVerts_.push_back(v);
      dirtyBack_.push_back(v);
    }
    const Instance& drv = nl_->instance(n.driver);
    for (int pin = 0; pin < static_cast<int>(drv.fanin.size()); ++pin) {
      const VertexId iv = graph_.inputVertex(n.driver, pin);
      if (iv >= 0) dirtyBack_.push_back(iv);
    }
  } else if (n.driverPort >= 0) {
    // Port-driven: the port vertex is a source (nothing to re-relax) but
    // its net arcs changed, so its required times must be re-pulled.
    const VertexId v = graph_.portVertex(n.driverPort);
    if (v >= 0) dirtyBack_.push_back(v);
  }
  // Sink arrivals shift with the new wire delay.
  for (const auto& snk : n.sinks) {
    const VertexId v = graph_.inputVertex(snk.inst, snk.pin);
    if (v >= 0)
      dirtyVerts_.push_back(v);
    else if (snk.inst >= graph_.instanceSpan())
      structureDirty_ = true;
  }
}

void StaEngine::invalidatePin(InstId inst, int pin) {
  const VertexId v = graph_.inputVertex(inst, pin);
  if (v >= 0) {
    dirtyVerts_.push_back(v);
    dirtyBack_.push_back(v);
  } else if (inst >= graph_.instanceSpan()) {
    structureDirty_ = true;
  }
}

void StaEngine::invalidateInstance(InstId inst) {
  if (inst < 0) return;
  if (inst >= graph_.instanceSpan()) {
    structureDirty_ = true;
    return;
  }
  const Instance& i = nl_->instance(inst);
  // Pin caps changed every fanin net's parasitics; the fanout net's driver
  // arcs changed surface. invalidateNet covers both directions.
  for (const NetId n : i.fanin)
    if (n >= 0) invalidateNet(n);
  if (i.fanout >= 0) invalidateNet(i.fanout);
  // A swapped flop also changes its setup/hold constraint tables, which an
  // arrival-convergence test cannot see: force the endpoint through
  // re-evaluation even if no arrival in its cone moves.
  if (nl_->isSequential(inst)) {
    const VertexId d = graph_.inputVertex(inst, 0);
    if (d >= 0) {
      forcedEndpointVerts_.push_back(d);
      dirtyBack_.push_back(d);
    }
  }
}

void StaEngine::invalidateStructure() { structureDirty_ = true; }

bool StaEngine::hasPendingInvalidation() const {
  return structureDirty_ || valuesDirty_ || !dirtyNets_.empty() ||
         !dirtyVerts_.empty() || !dirtyBack_.empty() ||
         !forcedEndpointVerts_.empty();
}

void StaEngine::clearInvalidation() {
  structureDirty_ = false;
  valuesDirty_ = false;
  dirtyNets_.clear();
  dirtyVerts_.clear();
  dirtyBack_.clear();
  forcedEndpointVerts_.clear();
}

void StaEngine::onCellSwapped(InstId inst) { invalidateInstance(inst); }

void StaEngine::onPlacementChanged(InstId inst) { invalidateInstance(inst); }

void StaEngine::onNetAttrChanged(NetId net) { invalidateNet(net); }

void StaEngine::onSkewChanged(InstId flop) {
  if (flop >= graph_.instanceSpan()) {
    structureDirty_ = true;
    return;
  }
  // The skew lands on the net arc into the flop's CK pin: re-relax the CK
  // vertex forward, and re-pull the clock node driving it (its backward
  // pull reads the skew directly). No parasitics changed.
  const VertexId ck = graph_.inputVertex(flop, 1);
  if (ck >= 0) {
    dirtyVerts_.push_back(ck);
    dirtyBack_.push_back(ck);
  }
  const auto& fanin = nl_->instance(flop).fanin;
  const NetId ckNet = fanin.size() > 1 ? fanin[1] : -1;
  if (ckNet >= 0) {
    const Net& n = nl_->net(ckNet);
    VertexId drv = -1;
    if (n.driver >= 0)
      drv = graph_.outputVertex(n.driver);
    else if (n.driverPort >= 0)
      drv = graph_.portVertex(n.driverPort);
    if (drv >= 0) dirtyBack_.push_back(drv);
  }
}

void StaEngine::onStructureChanged() { invalidateStructure(); }

StaEngine::UpdateStats StaEngine::updateTiming() {
  UpdateStats st;
  const bool pooled = pool_ && pool_->threadCount() > 0;

  if (!hasRun_ || structureDirty_ || valuesDirty_) {
    traceInstant("sta.incremental", "retime_full");
    // First run, a structural edit (levelization stale), or a global value
    // change (MIS factors): full retime. The graph is rebuilt against the
    // current netlist; the delay calculator is reused with its cache fully
    // invalidated (it holds references into the netlist, so reassignment
    // is neither possible nor needed).
    st.full = true;
    if (hasRun_ && structureDirty_) {
      graph_ = TimingGraph(*nl_);
      dc_.invalidateAll();
    }
    run();
    st.forwardRecomputed = graph_.vertexCount();
    st.requiredRecomputed = graph_.vertexCount();
    st.endpointsReevaluated = static_cast<int>(graph_.endpoints().size());
    lastUpdate_ = st;
    return st;
  }
  if (!hasPendingInvalidation()) {
    lastUpdate_ = st;
    return st;
  }

  static Counter& incrCtr =
      MetricsRegistry::global().counter("sta.retime.incremental", "count");
  incrCtr.add();
  TraceSpan updSpan("sta.incremental", "update_timing");

  // Stale parasitics out before any recompute; when pooled, refill them
  // now so the parallel sweeps below stay pure reads.
  for (const NetId n : dirtyNets_) dc_.invalidateNet(n);
  if (pooled) dc_.warmCache(pool_);

  const int nv = graph_.vertexCount();
  const auto& levels = graph_.levels();

  // --- forward: level-bucketed re-relaxation with bitwise early exit --------
  // Out-edges always land on strictly higher levels, so processing buckets
  // in ascending level order is a refinement of the full sweep: a vertex
  // is recomputed only after every dirty predecessor settled. Buckets are
  // sorted so the schedule is independent of seed discovery order.
  std::vector<std::uint8_t> queued(static_cast<std::size_t>(nv), 0);
  std::vector<std::vector<VertexId>> buckets(levels.size());
  auto enqueue = [&](VertexId v) {
    if (v < 0 || queued[static_cast<std::size_t>(v)]) return;
    queued[static_cast<std::size_t>(v)] = 1;
    buckets[static_cast<std::size_t>(graph_.levelOf(v))].push_back(v);
  };
  for (const VertexId v : dirtyVerts_) enqueue(v);

  bool pathChanged = false;
  bool clockChanged = false;
  std::vector<VertexId> changedList;
  std::vector<RecomputeResult> results;
  for (auto& bucket : buckets) {
    if (bucket.empty()) continue;
    std::sort(bucket.begin(), bucket.end());
    // Retract this bucket's stale NaN rejections before re-relaxing: the
    // recompute re-discovers whichever are still real.
    for (const VertexId v : bucket) {
      const auto idx = static_cast<std::size_t>(v);
      propNan_ -= static_cast<int>(nanKinds_[idx].size());
      nanKinds_[idx].clear();
    }
    results.assign(bucket.size(), RecomputeResult{});
    auto work = [&](std::size_t i) { results[i] = recomputeVertex(bucket[i]); };
    if (pooled)
      pool_->parallelFor(bucket.size(), work, /*grain=*/4);
    else
      for (std::size_t i = 0; i < bucket.size(); ++i) work(i);
    st.forwardRecomputed += static_cast<int>(bucket.size());
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (!results[i].changed) continue;
      const VertexId v = bucket[i];
      changedList.push_back(v);
      if (results[i].pathChanged) pathChanged = true;
      if (graph_.vertex(v).onClockNetwork) clockChanged = true;
      for (const EdgeId e : graph_.outEdges(v)) enqueue(graph_.edge(e).to);
    }
  }
  flushNanEvents();

  // --- endpoint checks -------------------------------------------------------
  // A slot is stale when its slack inputs could have moved: its D or CK
  // vertex changed, a forced re-check was requested (constraint tables
  // changed under a flop swap), or — because CPPR reads the clock network
  // and the traced path identity — any clock vertex changed or any worst
  // path switched parents. The latter two re-check everything: path
  // switches under bitwise-tied arrivals are rare, and correctness beats
  // the saved subset.
  const auto& eps = graph_.endpoints();
  std::vector<std::size_t> reeval;
  if (pathChanged || clockChanged) {
    reeval.resize(eps.size());
    for (std::size_t i = 0; i < eps.size(); ++i) reeval[i] = i;
  } else {
    std::vector<std::uint8_t> mark(eps.size(), 0);
    auto markEp = [&](VertexId v) {
      if (v < 0) return;
      const int idx = epIndexOfVertex_[static_cast<std::size_t>(v)];
      if (idx >= 0) mark[static_cast<std::size_t>(idx)] = 1;
    };
    for (const VertexId v : changedList) {
      markEp(v);  // D pins and constrained output ports are endpoint keys
      const TimingGraph::Vertex& vx = graph_.vertex(v);
      if (vx.kind == TimingGraph::VertexKind::kCellInput && vx.pin == 1 &&
          nl_->isSequential(vx.inst))
        markEp(graph_.inputVertex(vx.inst, 0));  // CK moved -> D endpoint
    }
    for (const VertexId v : forcedEndpointVerts_) markEp(v);
    for (std::size_t i = 0; i < eps.size(); ++i)
      if (mark[i]) reeval.push_back(i);
  }
  st.endpointsReevaluated = static_cast<int>(reeval.size());
  if (!reeval.empty()) reevaluateEndpoints(reeval);

  // DRV checks are a cheap linear scan over nets with cached parasitics;
  // rerun them whole so the violation list stays byte-stable.
  checkDrv();

  // --- backward: incremental required times ---------------------------------
  // Seeds: every forward-changed vertex (its arrivals/slews feed edge
  // delays both ways), the extra backward seeds recorded at invalidation
  // time (vertices whose *out*-edge delays changed without their own state
  // moving), and every re-evaluated endpoint (its seed derives from the
  // slot's slack). In-edges come from strictly lower levels, so buckets
  // run in descending level order and a changed pull re-queues only
  // predecessors.
  std::vector<std::uint8_t> queuedBack(static_cast<std::size_t>(nv), 0);
  std::vector<std::vector<VertexId>> backBuckets(levels.size());
  auto enqueueBack = [&](VertexId v) {
    if (v < 0 || queuedBack[static_cast<std::size_t>(v)]) return;
    queuedBack[static_cast<std::size_t>(v)] = 1;
    backBuckets[static_cast<std::size_t>(graph_.levelOf(v))].push_back(v);
  };
  for (const VertexId v : changedList) enqueueBack(v);
  for (const VertexId v : dirtyBack_) enqueueBack(v);
  for (const std::size_t i : reeval) enqueueBack(eps[i]);

  std::vector<std::uint8_t> reqChanged;
  for (auto it = backBuckets.rbegin(); it != backBuckets.rend(); ++it) {
    auto& bucket = *it;
    if (bucket.empty()) continue;
    std::sort(bucket.begin(), bucket.end());
    reqChanged.assign(bucket.size(), 0);
    auto work = [&](std::size_t i) {
      reqChanged[i] = recomputeRequired(bucket[i]) ? 1 : 0;
    };
    if (pooled)
      pool_->parallelFor(bucket.size(), work, /*grain=*/4);
    else
      for (std::size_t i = 0; i < bucket.size(); ++i) work(i);
    st.requiredRecomputed += static_cast<int>(bucket.size());
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (!reqChanged[i]) continue;
      for (const EdgeId e : graph_.inEdges(bucket[i]))
        enqueueBack(graph_.edge(e).from);
    }
  }

  static Histogram& frontierHist = MetricsRegistry::global().histogram(
      "sta.incremental.frontier", "vertices");
  frontierHist.observe(static_cast<double>(st.forwardRecomputed));
  updSpan.arg("fwd", static_cast<std::int64_t>(st.forwardRecomputed));
  updSpan.arg("bwd", static_cast<std::int64_t>(st.requiredRecomputed));
  updSpan.arg("endpoints", static_cast<std::int64_t>(st.endpointsReevaluated));

  clearInvalidation();
  lastUpdate_ = st;
  return st;
}

void StaEngine::updateAfterEco(const std::vector<NetId>& dirtyNets) {
  for (const NetId n : dirtyNets) invalidateNet(n);
  updateTiming();
}

std::vector<NetId> StaEngine::netsAffectedBySwap(InstId inst) const {
  std::vector<NetId> nets;
  for (NetId n : nl_->instance(inst).fanin)
    if (n >= 0) nets.push_back(n);
  if (nl_->instance(inst).fanout >= 0)
    nets.push_back(nl_->instance(inst).fanout);
  return nets;
}

void StaEngine::run() {
  static Counter& fullCtr =
      MetricsRegistry::global().counter("sta.retime.full", "count");
  fullCtr.add();
  TC_SPAN("sta", "retime_full");
  // Reset quarantine accounting: a full retime re-derives every rejection.
  propNan_ = 0;
  epDropNan_ = 0;
  nanKinds_.assign(static_cast<std::size_t>(graph_.vertexCount()), {});
  initSources();
  propagate();
  checkEndpoints();
  checkDrv();
  computeRequired();
  hasRun_ = true;
  // A full pass absorbs every pending edit, however it was triggered.
  clearInvalidation();
}

Ps StaEngine::wns(Check check) const {
  double w = kInf;
  for (const auto& ep : endpoints_)
    w = std::min(w, check == Check::kSetup ? ep.setupSlack : ep.holdSlack);
  return w;
}

Ps StaEngine::tns(Check check) const {
  double t = 0.0;
  for (const auto& ep : endpoints_) {
    const double s = check == Check::kSetup ? ep.setupSlack : ep.holdSlack;
    if (s < 0.0 && s != -kInf) t += s;
  }
  return t;
}

int StaEngine::violationCount(Check check) const {
  int n = 0;
  for (const auto& ep : endpoints_)
    if ((check == Check::kSetup ? ep.setupSlack : ep.holdSlack) < 0.0) ++n;
  return n;
}

}  // namespace tc
