#pragma once
/// \file scenario.h
/// \brief Analysis scenario: the (mode x corner x modeling-style) context a
/// single STA run executes under. The MCMM scenario manager of
/// signoff/corners.h enumerates many of these (Sec. 2.3's "corner
/// super-explosion"); the engine analyzes one at a time.

#include <memory>
#include <string>

#include "device/tech.h"
#include "interconnect/sadp.h"
#include "interconnect/wire.h"
#include "liberty/library.h"

namespace tc {

/// The variation-modeling ladder of Sec. 3.1.
enum class DerateMode {
  kNone,     ///< no OCV margin
  kFlatOcv,  ///< single flat late/early factors
  kAocv,     ///< depth-dependent derate tables
  kPocv,     ///< per-cell sigma, accumulated in quadrature
  kLvf,      ///< per-arc, per-(slew,load), separate early/late sigmas
};

const char* toString(DerateMode mode);

struct DerateSettings {
  DerateMode mode = DerateMode::kFlatOcv;
  double flatLate = 1.08;
  double flatEarly = 0.92;
  double sigmaCount = 3.0;  ///< k in mean +/- k*sigma for POCV/LVF
  bool cppr = true;         ///< common-path pessimism removal
};

/// Design-rule limits checked alongside timing (part of the Fig. 1 "failure
/// breakdown": maxtrans/maxcap fixes compete with timing fixes).
struct DesignRuleLimits {
  Ps maxTransition = 280.0;
  Ff maxCapacitance = 40.0;
};

struct Scenario {
  std::string name = "func_tt";
  std::shared_ptr<const Library> lib;  ///< characterized at this PVT
  BeolCorner beol = BeolCorner::kTypical;
  double tightenSigma = 3.0;  ///< TBC factor; 3.0 = conventional corner
  int techNm = 28;            ///< BEOL stack selector
  DerateSettings derate;
  DesignRuleLimits limits;
  Ps clockUncertaintySetup = 25.0;  ///< jitter + unmodeled margin, flat
  Ps clockUncertaintyHold = 5.0;
  Ps extraSetupMargin = 0.0;  ///< "typical + flat margin" signoff knob
  Ps extraHoldMargin = 0.0;
  /// Arrival at data primary inputs (a set_input_delay). When <= 0, the
  /// engine defaults to 25% of the clock period, which keeps PI-launched
  /// paths consistent with the clock-tree insertion delay (otherwise every
  /// PI->D path trivially fails hold against the capture-clock latency).
  Ps inputDelay = -1.0;
  /// Analysis-only switch: ignore data primary inputs entirely (no arrivals
  /// launched there). Used by ETM extraction to isolate the block's
  /// internal (register-launched) timing from its boundary conditions.
  bool disableDataInputs = false;
  Ps inputSlew = 40.0;
  const SadpModel* sadp = nullptr;  ///< cut-mask cap effects when set
  bool misAware = false;      ///< second-pass multi-input-switching refine

  Celsius temp() const { return lib->pvt().temp; }
  Volt vdd() const { return lib->pvt().vdd; }
};

}  // namespace tc
