#pragma once
/// \file arena.h
/// \brief Structure-of-arrays storage for per-vertex timing words.
///
/// The engine's hot loops (forward level sweep, backward required pull)
/// write one level's slots sequentially but *gather* source words at
/// scattered lower-level slots — one gather reads arr/slew/var/depth for
/// all four (mode, transition) channels of one slot. Fully per-channel
/// arrays made that gather touch up to sixteen distinct cache lines, so
/// the four gather-side fields are packed into one 128-byte per-slot
/// block (two lines, however many channels are live) while the fields
/// only the destination side touches (path parents, indexed by the
/// level-contiguous slot being written) stay per-channel. The two
/// required-time words share a 16-byte block per slot for the same
/// reason: the backward pull reads both transitions of a scattered
/// fanout slot at once.
///
/// The arena stores exactly the fields of VertexTiming plus the backward
/// required times; gather()/scatter() convert between the two layouts so
/// the engine's public API (timing(), the bitwise-convergence memcmp in the
/// incremental path) keeps operating on whole VertexTiming values. Layout
/// is the ONLY thing that changed: every value is produced by the same
/// arithmetic in the same order as the pre-refactor engine, which is what
/// the SoA-vs-AoS oracle in tests/soa_equivalence_test.cpp pins down.

#include <vector>

namespace tc {

struct VertexTiming;

/// One channel per (mode, transition) pair, addressed as ch = m*2 + tr.
class TimingArena {
 public:
  /// Resize to `slots` vertices and reset every word to the unreached
  /// state (arr = `noTime`, everything else zero / -1).
  void reset(int slots, double noTime);
  /// Reset a single slot to the unreached state (incremental recompute).
  void resetSlot(int slot, double noTime);

  int slots() const { return slots_; }

  // Per-word accessors (hot paths index the slot blocks directly).
  double& arr(int m, int tr, int s) { return hot_[static_cast<std::size_t>(s)].arr[ch(m, tr)]; }
  double arr(int m, int tr, int s) const { return hot_[static_cast<std::size_t>(s)].arr[ch(m, tr)]; }
  double& slew(int m, int tr, int s) { return hot_[static_cast<std::size_t>(s)].slew[ch(m, tr)]; }
  double slew(int m, int tr, int s) const { return hot_[static_cast<std::size_t>(s)].slew[ch(m, tr)]; }
  double& var(int m, int tr, int s) { return hot_[static_cast<std::size_t>(s)].var[ch(m, tr)]; }
  double var(int m, int tr, int s) const { return hot_[static_cast<std::size_t>(s)].var[ch(m, tr)]; }
  int& depth(int m, int tr, int s) { return hot_[static_cast<std::size_t>(s)].depth[ch(m, tr)]; }
  int depth(int m, int tr, int s) const { return hot_[static_cast<std::size_t>(s)].depth[ch(m, tr)]; }
  int& parentEdge(int m, int tr, int s) { return parentEdge_[ch(m, tr)][static_cast<std::size_t>(s)]; }
  int parentEdge(int m, int tr, int s) const { return parentEdge_[ch(m, tr)][static_cast<std::size_t>(s)]; }
  int& parentTrans(int m, int tr, int s) { return parentTrans_[ch(m, tr)][static_cast<std::size_t>(s)]; }
  int parentTrans(int m, int tr, int s) const { return parentTrans_[ch(m, tr)][static_cast<std::size_t>(s)]; }
  double& parentDelay(int m, int tr, int s) { return parentDelay_[ch(m, tr)][static_cast<std::size_t>(s)]; }
  double parentDelay(int m, int tr, int s) const { return parentDelay_[ch(m, tr)][static_cast<std::size_t>(s)]; }
  double& parentVar(int m, int tr, int s) { return parentVar_[ch(m, tr)][static_cast<std::size_t>(s)]; }
  double parentVar(int m, int tr, int s) const { return parentVar_[ch(m, tr)][static_cast<std::size_t>(s)]; }

  /// Backward required times, per transition (mode is always late).
  double& req(int tr, int s) { return req_[static_cast<std::size_t>(s)].r[tr]; }
  double req(int tr, int s) const { return req_[static_cast<std::size_t>(s)].r[tr]; }
  /// Reset the required channels only (computeRequired re-seeds them).
  void resetRequired(double inf);

  /// Materialize one slot as the AoS view (public API, memcmp convergence).
  VertexTiming gather(int slot) const;

 private:
  static int ch(int m, int tr) { return m * 2 + tr; }

  /// The gather-side words of one slot: everything a fan-out consumer
  /// reads, all channels adjacent. alignas pads 112 used bytes to a
  /// 128-byte stride on two cache lines.
  struct alignas(64) HotWords {
    double arr[4];
    double slew[4];
    double var[4];
    int depth[4];
  };
  struct ReqPair {
    double r[2];
  };

  int slots_ = 0;
  std::vector<HotWords> hot_;
  std::vector<int> parentEdge_[4], parentTrans_[4];
  std::vector<double> parentDelay_[4], parentVar_[4];
  std::vector<ReqPair> req_;
};

}  // namespace tc
