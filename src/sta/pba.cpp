#include "sta/pba.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/metrics.h"
#include "util/trace.h"

namespace tc {

namespace {

Counter& endpointsCtr() {
  static Counter& c =
      MetricsRegistry::global().counter("pba.endpoints_recalculated", "count");
  return c;
}
Counter& pathsEvalCtr() {
  static Counter& c =
      MetricsRegistry::global().counter("pba.paths_evaluated", "count");
  return c;
}
Counter& pathsPrunedCtr() {
  static Counter& c =
      MetricsRegistry::global().counter("pba.paths_pruned", "count");
  return c;
}
Counter& prefixHitCtr() {
  static Counter& c =
      MetricsRegistry::global().counter("pba.prefix_cache_hits", "count");
  return c;
}
Counter& retraceCtr() {
  static Counter& c = MetricsRegistry::global().counter(
      "pba.retrace_inconsistencies", "count");
  return c;
}

/// A retrace gap below this is FP noise, not a modeling inconsistency.
constexpr double kRetraceTol = 1e-9;

}  // namespace

// ---------------------------------------------------------------------------
// Exact path evaluation
// ---------------------------------------------------------------------------

/// Forward evaluation state along one concrete path. finishWalk() turns it
/// into the derated arrival in the scenario's modeling domain.
struct PbaAnalyzer::Walk {
  double arr = kNoTime;  ///< raw (underated for AOCV) mean arrival
  double offset = 0.0;   ///< launch offset at the source (AOCV exemption)
  double slew = 0.0;     ///< exact slew delivered to the current vertex
  double var = 0.0;      ///< exact accumulated variance (POCV/LVF)
  int depth = 0;         ///< logic depth along this path (AOCV)
};

PbaAnalyzer::Walk PbaAnalyzer::startWalk(VertexId v, int trans,
                                         Mode mode) const {
  const int mi = static_cast<int>(mode);
  const VertexTiming& t = eng_->timing(v);
  Walk w;
  w.arr = t.arr[mi][trans];
  w.offset = w.arr;
  w.slew = t.slew[mi][trans];
  if (w.slew <= 0.0) w.slew = eng_->scenario().inputSlew;
  return w;
}

void PbaAnalyzer::stepWalk(Walk& w, EdgeId via, int trTo, Mode mode) const {
  const Scenario& sc = eng_->scenario();
  DelayCalculator& dc = eng_->delayCalc();
  const TimingGraph& g = eng_->graph();
  const auto& d = sc.derate;
  const double flatF = d.mode == DerateMode::kFlatOcv
                           ? (mode == Mode::kLate ? d.flatLate : d.flatEarly)
                           : 1.0;
  const TimingGraph::Edge& ed = g.edge(via);
  switch (ed.kind) {
    case TimingGraph::EdgeKind::kNetArc: {
      // Exact slew + the D2M metric, in BOTH modes. Wire delay is
      // slew-independent here, and d2m = min(m1, ln2*m1^2/sqrt(m2)) with
      // m1 = Elmore, so D2M <= Elmore always: for setup (late) it removes
      // wire pessimism, and for hold (early) it moves data arrivals
      // *earlier* than GBA's Elmore — hold pbaSlack can only drop relative
      // to GBA, never falsely pass. One metric keeps both modes
      // conservative (pinned by Pba.HoldRetraceNeverFalselyPasses).
      const auto wres = dc.wire(ed.net, ed.sinkIndex, w.slew, /*useD2m=*/true);
      // Useful skew lands on flop CK sinks exactly as in GBA propagation
      // (the old retrace dropped it, under-reporting skewed arrivals).
      Ps skew = 0.0;
      const TimingGraph::Vertex& tv = g.vertex(ed.to);
      if (tv.kind == TimingGraph::VertexKind::kCellInput && tv.pin == 1 &&
          eng_->netlist().isSequential(tv.inst))
        skew = eng_->netlist().instance(tv.inst).usefulSkew;
      w.arr += wres.delay * flatF + skew;
      w.slew = wres.outSlew;
      break;
    }
    case TimingGraph::EdgeKind::kCellArc: {
      const InstId inst = g.vertex(ed.from).inst;
      const Cell& cell = dc.cellOf(inst);
      const auto r = dc.cellArc(inst, ed.arcIndex, trTo == 0, w.slew);
      w.arr += r.delay * flatF;
      w.slew = r.outSlew;
      double sigma = 0.0;
      if (d.mode == DerateMode::kLvf)
        sigma = mode == Mode::kLate ? r.sigmaLate : r.sigmaEarly;
      else if (d.mode == DerateMode::kPocv)
        sigma = cell.pocvSigmaRatio * r.delay;
      w.var += sigma * sigma;
      ++w.depth;
      break;
    }
    case TimingGraph::EdgeKind::kClockToQ: {
      const InstId flop = g.vertex(ed.from).inst;
      const Cell& cell = dc.cellOf(flop);
      const auto r = dc.clockToQ(flop, trTo == 0, w.slew);
      w.arr += r.delay * flatF;
      w.slew = r.outSlew;
      const double sigma =
          (cell.pocvSigmaRatio > 0 ? cell.pocvSigmaRatio : 0.03) * r.delay;
      if (d.mode == DerateMode::kLvf || d.mode == DerateMode::kPocv)
        w.var += sigma * sigma;
      ++w.depth;
      break;
    }
  }
}

Ps PbaAnalyzer::finishWalk(const Walk& w, Mode mode) const {
  const Scenario& sc = eng_->scenario();
  const auto& d = sc.derate;
  switch (d.mode) {
    case DerateMode::kNone:
    case DerateMode::kFlatOcv:
      return w.arr;
    case DerateMode::kAocv: {
      // Derate only the delay accumulated along the path, not the launch
      // offset (a port input-delay is a constraint, not a cell that varies
      // with depth). GBA's key() derates the whole arrival; offset >= 0
      // with late factors >= 1 / early factors <= 1 keeps the exact value
      // on the optimistic side of GBA, so pbaSlack >= gbaSlack still holds.
      const auto& aocv = sc.lib->aocv();
      const double f = mode == Mode::kLate ? aocv.late(std::max(w.depth, 1))
                                           : aocv.early(std::max(w.depth, 1));
      return w.offset + f * (w.arr - w.offset);
    }
    case DerateMode::kPocv:
    case DerateMode::kLvf: {
      const double s = d.sigmaCount * std::sqrt(w.var);
      return mode == Mode::kLate ? w.arr + s : w.arr - s;
    }
  }
  return w.arr;
}

Ps PbaAnalyzer::pathArrival(VertexId endpoint, Mode mode, int trans) const {
  const auto path = eng_->tracePath(endpoint, mode, trans);
  if (path.empty()) return kNoTime;
  Walk w = startWalk(path.front().vertex, path.front().trans, mode);
  for (std::size_t i = 1; i < path.size(); ++i)
    stepWalk(w, path[i].viaEdge, path[i].trans, mode);
  return finishWalk(w, mode);
}

// ---------------------------------------------------------------------------
// Admissible bounds
// ---------------------------------------------------------------------------

StaEngine::EdgeCand PbaAnalyzer::boundCandidate(EdgeId e, Mode mode, int trIn,
                                                int trOut) const {
  StaEngine::EdgeCand c = eng_->edgeCandidate(e, mode, trIn, trOut);
  if (!c.valid) return c;
  const TimingGraph::Edge& ed = eng_->graph().edge(e);
  if (ed.kind == TimingGraph::EdgeKind::kNetArc) {
    // The exact evaluator's wire delay is the slew-independent D2M metric;
    // substituting it for the engine's Elmore keeps the late bound an upper
    // bound (D2M <= Elmore) and is *required* for the early bound, where
    // Elmore would over-estimate the minimum arrival and break
    // admissibility. For wires the bound delay is in fact exact.
    const auto& d = eng_->scenario().derate;
    const double f = d.mode == DerateMode::kFlatOcv
                         ? (mode == Mode::kLate ? d.flatLate : d.flatEarly)
                         : 1.0;
    const double slew = eng_->timing(ed.from).slew[static_cast<int>(mode)][trIn];
    c.delay =
        eng_->delayCalc().wire(ed.net, ed.sinkIndex, slew, /*useD2m=*/true)
            .delay *
        f;
  }
  return c;
}

/// Per-(vertex, transition) bounds on the exact arrival of *any* path into
/// the vertex: late mode stores the max mean / max variance over paths,
/// early mode the min mean / max variance, folded through key() into the
/// scenario's derate domain. Admissibility rests on the GBA slews bounding
/// every exact path slew and the NLDM surfaces being monotone in input
/// slew (oracle-validated; see DESIGN.md "Path-based analysis").
struct PbaAnalyzer::Bounds {
  Mode mode = Mode::kLate;
  DerateMode dmode = DerateMode::kNone;
  double sigmaCount = 0.0;
  double aocvLateMax = 1.0;   ///< max over the late derate table (>= 1)
  double aocvEarlyMin = 1.0;  ///< min over the early derate table (<= 1)
  std::vector<std::array<double, 2>> mean;  ///< [vertex][trans]; kNoTime=none
  std::vector<std::array<double, 2>> var;

  /// Derated bound key dominating every depth / sigma combination.
  double key(double m, double v) const {
    switch (dmode) {
      case DerateMode::kNone:
      case DerateMode::kFlatOcv:
        return m;
      case DerateMode::kAocv:
        // Envelope over all depths; negative means (borrowed arrivals)
        // must not shrink under a late factor > 1.
        if (mode == Mode::kLate) return m >= 0.0 ? m * aocvLateMax : m;
        return m >= 0.0 ? m * aocvEarlyMin : m;
      case DerateMode::kPocv:
      case DerateMode::kLvf: {
        const double s = sigmaCount * std::sqrt(std::max(v, 0.0));
        return mode == Mode::kLate ? m + s : m - s;
      }
    }
    return m;
  }
};

PbaAnalyzer::Bounds PbaAnalyzer::buildBounds(Mode mode) const {
  TraceSpan span("pba", "build_bounds");
  const Scenario& sc = eng_->scenario();
  Bounds b;
  b.mode = mode;
  b.dmode = sc.derate.mode;
  b.sigmaCount = sc.derate.sigmaCount;
  if (b.dmode == DerateMode::kAocv) {
    const auto& a = sc.lib->aocv();
    for (const double f : a.lateDerate)
      b.aocvLateMax = std::max(b.aocvLateMax, f);
    for (const double f : a.earlyDerate)
      b.aocvEarlyMin = std::min(b.aocvEarlyMin, f);
  }
  const TimingGraph& g = eng_->graph();
  const int mi = static_cast<int>(mode);
  const bool late = mode == Mode::kLate;
  b.mean.assign(static_cast<std::size_t>(g.vertexCount()), {kNoTime, kNoTime});
  b.var.assign(static_cast<std::size_t>(g.vertexCount()), {0.0, 0.0});
  for (const VertexId v : g.topoOrder()) {
    const auto vi = static_cast<std::size_t>(v);
    const auto& in = g.inEdges(v);
    if (in.empty()) {
      // Source (port / quarantined pin): the engine's seed is exact.
      for (int tr = 0; tr < 2; ++tr) {
        b.mean[vi][static_cast<std::size_t>(tr)] = eng_->timing(v).arr[mi][tr];
        b.var[vi][static_cast<std::size_t>(tr)] = eng_->timing(v).var[mi][tr];
      }
      continue;
    }
    for (const EdgeId e : in) {
      const auto fi = static_cast<std::size_t>(g.edge(e).from);
      for (int trIn = 0; trIn < 2; ++trIn) {
        if (b.mean[fi][static_cast<std::size_t>(trIn)] == kNoTime) continue;
        for (int trOut = 0; trOut < 2; ++trOut) {
          const auto c = boundCandidate(e, mode, trIn, trOut);
          if (!c.valid) continue;
          const double cand =
              b.mean[fi][static_cast<std::size_t>(trIn)] + c.delay + c.skew;
          const double cvar =
              b.var[fi][static_cast<std::size_t>(trIn)] + c.var;
          // Mirror the engine's NaN quarantine: a non-finite candidate is
          // rejected locally instead of poisoning the whole cone.
          if (!std::isfinite(cand) || !std::isfinite(cvar)) continue;
          double& mv = b.mean[vi][static_cast<std::size_t>(trOut)];
          if (mv == kNoTime)
            mv = cand;
          else
            mv = late ? std::max(mv, cand) : std::min(mv, cand);
          double& vv = b.var[vi][static_cast<std::size_t>(trOut)];
          vv = std::max(vv, cvar);
        }
      }
    }
  }
  return b;
}

// ---------------------------------------------------------------------------
// Endpoint recalculation (K=1 retrace and deviation-branching enumeration)
// ---------------------------------------------------------------------------

PbaResult PbaAnalyzer::recalcImpl(const EndpointTiming& ep, Check check,
                                  const PbaOptions& opt,
                                  const Bounds* bounds) const {
  PbaResult r;
  r.endpoint = ep.vertex;
  r.flop = ep.flop;
  r.gbaSlack = check == Check::kSetup ? ep.setupSlack : ep.holdSlack;
  const Mode mode = check == Check::kSetup ? Mode::kLate : Mode::kEarly;
  const bool late = mode == Mode::kLate;
  const int mi = static_cast<int>(mode);
  const int worstTrans = check == Check::kSetup ? ep.setupTrans : ep.holdTrans;
  const Ps gbaArr = check == Check::kSetup ? ep.dataLate : ep.dataEarly;
  endpointsCtr().add();

  const bool enumerate = opt.exhaustive || opt.maxPaths > 1;
  if (!enumerate) {
    // K=1: the classic single-retrace of the GBA parent chain — kept as a
    // direct walk so the hot recalcWorst(k) path does no enumerator setup.
    const Ps exact = pathArrival(ep.vertex, mode, worstTrans);
    if (exact == kNoTime) {
      r.pbaSlack = r.gbaSlack;
      return r;
    }
    const Ps delta = late ? gbaArr - exact : exact - gbaArr;
    // Min-over-paths semantics: the exact value stands even when it is
    // *worse* than GBA (the old clamp hid exactly that inconsistency).
    r.pbaSlack = r.gbaSlack + delta;
    r.exactArrival = exact;
    r.retraceGap = delta < 0.0 ? -delta : 0.0;
    r.cert.pathsEvaluated = 1;
    pathsEvalCtr().add(1);
    if (r.retraceGap > kRetraceTol) retraceCtr().add();
    return r;
  }

  const TimingGraph& g = eng_->graph();
  if (eng_->timing(ep.vertex).arr[mi][worstTrans] == kNoTime) {
    r.pbaSlack = r.gbaSlack;
    return r;
  }
  Bounds local;
  if (!bounds) {
    local = buildBounds(mode);
    bounds = &local;
  }
  const Bounds& B = *bounds;

  // Task-local shared-prefix cache: sibling deviations re-enter the GBA
  // parent forest at different vertices but share chain prefixes;
  // memoizing Walk states per (vertex, trans) makes each prefix cost O(1)
  // after its first evaluation.
  std::unordered_map<std::uint64_t, Walk> memo;
  std::uint64_t memoHits = 0;
  const auto memoKey = [](VertexId v, int tr) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)) << 1) |
           static_cast<std::uint32_t>(tr);
  };
  const auto prefix = [&](VertexId v, int tr) -> Walk {
    std::vector<std::pair<VertexId, int>> chain;
    VertexId cv = v;
    int ct = tr;
    Walk w;
    bool have = false;
    while (true) {
      const auto it = memo.find(memoKey(cv, ct));
      if (it != memo.end()) {
        w = it->second;
        have = true;
        ++memoHits;
        break;
      }
      const VertexTiming& t = eng_->timing(cv);
      const EdgeId pe = t.parentEdge[mi][ct];
      if (pe < 0) break;
      chain.emplace_back(cv, ct);
      const int pt = t.parentTrans[mi][ct];
      cv = g.edge(pe).from;
      ct = pt;
    }
    if (!have) {
      w = startWalk(cv, ct, mode);
      memo.emplace(memoKey(cv, ct), w);
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      const VertexTiming& t = eng_->timing(it->first);
      stepWalk(w, t.parentEdge[mi][it->second], it->second, mode);
      memo.emplace(memoKey(it->first, it->second), w);
    }
    return w;
  };

  // A path is its endpoint-to-source step list: back[i] is the edge into
  // the vertex at distance i from the endpoint, taken with transition
  // trs[i] there and trs[i+1] = back[i].trFrom at its source. Children of
  // an evaluated path deviate at exactly one position > its own deviation
  // index, which partitions the path space without duplicates (the
  // Yen/Lawler deviation scheme on the implicit path tree).
  struct StepRec {
    EdgeId e = -1;
    int trFrom = 0;
  };
  struct EvalPath {
    std::vector<StepRec> back;
    std::vector<int> trs;  ///< trs[i] = transition at distance i from endpoint
    int devIndex = -1;     ///< position of this path's own deviation edge
    int startTrans = 0;    ///< transition at the endpoint
  };
  struct Cand {
    int parent = -1;  ///< index into `paths` (-1: whole-transition seed)
    int devIndex = -1;
    EdgeId devEdge = -1;
    int devTrFrom = 0;
    int startTrans = 0;
    double bound = 0.0;
    std::int64_t seq = 0;  ///< insertion order: deterministic tie-break
  };
  const auto candOrder = [late](const Cand& a, const Cand& b) {
    // priority_queue pops the "largest"; make that the best bound (late:
    // largest, early: smallest), ties broken toward earlier insertion.
    if (a.bound != b.bound) return late ? a.bound < b.bound : a.bound > b.bound;
    return a.seq > b.seq;
  };
  std::priority_queue<Cand, std::vector<Cand>, decltype(candOrder)> heap(
      candOrder);
  std::vector<EvalPath> paths;

  double worstExact = 0.0;
  std::int64_t pruned = 0, seq = 0;
  int evaluated = 0, pops = 0;
  bool capped = false;

  const auto admit = [&](double bound) {
    return late ? bound >= worstExact - opt.epsilon
                : bound <= worstExact + opt.epsilon;
  };

  // Append the GBA parent chain from (v, tr) down to the source.
  const auto chainFrom = [&](VertexId v, int tr, EvalPath& p) {
    VertexId cv = v;
    int ct = tr;
    while (true) {
      const VertexTiming& t = eng_->timing(cv);
      const EdgeId pe = t.parentEdge[mi][ct];
      if (pe < 0) break;
      const int pt = t.parentTrans[mi][ct];
      p.back.push_back({pe, pt});
      cv = g.edge(pe).from;
      ct = pt;
    }
  };
  const auto finishTrs = [&](EvalPath& p) {
    p.trs.resize(p.back.size() + 1);
    p.trs[0] = p.startTrans;
    for (std::size_t i = 0; i < p.back.size(); ++i)
      p.trs[i + 1] = p.back[i].trFrom;
  };
  const auto materialize = [&](const Cand& c) {
    EvalPath p;
    p.startTrans = c.startTrans;
    if (c.parent < 0) {
      chainFrom(ep.vertex, c.startTrans, p);
    } else {
      const EvalPath& par = paths[static_cast<std::size_t>(c.parent)];
      p.devIndex = c.devIndex;
      p.back.assign(par.back.begin(), par.back.begin() + c.devIndex);
      p.back.push_back({c.devEdge, c.devTrFrom});
      chainFrom(g.edge(c.devEdge).from, c.devTrFrom, p);
    }
    finishTrs(p);
    return p;
  };
  const auto evaluate = [&](const EvalPath& p) {
    if (p.devIndex < 0) {
      // Seed: the whole path IS a GBA parent chain.
      return finishWalk(prefix(ep.vertex, p.startTrans), mode);
    }
    Walk w =
        prefix(g.edge(p.back[static_cast<std::size_t>(p.devIndex)].e).from,
               p.back[static_cast<std::size_t>(p.devIndex)].trFrom);
    for (int i = p.devIndex; i >= 0; --i)
      stepWalk(w, p.back[static_cast<std::size_t>(i)].e,
               p.trs[static_cast<std::size_t>(i)], mode);
    return finishWalk(w, mode);
  };
  // Push every one-deviation child of paths[pIdx]. suffD/suffV accumulate
  // the path's own bound-arc suffix from the endpoint down, so a child's
  // bound is bound(deviation source) + deviation arc + kept suffix — an
  // admissible key never better than the parent's.
  const auto genChildren = [&](int pIdx) {
    const EvalPath& p = paths[static_cast<std::size_t>(pIdx)];
    double suffD = 0.0, suffV = 0.0;
    VertexId v = ep.vertex;
    for (int i = 0; i < static_cast<int>(p.back.size()); ++i) {
      const StepRec own = p.back[static_cast<std::size_t>(i)];
      const int trHere = p.trs[static_cast<std::size_t>(i)];
      if (i > p.devIndex) {
        for (const EdgeId e2 : g.inEdges(v)) {
          for (int trIn = 0; trIn < 2; ++trIn) {
            if (e2 == own.e && trIn == own.trFrom) continue;
            const auto c = boundCandidate(e2, mode, trIn, trHere);
            if (!c.valid) continue;
            const auto fi = static_cast<std::size_t>(g.edge(e2).from);
            if (B.mean[fi][static_cast<std::size_t>(trIn)] == kNoTime)
              continue;
            const double m = B.mean[fi][static_cast<std::size_t>(trIn)] +
                             c.delay + c.skew + suffD;
            const double vv =
                B.var[fi][static_cast<std::size_t>(trIn)] + c.var + suffV;
            if (!std::isfinite(m) || !std::isfinite(vv)) continue;
            const double bound = B.key(m, vv);
            if (!admit(bound)) {
              ++pruned;
              continue;
            }
            heap.push({pIdx, i, e2, trIn, p.startTrans, bound, seq++});
          }
        }
      }
      const auto cs = boundCandidate(own.e, mode, own.trFrom, trHere);
      suffD += cs.delay + cs.skew;
      suffV += cs.var;
      v = g.edge(own.e).from;
    }
  };

  // Seed 1: the GBA-worst chain, evaluated unconditionally — it anchors
  // the prune threshold and yields the retrace gap the clamp used to hide.
  {
    EvalPath s;
    s.startTrans = worstTrans;
    chainFrom(ep.vertex, worstTrans, s);
    finishTrs(s);
    const Ps exact = evaluate(s);
    worstExact = exact;
    evaluated = 1;
    const Ps gap = late ? exact - gbaArr : gbaArr - exact;
    r.retraceGap = gap > 0.0 ? gap : 0.0;
    paths.push_back(std::move(s));
    genChildren(0);
  }
  // Seed 2: the other endpoint transition's whole subtree, dominated by
  // the endpoint bound for that transition.
  const int otherTrans = 1 - worstTrans;
  if (eng_->timing(ep.vertex).arr[mi][otherTrans] != kNoTime) {
    const auto ei = static_cast<std::size_t>(ep.vertex);
    if (B.mean[ei][static_cast<std::size_t>(otherTrans)] != kNoTime) {
      const double bound =
          B.key(B.mean[ei][static_cast<std::size_t>(otherTrans)],
                B.var[ei][static_cast<std::size_t>(otherTrans)]);
      if (admit(bound))
        heap.push({-1, -1, -1, 0, otherTrans, bound, seq++});
      else
        ++pruned;
    }
  }

  while (true) {
    if (!opt.exhaustive && evaluated >= opt.maxPaths) break;
    if (heap.empty()) break;
    if (pops >= opt.enumerationCap) {
      capped = true;
      break;
    }
    const Cand top = heap.top();
    // Bounds only tighten as worstExact grows, so the first inadmissible
    // top closes the frontier: everything below it is provably outside
    // the epsilon band.
    if (!admit(top.bound)) break;
    heap.pop();
    ++pops;
    EvalPath p = materialize(top);
    const Ps exact = evaluate(p);
    if (late ? exact > worstExact : exact < worstExact) worstExact = exact;
    ++evaluated;
    paths.push_back(std::move(p));
    genChildren(static_cast<int>(paths.size()) - 1);
  }

  r.cert.frontierBound = heap.empty() ? kNoTime : heap.top().bound;
  pruned += static_cast<std::int64_t>(heap.size());
  r.cert.complete = !capped && (heap.empty() || !admit(heap.top().bound));
  r.cert.pathsEvaluated = evaluated;
  r.cert.pathsPruned = pruned;
  r.exactArrival = worstExact;
  const Ps delta = late ? gbaArr - worstExact : worstExact - gbaArr;
  r.pbaSlack = r.gbaSlack + delta;

  pathsEvalCtr().add(static_cast<std::uint64_t>(evaluated));
  pathsPrunedCtr().add(static_cast<std::uint64_t>(pruned));
  prefixHitCtr().add(memoHits);
  if (r.retraceGap > kRetraceTol) retraceCtr().add();
  return r;
}

void PbaAnalyzer::emitRetraceWarning(const PbaResult& r) const {
  if (!sink_) return;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "PBA retrace of the GBA-worst path evaluated %.3f ps worse "
                "than its GBA arrival; pbaSlack keeps the exact value",
                r.retraceGap);
  const TimingGraph::Vertex& vx = eng_->graph().vertex(r.endpoint);
  const std::string& entity = vx.kind == TimingGraph::VertexKind::kPort
                                  ? eng_->netlist().port(vx.port).name
                                  : eng_->netlist().instance(vx.inst).name;
  sink_->warn(DiagCode::kPbaRetraceWorseThanGba, buf, entity);
}

PbaResult PbaAnalyzer::recalcEndpoint(const EndpointTiming& ep,
                                      Check check) const {
  return recalcEndpoint(ep, check, PbaOptions{});
}

PbaResult PbaAnalyzer::recalcEndpoint(const EndpointTiming& ep, Check check,
                                      const PbaOptions& opt) const {
  const PbaResult r = recalcImpl(ep, check, opt, nullptr);
  if (r.retraceGap > kRetraceTol) emitRetraceWarning(r);
  return r;
}

std::vector<PbaResult> PbaAnalyzer::recalcWorst(int k, Check check,
                                                ThreadPool* pool) const {
  return recalcWorst(k, check, PbaOptions{}, pool);
}

std::vector<PbaResult> PbaAnalyzer::recalcWorst(int k, Check check,
                                                const PbaOptions& opt,
                                                ThreadPool* pool) const {
  TraceSpan span("pba", "recalc_worst");
  span.arg("k", static_cast<std::int64_t>(k));
  span.arg("max_paths",
           static_cast<std::int64_t>(opt.exhaustive ? -1 : opt.maxPaths));
  std::vector<const EndpointTiming*> eps;
  for (const auto& ep : eng_->endpoints()) eps.push_back(&ep);
  std::stable_sort(eps.begin(), eps.end(),
                   [check](const EndpointTiming* a, const EndpointTiming* b) {
                     const double sa =
                         check == Check::kSetup ? a->setupSlack : a->holdSlack;
                     const double sb =
                         check == Check::kSetup ? b->setupSlack : b->holdSlack;
                     return sa < sb;
                   });
  const std::size_t n = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(k, 0)), eps.size());
  const bool enumerate = opt.exhaustive || opt.maxPaths > 1;
  const bool parallel = pool && pool->threadCount() > 0;
  // Warm lazily-extracted RC state before bound construction / fan-out so
  // the per-endpoint tasks only do pure cache reads.
  if (parallel && n > 0) eng_->delayCalc().warmCache(pool);
  Bounds shared;
  const Bounds* bp = nullptr;
  if (enumerate && n > 0) {
    shared = buildBounds(check == Check::kSetup ? Mode::kLate : Mode::kEarly);
    bp = &shared;
  }
  std::vector<PbaResult> out(n);
  auto recalcOne = [&](std::size_t i) {
    out[i] = recalcImpl(*eps[i], check, opt, bp);
  };
  if (parallel) {
    // Each endpoint's heap / prefix cache is task-local, so the result
    // vector is bit-identical to the serial loop at any pool width.
    pool->parallelFor(n, recalcOne, /*grain=*/enumerate ? 1 : 4);
  } else {
    for (std::size_t i = 0; i < n; ++i) recalcOne(i);
  }
  // Diagnostics are emitted serially after the parallel region, in result
  // order, so the stream is deterministic too.
  if (sink_)
    for (const auto& r : out)
      if (r.retraceGap > kRetraceTol) emitRetraceWarning(r);
  return out;
}

}  // namespace tc
