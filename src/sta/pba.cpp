#include "sta/pba.h"

#include <algorithm>
#include <cmath>

#include "util/trace.h"

namespace tc {

Ps PbaAnalyzer::pathArrival(VertexId endpoint, Mode mode, int trans) const {
  const auto path = eng_->tracePath(endpoint, mode, trans);
  if (path.empty()) return kNoTime;
  const Scenario& sc = eng_->scenario();
  DelayCalculator& dc = eng_->delayCalc();
  const TimingGraph& g = eng_->graph();
  const auto& d = sc.derate;
  const double flatF = d.mode == DerateMode::kFlatOcv
                           ? (mode == Mode::kLate ? d.flatLate : d.flatEarly)
                           : 1.0;

  double arr = path.front().arrival;  // source arrival (port init)
  double var = 0.0;
  int depth = 0;
  double slew = eng_->timing(path.front().vertex)
                    .slew[static_cast<int>(mode)][path.front().trans];
  if (slew <= 0.0) slew = sc.inputSlew;

  for (std::size_t i = 1; i < path.size(); ++i) {
    const PathStep& step = path[i];
    const TimingGraph::Edge& ed = g.edge(step.viaEdge);
    switch (ed.kind) {
      case TimingGraph::EdgeKind::kNetArc: {
        // Exact slew + the tighter D2M metric.
        const auto w = dc.wire(ed.net, ed.sinkIndex, slew, /*useD2m=*/true);
        arr += w.delay * flatF;
        slew = w.outSlew;
        break;
      }
      case TimingGraph::EdgeKind::kCellArc: {
        const InstId inst = g.vertex(ed.from).inst;
        const Cell& cell = dc.cellOf(inst);
        const auto r = dc.cellArc(inst, ed.arcIndex, step.trans == 0, slew);
        arr += r.delay * flatF;
        slew = r.outSlew;
        double sigma = 0.0;
        if (d.mode == DerateMode::kLvf)
          sigma = mode == Mode::kLate ? r.sigmaLate : r.sigmaEarly;
        else if (d.mode == DerateMode::kPocv)
          sigma = cell.pocvSigmaRatio * r.delay;
        var += sigma * sigma;
        ++depth;
        break;
      }
      case TimingGraph::EdgeKind::kClockToQ: {
        const InstId flop = g.vertex(ed.from).inst;
        const Cell& cell = dc.cellOf(flop);
        const auto r = dc.clockToQ(flop, step.trans == 0, slew);
        arr += r.delay * flatF;
        slew = r.outSlew;
        const double sigma =
            (cell.pocvSigmaRatio > 0 ? cell.pocvSigmaRatio : 0.03) * r.delay;
        if (d.mode == DerateMode::kLvf || d.mode == DerateMode::kPocv)
          var += sigma * sigma;
        ++depth;
        break;
      }
    }
  }

  switch (d.mode) {
    case DerateMode::kNone:
    case DerateMode::kFlatOcv:
      return arr;
    case DerateMode::kAocv: {
      const auto& aocv = sc.lib->aocv();
      return mode == Mode::kLate ? arr * aocv.late(std::max(depth, 1))
                                 : arr * aocv.early(std::max(depth, 1));
    }
    case DerateMode::kPocv:
    case DerateMode::kLvf: {
      const double s = d.sigmaCount * std::sqrt(var);
      return mode == Mode::kLate ? arr + s : arr - s;
    }
  }
  return arr;
}

PbaResult PbaAnalyzer::recalcEndpoint(const EndpointTiming& ep,
                                      Check check) const {
  PbaResult r;
  r.endpoint = ep.vertex;
  r.flop = ep.flop;
  r.gbaSlack = check == Check::kSetup ? ep.setupSlack : ep.holdSlack;
  const Mode mode = check == Check::kSetup ? Mode::kLate : Mode::kEarly;
  const int trans = check == Check::kSetup ? ep.setupTrans : ep.holdTrans;
  const Ps exact = pathArrival(ep.vertex, mode, trans);
  const Ps gbaArr = check == Check::kSetup ? ep.dataLate : ep.dataEarly;
  // Slack improves by exactly the data-arrival pessimism removed (capture
  // path and constraint are reused from the GBA check).
  const Ps delta = check == Check::kSetup ? gbaArr - exact : exact - gbaArr;
  r.pbaSlack = r.gbaSlack + std::max(delta, 0.0);
  return r;
}

std::vector<PbaResult> PbaAnalyzer::recalcWorst(int k, Check check,
                                                ThreadPool* pool) const {
  TraceSpan span("pba", "recalc_worst");
  span.arg("k", static_cast<std::int64_t>(k));
  std::vector<const EndpointTiming*> eps;
  for (const auto& ep : eng_->endpoints()) eps.push_back(&ep);
  std::stable_sort(eps.begin(), eps.end(),
                   [check](const EndpointTiming* a, const EndpointTiming* b) {
                     const double sa =
                         check == Check::kSetup ? a->setupSlack : a->holdSlack;
                     const double sb =
                         check == Check::kSetup ? b->setupSlack : b->holdSlack;
                     return sa < sb;
                   });
  const std::size_t n =
      std::min<std::size_t>(static_cast<std::size_t>(std::max(k, 0)),
                            eps.size());
  std::vector<PbaResult> out(n);
  auto recalcOne = [&](std::size_t i) {
    out[i] = recalcEndpoint(*eps[i], check);
  };
  if (pool && pool->threadCount() > 0) {
    eng_->delayCalc().warmCache(pool);
    pool->parallelFor(n, recalcOne, /*grain=*/4);
  } else {
    for (std::size_t i = 0; i < n; ++i) recalcOne(i);
  }
  return out;
}

}  // namespace tc
