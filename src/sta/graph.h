#pragma once
/// \file graph.h
/// \brief Pin-level timing graph with topological order.
///
/// Vertices are pins (instance inputs, instance outputs, ports); edges are
/// cell delay arcs (input -> output, including flop CK -> Q) and net arcs
/// (driver output -> each sink input). Flop D pins are path endpoints.
/// The clock network is discovered by forward traversal from clock ports
/// and marked, so the engine can propagate clock and data together in one
/// levelized sweep.

#include <vector>

#include "network/netlist.h"

namespace tc {

using VertexId = int;
using EdgeId = int;

class TimingGraph {
 public:
  enum class VertexKind { kPort, kCellInput, kCellOutput };
  enum class EdgeKind { kCellArc, kClockToQ, kNetArc };

  struct Vertex {
    VertexKind kind = VertexKind::kCellInput;
    InstId inst = -1;  ///< for cell pins
    int pin = -1;      ///< input pin index
    PortId port = -1;  ///< for ports
    bool onClockNetwork = false;
    bool isEndpoint = false;  ///< flop D pin or constrained output port
  };

  struct Edge {
    EdgeKind kind = EdgeKind::kNetArc;
    VertexId from = -1, to = -1;
    int arcIndex = -1;   ///< cell arc (== input pin) for kCellArc
    NetId net = -1;      ///< for kNetArc
    int sinkIndex = -1;  ///< index into net's sink list
  };

  explicit TimingGraph(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  int vertexCount() const { return static_cast<int>(vertices_.size()); }
  int edgeCount() const { return static_cast<int>(edges_.size()); }
  const Vertex& vertex(VertexId v) const { return vertices_[static_cast<std::size_t>(v)]; }
  const Edge& edge(EdgeId e) const { return edges_[static_cast<std::size_t>(e)]; }
  const std::vector<EdgeId>& outEdges(VertexId v) const {
    return out_[static_cast<std::size_t>(v)];
  }
  const std::vector<EdgeId>& inEdges(VertexId v) const {
    return in_[static_cast<std::size_t>(v)];
  }
  /// Vertices in dependency order (every edge goes forward).
  const std::vector<VertexId>& topoOrder() const { return topo_; }

  /// Topological levels: levels()[L] holds every vertex whose longest
  /// in-path has L edges, each in topo-order. All in-edges of a level-L
  /// vertex come from levels < L, so one level's vertices can be relaxed
  /// concurrently (each task writing only its own vertex) — the unit of
  /// intra-scenario parallelism in the engine.
  const std::vector<std::vector<VertexId>>& levels() const { return levels_; }
  /// Level of one vertex (index into levels()).
  int levelOf(VertexId v) const {
    return levelOf_[static_cast<std::size_t>(v)];
  }
  /// Position of a vertex in topoOrder() — a stable, thread-independent
  /// sort key for diagnostics produced during parallel propagation.
  int topoPosition(VertexId v) const {
    return topoPos_[static_cast<std::size_t>(v)];
  }

  /// Number of instances the graph was built over. The optimizer may grow
  /// the netlist (buffer insertion) after the graph snapshot; instances at
  /// or beyond this span are unknown to this graph.
  int instanceSpan() const { return static_cast<int>(outVtx_.size()); }

  VertexId outputVertex(InstId inst) const {
    if (inst < 0 || inst >= instanceSpan()) return -1;
    return outVtx_[static_cast<std::size_t>(inst)];
  }
  VertexId inputVertex(InstId inst, int pin) const {
    if (inst < 0 || inst >= instanceSpan()) return -1;
    const auto& pins = inVtx_[static_cast<std::size_t>(inst)];
    if (pin < 0 || pin >= static_cast<int>(pins.size())) return -1;
    return pins[static_cast<std::size_t>(pin)];
  }
  VertexId portVertex(PortId port) const {
    if (port < 0 || port >= static_cast<int>(portVtx_.size())) return -1;
    return portVtx_[static_cast<std::size_t>(port)];
  }

  /// All endpoint vertices (flop D pins, constrained output ports).
  const std::vector<VertexId>& endpoints() const { return endpoints_; }
  /// All flop CK input vertices.
  const std::vector<VertexId>& clockPins() const { return clockPins_; }

 private:
  void markClockNetwork();
  void computeTopo();

  const Netlist* nl_;
  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_, in_;
  std::vector<VertexId> topo_;
  std::vector<std::vector<VertexId>> levels_;
  std::vector<int> levelOf_;
  std::vector<int> topoPos_;
  std::vector<VertexId> outVtx_;
  std::vector<std::vector<VertexId>> inVtx_;
  std::vector<VertexId> portVtx_;
  std::vector<VertexId> endpoints_;
  std::vector<VertexId> clockPins_;
};

}  // namespace tc
