#pragma once
/// \file graph.h
/// \brief Pin-level timing graph with topological order.
///
/// Vertices are pins (instance inputs, instance outputs, ports); edges are
/// cell delay arcs (input -> output, including flop CK -> Q) and net arcs
/// (driver output -> each sink input). Flop D pins are path endpoints.
/// The clock network is discovered by forward traversal from clock ports
/// and marked, so the engine can propagate clock and data together in one
/// levelized sweep.
///
/// Adjacency is stored in CSR (compressed sparse row) form: one flat edge-id
/// array per direction plus per-vertex offsets, so a level sweep walks
/// contiguous memory instead of chasing a vector-of-vectors. The levelization
/// additionally assigns every vertex a *slot*: its position in the
/// concatenated level order (level 0's vertices first, each level in
/// topo-order). Slots are the index space of the engine's SoA timing arenas —
/// one level's timing words are contiguous, which is what makes the per-level
/// forward/backward sweeps stream through flat arrays.

#include <cstddef>
#include <vector>

#include "network/netlist.h"

namespace tc {

using VertexId = int;
using EdgeId = int;

/// A contiguous, read-only view over ids stored in a CSR row (or a level
/// segment). Supports the same range-for / size() / operator[] idioms the
/// previous vector-of-vectors accessors offered.
template <typename T>
struct IdSpan {
  const T* first = nullptr;
  const T* last = nullptr;
  const T* begin() const { return first; }
  const T* end() const { return last; }
  std::size_t size() const { return static_cast<std::size_t>(last - first); }
  bool empty() const { return first == last; }
  const T& operator[](std::size_t i) const { return first[i]; }
};

using EdgeSpan = IdSpan<EdgeId>;
using VertexSpan = IdSpan<VertexId>;

class TimingGraph {
 public:
  enum class VertexKind { kPort, kCellInput, kCellOutput };
  enum class EdgeKind { kCellArc, kClockToQ, kNetArc };

  struct Vertex {
    VertexKind kind = VertexKind::kCellInput;
    InstId inst = -1;  ///< for cell pins
    int pin = -1;      ///< input pin index
    PortId port = -1;  ///< for ports
    bool onClockNetwork = false;
    bool isEndpoint = false;  ///< flop D pin or constrained output port
  };

  struct Edge {
    EdgeKind kind = EdgeKind::kNetArc;
    VertexId from = -1, to = -1;
    int arcIndex = -1;   ///< cell arc (== input pin) for kCellArc
    NetId net = -1;      ///< for kNetArc
    int sinkIndex = -1;  ///< index into net's sink list
  };

  explicit TimingGraph(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  int vertexCount() const { return static_cast<int>(vertices_.size()); }
  int edgeCount() const { return static_cast<int>(edges_.size()); }
  const Vertex& vertex(VertexId v) const { return vertices_[static_cast<std::size_t>(v)]; }
  const Edge& edge(EdgeId e) const { return edges_[static_cast<std::size_t>(e)]; }
  EdgeSpan outEdges(VertexId v) const {
    const auto i = static_cast<std::size_t>(v);
    return {outCsr_.data() + outStart_[i], outCsr_.data() + outStart_[i + 1]};
  }
  EdgeSpan inEdges(VertexId v) const {
    const auto i = static_cast<std::size_t>(v);
    return {inCsr_.data() + inStart_[i], inCsr_.data() + inStart_[i + 1]};
  }
  /// Vertices in dependency order (every edge goes forward).
  const std::vector<VertexId>& topoOrder() const { return topo_; }

  /// Number of topological levels. level(L) holds every vertex whose
  /// longest in-path has L edges, each in topo-order. All in-edges of a
  /// level-L vertex come from levels < L, so one level's vertices can be
  /// relaxed concurrently (each task writing only its own vertex) — the
  /// unit of intra-scenario parallelism in the engine.
  int levelCount() const { return static_cast<int>(levelStart_.size()) - 1; }
  VertexSpan level(int L) const {
    const auto i = static_cast<std::size_t>(L);
    return {levelOrder_.data() + levelStart_[i],
            levelOrder_.data() + levelStart_[i + 1]};
  }
  /// Level of one vertex (index into level()).
  int levelOf(VertexId v) const {
    return levelOf_[static_cast<std::size_t>(v)];
  }
  /// The vertex's slot: its position in the concatenated level order. Slots
  /// index the engine's SoA timing arenas; a level's slots are the
  /// contiguous range [levelStart(L), levelStart(L+1)).
  int slotOf(VertexId v) const { return slotOf_[static_cast<std::size_t>(v)]; }
  /// Inverse of slotOf(): the vertex occupying a slot.
  VertexId vertexAtSlot(int slot) const {
    return levelOrder_[static_cast<std::size_t>(slot)];
  }
  /// First slot of level L (levelStart(levelCount()) == vertexCount()).
  int levelStart(int L) const {
    return levelStart_[static_cast<std::size_t>(L)];
  }
  /// Position of a vertex in topoOrder() — a stable, thread-independent
  /// sort key for diagnostics produced during parallel propagation.
  int topoPosition(VertexId v) const {
    return topoPos_[static_cast<std::size_t>(v)];
  }

  /// Number of instances the graph was built over. The optimizer may grow
  /// the netlist (buffer insertion) after the graph snapshot; instances at
  /// or beyond this span are unknown to this graph.
  int instanceSpan() const { return static_cast<int>(outVtx_.size()); }

  VertexId outputVertex(InstId inst) const {
    if (inst < 0 || inst >= instanceSpan()) return -1;
    return outVtx_[static_cast<std::size_t>(inst)];
  }
  VertexId inputVertex(InstId inst, int pin) const {
    if (inst < 0 || inst >= instanceSpan()) return -1;
    const auto& pins = inVtx_[static_cast<std::size_t>(inst)];
    if (pin < 0 || pin >= static_cast<int>(pins.size())) return -1;
    return pins[static_cast<std::size_t>(pin)];
  }
  VertexId portVertex(PortId port) const {
    if (port < 0 || port >= static_cast<int>(portVtx_.size())) return -1;
    return portVtx_[static_cast<std::size_t>(port)];
  }

  /// All endpoint vertices (flop D pins, constrained output ports).
  const std::vector<VertexId>& endpoints() const { return endpoints_; }
  /// All flop CK input vertices.
  const std::vector<VertexId>& clockPins() const { return clockPins_; }

 private:
  void buildCsr();
  void markClockNetwork();
  void computeTopo();

  const Netlist* nl_;
  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
  // CSR adjacency: per-vertex offset arrays into flat edge-id arrays. Edge
  // ids within a row appear in ascending order — the same per-vertex order
  // the previous vector-of-vectors build produced — so every consumer's
  // deterministic iteration order is unchanged.
  std::vector<std::size_t> outStart_, inStart_;
  std::vector<EdgeId> outCsr_, inCsr_;
  std::vector<VertexId> topo_;
  // Levelization: levelOrder_ concatenates the levels (each in topo-order);
  // levelStart_ marks level boundaries; slotOf_ inverts levelOrder_.
  std::vector<VertexId> levelOrder_;
  std::vector<std::size_t> levelStart_;
  std::vector<int> slotOf_;
  std::vector<int> levelOf_;
  std::vector<int> topoPos_;
  std::vector<VertexId> outVtx_;
  std::vector<std::vector<VertexId>> inVtx_;
  std::vector<VertexId> portVtx_;
  std::vector<VertexId> endpoints_;
  std::vector<VertexId> clockPins_;
};

}  // namespace tc
