#pragma once
/// \file si.h
/// \brief Crosstalk / signal-integrity analysis (the paper's "noise
/// closure": SI appears in the old-vs-new matrix of Fig. 2, noise fixes in
/// the "last set of several hundred manual noise and DRC fixes", and noise
/// arrives as a care-about at 90nm in Fig. 3).
///
/// The model is the standard signoff abstraction:
///  - aggressors are physically adjacent nets (route-corridor bounding-box
///    overlap on the same layer) weighted by shared span;
///  - a victim's coupling capacitance is split among its aggressors;
///  - timing windows from the STA engine decide which aggressors can
///    switch while the victim transitions;
///  - switching aggressors contribute delta delay via the Miller effect
///    (opposite switching up to 2x coupling; same-direction reduces it),
///    and glitch (charge-injection bump) on quiet victims.
///
/// The analyzer both *reports* (noise report, glitch violations vs noise
/// margin) and *refines* timing: per-net Miller factors are re-extracted
/// and the engine re-run — SI-aware setup/hold, "with noise analysis
/// enabled" as the paper puts it.

#include <vector>

#include "sta/engine.h"

namespace tc {

struct SiOptions {
  /// Fraction of the victim's wire span an aggressor must overlap to count.
  double minOverlapFraction = 0.15;
  /// Miller factor for an opposite-switching aggressor (worst case 2.0).
  double opposingMiller = 2.0;
  /// Miller factor for coupling to quiet nets.
  double quietMiller = 1.0;
  /// Glitch noise margin as a fraction of VDD (typical 0.3).
  double noiseMarginFrac = 0.30;
  /// Only nets with coupling ratio above this are analyzed as victims.
  double minCouplingRatio = 0.05;
};

/// Per-victim SI result.
struct SiVictim {
  NetId net = -1;
  Ff couplingCap = 0.0;       ///< total coupling component of the wire cap
  double couplingRatio = 0.0; ///< coupling / total net cap
  int aggressors = 0;         ///< physically adjacent nets
  int timedAggressors = 0;    ///< adjacent nets with overlapping windows
  Ps deltaDelayLate = 0.0;    ///< added wire delay, opposite switching
  Ps deltaDelayEarly = 0.0;   ///< removed wire delay, same-direction
  double glitchPeakFrac = 0.0;  ///< peak glitch as a fraction of VDD
  bool glitchViolation = false;
};

struct SiSummary {
  std::vector<SiVictim> victims;  ///< sorted by deltaDelayLate, descending
  int glitchViolations = 0;
  Ps worstDeltaDelay = 0.0;
  /// Setup/hold WNS after re-running the engine with SI-aware windows
  /// (valid after refine()).
  Ps setupWnsAfter = 0.0;
  Ps holdWnsAfter = 0.0;
};

class SiAnalyzer {
 public:
  explicit SiAnalyzer(StaEngine& engine, SiOptions options = {})
      : eng_(&engine), opt_(options) {}

  /// Identify aggressors, compute per-victim delta delays and glitch.
  /// Requires placement (aggressor adjacency is geometric) and a completed
  /// engine run; unplaced designs get a coupling-ratio-only estimate.
  SiSummary analyze() const;

  /// Analyze, then re-run the engine with victim delta-delays folded into
  /// the affected nets' effective Miller factor (SI-aware timing).
  SiSummary refine();

 private:
  StaEngine* eng_;
  SiOptions opt_;
};

}  // namespace tc
