#pragma once
/// \file mis.h
/// \brief Multi-input switching (MIS) aware timing refinement (Sec. 2.1).
///
/// Conventional libraries characterize single-input switching only. When
/// two inputs of a gate can switch within a common window, the true arc
/// delay shifts: faster through parallel networks (critical to model in
/// *hold* signoff — the paper: "the MIS delay reduction is critical to model
/// correctly in hold signoff"), slower through series stacks (a setup
/// hazard). Following the practical derating approach of Lutkemeyer [26],
/// this analyzer detects arrival-window overlaps from a baseline GBA run
/// and applies the library's per-cell MIS factors to the affected arcs,
/// then re-runs the engine.

#include <array>
#include <vector>

#include "sta/engine.h"

namespace tc {

struct MisOverlap {
  InstId inst = -1;
  int pinA = 0, pinB = 1;
  Ps overlapWindow = 0.0;  ///< size of the common switching window
};

class MisAnalyzer {
 public:
  explicit MisAnalyzer(StaEngine& engine) : eng_(&engine) {}

  /// Detect gates whose inputs have overlapping switching windows.
  /// Requires the engine to have run.
  std::vector<MisOverlap> findOverlaps() const;

  /// Apply MIS factors for all detected overlaps and re-run the engine:
  /// series factor (>1) on the series-driven output transition in late
  /// mode, parallel factor (<1) on the parallel-driven transition in early
  /// mode. Returns the overlap list used.
  std::vector<MisOverlap> refine();

 private:
  StaEngine* eng_;
};

}  // namespace tc
