#pragma once
/// \file engine.h
/// \brief Graph-based static timing analysis (GBA).
///
/// One StaEngine analyzes one Scenario: levelized forward propagation of
/// (arrival, slew, variance, depth) per mode (late/early) and transition
/// (rise/fall), clock propagation through the buffered clock network,
/// setup/hold endpoint checks with common-path pessimism removal (CPPR),
/// design-rule (maxtrans/maxcap) checks, and backward required-time
/// propagation for optimizer guidance.
///
/// The variation-modeling ladder (Sec. 3.1) is selected by
/// Scenario::derate.mode:
///  - kFlatOcv   : per-edge flat late/early factors,
///  - kAocv      : raw propagation, depth-indexed derates at the checks,
///  - kPocv      : per-cell sigma accumulated in quadrature,
///  - kLvf       : per-arc per-(slew,load) asymmetric sigmas in quadrature.

#include <array>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "sta/delay_calc.h"
#include "sta/graph.h"
#include "sta/scenario.h"
#include "util/diag.h"
#include "util/thread_pool.h"

namespace tc {

enum class Mode { kLate = 0, kEarly = 1 };
enum class Check { kSetup, kHold };

inline constexpr double kNoTime = -1e18;

/// Per-vertex propagated state, indexed [mode][transition(rise=0,fall=1)].
struct VertexTiming {
  double arr[2][2];       ///< arrival mean, ps (kNoTime when unreached)
  double slew[2][2];      ///< propagated transition time
  double var[2][2];       ///< accumulated delay variance (POCV/LVF)
  int depth[2][2];        ///< logic depth (for AOCV)
  EdgeId parentEdge[2][2];
  int parentTrans[2][2];  ///< transition at the parent vertex
  double parentDelay[2][2];  ///< edge delay taken to reach this vertex
  double parentVar[2][2];    ///< variance added by that edge
};

/// Result of the setup/hold check at one endpoint.
struct EndpointTiming {
  VertexId vertex = -1;
  InstId flop = -1;  ///< -1 for output-port endpoints
  Ps setupSlack = std::numeric_limits<double>::infinity();
  Ps holdSlack = std::numeric_limits<double>::infinity();
  int setupTrans = 0;  ///< data transition producing the worst setup
  int holdTrans = 0;
  Ps dataLate = 0.0, dataEarly = 0.0;    ///< derated data arrivals at D
  Ps captureEarly = 0.0, captureLate = 0.0;  ///< derated CK arrivals
  Ps cpprSetup = 0.0, cpprHold = 0.0;    ///< credit applied
  Ps setupConstraint = 0.0, holdConstraint = 0.0;
};

/// A design-rule violation on a net.
struct DrvViolation {
  NetId net = -1;
  Ps slew = 0.0;
  Ff cap = 0.0;
  bool isTransition = true;  ///< else capacitance
};

/// One step of a traced path (endpoint first or source first — see docs).
struct PathStep {
  VertexId vertex = -1;
  EdgeId viaEdge = -1;  ///< edge into this vertex (-1 at the source)
  int trans = 0;
  Ps arrival = 0.0;   ///< propagated mean arrival
  Ps edgeDelay = 0.0;
  Ps edgeVar = 0.0;
};

class StaEngine {
 public:
  StaEngine(const Netlist& netlist, const Scenario& scenario);

  /// Full GBA pass: propagate, check endpoints, check DRVs, compute
  /// required times.
  void run();

  /// Attach a thread pool: the forward/backward propagation sweeps run one
  /// topological level at a time with the level's vertices relaxed
  /// concurrently, and endpoint checks fan out per endpoint. Null (the
  /// default) keeps every pass serial. Results are bit-identical either
  /// way: a level-parallel sweep is a refinement of the serial pull-order,
  /// each task writes only its own vertex, and reductions are per-vertex
  /// (see DESIGN.md "Concurrency model"). The incremental ECO path is
  /// always serial.
  void setThreadPool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* threadPool() const { return pool_; }

  /// Incremental update after an ECO confined to `dirtyNets` (cell swaps,
  /// useful-skew changes, NDR promotions — anything that does NOT add or
  /// remove pins/instances; topology edits need a fresh engine). Timing is
  /// recomputed only in the forward cone of the dirty nets, then endpoint
  /// checks and required times are refreshed. This is the ECO-turnaround
  /// machinery the paper's Comment 1 credits signoff tools with.
  void updateAfterEco(const std::vector<NetId>& dirtyNets);

  /// The nets whose parasitics/loads an in-place cell swap at `inst`
  /// invalidates: its fanin nets (pin caps changed) and fanout net.
  std::vector<NetId> netsAffectedBySwap(InstId inst) const;

  const TimingGraph& graph() const { return graph_; }
  DelayCalculator& delayCalc() { return dc_; }
  const DelayCalculator& delayCalc() const { return dc_; }
  const Scenario& scenario() const { return *sc_; }
  const Netlist& netlist() const { return *nl_; }

  // --- results ---------------------------------------------------------------
  const std::vector<EndpointTiming>& endpoints() const { return endpoints_; }
  Ps wns(Check check) const;
  Ps tns(Check check) const;
  int violationCount(Check check) const;
  const std::vector<DrvViolation>& drvViolations() const { return drvs_; }

  /// Derated/statistical arrival key at a vertex (worst transition).
  Ps arrivalKey(VertexId v, Mode mode) const;
  Ps arrivalKey(VertexId v, Mode mode, int trans) const;
  Ps slewAt(VertexId v, Mode mode) const;
  /// Setup-criticality slack at any vertex (backward required - arrival).
  Ps vertexSlack(VertexId v) const;
  const VertexTiming& timing(VertexId v) const {
    return vt_[static_cast<std::size_t>(v)];
  }

  /// Trace the worst path into an endpoint (source -> endpoint order).
  std::vector<PathStep> tracePath(VertexId endpoint, Mode mode,
                                  int trans) const;

  /// Clock period governing checks (single-clock designs).
  Ps clockPeriod() const;

  /// Attach a sink to receive graceful-degradation diagnostics (NaN/Inf
  /// quarantine during propagation). Optional; may be null.
  void setDiagnosticSink(DiagnosticSink* sink) { diagSink_ = sink; }
  /// Candidate (arrival, slew, variance) updates rejected because a value
  /// went non-finite. Each rejection is local: the propagation simply
  /// keeps the previous (or unreached) state at that vertex.
  int nanQuarantineCount() const { return nanQuarantine_; }

  /// Per-instance, per-output-transition delay multipliers applied to
  /// combinational cell arcs (used by the MIS analyzer: series-stack
  /// slow-down in late mode, parallel-bank speed-up in early mode).
  /// Vectors are indexed [instance][outputTransition]; empty disables.
  void setMisFactors(std::vector<std::array<double, 2>> late,
                     std::vector<std::array<double, 2>> early);
  void clearMisFactors();

 private:
  void initSources();
  void propagate();
  void relax(VertexId to, Mode m, int trans, double arr, double slewIn,
             double var, int depth, EdgeId via, int fromTrans,
             double edgeDelay, double edgeVar);
  void processEdge(EdgeId e);
  void checkEndpoints();
  void checkDrv();
  void computeRequired();
  /// Backward pull at one vertex: fold every successor's required time
  /// into requiredLate_[u]. Successors live on strictly later levels, so a
  /// level of pulls can run concurrently.
  void pullRequired(VertexId u);
  /// Evaluate one endpoint; returns false when the endpoint is skipped
  /// (unconstrained/unreached) or dropped (sets *droppedNonFinite).
  bool evalEndpoint(VertexId v, EndpointTiming* out,
                    bool* droppedNonFinite) const;
  /// Emit the recorded non-finite-rejection events through the sink in a
  /// thread-independent order (topo position, then discovery order) and
  /// fold them into nanQuarantine_.
  void flushNanEvents();
  double key(VertexId v, Mode m, int trans) const;
  /// Recompute one vertex's timing from its in-edges (incremental path).
  /// Returns true when any stored value moved by more than epsilon.
  bool recomputeVertex(VertexId v);
  /// CPPR credit between the launch trace of (endpoint, trans) and the
  /// capture clock trace at the capture flop.
  Ps cpprCredit(VertexId dataEndpoint, int dataTrans, VertexId captureCk,
                Check check) const;

  const Netlist* nl_;
  const Scenario* sc_;
  TimingGraph graph_;
  DelayCalculator dc_;
  std::vector<VertexTiming> vt_;
  std::vector<EndpointTiming> endpoints_;
  std::vector<DrvViolation> drvs_;
  std::vector<std::array<double, 2>> requiredLate_;  ///< [vertex][trans]
  std::vector<std::array<double, 2>> misLate_, misEarly_;
  bool hasRun_ = false;
  DiagnosticSink* diagSink_ = nullptr;
  int nanQuarantine_ = 0;
  ThreadPool* pool_ = nullptr;

  /// A candidate update rejected for being non-finite. Events are buffered
  /// during propagation (appends are mutex-guarded in parallel sweeps) and
  /// reported in deterministic order by flushNanEvents().
  struct NanEvent {
    VertexId vertex = -1;
    std::uint8_t badArrival = 1;  ///< else slew/variance
  };
  std::vector<NanEvent> nanEvents_;
  std::mutex nanMu_;
};

}  // namespace tc
