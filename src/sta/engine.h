#pragma once
/// \file engine.h
/// \brief Graph-based static timing analysis (GBA).
///
/// One StaEngine analyzes one Scenario: levelized forward propagation of
/// (arrival, slew, variance, depth) per mode (late/early) and transition
/// (rise/fall), clock propagation through the buffered clock network,
/// setup/hold endpoint checks with common-path pessimism removal (CPPR),
/// design-rule (maxtrans/maxcap) checks, and backward required-time
/// propagation for optimizer guidance.
///
/// The variation-modeling ladder (Sec. 3.1) is selected by
/// Scenario::derate.mode:
///  - kFlatOcv   : per-edge flat late/early factors,
///  - kAocv      : raw propagation, depth-indexed derates at the checks,
///  - kPocv      : per-cell sigma accumulated in quadrature,
///  - kLvf       : per-arc per-(slew,load) asymmetric sigmas in quadrature.
///
/// Timing words live in a level-contiguous SoA arena (see arena.h and
/// DESIGN.md "Memory layout"): the graph assigns every vertex a slot in
/// concatenated level order, and all per-vertex state is stored per-channel
/// at that slot. VertexTiming remains the public materialized view.

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "sta/arena.h"
#include "sta/delay_calc.h"
#include "sta/graph.h"
#include "sta/scenario.h"
#include "util/diag.h"
#include "util/thread_pool.h"

namespace tc {

enum class Mode { kLate = 0, kEarly = 1 };
enum class Check { kSetup, kHold };

inline constexpr double kNoTime = -1e18;

/// Per-vertex propagated state, indexed [mode][transition(rise=0,fall=1)].
/// Materialized on demand from the engine's SoA arena; the field set and
/// semantics are unchanged from the pre-arena layout, and the struct is all
/// 8-byte-aligned scalar arrays (no padding), so whole-struct memcmp is
/// still the bitwise-convergence test the incremental path relies on.
struct VertexTiming {
  double arr[2][2];       ///< arrival mean, ps (kNoTime when unreached)
  double slew[2][2];      ///< propagated transition time
  double var[2][2];       ///< accumulated delay variance (POCV/LVF)
  int depth[2][2];        ///< logic depth (for AOCV)
  EdgeId parentEdge[2][2];
  int parentTrans[2][2];  ///< transition at the parent vertex
  double parentDelay[2][2];  ///< edge delay taken to reach this vertex
  double parentVar[2][2];    ///< variance added by that edge
};

/// Result of the setup/hold check at one endpoint.
struct EndpointTiming {
  VertexId vertex = -1;
  InstId flop = -1;  ///< -1 for output-port endpoints
  Ps setupSlack = std::numeric_limits<double>::infinity();
  Ps holdSlack = std::numeric_limits<double>::infinity();
  int setupTrans = 0;  ///< data transition producing the worst setup
  int holdTrans = 0;
  Ps dataLate = 0.0, dataEarly = 0.0;    ///< derated data arrivals at D
  Ps captureEarly = 0.0, captureLate = 0.0;  ///< derated CK arrivals
  Ps cpprSetup = 0.0, cpprHold = 0.0;    ///< credit applied
  Ps setupConstraint = 0.0, holdConstraint = 0.0;
};

/// A design-rule violation on a net.
struct DrvViolation {
  NetId net = -1;
  Ps slew = 0.0;
  Ff cap = 0.0;
  bool isTransition = true;  ///< else capacitance
};

/// One step of a traced path (endpoint first or source first — see docs).
struct PathStep {
  VertexId vertex = -1;
  EdgeId viaEdge = -1;  ///< edge into this vertex (-1 at the source)
  int trans = 0;
  Ps arrival = 0.0;   ///< propagated mean arrival
  Ps edgeDelay = 0.0;
  Ps edgeVar = 0.0;
};

class StaEngine : public NetlistListener {
 public:
  StaEngine(const Netlist& netlist, const Scenario& scenario);
  ~StaEngine() override;
  StaEngine(const StaEngine&) = delete;
  StaEngine& operator=(const StaEngine&) = delete;

  /// Full GBA pass: propagate, check endpoints, check DRVs, compute
  /// required times.
  void run();

  /// Re-run just the forward arrival sweep and the backward required pull
  /// on the current design state (falls back to run() before the first
  /// full pass). Arrivals/requireds are re-derived from scratch and are
  /// bit-identical to the sweeps of a full run(); endpoint and DRV results
  /// are left as-is (they are pure functions of the re-derived arrivals,
  /// so they stay valid). With warm rc caches this times the level sweeps
  /// in isolation — bench_sta_scale's throughput ladder is built on it.
  void repropagate();

  /// Attach a thread pool: the forward/backward propagation sweeps run one
  /// topological level at a time with the level's vertices relaxed
  /// concurrently, and endpoint checks fan out per endpoint. Null (the
  /// default) keeps every pass serial. Results are bit-identical either
  /// way: a level-parallel sweep is a refinement of the serial pull-order,
  /// each task writes only its own vertex, and reductions are per-vertex
  /// (see DESIGN.md "Concurrency model"). Incremental updateTiming()
  /// sweeps its level buckets on the same pool under the same contract.
  void setThreadPool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* threadPool() const { return pool_; }

  // --- incremental timing ----------------------------------------------------
  // The engine registers itself as a NetlistListener at construction, so
  // in-place edits made through the netlist's notifying mutators (swapCell,
  // setUsefulSkew, setNdrClass, setMillerOverride, buffer insertion, ...)
  // mark their own dirty frontier. updateTiming() then re-propagates only
  // the affected region, terminating early where recomputed values are
  // bit-identical to the pre-edit state, and falls back to a full retime
  // (graph rebuild) after structural edits that stale the levelization.
  // Results are always bit-identical to a from-scratch run() — serial or on
  // a ThreadPool. See DESIGN.md "Incremental timing & invalidation".
  //
  // Invalidation can also be driven manually for edits that bypass the
  // hooks (direct field writes, clock-period changes -> invalidateStructure).

  /// Mark a net dirty: its parasitics, the driving arcs' loads, and every
  /// sink's wire delay are stale.
  void invalidateNet(NetId net);
  /// Mark one pin's arrival state dirty (its vertex is re-relaxed).
  void invalidatePin(InstId inst, int pin);
  /// Mark an in-place cell change at `inst` (sizing / Vt swap): fanin and
  /// fanout nets are invalidated and, for flops, the endpoint constraint is
  /// forced through re-evaluation.
  void invalidateInstance(InstId inst);
  /// Levelization is stale (topology edit / clock redefinition): the next
  /// updateTiming() rebuilds the graph and runs a full retime.
  void invalidateStructure();
  /// True when edits are pending and updateTiming() would do work.
  bool hasPendingInvalidation() const;

  /// What one updateTiming() call actually did.
  struct UpdateStats {
    bool full = false;          ///< structural fallback or first run
    int forwardRecomputed = 0;  ///< vertices re-relaxed in the dirty cone
    int requiredRecomputed = 0; ///< vertices re-pulled backward
    int endpointsReevaluated = 0;
  };
  /// Bring all timing state (arrivals, endpoint checks, DRVs, requireds)
  /// up to date with the netlist; no-op when nothing is invalid.
  UpdateStats updateTiming();
  const UpdateStats& lastUpdateStats() const { return lastUpdate_; }

  // NetlistListener: edits route into the invalidation API above.
  void onCellSwapped(InstId inst) override;
  void onNetAttrChanged(NetId net) override;
  void onSkewChanged(InstId flop) override;
  void onPlacementChanged(InstId inst) override;
  void onStructureChanged() override;

  /// Incremental update after an ECO confined to `dirtyNets` (cell swaps,
  /// useful-skew changes, NDR promotions). Legacy entry point: equivalent
  /// to invalidateNet() on each net followed by updateTiming().
  void updateAfterEco(const std::vector<NetId>& dirtyNets);

  /// The nets whose parasitics/loads an in-place cell swap at `inst`
  /// invalidates: its fanin nets (pin caps changed) and fanout net.
  std::vector<NetId> netsAffectedBySwap(InstId inst) const;

  const TimingGraph& graph() const { return graph_; }
  DelayCalculator& delayCalc() { return dc_; }
  const DelayCalculator& delayCalc() const { return dc_; }
  const Scenario& scenario() const { return *sc_; }
  const Netlist& netlist() const { return *nl_; }

  // --- results ---------------------------------------------------------------
  const std::vector<EndpointTiming>& endpoints() const { return endpoints_; }
  Ps wns(Check check) const;
  Ps tns(Check check) const;
  int violationCount(Check check) const;
  const std::vector<DrvViolation>& drvViolations() const { return drvs_; }

  /// Derated/statistical arrival key at a vertex (worst transition).
  Ps arrivalKey(VertexId v, Mode mode) const;
  Ps arrivalKey(VertexId v, Mode mode, int trans) const;
  Ps slewAt(VertexId v, Mode m) const;
  /// Setup-criticality slack at any vertex (backward required - arrival).
  Ps vertexSlack(VertexId v) const;
  /// Materialized AoS view of one vertex's timing words. Returns by value
  /// (the words live in the SoA arena); binding the result to a const
  /// reference at call sites remains valid through lifetime extension.
  VertexTiming timing(VertexId v) const {
    return tw_.gather(graph_.slotOf(v));
  }
  /// Direct single-word reads for hot consumers (PBA bound building) that
  /// would otherwise materialize a whole VertexTiming per access.
  double arrivalRaw(VertexId v, Mode m, int trans) const {
    return tw_.arr(static_cast<int>(m), trans, graph_.slotOf(v));
  }
  double slewRaw(VertexId v, Mode m, int trans) const {
    return tw_.slew(static_cast<int>(m), trans, graph_.slotOf(v));
  }
  double varRaw(VertexId v, Mode m, int trans) const {
    return tw_.var(static_cast<int>(m), trans, graph_.slotOf(v));
  }
  /// Backward late required time at a vertex, per transition (+inf when
  /// unconstrained). Exposed for the SoA-vs-AoS equivalence oracle.
  double requiredRaw(VertexId v, int trans) const {
    return tw_.req(trans, graph_.slotOf(v));
  }

  /// Trace the worst path into an endpoint (source -> endpoint order).
  std::vector<PathStep> tracePath(VertexId endpoint, Mode mode,
                                  int trans) const;

  /// One relax candidate over an edge, computed from the *current* GBA
  /// state at the edge source (i.e. with the merged worst slew). This is
  /// exactly the arithmetic processEdge() feeds relax(), factored out so
  /// path-based analysis can reuse it: because GBA late slews upper-bound
  /// (early slews lower-bound) every exact path slew, and the NLDM
  /// delay/slew surfaces are monotone in input slew, `delay` upper-bounds
  /// (late) / lower-bounds (early) the exact delay of any path through the
  /// edge — which is what makes the PBA enumerator's pruning admissible.
  struct EdgeCand {
    bool valid = false;   ///< transition pair is producible over this edge
    double delay = 0.0;   ///< edge delay, flat-OCV factor and MIS included
    double skew = 0.0;    ///< useful skew landing on a flop CK sink
    double var = 0.0;     ///< sigma^2 this edge adds (POCV/LVF)
    double outSlew = 0.0; ///< slew delivered using the GBA merged in-slew
    int depthInc = 0;     ///< AOCV logic-depth increment (cell arcs only)
  };
  /// The candidate for (edge, mode, trans at edge.from, trans at edge.to).
  /// Invalid when the source state is unreached or the transition pair is
  /// not producible (unateness, net arcs never flip, CK rises only).
  EdgeCand edgeCandidate(EdgeId e, Mode m, int trIn, int trOut) const;

  /// Clock period governing checks (single-clock designs).
  Ps clockPeriod() const;

  /// Attach a sink to receive graceful-degradation diagnostics (NaN/Inf
  /// quarantine during propagation). Optional; may be null.
  void setDiagnosticSink(DiagnosticSink* sink) { diagSink_ = sink; }
  /// Candidate (arrival, slew, variance) updates rejected because a value
  /// went non-finite, plus endpoints dropped for non-finite slack. Each
  /// rejection is local: the propagation simply keeps the previous (or
  /// unreached) state at that vertex. The count always reflects the
  /// *current* timing state: incremental updates retract the stale
  /// rejections of every recomputed vertex before re-counting it.
  int nanQuarantineCount() const { return propNan_ + epDropNan_; }

  /// Re-emit the complete graceful-degradation diagnostic stream for the
  /// *current* timing state into `sink`, byte-identical to what a fresh
  /// run() with that sink attached would have produced — however many
  /// incremental updates led here. Propagation rejections come first in
  /// topo-position order (with the same reporting cap), then endpoint
  /// drops in endpoint-index order.
  void replayTimingDiagnostics(DiagnosticSink& sink) const;

  /// Per-instance, per-output-transition delay multipliers applied to
  /// combinational cell arcs (used by the MIS analyzer: series-stack
  /// slow-down in late mode, parallel-bank speed-up in early mode).
  /// Vectors are indexed [instance][outputTransition]; empty disables.
  void setMisFactors(std::vector<std::array<double, 2>> late,
                     std::vector<std::array<double, 2>> early);
  void clearMisFactors();

 private:
  /// Outcome of re-relaxing one vertex against its in-edges.
  struct RecomputeResult {
    bool changed = false;      ///< any stored field moved (bitwise)
    bool pathChanged = false;  ///< a parent edge/transition switched
  };

  void initSources();
  void propagate();
  void relax(VertexId to, Mode m, int trans, double arr, double slewIn,
             double var, int depth, EdgeId via, int fromTrans,
             double edgeDelay, double edgeVar);
  void processEdge(EdgeId e);
  /// Serial forward sweep of one level through the batched NLDM pipeline:
  /// gather every producible candidate's table requests into contiguous
  /// buffers, evaluate them in DelayCalculator::evalNldmBatch()'s tight
  /// loop, then replay the candidates in the scalar sweep's exact order.
  /// Bit-identical to calling processEdge() per in-edge (see the op replay
  /// contract in engine.cpp).
  void sweepLevelBatched(int levelIndex);
  void checkEndpoints();
  void checkDrv();
  void computeRequired();
  /// Backward pull at one vertex: fold every successor's required time
  /// into the required channels at u's slot. Successors live on strictly
  /// later levels, so a level of pulls can run concurrently.
  void pullRequired(VertexId u);
  /// Evaluate one endpoint; returns false when the endpoint is skipped
  /// (unconstrained/unreached) or dropped (sets *droppedNonFinite).
  bool evalEndpoint(VertexId v, EndpointTiming* out,
                    bool* droppedNonFinite) const;
  /// Emit the recorded non-finite-rejection events through the sink in a
  /// thread-independent order (topo position, then discovery order) and
  /// fold them into nanQuarantine_.
  void flushNanEvents();
  /// Shared formatter for one propagation-rejection warning (live flush and
  /// replay go through the same text, cap, and suppression note).
  void emitNanWarn(DiagnosticSink& sink, VertexId vertex, bool badArrival,
                   std::size_t index, std::size_t total) const;
  double key(VertexId v, Mode m, int trans) const;
  /// Recompute one vertex's timing from its in-edges (incremental path).
  /// Convergence is judged bitwise (memcmp of the gathered VertexTiming) so
  /// incremental results stay exactly equal to a from-scratch retime.
  RecomputeResult recomputeVertex(VertexId v);
  /// Reset one vertex's required times to its endpoint seed (or +inf) and
  /// re-pull its successors; returns true when the stored pair changed.
  bool recomputeRequired(VertexId u);
  /// Required-time seed at an endpoint vertex, reconstructed from the
  /// endpoint slot's slack (+inf elsewhere) — shared by the full and
  /// incremental backward passes so both produce identical values.
  std::array<double, 2> endpointReqSeed(VertexId v) const;
  /// Re-evaluate the endpoint slots listed in `idxs` (indexes into
  /// graph().endpoints()), emit drop diagnostics for that subset in index
  /// order, and rebuild the compacted endpoint list and drop count.
  void reevaluateEndpoints(const std::vector<std::size_t>& idxs);
  /// Drop every pending invalidation (after a full retime absorbed it).
  void clearInvalidation();
  /// CPPR credit between the launch trace of (endpoint, trans) and the
  /// capture clock trace at the capture flop.
  Ps cpprCredit(VertexId dataEndpoint, int dataTrans, VertexId captureCk,
                Check check) const;

  const Netlist* nl_;
  const Scenario* sc_;
  TimingGraph graph_;
  DelayCalculator dc_;
  /// SoA timing words, indexed by graph slot (level-contiguous).
  TimingArena tw_;
  std::vector<EndpointTiming> endpoints_;
  std::vector<DrvViolation> drvs_;
  std::vector<std::array<double, 2>> misLate_, misEarly_;
  bool hasRun_ = false;
  DiagnosticSink* diagSink_ = nullptr;
  ThreadPool* pool_ = nullptr;

  // --- batched-sweep scratch (serial forward sweeps only) --------------------
  /// One producible relax candidate recorded during the gather phase, with
  /// everything the replay phase needs except the table results.
  struct BatchOp {
    EdgeId e = -1;
    VertexId to = -1;
    int req = -1;  ///< index into batchReqs_ (-1: net arc, result inline)
    std::int8_t m = 0, trIn = 0, trOut = 0;
    std::int8_t sigmaKind = 0;  ///< 0 none, 1 LVF tables, 2 ratio * delay
    std::int8_t depthInc = 0;
    double fromArr = 0.0, fromVar = 0.0;
    int fromDepth = 0;
    double skew = 0.0;   ///< net-arc useful skew (0 elsewhere)
    double mis = 1.0;    ///< MIS factor (1.0 when disabled)
    double ratio = 0.0;  ///< c2q/POCV sigma ratio (fallback pre-applied)
    double wDelay = 0.0, wOutSlew = 0.0;  ///< net-arc wire result
  };
  std::vector<BatchOp> batchOps_;
  std::vector<DelayCalculator::NldmRequest> batchReqs_;
  std::vector<DelayCalculator::ArcResult> batchRes_;
  void flushBatch();  ///< evaluate + replay the staged ops, then clear

  // --- flat edge plans (serial sweeps) ---------------------------------------
  /// Everything the serial sweeps need per edge, resolved once per full
  /// propagate instead of per candidate: arena slots, NLDM/LVF table
  /// pointers, unateness, sigma shape, useful skew, the driver-load words
  /// of the fanout net, and the slew-independent wire words (Elmore delay
  /// plus the squared PERI coefficient). The plans are stored in the EXACT
  /// iteration order of their sweep — forward plans in ascending-level
  /// in-edge order, backward plans in descending-level out-edge order — so
  /// each sweep streams its plan array front to back and the only scattered
  /// reads left are the timing-word gathers (packed two lines per slot, see
  /// arena.h). The scalar paths (processEdge / pullRequired) remain the
  /// reference arithmetic; plans only remove the per-candidate graph/
  /// netlist/library pointer chasing and parasitics-cache traffic — every
  /// arithmetic input is the identical double, so all results stay bitwise
  /// unchanged (enforced by tests/soa_equivalence_test.cpp and the
  /// determinism suite).
  /// The words DelayCalculator::flatLoad() resolves effective capacitance
  /// from, copied into each cell-arc plan (loadOf() repeats the identical
  /// arithmetic on the identical doubles).
  struct LoadWords {
    double cNear, cFar, cTotal, twoMaxM1;
  };
  static double loadOf(const LoadWords& f, double driverSlew) {
    if (f.cFar <= 0.0) return f.cTotal;
    const double shield =
        f.twoMaxM1 / (f.twoMaxM1 + std::max(driverSlew, 1.0));
    return f.cNear + f.cFar * (1.0 - 0.5 * shield);
  }
  struct FwdPlan {
    const NldmSurface* surf[2] = {nullptr, nullptr};  ///< per trOut
    const LvfSurface* lvf[2] = {nullptr, nullptr};    ///< LVF mode only
    union Payload {
      LoadWords load;  ///< cell arc / c2q (valid when hasNet)
      struct {
        double delay;   ///< Elmore delay of this sink
        double slewSq;  ///< (ln9 * m1)^2 PERI term
        double skew;    ///< useful skew landing on a flop CK sink
      } wire;           ///< net arc
      Payload() : load{} {}
    } u;
    EdgeId e = -1;
    int fromSlot = -1;
    VertexId to = -1;
    InstId inst = -1;  ///< MIS factor index (cell arcs)
    double ratio = 0.0;  ///< POCV/c2q sigma ratio (fallback folded in)
    TimingGraph::EdgeKind kind = TimingGraph::EdgeKind::kNetArc;
    std::int8_t unate = 0;          ///< 0 non-, 1 positive, 2 negative
    std::int8_t sigmaKind = 0;      ///< as BatchOp::sigmaKind
    std::int8_t portSink = 0;       ///< net arc lumped at root: slew passes
    std::int8_t hasNet = 0;         ///< else load is the constant 2.0
    std::int8_t fused[2] = {0, 0};  ///< per trOut: tables share one grid
  };
  /// Backward plans carry only what the required pull consumes (one delay
  /// table per candidate) — 64 bytes, one cache line per streamed edge.
  struct BwdPlan {
    const NldmSurface* surf[2] = {nullptr, nullptr};  ///< per trOut
    union Payload {
      LoadWords load;
      struct {
        double delay;  ///< Elmore delay of this sink
        double skew;   ///< useful skew landing on a flop CK sink
      } wire;
      Payload() : load{} {}
    } u;
    int toSlot = -1;
    InstId inst = -1;
    TimingGraph::EdgeKind kind = TimingGraph::EdgeKind::kNetArc;
    std::int8_t unate = 0;
    std::int8_t hasNet = 0;
  };
  std::vector<FwdPlan> fwdPlans_;
  std::vector<BwdPlan> bwdPlans_;
  /// fwdPlans_ index of each level's first in-edge plan (levelCount()+1
  /// entries; sweepLevelBatched(L) streams [off[L], off[L+1])).
  std::vector<std::size_t> fwdLevelOff_;
  bool plansValid_ = false;
  void buildEdgePlans();
  void stageEdge(const FwdPlan& pl);  ///< gather one edge's candidates
  /// pullRequired() replayed over the flat plans: same pulls in the same
  /// order, but each candidate evaluates only the one delay table it
  /// consumes (the scalar path's cellArc()/clockToQ() also evaluate the
  /// slew/sigma tables, whose results the backward pull discards).
  /// `cursor` is the bwdPlans_ position of u's first out-edge plan;
  /// returns the position one past its last.
  std::size_t pullRequiredFlat(VertexId u, std::size_t cursor);

  // --- dirty frontier (consumed by updateTiming) -----------------------------
  bool structureDirty_ = false;  ///< levelization stale: full rebuild
  bool valuesDirty_ = false;     ///< global value change (MIS factors)
  std::vector<NetId> dirtyNets_;        ///< parasitics to re-extract
  std::vector<VertexId> dirtyVerts_;    ///< forward re-relax seeds
  std::vector<VertexId> dirtyBack_;     ///< extra backward re-pull seeds
  std::vector<VertexId> forcedEndpointVerts_;  ///< re-check regardless

  // --- persistent per-endpoint slots (incremental endpoint checks) -----------
  // Indexed like graph().endpoints(); endpoints_ is the compaction of the
  // ok slots in index order, so serial/parallel/incremental all agree.
  std::vector<EndpointTiming> epSlots_;
  std::vector<std::uint8_t> epOk_, epDropped_;
  std::vector<int> epIndexOfVertex_;  ///< vertex -> endpoint index (-1)

  // --- NaN-quarantine accounting ---------------------------------------------
  // propNan_ rejections are owned per vertex so an incremental recompute
  // can retract the stale ones before re-relaxing; epDropNan_ is re-derived
  // from the drop flags whenever endpoints are (re)evaluated.
  int propNan_ = 0;
  int epDropNan_ = 0;
  /// Per-vertex ordered NaN rejections (1 = bad arrival, 0 = bad slew/
  /// variance), in each vertex's deterministic in-edge discovery order.
  /// Incremental updates retract a vertex's entry wholesale before its
  /// recompute re-discovers what is still real, which keeps
  /// replayTimingDiagnostics() equal to a fresh run's stream.
  std::vector<std::vector<std::uint8_t>> nanKinds_;

  UpdateStats lastUpdate_;

  /// A candidate update rejected for being non-finite. Events are buffered
  /// during propagation (appends are mutex-guarded in parallel sweeps) and
  /// reported in deterministic order by flushNanEvents().
  struct NanEvent {
    VertexId vertex = -1;
    std::uint8_t badArrival = 1;  ///< else slew/variance
  };
  std::vector<NanEvent> nanEvents_;
  std::mutex nanMu_;
};

// Defined in the header so processEdge()'s relax loop — the hottest scalar
// loop in the engine — inlines the candidate arithmetic instead of paying a
// cross-TU call per (mode, trIn, trOut). The PBA enumerator calls it
// through the same definition, so the two can never drift. The batched
// level sweep stages the identical arithmetic (see flushBatch()).
inline StaEngine::EdgeCand StaEngine::edgeCandidate(EdgeId e, Mode m,
                                                    int trIn,
                                                    int trOut) const {
  EdgeCand c;
  const TimingGraph::Edge& ed = graph_.edge(e);
  const int fs = graph_.slotOf(ed.from);
  const int mi = static_cast<int>(m);
  if (tw_.arr(mi, trIn, fs) == kNoTime) return c;
  const auto& d = sc_->derate;
  const double f =
      d.mode == DerateMode::kFlatOcv
          ? (m == Mode::kLate ? d.flatLate : d.flatEarly)
          : 1.0;

  switch (ed.kind) {
    case TimingGraph::EdgeKind::kNetArc: {
      if (trIn != trOut) return c;  // wires never flip the transition
      // Useful skew lands on flop CK pins.
      const TimingGraph::Vertex& tv = graph_.vertex(ed.to);
      if (tv.kind == TimingGraph::VertexKind::kCellInput && tv.pin == 1 &&
          nl_->isSequential(tv.inst))
        c.skew = nl_->instance(tv.inst).usefulSkew;
      const auto w = dc_.wire(ed.net, ed.sinkIndex, tw_.slew(mi, trIn, fs));
      c.valid = true;
      c.delay = w.delay * f;
      c.outSlew = w.outSlew;
      break;
    }
    case TimingGraph::EdgeKind::kCellArc: {
      const InstId inst = graph_.vertex(ed.from).inst;
      const Cell& cell = dc_.cellOf(inst);
      const TimingArc& arc = cell.arcs[static_cast<std::size_t>(ed.arcIndex)];
      // Output transitions implied by unateness.
      int outLo = 0, outHi = 1;
      if (arc.unate == Unateness::kNegative) outLo = outHi = 1 - trIn;
      if (arc.unate == Unateness::kPositive) outLo = outHi = trIn;
      if (trOut < outLo || trOut > outHi) return c;
      auto r = dc_.cellArc(inst, ed.arcIndex, trOut == 0,
                           tw_.slew(mi, trIn, fs));
      if (m == Mode::kLate && !misLate_.empty())
        r.delay *= misLate_[static_cast<std::size_t>(inst)]
                           [static_cast<std::size_t>(trOut)];
      if (m == Mode::kEarly && !misEarly_.empty())
        r.delay *= misEarly_[static_cast<std::size_t>(inst)]
                            [static_cast<std::size_t>(trOut)];
      double sigma = 0.0;
      if (d.mode == DerateMode::kLvf)
        sigma = m == Mode::kLate ? r.sigmaLate : r.sigmaEarly;
      else if (d.mode == DerateMode::kPocv)
        sigma = cell.pocvSigmaRatio * r.delay;
      c.valid = true;
      c.delay = r.delay * f;
      c.var = sigma * sigma;
      c.outSlew = r.outSlew;
      c.depthInc = 1;
      break;
    }
    case TimingGraph::EdgeKind::kClockToQ: {
      if (trIn != 0) return c;  // rising-edge flops
      const InstId flop = graph_.vertex(ed.from).inst;
      const Cell& cell = dc_.cellOf(flop);
      const auto r = dc_.clockToQ(flop, trOut == 0, tw_.slew(mi, trIn, fs));
      double sigma = 0.0;
      if (d.mode == DerateMode::kLvf || d.mode == DerateMode::kPocv)
        sigma =
            (cell.pocvSigmaRatio > 0 ? cell.pocvSigmaRatio : 0.03) * r.delay;
      c.valid = true;
      c.delay = r.delay * f;
      c.var = sigma * sigma;
      c.outSlew = r.outSlew;
      c.depthInc = 1;
      break;
    }
  }
  return c;
}

}  // namespace tc
