#include "sta/mc.h"

#include <algorithm>
#include <cmath>

namespace tc {

PathModel MonteCarloTiming::compilePath(VertexId endpoint, int trans) const {
  PathModel model;
  const auto path = eng_->tracePath(endpoint, Mode::kLate, trans);
  const TimingGraph& g = eng_->graph();
  DelayCalculator& dc = eng_->delayCalc();
  const Netlist& nl = eng_->netlist();

  PathModel::Stage pending;
  bool havePending = false;
  double slew = eng_->scenario().inputSlew;
  if (!path.empty()) {
    const auto& t0 = eng_->timing(path.front().vertex);
    const double s0 = t0.slew[0][path.front().trans];
    if (s0 > 0.0) slew = s0;
  }

  for (std::size_t i = 1; i < path.size(); ++i) {
    const PathStep& step = path[i];
    const TimingGraph::Edge& ed = g.edge(step.viaEdge);
    switch (ed.kind) {
      case TimingGraph::EdgeKind::kCellArc:
      case TimingGraph::EdgeKind::kClockToQ: {
        if (havePending) {
          model.stages.push_back(pending);
        }
        pending = {};
        havePending = true;
        const InstId inst = g.vertex(ed.from).inst;
        if (ed.kind == TimingGraph::EdgeKind::kCellArc) {
          const auto r = dc.cellArc(inst, ed.arcIndex, step.trans == 0, slew);
          pending.gateDelay = r.delay;
          pending.sigmaEarly = r.sigmaEarly;
          pending.sigmaLate = r.sigmaLate;
          slew = r.outSlew;
        } else {
          const auto r = dc.clockToQ(inst, step.trans == 0, slew);
          pending.gateDelay = r.delay;
          pending.sigmaEarly = r.sigmaEarly;
          pending.sigmaLate = r.sigmaLate;
          slew = r.outSlew;
        }
        // Load split: wire cap fraction of the driven net.
        const NetId net = nl.instance(inst).fanout;
        if (net >= 0) {
          const NetParasitics& p = dc.parasitics(net);
          pending.wireCapFrac =
              p.totalCap > 0 ? p.wireCap / p.totalCap : 0.0;
          pending.layerIdx = std::max(p.layer - 2, 0);
        }
        break;
      }
      case TimingGraph::EdgeKind::kNetArc: {
        const auto w = dc.wire(ed.net, ed.sinkIndex, slew);
        if (havePending) {
          pending.wireDelay += w.delay;
        }
        slew = w.outSlew;
        break;
      }
    }
  }
  if (havePending) model.stages.push_back(pending);

  for (const auto& s : model.stages)
    model.nominal += s.gateDelay + s.wireDelay;
  return model;
}

Ps MonteCarloTiming::sample(const PathModel& path, Rng& rng,
                            const McOptions& opt) const {
  const BeolStack& stack = eng_->delayCalc().extractor().stack();
  // One (R, C) draw per layer per trial: global within the trial,
  // independent across layers.
  double fr[8], fc[8];
  const std::size_t nLayers = stack.layers.size();
  for (std::size_t l = 0; l < nLayers && l < 8; ++l) {
    if (opt.sampleBeolLayers) {
      fr[l] = rng.normal(1.0, stack.layers[l].rSigmaFrac);
      fc[l] = rng.normal(1.0, stack.layers[l].cSigmaFrac);
    } else {
      fr[l] = fc[l] = 1.0;
    }
  }

  double total = 0.0;
  for (const auto& s : path.stages) {
    double gate = s.gateDelay;
    if (opt.sampleGateMismatch) {
      // Quadratic response fitted to the characterized +/-1-sigma points:
      // d(z) = d0 + a*z + b*z^2 with a = (sL+sE)/2, b = (sL-sE)/2 exactly
      // reproduces both, and extends the measured convexity (delay vs Vt is
      // convex, increasingly so toward low voltage) into the tails — the
      // physical source of the Fig. 7 "setup long tail".
      const double z = rng.normal();
      const double a = 0.5 * (s.sigmaLate + s.sigmaEarly);
      const double b = 0.5 * (s.sigmaLate - s.sigmaEarly);
      gate += a * z + b * z * z;
    }
    const std::size_t l = std::min<std::size_t>(
        static_cast<std::size_t>(s.layerIdx), nLayers ? nLayers - 1 : 0);
    // Load change moves the gate delay; R*C change moves the wire delay.
    gate *= 1.0 + opt.gateLoadSensitivity * s.wireCapFrac * (fc[l] - 1.0);
    const double wire = s.wireDelay * fr[l] * fc[l];
    total += gate + wire;
  }
  return total;
}

SampleSet MonteCarloTiming::run(const PathModel& path,
                                const McOptions& opt) const {
  Rng rng(opt.seed);
  SampleSet out;
  out.reserve(static_cast<std::size_t>(opt.samples));
  for (int i = 0; i < opt.samples; ++i) out.add(sample(path, rng, opt));
  return out;
}

Ps MonteCarloTiming::pathDelayAtCorner(const PathModel& path,
                                       BeolCorner corner, double kSigma,
                                       double gateLoadSensitivity) const {
  const CornerScales cs = tightenedScales(corner, kSigma);
  const double cAvg = 0.5 * (cs.cg + cs.cc);
  double total = 0.0;
  for (const auto& s : path.stages) {
    const double gate =
        s.gateDelay *
        (1.0 + gateLoadSensitivity * s.wireCapFrac * (cAvg - 1.0));
    const double wire = s.wireDelay * cs.r * cAvg;
    total += gate + wire;
  }
  return total;
}

}  // namespace tc
