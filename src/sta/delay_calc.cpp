#include "sta/delay_calc.h"

#include <stdexcept>

#include "util/metrics.h"
#include "util/trace.h"

namespace tc {

namespace {
// Miss = an RC extraction ran (lazily or via warmCache); hit = a lookup
// found the slot filled. Both are pure functions of the edit/query stream
// (warmCache fills each empty slot exactly once regardless of schedule),
// so the perf gate can hold the hit rate exactly.
Counter& rcHits() {
  static Counter& c =
      MetricsRegistry::global().counter("delaycalc.rc_cache_hits", "count");
  return c;
}
Counter& rcMisses() {
  static Counter& c =
      MetricsRegistry::global().counter("delaycalc.rc_cache_misses", "count");
  return c;
}
}  // namespace

DelayCalculator::DelayCalculator(const Netlist& nl, const Scenario& sc)
    : nl_(&nl),
      sc_(&sc),
      extractor_(nl, BeolStack::forNode(techNode(sc.techNm))) {
  if (!sc.lib) throw std::invalid_argument("Scenario has no library");
  // Scenario libraries must be drop-in timing views of the reference
  // library: same cells, same order (guaranteed by the deterministic
  // builder; verified here so a mismatched library fails fast).
  const Library& ref = nl.library();
  if (sc.lib->cellCount() != ref.cellCount())
    throw std::invalid_argument("scenario library cell count mismatch");
  for (int i = 0; i < ref.cellCount(); ++i) {
    if (sc.lib->cell(i).name != ref.cell(i).name)
      throw std::invalid_argument("scenario library cell order mismatch at " +
                                  ref.cell(i).name);
  }
  extOpt_.corner = sc.beol;
  extOpt_.temp = sc.temp();
  extOpt_.sadp = sc.sadp;
  extOpt_.tightenSigma = sc.tightenSigma;
  cache_.resize(static_cast<std::size_t>(nl.netCount()));
}

const NetParasitics& DelayCalculator::parasitics(NetId net) const {
  if (static_cast<std::size_t>(net) >= cache_.size())
    cache_.resize(static_cast<std::size_t>(nl_->netCount()));
  auto& slot = cache_[static_cast<std::size_t>(net)];
  if (!slot) {
    rcMisses().add();
    slot = extractor_.extract(net, extOpt_);
  } else {
    rcHits().add();
  }
  return *slot;
}

void DelayCalculator::invalidateNet(NetId net) {
  flatValid_ = false;
  if (static_cast<std::size_t>(net) < cache_.size())
    cache_[static_cast<std::size_t>(net)].reset();
  // Every placement edit invalidates the moved instance's nets, so this is
  // the one funnel through which the extractor's cached placed flag can go
  // stale (e.g. the first placement of a previously unplaced design).
  extractor_.invalidatePlacement();
}

void DelayCalculator::invalidateAll() {
  flatValid_ = false;
  cache_.assign(static_cast<std::size_t>(nl_->netCount()), std::nullopt);
  extractor_.invalidatePlacement();
}

void DelayCalculator::warmFlat() {
  if (flatValid()) return;
  TC_SPAN("delaycalc", "warm_flat");
  warmCache();
  flatLoads_.assign(static_cast<std::size_t>(nl_->netCount()), FlatLoad{});
  for (std::size_t n = 0; n < flatLoads_.size(); ++n) {
    const RcTree& t = cache_[n]->tree;  // filled + analyzed by warmCache
    FlatLoad& f = flatLoads_[n];
    f.cNear = t.rootCap();
    f.cTotal = t.analyzedTotalCap();
    f.cFar = f.cTotal - f.cNear;
    f.twoMaxM1 = 2.0 * t.maxM1();
  }
  flatValid_ = true;
}

void DelayCalculator::warmCache(ThreadPool* pool) {
  TC_SPAN("delaycalc", "warm_cache");
  if (cache_.size() < static_cast<std::size_t>(nl_->netCount()))
    cache_.resize(static_cast<std::size_t>(nl_->netCount()));
  // Resolve the lazily-cached placement flag before fanning out: the
  // parallel extracts below must be pure reads of it.
  extractor_.isPlaced();
  auto fill = [this](std::size_t n) {
    auto& slot = cache_[n];
    if (!slot) {
      rcMisses().add();
      slot = extractor_.extract(static_cast<NetId>(n), extOpt_);
    }
    slot->tree.ensureAnalyzed();
  };
  if (pool)
    pool->parallelFor(cache_.size(), fill, /*grain=*/16);
  else
    for (std::size_t n = 0; n < cache_.size(); ++n) fill(n);
}

Ff DelayCalculator::driverLoad(NetId net, Ps driverSlewGuess) const {
  return parasitics(net).tree.effectiveCap(driverSlewGuess);
}

DelayCalculator::ArcResult DelayCalculator::cellArc(InstId inst, int arcIndex,
                                                    bool outRise,
                                                    Ps inSlew) const {
  const Cell& cell = cellOf(inst);
  const TimingArc& arc = cell.arcs[static_cast<std::size_t>(arcIndex)];
  const NetId net = nl_->instance(inst).fanout;
  const Ff load = net >= 0 ? driverLoad(net, inSlew) : 2.0;

  ArcResult r;
  const NldmSurface& surf = arc.surface(outRise);
  r.delay = surf.delayAt(inSlew, load);
  r.outSlew = surf.slewAt(inSlew, load);
  const LvfSurface& lvf = arc.lvf(outRise);
  if (!lvf.empty()) {
    r.sigmaEarly = lvf.earlyAt(inSlew, load);
    r.sigmaLate = lvf.lateAt(inSlew, load);
  }
  return r;
}

DelayCalculator::ArcResult DelayCalculator::clockToQ(InstId flop, bool qRise,
                                                     Ps ckSlew) const {
  const Cell& cell = cellOf(flop);
  if (!cell.flop) throw std::logic_error("clockToQ on non-flop " + nl_->instance(flop).name);
  const NetId net = nl_->instance(flop).fanout;
  const Ff load = net >= 0 ? driverLoad(net, ckSlew) : 2.0;
  ArcResult r;
  const NldmSurface& surf = qRise ? cell.flop->c2qRise : cell.flop->c2qFall;
  r.delay = surf.delayAt(ckSlew, load);
  r.outSlew = surf.slewAt(ckSlew, load);
  r.sigmaEarly = cell.pocvSigmaRatio > 0 ? cell.pocvSigmaRatio * r.delay
                                         : 0.03 * r.delay;
  r.sigmaLate = r.sigmaEarly;
  return r;
}

void DelayCalculator::evalNldmBatch(const NldmRequest* reqs, std::size_t n,
                                    ArcResult* out) const {
  // The engine's batched level sweep stages every request of a level and
  // evaluates them here back-to-back: the bilinear lookups run over
  // contiguous request/result arrays with no graph or netlist pointer
  // chasing between them. Arithmetic per element is exactly the scalar
  // cellArc()/clockToQ() table calls, so results are bit-identical.
  for (std::size_t i = 0; i < n; ++i) {
    const NldmRequest& q = reqs[i];
    ArcResult& r = out[i];
    if (q.fusedAxes) {
      // All tables of this arc share one grid: one axis resolution serves
      // every bilinear tail (Table2D::lookupAt — lookup()'s own
      // arithmetic, so each value is bit-identical to a full lookup).
      const Table2D& dt = q.surf->delay;
      const Axis& ax = dt.xAxis();
      const Axis& ay = dt.yAxis();
      const std::size_t sx = ax.segment(q.inSlew);
      const std::size_t sy = ay.segment(q.load);
      const double fx = ax.fraction(q.inSlew, sx);
      const double fy = ay.fraction(q.load, sy);
      r.delay = dt.lookupAt(sx, sy, fx, fy);
      r.outSlew = q.surf->slew.lookupAt(sx, sy, fx, fy);
      if (q.lvf) {
        r.sigmaEarly = q.lvf->sigmaEarly.lookupAt(sx, sy, fx, fy);
        r.sigmaLate = q.lvf->sigmaLate.lookupAt(sx, sy, fx, fy);
      } else {
        r.sigmaEarly = 0.0;
        r.sigmaLate = 0.0;
      }
      continue;
    }
    r.delay = q.surf->delay.lookup(q.inSlew, q.load);
    r.outSlew = q.surf->slew.lookup(q.inSlew, q.load);
    if (q.lvf) {
      r.sigmaEarly = q.lvf->sigmaEarly.lookup(q.inSlew, q.load);
      r.sigmaLate = q.lvf->sigmaLate.lookup(q.inSlew, q.load);
    } else {
      r.sigmaEarly = 0.0;
      r.sigmaLate = 0.0;
    }
  }
}

DelayCalculator::WireResult DelayCalculator::wire(NetId net, int sinkIndex,
                                                  Ps slewIn,
                                                  bool useD2m) const {
  const NetParasitics& p = parasitics(net);
  WireResult r;
  if (sinkIndex < 0 ||
      static_cast<std::size_t>(sinkIndex) >= p.sinkNode.size()) {
    // Port sink: lumped at the root.
    r.delay = 0.0;
    r.outSlew = slewIn;
    return r;
  }
  const int node = p.sinkNode[static_cast<std::size_t>(sinkIndex)];
  r.delay = useD2m ? p.tree.d2m(node) : p.tree.elmore(node);
  r.outSlew = p.tree.degradeSlew(slewIn, node);
  return r;
}

Ps DelayCalculator::setupTime(InstId flop) const {
  const Cell& cell = cellOf(flop);
  if (!cell.flop) throw std::logic_error("setupTime on non-flop");
  return cell.flop->setup;
}

Ps DelayCalculator::holdTime(InstId flop) const {
  const Cell& cell = cellOf(flop);
  if (!cell.flop) throw std::logic_error("holdTime on non-flop");
  return cell.flop->hold;
}

}  // namespace tc
