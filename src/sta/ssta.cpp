#include "sta/ssta.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/stats.h"

namespace tc {

double GaussianTime::sigma() const { return std::sqrt(std::max(var, 0.0)); }
double GaussianTime::at(double z) const { return mean + z * sigma(); }

GaussianTime clarkMax(const GaussianTime& a, const GaussianTime& b) {
  const double theta2 = a.var + b.var;  // independent operands
  if (theta2 < 1e-18) {
    return a.mean >= b.mean ? a : b;
  }
  const double theta = std::sqrt(theta2);
  const double alpha = (a.mean - b.mean) / theta;
  const double phi = std::exp(-0.5 * alpha * alpha) / std::sqrt(2.0 * M_PI);
  const double Phi = normalCdf(alpha);
  GaussianTime m;
  m.mean = a.mean * Phi + b.mean * (1.0 - Phi) + theta * phi;
  const double second = (a.var + a.mean * a.mean) * Phi +
                        (b.var + b.mean * b.mean) * (1.0 - Phi) +
                        (a.mean + b.mean) * theta * phi;
  m.var = std::max(second - m.mean * m.mean, 0.0);
  return m;
}

std::vector<SstaEndpoint> SstaAnalyzer::run() {
  StaEngine& eng = *eng_;
  const TimingGraph& g = eng.graph();
  DelayCalculator& dc = eng.delayCalc();
  const Netlist& nl = eng.netlist();
  const Scenario& sc = eng.scenario();

  constexpr double kUnset = -1e18;
  // Per vertex, per transition: Gaussian late arrival.
  std::vector<std::array<GaussianTime, 2>> arr(
      static_cast<std::size_t>(g.vertexCount()),
      {GaussianTime{kUnset, 0.0}, GaussianTime{kUnset, 0.0}});

  // Sources mirror the deterministic engine's initialization.
  for (const auto& c : nl.clocks()) {
    auto& a = arr[static_cast<std::size_t>(g.portVertex(c.port))];
    a[0] = a[1] = {c.sourceLatency, 0.0};
  }
  const Ps inputDelay = sc.inputDelay > 0.0
                            ? sc.inputDelay
                            : (nl.clocks().empty() ? 0.0
                                                   : 0.25 * eng.clockPeriod());
  for (PortId p = 0; p < nl.portCount(); ++p) {
    if (!nl.port(p).isInput || nl.port(p).constant) continue;
    bool isClock = false;
    for (const auto& c : nl.clocks())
      if (c.port == p) isClock = true;
    if (isClock) continue;
    auto& a = arr[static_cast<std::size_t>(g.portVertex(p))];
    a[0] = a[1] = {inputDelay, 0.0};
  }

  auto merge = [](GaussianTime& slot, const GaussianTime& cand) {
    if (slot.mean == kUnset) {
      slot = cand;
    } else {
      slot = clarkMax(slot, cand);
    }
  };

  // Forward sweep. Slews are reused from the deterministic late-mode run
  // (second-order effect on the statistics).
  for (VertexId u : g.topoOrder()) {
    for (EdgeId e : g.outEdges(u)) {
      const TimingGraph::Edge& ed = g.edge(e);
      const auto& fa = arr[static_cast<std::size_t>(u)];
      switch (ed.kind) {
        case TimingGraph::EdgeKind::kNetArc: {
          Ps skew = 0.0;
          const TimingGraph::Vertex& tv = g.vertex(ed.to);
          if (tv.kind == TimingGraph::VertexKind::kCellInput &&
              tv.pin == 1 && nl.isSequential(tv.inst))
            skew = nl.instance(tv.inst).usefulSkew;
          for (int tr = 0; tr < 2; ++tr) {
            if (fa[static_cast<std::size_t>(tr)].mean == kUnset) continue;
            const auto w =
                dc.wire(ed.net, ed.sinkIndex,
                        eng.timing(u).slew[0][tr]);
            GaussianTime cand = fa[static_cast<std::size_t>(tr)];
            cand.mean += w.delay + skew;
            merge(arr[static_cast<std::size_t>(ed.to)]
                     [static_cast<std::size_t>(tr)],
                  cand);
          }
          break;
        }
        case TimingGraph::EdgeKind::kCellArc: {
          const InstId inst = g.vertex(ed.from).inst;
          const Cell& cell = dc.cellOf(inst);
          const TimingArc& tArc =
              cell.arcs[static_cast<std::size_t>(ed.arcIndex)];
          for (int trIn = 0; trIn < 2; ++trIn) {
            if (fa[static_cast<std::size_t>(trIn)].mean == kUnset) continue;
            int lo = 0, hi = 1;
            if (tArc.unate == Unateness::kNegative) lo = hi = 1 - trIn;
            if (tArc.unate == Unateness::kPositive) lo = hi = trIn;
            for (int trOut = lo; trOut <= hi; ++trOut) {
              const auto r = dc.cellArc(inst, ed.arcIndex, trOut == 0,
                                        eng.timing(u).slew[0][trIn]);
              // Symmetric Gaussian: use the mean of the asymmetric LVF
              // sigmas (SSTA's Gaussian assumption, one of its limits).
              const double s = 0.5 * (r.sigmaLate + r.sigmaEarly);
              GaussianTime cand = fa[static_cast<std::size_t>(trIn)];
              cand.mean += r.delay;
              cand.var += s * s;
              merge(arr[static_cast<std::size_t>(ed.to)]
                       [static_cast<std::size_t>(trOut)],
                    cand);
            }
          }
          break;
        }
        case TimingGraph::EdgeKind::kClockToQ: {
          const InstId flop = g.vertex(ed.from).inst;
          const Cell& cell = dc.cellOf(flop);
          if (fa[0].mean == kUnset) break;
          for (int trQ = 0; trQ < 2; ++trQ) {
            const auto r = dc.clockToQ(flop, trQ == 0,
                                       eng.timing(u).slew[0][0]);
            const double s =
                (cell.pocvSigmaRatio > 0 ? cell.pocvSigmaRatio : 0.03) *
                r.delay;
            GaussianTime cand = fa[0];
            cand.mean += r.delay;
            cand.var += s * s;
            merge(arr[static_cast<std::size_t>(ed.to)]
                     [static_cast<std::size_t>(trQ)],
                  cand);
          }
          break;
        }
      }
    }
  }

  // Endpoint checks: statistical data arrival against the deterministic
  // capture/constraint quantities from the engine run.
  std::vector<SstaEndpoint> out;
  wns3_ = std::numeric_limits<double>::infinity();
  const Ps period = nl.clocks().empty() ? 1e9 : eng.clockPeriod();
  for (const auto& ep : eng.endpoints()) {
    const auto& a = arr[static_cast<std::size_t>(ep.vertex)];
    GaussianTime data;
    bool have = false;
    for (int tr = 0; tr < 2; ++tr) {
      if (a[static_cast<std::size_t>(tr)].mean == kUnset) continue;
      if (!have) {
        data = a[static_cast<std::size_t>(tr)];
        have = true;
      } else {
        data = clarkMax(data, a[static_cast<std::size_t>(tr)]);
      }
    }
    if (!have) continue;
    SstaEndpoint se;
    se.vertex = ep.vertex;
    se.flop = ep.flop;
    double allowed;
    if (ep.flop >= 0) {
      allowed = period + ep.captureEarly - ep.setupConstraint -
                sc.clockUncertaintySetup - sc.extraSetupMargin +
                ep.cpprSetup;
    } else {
      allowed = period - sc.clockUncertaintySetup - sc.extraSetupMargin;
    }
    se.slack.mean = allowed - data.mean;
    se.slack.var = data.var;
    se.slack3Sigma = se.slack.mean - 3.0 * se.slack.sigma();
    se.yield = se.slack.sigma() > 0
                   ? normalCdf(se.slack.mean / se.slack.sigma())
                   : (se.slack.mean >= 0 ? 1.0 : 0.0);
    wns3_ = std::min(wns3_, se.slack3Sigma);
    out.push_back(se);
  }
  std::sort(out.begin(), out.end(),
            [](const SstaEndpoint& x, const SstaEndpoint& y) {
              return x.slack3Sigma < y.slack3Sigma;
            });
  return out;
}

}  // namespace tc
