#include "sta/lint.h"

#include <cmath>
#include <set>
#include <vector>

namespace tc {

namespace {

/// One loop-breaking step: given the set of instances left out of the
/// acyclic prefix (the cycle residue), find an edge inside the residue and
/// quarantine its sink pin. Returns false if no such edge exists (should
/// not happen while tryTopoOrder fails, but guards against livelock).
bool breakOneLoopEdge(Netlist& nl, const std::set<InstId>& residue,
                      DiagnosticSink& sink) {
  for (InstId id : residue) {
    const Instance& inst = nl.instance(id);
    if (nl.isSequential(id)) continue;  // flops are legal cycle members
    for (int pin = 0; pin < static_cast<int>(inst.fanin.size()); ++pin) {
      const NetId nid = inst.fanin[pin];
      if (nid < 0 || nl.isPinQuarantined(id, pin)) continue;
      const InstId drv = nl.net(nid).driver;
      if (drv < 0 || !residue.count(drv)) continue;
      nl.quarantinePin(id, pin);
      sink.warn(DiagCode::kLintLoopBroken,
                "combinational loop broken at input pin " +
                    std::to_string(pin) + " (driven by " +
                    nl.instance(drv).name +
                    "); pessimistic borrowed arrival will be used",
                inst.name);
      return true;
    }
  }
  return false;
}

}  // namespace

LintReport lintNetlist(Netlist& nl, DiagnosticSink& sink,
                       const LintOptions& opt) {
  LintReport rep;

  if (opt.quarantineDanglingPins) {
    for (InstId id = 0; id < nl.instanceCount(); ++id) {
      const Instance& inst = nl.instance(id);
      for (int pin = 0; pin < static_cast<int>(inst.fanin.size()); ++pin) {
        if (nl.isPinQuarantined(id, pin)) continue;
        const NetId nid = inst.fanin[pin];
        const bool floating = nid < 0;
        const bool undriven =
            nid >= 0 && nl.net(nid).driver < 0 && nl.net(nid).driverPort < 0;
        if (!floating && !undriven) continue;
        nl.quarantinePin(id, pin);
        ++rep.danglingPinsQuarantined;
        sink.warn(DiagCode::kLintDanglingPinQuarantined,
                  std::string(floating ? "floating" : "undriven") +
                      " input pin " + std::to_string(pin) +
                      " quarantined; pessimistic borrowed arrival will be "
                      "used",
                  inst.name);
      }
    }
  }

  if (opt.flagDegenerateNets) {
    for (NetId n = 0; n < nl.netCount(); ++n) {
      const Net& net = nl.net(n);
      if (net.driver < 0 && net.driverPort < 0 &&
          (!net.sinks.empty() || net.loadPort >= 0)) {
        ++rep.undrivenNets;
        sink.note(DiagCode::kNetUndrivenNet, "net has loads but no driver",
                  net.name);
      }
      if (net.sinks.empty() && net.loadPort < 0 &&
          (net.driver >= 0 || net.driverPort >= 0)) {
        ++rep.unloadedNets;
        sink.note(DiagCode::kNetUnloadedNet, "net drives nothing", net.name);
      }
    }
  }

  if (opt.breakLoops) {
    // Repeated Kahn residue: each failed topo sort identifies the set of
    // instances stuck behind a cycle; cut one in-cycle edge and retry.
    // Each cut removes an edge, so this terminates.
    std::vector<InstId> order;
    while (!nl.tryTopoOrder(&order)) {
      std::set<InstId> residue;
      for (InstId id = 0; id < nl.instanceCount(); ++id) residue.insert(id);
      for (InstId id : order) residue.erase(id);
      if (!breakOneLoopEdge(nl, residue, sink)) {
        sink.error(DiagCode::kNetCombLoop,
                   "cycle detected but no breakable edge found", {});
        break;
      }
      ++rep.loopsBroken;
    }
  }

  return rep;
}

namespace {

/// Replace NaN/Inf entries with the table's max finite value and enforce
/// monotone non-decreasing values along the load (y) axis via running max.
/// Returns {nonFiniteRepaired, clamped?}.
std::pair<int, bool> repairTable(Table2D& t, bool monotoneLoad) {
  if (t.empty()) return {0, false};
  const std::size_t nx = t.xAxis().size(), ny = t.yAxis().size();
  int repaired = 0;
  double maxFinite = 0.0;
  for (std::size_t i = 0; i < nx; ++i)
    for (std::size_t j = 0; j < ny; ++j)
      if (std::isfinite(t.at(i, j)) && t.at(i, j) > maxFinite)
        maxFinite = t.at(i, j);
  for (std::size_t i = 0; i < nx; ++i)
    for (std::size_t j = 0; j < ny; ++j)
      if (!std::isfinite(t.at(i, j))) {
        t.at(i, j) = maxFinite;
        ++repaired;
      }
  bool clamped = false;
  if (monotoneLoad) {
    for (std::size_t i = 0; i < nx; ++i) {
      double run = t.at(i, 0);
      for (std::size_t j = 1; j < ny; ++j) {
        if (t.at(i, j) < run) {
          t.at(i, j) = run;
          clamped = true;
        } else {
          run = t.at(i, j);
        }
      }
    }
  }
  return {repaired, clamped};
}

}  // namespace

LibraryLintReport lintLibrary(Library& lib, DiagnosticSink& sink) {
  LibraryLintReport rep;
  for (int ci = 0; ci < lib.cellCount(); ++ci) {
    Cell& c = lib.mutableCell(ci);
    auto repairSurface = [&](NldmSurface& s, const char* what) {
      // Delay grows with load; output slew does too. LVF sigmas are not
      // required to be monotone, so they only get the NaN repair.
      for (Table2D* t : {&s.delay, &s.slew}) {
        const auto [repaired, clamped] = repairTable(*t, true);
        if (repaired) {
          rep.nonFiniteEntriesRepaired += repaired;
          sink.warn(DiagCode::kLintNonFiniteTable,
                    std::to_string(repaired) +
                        " non-finite entries replaced in " + what + " table",
                    c.name);
        }
        if (clamped) {
          ++rep.tablesClamped;
          sink.warn(DiagCode::kLintNonMonotoneTable,
                    std::string(what) +
                        " table non-monotone along load axis; clamped to "
                        "running max",
                    c.name);
        }
      }
    };
    auto repairLvf = [&](LvfSurface& s, const char* what) {
      for (Table2D* t : {&s.sigmaEarly, &s.sigmaLate}) {
        const auto [repaired, clamped] = repairTable(*t, false);
        (void)clamped;
        if (repaired) {
          rep.nonFiniteEntriesRepaired += repaired;
          sink.warn(DiagCode::kLintNonFiniteTable,
                    std::to_string(repaired) +
                        " non-finite entries replaced in " + what +
                        " LVF table",
                    c.name);
        }
      }
    };
    for (TimingArc& a : c.arcs) {
      repairSurface(a.rise, "rise");
      repairSurface(a.fall, "fall");
      repairLvf(a.riseLvf, "rise");
      repairLvf(a.fallLvf, "fall");
    }
    if (c.flop) {
      repairSurface(c.flop->c2qRise, "c2q rise");
      repairSurface(c.flop->c2qFall, "c2q fall");
    }
  }
  return rep;
}

}  // namespace tc
