#include "sta/mis.h"

#include <algorithm>

#include "util/trace.h"

namespace tc {

std::vector<MisOverlap> MisAnalyzer::findOverlaps() const {
  std::vector<MisOverlap> out;
  const Netlist& nl = eng_->netlist();
  const TimingGraph& g = eng_->graph();
  for (InstId i = 0; i < nl.instanceCount(); ++i) {
    const Cell& cell = eng_->delayCalc().cellOf(i);
    if (cell.isSequential || cell.numInputs < 2) continue;
    if (cell.mis.parallelFactor == 1.0 && cell.mis.seriesFactor == 1.0)
      continue;
    // Switching window of each input: [earliest possible, latest + slew].
    struct Window {
      double lo = 0.0, hi = 0.0;
      bool valid = false;
    };
    std::vector<Window> win(static_cast<std::size_t>(cell.numInputs));
    for (int pin = 0; pin < cell.numInputs; ++pin) {
      const VertexId v = g.inputVertex(i, pin);
      const double early = eng_->arrivalKey(v, Mode::kEarly);
      const double late = eng_->arrivalKey(v, Mode::kLate);
      if (late == kNoTime || early == std::numeric_limits<double>::infinity())
        continue;
      auto& w = win[static_cast<std::size_t>(pin)];
      w.lo = early;
      w.hi = late + eng_->slewAt(v, Mode::kLate);
      w.valid = true;
    }
    for (int a = 0; a < cell.numInputs; ++a) {
      for (int b = a + 1; b < cell.numInputs; ++b) {
        const auto& wa = win[static_cast<std::size_t>(a)];
        const auto& wb = win[static_cast<std::size_t>(b)];
        if (!wa.valid || !wb.valid) continue;
        const double lo = std::max(wa.lo, wb.lo);
        const double hi = std::min(wa.hi, wb.hi);
        if (hi > lo) out.push_back({i, a, b, hi - lo});
      }
    }
  }
  return out;
}

std::vector<MisOverlap> MisAnalyzer::refine() {
  TC_SPAN("mis", "refine");
  const auto overlaps = findOverlaps();
  const Netlist& nl = eng_->netlist();
  std::vector<std::array<double, 2>> late(
      static_cast<std::size_t>(nl.instanceCount()), {1.0, 1.0});
  std::vector<std::array<double, 2>> early = late;
  for (const auto& ov : overlaps) {
    const Cell& cell = eng_->delayCalc().cellOf(ov.inst);
    // Output transition index: 0 = rise, 1 = fall.
    const int parTrans = cell.mis.parallelIsRise ? 0 : 1;
    const int serTrans = 1 - parTrans;
    auto& l = late[static_cast<std::size_t>(ov.inst)];
    auto& e = early[static_cast<std::size_t>(ov.inst)];
    // Signoff-safe application: slow-down hurts setup (late mode), the
    // speed-up hurts hold (early mode).
    l[static_cast<std::size_t>(serTrans)] =
        std::max(l[static_cast<std::size_t>(serTrans)],
                 cell.mis.seriesFactor);
    e[static_cast<std::size_t>(parTrans)] =
        std::min(e[static_cast<std::size_t>(parTrans)],
                 cell.mis.parallelFactor);
  }
  eng_->setMisFactors(std::move(late), std::move(early));
  eng_->run();
  return overlaps;
}

}  // namespace tc
