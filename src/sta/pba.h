#pragma once
/// \file pba.h
/// \brief Path-based analysis (PBA): exact re-evaluation of the paths the
/// graph-based engine found, from single-path retrace up to exhaustive
/// multi-path enumeration with a coverage certificate.
///
/// GBA is pessimistic in three ways PBA removes (paper Sec. 1.3: "pessimism
/// reduction via use of pba has led to overheads in STA turnaround times"):
///  1. worst-slew merging — PBA propagates the actual slew of the traced
///     path instead of the worst slew over all in-edges;
///  2. Elmore wire delay — PBA uses the tighter D2M two-moment metric;
///  3. statistical accumulation — PBA uses the exact path variance instead
///     of the per-vertex worst-case selection.
///
/// The subtlety fixed here is that removing pessimism is *per path*: under
/// exact slews and D2M the worst exact path through an endpoint need not be
/// the GBA-worst path, so retracing only the GBA parent chain is optimistic.
/// PbaAnalyzer therefore enumerates paths per endpoint by deviation
/// branching (Yen/Lawler-style implicit paths: each child path shares a
/// suffix with its parent and deviates at exactly one edge), ordered by an
/// admissible bound built from GBA arc delays. Because every child's bound
/// is <= its parent's, the enumeration can stop with a proof: once the best
/// unexplored bound falls below the worst exact arrival found (minus
/// `epsilon`), no remaining path can matter, and the result carries that
/// certificate. See DESIGN.md "Path-based analysis" for bound semantics.
///
/// The cost is per-path work, which is the paper's runtime-versus-accuracy
/// tradeoff; bench_pba_vs_gba measures both sides and the enumerator's
/// paths-evaluated/pruned counters.

#include <cstdint>
#include <vector>

#include "sta/engine.h"
#include "util/diag.h"

namespace tc {

/// How many paths to evaluate per endpoint, and when to stop.
struct PbaOptions {
  /// Evaluate at most this many paths per endpoint, popped in admissible-
  /// bound order (K-worst methodology). 1 reproduces the classic
  /// single-retrace. Ignored when `exhaustive` is set.
  int maxPaths = 1;
  /// Keep enumerating until the bound certificate closes: every path whose
  /// exact arrival could be within `epsilon` of the worst has been
  /// evaluated, with the pruned frontier's bounds proving it.
  bool exhaustive = false;
  /// Certificate slack (ps): paths provably more than `epsilon` away from
  /// the worst exact arrival may be pruned unevaluated. 0 = exact.
  Ps epsilon = 0.0;
  /// Hard safety valve on heap pops per endpoint; hitting it leaves
  /// `certificate.complete == false` instead of looping on a pathological
  /// graph. Generous: small designs have far fewer paths.
  int enumerationCap = 1 << 20;
};

/// Proof of coverage attached to each endpoint's enumeration.
struct PbaCertificate {
  /// True when every path whose exact arrival could lie within epsilon of
  /// the worst was evaluated: at stop, the best unexplored bound (an upper
  /// bound in late mode / lower bound in early mode on every unexplored
  /// exact arrival) was strictly outside the epsilon band.
  bool complete = false;
  /// Best bound left on the frontier at stop (kNoTime when the frontier
  /// was exhausted — i.e. literally all paths were evaluated).
  Ps frontierBound = kNoTime;
  int pathsEvaluated = 0;
  std::int64_t pathsPruned = 0;  ///< candidates discarded by bound
};

struct PbaResult {
  VertexId endpoint = -1;
  InstId flop = -1;
  Ps gbaSlack = 0.0;
  Ps pbaSlack = 0.0;
  /// Worst (setup) / best (hold) exact derated data arrival over every
  /// evaluated path. kNoTime when no path could be traced.
  Ps exactArrival = kNoTime;
  /// How much worse the GBA-retraced path evaluated than its GBA arrival
  /// (positive = the exact model disagrees with GBA in the pessimistic
  /// direction — a modeling inconsistency that used to be silently clamped
  /// away; now surfaced through the DiagnosticSink).
  Ps retraceGap = 0.0;
  PbaCertificate cert;
  Ps pessimismRemoved() const { return pbaSlack - gbaSlack; }
};

class PbaAnalyzer {
 public:
  explicit PbaAnalyzer(StaEngine& engine) : eng_(&engine) {}

  /// Attach a sink for PBA diagnostics (retrace-worse-than-GBA warnings).
  /// recalcWorst emits them serially after the parallel region, in result
  /// order, so the stream is identical at any pool width.
  void setDiagnosticSink(DiagnosticSink* sink) { sink_ = sink; }

  /// Recalculate one endpoint exactly; the one-argument form is the
  /// classic single-retrace (K=1). Slack semantics (no clamp):
  ///   setup: pbaSlack = gbaSlack + (gbaArrival - worst exact arrival)
  ///   hold:  pbaSlack = gbaSlack + (best exact arrival - gbaArrival)
  /// i.e. pbaSlack is the min over enumerated paths of each path's exact
  /// slack; more paths can only lower it (K-monotone).
  PbaResult recalcEndpoint(const EndpointTiming& ep, Check check) const;
  PbaResult recalcEndpoint(const EndpointTiming& ep, Check check,
                           const PbaOptions& opt) const;

  /// Recalculate the k GBA-worst endpoints (the standard "PBA on the
  /// critical tail" methodology). Results keep endpoint order by GBA slack.
  /// With a pool, endpoints are enumerated concurrently (each endpoint's
  /// heap and prefix cache are task-local and all delay-calc lookups are
  /// warmed reads); the result vector is bit-identical to the serial one.
  std::vector<PbaResult> recalcWorst(int k, Check check,
                                     ThreadPool* pool = nullptr) const;
  std::vector<PbaResult> recalcWorst(int k, Check check, const PbaOptions& opt,
                                     ThreadPool* pool = nullptr) const;

  /// Exact arrival of the GBA-traced path in the scenario's derate domain.
  /// AOCV derates only the accumulated arc delays, not the launch offset.
  Ps pathArrival(VertexId endpoint, Mode mode, int trans) const;

 private:
  struct Bounds;  // per-(vertex,trans) admissible arrival bounds (pba.cpp)
  struct Walk;    // exact forward evaluation state along one path

  Walk startWalk(VertexId v, int trans, Mode mode) const;
  void stepWalk(Walk& w, EdgeId via, int trTo, Mode mode) const;
  Ps finishWalk(const Walk& w, Mode mode) const;
  /// GBA arc bound for pruning: edgeCandidate() with the wire delay
  /// replaced by the D2M metric the exact evaluator uses (wire delay is
  /// slew-independent, so D2M is exact for wires in both modes).
  StaEngine::EdgeCand boundCandidate(EdgeId e, Mode mode, int trIn,
                                     int trOut) const;
  Bounds buildBounds(Mode mode) const;
  PbaResult recalcImpl(const EndpointTiming& ep, Check check,
                       const PbaOptions& opt, const Bounds* bounds) const;
  void emitRetraceWarning(const PbaResult& r) const;

  StaEngine* eng_;
  DiagnosticSink* sink_ = nullptr;
};

}  // namespace tc
