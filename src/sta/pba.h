#pragma once
/// \file pba.h
/// \brief Path-based analysis (PBA): exact recalculation of the worst paths
/// the graph-based engine found.
///
/// GBA is pessimistic in three ways PBA removes (paper Sec. 1.3: "pessimism
/// reduction via use of pba has led to overheads in STA turnaround times"):
///  1. worst-slew merging — PBA propagates the actual slew of the traced
///     path instead of the worst slew over all in-edges;
///  2. Elmore wire delay — PBA uses the tighter D2M two-moment metric;
///  3. statistical accumulation — PBA uses the exact path variance instead
///     of the per-vertex worst-case selection.
/// The cost is per-path work, which is the paper's runtime-versus-accuracy
/// tradeoff; bench_pba_vs_gba measures both sides.

#include <vector>

#include "sta/engine.h"

namespace tc {

struct PbaResult {
  VertexId endpoint = -1;
  InstId flop = -1;
  Ps gbaSlack = 0.0;
  Ps pbaSlack = 0.0;
  Ps pessimismRemoved() const { return pbaSlack - gbaSlack; }
};

class PbaAnalyzer {
 public:
  explicit PbaAnalyzer(StaEngine& engine) : eng_(&engine) {}

  /// Recalculate one endpoint's worst setup (or hold) path exactly.
  PbaResult recalcEndpoint(const EndpointTiming& ep, Check check) const;

  /// Recalculate the k GBA-worst endpoints (the standard "PBA on the
  /// critical tail" methodology). Results keep endpoint order by GBA slack.
  /// With a pool, endpoints are re-analyzed concurrently (each path trace
  /// is independent and all delay-calc lookups are warmed reads); the
  /// result vector is identical to the serial one.
  std::vector<PbaResult> recalcWorst(int k, Check check,
                                     ThreadPool* pool = nullptr) const;

  /// Exact arrival of the traced path in the scenario's derate domain.
  Ps pathArrival(VertexId endpoint, Mode mode, int trans) const;

 private:
  StaEngine* eng_;
};

}  // namespace tc
