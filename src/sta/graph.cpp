#include "sta/graph.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace tc {

TimingGraph::TimingGraph(const Netlist& nl) : nl_(&nl) {
  const int nInst = nl.instanceCount();
  outVtx_.assign(static_cast<std::size_t>(nInst), -1);
  inVtx_.resize(static_cast<std::size_t>(nInst));
  portVtx_.assign(static_cast<std::size_t>(nl.portCount()), -1);

  auto addVertex = [this](Vertex v) -> VertexId {
    vertices_.push_back(v);
    return static_cast<VertexId>(vertices_.size()) - 1;
  };

  // Port vertices.
  for (PortId p = 0; p < nl.portCount(); ++p) {
    Vertex v;
    v.kind = VertexKind::kPort;
    v.port = p;
    portVtx_[static_cast<std::size_t>(p)] = addVertex(v);
  }

  // Cell pin vertices + cell arcs.
  for (InstId i = 0; i < nInst; ++i) {
    const Cell& cell = nl.cellOf(i);
    auto& ins = inVtx_[static_cast<std::size_t>(i)];
    ins.resize(static_cast<std::size_t>(cell.numInputs));
    for (int pin = 0; pin < cell.numInputs; ++pin) {
      Vertex v;
      v.kind = VertexKind::kCellInput;
      v.inst = i;
      v.pin = pin;
      if (cell.isSequential && pin == 0) v.isEndpoint = true;  // D pin
      ins[static_cast<std::size_t>(pin)] = addVertex(v);
    }
    if (nl.instance(i).fanout >= 0) {
      Vertex v;
      v.kind = VertexKind::kCellOutput;
      v.inst = i;
      outVtx_[static_cast<std::size_t>(i)] = addVertex(v);
    }
  }

  auto addEdge = [this](Edge e) {
    edges_.push_back(e);
  };

  for (InstId i = 0; i < nInst; ++i) {
    const Cell& cell = nl.cellOf(i);
    const VertexId out = outVtx_[static_cast<std::size_t>(i)];
    if (out < 0) continue;
    if (cell.isSequential) {
      Edge e;
      e.kind = EdgeKind::kClockToQ;
      e.from = inputVertex(i, 1);  // CK
      e.to = out;
      addEdge(e);
    } else {
      for (int pin = 0; pin < cell.numInputs; ++pin) {
        Edge e;
        e.kind = EdgeKind::kCellArc;
        e.from = inputVertex(i, pin);
        e.to = out;
        e.arcIndex = pin;
        addEdge(e);
      }
    }
  }

  // Net arcs.
  for (NetId n = 0; n < nl.netCount(); ++n) {
    const Net& net = nl.net(n);
    VertexId from = -1;
    if (net.driver >= 0) {
      from = outVtx_[static_cast<std::size_t>(net.driver)];
    } else if (net.driverPort >= 0) {
      from = portVtx_[static_cast<std::size_t>(net.driverPort)];
    }
    if (from < 0) continue;
    for (std::size_t s = 0; s < net.sinks.size(); ++s) {
      // Quarantined pins (lint-broken loops, contained dangling inputs)
      // get no net arc: the engine seeds them with a pessimistic borrowed
      // arrival instead, so the damage stays local to this pin's fanout.
      if (nl.isPinQuarantined(net.sinks[s].inst, net.sinks[s].pin)) continue;
      Edge e;
      e.kind = EdgeKind::kNetArc;
      e.from = from;
      e.to = inputVertex(net.sinks[s].inst, net.sinks[s].pin);
      e.net = n;
      e.sinkIndex = static_cast<int>(s);
      addEdge(e);
    }
    if (net.loadPort >= 0) {
      Edge e;
      e.kind = EdgeKind::kNetArc;
      e.from = from;
      e.to = portVtx_[static_cast<std::size_t>(net.loadPort)];
      e.net = n;
      e.sinkIndex = -1;
      addEdge(e);
    }
  }

  buildCsr();
  markClockNetwork();
  computeTopo();

  for (VertexId v = 0; v < vertexCount(); ++v) {
    const Vertex& vx = vertices_[static_cast<std::size_t>(v)];
    if (vx.isEndpoint) endpoints_.push_back(v);
    if (vx.kind == VertexKind::kPort && !nl.port(vx.port).isInput &&
        !vx.onClockNetwork)
      endpoints_.push_back(v);
    if (vx.kind == VertexKind::kCellInput && vx.pin == 1 &&
        nl.isSequential(vx.inst))
      clockPins_.push_back(v);
  }
}

void TimingGraph::buildCsr() {
  // Counting sort of edge ids by endpoint. Filling in ascending edge-id
  // order reproduces exactly the per-vertex order the old push_back loop
  // produced, so adjacency iteration order (and with it every downstream
  // deterministic result) is unchanged.
  const std::size_t nv = vertices_.size();
  outStart_.assign(nv + 1, 0);
  inStart_.assign(nv + 1, 0);
  for (const Edge& e : edges_) {
    ++outStart_[static_cast<std::size_t>(e.from) + 1];
    ++inStart_[static_cast<std::size_t>(e.to) + 1];
  }
  for (std::size_t i = 0; i < nv; ++i) {
    outStart_[i + 1] += outStart_[i];
    inStart_[i + 1] += inStart_[i];
  }
  outCsr_.resize(edges_.size());
  inCsr_.resize(edges_.size());
  std::vector<std::size_t> outFill(outStart_.begin(), outStart_.end() - 1);
  std::vector<std::size_t> inFill(inStart_.begin(), inStart_.end() - 1);
  for (EdgeId e = 0; e < edgeCount(); ++e) {
    const Edge& ed = edges_[static_cast<std::size_t>(e)];
    outCsr_[outFill[static_cast<std::size_t>(ed.from)]++] = e;
    inCsr_[inFill[static_cast<std::size_t>(ed.to)]++] = e;
  }
}

void TimingGraph::markClockNetwork() {
  std::queue<VertexId> q;
  for (const auto& c : nl_->clocks()) {
    const VertexId v = portVtx_[static_cast<std::size_t>(c.port)];
    vertices_[static_cast<std::size_t>(v)].onClockNetwork = true;
    q.push(v);
  }
  while (!q.empty()) {
    const VertexId u = q.front();
    q.pop();
    for (EdgeId e : outEdges(u)) {
      const Edge& ed = edges_[static_cast<std::size_t>(e)];
      // The clock network stops at flop CK pins (the CK->Q arc launches
      // *data*), and does not cross sequential elements.
      if (ed.kind == EdgeKind::kClockToQ) continue;
      Vertex& to = vertices_[static_cast<std::size_t>(ed.to)];
      if (to.onClockNetwork) continue;
      to.onClockNetwork = true;
      // Stop spreading past a flop CK pin.
      if (to.kind == VertexKind::kCellInput && to.inst >= 0 &&
          nl_->isSequential(to.inst))
        continue;
      q.push(ed.to);
    }
  }
}

void TimingGraph::computeTopo() {
  std::vector<int> indeg(vertices_.size(), 0);
  for (const Edge& e : edges_)
    ++indeg[static_cast<std::size_t>(e.to)];
  std::queue<VertexId> q;
  for (VertexId v = 0; v < vertexCount(); ++v)
    if (indeg[static_cast<std::size_t>(v)] == 0) q.push(v);
  topo_.reserve(vertices_.size());
  while (!q.empty()) {
    const VertexId u = q.front();
    q.pop();
    topo_.push_back(u);
    for (EdgeId e : outEdges(u)) {
      const Edge& ed = edges_[static_cast<std::size_t>(e)];
      if (--indeg[static_cast<std::size_t>(ed.to)] == 0) q.push(ed.to);
    }
  }
  if (topo_.size() != vertices_.size())
    throw std::logic_error("timing graph has a cycle");

  // Longest-path levels over the topo order. Walking topo_ (not vertex ids)
  // keeps each level's vertices in topo-order, so per-level iteration is a
  // refinement of the serial order.
  topoPos_.assign(vertices_.size(), 0);
  for (std::size_t i = 0; i < topo_.size(); ++i)
    topoPos_[static_cast<std::size_t>(topo_[i])] = static_cast<int>(i);
  levelOf_.assign(vertices_.size(), 0);
  int maxLevel = 0;
  for (VertexId v : topo_) {
    int lvl = 0;
    for (EdgeId e : inEdges(v)) {
      const Edge& ed = edges_[static_cast<std::size_t>(e)];
      lvl = std::max(lvl, levelOf_[static_cast<std::size_t>(ed.from)] + 1);
    }
    levelOf_[static_cast<std::size_t>(v)] = lvl;
    maxLevel = std::max(maxLevel, lvl);
  }
  // Concatenated level order + slot assignment (counting sort by level,
  // filled in topo order so each level's segment stays in topo order).
  levelStart_.assign(static_cast<std::size_t>(maxLevel) + 2, 0);
  for (VertexId v : topo_)
    ++levelStart_[static_cast<std::size_t>(levelOf_[static_cast<std::size_t>(v)]) + 1];
  for (std::size_t l = 0; l + 1 < levelStart_.size(); ++l)
    levelStart_[l + 1] += levelStart_[l];
  levelOrder_.resize(vertices_.size());
  slotOf_.assign(vertices_.size(), 0);
  std::vector<std::size_t> fill(levelStart_.begin(), levelStart_.end() - 1);
  for (VertexId v : topo_) {
    const auto lvl = static_cast<std::size_t>(levelOf_[static_cast<std::size_t>(v)]);
    const std::size_t slot = fill[lvl]++;
    levelOrder_[slot] = v;
    slotOf_[static_cast<std::size_t>(v)] = static_cast<int>(slot);
  }
}

}  // namespace tc
