#include "sta/si.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace tc {

namespace {

struct NetGeom {
  NetId net = -1;
  Um x0 = 0, y0 = 0, x1 = 0, y1 = 0;  ///< route bounding box
  int layer = 3;
  Um span = 0.0;
  bool valid = false;
};

NetGeom geometryOf(const Netlist& nl, const DelayCalculator& dc, NetId n) {
  NetGeom g;
  g.net = n;
  const Net& net = nl.net(n);
  if (net.driver < 0 || nl.instance(net.driver).row < 0) return g;
  const Instance& drv = nl.instance(net.driver);
  g.x0 = g.x1 = drv.x;
  g.y0 = g.y1 = drv.y;
  for (const auto& s : net.sinks) {
    const Instance& si = nl.instance(s.inst);
    g.x0 = std::min(g.x0, si.x);
    g.x1 = std::max(g.x1, si.x);
    g.y0 = std::min(g.y0, si.y);
    g.y1 = std::max(g.y1, si.y);
  }
  g.layer = dc.parasitics(n).layer;
  g.span = (g.x1 - g.x0) + (g.y1 - g.y0);
  g.valid = true;
  return g;
}

/// Half-perimeter of the bbox intersection (shared corridor estimate).
Um overlapSpan(const NetGeom& a, const NetGeom& b) {
  const Um ox = std::min(a.x1, b.x1) - std::max(a.x0, b.x0);
  const Um oy = std::min(a.y1, b.y1) - std::max(a.y0, b.y0);
  if (ox < 0.0 || oy < 0.0) return 0.0;
  return ox + oy;
}

struct Window {
  double lo = 0.0, hi = 0.0;
  bool valid = false;
};

Window switchingWindow(const StaEngine& eng, NetId n) {
  Window w;
  const Net& net = eng.netlist().net(n);
  VertexId v = -1;
  if (net.driver >= 0)
    v = eng.graph().outputVertex(net.driver);
  else if (net.driverPort >= 0)
    v = eng.graph().portVertex(net.driverPort);
  if (v < 0) return w;
  const double early = eng.arrivalKey(v, Mode::kEarly);
  const double late = eng.arrivalKey(v, Mode::kLate);
  if (late == kNoTime || !std::isfinite(early)) return w;
  w.lo = early;
  w.hi = late + eng.slewAt(v, Mode::kLate);
  w.valid = true;
  return w;
}

}  // namespace

SiSummary SiAnalyzer::analyze() const {
  SiSummary out;
  const Netlist& nl = eng_->netlist();
  DelayCalculator& dc = eng_->delayCalc();
  const BeolStack& stack = dc.extractor().stack();

  // --- geometry + coarse spatial binning ------------------------------------
  std::vector<NetGeom> geoms;
  geoms.reserve(static_cast<std::size_t>(nl.netCount()));
  for (NetId n = 0; n < nl.netCount(); ++n)
    geoms.push_back(geometryOf(nl, dc, n));

  constexpr Um kBin = 40.0;
  std::map<std::pair<int, int>, std::vector<int>> bins;
  for (int i = 0; i < static_cast<int>(geoms.size()); ++i) {
    const NetGeom& g = geoms[static_cast<std::size_t>(i)];
    if (!g.valid) continue;
    for (int bx = static_cast<int>(g.x0 / kBin);
         bx <= static_cast<int>(g.x1 / kBin); ++bx)
      for (int by = static_cast<int>(g.y0 / kBin);
           by <= static_cast<int>(g.y1 / kBin); ++by)
        bins[{bx, by}].push_back(i);
  }

  // --- per-victim analysis ----------------------------------------------------
  std::vector<Window> windows(static_cast<std::size_t>(nl.netCount()));
  for (NetId n = 0; n < nl.netCount(); ++n)
    windows[static_cast<std::size_t>(n)] = switchingWindow(*eng_, n);

  for (NetId n = 0; n < nl.netCount(); ++n) {
    const NetGeom& g = geoms[static_cast<std::size_t>(n)];
    if (!g.valid || g.span < 1.0) continue;
    const NetParasitics& p = dc.parasitics(n);
    const WireLayer& layer = stack.layer(p.layer);
    // Coupling component as the extractor sees it: layer cc scaled by the
    // BEOL corner and the net's routing rule (a 2W2S NDR sheds coupling).
    const Net& netRef = nl.net(n);
    const NdrRule& ndr = ndrRules()[static_cast<std::size_t>(
        std::min<int>(netRef.ndrClass,
                      static_cast<int>(ndrRules().size()) - 1))];
    const double ccScale =
        tightenedScales(eng_->scenario().beol,
                        eng_->scenario().tightenSigma)
            .cc *
        ndr.ccScale;
    const Ff ccTotal = layer.ccPerUm * ccScale * p.wirelength;
    const double ratio = p.totalCap > 0 ? ccTotal / p.totalCap : 0.0;
    if (ratio < opt_.minCouplingRatio) continue;

    SiVictim v;
    v.net = n;
    v.couplingCap = ccTotal;
    v.couplingRatio = ratio;

    // Candidate aggressors from the victim's bins.
    std::vector<int> cands;
    for (int bx = static_cast<int>(g.x0 / kBin);
         bx <= static_cast<int>(g.x1 / kBin); ++bx)
      for (int by = static_cast<int>(g.y0 / kBin);
           by <= static_cast<int>(g.y1 / kBin); ++by) {
        auto it = bins.find({bx, by});
        if (it == bins.end()) continue;
        cands.insert(cands.end(), it->second.begin(), it->second.end());
      }
    std::sort(cands.begin(), cands.end());
    cands.erase(std::unique(cands.begin(), cands.end()), cands.end());

    Ff ccTimed = 0.0;  ///< coupling to aggressors that can switch with us
    double totalWeight = 0.0;
    for (int a : cands) {
      if (a == n) continue;
      const NetGeom& ag = geoms[static_cast<std::size_t>(a)];
      if (!ag.valid || ag.layer != g.layer) continue;
      const Um ov = overlapSpan(g, ag);
      if (ov < opt_.minOverlapFraction * g.span) continue;
      ++v.aggressors;
      const double weight = ov / g.span;
      totalWeight += weight;
      const Window& wv = windows[static_cast<std::size_t>(n)];
      const Window& wa = windows[static_cast<std::size_t>(a)];
      if (wv.valid && wa.valid) {
        const double lo = std::max(wv.lo, wa.lo);
        const double hi = std::min(wv.hi, wa.hi);
        if (hi > lo) {
          ++v.timedAggressors;
          // Temporal alignment probability: the aggressor only hurts when
          // it actually switches inside the victim's transition, so scale
          // its coupling share by overlap / union (the binary all-timed
          // assumption is the "infinite window" pessimism real SI flows
          // fight with clock-cycle windowing).
          const double unionLen = std::max(wv.hi, wa.hi) -
                                  std::min(wv.lo, wa.lo);
          const double align = unionLen > 0 ? (hi - lo) / unionLen : 0.0;
          ccTimed += weight * align;
        }
      }
    }
    if (totalWeight > 0.0) ccTimed = ccTotal * ccTimed / totalWeight;

    // Delta delay: wire delay scales with effective cap; a timed opposing
    // aggressor Millers its coupling share up to `opposingMiller`, a
    // same-direction one removes it.
    Ps baseWire = 0.0;
    for (int node : p.sinkNode)
      baseWire = std::max(baseWire, p.tree.elmore(node));
    if (p.totalCap > 0.0) {
      v.deltaDelayLate = baseWire * ccTimed *
                         (opt_.opposingMiller - opt_.quietMiller) /
                         p.totalCap;
      v.deltaDelayEarly =
          baseWire * ccTimed * opt_.quietMiller / p.totalCap;
    }
    // Glitch on the quiet victim: charge injection from all timed
    // aggressors.
    v.glitchPeakFrac = p.totalCap > 0 ? ccTimed / p.totalCap : 0.0;
    v.glitchViolation = v.glitchPeakFrac > opt_.noiseMarginFrac;
    if (v.glitchViolation) ++out.glitchViolations;
    out.worstDeltaDelay = std::max(out.worstDeltaDelay, v.deltaDelayLate);
    out.victims.push_back(v);
  }

  std::sort(out.victims.begin(), out.victims.end(),
            [](const SiVictim& a, const SiVictim& b) {
              return a.deltaDelayLate > b.deltaDelayLate;
            });
  out.setupWnsAfter = eng_->wns(Check::kSetup);
  out.holdWnsAfter = eng_->wns(Check::kHold);
  return out;
}

SiSummary SiAnalyzer::refine() {
  SiSummary s = analyze();
  Netlist& nl = const_cast<Netlist&>(eng_->netlist());
  for (const auto& v : s.victims) {
    if (v.timedAggressors == 0) continue;
    // Effective Miller factor: the timed coupling share switches opposite.
    // glitchPeakFrac == ccTimed/totalCap and couplingRatio == ccTotal/
    // totalCap, so their ratio recovers the timed fraction of the coupling.
    const double timedShare =
        v.couplingRatio > 0.0
            ? std::min(1.0, v.glitchPeakFrac / v.couplingRatio)
            : 0.0;
    nl.setMillerOverride(v.net, opt_.quietMiller + timedShare *
                                    (opt_.opposingMiller - opt_.quietMiller));
  }
  eng_->delayCalc().invalidateAll();
  eng_->run();
  s.setupWnsAfter = eng_->wns(Check::kSetup);
  s.holdWnsAfter = eng_->wns(Check::kHold);
  return s;
}

}  // namespace tc
