#pragma once
/// \file delay_calc.h
/// \brief Arc delay calculation: NLDM cell lookups against effective
/// capacitance, Elmore/D2M wire delays, PERI slew degradation, and LVF/POCV
/// sigma retrieval. Shared by the GBA engine, the PBA recalculator and the
/// Monte Carlo sampler.

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "interconnect/extract.h"
#include "network/netlist.h"
#include "sta/scenario.h"
#include "util/thread_pool.h"

namespace tc {

class DelayCalculator {
 public:
  DelayCalculator(const Netlist& nl, const Scenario& sc);

  /// Cached parasitics for a net (extracted on first use).
  const NetParasitics& parasitics(NetId net) const;
  /// Drop the cache entry (netlist edited by ECO/optimizer).
  void invalidateNet(NetId net);
  void invalidateAll();

  /// Extract every net now (optionally fanned out across `pool`), including
  /// the RC-tree moment analysis. The lazy fill in parasitics() is not
  /// thread-safe — a parallel engine pass must warm the cache first so all
  /// later lookups are pure reads. Extraction is deterministic per net, so
  /// a warmed cache is bit-identical to a lazily-filled one.
  void warmCache(ThreadPool* pool = nullptr);

  struct ArcResult {
    Ps delay = 0.0;
    Ps outSlew = 0.0;
    Ps sigmaEarly = 0.0;  ///< 1-sigma local-variation decrease
    Ps sigmaLate = 0.0;   ///< 1-sigma local-variation increase
  };

  /// Combinational arc `arcIndex` of `inst`, producing the given output
  /// transition, with the given input slew. Load = ceff of the fanout net.
  ArcResult cellArc(InstId inst, int arcIndex, bool outRise, Ps inSlew) const;

  /// Flop CK->Q launch arc.
  ArcResult clockToQ(InstId flop, bool qRise, Ps ckSlew) const;

  /// One pre-gathered NLDM table evaluation: the (surface, input slew,
  /// load) triple cellArc()/clockToQ() would hand Table2D::lookup. `lvf`
  /// null skips the sigma lookups (their results would go unconsumed).
  struct NldmRequest {
    const NldmSurface* surf = nullptr;
    const LvfSurface* lvf = nullptr;
    Ps inSlew = 0.0;
    Ff load = 0.0;
    /// True when every table of the request shares one (slew, load) grid
    /// with both axis sizes >= 2 (the engine's edge plans verify this per
    /// arc): evalNldmBatch then resolves the axis segments once and runs
    /// the identical bilinear tail per table — bit-identical results,
    /// minus the redundant per-table binary searches.
    bool fusedAxes = false;
  };
  /// Evaluate a gathered batch of requests into `out` (same length). Each
  /// out[i] is bit-identical to the corresponding scalar cellArc()/
  /// clockToQ() raw table result: the loop body is the same
  /// Table2D::lookup calls on the same inputs, just over contiguous
  /// request/result arrays so the engine's level sweep evaluates a whole
  /// level's tables in one pass (the c2q ratio-sigma and MIS/derate
  /// factors are applied by the caller, as the scalar paths do after
  /// their lookups).
  void evalNldmBatch(const NldmRequest* reqs, std::size_t n,
                     ArcResult* out) const;

  struct WireResult {
    Ps delay = 0.0;
    Ps outSlew = 0.0;
  };
  /// Wire delay/slew from a net's driver to one sink. `useD2m` selects the
  /// tighter two-moment metric (PBA); Elmore otherwise (conservative GBA).
  WireResult wire(NetId net, int sinkIndex, Ps slewIn,
                  bool useD2m = false) const;

  /// Effective load the driver of `net` sees.
  Ff driverLoad(NetId net, Ps driverSlewGuess) const;

  /// Per-net driver-load summary copied out of the analyzed RC tree, so
  /// the serial level sweeps resolve effective capacitance from one flat
  /// array instead of chasing the parasitics cache (optional deref + hit
  /// counter) per candidate. The stored words are the exact doubles
  /// RcTree::effectiveCap() derives per call, and flatLoad() repeats its
  /// arithmetic — results are bit-identical.
  struct FlatLoad {
    Ff cNear = 0.0;         ///< grounded cap at the root node
    Ff cFar = 0.0;          ///< cTotal - cNear
    Ff cTotal = 0.0;        ///< analyzed total cap
    double twoMaxM1 = 0.0;  ///< 2 * max branch first moment
  };
  /// (Re)build the flat load table if any net was invalidated since the
  /// last build (serial; fills the rc cache via warmCache()). Extraction
  /// is deterministic per net, so warming is bit-neutral.
  void warmFlat();
  bool flatValid() const {
    return flatValid_ &&
           flatLoads_.size() == static_cast<std::size_t>(nl_->netCount());
  }
  /// The raw summary words of one net (valid only while flatValid(); the
  /// engine copies them into its per-edge plans).
  const FlatLoad& flatWords(NetId net) const {
    return flatLoads_[static_cast<std::size_t>(net)];
  }
  /// RcTree::effectiveCap() replayed from the flat summary.
  Ff flatLoad(NetId net, Ps driverSlew) const {
    const FlatLoad& f = flatLoads_[static_cast<std::size_t>(net)];
    if (f.cFar <= 0.0) return f.cTotal;
    const double shield =
        f.twoMaxM1 / (f.twoMaxM1 + std::max(driverSlew, 1.0));
    return f.cNear + f.cFar * (1.0 - 0.5 * shield);
  }

  /// Setup/hold constraint values for a flop (conventional scalars).
  Ps setupTime(InstId flop) const;
  Ps holdTime(InstId flop) const;

  /// The instance's cell as characterized at THIS scenario's PVT. The
  /// netlist's reference library defines identity (names/footprints); the
  /// scenario library supplies the timing view — the "lib group" structure
  /// of MCMM signoff. Cell ordering across libraries is verified once at
  /// construction.
  const Cell& cellOf(InstId inst) const {
    return sc_->lib->cell(nl_->instance(inst).cellIndex);
  }

  const Scenario& scenario() const { return *sc_; }
  const Netlist& netlist() const { return *nl_; }
  const Extractor& extractor() const { return extractor_; }

 private:
  const Netlist* nl_;
  const Scenario* sc_;
  Extractor extractor_;
  ExtractionOptions extOpt_;
  mutable std::vector<std::optional<NetParasitics>> cache_;
  std::vector<FlatLoad> flatLoads_;
  bool flatValid_ = false;
};

}  // namespace tc
