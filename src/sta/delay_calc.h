#pragma once
/// \file delay_calc.h
/// \brief Arc delay calculation: NLDM cell lookups against effective
/// capacitance, Elmore/D2M wire delays, PERI slew degradation, and LVF/POCV
/// sigma retrieval. Shared by the GBA engine, the PBA recalculator and the
/// Monte Carlo sampler.

#include <memory>
#include <optional>
#include <vector>

#include "interconnect/extract.h"
#include "network/netlist.h"
#include "sta/scenario.h"
#include "util/thread_pool.h"

namespace tc {

class DelayCalculator {
 public:
  DelayCalculator(const Netlist& nl, const Scenario& sc);

  /// Cached parasitics for a net (extracted on first use).
  const NetParasitics& parasitics(NetId net) const;
  /// Drop the cache entry (netlist edited by ECO/optimizer).
  void invalidateNet(NetId net);
  void invalidateAll();

  /// Extract every net now (optionally fanned out across `pool`), including
  /// the RC-tree moment analysis. The lazy fill in parasitics() is not
  /// thread-safe — a parallel engine pass must warm the cache first so all
  /// later lookups are pure reads. Extraction is deterministic per net, so
  /// a warmed cache is bit-identical to a lazily-filled one.
  void warmCache(ThreadPool* pool = nullptr);

  struct ArcResult {
    Ps delay = 0.0;
    Ps outSlew = 0.0;
    Ps sigmaEarly = 0.0;  ///< 1-sigma local-variation decrease
    Ps sigmaLate = 0.0;   ///< 1-sigma local-variation increase
  };

  /// Combinational arc `arcIndex` of `inst`, producing the given output
  /// transition, with the given input slew. Load = ceff of the fanout net.
  ArcResult cellArc(InstId inst, int arcIndex, bool outRise, Ps inSlew) const;

  /// Flop CK->Q launch arc.
  ArcResult clockToQ(InstId flop, bool qRise, Ps ckSlew) const;

  struct WireResult {
    Ps delay = 0.0;
    Ps outSlew = 0.0;
  };
  /// Wire delay/slew from a net's driver to one sink. `useD2m` selects the
  /// tighter two-moment metric (PBA); Elmore otherwise (conservative GBA).
  WireResult wire(NetId net, int sinkIndex, Ps slewIn,
                  bool useD2m = false) const;

  /// Effective load the driver of `net` sees.
  Ff driverLoad(NetId net, Ps driverSlewGuess) const;

  /// Setup/hold constraint values for a flop (conventional scalars).
  Ps setupTime(InstId flop) const;
  Ps holdTime(InstId flop) const;

  /// The instance's cell as characterized at THIS scenario's PVT. The
  /// netlist's reference library defines identity (names/footprints); the
  /// scenario library supplies the timing view — the "lib group" structure
  /// of MCMM signoff. Cell ordering across libraries is verified once at
  /// construction.
  const Cell& cellOf(InstId inst) const {
    return sc_->lib->cell(nl_->instance(inst).cellIndex);
  }

  const Scenario& scenario() const { return *sc_; }
  const Netlist& netlist() const { return *nl_; }
  const Extractor& extractor() const { return extractor_; }

 private:
  const Netlist* nl_;
  const Scenario* sc_;
  Extractor extractor_;
  ExtractionOptions extOpt_;
  mutable std::vector<std::optional<NetParasitics>> cache_;
};

}  // namespace tc
