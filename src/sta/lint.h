#pragma once
/// \file lint.h
/// \brief Design linter and graceful-degradation pass.
///
/// Production STA never gets a perfect database: netlists arrive with
/// combinational loops, floating pins, and libraries with characterization
/// glitches. Commercial signoff tools degrade locally — break the loop,
/// pessimize the bad pin, clamp the bad table — and keep timing the other
/// 99.9% of the design. This pass is that front door: run it before (or
/// let StaEngine run it inside) timing so one bad net degrades one
/// endpoint, not the whole run.
///
/// Degradation contract (bounded pessimism): every repair is conservative.
/// Quarantined pins receive a borrowed pessimistic arrival from the engine
/// (late = clock period, early = 0), clamped tables only move delays up.
/// Degraded WNS <= clean WNS, always.

#include "network/netlist.h"
#include "liberty/library.h"
#include "util/diag.h"

namespace tc {

struct LintOptions {
  bool breakLoops = true;             ///< cut combinational cycles
  bool quarantineDanglingPins = true; ///< contain floating inputs
  bool flagDegenerateNets = true;     ///< note undriven / unloaded nets
};

struct LintReport {
  int loopsBroken = 0;             ///< edges cut to make the graph a DAG
  int danglingPinsQuarantined = 0; ///< floating or undriven-net sink pins
  int undrivenNets = 0;
  int unloadedNets = 0;

  bool clean() const {
    return loopsBroken == 0 && danglingPinsQuarantined == 0 &&
           undrivenNets == 0 && unloadedNets == 0;
  }
};

/// Lint and repair a netlist in place. Mutations are limited to pin
/// quarantine (see Netlist::quarantinePin) — connectivity is never edited,
/// so writers still see the original design. Every repair is reported to
/// `sink` as a warning with the instance/net name.
LintReport lintNetlist(Netlist& nl, DiagnosticSink& sink,
                       const LintOptions& opt = {});

struct LibraryLintReport {
  int nonFiniteEntriesRepaired = 0; ///< NaN/Inf table cells replaced
  int tablesClamped = 0;            ///< tables made monotone along load
};

/// Lint and repair a characterized library in place: NaN/Inf table entries
/// are replaced with the table's max finite value (pessimistic), and delay
/// surfaces that decrease with increasing load — characterization noise —
/// are clamped to a running max along the load axis. Both repairs only
/// move delays up, preserving the bounded-pessimism contract.
LibraryLintReport lintLibrary(Library& lib, DiagnosticSink& sink);

}  // namespace tc
