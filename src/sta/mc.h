#pragma once
/// \file mc.h
/// \brief Monte Carlo timing: the framework's "statistical golden" against
/// which the table models (AOCV/POCV/LVF) are judged, exactly as the paper
/// judges them against Monte Carlo SPICE (Fig. 7, Fig. 8).
///
/// A traced critical path is compiled once into a PathModel (per-stage
/// nominal delays, asymmetric local sigmas, wire delays with their layer
/// and cap fractions). Sampling then draws:
///  - one standard-normal per gate stage (local Vt mismatch), mapped
///    through the stage's asymmetric early/late sigma (the piecewise-linear
///    image of the LVF characterization), and
///  - one (R, C) factor pair per metal layer per trial (global BEOL
///    variation, *independent across layers* — the decorrelation that
///    tightened BEOL corners exploit, Sec. 3.2).

#include <vector>

#include "interconnect/wire.h"
#include "sta/engine.h"
#include "util/rng.h"
#include "util/stats.h"

namespace tc {

struct McOptions {
  int samples = 5000;
  std::uint64_t seed = 12345;
  bool sampleGateMismatch = true;
  bool sampleBeolLayers = true;
  /// Sensitivity of a gate's delay to its load change (dDelay/Delay per
  /// dLoad/Load); ~0.6 for NLDM-class cells driving moderate loads.
  double gateLoadSensitivity = 0.6;
};

/// Compiled structural model of one timing path.
struct PathModel {
  struct Stage {
    Ps gateDelay = 0.0;     ///< nominal cell arc delay
    Ps sigmaEarly = 0.0;    ///< local-variation sigmas (asymmetric)
    Ps sigmaLate = 0.0;
    Ps wireDelay = 0.0;     ///< nominal wire delay after this stage
    int layerIdx = 0;       ///< BeolStack layer index of that wire
    double wireCapFrac = 0.0;  ///< wire share of the stage's total load
  };
  std::vector<Stage> stages;
  Ps nominal = 0.0;  ///< sum of all nominal delays

  int depth() const { return static_cast<int>(stages.size()); }
};

class MonteCarloTiming {
 public:
  explicit MonteCarloTiming(StaEngine& engine) : eng_(&engine) {}

  /// Compile the GBA-worst path into `endpoint` (late mode).
  PathModel compilePath(VertexId endpoint, int trans) const;

  /// One sampled path delay.
  Ps sample(const PathModel& path, Rng& rng, const McOptions& opt) const;

  /// Full Monte Carlo run over one path.
  SampleSet run(const PathModel& path, const McOptions& opt) const;

  /// Deterministic path delay with every wire moved to the given
  /// homogeneous BEOL corner (tightened by `kSigma`/3): the Delta-d(Y)
  /// denominator of the Fig. 8 pessimism metric alpha.
  Ps pathDelayAtCorner(const PathModel& path, BeolCorner corner,
                       double kSigma = 3.0,
                       double gateLoadSensitivity = 0.6) const;

 private:
  StaEngine* eng_;
};

}  // namespace tc
