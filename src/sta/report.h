#pragma once
/// \file report.h
/// \brief Human-readable timing reports: summary, path report, slack
/// histogram, and the failure breakdown the Fig. 1 closure loop consumes.

#include <cstdint>
#include <string>
#include <vector>

#include "sta/engine.h"

namespace tc {

/// One-paragraph WNS/TNS/violation summary.
std::string timingSummary(const StaEngine& engine);

/// PrimeTime-style path report for an endpoint's worst setup or hold path.
std::string pathReport(const StaEngine& engine, const EndpointTiming& ep,
                       Check check);

/// The k worst endpoints by slack.
std::vector<EndpointTiming> worstEndpoints(const StaEngine& engine,
                                           Check check, int k);

/// Indices into engine.endpoints() of the k worst endpoints by `check`
/// slack, worst first, ties broken by endpoint index. The deterministic
/// tie-break matters to the serving layer: a query answer must be
/// byte-identical to a fresh batch run's, so "which of two equal-slack
/// endpoints lists first" cannot be left to sort-order whim.
std::vector<int> worstEndpointIndices(const StaEngine& engine, Check check,
                                      int k);

/// Numeric slack histogram bins. The serving layer ships these as JSON;
/// the ASCII slackHistogram() below renders the same binning as text, so
/// the two views can never disagree.
struct SlackHistogramBins {
  double lo = 0.0;        ///< left edge of bin 0 (min slack)
  double binWidth = 0.0;  ///< uniform width
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;
  double min = 0.0, max = 0.0;  ///< observed finite slack range
};
SlackHistogramBins slackHistogramBins(const StaEngine& engine, Check check,
                                      int bins = 12);

/// ASCII slack histogram.
std::string slackHistogram(const StaEngine& engine, Check check,
                           int bins = 12);

/// Failure breakdown by category (the "breakdown of timing failures" step
/// of Fig. 1's loop).
struct FailureBreakdown {
  int setupViolations = 0;
  int holdViolations = 0;
  int maxTransViolations = 0;
  int maxCapViolations = 0;
  Ps setupWns = 0.0, setupTns = 0.0;
  Ps holdWns = 0.0, holdTns = 0.0;

  int total() const {
    return setupViolations + holdViolations + maxTransViolations +
           maxCapViolations;
  }
};
FailureBreakdown breakdown(const StaEngine& engine);

}  // namespace tc
