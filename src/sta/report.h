#pragma once
/// \file report.h
/// \brief Human-readable timing reports: summary, path report, slack
/// histogram, and the failure breakdown the Fig. 1 closure loop consumes.

#include <string>
#include <vector>

#include "sta/engine.h"

namespace tc {

/// One-paragraph WNS/TNS/violation summary.
std::string timingSummary(const StaEngine& engine);

/// PrimeTime-style path report for an endpoint's worst setup or hold path.
std::string pathReport(const StaEngine& engine, const EndpointTiming& ep,
                       Check check);

/// The k worst endpoints by slack.
std::vector<EndpointTiming> worstEndpoints(const StaEngine& engine,
                                           Check check, int k);

/// ASCII slack histogram.
std::string slackHistogram(const StaEngine& engine, Check check,
                           int bins = 12);

/// Failure breakdown by category (the "breakdown of timing failures" step
/// of Fig. 1's loop).
struct FailureBreakdown {
  int setupViolations = 0;
  int holdViolations = 0;
  int maxTransViolations = 0;
  int maxCapViolations = 0;
  Ps setupWns = 0.0, setupTns = 0.0;
  Ps holdWns = 0.0, holdTns = 0.0;

  int total() const {
    return setupViolations + holdViolations + maxTransViolations +
           maxCapViolations;
  }
};
FailureBreakdown breakdown(const StaEngine& engine);

}  // namespace tc
