#include "place/minia.h"

#include <algorithm>
#include <cmath>

namespace tc {

namespace {

/// Violations within a single row's slot list.
void checkRow(const Netlist& nl, const std::vector<RowOccupancy::Slot>& row,
              int rowIdx, int minSites, std::vector<MinIaViolation>& out) {
  std::size_t i = 0;
  while (i < row.size()) {
    // Start a maximal abutted same-Vt run at slot i.
    const VtClass vt = nl.cellOf(row[i].inst).vt;
    std::size_t j = i;
    int width = 0;
    while (j < row.size() && nl.cellOf(row[j].inst).vt == vt &&
           (j == i || row[j - 1].siteHi() == row[j].siteLo)) {
      width += row[j].width;
      ++j;
    }
    // Neighbors: abutted and different Vt on both sides?
    const bool leftAbutDiff =
        i > 0 && row[i - 1].siteHi() == row[i].siteLo &&
        nl.cellOf(row[i - 1].inst).vt != vt;
    const bool rightAbutDiff =
        j < row.size() && row[j - 1].siteHi() == row[j].siteLo &&
        nl.cellOf(row[j].inst).vt != vt;
    if (width < minSites && leftAbutDiff && rightAbutDiff) {
      MinIaViolation v;
      v.row = rowIdx;
      v.siteLo = row[i].siteLo;
      v.widthSites = width;
      v.vt = vt;
      for (std::size_t k = i; k < j; ++k) v.cells.push_back(row[k].inst);
      out.push_back(std::move(v));
    }
    i = j;
  }
}

int violationsInRow(const Netlist& nl, const RowOccupancy& occ, int row,
                    int minSites) {
  std::vector<MinIaViolation> v;
  checkRow(nl, occ.row(row), row, minSites, v);
  return static_cast<int>(v.size());
}

}  // namespace

std::vector<MinIaViolation> checkMinIa(const Netlist& nl,
                                       const RowOccupancy& occ,
                                       int minSites) {
  std::vector<MinIaViolation> out;
  for (int r = 0; r < occ.numRows(); ++r)
    checkRow(nl, occ.row(r), r, minSites, out);
  return out;
}

MinIaFixReport fixMinIa(Netlist& nl, RowOccupancy& occ, const Floorplan& fp,
                        const StaEngine* timing, const MinIaFixConfig& cfg) {
  MinIaFixReport rep;
  rep.violationsBefore =
      static_cast<int>(checkMinIa(nl, occ, cfg.minSites).size());
  const Library& lib = nl.library();

  for (int pass = 0; pass < 3; ++pass) {
    const auto violations = checkMinIa(nl, occ, cfg.minSites);
    if (violations.empty()) break;
    for (const auto& v : violations) {
      if (v.cells.empty()) continue;
      const InstId island = v.cells.front();
      bool fixed = false;

      // 1. Merge by reordering: try swapping the island with a same-width
      // cell nearby in the same row; keep the swap iff the row's violation
      // count drops.
      if (cfg.allowReorder) {
        const auto& row = occ.row(v.row);
        const int before = violationsInRow(nl, occ, v.row, cfg.minSites);
        for (const auto& cand : row) {
          if (cand.inst == island) continue;
          if (cand.width != nl.cellOf(island).widthSites) continue;
          if (std::abs(cand.siteLo - v.siteLo) > cfg.maxDisplacementSites)
            continue;
          occ.swapCells(nl, fp, island, cand.inst);
          const int after = violationsInRow(nl, occ, v.row, cfg.minSites);
          if (after < before) {
            fixed = true;
            ++rep.merges;
            rep.displacementSites += 2.0 * std::abs(cand.siteLo - v.siteLo);
            break;
          }
          occ.swapCells(nl, fp, island, cand.inst);  // revert
        }
      }
      if (fixed) continue;

      // 2. Vt-align: re-swap the island to a neighbor's Vt if slack allows.
      if (cfg.allowVtSwap && v.cells.size() == 1) {
        bool slackOk = true;
        if (timing) {
          const VertexId out = timing->graph().outputVertex(island);
          if (out >= 0) {
            const Ps slack = timing->vertexSlack(out);
            const Cell& cur = nl.cellOf(island);
            // Swapping to higher Vt slows the cell; require headroom.
            slackOk = slack == std::numeric_limits<double>::infinity() ||
                      slack > cfg.vtSwapSlackFloor ||
                      cur.vt > VtClass::kUlvt;  // swapping down is safe-ish
          }
        }
        if (slackOk) {
          // Neighbor Vt: pick from the abutting left cell.
          const auto& row = occ.row(v.row);
          VtClass target = v.vt;
          for (std::size_t k = 0; k < row.size(); ++k) {
            if (row[k].inst == island && k > 0)
              target = nl.cellOf(row[k - 1].inst).vt;
          }
          if (target != v.vt) {
            const Cell& cur = nl.cellOf(island);
            const int cand = lib.variant(cur.footprint, target, cur.drive);
            if (cand >= 0) {
              rep.leakageDelta +=
                  lib.cell(cand).leakagePower - cur.leakagePower;
              nl.swapCell(island, cand);
              ++rep.vtSwaps;
              fixed = true;
            }
          }
        }
      }
      if (fixed) continue;

      // 3. ECO move next to a gap (filler absorbs the implant edge).
      if (cfg.allowMove) {
        const auto gap = occ.findGapNear(fp, v.row, v.siteLo,
                                         nl.cellOf(island).widthSites + 1,
                                         cfg.maxDisplacementSites);
        if (gap.row >= 0) {
          const int from = v.siteLo;
          occ.moveCell(nl, fp, island, gap.row, gap.siteLo);
          ++rep.moves;
          rep.displacementSites += std::abs(gap.siteLo - from) +
                                   std::abs(gap.row - v.row) * 9.0;
        }
      }
    }
  }

  rep.violationsAfter =
      static_cast<int>(checkMinIa(nl, occ, cfg.minSites).size());
  return rep;
}

MinIaFixReport fixMinIaNaive(Netlist& nl, RowOccupancy& occ,
                             const Floorplan& fp, int minSites) {
  (void)fp;
  MinIaFixReport rep;
  rep.violationsBefore =
      static_cast<int>(checkMinIa(nl, occ, minSites).size());
  const Library& lib = nl.library();
  for (int pass = 0; pass < 3; ++pass) {
    const auto violations = checkMinIa(nl, occ, minSites);
    if (violations.empty()) break;
    for (const auto& v : violations) {
      // Unconditionally align every island cell to the left neighbor's Vt.
      const auto& row = occ.row(v.row);
      VtClass target = v.vt;
      for (std::size_t k = 1; k < row.size(); ++k)
        if (row[k].inst == v.cells.front())
          target = nl.cellOf(row[k - 1].inst).vt;
      if (target == v.vt) continue;
      for (InstId inst : v.cells) {
        const Cell& cur = nl.cellOf(inst);
        const int cand = lib.variant(cur.footprint, target, cur.drive);
        if (cand >= 0) {
          rep.leakageDelta += lib.cell(cand).leakagePower - cur.leakagePower;
          nl.swapCell(inst, cand);
          ++rep.vtSwaps;
        }
      }
    }
  }
  rep.violationsAfter =
      static_cast<int>(checkMinIa(nl, occ, minSites).size());
  return rep;
}

}  // namespace tc
