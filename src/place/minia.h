#pragma once
/// \file minia.h
/// \brief Minimum implant area (MinIA) rule checking and fixing
/// (paper Sec. 2.4, Fig. 6(a), after Kahng-Lee [24]).
///
/// Implant layers define transistor Vt; a narrow island of one Vt flavor
/// sandwiched between cells of a different flavor violates the minimum
/// implant width rule. The rule first bites at foundry 20nm, and it is the
/// canonical "placement-sizing interference": a post-route Vt-swap is no
/// longer placement-independent (it can create MinIA violations that force
/// ECO place-and-route), which "weakens or even obviates the strategy in
/// Figure 1".
///
/// The fixer implements the minimal-perturbation heuristics of [24]:
///  1. merge      — swap positions with a nearby same-width cell so islands
///                  coalesce;
///  2. vt-align   — re-swap the island's Vt to match a neighbor when the
///                  timing slack allows;
///  3. move       — ECO-relocate the island next to same-Vt cells within a
///                  displacement budget.
/// A "naive" baseline (unconditionally vt-swap up, ignoring timing) mimics
/// what the paper says recent commercial P&R versions did.

#include <vector>

#include "place/placement.h"
#include "sta/engine.h"

namespace tc {

struct MinIaViolation {
  int row = -1;
  int siteLo = 0;
  int widthSites = 0;
  VtClass vt = VtClass::kSvt;
  std::vector<InstId> cells;  ///< the island
};

/// Scan all rows for implant islands narrower than `minSites` that are
/// *abutted* on both sides by different-Vt cells (a gap/filler neighbor
/// legalizes the island, since fillers take either implant).
std::vector<MinIaViolation> checkMinIa(const Netlist& nl,
                                       const RowOccupancy& occ,
                                       int minSites);

struct MinIaFixConfig {
  int minSites = 3;
  int maxDisplacementSites = 60;
  bool allowReorder = true;
  bool allowVtSwap = true;
  bool allowMove = true;
  /// Slack floor: a Vt-swap is allowed only if the instance's current
  /// setup slack exceeds this (ps). Ignored when timing == nullptr.
  Ps vtSwapSlackFloor = 20.0;
};

struct MinIaFixReport {
  int violationsBefore = 0;
  int violationsAfter = 0;
  int merges = 0;
  int vtSwaps = 0;
  int moves = 0;
  MicroWatt leakageDelta = 0.0;  ///< leakage power change from Vt swaps
  double displacementSites = 0.0;  ///< total cell displacement
};

/// Minimal-perturbation MinIA fixing, after [24]. `timing` (optional) gates
/// Vt swaps on available slack and is re-queried but not re-run; callers
/// re-run STA afterwards.
MinIaFixReport fixMinIa(Netlist& nl, RowOccupancy& occ, const Floorplan& fp,
                        const StaEngine* timing, const MinIaFixConfig& cfg);

/// Baseline fixer: unconditionally swap every violating island to the
/// left-neighbor Vt (fast, timing/power-oblivious).
MinIaFixReport fixMinIaNaive(Netlist& nl, RowOccupancy& occ,
                             const Floorplan& fp, int minSites);

}  // namespace tc
