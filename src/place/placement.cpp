#include "place/placement.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "interconnect/steiner.h"
#include "util/rng.h"

namespace tc {

Floorplan Floorplan::forDesign(const Netlist& nl, double utilization) {
  long totalSites = 0;
  for (InstId i = 0; i < nl.instanceCount(); ++i)
    totalSites += nl.cellOf(i).widthSites;
  const double needed = static_cast<double>(totalSites) / utilization;
  // Aim for a roughly square block: rows * sitesPerRow = needed with
  // rowHeight ~ 9x siteWidth.
  Floorplan fp;
  const double aspect = fp.rowHeight / fp.siteWidth;  // sites per row height
  const double rows = std::sqrt(needed / aspect);
  fp.numRows = std::max(4, static_cast<int>(std::ceil(rows)));
  fp.sitesPerRow = std::max(
      16, static_cast<int>(std::ceil(needed / fp.numRows)));
  return fp;
}

RowOccupancy::RowOccupancy(const Netlist& nl, const Floorplan& fp) {
  rows_.resize(static_cast<std::size_t>(fp.numRows));
  locOf_.assign(static_cast<std::size_t>(nl.instanceCount()), {-1, -1});
  for (InstId i = 0; i < nl.instanceCount(); ++i) {
    const Instance& inst = nl.instance(i);
    if (inst.row < 0) continue;
    rows_[static_cast<std::size_t>(inst.row)].push_back(
        {i, inst.siteLo, nl.cellOf(i).widthSites});
  }
  for (int r = 0; r < fp.numRows; ++r) reindexRow(r);
}

void RowOccupancy::reindexRow(int r) {
  auto& row = rows_[static_cast<std::size_t>(r)];
  std::sort(row.begin(), row.end(),
            [](const Slot& a, const Slot& b) { return a.siteLo < b.siteLo; });
  for (std::size_t k = 0; k < row.size(); ++k)
    locOf_[static_cast<std::size_t>(row[k].inst)] = {r, static_cast<int>(k)};
}

bool RowOccupancy::isLegal() const { return illegalityCount() == 0; }

int RowOccupancy::illegalityCount() const {
  int bad = 0;
  for (const auto& row : rows_) {
    int prevEnd = 0;
    for (const auto& s : row) {
      if (s.siteLo < prevEnd) ++bad;
      prevEnd = std::max(prevEnd, s.siteHi());
    }
  }
  return bad;
}

double RowOccupancy::utilization(const Floorplan& fp) const {
  long used = 0;
  for (const auto& row : rows_)
    for (const auto& s : row) used += s.width;
  return static_cast<double>(used) /
         (static_cast<double>(fp.numRows) * fp.sitesPerRow);
}

RowOccupancy::Gap RowOccupancy::findGapNear(const Floorplan& fp, int row,
                                            int site, int width,
                                            int maxDisplacement) const {
  Gap best;
  int bestCost = maxDisplacement + 1;
  const int rowPitchSites =
      std::max(1, static_cast<int>(fp.rowHeight / fp.siteWidth));
  for (int r = 0; r < fp.numRows; ++r) {
    const int rowCost = std::abs(r - row) * rowPitchSites;
    if (rowCost >= bestCost) continue;
    const auto& slots = rows_[static_cast<std::size_t>(r)];
    // Scan gaps: before first, between slots, after last.
    int gapLo = 0;
    for (std::size_t k = 0; k <= slots.size(); ++k) {
      const int gapHi =
          k < slots.size() ? slots[k].siteLo : fp.sitesPerRow;
      if (gapHi - gapLo >= width) {
        // Closest placement of [width] within [gapLo, gapHi) to `site`.
        const int lo = std::clamp(site - width / 2, gapLo, gapHi - width);
        const int cost = rowCost + std::abs(lo + width / 2 - site);
        if (cost < bestCost) {
          bestCost = cost;
          best = {r, lo};
        }
      }
      if (k < slots.size()) gapLo = std::max(gapLo, slots[k].siteHi());
    }
  }
  return best;
}

void RowOccupancy::moveCell(Netlist& nl, const Floorplan& fp, InstId inst,
                            int row, int siteLo) {
  // Instances created after this occupancy snapshot (ECO buffers) enter
  // the map on their first placement.
  if (static_cast<std::size_t>(inst) >= locOf_.size())
    locOf_.resize(static_cast<std::size_t>(nl.instanceCount()), {-1, -1});
  const auto [r, k] = locOf_[static_cast<std::size_t>(inst)];
  if (r >= 0) {
    auto& oldRow = rows_[static_cast<std::size_t>(r)];
    oldRow.erase(oldRow.begin() + k);
    reindexRow(r);
  }
  rows_[static_cast<std::size_t>(row)].push_back(
      {inst, siteLo, nl.cellOf(inst).widthSites});
  reindexRow(row);
  Instance& in = nl.instance(inst);
  in.row = row;
  in.siteLo = siteLo;
  in.x = fp.xOf(siteLo);
  in.y = fp.yOf(row);
  nl.notifyPlacementChanged(inst);
}

bool RowOccupancy::resizeCell(Netlist& nl, const Floorplan& fp, InstId inst,
                              int newWidth) {
  (void)nl;
  const auto [r, k] = locOf_[static_cast<std::size_t>(inst)];
  if (r < 0) return false;
  auto& row = rows_[static_cast<std::size_t>(r)];
  const Slot& s = row[static_cast<std::size_t>(k)];
  const int nextLo = static_cast<std::size_t>(k) + 1 < row.size()
                         ? row[static_cast<std::size_t>(k) + 1].siteLo
                         : fp.sitesPerRow;
  if (s.siteLo + newWidth > nextLo) return false;
  row[static_cast<std::size_t>(k)].width = newWidth;
  return true;
}

void RowOccupancy::swapCells(Netlist& nl, const Floorplan& fp, InstId a,
                             InstId b) {
  const auto [ra, ka] = locOf_[static_cast<std::size_t>(a)];
  const auto [rb, kb] = locOf_[static_cast<std::size_t>(b)];
  if (ra < 0 || rb < 0) throw std::logic_error("swapCells: unplaced cell");
  Slot& sa = rows_[static_cast<std::size_t>(ra)][static_cast<std::size_t>(ka)];
  Slot& sb = rows_[static_cast<std::size_t>(rb)][static_cast<std::size_t>(kb)];
  if (sa.width != sb.width)
    throw std::logic_error("swapCells: width mismatch");
  std::swap(sa.inst, sb.inst);
  Instance& ia = nl.instance(a);
  Instance& ib = nl.instance(b);
  std::swap(ia.row, ib.row);
  std::swap(ia.siteLo, ib.siteLo);
  std::swap(ia.x, ib.x);
  std::swap(ia.y, ib.y);
  reindexRow(ra);
  if (rb != ra) reindexRow(rb);
  (void)fp;
  nl.notifyPlacementChanged(a);
  nl.notifyPlacementChanged(b);
}

Um totalHpwl(const Netlist& nl) {
  Um total = 0.0;
  for (NetId n = 0; n < nl.netCount(); ++n) {
    const Net& net = nl.net(n);
    if (net.driver < 0) continue;
    Point drv{nl.instance(net.driver).x, nl.instance(net.driver).y};
    std::vector<Point> sinks;
    for (const auto& s : net.sinks)
      sinks.push_back({nl.instance(s.inst).x, nl.instance(s.inst).y});
    total += hpwl(drv, sinks);
  }
  return total;
}

void placeDesign(Netlist& nl, const Floorplan& fp, int refineSweeps,
                 std::uint64_t seed) {
  Rng rng(seed);
  const int n = nl.instanceCount();
  if (n == 0) return;

  // 1. Dataflow x-coordinate: topological depth.
  std::vector<int> depth(static_cast<std::size_t>(n), 0);
  int maxDepth = 1;
  for (InstId i : nl.topoOrder()) {
    const Instance& inst = nl.instance(i);
    if (inst.fanout < 0) continue;
    for (const auto& s : nl.net(inst.fanout).sinks) {
      const int d = depth[static_cast<std::size_t>(i)] + 1;
      auto& ds = depth[static_cast<std::size_t>(s.inst)];
      if (!nl.isSequential(s.inst) && d > ds) {
        ds = d;
        maxDepth = std::max(maxDepth, d);
      }
    }
  }

  std::vector<double> x(static_cast<std::size_t>(n));
  std::vector<double> y(static_cast<std::size_t>(n));
  const double width = fp.xOf(fp.sitesPerRow - 1);
  const double height = fp.yOf(fp.numRows - 1);
  for (InstId i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] =
        width * (depth[static_cast<std::size_t>(i)] + rng.uniform()) /
        (maxDepth + 1);
    y[static_cast<std::size_t>(i)] = rng.uniform(0.0, height);
  }

  // 2. Force-directed sweeps: move toward the centroid of connected pins.
  for (int sweep = 0; sweep < refineSweeps; ++sweep) {
    for (InstId i = 0; i < n; ++i) {
      double cx = 0.0, cy = 0.0;
      int cnt = 0;
      const Instance& inst = nl.instance(i);
      for (NetId nid : inst.fanin) {
        const Net& net = nl.net(nid);
        if (net.driver >= 0) {
          cx += x[static_cast<std::size_t>(net.driver)];
          cy += y[static_cast<std::size_t>(net.driver)];
          ++cnt;
        }
      }
      if (inst.fanout >= 0) {
        for (const auto& s : nl.net(inst.fanout).sinks) {
          cx += x[static_cast<std::size_t>(s.inst)];
          cy += y[static_cast<std::size_t>(s.inst)];
          ++cnt;
        }
      }
      if (cnt == 0) continue;
      x[static_cast<std::size_t>(i)] =
          0.5 * x[static_cast<std::size_t>(i)] + 0.5 * cx / cnt;
      y[static_cast<std::size_t>(i)] =
          0.5 * y[static_cast<std::size_t>(i)] + 0.5 * cy / cnt;
    }
  }

  // 3. Legalize: assign to rows by y, pack rows by x order. Overfull rows
  // spill to the nearest row with space.
  std::vector<std::vector<InstId>> rowCells(
      static_cast<std::size_t>(fp.numRows));
  std::vector<int> rowUsed(static_cast<std::size_t>(fp.numRows), 0);
  std::vector<InstId> order(static_cast<std::size_t>(n));
  for (InstId i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](InstId a, InstId b) {
    return y[static_cast<std::size_t>(a)] < y[static_cast<std::size_t>(b)];
  });
  for (InstId i : order) {
    int r = fp.rowOf(y[static_cast<std::size_t>(i)]);
    const int w = nl.cellOf(i).widthSites;
    // Find a row with space, expanding outward.
    for (int d = 0; d < fp.numRows; ++d) {
      for (int cand : {r - d, r + d}) {
        if (cand < 0 || cand >= fp.numRows) continue;
        if (rowUsed[static_cast<std::size_t>(cand)] + w <= fp.sitesPerRow) {
          rowCells[static_cast<std::size_t>(cand)].push_back(i);
          rowUsed[static_cast<std::size_t>(cand)] += w;
          r = -1;
          break;
        }
      }
      if (r == -1) break;
    }
    if (r != -1)
      throw std::logic_error("placeDesign: floorplan too small");
  }
  for (int r = 0; r < fp.numRows; ++r) {
    auto& cells = rowCells[static_cast<std::size_t>(r)];
    std::sort(cells.begin(), cells.end(), [&](InstId a, InstId b) {
      return x[static_cast<std::size_t>(a)] < x[static_cast<std::size_t>(b)];
    });
    // Pack with proportional gaps.
    const int used = rowUsed[static_cast<std::size_t>(r)];
    const int slack = fp.sitesPerRow - used;
    const int gap =
        cells.empty() ? 0
                      : slack / static_cast<int>(cells.size() + 1);
    int site = gap;
    for (InstId i : cells) {
      Instance& inst = nl.instance(i);
      inst.row = r;
      inst.siteLo = site;
      inst.x = fp.xOf(site);
      inst.y = fp.yOf(r);
      site += nl.cellOf(i).widthSites + gap;
      nl.notifyPlacementChanged(i);
    }
  }
}

}  // namespace tc
