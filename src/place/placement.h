#pragma once
/// \file placement.h
/// \brief Row-based placement substrate: floorplan geometry, row occupancy,
/// legality, HPWL, and ECO (nearest-gap) placement.
///
/// Cells occupy integer site ranges in rows, exactly the geometry the MinIA
/// rule of Sec. 2.4 is defined over: implant (Vt) islands are maximal runs
/// of same-Vt cells along a row.

#include <vector>

#include "network/netlist.h"

namespace tc {

struct Floorplan {
  int numRows = 10;
  int sitesPerRow = 100;
  Um siteWidth = 0.2;
  Um rowHeight = 1.8;

  Um xOf(int site) const { return site * siteWidth; }
  Um yOf(int row) const { return row * rowHeight; }
  int siteOf(Um x) const {
    const int s = static_cast<int>(x / siteWidth + 0.5);
    return s < 0 ? 0 : (s >= sitesPerRow ? sitesPerRow - 1 : s);
  }
  int rowOf(Um y) const {
    const int r = static_cast<int>(y / rowHeight + 0.5);
    return r < 0 ? 0 : (r >= numRows ? numRows - 1 : r);
  }

  /// Size a floorplan to hold the design at the target site utilization.
  static Floorplan forDesign(const Netlist& nl, double utilization = 0.70);
};

/// Site-occupancy view of a placed netlist, one entry per placed cell per
/// row, kept sorted by site.
class RowOccupancy {
 public:
  struct Slot {
    InstId inst = -1;
    int siteLo = 0;
    int width = 0;
    int siteHi() const { return siteLo + width; }  // exclusive
  };

  RowOccupancy(const Netlist& nl, const Floorplan& fp);

  const std::vector<Slot>& row(int r) const {
    return rows_[static_cast<std::size_t>(r)];
  }
  int numRows() const { return static_cast<int>(rows_.size()); }

  /// No overlapping cells, all within row bounds.
  bool isLegal() const;
  /// Count of overlap/out-of-bounds offenses (diagnostics).
  int illegalityCount() const;

  /// Total used sites / capacity.
  double utilization(const Floorplan& fp) const;

  /// Find the nearest legal gap of `width` sites around (row, site);
  /// returns {row, siteLo} or {-1,-1}. Search limited to maxDisplacement
  /// sites (Manhattan, rows weighted by row pitch in sites).
  struct Gap {
    int row = -1;
    int siteLo = -1;
  };
  Gap findGapNear(const Floorplan& fp, int row, int site, int width,
                  int maxDisplacement) const;

  /// Move a cell to a new location, updating both the occupancy and the
  /// netlist coordinates. The target must be a legal gap.
  void moveCell(Netlist& nl, const Floorplan& fp, InstId inst, int row,
                int siteLo);
  /// Update occupancy after an in-place width change (resize); returns
  /// false (and leaves state unchanged) if the wider cell no longer fits.
  bool resizeCell(Netlist& nl, const Floorplan& fp, InstId inst,
                  int newWidth);
  /// Swap the row positions of two cells (must have equal widths).
  void swapCells(Netlist& nl, const Floorplan& fp, InstId a, InstId b);

 private:
  std::vector<std::vector<Slot>> rows_;
  std::vector<std::pair<int, int>> locOf_;  ///< inst -> (row, indexInRow)
  void reindexRow(int r);
};

/// Total half-perimeter wirelength of the design (placement quality metric).
Um totalHpwl(const Netlist& nl);

/// Timing-driven-ish constructive placer: dataflow (topological depth)
/// ordering on x, connectivity clustering on y, followed by force-directed
/// refinement sweeps and row legalization.
void placeDesign(Netlist& nl, const Floorplan& fp, int refineSweeps = 3,
                 std::uint64_t seed = 1);

}  // namespace tc
