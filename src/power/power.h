#pragma once
/// \file power.h
/// \brief Design-level power and area accounting: leakage (per Vt flavor,
/// at the library's PVT), dynamic (CV^2 f with activity factors, clock
/// network at activity 1), and cell area. Consumed by leakage recovery, the
/// MinIA fixer's cost accounting, and the Fig. 9 aging-signoff tradeoff.

#include "network/netlist.h"

namespace tc {

struct PowerReport {
  MicroWatt leakage = 0.0;
  MicroWatt dynamicLogic = 0.0;
  MicroWatt dynamicClock = 0.0;
  Um2 area = 0.0;

  MicroWatt total() const { return leakage + dynamicLogic + dynamicClock; }
};

struct PowerOptions {
  double dataActivity = 0.15;  ///< toggles per cycle on data nets
  /// Leakage multiplier (e.g. voltage/aging scaling applied by AVS studies;
  /// leakage ~ vdd^2 exp-ish terms folded in by the caller).
  double leakageScale = 1.0;
  /// Supply override for dynamic energy (0 = use library PVT vdd).
  Volt vddOverride = 0.0;
};

/// Analyze total power at the netlist's clock frequency.
PowerReport analyzePower(const Netlist& nl, const PowerOptions& opt = {});

}  // namespace tc
