#include "power/power.h"

namespace tc {

PowerReport analyzePower(const Netlist& nl, const PowerOptions& opt) {
  PowerReport rep;
  const Library& lib = nl.library();
  const Volt vddLib = lib.pvt().vdd;
  const Volt vdd = opt.vddOverride > 0.0 ? opt.vddOverride : vddLib;
  const double vScale = (vdd * vdd) / (vddLib * vddLib);
  const Ps period = nl.clocks().empty() ? 1000.0 : nl.clocks().front().period;
  const double freqGhz = 1000.0 / period;  // ps period -> GHz

  for (InstId i = 0; i < nl.instanceCount(); ++i) {
    const Instance& inst = nl.instance(i);
    const Cell& cell = lib.cell(inst.cellIndex);
    rep.area += cell.area;
    rep.leakage += cell.leakagePower * opt.leakageScale * (vdd / vddLib);

    // Switching energy: internal + load (fJ); fJ * GHz = uW.
    Ff loadCap = 0.0;
    if (inst.fanout >= 0) loadCap = nl.netSinkCap(inst.fanout);
    const Fj energy =
        (cell.switchEnergy + 0.5 * loadCap * vddLib * vddLib) * vScale;
    const bool isClock = inst.isClockTreeBuffer || cell.isSequential;
    const double activity = isClock ? 1.0 : opt.dataActivity;
    const double uw = energy * activity * freqGhz;
    if (isClock)
      rep.dynamicClock += uw;
    else
      rep.dynamicLogic += uw;
  }
  return rep;
}

}  // namespace tc
