#include "device/tech.h"

#include <stdexcept>

namespace tc {

const char* toString(CareAbout c) {
  switch (c) {
    case CareAbout::kNoise: return "Noise / SI";
    case CareAbout::kMcmm: return "MCMM";
    case CareAbout::kMaxTransEm: return "Maxtrans / EM";
    case CareAbout::kBti: return "BTI aging";
    case CareAbout::kTempInversion: return "Temperature inversion";
    case CareAbout::kAocvPocv: return "AOCV / POCV";
    case CareAbout::kPbaFixedMargin: return "PBA + fixed-margin spec";
    case CareAbout::kFillEffects: return "Fill effects";
    case CareAbout::kDynamicIr: return "Dynamic IR";
    case CareAbout::kMolBeolResistance: return "MOL/BEOL resistance";
    case CareAbout::kBeolMolVariation: return "BEOL/MOL variation";
    case CareAbout::kMultiPatterning: return "Multi-patterning";
    case CareAbout::kMinImplant: return "Min implant area";
    case CareAbout::kLvf: return "LVF";
    case CareAbout::kMis: return "Multi-input switching";
    case CareAbout::kAvsSignoff: return "Signoff criteria w/ AVS";
    case CareAbout::kPhysAwareEco: return "Phys-aware timing ECO";
    case CareAbout::kCellPocv: return "Cell-POCV";
    case CareAbout::kCount: break;
  }
  return "?";
}

const std::vector<TechNode>& technologyTimeline() {
  static const std::vector<TechNode> kNodes = [] {
    std::vector<TechNode> v;
    // Fig. 3 maps care-abouts to the node where they first bite.
    v.push_back({"90nm", 90, 1.2, 1.0, 1.32, 0, 0, false, 0.30, 1.10, 0.6,
                 {CareAbout::kNoise, CareAbout::kMaxTransEm}});
    v.push_back({"65nm", 65, 1.1, 0.9, 1.21, 0, 0, false, 0.45, 1.05, 0.7,
                 {CareAbout::kMcmm, CareAbout::kBti}});
    v.push_back({"40nm", 40, 1.0, 0.8, 1.15, 0, 0, false, 0.65, 1.02, 0.85,
                 {CareAbout::kTempInversion, CareAbout::kAocvPocv}});
    v.push_back({"28nm", 28, 0.9, 0.6, 1.10, 0, 0, false, 1.00, 1.00, 1.0,
                 {CareAbout::kPbaFixedMargin, CareAbout::kFillEffects,
                  CareAbout::kDynamicIr}});
    v.push_back({"20nm", 20, 0.85, 0.55, 1.05, 3, 2, false, 1.60, 0.98, 1.15,
                 {CareAbout::kMolBeolResistance, CareAbout::kMultiPatterning,
                  CareAbout::kMinImplant, CareAbout::kPhysAwareEco}});
    v.push_back({"16nm", 16, 0.80, 0.46, 1.25, 3, 3, true, 2.40, 0.97, 1.3,
                 {CareAbout::kBeolMolVariation, CareAbout::kCellPocv,
                  CareAbout::kAvsSignoff, CareAbout::kMis}});
    v.push_back({"10nm", 10, 0.75, 0.45, 1.05, 4, 5, true, 3.60, 0.96, 1.5,
                 {CareAbout::kLvf}});
    v.push_back({"7nm", 7, 0.70, 0.40, 0.95, 4, 7, true, 5.20, 0.95, 1.7,
                 {}});
    return v;
  }();
  return kNodes;
}

const TechNode& techNode(int nm) {
  for (const auto& n : technologyTimeline())
    if (n.nm == nm) return n;
  throw std::invalid_argument("unknown technology node: " +
                              std::to_string(nm) + "nm");
}

std::vector<CareAbout> activeConcerns(const TechNode& node) {
  std::vector<CareAbout> out;
  for (const auto& n : technologyTimeline()) {
    if (n.nm < node.nm) break;  // timeline ordered large -> small
    for (CareAbout c : n.newConcerns) out.push_back(c);
    if (n.nm == node.nm) break;
  }
  return out;
}

}  // namespace tc
