#include "device/mosfet.h"

#include <algorithm>
#include <cmath>

namespace tc {

double Mosfet::tempFactor(Celsius t) const {
  return std::pow(298.15 / kelvin(t), params.mobilityTempExp);
}

MicroAmp Mosfet::current(Volt vgs, Volt vds, Celsius t) const {
  if (vds <= 0.0) return 0.0;
  const Volt vt = vtEff(t);
  const double kw = params.kPrime * width * kScale * tempFactor(t);
  const Volt overdrive = vgs - vt;

  // Strong-inversion Sakurai-Newton expression at a given overdrive.
  auto strongInversion = [&](Volt od) -> double {
    const double idsatV = kw * std::pow(od, params.alpha);
    const Volt vdsat = params.vdsatCoeff * std::pow(od, params.alpha / 2.0);
    if (vds >= vdsat) return idsatV * (1.0 + params.lambda * (vds - vdsat));
    const double x = vds / vdsat;
    return idsatV * (2.0 - x) * x;
  };

  // Subthreshold: exponential in (Vgs - Vt), continuous with the strong-
  // inversion expression at a small transition overdrive (the Vds dependence
  // is inherited from the blend-point evaluation).
  const Volt vTrans = 0.04;  // blend point just above threshold
  if (overdrive < vTrans) {
    const double idTrans = strongInversion(vTrans);
    const double decades = (overdrive - vTrans) / (params.ssMvPerDec * 1e-3);
    return idTrans * std::pow(10.0, decades);
  }
  return strongInversion(overdrive);
}

MicroAmp Mosfet::leakage(Volt vds, Celsius t) const {
  const Volt vt25 = params.vt0 + vtShift;
  // Ioff reference is quoted at the nominal vt0; shift scales it through
  // the subthreshold swing.
  const double decades = -(vt25 - params.vt0) / (params.ssMvPerDec * 1e-3);
  const double tempScale = 1.0 + params.leakTempCoPerC * (t - 25.0);
  const double base = params.ioffNaPerUm * 1e-3 * width;  // nA -> uA
  const double vdsFactor = std::min(1.0, vds / 0.1);
  return base * std::pow(10.0, decades) * std::max(tempScale, 0.05) *
         vdsFactor;
}

MicroAmp Mosfet::idsat(Volt vgs, Celsius t) const {
  const Volt overdrive = std::max(vgs - vtEff(t), 0.0);
  const double kw = params.kPrime * width * kScale * tempFactor(t);
  return kw * std::pow(overdrive, params.alpha);
}

namespace {
Volt vtOffset(VtClass vt) {
  switch (vt) {
    case VtClass::kUlvt: return -0.065;
    case VtClass::kLvt: return 0.0;
    case VtClass::kSvt: return 0.065;
    case VtClass::kHvt: return 0.130;
  }
  return 0.0;
}

double ioffScale(VtClass vt) {
  // Leakage roughly follows exp(-Vt/S); quoted Ioff already reflects flavor.
  switch (vt) {
    case VtClass::kUlvt: return 8.0;
    case VtClass::kLvt: return 1.0;
    case VtClass::kSvt: return 0.20;
    case VtClass::kHvt: return 0.04;
  }
  return 1.0;
}
}  // namespace

MosfetParams makeNmosParams(VtClass vt) {
  MosfetParams p;
  p.type = DeviceType::kNmos;
  p.vt0 = 0.32 + vtOffset(vt);
  p.vtTempCo = -1.2e-3;
  p.kPrime = 580.0;
  p.alpha = 1.28;
  p.mobilityTempExp = 1.45;
  p.lambda = 0.06;
  p.vdsatCoeff = 0.55;
  p.ioffNaPerUm = 1.2 * ioffScale(vt);
  p.ssMvPerDec = 95.0;
  return p;
}

MosfetParams makePmosParams(VtClass vt) {
  MosfetParams p;
  p.type = DeviceType::kPmos;
  p.vt0 = 0.34 + vtOffset(vt);
  p.vtTempCo = -1.1e-3;
  p.kPrime = 300.0;  // hole mobility deficit
  p.alpha = 1.35;
  p.mobilityTempExp = 1.30;
  p.lambda = 0.07;
  p.vdsatCoeff = 0.60;
  p.ioffNaPerUm = 0.9 * ioffScale(vt);
  p.ssMvPerDec = 100.0;
  return p;
}

}  // namespace tc
