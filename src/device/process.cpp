#include "device/process.h"

namespace tc {

const char* toString(ProcessCorner corner) {
  switch (corner) {
    case ProcessCorner::kTT: return "TT";
    case ProcessCorner::kSSG: return "SSG";
    case ProcessCorner::kFFG: return "FFG";
    case ProcessCorner::kSS: return "SS";
    case ProcessCorner::kFF: return "FF";
    case ProcessCorner::kFSG: return "FSG";
    case ProcessCorner::kSFG: return "SFG";
  }
  return "?";
}

ProcessCondition ProcessCondition::at(ProcessCorner corner) {
  // Global corner = ~3 sigma of the die-to-die distribution; the SS/FF
  // "full" corners fold in an additional local budget (paper footnote 2).
  constexpr Volt kGlobalVt = 0.030;
  constexpr Volt kLocalBudget = 0.018;
  constexpr double kGlobalK = 0.07;
  switch (corner) {
    case ProcessCorner::kTT:
      return {};
    case ProcessCorner::kSSG:
      return {kGlobalVt, kGlobalVt, 1.0 - kGlobalK, 1.0 - kGlobalK};
    case ProcessCorner::kFFG:
      return {-kGlobalVt, -kGlobalVt, 1.0 + kGlobalK, 1.0 + kGlobalK};
    case ProcessCorner::kSS:
      return {kGlobalVt + kLocalBudget, kGlobalVt + kLocalBudget,
              1.0 - kGlobalK - 0.02, 1.0 - kGlobalK - 0.02};
    case ProcessCorner::kFF:
      return {-kGlobalVt - kLocalBudget, -kGlobalVt - kLocalBudget,
              1.0 + kGlobalK + 0.02, 1.0 + kGlobalK + 0.02};
    case ProcessCorner::kFSG:
      return {-kGlobalVt, kGlobalVt, 1.0 + kGlobalK, 1.0 - kGlobalK};
    case ProcessCorner::kSFG:
      return {kGlobalVt, -kGlobalVt, 1.0 - kGlobalK, 1.0 + kGlobalK};
  }
  return {};
}

}  // namespace tc
