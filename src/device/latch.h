#pragma once
/// \file latch.h
/// \brief Transient simulation of a master-slave D flip-flop, used to
/// characterize the interdependent setup / hold / clock-to-q surface of the
/// paper's Fig. 10 (and the underlying model for signoff::flexflop).
///
/// The flop is modeled structurally: a clocked transmission gate feeding a
/// regenerative master storage node, a slave transmission gate, regenerative
/// slave node and output inverter. Conductances and regeneration strength
/// are derived from the Mosfet model at the requested PVT, so the
/// characterized surfaces move with voltage, temperature and process the way
/// silicon does. Late data leaves the master node only partially charged at
/// clock cutoff; the regenerative feedback then resolves it with an
/// exponential time constant — which is precisely the c2q "pushout" that
/// makes c2q explode as setup (or hold) margin shrinks.

#include <optional>

#include "device/mosfet.h"
#include "device/process.h"
#include "util/units.h"

namespace tc {

/// Electrical configuration for one latch characterization context.
struct LatchConditions {
  Volt vdd = 0.9;
  Celsius temp = 25.0;
  VtClass vt = VtClass::kSvt;
  double size = 1.0;          ///< drive-strength multiplier
  ProcessCondition corner{};  ///< global process shift
  Ps clockSlew = 30.0;        ///< 10-90 clock edge time at the flop
  Ff qLoad = 3.0;             ///< external load on Q
};

/// Result of a single clocking event.
struct LatchResult {
  bool captured = false;  ///< Q reached its intended final value
  Ps clockToQ = 0.0;      ///< clock 50% -> Q 50% (valid if captured)
};

class LatchSim {
 public:
  explicit LatchSim(const LatchConditions& cond);

  /// Simulate a rising-edge capture of a data *pulse*: D switches to the
  /// captured value `setup` ps before the active clock edge and switches
  /// back `hold` ps after it. This is the standard interdependent
  /// setup/hold characterization stimulus.
  LatchResult capture(Ps setup, Ps hold, bool dataRising = true) const;

  /// Clock-to-q with generous setup & hold margins.
  Ps nominalClockToQ(bool dataRising = true) const;

  /// Smallest setup time whose c2q pushout stays within `pushoutFrac` of
  /// nominal, at the given hold margin (binary search). This reproduces the
  /// industry "10% pushout" characterization criterion the paper critiques.
  Ps setupTime(double pushoutFrac = 0.10, Ps hold = 400.0,
               bool dataRising = true) const;
  /// Smallest hold time within the pushout criterion at the given setup.
  Ps holdTime(double pushoutFrac = 0.10, Ps setup = 400.0,
              bool dataRising = true) const;

  const LatchConditions& conditions() const { return cond_; }

 private:
  LatchConditions cond_;
  // Derived electrical parameters (uA/V conductances, fF caps).
  double gIn_ = 0.0;    ///< master transmission gate (on)
  double gFb_ = 0.0;    ///< master regenerative feedback
  double gSl_ = 0.0;    ///< slave transmission gate
  double gQ_ = 0.0;     ///< output inverter drive
  Ff cM_ = 0.0, cS_ = 0.0, cQ_ = 0.0;
  Volt vInv_ = 0.06;    ///< inverter transfer steepness (finite gain)

  double invTransfer(double v) const;   ///< inverting sigmoid 0..vdd
  double regenTarget(double v) const;   ///< rail-restoring sigmoid
};

}  // namespace tc
