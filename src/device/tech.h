#pragma once
/// \file tech.h
/// \brief Technology-node registry: per-node physical parameters and the
/// timing-closure "care-abouts" timeline of the paper's Fig. 3.
///
/// Each node descriptor records (a) the physical knobs the rest of the
/// framework consumes (wire RC, supply range, MinIA width, patterning) and
/// (b) the set of signoff concerns that *first become material* at that
/// node. bench_fig03_care_abouts renders the resulting matrix.

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.h"

namespace tc {

/// Timing-closure concerns tracked across nodes (Fig. 3 rows).
enum class CareAbout : std::uint32_t {
  kNoise = 0,
  kMcmm,
  kMaxTransEm,
  kBti,
  kTempInversion,
  kAocvPocv,
  kPbaFixedMargin,
  kFillEffects,
  kDynamicIr,
  kMolBeolResistance,
  kBeolMolVariation,
  kMultiPatterning,
  kMinImplant,
  kLvf,
  kMis,
  kAvsSignoff,
  kPhysAwareEco,
  kCellPocv,
  kCount
};

const char* toString(CareAbout c);

/// One technology node's descriptor.
struct TechNode {
  std::string name;       ///< e.g. "28nm"
  int nm = 28;            ///< headline dimension
  Volt vddNominal = 0.9;
  Volt vddMin = 0.6;
  Volt vddMax = 1.1;
  int minImplantWidthSites = 0;  ///< MinIA rule (0 = no rule)
  int doublePatternedLayers = 0; ///< lower-Mx layers needing SADP colors
  bool finfet = false;
  double wireResScale = 1.0;  ///< BEOL resistance vs the 28nm reference
  double wireCapScale = 1.0;
  double localVtSigmaScale = 1.0;  ///< mismatch growth at scaled nodes
  std::vector<CareAbout> newConcerns;  ///< concerns first material here
};

/// Ordered registry, 90nm -> 7nm (Fig. 3's x axis).
const std::vector<TechNode>& technologyTimeline();

/// Lookup by headline nm (throws if absent).
const TechNode& techNode(int nm);

/// All concerns active at a node: union of newConcerns over nodes >= nm.
std::vector<CareAbout> activeConcerns(const TechNode& node);

}  // namespace tc
