#include "device/aging.h"

#include <algorithm>
#include <cmath>

namespace tc {

Volt BtiModel::deltaVt(Volt vdd, Celsius temp, double years, bool dc) const {
  if (years <= 0.0 || vdd <= 0.0) return 0.0;
  const double kT = kBoltzmannEvPerK * kelvin(temp);
  const double kT25 = kBoltzmannEvPerK * kelvin(25.0);
  const double arr = std::exp(-activationEv / kT) / std::exp(-activationEv / kT25);
  const double duty = dc ? 1.0 : acFactor;
  return prefactorV * duty * std::pow(vdd, voltageExp) * arr *
         std::pow(years, timeExp) / std::pow(1.0, timeExp);
}

Volt BtiModel::advance(Volt currentDvt, Volt vdd, Celsius temp,
                       double deltaYears, bool dc) const {
  if (deltaYears <= 0.0) return currentDvt;
  const Volt rate1y = deltaVt(vdd, temp, 1.0, dc);  // shift after 1 year
  if (rate1y <= 0.0) return currentDvt;
  // Equivalent age at this stress level that explains the current shift:
  const double tEq =
      currentDvt > 0.0 ? std::pow(currentDvt / rate1y, 1.0 / timeExp) : 0.0;
  return rate1y * std::pow(tEq + deltaYears, timeExp);
}

Volt BtiModel::stressForShift(Volt dvt, Celsius temp, double years,
                              bool dc) const {
  if (dvt <= 0.0) return 0.0;
  const Volt ref = deltaVt(1.0, temp, years, dc);
  if (ref <= 0.0) return 0.0;
  return std::pow(dvt / ref, 1.0 / voltageExp);
}

}  // namespace tc
