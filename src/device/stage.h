#pragma once
/// \file stage.h
/// \brief Transient simulation of a single CMOS stage (the framework's
/// "mini-SPICE" deck).
///
/// A Stage is a static CMOS gate described by its pull-up / pull-down
/// networks of Mosfets (series/parallel trees with true internal-node
/// solution via warm-started bisection), driving a lumped capacitive load.
/// Inputs are saturated-ramp waveforms; more than one input may switch, which
/// is exactly the multi-input-switching (MIS) experiment of the paper's
/// Fig. 4: simultaneous arrivals on a parallel pull-up double the charging
/// current (MIS delay << SIS delay), while simultaneous arrivals on a series
/// stack weaken it (MIS delay > SIS delay).
///
/// The same engine characterizes the synthetic standard-cell library
/// (liberty::LibraryBuilder) and produces the temperature-inversion curves of
/// Fig. 6(b).

#include <string>
#include <vector>

#include "device/mosfet.h"
#include "device/process.h"
#include "util/units.h"

namespace tc {

/// Gate topology templates supported by the cell zoo.
enum class StageKind { kInverter, kNand, kNor, kAoi21, kOai21 };

const char* toString(StageKind kind);

/// Saturated-ramp input waveform. `slew` is the 10%-90% transition time;
/// the underlying linear ramp spans slew/0.8 and is centered so that the
/// 50% crossing happens at `start + 0.5 * slew / 0.8`.
struct InputWave {
  Volt v0 = 0.0;   ///< initial level
  Volt v1 = 0.0;   ///< final level
  Ps start = 0.0;  ///< time the ramp leaves v0
  Ps slew = 20.0;  ///< 10-90 transition time (ignored if v0 == v1)

  Volt at(Ps t) const;
  bool switches() const { return v0 != v1; }
  /// Time of the 50% crossing.
  Ps cross50() const { return start + 0.5 * rampSpan(); }
  Ps rampSpan() const { return slew / 0.8; }
};

/// Series/parallel transistor network with cached internal-node voltages.
/// All voltages are expressed in "pull-down coordinates": for the PMOS
/// pull-up network the caller mirrors node and gate voltages about VDD, so
/// a single NMOS-style evaluator serves both networks.
class PullNetwork {
 public:
  /// Node handle.
  using Id = int;

  Id addDevice(Mosfet device, int inputIndex);
  Id addSeries(Id bottom, Id top);  ///< bottom child sits at the base rail
  Id addParallel(Id a, Id b);
  void setRoot(Id id) { root_ = id; }
  bool empty() const { return root_ < 0; }

  /// Current (uA, >= 0) flowing through the network when the base rail sits
  /// at `vBase` and the far terminal at `vTop` (>= vBase), given per-input
  /// gate voltages (already mirrored for pull-up use). Warm-starts series
  /// splits from the previous call, so transient sweeps are cheap.
  MicroAmp current(double vBase, double vTop,
                   const std::vector<Volt>& gateV, Celsius t) const;

  /// Worst-case (all gates off) leakage through the network at `vds`.
  MicroAmp leakage(Volt vds, Celsius t) const;

  /// Apply a threshold shift / mobility scale to every device (corners,
  /// mismatch sampling, aging).
  void shiftAllVt(Volt dvt);
  void scaleAllK(double scale);
  /// Per-device access for mismatch injection.
  std::vector<Mosfet*> devices();

  void resetCache() const;

 private:
  struct Node {
    enum class Kind { kDevice, kSeries, kParallel } kind = Kind::kDevice;
    Mosfet device;
    int input = -1;
    Id left = -1, right = -1;
    mutable double split = -1.0;  ///< cached internal node (series only)
  };

  MicroAmp nodeCurrent(Id id, double vBase, double vTop,
                       const std::vector<Volt>& gateV, Celsius t) const;
  MicroAmp nodeLeakage(Id id, Volt vds, Celsius t) const;

  std::vector<Node> nodes_;
  Id root_ = -1;
};

/// A complete CMOS stage: complementary pull-up/pull-down networks plus
/// electrical context (supply, temperature, parasitic self-load).
class Stage {
 public:
  /// Build one of the template topologies. `size` scales all widths (drive
  /// strength); series stacks are automatically upsized by the stack depth,
  /// as in real standard cells.
  static Stage make(StageKind kind, int numInputs, VtClass vt, double size,
                    const ProcessCondition& corner = {});

  StageKind kind() const { return kind_; }
  int numInputs() const { return numInputs_; }
  double size() const { return size_; }
  VtClass vtClass() const { return vt_; }

  /// Logic value of the gate for boolean inputs.
  bool evalLogic(const std::vector<bool>& inputs) const;
  /// Non-controlling level for a side input (so one arc is sensitized).
  bool nonControllingValue() const;

  /// Input pin capacitance (fF) of one input.
  Ff inputCap() const;
  /// Parasitic output self-load (fF).
  Ff selfLoad() const;

  /// Static leakage current (uA) for the given input state at supply vdd.
  MicroAmp leakage(const std::vector<bool>& inputs, Volt vdd,
                   Celsius t) const;

  PullNetwork& pullDown() { return pdn_; }
  PullNetwork& pullUp() { return pun_; }
  const PullNetwork& pullDown() const { return pdn_; }
  const PullNetwork& pullUp() const { return pun_; }

 private:
  StageKind kind_ = StageKind::kInverter;
  int numInputs_ = 1;
  double size_ = 1.0;
  VtClass vt_ = VtClass::kSvt;
  Um wn_ = 0.5, wp_ = 1.0;  ///< unit widths used for cap estimates
  PullNetwork pdn_, pun_;
};

/// Result of one transient run.
struct TransientResult {
  Ps delay50 = 0.0;       ///< 50% input -> 50% output
  Ps outputSlew = 0.0;    ///< 10-90 on the output
  bool outputRising = false;
  bool completed = false;  ///< output actually crossed 90% of its swing
  Volt vFinal = 0.0;
};

/// Transient simulation conditions.
struct SimConditions {
  Volt vdd = 0.9;
  Celsius temp = 25.0;
  Ff load = 2.0;       ///< external load (input caps of fanout)
  Ps tMax = 4000.0;    ///< simulation horizon
  Volt dvTarget = 0.004;  ///< adaptive step: max voltage change per step
};

/// Simulate the stage with the given input waveforms (one per input).
/// `referenceInput` selects which input's 50% crossing anchors the delay
/// measurement (default: the earliest switching input).
TransientResult simulateStage(Stage& stage, const std::vector<InputWave>& ins,
                              const SimConditions& cond,
                              int referenceInput = -1);

/// Convenience: single-input-switching arc measurement. Side inputs are held
/// at their non-controlling values; input `pin` ramps rising/falling with
/// the given slew. Returns the output transition.
TransientResult simulateArc(Stage& stage, int pin, bool inputRising,
                            Ps inputSlew, const SimConditions& cond);

}  // namespace tc
