#pragma once
/// \file aging.h
/// \brief Bias-temperature-instability (BTI) aging model.
///
/// Reaction-diffusion style power law: the threshold shift after `years` of
/// DC stress at supply `vdd` and junction temperature `temp` is
///
///   dVt = A * vdd^gamma * exp(-Ea / kT) * t^n
///
/// with n ~ 1/6 for NBTI. This is the model underlying the paper's Fig. 9
/// (aging-aware signoff with AVS, after Chan-Chan-Kahng [1]): raising the
/// supply to compensate aging *accelerates* aging — the "chicken-and-egg"
/// loop that signoff::avs resolves by fixed-point iteration.

#include "util/units.h"

namespace tc {

struct BtiModel {
  /// A, volts at 1V/25C/1yr before Ea scaling. Calibrated so 10 years of
  /// DC stress at 0.9V/105C gives ~40mV — the published NBTI ballpark.
  double prefactorV = 0.016;
  double voltageExp = 3.0;    ///< gamma
  double timeExp = 0.166;     ///< n (~1/6)
  double activationEv = 0.10; ///< Ea in eV (effective, small: partial anneal)
  double acFactor = 0.5;      ///< duty-cycle derate for AC stress

  /// Threshold shift (V) after `years` of stress; `dc` selects DC vs AC.
  Volt deltaVt(Volt vdd, Celsius temp, double years, bool dc = true) const;

  /// Stress voltage that produces a given dVt after `years` (inverse model,
  /// used when validating signoff corners).
  Volt stressForShift(Volt dvt, Celsius temp, double years,
                      bool dc = true) const;

  /// Equivalent-age accounting for time-varying stress: given the shift
  /// accumulated so far, advance `deltaYears` at supply `vdd` and return
  /// the new total shift. Exact for piecewise-constant stress under the
  /// reaction-diffusion power law.
  Volt advance(Volt currentDvt, Volt vdd, Celsius temp, double deltaYears,
               bool dc = true) const;
};

}  // namespace tc
