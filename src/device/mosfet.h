#pragma once
/// \file mosfet.h
/// \brief Sakurai–Newton alpha-power-law MOSFET model.
///
/// This is the framework's stand-in for a foundry SPICE model. It captures
/// the mechanisms the paper's exhibits depend on:
///  - drive current Id ~ (Vgs - Vt)^alpha with velocity saturation,
///  - Vt decreasing with temperature while mobility also degrades with
///    temperature -> the *temperature inversion* crossover of Fig. 6(b),
///  - per-device Vt shifts for global corners, local mismatch (Fig. 7 Monte
///    Carlo) and BTI aging (Fig. 9),
///  - subthreshold leakage exponential in Vt (leakage-power recovery).
///
/// Units follow util/units.h: V, uA, fF, ps, Celsius. Current density
/// parameters are per micron of device width.

#include "util/units.h"

namespace tc {

enum class DeviceType { kNmos, kPmos };

/// Threshold flavor of a transistor/cell. Lower Vt is faster and leakier.
enum class VtClass { kUlvt = 0, kLvt = 1, kSvt = 2, kHvt = 3 };

inline const char* toString(VtClass vt) {
  switch (vt) {
    case VtClass::kUlvt: return "ULVT";
    case VtClass::kLvt: return "LVT";
    case VtClass::kSvt: return "SVT";
    case VtClass::kHvt: return "HVT";
  }
  return "?";
}

/// Model card for one device flavor (type x Vt class), per-um-width.
struct MosfetParams {
  DeviceType type = DeviceType::kNmos;
  Volt vt0 = 0.35;            ///< |Vt| at 25C, zero stress
  double vtTempCo = -1.2e-3;  ///< d|Vt|/dT in V per Kelvin (negative)
  double kPrime = 550.0;      ///< uA/um at (Vgs-Vt)=1V, 25C
  double alpha = 1.30;        ///< velocity-saturation index
  double mobilityTempExp = 1.45;  ///< mu(T) = mu25 * (298K / T_K)^exp
  double lambda = 0.06;       ///< channel-length modulation, 1/V
  double vdsatCoeff = 0.55;   ///< Vdsat = coeff * (Vgs-Vt)^(alpha/2)
  double ioffNaPerUm = 1.0;   ///< off current at 25C, Vds=Vdd_nom, nA/um
  double ssMvPerDec = 95.0;   ///< subthreshold swing, mV/decade
  double leakTempCoPerC = 0.035;  ///< fractional leak increase per Celsius
};

/// One transistor instance: a model card plus width and an accumulated
/// threshold shift (global corner + local mismatch + aging).
struct Mosfet {
  MosfetParams params;
  Um width = 1.0;
  Volt vtShift = 0.0;   ///< added to |vt0| (positive = slower)
  double kScale = 1.0;  ///< mobility/current multiplier (global corner)

  /// Effective |Vt| at temperature t.
  Volt vtEff(Celsius t) const {
    return params.vt0 + params.vtTempCo * (t - 25.0) + vtShift;
  }

  /// Temperature scaling of the current factor.
  double tempFactor(Celsius t) const;

  /// Drain current magnitude in uA for gate-source / drain-source voltage
  /// *magnitudes* (caller mirrors PMOS polarities). Always >= 0; includes
  /// the subthreshold region so the model is continuous across Vgs = Vt.
  MicroAmp current(Volt vgs, Volt vds, Celsius t) const;

  /// Off-state leakage magnitude (Vgs = 0) in uA at the given Vds and T.
  MicroAmp leakage(Volt vds, Celsius t) const;

  /// Saturation current at the given overdrive, used for sizing heuristics.
  MicroAmp idsat(Volt vgs, Celsius t) const;
};

/// Built-in model cards for a generic 28nm-class planar technology.
/// `vtOffset` spaces the four Vt flavors ~65mV apart.
MosfetParams makeNmosParams(VtClass vt);
MosfetParams makePmosParams(VtClass vt);

}  // namespace tc
