#pragma once
/// \file process.h
/// \brief Global process corners and local mismatch sampling.
///
/// Mirrors the paper's footnote 2 terminology: the SS corner includes global
/// variation *plus* on-die mismatch; the SSG "global corner" includes only
/// the global component, leaving local variation to AOCV / POCV / LVF.
/// Cross-corners (FSG: fast N, slow P; SFG: slow N, fast P) are the ones the
/// paper says are "increasingly required ... for signoff of clock
/// distribution".

#include <string>

#include "device/mosfet.h"
#include "util/rng.h"

namespace tc {

enum class ProcessCorner {
  kTT,   ///< typical/typical
  kSSG,  ///< slow global (no local budget)
  kFFG,  ///< fast global
  kSS,   ///< slow global + local budget folded in
  kFF,   ///< fast global + local budget folded in
  kFSG,  ///< fast NMOS / slow PMOS cross-corner
  kSFG,  ///< slow NMOS / fast PMOS cross-corner
};

const char* toString(ProcessCorner corner);

/// Deterministic per-corner parameter shifts applied to every device.
struct ProcessCondition {
  Volt nmosVtShift = 0.0;
  Volt pmosVtShift = 0.0;
  double nmosKScale = 1.0;
  double pmosKScale = 1.0;

  static ProcessCondition at(ProcessCorner corner);
};

/// Local (on-die, per-device) mismatch model: Pelgrom law,
/// sigma(dVt) = Avt / sqrt(W*L). At 28nm-class dimensions (L ~ 30nm,
/// W ~ 0.5um) this gives ~20mV per minimum device.
struct MismatchModel {
  double avtMvUm = 2.5;     ///< Pelgrom coefficient, mV*um
  double lengthUm = 0.030;  ///< drawn channel length

  Volt sigmaVt(Um width) const {
    const double area = (width > 0.0 ? width : 1.0) * lengthUm;
    return avtMvUm * 1e-3 / std::sqrt(area);
  }
  Volt sample(Um width, Rng& rng) const {
    return rng.normal(0.0, sigmaVt(width));
  }
};

}  // namespace tc
