#include "device/latch.h"

#include <cmath>

namespace tc {

namespace {
double logistic(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

LatchSim::LatchSim(const LatchConditions& cond) : cond_(cond) {
  // Derive linearized drive conductances from the device model at this PVT,
  // so the characterized surfaces track voltage/temperature/process.
  Mosfet n;
  n.params = makeNmosParams(cond.vt);
  n.width = 0.6 * cond.size;
  n.vtShift = cond.corner.nmosVtShift;
  n.kScale = cond.corner.nmosKScale;
  Mosfet p;
  p.params = makePmosParams(cond.vt);
  p.width = 1.2 * cond.size;
  p.vtShift = cond.corner.pmosVtShift;
  p.kScale = cond.corner.pmosKScale;

  const Volt vdd = cond.vdd;
  const double vEff = std::max(0.5 * vdd, 0.2);
  // Transmission gate: NMOS and PMOS in parallel.
  const double gN = n.idsat(vdd, cond.temp) / vEff;
  const double gP = p.idsat(vdd, cond.temp) / vEff;
  // The 0.25 factor models the tgate + internal inverter chain resistance
  // of a real library flop; it sets realistic tens-of-ps time constants.
  gIn_ = 0.25 * (gN + gP);
  gFb_ = 0.55 * gIn_;  // keeper is weaker than the input path
  gSl_ = gIn_;
  gQ_ = 2.0 * gIn_;    // output inverter upsized

  cM_ = 3.0 * cond.size;
  cS_ = 3.0 * cond.size;
  cQ_ = 1.5 * cond.size;
  vInv_ = 0.07 * vdd / 0.9;  // finite inverter gain scales with supply
}

double LatchSim::invTransfer(double v) const {
  return cond_.vdd * logistic((0.5 * cond_.vdd - v) / vInv_);
}

double LatchSim::regenTarget(double v) const {
  return cond_.vdd * logistic((v - 0.5 * cond_.vdd) / vInv_);
}

LatchResult LatchSim::capture(Ps setup, Ps hold, bool dataRising) const {
  const Volt vdd = cond_.vdd;
  const Ps tEdge = 500.0;       // clock 50% crossing
  const Ps dataSlew = 20.0;
  const Ps clkSpan = cond_.clockSlew / 0.8;
  const Ps horizon = tEdge + 1500.0;

  const Volt dFrom = dataRising ? 0.0 : vdd;
  const Volt dTo = dataRising ? vdd : 0.0;

  auto dataAt = [&](Ps t) -> Volt {
    // Pulse: switch to the captured value `setup` before the edge, revert
    // `hold` after it. Saturated linear ramps with 10-90 slew `dataSlew`.
    const Ps span = dataSlew / 0.8;
    // Arrival ramp centered so its 50% point is exactly setup before edge:
    const Ps a0 = tEdge - setup - 0.5 * span;
    // Revert ramp 50% point exactly `hold` after the edge:
    const Ps r0 = tEdge + hold - 0.5 * span;
    Volt v = dFrom;
    if (t > a0) {
      const double f = std::min((t - a0) / span, 1.0);
      v = dFrom + (dTo - dFrom) * f;
    }
    if (t > r0) {
      const double f = std::min((t - r0) / span, 1.0);
      v = v + (dFrom - v) * f;
    }
    return v;
  };
  auto clkAt = [&](Ps t) -> Volt {
    const Ps c0 = tEdge - 0.5 * clkSpan;
    if (t <= c0) return 0.0;
    const double f = std::min((t - c0) / clkSpan, 1.0);
    return vdd * f;
  };

  // Initial state: clock low, master transparent on old data, slave holds
  // the complement chain consistent with a previous capture of dFrom.
  double vm = dFrom;
  double vs = invTransfer(dFrom);
  double vq = invTransfer(vs);

  const double w = 0.10 * vdd;  // smoothness of the tgate on/off switch
  const double half = 0.5 * vdd;
  const Volt qTarget = dataRising ? vdd : 0.0;
  const bool qRising = qTarget > half;

  LatchResult res;
  double tCross = -1.0;
  const Ps dt = 0.4;
  double vqPrev = vq;
  for (Ps t = 0.0; t < horizon; t += dt) {
    const double vclk = clkAt(t);
    const double vd = dataAt(t);
    const double sM = logistic((half - vclk) / w);   // master tgate on-ness
    const double sS = 1.0 - sM;                      // slave tgate on-ness
    const double dvm = (gIn_ * sM * (vd - vm) +
                        gFb_ * sS * (regenTarget(vm) - vm)) /
                       cM_ * 1e-3;
    const double dvs = (gSl_ * sS * (invTransfer(vm) - vs) +
                        gFb_ * 0.6 * sM * (regenTarget(vs) - vs)) /
                       cS_ * 1e-3;
    const double dvq =
        gQ_ * (invTransfer(vs) - vq) / (cQ_ + cond_.qLoad) * 1e-3;
    vm += dvm * dt;
    vs += dvs * dt;
    vqPrev = vq;
    vq += dvq * dt;
    if (tCross < 0.0 && t > tEdge - 2.0 * clkSpan) {
      const bool crossed = qRising ? (vqPrev < half && vq >= half)
                                   : (vqPrev > half && vq <= half);
      if (crossed) {
        const double f = (half - vqPrev) / (vq - vqPrev);
        tCross = t + f * dt;
      }
    }
  }
  const bool settledRight = std::abs(vq - qTarget) < 0.1 * vdd;
  if (tCross >= 0.0 && settledRight) {
    res.captured = true;
    res.clockToQ = tCross - tEdge;
  }
  return res;
}

Ps LatchSim::nominalClockToQ(bool dataRising) const {
  return capture(400.0, 400.0, dataRising).clockToQ;
}

Ps LatchSim::setupTime(double pushoutFrac, Ps hold, bool dataRising) const {
  const Ps c2qNom = nominalClockToQ(dataRising);
  const Ps limit = c2qNom * (1.0 + pushoutFrac);
  Ps lo = -50.0;   // known-bad (or trivially failing) side
  Ps hi = 400.0;   // known-good side
  for (int i = 0; i < 22; ++i) {
    const Ps mid = 0.5 * (lo + hi);
    const LatchResult r = capture(mid, hold, dataRising);
    if (r.captured && r.clockToQ <= limit) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

Ps LatchSim::holdTime(double pushoutFrac, Ps setup, bool dataRising) const {
  const Ps c2qNom = nominalClockToQ(dataRising);
  const Ps limit = c2qNom * (1.0 + pushoutFrac);
  Ps lo = -50.0;
  Ps hi = 400.0;
  for (int i = 0; i < 22; ++i) {
    const Ps mid = 0.5 * (lo + hi);
    const LatchResult r = capture(setup, mid, dataRising);
    if (r.captured && r.clockToQ <= limit) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace tc
