#include "device/stage.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tc {

const char* toString(StageKind kind) {
  switch (kind) {
    case StageKind::kInverter: return "INV";
    case StageKind::kNand: return "NAND";
    case StageKind::kNor: return "NOR";
    case StageKind::kAoi21: return "AOI21";
    case StageKind::kOai21: return "OAI21";
  }
  return "?";
}

Volt InputWave::at(Ps t) const {
  if (v0 == v1) return v0;
  const Ps span = rampSpan();
  if (t <= start) return v0;
  if (t >= start + span) return v1;
  return v0 + (v1 - v0) * (t - start) / span;
}

// ---------------------------------------------------------------------------
// PullNetwork
// ---------------------------------------------------------------------------

PullNetwork::Id PullNetwork::addDevice(Mosfet device, int inputIndex) {
  Node n;
  n.kind = Node::Kind::kDevice;
  n.device = device;
  n.input = inputIndex;
  nodes_.push_back(n);
  return static_cast<Id>(nodes_.size()) - 1;
}

PullNetwork::Id PullNetwork::addSeries(Id bottom, Id top) {
  Node n;
  n.kind = Node::Kind::kSeries;
  n.left = bottom;
  n.right = top;
  nodes_.push_back(n);
  return static_cast<Id>(nodes_.size()) - 1;
}

PullNetwork::Id PullNetwork::addParallel(Id a, Id b) {
  Node n;
  n.kind = Node::Kind::kParallel;
  n.left = a;
  n.right = b;
  nodes_.push_back(n);
  return static_cast<Id>(nodes_.size()) - 1;
}

MicroAmp PullNetwork::current(double vBase, double vTop,
                              const std::vector<Volt>& gateV,
                              Celsius t) const {
  if (root_ < 0 || vTop - vBase <= 1e-9) return 0.0;
  return nodeCurrent(root_, vBase, vTop, gateV, t);
}

MicroAmp PullNetwork::nodeCurrent(Id id, double vBase, double vTop,
                                  const std::vector<Volt>& gateV,
                                  Celsius t) const {
  const Node& n = nodes_[static_cast<std::size_t>(id)];
  const double span = vTop - vBase;
  if (span <= 1e-9) return 0.0;
  switch (n.kind) {
    case Node::Kind::kDevice:
      return n.device.current(gateV[static_cast<std::size_t>(n.input)] - vBase,
                              span, t);
    case Node::Kind::kParallel:
      return nodeCurrent(n.left, vBase, vTop, gateV, t) +
             nodeCurrent(n.right, vBase, vTop, gateV, t);
    case Node::Kind::kSeries: {
      // Find the internal node voltage vx where the bottom and top branch
      // currents balance. f(vx) = I_bot(vBase,vx) - I_top(vx,vTop) is
      // monotone increasing; warm-start the bracket from the previous solve.
      auto f = [&](double vx) {
        return nodeCurrent(n.left, vBase, vx, gateV, t) -
               nodeCurrent(n.right, vx, vTop, gateV, t);
      };
      double lo = vBase;
      double hi = vTop;
      if (n.split > vBase && n.split < vTop) {
        const double w = 0.06;
        double wlo = std::max(vBase, n.split - w);
        double whi = std::min(vTop, n.split + w);
        const double flo = f(wlo);
        const double fhi = f(whi);
        if (flo <= 0.0 && fhi >= 0.0) {
          lo = wlo;
          hi = whi;
        } else if (flo > 0.0) {
          hi = wlo;
        } else {
          lo = whi;
        }
      }
      for (int it = 0; it < 28 && hi - lo > 2e-5; ++it) {
        const double mid = 0.5 * (lo + hi);
        if (f(mid) <= 0.0) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      const double vx = 0.5 * (lo + hi);
      n.split = vx;
      return nodeCurrent(n.left, vBase, vx, gateV, t);
    }
  }
  return 0.0;
}

MicroAmp PullNetwork::nodeLeakage(Id id, Volt vds, Celsius t) const {
  const Node& n = nodes_[static_cast<std::size_t>(id)];
  switch (n.kind) {
    case Node::Kind::kDevice:
      return n.device.leakage(vds, t);
    case Node::Kind::kParallel:
      return nodeLeakage(n.left, vds, t) + nodeLeakage(n.right, vds, t);
    case Node::Kind::kSeries:
      // Stack effect: series off-devices leak roughly half the weaker one.
      return 0.5 * std::min(nodeLeakage(n.left, vds, t),
                            nodeLeakage(n.right, vds, t));
  }
  return 0.0;
}

MicroAmp PullNetwork::leakage(Volt vds, Celsius t) const {
  if (root_ < 0) return 0.0;
  return nodeLeakage(root_, vds, t);
}

void PullNetwork::shiftAllVt(Volt dvt) {
  for (auto& n : nodes_)
    if (n.kind == Node::Kind::kDevice) n.device.vtShift += dvt;
}

void PullNetwork::scaleAllK(double scale) {
  for (auto& n : nodes_)
    if (n.kind == Node::Kind::kDevice) n.device.kScale *= scale;
}

std::vector<Mosfet*> PullNetwork::devices() {
  std::vector<Mosfet*> out;
  for (auto& n : nodes_)
    if (n.kind == Node::Kind::kDevice) out.push_back(&n.device);
  return out;
}

void PullNetwork::resetCache() const {
  for (const auto& n : nodes_) n.split = -1.0;
}

// ---------------------------------------------------------------------------
// Stage construction
// ---------------------------------------------------------------------------

namespace {

constexpr double kUnitWn = 0.50;  // um
constexpr double kUnitWp = 1.00;  // um (beta ~ 2 compensates hole mobility)
constexpr double kGateCapFfPerUm = 0.95;
constexpr double kDrainCapFfPerUm = 0.55;

Mosfet makeDevice(DeviceType type, VtClass vt, Um width,
                  const ProcessCondition& corner) {
  Mosfet m;
  m.params = type == DeviceType::kNmos ? makeNmosParams(vt)
                                       : makePmosParams(vt);
  m.width = width;
  if (type == DeviceType::kNmos) {
    m.vtShift = corner.nmosVtShift;
    m.kScale = corner.nmosKScale;
  } else {
    m.vtShift = corner.pmosVtShift;
    m.kScale = corner.pmosKScale;
  }
  return m;
}

/// Build a series chain (index 0 at the base rail) of devices gated by the
/// listed inputs; each device is upsized by the stack depth.
PullNetwork::Id buildSeries(PullNetwork& net, DeviceType type, VtClass vt,
                            double width, const std::vector<int>& inputs,
                            const ProcessCondition& corner) {
  const double stacked = width * static_cast<double>(inputs.size());
  PullNetwork::Id chain =
      net.addDevice(makeDevice(type, vt, stacked, corner), inputs[0]);
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    PullNetwork::Id dev =
        net.addDevice(makeDevice(type, vt, stacked, corner), inputs[i]);
    chain = net.addSeries(chain, dev);
  }
  return chain;
}

PullNetwork::Id buildParallel(PullNetwork& net, DeviceType type, VtClass vt,
                              double width, const std::vector<int>& inputs,
                              const ProcessCondition& corner) {
  PullNetwork::Id bank =
      net.addDevice(makeDevice(type, vt, width, corner), inputs[0]);
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    PullNetwork::Id dev =
        net.addDevice(makeDevice(type, vt, width, corner), inputs[i]);
    bank = net.addParallel(bank, dev);
  }
  return bank;
}

}  // namespace

Stage Stage::make(StageKind kind, int numInputs, VtClass vt, double size,
                  const ProcessCondition& corner) {
  Stage s;
  s.kind_ = kind;
  s.vt_ = vt;
  s.size_ = size;
  const double wn = kUnitWn * size;
  const double wp = kUnitWp * size;
  s.wn_ = wn;
  s.wp_ = wp;

  auto allInputs = [&](int n) {
    std::vector<int> v(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = i;
    return v;
  };

  switch (kind) {
    case StageKind::kInverter:
      s.numInputs_ = 1;
      s.pdn_.setRoot(s.pdn_.addDevice(
          makeDevice(DeviceType::kNmos, vt, wn, corner), 0));
      s.pun_.setRoot(s.pun_.addDevice(
          makeDevice(DeviceType::kPmos, vt, wp, corner), 0));
      break;
    case StageKind::kNand: {
      if (numInputs < 2 || numInputs > 3)
        throw std::invalid_argument("NAND supports 2 or 3 inputs");
      s.numInputs_ = numInputs;
      const auto ins = allInputs(numInputs);
      s.pdn_.setRoot(
          buildSeries(s.pdn_, DeviceType::kNmos, vt, wn, ins, corner));
      s.pun_.setRoot(
          buildParallel(s.pun_, DeviceType::kPmos, vt, wp, ins, corner));
      break;
    }
    case StageKind::kNor: {
      if (numInputs < 2 || numInputs > 3)
        throw std::invalid_argument("NOR supports 2 or 3 inputs");
      s.numInputs_ = numInputs;
      const auto ins = allInputs(numInputs);
      s.pdn_.setRoot(
          buildParallel(s.pdn_, DeviceType::kNmos, vt, wn, ins, corner));
      s.pun_.setRoot(
          buildSeries(s.pun_, DeviceType::kPmos, vt, wp, ins, corner));
      break;
    }
    case StageKind::kAoi21: {
      // out = !((in0 & in1) | in2)
      s.numInputs_ = 3;
      auto andPdn =
          buildSeries(s.pdn_, DeviceType::kNmos, vt, wn, {0, 1}, corner);
      auto orPdn =
          s.pdn_.addDevice(makeDevice(DeviceType::kNmos, vt, wn, corner), 2);
      s.pdn_.setRoot(s.pdn_.addParallel(andPdn, orPdn));
      auto andPun =
          buildParallel(s.pun_, DeviceType::kPmos, vt, 2.0 * wp, {0, 1},
                        corner);
      auto orPun = s.pun_.addDevice(
          makeDevice(DeviceType::kPmos, vt, 2.0 * wp, corner), 2);
      s.pun_.setRoot(s.pun_.addSeries(orPun, andPun));
      break;
    }
    case StageKind::kOai21: {
      // out = !((in0 | in1) & in2)
      s.numInputs_ = 3;
      auto orPdn = buildParallel(s.pdn_, DeviceType::kNmos, vt, 2.0 * wn,
                                 {0, 1}, corner);
      auto andPdn = s.pdn_.addDevice(
          makeDevice(DeviceType::kNmos, vt, 2.0 * wn, corner), 2);
      s.pdn_.setRoot(s.pdn_.addSeries(andPdn, orPdn));
      auto orPun =
          buildSeries(s.pun_, DeviceType::kPmos, vt, wp, {0, 1}, corner);
      auto andPun =
          s.pun_.addDevice(makeDevice(DeviceType::kPmos, vt, wp, corner), 2);
      s.pun_.setRoot(s.pun_.addParallel(orPun, andPun));
      break;
    }
  }
  return s;
}

bool Stage::evalLogic(const std::vector<bool>& in) const {
  switch (kind_) {
    case StageKind::kInverter:
      return !in[0];
    case StageKind::kNand: {
      bool all = true;
      for (int i = 0; i < numInputs_; ++i) all = all && in[static_cast<std::size_t>(i)];
      return !all;
    }
    case StageKind::kNor: {
      bool any = false;
      for (int i = 0; i < numInputs_; ++i) any = any || in[static_cast<std::size_t>(i)];
      return !any;
    }
    case StageKind::kAoi21:
      return !((in[0] && in[1]) || in[2]);
    case StageKind::kOai21:
      return !((in[0] || in[1]) && in[2]);
  }
  return false;
}

bool Stage::nonControllingValue() const {
  switch (kind_) {
    case StageKind::kInverter:
    case StageKind::kNand:
      return true;
    case StageKind::kNor:
    case StageKind::kAoi21:
    case StageKind::kOai21:
      return false;
  }
  return false;
}

/// Value the side input `sidePin` must take so the arc from `switchPin` is
/// sensitized (output toggles when switchPin toggles).
static bool sideInputValue(StageKind kind, int switchPin, int sidePin) {
  switch (kind) {
    case StageKind::kInverter:
      return true;  // unused
    case StageKind::kNand:
      return true;
    case StageKind::kNor:
      return false;
    case StageKind::kAoi21:  // out = !((0&1)|2)
      if (switchPin <= 1) return sidePin <= 1;  // other AND pin=1, OR pin=0
      return sidePin == 1;                      // in0=0, in1=1 (dead)
    case StageKind::kOai21:  // out = !((0|1)&2)
      if (switchPin <= 1) return sidePin == 2;  // other OR pin=0, AND pin=1
      return sidePin == 0;                      // in0=1, in1=0
  }
  return false;
}

Ff Stage::inputCap() const {
  // Average gate cap over inputs; series stacks carry upsized devices, so
  // approximate with the stack-weighted unit widths per topology.
  double wnEff = wn_;
  double wpEff = wp_;
  switch (kind_) {
    case StageKind::kInverter:
      break;
    case StageKind::kNand:
      wnEff *= static_cast<double>(numInputs_);
      break;
    case StageKind::kNor:
      wpEff *= static_cast<double>(numInputs_);
      break;
    case StageKind::kAoi21:
      wnEff *= 5.0 / 3.0;  // two stacked (2w) + one 1w, averaged
      wpEff *= 2.0;
      break;
    case StageKind::kOai21:
      wnEff *= 2.0;
      wpEff *= 5.0 / 3.0;
      break;
  }
  return kGateCapFfPerUm * (wnEff + wpEff);
}

Ff Stage::selfLoad() const {
  return kDrainCapFfPerUm * (wn_ + wp_) *
         (kind_ == StageKind::kInverter ? 1.0 : 1.6);
}

MicroAmp Stage::leakage(const std::vector<bool>& inputs, Volt vdd,
                        Celsius t) const {
  // The off network leaks across the full supply.
  const bool outHigh = evalLogic(inputs);
  return outHigh ? pdn_.leakage(vdd, t) : pun_.leakage(vdd, t);
}

// ---------------------------------------------------------------------------
// Transient solver
// ---------------------------------------------------------------------------

TransientResult simulateStage(Stage& stage, const std::vector<InputWave>& ins,
                              const SimConditions& cond, int referenceInput) {
  const int n = stage.numInputs();
  if (static_cast<int>(ins.size()) != n)
    throw std::invalid_argument("simulateStage: wave count != inputs");
  const Volt vdd = cond.vdd;

  std::vector<bool> initB(static_cast<std::size_t>(n));
  std::vector<bool> finalB(static_cast<std::size_t>(n));
  Ps firstSwitch = cond.tMax;
  Ps lastRampEnd = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto& w = ins[static_cast<std::size_t>(i)];
    initB[static_cast<std::size_t>(i)] = w.v0 > 0.5 * vdd;
    finalB[static_cast<std::size_t>(i)] = w.v1 > 0.5 * vdd;
    if (w.switches()) {
      firstSwitch = std::min(firstSwitch, w.start);
      lastRampEnd = std::max(lastRampEnd, w.start + w.rampSpan());
    }
  }

  const bool outInitHigh = stage.evalLogic(initB);
  const bool outFinalHigh = stage.evalLogic(finalB);
  TransientResult res;
  res.outputRising = !outInitHigh && outFinalHigh;

  Ps tRef = 0.0;
  if (referenceInput >= 0) {
    tRef = ins[static_cast<std::size_t>(referenceInput)].cross50();
  } else {
    tRef = cond.tMax;
    for (const auto& w : ins)
      if (w.switches()) tRef = std::min(tRef, w.cross50());
    if (tRef == cond.tMax) tRef = 0.0;
  }

  double vOut = outInitHigh ? vdd : 0.0;
  const Ff cap = cond.load + stage.selfLoad();
  stage.pullDown().resetCache();
  stage.pullUp().resetCache();

  // Crossing thresholds in the direction of the final transition.
  const double vLo = 0.1 * vdd;
  const double vMid = 0.5 * vdd;
  const double vHi = 0.9 * vdd;
  double tA = -1.0, t50 = -1.0, tB = -1.0;  // 10%, 50%, 90% of the swing

  std::vector<Volt> gvN(static_cast<std::size_t>(n));
  std::vector<Volt> gvP(static_cast<std::size_t>(n));

  Ps t = 0.0;
  double vPrev = vOut;
  const Ps dtMin = 0.05;
  while (t < cond.tMax) {
    for (int i = 0; i < n; ++i) {
      const Volt g = ins[static_cast<std::size_t>(i)].at(t);
      gvN[static_cast<std::size_t>(i)] = g;
      gvP[static_cast<std::size_t>(i)] = vdd - g;
    }
    const MicroAmp ipd = stage.pullDown().current(0.0, vOut, gvN, cond.temp);
    const MicroAmp ipu =
        stage.pullUp().current(0.0, vdd - vOut, gvP, cond.temp);
    const double dvdt = (ipu - ipd) / cap * 1e-3;  // V per ps

    Ps dt;
    if (std::abs(dvdt) > 1e-9) {
      dt = std::clamp(cond.dvTarget / std::abs(dvdt), dtMin, 20.0);
    } else {
      dt = 20.0;
    }
    // Do not step over waveform features.
    if (t < firstSwitch) dt = std::min(dt, firstSwitch - t + dtMin);
    else if (t < lastRampEnd) dt = std::min(dt, 2.0);

    vPrev = vOut;
    vOut = std::clamp(vOut + dvdt * dt, -0.02, vdd + 0.02);
    const Ps tNext = t + dt;

    auto crossed = [&](double thr) -> double {
      if ((vPrev < thr && vOut >= thr) || (vPrev > thr && vOut <= thr)) {
        const double f = (thr - vPrev) / (vOut - vPrev);
        return t + f * dt;
      }
      return -1.0;
    };
    if (res.outputRising) {
      if (tA < 0.0) { const double c = crossed(vLo); if (c >= 0) tA = c; }
      if (t50 < 0.0) { const double c = crossed(vMid); if (c >= 0) t50 = c; }
      if (tB < 0.0) { const double c = crossed(vHi); if (c >= 0) tB = c; }
    } else {
      if (tA < 0.0) { const double c = crossed(vHi); if (c >= 0) tA = c; }
      if (t50 < 0.0) { const double c = crossed(vMid); if (c >= 0) t50 = c; }
      if (tB < 0.0) { const double c = crossed(vLo); if (c >= 0) tB = c; }
    }

    t = tNext;
    if (tB >= 0.0 && t > lastRampEnd) break;  // transition complete
    if (t > lastRampEnd && std::abs(dvdt) < 2e-7 && t > lastRampEnd + 100.0)
      break;  // settled without (further) transition
  }

  res.vFinal = vOut;
  if (t50 >= 0.0 && tB >= 0.0 && tA >= 0.0) {
    res.completed = true;
    res.delay50 = t50 - tRef;
    res.outputSlew = std::abs(tB - tA);
  }
  return res;
}

TransientResult simulateArc(Stage& stage, int pin, bool inputRising,
                            Ps inputSlew, const SimConditions& cond) {
  const int n = stage.numInputs();
  std::vector<InputWave> waves(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& w = waves[static_cast<std::size_t>(i)];
    if (i == pin) {
      w.v0 = inputRising ? 0.0 : cond.vdd;
      w.v1 = inputRising ? cond.vdd : 0.0;
      w.start = 40.0;
      w.slew = inputSlew;
    } else {
      const bool v = sideInputValue(stage.kind(), pin, i);
      w.v0 = w.v1 = v ? cond.vdd : 0.0;
    }
  }
  return simulateStage(stage, waves, cond, pin);
}

}  // namespace tc
