#include "liberty/serialize.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include <unistd.h>

#include "util/binio.h"
#include "util/checksum.h"

namespace tc {

namespace {

constexpr std::uint32_t kMagic = 0x54434C42;  // "TCLB"
// v7: CRC32-framed body (header gains body checksum + body size; the body
// record layout itself is unchanged, so snapshot-embedded libraries are
// unaffected).
constexpr std::uint32_t kVersion = 7;

using binio::getF64;
using binio::getI32;
using binio::getStr;
using binio::getU32;
using binio::getVec;
using binio::putF64;
using binio::putI32;
using binio::putStr;
using binio::putU32;
using binio::putVec;

void putTable(std::ostream& os, const Table2D& t) {
  if (t.empty()) {
    putU32(os, 0);
    return;
  }
  putU32(os, 1);
  putVec(os, t.xAxis().points());
  putVec(os, t.yAxis().points());
  std::vector<double> vals;
  vals.reserve(t.xAxis().size() * t.yAxis().size());
  for (std::size_t i = 0; i < t.xAxis().size(); ++i)
    for (std::size_t j = 0; j < t.yAxis().size(); ++j)
      vals.push_back(t.at(i, j));
  putVec(os, vals);
}

bool getTable(std::istream& is, Table2D& t) {
  std::uint32_t present = 0;
  if (!getU32(is, present)) return false;
  if (!present) {
    t = Table2D();
    return true;
  }
  std::vector<double> xs, ys, vals;
  if (!getVec(is, xs) || !getVec(is, ys) || !getVec(is, vals)) return false;
  if (vals.size() != xs.size() * ys.size()) return false;
  t = Table2D(Axis(xs), Axis(ys), vals);
  return true;
}

void putSurface(std::ostream& os, const NldmSurface& s) {
  putTable(os, s.delay);
  putTable(os, s.slew);
}
bool getSurface(std::istream& is, NldmSurface& s) {
  return getTable(is, s.delay) && getTable(is, s.slew);
}
void putLvf(std::ostream& os, const LvfSurface& s) {
  putTable(os, s.sigmaEarly);
  putTable(os, s.sigmaLate);
}
bool getLvf(std::istream& is, LvfSurface& s) {
  return getTable(is, s.sigmaEarly) && getTable(is, s.sigmaLate);
}

}  // namespace

void writeLibraryBody(std::ostream& os, const Library& lib) {
  putStr(os, lib.name());
  putI32(os, static_cast<std::int32_t>(lib.pvt().corner));
  putF64(os, lib.pvt().vdd);
  putF64(os, lib.pvt().temp);

  putU32(os, static_cast<std::uint32_t>(lib.cellCount()));
  for (int ci = 0; ci < lib.cellCount(); ++ci) {
    const Cell& c = lib.cell(ci);
    putStr(os, c.name);
    putStr(os, c.footprint);
    putI32(os, static_cast<std::int32_t>(c.kind));
    putI32(os, c.isBuffer ? 1 : 0);
    putI32(os, c.isSequential ? 1 : 0);
    putI32(os, c.numInputs);
    putI32(os, c.drive);
    putI32(os, static_cast<std::int32_t>(c.vt));
    putF64(os, c.pinCap);
    putI32(os, c.widthSites);
    putF64(os, c.area);
    putF64(os, c.leakagePower);
    putF64(os, c.switchEnergy);
    putF64(os, c.pocvSigmaRatio);
    putF64(os, c.mis.parallelFactor);
    putF64(os, c.mis.seriesFactor);
    putI32(os, c.mis.parallelIsRise ? 1 : 0);
    putU32(os, static_cast<std::uint32_t>(c.arcs.size()));
    for (const TimingArc& a : c.arcs) {
      putI32(os, a.fromPin);
      putI32(os, static_cast<std::int32_t>(a.unate));
      putSurface(os, a.rise);
      putSurface(os, a.fall);
      putLvf(os, a.riseLvf);
      putLvf(os, a.fallLvf);
    }
    putI32(os, c.flop ? 1 : 0);
    if (c.flop) {
      const FlopTiming& f = *c.flop;
      putF64(os, f.setup);
      putF64(os, f.hold);
      putF64(os, f.clockToQ);
      putSurface(os, f.c2qRise);
      putSurface(os, f.c2qFall);
      const InterdepFlopModel& m = f.interdep;
      for (double v : {m.c2q0, m.aS, m.tauS, m.s0, m.aH, m.tauH, m.h0,
                       m.sMin, m.hMin})
        putF64(os, v);
    }
  }
  // AOCV tables.
  const AocvTables& a = lib.aocv();
  putU32(os, static_cast<std::uint32_t>(a.depths.size()));
  for (int d : a.depths) putI32(os, d);
  putVec(os, a.lateDerate);
  putVec(os, a.earlyDerate);
  putF64(os, a.distanceSlopePerMm);
}

std::shared_ptr<Library> readLibraryBody(std::istream& is,
                                         DiagnosticSink* sink,
                                         const std::string& entity) {
  // A truncated read at any point means the stream ends mid-structure; the
  // byte offset where it ran dry pinpoints how much survived.
  auto truncated = [&](std::istream& s, const char* what) {
    if (sink) {
      const auto pos = s.tellg();
      sink->error(DiagCode::kLibTruncated,
                  std::string("library stream truncated reading ") + what +
                      (pos >= 0 ? " near byte " + std::to_string(pos)
                                : std::string(" (offset unknown)")),
                  entity);
    }
    return std::shared_ptr<Library>();
  };
  auto corrupt = [&](const std::string& what) {
    if (sink) sink->error(DiagCode::kLibCorrupt, what, entity);
    return std::shared_ptr<Library>();
  };

  std::string name;
  std::int32_t corner = 0;
  double vdd = 0, temp = 0;
  if (!getStr(is, name) || !getI32(is, corner) || !getF64(is, vdd) ||
      !getF64(is, temp))
    return truncated(is, "header");
  auto lib = std::make_shared<Library>(
      name, LibraryPvt{static_cast<ProcessCorner>(corner), vdd, temp});

  std::uint32_t nCells = 0;
  if (!getU32(is, nCells)) return truncated(is, "cell count");
  if (nCells > 100000)
    return corrupt("implausible cell count " + std::to_string(nCells));
  for (std::uint32_t ci = 0; ci < nCells; ++ci) {
    Cell c;
    std::int32_t kind = 0, isBuf = 0, isSeq = 0, vt = 0, unate = 0,
                 hasFlop = 0, parIsRise = 0;
    if (!getStr(is, c.name) || !getStr(is, c.footprint) ||
        !getI32(is, kind) || !getI32(is, isBuf) || !getI32(is, isSeq) ||
        !getI32(is, c.numInputs) || !getI32(is, c.drive) || !getI32(is, vt) ||
        !getF64(is, c.pinCap) || !getI32(is, c.widthSites) ||
        !getF64(is, c.area) || !getF64(is, c.leakagePower) ||
        !getF64(is, c.switchEnergy) || !getF64(is, c.pocvSigmaRatio) ||
        !getF64(is, c.mis.parallelFactor) || !getF64(is, c.mis.seriesFactor) ||
        !getI32(is, parIsRise))
      return truncated(is, "cell record");
    c.kind = static_cast<StageKind>(kind);
    c.isBuffer = isBuf != 0;
    c.isSequential = isSeq != 0;
    c.vt = static_cast<VtClass>(vt);
    c.mis.parallelIsRise = parIsRise != 0;
    std::uint32_t nArcs = 0;
    if (!getU32(is, nArcs)) return truncated(is, "arc count");
    if (nArcs > 64)
      return corrupt("implausible arc count " + std::to_string(nArcs) +
                     " in cell " + c.name);
    for (std::uint32_t ai = 0; ai < nArcs; ++ai) {
      TimingArc arc;
      if (!getI32(is, arc.fromPin) || !getI32(is, unate))
        return truncated(is, "timing arc");
      arc.unate = static_cast<Unateness>(unate);
      if (!getSurface(is, arc.rise) || !getSurface(is, arc.fall) ||
          !getLvf(is, arc.riseLvf) || !getLvf(is, arc.fallLvf))
        return truncated(is, "arc tables");
      c.arcs.push_back(std::move(arc));
    }
    if (!getI32(is, hasFlop)) return truncated(is, "flop flag");
    if (hasFlop) {
      FlopTiming f;
      if (!getF64(is, f.setup) || !getF64(is, f.hold) ||
          !getF64(is, f.clockToQ) || !getSurface(is, f.c2qRise) ||
          !getSurface(is, f.c2qFall))
        return truncated(is, "flop timing");
      InterdepFlopModel& m = f.interdep;
      for (double* v : {&m.c2q0, &m.aS, &m.tauS, &m.s0, &m.aH, &m.tauH,
                        &m.h0, &m.sMin, &m.hMin})
        if (!getF64(is, *v)) return truncated(is, "interdep model");
      c.flop = f;
    }
    lib->addCell(std::move(c));
  }
  AocvTables a;
  std::uint32_t nDepths = 0;
  if (!getU32(is, nDepths)) return truncated(is, "AOCV depth count");
  if (nDepths > 64)
    return corrupt("implausible AOCV depth count " + std::to_string(nDepths));
  a.depths.resize(nDepths);
  for (auto& d : a.depths)
    if (!getI32(is, d)) return truncated(is, "AOCV depths");
  if (!getVec(is, a.lateDerate) || !getVec(is, a.earlyDerate) ||
      !getF64(is, a.distanceSlopePerMm))
    return truncated(is, "AOCV tables");
  lib->aocv() = a;
  return lib;
}

namespace {

/// TC_CHAR_FAULT write-side hooks (see liberty/builder.cpp for build_fail):
/// "torn_write" publishes a deliberately truncated image at the final path
/// (simulating a pre-atomic-rename writer dying mid-write); "skip_rename"
/// writes the temp file but never renames it (writer died between write
/// and rename). Both must leave readers falling back to re-characterize.
bool charFaultIs(const char* name) {
  const char* v = std::getenv("TC_CHAR_FAULT");
  return v && std::strcmp(v, name) == 0;
}

}  // namespace

bool writeLibraryFile(const Library& lib, const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path(), ec);
  if (ec) return false;

  // Serialize the whole CRC-framed image in memory first: the checksum
  // covers the body, and the file only ever appears on disk complete.
  std::ostringstream body;
  writeLibraryBody(body, lib);
  const std::string bodyBytes = body.str();
  std::ostringstream image;
  putU32(image, kMagic);
  putU32(image, kVersion);
  putU32(image, crc32(bodyBytes.data(), bodyBytes.size()));
  putU32(image, static_cast<std::uint32_t>(bodyBytes.size()));
  image.write(bodyBytes.data(),
              static_cast<std::streamsize>(bodyBytes.size()));
  const std::string bytes = image.str();

  if (charFaultIs("torn_write")) {
    // Fault: a non-atomic writer died mid-write, leaving a torn entry at
    // the FINAL path. Readers must detect and re-characterize.
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
    return false;
  }

  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!os) {
      os.close();
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  if (charFaultIs("skip_rename")) return false;  // died before the rename
  std::filesystem::rename(tmp, path, ec);  // atomic on POSIX
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

namespace {

std::shared_ptr<Library> readLibraryFileImpl(const std::string& path,
                                             DiagnosticSink* sink) {
  auto truncated = [&](std::istream& s, const char* what) {
    if (sink) {
      const auto pos = s.tellg();
      sink->error(DiagCode::kLibTruncated,
                  std::string("library file truncated reading ") + what +
                      (pos >= 0 ? " near byte " + std::to_string(pos)
                                : std::string(" (offset unknown)")),
                  path);
    }
    return std::shared_ptr<Library>();
  };

  std::ifstream is(path, std::ios::binary);
  if (!is) {
    if (sink)
      sink->note(DiagCode::kLibMissingFile, "library cache file not found",
                 path);
    return nullptr;
  }
  std::uint32_t magic = 0, version = 0;
  if (!getU32(is, magic)) return truncated(is, "magic");
  if (magic != kMagic) {
    if (sink)
      sink->error(DiagCode::kLibBadMagic,
                  "not a tc library file (bad magic word)", path);
    return nullptr;
  }
  if (!getU32(is, version)) return truncated(is, "version");
  if (version != kVersion) {
    if (sink)
      sink->note(DiagCode::kLibVersionMismatch,
                 "library format v" + std::to_string(version) +
                     " != expected v" + std::to_string(kVersion) +
                     "; re-characterize",
                 path);
    return nullptr;
  }
  std::uint32_t bodyCrc = 0, bodySize = 0;
  if (!getU32(is, bodyCrc)) return truncated(is, "body checksum");
  if (!getU32(is, bodySize)) return truncated(is, "body size");
  std::string body(bodySize, '\0');
  if (!is.read(body.data(), static_cast<std::streamsize>(bodySize)))
    return truncated(is, "body");
  // Exactly one framed body per file: trailing garbage means the file was
  // appended to or spliced — treat like any other corruption.
  if (is.peek() != std::char_traits<char>::eof()) {
    if (sink)
      sink->error(DiagCode::kLibCorrupt,
                  "trailing bytes after framed library body", path);
    return nullptr;
  }
  const std::uint32_t actual = crc32(body.data(), body.size());
  if (actual != bodyCrc) {
    if (sink) {
      std::ostringstream msg;
      msg << "library body checksum mismatch: header 0x" << std::hex
          << std::setw(8) << std::setfill('0') << bodyCrc << ", computed 0x"
          << std::setw(8) << actual << " (torn write or bit rot)";
      sink->error(DiagCode::kLibChecksumMismatch, msg.str(), path);
    }
    return nullptr;
  }
  std::istringstream bodyStream(body);
  auto lib = readLibraryBody(bodyStream, sink, path);
  if (lib && bodyStream.peek() != std::char_traits<char>::eof()) {
    // The CRC matched but the body parser stopped early: a record-count
    // field inside the (intact) body disagrees with the byte count.
    if (sink)
      sink->error(DiagCode::kLibCorrupt,
                  "library body longer than its parsed records", path);
    return nullptr;
  }
  return lib;
}

}  // namespace

std::shared_ptr<Library> readLibraryFile(const std::string& path,
                                         DiagnosticSink* sink) {
  // Construction invariants (strictly increasing axes, unique cell names)
  // throw when fed corrupt-but-well-framed bytes; a bad cache file must
  // never take the process down, so those become kLibCorrupt diagnostics.
  try {
    return readLibraryFileImpl(path, sink);
  } catch (const std::exception& e) {
    if (sink)
      sink->error(DiagCode::kLibCorrupt,
                  std::string("library file violates invariants: ") +
                      e.what(),
                  path);
    return nullptr;
  }
}

std::shared_ptr<Library> readLibraryFile(const std::string& path) {
  return readLibraryFile(path, nullptr);
}

std::string libraryCachePath(const LibraryPvt& pvt, std::uint64_t cfgDigest) {
  const char* env = std::getenv("TC_LIB_CACHE_DIR");
  const std::string dir = env ? env : "/tmp/tc_libcache";
  std::ostringstream name;
  name << dir << "/v" << kVersion << '_' << pvt.toString() << "_cfg"
       << std::hex << std::setw(16) << std::setfill('0') << cfgDigest
       << ".tclib";
  return name.str();
}

}  // namespace tc
