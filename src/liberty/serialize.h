#pragma once
/// \file serialize.h
/// \brief Binary persistence for characterized libraries.
///
/// Characterization drives thousands of transient simulations; production
/// flows characterize once and ship .lib/.db files. This module plays that
/// role: buildLibrary results are cached on disk (versioned, keyed by PVT
/// and characterization mode) and reloaded by later processes.

#include <memory>
#include <string>

#include "liberty/library.h"

namespace tc {

/// Serialize a library to a binary file. Returns false on I/O failure.
bool writeLibraryFile(const Library& lib, const std::string& path);

/// Load a library written by writeLibraryFile. Returns nullptr on missing
/// file, version mismatch, or corruption (callers then re-characterize).
std::shared_ptr<Library> readLibraryFile(const std::string& path);

/// Cache path for a PVT/mode (under $TC_LIB_CACHE_DIR, default
/// /tmp/tc_libcache).
std::string libraryCachePath(const LibraryPvt& pvt, bool quick);

}  // namespace tc
