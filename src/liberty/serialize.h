#pragma once
/// \file serialize.h
/// \brief Binary persistence for characterized libraries.
///
/// Characterization drives thousands of transient simulations; production
/// flows characterize once and ship .lib/.db files. This module plays that
/// role: buildLibrary results are cached on disk (versioned, keyed by PVT
/// and characterization mode) and reloaded by later processes.

#include <cstdint>
#include <memory>
#include <string>

#include "liberty/library.h"
#include "util/diag.h"

namespace tc {

/// Serialize a library to a binary file. Returns false on I/O failure.
///
/// Crash-safe and torn-read-proof: the CRC32-framed image (magic, version,
/// body checksum, body size, body) is serialized in memory, written to a
/// sibling temp file, and atomically renamed into place — a reader never
/// observes a half-written entry, and a writer that dies mid-flight leaves
/// only a stale .tmp that the next write overwrites.
bool writeLibraryFile(const Library& lib, const std::string& path);

/// Load a library written by writeLibraryFile. Returns nullptr on missing
/// file, version mismatch, or corruption (callers then re-characterize).
///
/// With a sink, the reason is reported as a diagnostic instead of being
/// silently swallowed: a missing file or version mismatch is a note (cache
/// misses are routine), a bad magic word or implausible structure count is
/// an error, truncation is an error carrying the byte offset where the
/// stream ran dry, and a body that fails its CRC32 (bit rot, torn write
/// from a pre-atomic-rename writer) is a kLibChecksumMismatch error.
std::shared_ptr<Library> readLibraryFile(const std::string& path,
                                         DiagnosticSink* sink);
std::shared_ptr<Library> readLibraryFile(const std::string& path);

/// Cache path for one characterization key (under $TC_LIB_CACHE_DIR,
/// default /tmp/tc_libcache). `cfgDigest` is charConfigDigest(cfg): the
/// file name carries the format version, PVT, and the full-config digest,
/// so entries from different knobs or binary generations never collide.
std::string libraryCachePath(const LibraryPvt& pvt, std::uint64_t cfgDigest);

// ---------------------------------------------------------------------------
// Stream-level body, without the file magic/version framing. Design
// snapshots (signoff/snapshot.h) embed characterized libraries inside their
// own versioned, checksummed container, so they reuse the record layout but
// not the file header. writeLibraryFile/readLibraryFile are these plus the
// magic word and format version.
// ---------------------------------------------------------------------------

/// Append one library's records to `os`. The encoding round-trips bitwise:
/// body(read(body(lib))) == body(lib) byte for byte.
void writeLibraryBody(std::ostream& os, const Library& lib);

/// Parse one library body from `is`. Returns nullptr on truncation or an
/// implausible count (reported to `sink` against `entity`). Construction
/// invariants (duplicate cell names, non-monotone axes) THROW on
/// corrupt-but-well-framed bytes — callers embedding the body in a larger
/// container must wrap the parse like readLibraryFile does.
std::shared_ptr<Library> readLibraryBody(std::istream& is,
                                         DiagnosticSink* sink,
                                         const std::string& entity);

}  // namespace tc
