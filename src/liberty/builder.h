#pragma once
/// \file builder.h
/// \brief Library characterization: builds a complete standard-cell library
/// by driving the device-level simulator over (slew x load) grids at a
/// given PVT point — the same SPICE -> .lib provenance chain a foundry
/// library has, so that model-vs-silicon questions (LVF vs POCV accuracy,
/// MIS gaps, corner pessimism) are answerable *within* the framework.
///
/// The cell zoo: INV/BUF/NAND2/NAND3/NOR2/NOR3/AOI21/OAI21/DFF, each in
/// four Vt flavors and drive strengths X1..X8. Only the X1 variant of each
/// (template, Vt) is simulated; higher drives are derived exactly (current
/// and capacitance both scale linearly with width in the device model, so
/// delay_k(slew, load) == delay_1(slew, load/k)).

#include <cstdint>
#include <memory>
#include <vector>

#include "device/process.h"
#include "liberty/library.h"

namespace tc {

/// Characterization knobs.
struct CharConfig {
  std::vector<Ps> slews{12.0, 30.0, 70.0, 160.0};  ///< input 10-90 slews
  std::vector<Ff> loadsX1{1.0, 2.5, 6.0, 15.0};    ///< loads for X1 cells
  std::vector<VtClass> vts{VtClass::kUlvt, VtClass::kLvt, VtClass::kSvt,
                           VtClass::kHvt};
  std::vector<int> combDrives{1, 2, 4, 8};
  std::vector<int> flopDrives{1, 2, 4};
  MismatchModel mismatch{};
  double lvfSigmaScale = 1.0;  ///< node-dependent mismatch growth
  bool quick = false;  ///< 3x3 grid, center-point LVF; for unit tests

  // --- active-learning characterization (SetupKit-style) -------------------
  // Instead of simulating every slew x load grid point, seed a coarse
  // sub-rectangular sample per arc, fit a deterministic bias-enhanced
  // interpolant (global ridge trend + bilinear residual over the sampled
  // subgrid), and query the device simulator only where leave-one-out
  // model uncertainty exceeds the tolerance. The final tables live on the
  // SAME full grid: sampled points carry exact transient results,
  // unsampled points carry the model. errorTolPs <= 0 degenerates to the
  // full-grid brute force, bitwise identical to adaptive = false.
  bool adaptive = false;       ///< enable active-learning sampling
  Ps errorTolPs = 0.0;         ///< target max abs delay/slew error vs full grid
  double sigmaGuardband = 1.3;  ///< pessimism factor on modeled LVF sigmas
  int seedPerAxis = 3;         ///< seed rows/cols per axis (incl. endpoints)
};

/// Order-sensitive 64-bit digest over EVERY CharConfig knob (grids, Vt and
/// drive lists, mismatch model, sigma scale, quick/adaptive settings). The
/// characterization memo and the on-disk cache are keyed on it, so two
/// callers with different knobs can never alias to one cached library.
std::uint64_t charConfigDigest(const CharConfig& cfg);

/// Characterize a full library at the given PVT.
std::shared_ptr<Library> buildLibrary(const LibraryPvt& pvt,
                                      const CharConfig& cfg = {});

/// Process-wide memoized characterization (libraries are immutable), keyed
/// on {PVT, charConfigDigest(cfg)} and backed by the versioned on-disk
/// cache (liberty/serialize.h). A failed build never poisons the memo:
/// the entry is dropped before waiters are woken, so a retry (from any
/// thread) re-characterizes.
std::shared_ptr<const Library> characterizedLibrary(const LibraryPvt& pvt,
                                                    const CharConfig& cfg);
std::shared_ptr<const Library> characterizedLibrary(const LibraryPvt& pvt,
                                                    bool quick = false);

/// Touch the liberty.char.* counters so metrics listings (the server's
/// `metrics` command, bench JSON reports) surface them before the first
/// characterization request.
void registerCharMetrics();

}  // namespace tc
