#include "liberty/liberty_writer.h"

#include <ostream>
#include <sstream>

namespace tc {

namespace {

void writeValuesBlock(const Table2D& t, std::ostream& os,
                      const char* indent) {
  os << indent << "index_1 (\"";
  for (std::size_t i = 0; i < t.xAxis().size(); ++i) {
    if (i) os << ", ";
    os << t.xAxis()[i];
  }
  os << "\");\n" << indent << "index_2 (\"";
  for (std::size_t j = 0; j < t.yAxis().size(); ++j) {
    if (j) os << ", ";
    os << t.yAxis()[j];
  }
  os << "\");\n" << indent << "values ( \\\n";
  for (std::size_t i = 0; i < t.xAxis().size(); ++i) {
    os << indent << "  \"";
    for (std::size_t j = 0; j < t.yAxis().size(); ++j) {
      if (j) os << ", ";
      os << t.at(i, j);
    }
    os << "\"" << (i + 1 < t.xAxis().size() ? ", \\\n" : " \\\n");
  }
  os << indent << ");\n";
}

void writeSurface(const char* group, const NldmSurface& s,
                  std::ostream& os) {
  if (s.empty()) return;
  os << "        " << group << " (nldm_template) {\n";
  writeValuesBlock(s.delay, os, "          ");
  os << "        }\n";
  os << "        " << (std::string(group) == "cell_rise"
                           ? "rise_transition"
                           : "fall_transition")
     << " (nldm_template) {\n";
  writeValuesBlock(s.slew, os, "          ");
  os << "        }\n";
}

void writeLvf(const char* tag, const LvfSurface& s, std::ostream& os) {
  if (s.empty()) return;
  os << "        ocv_sigma_" << tag << " (nldm_template) { /* LVF */\n";
  writeValuesBlock(s.sigmaLate, os, "          ");
  os << "        }\n";
}

}  // namespace

void writeLiberty(const Library& lib, std::ostream& os, int maxCells) {
  os << "/* written by goalposts */\n";
  os << "library (" << lib.name() << ") {\n";
  os << "  delay_model : table_lookup;\n";
  os << "  time_unit : \"1ps\";\n";
  os << "  capacitive_load_unit (1, ff);\n";
  os << "  nom_voltage : " << lib.pvt().vdd << ";\n";
  os << "  nom_temperature : " << lib.pvt().temp << ";\n";
  os << "  nom_process : 1.0; /* " << toString(lib.pvt().corner) << " */\n";
  os << "  lu_table_template (nldm_template) {\n";
  os << "    variable_1 : input_net_transition;\n";
  os << "    variable_2 : total_output_net_capacitance;\n";
  os << "  }\n\n";

  const int count = maxCells < 0
                        ? lib.cellCount()
                        : std::min(maxCells, lib.cellCount());
  for (int ci = 0; ci < count; ++ci) {
    const Cell& c = lib.cell(ci);
    os << "  cell (" << c.name << ") {\n";
    os << "    area : " << c.area << ";\n";
    os << "    cell_leakage_power : " << c.leakagePower << ";\n";
    if (c.isSequential) {
      os << "    ff (IQ, IQN) { clocked_on : \"CK\"; next_state : \"D\"; }\n";
      os << "    pin (D) {\n      direction : input;\n      capacitance : "
         << c.pinCap << ";\n";
      if (c.flop) {
        os << "      timing () { timing_type : setup_rising; "
              "related_pin : \"CK\"; /* "
           << c.flop->setup << " ps */ }\n";
        os << "      timing () { timing_type : hold_rising; "
              "related_pin : \"CK\"; /* "
           << c.flop->hold << " ps */ }\n";
      }
      os << "    }\n";
      os << "    pin (CK) { direction : input; clock : true; capacitance : "
         << c.pinCap << "; }\n";
      os << "    pin (Q) {\n      direction : output;\n";
      if (c.flop) {
        os << "      timing () {\n        related_pin : \"CK\";\n"
              "        timing_type : rising_edge;\n";
        writeSurface("cell_rise", c.flop->c2qRise, os);
        os << "      }\n";
      }
      os << "    }\n";
    } else {
      for (int pin = 0; pin < c.numInputs; ++pin) {
        static const char* kPins[] = {"A", "B", "C"};
        os << "    pin (" << kPins[pin]
           << ") { direction : input; capacitance : " << c.pinCap << "; }\n";
      }
      os << "    pin (Y) {\n      direction : output;\n";
      for (const TimingArc& arc : c.arcs) {
        static const char* kPins[] = {"A", "B", "C"};
        os << "      timing () {\n        related_pin : \""
           << kPins[arc.fromPin] << "\";\n        timing_sense : "
           << (arc.unate == Unateness::kPositive ? "positive_unate"
                                                 : "negative_unate")
           << ";\n";
        writeSurface("cell_rise", arc.rise, os);
        writeSurface("cell_fall", arc.fall, os);
        writeLvf("cell_rise", arc.riseLvf, os);
        writeLvf("cell_fall", arc.fallLvf, os);
        os << "      }\n";
      }
      os << "    }\n";
    }
    os << "  }\n";
  }
  os << "}\n";
}

std::string toLiberty(const Library& lib, int maxCells) {
  std::ostringstream os;
  writeLiberty(lib, os, maxCells);
  return os.str();
}

}  // namespace tc
