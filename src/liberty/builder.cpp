#include "liberty/builder.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <future>
#include <map>
#include <mutex>
#include <stdexcept>

#include "device/latch.h"
#include "device/stage.h"
#include "liberty/interdep.h"
#include "liberty/serialize.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace tc {

namespace {

constexpr double kSiteWidthUm = 0.2;
constexpr double kRowHeightUm = 1.8;

struct Template {
  StageKind kind;
  int numInputs;
  const char* footprint;
  int baseWidthSites;
};

const std::vector<Template>& combTemplates() {
  static const std::vector<Template> kTemplates = {
      {StageKind::kInverter, 1, "INV", 2},
      {StageKind::kNand, 2, "NAND2", 3},
      {StageKind::kNand, 3, "NAND3", 4},
      {StageKind::kNor, 2, "NOR2", 3},
      {StageKind::kNor, 3, "NOR3", 4},
      {StageKind::kAoi21, 3, "AOI21", 4},
      {StageKind::kOai21, 3, "OAI21", 4},
  };
  return kTemplates;
}

std::string cellName(const char* footprint, int drive, VtClass vt) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s_X%d_%s", footprint, drive, toString(vt));
  return buf;
}

int widthSitesFor(int baseSites, int drive) {
  // Wider devices fold into more sites; sublinear growth like real libraries.
  return baseSites + (drive - 1) * std::max(baseSites / 2, 1);
}

/// Per-cell composite mismatch sigma: all devices shifted together by the
/// per-device sigma divided by sqrt(#devices) preserves the delay variance
/// of independent per-device shifts when sensitivities are comparable.
Volt compositeSigma(Stage& stage, const MismatchModel& mm, double scale) {
  double meanW = 0.0;
  int n = 0;
  for (Mosfet* m : stage.pullDown().devices()) {
    meanW += m->width;
    ++n;
  }
  for (Mosfet* m : stage.pullUp().devices()) {
    meanW += m->width;
    ++n;
  }
  if (n == 0) return 0.0;
  meanW /= n;
  return scale * mm.sigmaVt(meanW) / std::sqrt(static_cast<double>(n));
}

struct ArcChar {
  NldmSurface rise, fall;
  LvfSurface riseLvf, fallLvf;
  double pocvAccum = 0.0;
  int pocvCount = 0;
};

/// Characterize the arc from `pin` of one X1 stage over the grid.
ArcChar characterizeArc(StageKind kind, int numInputs, VtClass vt, int pin,
                        const ProcessCondition& pc, const LibraryPvt& pvt,
                        const CharConfig& cfg, const std::vector<Ps>& slews,
                        const std::vector<Ff>& loads) {
  ArcChar out;
  const std::size_t ns = slews.size();
  const std::size_t nl = loads.size();
  std::vector<double> dRise(ns * nl), sRise(ns * nl), dFall(ns * nl),
      sFall(ns * nl);
  std::vector<double> sigERise(ns * nl, 0.0), sigLRise(ns * nl, 0.0),
      sigEFall(ns * nl, 0.0), sigLFall(ns * nl, 0.0);

  Stage nomStage = Stage::make(kind, numInputs, vt, 1.0, pc);
  const Volt sigma = compositeSigma(nomStage, cfg.mismatch, cfg.lvfSigmaScale);
  Stage slowStage = Stage::make(kind, numInputs, vt, 1.0, pc);
  slowStage.pullDown().shiftAllVt(sigma);
  slowStage.pullUp().shiftAllVt(sigma);
  Stage fastStage = Stage::make(kind, numInputs, vt, 1.0, pc);
  fastStage.pullDown().shiftAllVt(-sigma);
  fastStage.pullUp().shiftAllVt(-sigma);

  SimConditions sim;
  sim.vdd = pvt.vdd;
  sim.temp = pvt.temp;

  const std::size_t centerIdx = (ns / 2) * nl + nl / 2;
  for (std::size_t i = 0; i < ns; ++i) {
    for (std::size_t j = 0; j < nl; ++j) {
      const std::size_t idx = i * nl + j;
      sim.load = loads[j];
      // Negative-unate templates: input rising -> output falling.
      const auto fallRes = simulateArc(nomStage, pin, true, slews[i], sim);
      const auto riseRes = simulateArc(nomStage, pin, false, slews[i], sim);
      if (!fallRes.completed || !riseRes.completed)
        throw std::runtime_error("characterization transient incomplete");
      dFall[idx] = fallRes.delay50;
      sFall[idx] = fallRes.outputSlew;
      dRise[idx] = riseRes.delay50;
      sRise[idx] = riseRes.outputSlew;

      const bool doLvf = !cfg.quick || idx == centerIdx;
      if (doLvf && sigma > 0.0) {
        const auto fallSlow = simulateArc(slowStage, pin, true, slews[i], sim);
        const auto riseSlow = simulateArc(slowStage, pin, false, slews[i], sim);
        const auto fallFast = simulateArc(fastStage, pin, true, slews[i], sim);
        const auto riseFast = simulateArc(fastStage, pin, false, slews[i], sim);
        sigLFall[idx] = std::max(fallSlow.delay50 - dFall[idx], 0.0);
        sigEFall[idx] = std::max(dFall[idx] - fallFast.delay50, 0.0);
        sigLRise[idx] = std::max(riseSlow.delay50 - dRise[idx], 0.0);
        sigERise[idx] = std::max(dRise[idx] - riseFast.delay50, 0.0);
        // Skip near-zero-delay grid points (large slew into a tiny load can
        // put the 50%-50% delay near or below zero): a ratio there is
        // meaningless and would poison the cell's POCV coefficient.
        if (dFall[idx] > 2.0 && dRise[idx] > 2.0) {
          out.pocvAccum += 0.5 * (sigLFall[idx] / dFall[idx] +
                                  sigLRise[idx] / dRise[idx]);
          out.pocvCount += 1;
        }
      }
    }
  }

  if (cfg.quick && sigma > 0.0) {
    // Scale the center-point sigma across the grid proportionally to delay.
    const double rRiseL = sigLRise[centerIdx] / std::max(dRise[centerIdx], 1e-9);
    const double rRiseE = sigERise[centerIdx] / std::max(dRise[centerIdx], 1e-9);
    const double rFallL = sigLFall[centerIdx] / std::max(dFall[centerIdx], 1e-9);
    const double rFallE = sigEFall[centerIdx] / std::max(dFall[centerIdx], 1e-9);
    for (std::size_t idx = 0; idx < ns * nl; ++idx) {
      sigLRise[idx] = rRiseL * dRise[idx];
      sigERise[idx] = rRiseE * dRise[idx];
      sigLFall[idx] = rFallL * dFall[idx];
      sigEFall[idx] = rFallE * dFall[idx];
    }
  }

  Axis sAxis(std::vector<double>(slews.begin(), slews.end()));
  Axis lAxis(std::vector<double>(loads.begin(), loads.end()));
  out.rise = {Table2D(sAxis, lAxis, dRise), Table2D(sAxis, lAxis, sRise)};
  out.fall = {Table2D(sAxis, lAxis, dFall), Table2D(sAxis, lAxis, sFall)};
  out.riseLvf = {Table2D(sAxis, lAxis, sigERise), Table2D(sAxis, lAxis, sigLRise)};
  out.fallLvf = {Table2D(sAxis, lAxis, sigEFall), Table2D(sAxis, lAxis, sigLFall)};
  return out;
}

/// Scale a surface from X1 to a higher drive: delay_k(s, l) = delay_1(s, l/k)
/// implemented by stretching the load axis by k.
Table2D scaleLoadAxis(const Table2D& t, double k) {
  std::vector<double> loads = t.yAxis().points();
  for (double& l : loads) l *= k;
  std::vector<double> vals;
  vals.reserve(t.xAxis().size() * t.yAxis().size());
  for (std::size_t i = 0; i < t.xAxis().size(); ++i)
    for (std::size_t j = 0; j < t.yAxis().size(); ++j)
      vals.push_back(t.at(i, j));
  return Table2D(t.xAxis(), Axis(loads), vals);
}

NldmSurface scaleSurface(const NldmSurface& s, double k) {
  return {scaleLoadAxis(s.delay, k), scaleLoadAxis(s.slew, k)};
}

LvfSurface scaleLvf(const LvfSurface& s, double k) {
  return {scaleLoadAxis(s.sigmaEarly, k), scaleLoadAxis(s.sigmaLate, k)};
}

/// Average leakage power (uW) over all input states.
MicroWatt averageLeakage(const Stage& stage, Volt vdd, Celsius temp) {
  const int n = stage.numInputs();
  const int states = 1 << n;
  double sum = 0.0;
  for (int s = 0; s < states; ++s) {
    std::vector<bool> in(static_cast<std::size_t>(n));
    for (int b = 0; b < n; ++b) in[static_cast<std::size_t>(b)] = (s >> b) & 1;
    sum += stage.leakage(in, vdd, temp) * vdd;  // uA * V = uW
  }
  return sum / states;
}

/// Characterize the per-cell MIS factors (Sec. 2.1): simultaneous switching
/// of two inputs vs single-input switching, at a mid grid point.
MisFactors characterizeMis(StageKind kind, int numInputs, VtClass vt,
                           const ProcessCondition& pc, const LibraryPvt& pvt,
                           Ps slew, Ff load) {
  MisFactors mis;
  if (numInputs < 2) return mis;
  Stage stage = Stage::make(kind, numInputs, vt, 1.0, pc);
  SimConditions sim;
  sim.vdd = pvt.vdd;
  sim.temp = pvt.temp;
  sim.load = load;

  auto misDelay = [&](bool inputRising) -> double {
    std::vector<InputWave> waves(static_cast<std::size_t>(numInputs));
    for (int i = 0; i < numInputs; ++i) {
      auto& w = waves[static_cast<std::size_t>(i)];
      if (i < 2) {
        w.v0 = inputRising ? 0.0 : sim.vdd;
        w.v1 = inputRising ? sim.vdd : 0.0;
        w.start = 40.0;
        w.slew = slew;
      } else {
        // Third input parked at the arc-sensitizing level for pins 0/1.
        const bool v = kind == StageKind::kNand;
        // For AOI21 pin2 must be 0; for OAI21 pin2 must be 1; NOR 0.
        const bool level = kind == StageKind::kOai21 ? true : v;
        w.v0 = w.v1 = level ? sim.vdd : 0.0;
      }
    }
    const auto r = simulateStage(stage, waves, sim, 0);
    return r.completed ? r.delay50 : -1.0;
  };

  const auto sisRise = simulateArc(stage, 0, false, slew, sim);  // output rise
  const auto sisFall = simulateArc(stage, 0, true, slew, sim);   // output fall
  const double misRise = misDelay(false);
  const double misFall = misDelay(true);
  if (sisRise.completed && misRise > 0.0 && sisFall.completed && misFall > 0.0) {
    const double riseRatio = misRise / sisRise.delay50;
    const double fallRatio = misFall / sisFall.delay50;
    // NAND-like: parallel bank drives the rise; NOR-like: the fall.
    if (kind == StageKind::kNand || kind == StageKind::kAoi21) {
      mis.parallelFactor = riseRatio;
      mis.seriesFactor = fallRatio;
      mis.parallelIsRise = true;
    } else {
      mis.parallelFactor = fallRatio;
      mis.seriesFactor = riseRatio;
      mis.parallelIsRise = false;
    }
  }
  return mis;
}

/// Compose a two-stage buffer's surfaces from the INV X1 characterization.
/// First stage (X1-ish) drives the second (Xk) stage's input cap.
void composeBuffer(Cell& buf, const Cell& invX1, double k, double k1,
                   Ff inv2Cap) {
  const TimingArc& inv = invX1.arcs[0];
  auto compose = [&](bool outRise) -> std::pair<Table2D, Table2D> {
    // Output rise of the buffer = inv1 output falls, inv2 output rises.
    // The first stage is tapered (drive k1 ~ k/2), as in real buffers, so
    // larger buffers are strictly faster into the same load.
    const NldmSurface& first = inv.surface(!outRise);
    const NldmSurface& second = inv.surface(outRise);
    const Axis& sAxis = first.delay.xAxis();
    std::vector<double> loads = second.delay.yAxis().points();
    for (double& l : loads) l *= k;
    Axis lAxis{loads};
    std::vector<double> d, s;
    for (std::size_t i = 0; i < sAxis.size(); ++i) {
      const double d1 = first.delayAt(sAxis[i], inv2Cap / k1);
      const double s1 = first.slewAt(sAxis[i], inv2Cap / k1);
      for (std::size_t j = 0; j < lAxis.size(); ++j) {
        const double loadOnSecond = lAxis[j] / k;
        d.push_back(d1 + second.delayAt(s1, loadOnSecond));
        s.push_back(second.slewAt(s1, loadOnSecond));
      }
    }
    return {Table2D(sAxis, lAxis, d), Table2D(sAxis, lAxis, s)};
  };
  TimingArc arc;
  arc.fromPin = 0;
  arc.unate = Unateness::kPositive;
  auto [dr, sr] = compose(true);
  arc.rise = {dr, sr};
  auto [df, sf] = compose(false);
  arc.fall = {df, sf};
  // LVF: two stages, variances add; approximate with sqrt(2) single-stage
  // sigma scaled to the composed delay.
  auto lvfScale = [&](const Table2D& composedDelay,
                      bool late) -> Table2D {
    Table2D out = composedDelay;
    const double ratio =
        (late ? invX1.arcs[0].riseLvf.lateAt(30.0, inv2Cap)
              : invX1.arcs[0].riseLvf.earlyAt(30.0, inv2Cap)) /
        std::max(invX1.arcs[0].rise.delayAt(30.0, inv2Cap), 1e-9);
    out.transform([&](double v) { return v * ratio / std::sqrt(2.0); });
    return out;
  };
  arc.riseLvf = {lvfScale(arc.rise.delay, false), lvfScale(arc.rise.delay, true)};
  arc.fallLvf = {lvfScale(arc.fall.delay, false), lvfScale(arc.fall.delay, true)};
  buf.arcs.push_back(std::move(arc));
}

}  // namespace

std::shared_ptr<Library> buildLibrary(const LibraryPvt& pvt,
                                      const CharConfig& cfg) {
  TraceSpan span("liberty", "characterize_" + pvt.toString());
  auto lib = std::make_shared<Library>("tc28_" + pvt.toString(), pvt);
  const ProcessCondition pc = ProcessCondition::at(pvt.corner);

  std::vector<Ps> slews = cfg.slews;
  std::vector<Ff> loads = cfg.loadsX1;
  if (cfg.quick) {
    slews = {15.0, 50.0, 140.0};
    loads = {1.2, 4.0, 12.0};
  }

  double pocvSum = 0.0;
  int pocvN = 0;

  for (const auto& tpl : combTemplates()) {
    for (VtClass vt : cfg.vts) {
      // Characterize X1 once.
      std::vector<ArcChar> arcChars;
      for (int pin = 0; pin < tpl.numInputs; ++pin) {
        arcChars.push_back(characterizeArc(tpl.kind, tpl.numInputs, vt, pin,
                                           pc, pvt, cfg, slews, loads));
      }
      const MisFactors mis =
          characterizeMis(tpl.kind, tpl.numInputs, vt, pc, pvt,
                          slews[slews.size() / 2], loads[loads.size() / 2]);
      Stage x1 = Stage::make(tpl.kind, tpl.numInputs, vt, 1.0, pc);
      const Ff pinCapX1 = x1.inputCap();
      const MicroWatt leakX1 = averageLeakage(x1, pvt.vdd, pvt.temp);
      const Fj energyX1 = 0.7 * (x1.selfLoad() + pinCapX1) * pvt.vdd * pvt.vdd;

      double cellPocv = 0.0;
      int cellPocvN = 0;
      for (const auto& ac : arcChars) {
        cellPocv += ac.pocvAccum;
        cellPocvN += ac.pocvCount;
      }
      const double pocvRatio =
          std::clamp(cellPocvN ? cellPocv / cellPocvN : 0.0, 0.0, 0.20);
      pocvSum += pocvRatio;
      pocvN += 1;

      for (int drive : cfg.combDrives) {
        Cell c;
        c.name = cellName(tpl.footprint, drive, vt);
        c.footprint = tpl.footprint;
        c.kind = tpl.kind;
        c.numInputs = tpl.numInputs;
        c.drive = drive;
        c.vt = vt;
        c.pinCap = pinCapX1 * drive;
        c.widthSites = widthSitesFor(tpl.baseWidthSites, drive);
        c.area = c.widthSites * kSiteWidthUm * kRowHeightUm;
        c.leakagePower = leakX1 * drive;
        c.switchEnergy = energyX1 * drive;
        c.mis = mis;
        c.pocvSigmaRatio = pocvRatio;
        const double k = drive;
        for (int pin = 0; pin < tpl.numInputs; ++pin) {
          TimingArc arc;
          arc.fromPin = pin;
          arc.unate = Unateness::kNegative;
          arc.rise = drive == 1 ? arcChars[static_cast<std::size_t>(pin)].rise
                                : scaleSurface(arcChars[static_cast<std::size_t>(pin)].rise, k);
          arc.fall = drive == 1 ? arcChars[static_cast<std::size_t>(pin)].fall
                                : scaleSurface(arcChars[static_cast<std::size_t>(pin)].fall, k);
          arc.riseLvf = drive == 1
                            ? arcChars[static_cast<std::size_t>(pin)].riseLvf
                            : scaleLvf(arcChars[static_cast<std::size_t>(pin)].riseLvf, k);
          arc.fallLvf = drive == 1
                            ? arcChars[static_cast<std::size_t>(pin)].fallLvf
                            : scaleLvf(arcChars[static_cast<std::size_t>(pin)].fallLvf, k);
          c.arcs.push_back(std::move(arc));
        }
        lib->addCell(std::move(c));
      }

      // Buffers composed from the INV characterization. Copy the X1 cell:
      // addCell below may reallocate the library's cell storage.
      if (tpl.kind == StageKind::kInverter) {
        const Cell invX1 = lib->cellByName(cellName("INV", 1, vt));
        for (int drive : cfg.combDrives) {
          const double k1 = std::max(drive / 2, 1);  // tapered first stage
          Cell buf;
          buf.name = cellName("BUF", drive, vt);
          buf.footprint = "BUF";
          buf.kind = StageKind::kInverter;
          buf.isBuffer = true;
          buf.numInputs = 1;
          buf.drive = drive;
          buf.vt = vt;
          buf.pinCap = pinCapX1 * k1;
          buf.widthSites = widthSitesFor(3, drive);
          buf.area = buf.widthSites * kSiteWidthUm * kRowHeightUm;
          buf.leakagePower = leakX1 * (k1 + drive);
          buf.switchEnergy = energyX1 * (k1 + drive);
          buf.pocvSigmaRatio = pocvRatio / std::sqrt(2.0);
          composeBuffer(buf, invX1, drive, k1, pinCapX1 * drive);
          lib->addCell(std::move(buf));
        }
      }
    }
  }

  // --- Flops ---------------------------------------------------------------
  for (VtClass vt : cfg.vts) {
    for (int drive : cfg.flopDrives) {
      LatchConditions lc;
      lc.vdd = pvt.vdd;
      lc.temp = pvt.temp;
      lc.vt = vt;
      lc.size = drive;
      lc.corner = pc;
      LatchSim sim(lc);
      const InterdepFlopModel interdep = fitInterdepModel(sim, cfg.quick);

      Cell c;
      c.name = cellName("DFF", drive, vt);
      c.footprint = "DFF";
      c.isSequential = true;
      c.numInputs = 2;  // D, CK
      c.drive = drive;
      c.vt = vt;
      c.pinCap = 0.9 * drive;
      c.widthSites = widthSitesFor(10, drive);
      c.area = c.widthSites * kSiteWidthUm * kRowHeightUm;
      // ~20-odd transistors: leakage scales like a handful of inverters.
      {
        Stage inv = Stage::make(StageKind::kInverter, 1, vt, 1.0, pc);
        c.leakagePower = 8.0 * drive * averageLeakage(inv, pvt.vdd, pvt.temp);
      }
      c.switchEnergy = 2.5 * drive * pvt.vdd * pvt.vdd;
      FlopTiming ft;
      ft.interdep = interdep;
      ft.setup = interdep.conventionalSetup(0.10);
      ft.hold = interdep.conventionalHold(0.10);
      ft.clockToQ = interdep.c2q0 * 1.10;
      // c2q vs (clock slew, load): scale the asymptotic c2q with load via
      // an output-stage RC term derived from the latch drive.
      {
        std::vector<double> cs{12.0, 40.0, 120.0};
        std::vector<double> ql{1.0, 4.0, 12.0};
        std::vector<double> vals;
        for (double csl : cs)
          for (double q : ql)
            vals.push_back(interdep.c2q0 * 1.10 + 0.15 * csl +
                           18.0 * (q / (4.0 * drive)));
        Table2D t(Axis(cs), Axis(ql), vals);
        Table2D slewT(Axis(cs), Axis(ql), vals);
        slewT.transform([&](double v) { return 0.6 * v; });
        ft.c2qRise = {t, slewT};
        ft.c2qFall = {t, slewT};
      }
      c.flop = ft;
      lib->addCell(std::move(c));
    }
  }

  // --- AOCV tables from the characterized POCV ratio -----------------------
  const double r = pocvN ? pocvSum / pocvN : 0.03;
  AocvTables aocv;
  aocv.lateDerate.clear();
  aocv.earlyDerate.clear();
  for (int d : aocv.depths) {
    aocv.lateDerate.push_back(1.0 + 3.0 * r / std::sqrt(static_cast<double>(d)));
    aocv.earlyDerate.push_back(
        std::max(1.0 - 3.0 * r / std::sqrt(static_cast<double>(d)), 0.0));
  }
  lib->aocv() = aocv;

  TC_DEBUG("characterized library %s: %d cells", lib->name().c_str(),
           lib->cellCount());
  return lib;
}

std::shared_ptr<const Library> characterizedLibrary(const LibraryPvt& pvt,
                                                    bool quick) {
  // Per-key shared futures: the registry lock is only held to look up or
  // insert the future, never across characterization. Concurrent scenario
  // setup at *different* PVTs characterizes in parallel; concurrent setup
  // at the *same* PVT shares one build — and one immutable Library, so
  // NLDM/LVF tables are never duplicated across engines (the cache the
  // MCMM runner leans on).
  using Key = std::pair<LibraryPvt, bool>;
  using LibFuture = std::shared_future<std::shared_ptr<const Library>>;
  static std::mutex mu;
  static std::map<Key, LibFuture> cache;

  // Request/hit counts are kNoisy: the memo-vs-disk split depends on what
  // a previous process left in the on-disk cache, and request totals vary
  // with scenario construction order across test shards.
  static Counter& reqCtr = MetricsRegistry::global().counter(
      "liberty.char.requests", "count", MetricStability::kNoisy);
  static Counter& memoCtr = MetricsRegistry::global().counter(
      "liberty.char.memo_hits", "count", MetricStability::kNoisy);
  static Counter& diskCtr = MetricsRegistry::global().counter(
      "liberty.char.disk_hits", "count", MetricStability::kNoisy);
  static Counter& buildCtr = MetricsRegistry::global().counter(
      "liberty.char.builds", "count", MetricStability::kNoisy);
  reqCtr.add();
  // Span covers the whole acquisition (memo wait, disk read, or build) so
  // the trace shows characterization cost per corner even on cache hits.
  TraceSpan span("liberty", "library_" + pvt.toString());

  const Key key{pvt, quick};
  std::promise<std::shared_ptr<const Library>> promise;
  LibFuture fut;
  bool isBuilder = false;
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(key);
    if (it == cache.end()) {
      fut = promise.get_future().share();
      cache.emplace(key, fut);
      isBuilder = true;
    } else {
      fut = it->second;
    }
  }
  if (!isBuilder) memoCtr.add();
  if (isBuilder) {
    try {
      // Second-level cache: characterized libraries persist on disk, like
      // the .lib/.db files a production flow characterizes once and ships.
      const std::string path = libraryCachePath(pvt, quick);
      std::shared_ptr<Library> lib = readLibraryFile(path);
      if (lib) {
        diskCtr.add();
      } else {
        buildCtr.add();
        CharConfig cfg;
        cfg.quick = quick;
        lib = buildLibrary(pvt, cfg);
        if (!writeLibraryFile(*lib, path))
          TC_WARN("could not write library cache %s", path.c_str());
      }
      promise.set_value(lib);
    } catch (...) {
      // Waiters see the exception; drop the entry so a later call retries.
      promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock(mu);
      cache.erase(key);
      throw;
    }
  }
  return fut.get();
}

}  // namespace tc
