#include "liberty/builder.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "device/latch.h"
#include "device/stage.h"
#include "liberty/interdep.h"
#include "liberty/serialize.h"
#include "util/binio.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace tc {

namespace {

constexpr double kSiteWidthUm = 0.2;
constexpr double kRowHeightUm = 1.8;

struct Template {
  StageKind kind;
  int numInputs;
  const char* footprint;
  int baseWidthSites;
};

const std::vector<Template>& combTemplates() {
  static const std::vector<Template> kTemplates = {
      {StageKind::kInverter, 1, "INV", 2},
      {StageKind::kNand, 2, "NAND2", 3},
      {StageKind::kNand, 3, "NAND3", 4},
      {StageKind::kNor, 2, "NOR2", 3},
      {StageKind::kNor, 3, "NOR3", 4},
      {StageKind::kAoi21, 3, "AOI21", 4},
      {StageKind::kOai21, 3, "OAI21", 4},
  };
  return kTemplates;
}

std::string cellName(const char* footprint, int drive, VtClass vt) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s_X%d_%s", footprint, drive, toString(vt));
  return buf;
}

int widthSitesFor(int baseSites, int drive) {
  // Wider devices fold into more sites; sublinear growth like real libraries.
  return baseSites + (drive - 1) * std::max(baseSites / 2, 1);
}

/// Per-cell composite mismatch sigma: all devices shifted together by the
/// per-device sigma divided by sqrt(#devices) preserves the delay variance
/// of independent per-device shifts when sensitivities are comparable.
Volt compositeSigma(Stage& stage, const MismatchModel& mm, double scale) {
  double meanW = 0.0;
  int n = 0;
  for (Mosfet* m : stage.pullDown().devices()) {
    meanW += m->width;
    ++n;
  }
  for (Mosfet* m : stage.pullUp().devices()) {
    meanW += m->width;
    ++n;
  }
  if (n == 0) return 0.0;
  meanW /= n;
  return scale * mm.sigmaVt(meanW) / std::sqrt(static_cast<double>(n));
}

struct ArcChar {
  NldmSurface rise, fall;
  LvfSurface riseLvf, fallLvf;
  double pocvAccum = 0.0;
  int pocvCount = 0;
  std::uint64_t simQueries = 0;  ///< grid transient sims issued for this arc
};

// --- active-learning surface machinery --------------------------------------
//
// The adaptive characterizer samples a sub-rectangular slew x load grid and
// models every unsampled point with a bias-enhanced interpolant: a global
// ridge trend (the "bias", fit over all sampled points; deterministic
// normal-equation solve, same idiom as signoff/prune.cpp fitRidge) plus a
// bilinear residual table over the sampled subgrid. The model is exact at
// sampled nodes, so refinement only ever *adds* exact data.

/// k evenly spaced indices into [0, n), always including both endpoints.
std::vector<std::size_t> seedIndices(std::size_t n, int k) {
  std::vector<std::size_t> out;
  if (n == 0) return out;
  if (k < 2) k = 2;
  if (static_cast<std::size_t>(k) >= n) {
    for (std::size_t i = 0; i < n; ++i) out.push_back(i);
    return out;
  }
  for (int i = 0; i < k; ++i) {
    const auto idx = static_cast<std::size_t>(std::llround(
        static_cast<double>(i) * static_cast<double>(n - 1) / (k - 1)));
    if (out.empty() || out.back() != idx) out.push_back(idx);
  }
  return out;
}

/// Global trend over normalized (slew, load): w0 + w1*s + w2*l + w3*s*l.
struct BiasModel {
  std::array<double, 4> w{};
  double s0 = 0.0, sSpan = 1.0, l0 = 0.0, lSpan = 1.0;
  bool valid = false;

  double at(double s, double l) const {
    if (!valid) return 0.0;
    const double sn = (s - s0) / sSpan;
    const double ln = (l - l0) / lSpan;
    return w[0] + w[1] * sn + w[2] * ln + w[3] * sn * ln;
  }
};

BiasModel fitBias(const std::vector<double>& ss, const std::vector<double>& ll,
                  const std::vector<double>& vv) {
  BiasModel m;
  if (vv.size() < 4) return m;
  m.s0 = *std::min_element(ss.begin(), ss.end());
  m.sSpan = std::max(*std::max_element(ss.begin(), ss.end()) - m.s0, 1e-9);
  m.l0 = *std::min_element(ll.begin(), ll.end());
  m.lSpan = std::max(*std::max_element(ll.begin(), ll.end()) - m.l0, 1e-9);
  double a[4][4] = {};
  double b[4] = {};
  for (std::size_t r = 0; r < vv.size(); ++r) {
    const double sn = (ss[r] - m.s0) / m.sSpan;
    const double ln = (ll[r] - m.l0) / m.lSpan;
    const double f[4] = {1.0, sn, ln, sn * ln};
    for (int i = 0; i < 4; ++i) {
      b[i] += f[i] * vv[r];
      for (int j = 0; j < 4; ++j) a[i][j] += f[i] * f[j];
    }
  }
  for (int i = 0; i < 4; ++i) a[i][i] += 1e-6;
  // Gaussian elimination with partial pivoting; pivot choice (max
  // magnitude, first on ties) is deterministic.
  int perm[4] = {0, 1, 2, 3};
  for (int col = 0; col < 4; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 4; ++r)
      if (std::fabs(a[perm[r]][col]) > std::fabs(a[perm[pivot]][col]))
        pivot = r;
    std::swap(perm[col], perm[pivot]);
    const double diag = a[perm[col]][col];
    if (std::fabs(diag) < 1e-12) return m;
    for (int r = col + 1; r < 4; ++r) {
      const double f = a[perm[r]][col] / diag;
      if (f == 0.0) continue;
      for (int c = col; c < 4; ++c) a[perm[r]][c] -= f * a[perm[col]][c];
      b[perm[r]] -= f * b[perm[col]];
    }
  }
  for (int col = 3; col >= 0; --col) {
    double v = b[perm[col]];
    for (int c = col + 1; c < 4; ++c) v -= a[perm[col]][c] * m.w[c];
    m.w[col] = v / a[perm[col]][col];
  }
  m.valid = true;
  return m;
}

/// Bias trend + bilinear residual over the sampled subgrid; exact at nodes.
struct SurfaceModel {
  BiasModel bias;
  Table2D resid;

  double at(double s, double l) const { return bias.at(s, l) + resid.lookup(s, l); }
};

SurfaceModel fitSurface(const std::vector<double>& rowSlews,
                        const std::vector<double>& colLoads,
                        const std::vector<double>& exact) {
  SurfaceModel m;
  std::vector<double> ss, ll;
  ss.reserve(exact.size());
  ll.reserve(exact.size());
  for (double s : rowSlews)
    for (double l : colLoads) {
      ss.push_back(s);
      ll.push_back(l);
    }
  m.bias = fitBias(ss, ll, exact);
  std::vector<double> res(exact.size());
  for (std::size_t i = 0; i < exact.size(); ++i)
    res[i] = exact[i] - m.bias.at(ss[i], ll[i]);
  m.resid = Table2D(Axis(rowSlews), Axis(colLoads), res);
  return m;
}

/// Characterize the arc from `pin` of one X1 stage over the grid.
ArcChar characterizeArc(StageKind kind, int numInputs, VtClass vt, int pin,
                        const ProcessCondition& pc, const LibraryPvt& pvt,
                        const CharConfig& cfg, const std::vector<Ps>& slews,
                        const std::vector<Ff>& loads) {
  ArcChar out;
  const std::size_t ns = slews.size();
  const std::size_t nl = loads.size();
  std::vector<double> dRise(ns * nl), sRise(ns * nl), dFall(ns * nl),
      sFall(ns * nl);
  std::vector<double> sigERise(ns * nl, 0.0), sigLRise(ns * nl, 0.0),
      sigEFall(ns * nl, 0.0), sigLFall(ns * nl, 0.0);
  std::vector<char> exactAt(ns * nl, 0);

  Stage nomStage = Stage::make(kind, numInputs, vt, 1.0, pc);
  const Volt sigma = compositeSigma(nomStage, cfg.mismatch, cfg.lvfSigmaScale);
  Stage slowStage = Stage::make(kind, numInputs, vt, 1.0, pc);
  slowStage.pullDown().shiftAllVt(sigma);
  slowStage.pullUp().shiftAllVt(sigma);
  Stage fastStage = Stage::make(kind, numInputs, vt, 1.0, pc);
  fastStage.pullDown().shiftAllVt(-sigma);
  fastStage.pullUp().shiftAllVt(-sigma);

  SimConditions sim;
  sim.vdd = pvt.vdd;
  sim.temp = pvt.temp;

  const std::size_t centerIdx = (ns / 2) * nl + nl / 2;
  // One grid point: the exact transient measurements brute force would
  // take. Shared verbatim between the full sweep and the adaptive sampler
  // so the zero-tolerance adaptive mode is bitwise the full grid.
  auto simPoint = [&](std::size_t i, std::size_t j) {
    const std::size_t idx = i * nl + j;
    if (exactAt[idx]) return;
    exactAt[idx] = 1;
    sim.load = loads[j];
    // Negative-unate templates: input rising -> output falling.
    const auto fallRes = simulateArc(nomStage, pin, true, slews[i], sim);
    const auto riseRes = simulateArc(nomStage, pin, false, slews[i], sim);
    out.simQueries += 2;
    if (!fallRes.completed || !riseRes.completed)
      throw std::runtime_error("characterization transient incomplete");
    dFall[idx] = fallRes.delay50;
    sFall[idx] = fallRes.outputSlew;
    dRise[idx] = riseRes.delay50;
    sRise[idx] = riseRes.outputSlew;

    const bool doLvf = !cfg.quick || idx == centerIdx;
    if (doLvf && sigma > 0.0) {
      const auto fallSlow = simulateArc(slowStage, pin, true, slews[i], sim);
      const auto riseSlow = simulateArc(slowStage, pin, false, slews[i], sim);
      const auto fallFast = simulateArc(fastStage, pin, true, slews[i], sim);
      const auto riseFast = simulateArc(fastStage, pin, false, slews[i], sim);
      out.simQueries += 4;
      sigLFall[idx] = std::max(fallSlow.delay50 - dFall[idx], 0.0);
      sigEFall[idx] = std::max(dFall[idx] - fallFast.delay50, 0.0);
      sigLRise[idx] = std::max(riseSlow.delay50 - dRise[idx], 0.0);
      sigERise[idx] = std::max(dRise[idx] - riseFast.delay50, 0.0);
      // Skip near-zero-delay grid points (large slew into a tiny load can
      // put the 50%-50% delay near or below zero): a ratio there is
      // meaningless and would poison the cell's POCV coefficient.
      if (dFall[idx] > 2.0 && dRise[idx] > 2.0) {
        out.pocvAccum += 0.5 * (sigLFall[idx] / dFall[idx] +
                                sigLRise[idx] / dRise[idx]);
        out.pocvCount += 1;
      }
    }
  };

  // Quick mode's center-point LVF scaling needs the center simulated, so
  // the active learner only engages for full-accuracy configs with a
  // positive tolerance; errorTolPs <= 0 is the bitwise-golden contract.
  const bool adaptive = cfg.adaptive && cfg.errorTolPs > 0.0 && !cfg.quick &&
                        ns >= 3 && nl >= 3;
  if (!adaptive) {
    for (std::size_t i = 0; i < ns; ++i)
      for (std::size_t j = 0; j < nl; ++j) simPoint(i, j);
  } else {
    std::vector<char> rowOn(ns, 0), colOn(nl, 0);
    for (std::size_t r : seedIndices(ns, cfg.seedPerAxis)) rowOn[r] = 1;
    for (std::size_t c : seedIndices(nl, cfg.seedPerAxis)) colOn[c] = 1;
    auto simSubgrid = [&] {
      for (std::size_t i = 0; i < ns; ++i)
        if (rowOn[i])
          for (std::size_t j = 0; j < nl; ++j)
            if (colOn[j]) simPoint(i, j);
    };
    simSubgrid();

    const std::vector<double>* surfaces[4] = {&dRise, &sRise, &dFall, &sFall};
    auto onIndices = [](const std::vector<char>& on) {
      std::vector<std::size_t> out2;
      for (std::size_t i = 0; i < on.size(); ++i)
        if (on[i]) out2.push_back(i);
      return out2;
    };
    auto fitAll = [&](const std::vector<std::size_t>& rows,
                      const std::vector<std::size_t>& cols) {
      std::vector<double> rv, cv;
      for (std::size_t r : rows) rv.push_back(slews[r]);
      for (std::size_t c : cols) cv.push_back(loads[c]);
      std::array<SurfaceModel, 4> models;
      for (int k = 0; k < 4; ++k) {
        std::vector<double> sub;
        sub.reserve(rows.size() * cols.size());
        for (std::size_t r : rows)
          for (std::size_t c : cols) sub.push_back((*surfaces[k])[r * nl + c]);
        models[static_cast<std::size_t>(k)] = fitSurface(rv, cv, sub);
      }
      return models;
    };

    // Active rounds: estimate interpolation error by leave-one-out over
    // interior sampled rows/cols (refit without the line, measure the
    // model against the exact sims along it), then split the widest gap
    // next to the worst line. LOO doubles the local gap, so it estimates
    // the error of a coarser grid than the one in use — a conservative
    // stopping signal.
    const double tol = cfg.errorTolPs;
    const std::size_t maxRounds = ns + nl;
    for (std::size_t round = 0; round < maxRounds; ++round) {
      const std::vector<std::size_t> rows = onIndices(rowOn);
      const std::vector<std::size_t> cols = onIndices(colOn);
      double worst = 0.0;
      int worstAxis = -1;           // 0 = rows, 1 = cols
      std::size_t worstLine = 0;    // position within rows/cols
      for (int axis = 0; axis < 2; ++axis) {
        const std::vector<std::size_t>& lines = axis == 0 ? rows : cols;
        for (std::size_t p = 1; p + 1 < lines.size(); ++p) {
          std::vector<std::size_t> looRows = rows, looCols = cols;
          (axis == 0 ? looRows : looCols)
              .erase((axis == 0 ? looRows : looCols).begin() +
                     static_cast<std::ptrdiff_t>(p));
          const auto loo = fitAll(looRows, looCols);
          double err = 0.0;
          const std::vector<std::size_t>& other = axis == 0 ? cols : rows;
          for (std::size_t q : other) {
            const std::size_t r = axis == 0 ? lines[p] : q;
            const std::size_t c = axis == 0 ? q : lines[p];
            for (int k = 0; k < 4; ++k)
              err = std::max(err,
                             std::fabs(loo[static_cast<std::size_t>(k)].at(
                                           slews[r], loads[c]) -
                                       (*surfaces[k])[r * nl + c]));
          }
          if (err > worst) {
            worst = err;
            worstAxis = axis;
            worstLine = p;
          }
        }
      }
      // LOO removes a sampled line, doubling the local gap; bilinear error
      // grows ~quadratically with gap, so the estimate runs well above the
      // kept grid's true error. Stopping at 1.6x tol keeps a conservative
      // margin while not over-sampling (bench_char_pareto audits the real
      // error against the golden).
      if (worst <= 1.6 * tol && worstAxis >= 0) break;

      // Split the widest refinable gap, preferring the axis/neighborhood
      // of the worst LOO line; fall back to the globally widest gap.
      auto widestGap = [](const std::vector<std::size_t>& lines,
                          std::size_t nearLine, bool preferNear) {
        std::ptrdiff_t best = -1;
        std::size_t bestWidth = 1;  // need at least one unsampled index
        for (std::size_t p = 0; p + 1 < lines.size(); ++p) {
          const std::size_t width = lines[p + 1] - lines[p];
          const bool near =
              preferNear && (p == nearLine - 1 || p == nearLine);
          if (width > bestWidth ||
              (near && width == bestWidth && width > 1)) {
            best = static_cast<std::ptrdiff_t>(p);
            bestWidth = width;
          }
        }
        return best < 0 ? std::pair<bool, std::size_t>{false, 0}
                        : std::pair<bool, std::size_t>{
                              true, (lines[static_cast<std::size_t>(best)] +
                                     lines[static_cast<std::size_t>(best) + 1]) /
                                        2};
      };
      bool refined = false;
      for (int attempt = 0; attempt < 2 && !refined; ++attempt) {
        // First attempt honors the worst axis; second tries the other.
        const int axis = (worstAxis < 0 ? 0 : worstAxis) ^ attempt;
        const auto [ok2, mid] = widestGap(axis == 0 ? rows : cols, worstLine,
                                          attempt == 0 && worstAxis >= 0);
        if (ok2) {
          (axis == 0 ? rowOn : colOn)[mid] = 1;
          refined = true;
        }
      }
      if (!refined) break;  // every line sampled: the model IS the grid
      simSubgrid();
    }

    // Fill unsampled points from the final model; sampled points keep the
    // exact transient results.
    const std::vector<std::size_t> rows = onIndices(rowOn);
    const std::vector<std::size_t> cols = onIndices(colOn);
    const auto models = fitAll(rows, cols);
    std::vector<double>* mutableSurfaces[4] = {&dRise, &sRise, &dFall, &sFall};
    for (std::size_t i = 0; i < ns; ++i)
      for (std::size_t j = 0; j < nl; ++j) {
        const std::size_t idx = i * nl + j;
        if (exactAt[idx]) continue;
        for (int k = 0; k < 4; ++k)
          (*mutableSurfaces[k])[idx] =
              models[static_cast<std::size_t>(k)].at(slews[i], loads[j]);
      }

    // LVF sigmas at unsampled points: pessimistic by construction. The
    // sigma/delay ratio is taken as the MAX over the sampled subgrid cell
    // enclosing the point, inflated by the guardband, and applied to the
    // modeled delay — a wrong model costs pessimism, never optimism
    // (bench_char_pareto audits this against the full-grid golden).
    if (sigma > 0.0) {
      auto bracket = [](const std::vector<std::size_t>& lines,
                        std::size_t i) {
        std::size_t lo = lines.front(), hi = lines.back();
        for (std::size_t v : lines) {
          if (v <= i) lo = v;
          if (v >= i) {
            hi = v;
            break;
          }
        }
        return std::pair<std::size_t, std::size_t>{lo, hi};
      };
      const std::vector<double>* sigs[4] = {&sigERise, &sigLRise, &sigEFall,
                                            &sigLFall};
      std::vector<double>* mutableSigs[4] = {&sigERise, &sigLRise, &sigEFall,
                                             &sigLFall};
      const std::vector<double>* delays[4] = {&dRise, &dRise, &dFall, &dFall};
      for (std::size_t i = 0; i < ns; ++i)
        for (std::size_t j = 0; j < nl; ++j) {
          const std::size_t idx = i * nl + j;
          if (exactAt[idx]) continue;
          const auto [r0, r1] = bracket(rows, i);
          const auto [c0, c1] = bracket(cols, j);
          for (int k = 0; k < 4; ++k) {
            double ratio = 0.0;
            for (std::size_t r : {r0, r1})
              for (std::size_t c : {c0, c1}) {
                const std::size_t corner = r * nl + c;
                ratio = std::max(ratio,
                                 (*sigs[k])[corner] /
                                     std::max((*delays[k])[corner], 1.0));
              }
            (*mutableSigs[k])[idx] = cfg.sigmaGuardband * ratio *
                                     std::max((*delays[k])[idx], 0.0);
          }
        }
    }
  }

  if (cfg.quick && sigma > 0.0) {
    // Scale the center-point sigma across the grid proportionally to delay.
    const double rRiseL = sigLRise[centerIdx] / std::max(dRise[centerIdx], 1e-9);
    const double rRiseE = sigERise[centerIdx] / std::max(dRise[centerIdx], 1e-9);
    const double rFallL = sigLFall[centerIdx] / std::max(dFall[centerIdx], 1e-9);
    const double rFallE = sigEFall[centerIdx] / std::max(dFall[centerIdx], 1e-9);
    for (std::size_t idx = 0; idx < ns * nl; ++idx) {
      sigLRise[idx] = rRiseL * dRise[idx];
      sigERise[idx] = rRiseE * dRise[idx];
      sigLFall[idx] = rFallL * dFall[idx];
      sigEFall[idx] = rFallE * dFall[idx];
    }
  }

  Axis sAxis(std::vector<double>(slews.begin(), slews.end()));
  Axis lAxis(std::vector<double>(loads.begin(), loads.end()));
  out.rise = {Table2D(sAxis, lAxis, dRise), Table2D(sAxis, lAxis, sRise)};
  out.fall = {Table2D(sAxis, lAxis, dFall), Table2D(sAxis, lAxis, sFall)};
  out.riseLvf = {Table2D(sAxis, lAxis, sigERise), Table2D(sAxis, lAxis, sigLRise)};
  out.fallLvf = {Table2D(sAxis, lAxis, sigEFall), Table2D(sAxis, lAxis, sigLFall)};
  return out;
}

/// Scale a surface from X1 to a higher drive: delay_k(s, l) = delay_1(s, l/k)
/// implemented by stretching the load axis by k.
Table2D scaleLoadAxis(const Table2D& t, double k) {
  std::vector<double> loads = t.yAxis().points();
  for (double& l : loads) l *= k;
  std::vector<double> vals;
  vals.reserve(t.xAxis().size() * t.yAxis().size());
  for (std::size_t i = 0; i < t.xAxis().size(); ++i)
    for (std::size_t j = 0; j < t.yAxis().size(); ++j)
      vals.push_back(t.at(i, j));
  return Table2D(t.xAxis(), Axis(loads), vals);
}

NldmSurface scaleSurface(const NldmSurface& s, double k) {
  return {scaleLoadAxis(s.delay, k), scaleLoadAxis(s.slew, k)};
}

LvfSurface scaleLvf(const LvfSurface& s, double k) {
  return {scaleLoadAxis(s.sigmaEarly, k), scaleLoadAxis(s.sigmaLate, k)};
}

/// Average leakage power (uW) over all input states.
MicroWatt averageLeakage(const Stage& stage, Volt vdd, Celsius temp) {
  const int n = stage.numInputs();
  const int states = 1 << n;
  double sum = 0.0;
  for (int s = 0; s < states; ++s) {
    std::vector<bool> in(static_cast<std::size_t>(n));
    for (int b = 0; b < n; ++b) in[static_cast<std::size_t>(b)] = (s >> b) & 1;
    sum += stage.leakage(in, vdd, temp) * vdd;  // uA * V = uW
  }
  return sum / states;
}

/// Characterize the per-cell MIS factors (Sec. 2.1): simultaneous switching
/// of two inputs vs single-input switching, at a mid grid point.
MisFactors characterizeMis(StageKind kind, int numInputs, VtClass vt,
                           const ProcessCondition& pc, const LibraryPvt& pvt,
                           Ps slew, Ff load) {
  MisFactors mis;
  if (numInputs < 2) return mis;
  Stage stage = Stage::make(kind, numInputs, vt, 1.0, pc);
  SimConditions sim;
  sim.vdd = pvt.vdd;
  sim.temp = pvt.temp;
  sim.load = load;

  auto misDelay = [&](bool inputRising) -> double {
    std::vector<InputWave> waves(static_cast<std::size_t>(numInputs));
    for (int i = 0; i < numInputs; ++i) {
      auto& w = waves[static_cast<std::size_t>(i)];
      if (i < 2) {
        w.v0 = inputRising ? 0.0 : sim.vdd;
        w.v1 = inputRising ? sim.vdd : 0.0;
        w.start = 40.0;
        w.slew = slew;
      } else {
        // Third input parked at the arc-sensitizing level for pins 0/1.
        const bool v = kind == StageKind::kNand;
        // For AOI21 pin2 must be 0; for OAI21 pin2 must be 1; NOR 0.
        const bool level = kind == StageKind::kOai21 ? true : v;
        w.v0 = w.v1 = level ? sim.vdd : 0.0;
      }
    }
    const auto r = simulateStage(stage, waves, sim, 0);
    return r.completed ? r.delay50 : -1.0;
  };

  const auto sisRise = simulateArc(stage, 0, false, slew, sim);  // output rise
  const auto sisFall = simulateArc(stage, 0, true, slew, sim);   // output fall
  const double misRise = misDelay(false);
  const double misFall = misDelay(true);
  if (sisRise.completed && misRise > 0.0 && sisFall.completed && misFall > 0.0) {
    const double riseRatio = misRise / sisRise.delay50;
    const double fallRatio = misFall / sisFall.delay50;
    // NAND-like: parallel bank drives the rise; NOR-like: the fall.
    if (kind == StageKind::kNand || kind == StageKind::kAoi21) {
      mis.parallelFactor = riseRatio;
      mis.seriesFactor = fallRatio;
      mis.parallelIsRise = true;
    } else {
      mis.parallelFactor = fallRatio;
      mis.seriesFactor = riseRatio;
      mis.parallelIsRise = false;
    }
  }
  return mis;
}

/// Compose a two-stage buffer's surfaces from the INV X1 characterization.
/// First stage (X1-ish) drives the second (Xk) stage's input cap.
void composeBuffer(Cell& buf, const Cell& invX1, double k, double k1,
                   Ff inv2Cap) {
  const TimingArc& inv = invX1.arcs[0];
  auto compose = [&](bool outRise) -> std::pair<Table2D, Table2D> {
    // Output rise of the buffer = inv1 output falls, inv2 output rises.
    // The first stage is tapered (drive k1 ~ k/2), as in real buffers, so
    // larger buffers are strictly faster into the same load.
    const NldmSurface& first = inv.surface(!outRise);
    const NldmSurface& second = inv.surface(outRise);
    const Axis& sAxis = first.delay.xAxis();
    std::vector<double> loads = second.delay.yAxis().points();
    for (double& l : loads) l *= k;
    Axis lAxis{loads};
    std::vector<double> d, s;
    for (std::size_t i = 0; i < sAxis.size(); ++i) {
      const double d1 = first.delayAt(sAxis[i], inv2Cap / k1);
      const double s1 = first.slewAt(sAxis[i], inv2Cap / k1);
      for (std::size_t j = 0; j < lAxis.size(); ++j) {
        const double loadOnSecond = lAxis[j] / k;
        d.push_back(d1 + second.delayAt(s1, loadOnSecond));
        s.push_back(second.slewAt(s1, loadOnSecond));
      }
    }
    return {Table2D(sAxis, lAxis, d), Table2D(sAxis, lAxis, s)};
  };
  TimingArc arc;
  arc.fromPin = 0;
  arc.unate = Unateness::kPositive;
  auto [dr, sr] = compose(true);
  arc.rise = {dr, sr};
  auto [df, sf] = compose(false);
  arc.fall = {df, sf};
  // LVF: two stages, variances add; approximate with sqrt(2) single-stage
  // sigma scaled to the composed delay.
  auto lvfScale = [&](const Table2D& composedDelay,
                      bool late) -> Table2D {
    Table2D out = composedDelay;
    const double ratio =
        (late ? invX1.arcs[0].riseLvf.lateAt(30.0, inv2Cap)
              : invX1.arcs[0].riseLvf.earlyAt(30.0, inv2Cap)) /
        std::max(invX1.arcs[0].rise.delayAt(30.0, inv2Cap), 1e-9);
    out.transform([&](double v) { return v * ratio / std::sqrt(2.0); });
    return out;
  };
  arc.riseLvf = {lvfScale(arc.rise.delay, false), lvfScale(arc.rise.delay, true)};
  arc.fallLvf = {lvfScale(arc.fall.delay, false), lvfScale(arc.fall.delay, true)};
  buf.arcs.push_back(std::move(arc));
}

/// TC_CHAR_FAULT: deterministic fault hook for characterization tests,
/// mirroring TC_FARM_FAULT. Values: "build_fail" (buildLibrary throws),
/// "torn_write" / "skip_rename" (handled in serialize.cpp).
bool charFaultIs(const char* name) {
  const char* v = std::getenv("TC_CHAR_FAULT");
  return v && std::strcmp(v, name) == 0;
}

Counter& simQueryCounter() {
  static Counter& c = MetricsRegistry::global().counter(
      "liberty.char.sim_queries", "count", MetricStability::kNoisy);
  return c;
}

}  // namespace

std::shared_ptr<Library> buildLibrary(const LibraryPvt& pvt,
                                      const CharConfig& cfg) {
  TraceSpan span("liberty", "characterize_" + pvt.toString());
  if (charFaultIs("build_fail"))
    throw std::runtime_error("TC_CHAR_FAULT=build_fail: injected characterization failure");
  auto lib = std::make_shared<Library>("tc28_" + pvt.toString(), pvt);
  const ProcessCondition pc = ProcessCondition::at(pvt.corner);

  std::vector<Ps> slews = cfg.slews;
  std::vector<Ff> loads = cfg.loadsX1;
  if (cfg.quick) {
    slews = {15.0, 50.0, 140.0};
    loads = {1.2, 4.0, 12.0};
  }

  double pocvSum = 0.0;
  int pocvN = 0;

  for (const auto& tpl : combTemplates()) {
    for (VtClass vt : cfg.vts) {
      // Characterize X1 once.
      std::vector<ArcChar> arcChars;
      for (int pin = 0; pin < tpl.numInputs; ++pin) {
        arcChars.push_back(characterizeArc(tpl.kind, tpl.numInputs, vt, pin,
                                           pc, pvt, cfg, slews, loads));
        simQueryCounter().add(arcChars.back().simQueries);
      }
      const MisFactors mis =
          characterizeMis(tpl.kind, tpl.numInputs, vt, pc, pvt,
                          slews[slews.size() / 2], loads[loads.size() / 2]);
      Stage x1 = Stage::make(tpl.kind, tpl.numInputs, vt, 1.0, pc);
      const Ff pinCapX1 = x1.inputCap();
      const MicroWatt leakX1 = averageLeakage(x1, pvt.vdd, pvt.temp);
      const Fj energyX1 = 0.7 * (x1.selfLoad() + pinCapX1) * pvt.vdd * pvt.vdd;

      double cellPocv = 0.0;
      int cellPocvN = 0;
      for (const auto& ac : arcChars) {
        cellPocv += ac.pocvAccum;
        cellPocvN += ac.pocvCount;
      }
      const double pocvRatio =
          std::clamp(cellPocvN ? cellPocv / cellPocvN : 0.0, 0.0, 0.20);
      pocvSum += pocvRatio;
      pocvN += 1;

      for (int drive : cfg.combDrives) {
        Cell c;
        c.name = cellName(tpl.footprint, drive, vt);
        c.footprint = tpl.footprint;
        c.kind = tpl.kind;
        c.numInputs = tpl.numInputs;
        c.drive = drive;
        c.vt = vt;
        c.pinCap = pinCapX1 * drive;
        c.widthSites = widthSitesFor(tpl.baseWidthSites, drive);
        c.area = c.widthSites * kSiteWidthUm * kRowHeightUm;
        c.leakagePower = leakX1 * drive;
        c.switchEnergy = energyX1 * drive;
        c.mis = mis;
        c.pocvSigmaRatio = pocvRatio;
        const double k = drive;
        for (int pin = 0; pin < tpl.numInputs; ++pin) {
          TimingArc arc;
          arc.fromPin = pin;
          arc.unate = Unateness::kNegative;
          arc.rise = drive == 1 ? arcChars[static_cast<std::size_t>(pin)].rise
                                : scaleSurface(arcChars[static_cast<std::size_t>(pin)].rise, k);
          arc.fall = drive == 1 ? arcChars[static_cast<std::size_t>(pin)].fall
                                : scaleSurface(arcChars[static_cast<std::size_t>(pin)].fall, k);
          arc.riseLvf = drive == 1
                            ? arcChars[static_cast<std::size_t>(pin)].riseLvf
                            : scaleLvf(arcChars[static_cast<std::size_t>(pin)].riseLvf, k);
          arc.fallLvf = drive == 1
                            ? arcChars[static_cast<std::size_t>(pin)].fallLvf
                            : scaleLvf(arcChars[static_cast<std::size_t>(pin)].fallLvf, k);
          c.arcs.push_back(std::move(arc));
        }
        lib->addCell(std::move(c));
      }

      // Buffers composed from the INV characterization. Copy the X1 cell:
      // addCell below may reallocate the library's cell storage.
      if (tpl.kind == StageKind::kInverter) {
        const Cell invX1 = lib->cellByName(cellName("INV", 1, vt));
        for (int drive : cfg.combDrives) {
          const double k1 = std::max(drive / 2, 1);  // tapered first stage
          Cell buf;
          buf.name = cellName("BUF", drive, vt);
          buf.footprint = "BUF";
          buf.kind = StageKind::kInverter;
          buf.isBuffer = true;
          buf.numInputs = 1;
          buf.drive = drive;
          buf.vt = vt;
          buf.pinCap = pinCapX1 * k1;
          buf.widthSites = widthSitesFor(3, drive);
          buf.area = buf.widthSites * kSiteWidthUm * kRowHeightUm;
          buf.leakagePower = leakX1 * (k1 + drive);
          buf.switchEnergy = energyX1 * (k1 + drive);
          buf.pocvSigmaRatio = pocvRatio / std::sqrt(2.0);
          composeBuffer(buf, invX1, drive, k1, pinCapX1 * drive);
          lib->addCell(std::move(buf));
        }
      }
    }
  }

  // --- Flops ---------------------------------------------------------------
  for (VtClass vt : cfg.vts) {
    for (int drive : cfg.flopDrives) {
      LatchConditions lc;
      lc.vdd = pvt.vdd;
      lc.temp = pvt.temp;
      lc.vt = vt;
      lc.size = drive;
      lc.corner = pc;
      LatchSim sim(lc);
      const InterdepFlopModel interdep = fitInterdepModel(sim, cfg.quick);

      Cell c;
      c.name = cellName("DFF", drive, vt);
      c.footprint = "DFF";
      c.isSequential = true;
      c.numInputs = 2;  // D, CK
      c.drive = drive;
      c.vt = vt;
      c.pinCap = 0.9 * drive;
      c.widthSites = widthSitesFor(10, drive);
      c.area = c.widthSites * kSiteWidthUm * kRowHeightUm;
      // ~20-odd transistors: leakage scales like a handful of inverters.
      {
        Stage inv = Stage::make(StageKind::kInverter, 1, vt, 1.0, pc);
        c.leakagePower = 8.0 * drive * averageLeakage(inv, pvt.vdd, pvt.temp);
      }
      c.switchEnergy = 2.5 * drive * pvt.vdd * pvt.vdd;
      FlopTiming ft;
      ft.interdep = interdep;
      ft.setup = interdep.conventionalSetup(0.10);
      ft.hold = interdep.conventionalHold(0.10);
      ft.clockToQ = interdep.c2q0 * 1.10;
      // c2q vs (clock slew, load): scale the asymptotic c2q with load via
      // an output-stage RC term derived from the latch drive.
      {
        std::vector<double> cs{12.0, 40.0, 120.0};
        std::vector<double> ql{1.0, 4.0, 12.0};
        std::vector<double> vals;
        for (double csl : cs)
          for (double q : ql)
            vals.push_back(interdep.c2q0 * 1.10 + 0.15 * csl +
                           18.0 * (q / (4.0 * drive)));
        Table2D t(Axis(cs), Axis(ql), vals);
        Table2D slewT(Axis(cs), Axis(ql), vals);
        slewT.transform([&](double v) { return 0.6 * v; });
        ft.c2qRise = {t, slewT};
        ft.c2qFall = {t, slewT};
      }
      c.flop = ft;
      lib->addCell(std::move(c));
    }
  }

  // --- AOCV tables from the characterized POCV ratio -----------------------
  const double r = pocvN ? pocvSum / pocvN : 0.03;
  AocvTables aocv;
  aocv.lateDerate.clear();
  aocv.earlyDerate.clear();
  for (int d : aocv.depths) {
    aocv.lateDerate.push_back(1.0 + 3.0 * r / std::sqrt(static_cast<double>(d)));
    aocv.earlyDerate.push_back(
        std::max(1.0 - 3.0 * r / std::sqrt(static_cast<double>(d)), 0.0));
  }
  lib->aocv() = aocv;

  TC_DEBUG("characterized library %s: %d cells", lib->name().c_str(),
           lib->cellCount());
  return lib;
}

std::uint64_t charConfigDigest(const CharConfig& cfg) {
  // Canonical byte stream over EVERY knob, via the same binio primitives
  // the serializer uses (doubles bitwise, lengths explicit), then FNV-1a.
  // The leading schema version bumps every digest when a knob is added, so
  // stale disk-cache entries written by an older binary can never alias.
  std::ostringstream os;
  binio::putU32(os, 2);  // digest schema version
  binio::putVec(os, cfg.slews);
  binio::putVec(os, cfg.loadsX1);
  binio::putU32(os, static_cast<std::uint32_t>(cfg.vts.size()));
  for (VtClass vt : cfg.vts) binio::putI32(os, static_cast<std::int32_t>(vt));
  binio::putU32(os, static_cast<std::uint32_t>(cfg.combDrives.size()));
  for (int d : cfg.combDrives) binio::putI32(os, d);
  binio::putU32(os, static_cast<std::uint32_t>(cfg.flopDrives.size()));
  for (int d : cfg.flopDrives) binio::putI32(os, d);
  binio::putF64(os, cfg.mismatch.avtMvUm);
  binio::putF64(os, cfg.mismatch.lengthUm);
  binio::putF64(os, cfg.lvfSigmaScale);
  binio::putU32(os, cfg.quick ? 1u : 0u);
  binio::putU32(os, cfg.adaptive ? 1u : 0u);
  binio::putF64(os, cfg.errorTolPs);
  binio::putF64(os, cfg.sigmaGuardband);
  binio::putI32(os, cfg.seedPerAxis);
  const std::string bytes = os.str();
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;  // FNV-1a 64 prime
  }
  return h;
}

std::shared_ptr<const Library> characterizedLibrary(const LibraryPvt& pvt,
                                                    const CharConfig& cfg) {
  // Per-key shared futures: the registry lock is only held to look up or
  // insert the future, never across characterization. Concurrent scenario
  // setup at *different* PVTs characterizes in parallel; concurrent setup
  // at the *same* PVT shares one build — and one immutable Library, so
  // NLDM/LVF tables are never duplicated across engines (the cache the
  // MCMM runner leans on). Keyed on the FULL CharConfig digest, not just
  // `quick`: two callers with different mismatch models, sigma scales, or
  // grids must never alias to one cached library.
  using Key = std::pair<LibraryPvt, std::uint64_t>;
  using LibFuture = std::shared_future<std::shared_ptr<const Library>>;
  static std::mutex mu;
  static std::map<Key, LibFuture> cache;

  // Request/hit counts are kNoisy: the memo-vs-disk split depends on what
  // a previous process left in the on-disk cache, and request totals vary
  // with scenario construction order across test shards.
  static Counter& reqCtr = MetricsRegistry::global().counter(
      "liberty.char.requests", "count", MetricStability::kNoisy);
  static Counter& memoCtr = MetricsRegistry::global().counter(
      "liberty.char.memo_hits", "count", MetricStability::kNoisy);
  static Counter& diskCtr = MetricsRegistry::global().counter(
      "liberty.char.disk_hits", "count", MetricStability::kNoisy);
  static Counter& diskMissCtr = MetricsRegistry::global().counter(
      "liberty.char.disk_misses", "count", MetricStability::kNoisy);
  static Counter& buildCtr = MetricsRegistry::global().counter(
      "liberty.char.builds", "count", MetricStability::kNoisy);
  reqCtr.add();
  // Span covers the whole acquisition (memo wait, disk read, or build) so
  // the trace shows characterization cost per corner even on cache hits.
  TraceSpan span("liberty", "library_" + pvt.toString());

  const Key key{pvt, charConfigDigest(cfg)};
  std::promise<std::shared_ptr<const Library>> promise;
  LibFuture fut;
  bool isBuilder = false;
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(key);
    if (it == cache.end()) {
      fut = promise.get_future().share();
      cache.emplace(key, fut);
      isBuilder = true;
    } else {
      fut = it->second;
    }
  }
  if (!isBuilder) memoCtr.add();
  if (isBuilder) {
    try {
      // Second-level cache: characterized libraries persist on disk, like
      // the .lib/.db files a production flow characterizes once and ships.
      const std::string path = libraryCachePath(pvt, key.second);
      std::shared_ptr<Library> lib = readLibraryFile(path);
      if (lib) {
        diskCtr.add();
      } else {
        diskMissCtr.add();
        buildCtr.add();
        lib = buildLibrary(pvt, cfg);
        if (!writeLibraryFile(*lib, path))
          TC_WARN("could not write library cache %s", path.c_str());
      }
      promise.set_value(lib);
    } catch (...) {
      // Drop the entry BEFORE waking waiters: once set_exception runs, a
      // retrying caller must find the slot empty, not race into the
      // already-failed future. Only the sole builder for a key ever
      // erases, so this cannot drop a healthy rebuild.
      {
        std::lock_guard<std::mutex> lock(mu);
        cache.erase(key);
      }
      promise.set_exception(std::current_exception());
      throw;
    }
  }
  return fut.get();
}

std::shared_ptr<const Library> characterizedLibrary(const LibraryPvt& pvt,
                                                    bool quick) {
  CharConfig cfg;
  cfg.quick = quick;
  return characterizedLibrary(pvt, cfg);
}

void registerCharMetrics() {
  for (const char* name :
       {"liberty.char.requests", "liberty.char.memo_hits",
        "liberty.char.disk_hits", "liberty.char.disk_misses",
        "liberty.char.builds", "liberty.char.sim_queries"}) {
    MetricsRegistry::global().counter(name, "count", MetricStability::kNoisy);
  }
}

}  // namespace tc
