#pragma once
/// \file interdep.h
/// \brief Interdependent setup / hold / clock-to-q flip-flop timing model
/// (paper Sec. 3.4, Fig. 10; basis for signoff::flexflop after [23]).
///
/// Conventional libraries publish one (setup, hold, c2q) triple obtained
/// with a fixed pushout criterion. In reality the three quantities trade
/// off along a smooth surface:
///
///   c2q(s, h) = c2q0 + aS * exp(-(s - s0)/tauS) + aH * exp(-(h - h0)/tauH)
///
/// which is the analytic form the regenerative-latch physics produces (and
/// the form used by Chen/Li/Schlichtmann [7] and Kahng-Lee [23]). The model
/// here is *fit* to LatchSim transient samples, so its parameters move with
/// PVT like silicon would.

#include <vector>

#include "util/units.h"

namespace tc {

class LatchSim;

/// Fitted surface parameters.
struct InterdepFlopModel {
  Ps c2q0 = 60.0;  ///< asymptotic clock-to-q
  Ps aS = 40.0;    ///< setup pushout amplitude at s = s0
  Ps tauS = 12.0;  ///< setup pushout time constant
  Ps s0 = 20.0;    ///< setup reference point
  Ps aH = 40.0;    ///< hold pushout amplitude at h = h0
  Ps tauH = 12.0;
  Ps h0 = 0.0;
  Ps sMin = -20.0;  ///< capture fails below this setup
  Ps hMin = -20.0;

  /// Clock-to-q at the given setup/hold margins.
  Ps clockToQ(Ps setup, Ps hold) const;

  /// Setup time that meets a c2q budget at the given hold (inverse of
  /// clockToQ in s). Returns sMin-clamped value; +inf-like large value is
  /// never produced because budgets below c2q0 are rejected by the caller.
  Ps setupForC2q(Ps c2qBudget, Ps hold) const;
  /// Hold time that meets a c2q budget at the given setup.
  Ps holdForC2q(Ps c2qBudget, Ps setup) const;

  /// The conventional characterization point: smallest setup (resp. hold)
  /// such that c2q <= (1+pushoutFrac)*c2q0 with the other margin generous.
  Ps conventionalSetup(double pushoutFrac = 0.10) const;
  Ps conventionalHold(double pushoutFrac = 0.10) const;
};

/// Fit the surface to LatchSim samples (grid of capture() transients).
/// `quick` uses fewer samples for test-speed characterization.
InterdepFlopModel fitInterdepModel(const LatchSim& sim, bool quick = false);

}  // namespace tc
