#pragma once
/// \file liberty_writer.h
/// \brief Human-readable Liberty (.lib) text emission for a characterized
/// library: lu_table templates, per-cell area/leakage/pins, NLDM delay and
/// transition tables, and the LVF sigma tables as `ocv_sigma` groups —
/// the "Open Source Liberty" face [38] of the framework's library data.

#include <iosfwd>
#include <string>

#include "liberty/library.h"

namespace tc {

/// Write the whole library (or, with `maxCells` >= 0, a prefix of it — the
/// full dump of 140 cells is several MB).
void writeLiberty(const Library& lib, std::ostream& os, int maxCells = -1);
std::string toLiberty(const Library& lib, int maxCells = -1);

}  // namespace tc
