#pragma once
/// \file nldm.h
/// \brief Non-linear delay model (NLDM) and Liberty Variation Format (LVF)
/// table types.
///
/// NLDM is the classic (input slew x output load) delay/slew table the paper
/// places at the start of the modeling ladder ("TLF and Liberty NLDM
/// tables"). LVF is its variation-aware endpoint: *per* (slew, load) point,
/// separate early and late delay sigmas — "one number per load-slew
/// combination per cell" versus POCV's "one number per cell" (Sec. 3.1).

#include "util/interp.h"
#include "util/units.h"

namespace tc {

/// Delay + output-slew surfaces over (input slew [ps], load [fF]).
struct NldmSurface {
  Table2D delay;  ///< 50%-50% arc delay, ps
  Table2D slew;   ///< output 10-90 transition, ps

  bool empty() const { return delay.empty(); }
  Ps delayAt(Ps inputSlew, Ff load) const {
    return delay.lookup(inputSlew, load);
  }
  Ps slewAt(Ps inputSlew, Ff load) const {
    return slew.lookup(inputSlew, load);
  }
};

/// LVF sigmas over the same (slew, load) grid. Asymmetric by design: the
/// Monte Carlo path-delay distribution has a fat late tail (Fig. 7), so
/// sigmaLate >= sigmaEarly in general.
struct LvfSurface {
  Table2D sigmaEarly;  ///< one-sigma *decrease* of delay, ps
  Table2D sigmaLate;   ///< one-sigma *increase* of delay, ps

  bool empty() const { return sigmaEarly.empty(); }
  Ps earlyAt(Ps inputSlew, Ff load) const {
    return sigmaEarly.lookup(inputSlew, load);
  }
  Ps lateAt(Ps inputSlew, Ff load) const {
    return sigmaLate.lookup(inputSlew, load);
  }
};

}  // namespace tc
