#pragma once
/// \file cell.h
/// \brief Standard-cell timing/power views: timing arcs, constraint arcs,
/// and the Cell record the STA engine consumes.

#include <optional>
#include <string>
#include <vector>

#include "device/mosfet.h"
#include "device/stage.h"
#include "liberty/interdep.h"
#include "liberty/nldm.h"
#include "util/units.h"

namespace tc {

/// Arc unateness: negative-unate arcs invert (input rise -> output fall).
enum class Unateness { kPositive, kNegative, kNonUnate };

/// One input->output delay arc. Tables are indexed by *output* transition
/// direction; the STA engine maps input direction through `unate`.
struct TimingArc {
  int fromPin = 0;  ///< input pin index
  Unateness unate = Unateness::kNegative;
  NldmSurface rise;  ///< output rising
  NldmSurface fall;  ///< output falling
  LvfSurface riseLvf;
  LvfSurface fallLvf;

  const NldmSurface& surface(bool outputRise) const {
    return outputRise ? rise : fall;
  }
  const LvfSurface& lvf(bool outputRise) const {
    return outputRise ? riseLvf : fallLvf;
  }
};

/// Sequential timing view of a flop: conventional scalar constraints (from
/// the fixed-pushout characterization) plus the interdependent surface that
/// signoff::flexflop exploits.
struct FlopTiming {
  Ps setup = 30.0;          ///< conventional setup time (10% pushout)
  Ps hold = 10.0;           ///< conventional hold time
  Ps clockToQ = 80.0;       ///< c2q at the conventional point
  NldmSurface c2qRise;      ///< c2q vs (clock slew, load)
  NldmSurface c2qFall;
  InterdepFlopModel interdep;
};

/// Multi-input-switching derates characterized per cell (Sec. 2.1 / [26]):
/// the factor applied to the SIS arc delay when simultaneous switching is
/// detected. <1 on the parallel-network transition, >1 on the series one.
struct MisFactors {
  double parallelFactor = 1.0;  ///< output transition through parallel bank
  double seriesFactor = 1.0;    ///< output transition through series stack
  bool parallelIsRise = true;   ///< which output direction the bank drives
};

/// A library cell.
struct Cell {
  std::string name;        ///< e.g. "NAND2_X2_LVT"
  std::string footprint;   ///< swap group, e.g. "NAND2"
  StageKind kind = StageKind::kInverter;
  bool isBuffer = false;   ///< two-stage non-inverting buffer
  bool isSequential = false;
  int numInputs = 1;
  int drive = 1;           ///< X1/X2/X4/X8
  VtClass vt = VtClass::kSvt;

  Ff pinCap = 1.0;         ///< input capacitance per pin
  int widthSites = 3;      ///< placement footprint width in row sites
  Um2 area = 1.0;
  MicroWatt leakagePower = 0.0;  ///< state-averaged at lib PVT
  Fj switchEnergy = 1.0;   ///< internal energy per output toggle

  std::vector<TimingArc> arcs;      ///< combinational arcs (per input pin)
  std::optional<FlopTiming> flop;   ///< sequential view
  MisFactors mis;
  double pocvSigmaRatio = 0.0;      ///< cell-POCV: sigma/delay, one number

  /// All template topologies are inverting except the composed buffer.
  bool isInverting() const { return !isBuffer && !isSequential; }
};

}  // namespace tc
