#include "liberty/library.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "util/interp.h"

namespace tc {

std::string LibraryPvt::toString() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s_%.2fV_%.0fC", tc::toString(corner), vdd,
                temp);
  return buf;
}

bool LibraryPvt::operator<(const LibraryPvt& o) const {
  if (corner != o.corner) return corner < o.corner;
  if (vdd != o.vdd) return vdd < o.vdd;
  return temp < o.temp;
}

bool LibraryPvt::operator==(const LibraryPvt& o) const {
  return corner == o.corner && vdd == o.vdd && temp == o.temp;
}

double AocvTables::late(int depth, Um spreadUm) const {
  if (lateDerate.empty()) return 1.0;
  std::vector<double> xs(depths.begin(), depths.end());
  const double base =
      interp1(Axis(xs), lateDerate, static_cast<double>(std::max(depth, 1)));
  return base + distanceSlopePerMm * spreadUm * 1e-3;
}

double AocvTables::early(int depth, Um spreadUm) const {
  if (earlyDerate.empty()) return 1.0;
  std::vector<double> xs(depths.begin(), depths.end());
  const double base =
      interp1(Axis(xs), earlyDerate, static_cast<double>(std::max(depth, 1)));
  return std::max(base - distanceSlopePerMm * spreadUm * 1e-3, 0.0);
}

int Library::addCell(Cell cell) {
  if (byName_.count(cell.name))
    throw std::invalid_argument("duplicate cell: " + cell.name);
  const int idx = static_cast<int>(cells_.size());
  byName_[cell.name] = idx;
  byFootprint_[cell.footprint].push_back(idx);
  cells_.push_back(std::move(cell));
  return idx;
}

int Library::findCell(const std::string& name) const {
  auto it = byName_.find(name);
  return it == byName_.end() ? -1 : it->second;
}

const Cell& Library::cellByName(const std::string& name) const {
  const int idx = findCell(name);
  if (idx < 0) throw std::invalid_argument("no such cell: " + name);
  return cells_[static_cast<std::size_t>(idx)];
}

std::vector<int> Library::variants(const std::string& footprint) const {
  auto it = byFootprint_.find(footprint);
  if (it == byFootprint_.end()) return {};
  std::vector<int> out = it->second;
  std::sort(out.begin(), out.end(), [this](int a, int b) {
    const Cell& ca = cells_[static_cast<std::size_t>(a)];
    const Cell& cb = cells_[static_cast<std::size_t>(b)];
    if (ca.vt != cb.vt) return ca.vt < cb.vt;
    return ca.drive < cb.drive;
  });
  return out;
}

int Library::variant(const std::string& footprint, VtClass vt,
                     int drive) const {
  for (int idx : variants(footprint)) {
    const Cell& c = cells_[static_cast<std::size_t>(idx)];
    if (c.vt == vt && c.drive == drive) return idx;
  }
  return -1;
}

std::vector<std::string> Library::footprints() const {
  std::vector<std::string> out;
  out.reserve(byFootprint_.size());
  for (const auto& [fp, _] : byFootprint_) out.push_back(fp);
  return out;
}

void LibGroup::add(std::shared_ptr<const Library> lib) {
  libs_.push_back(std::move(lib));
  std::sort(libs_.begin(), libs_.end(),
            [](const auto& a, const auto& b) {
              return a->pvt().vdd < b->pvt().vdd;
            });
}

LibGroup::Bracket LibGroup::bracket(Volt vdd) const {
  if (libs_.empty()) throw std::logic_error("empty LibGroup");
  Bracket b;
  if (libs_.size() == 1 || vdd <= libs_.front()->pvt().vdd) {
    b.lo = b.hi = libs_.front().get();
    return b;
  }
  if (vdd >= libs_.back()->pvt().vdd) {
    b.lo = b.hi = libs_.back().get();
    return b;
  }
  for (std::size_t i = 1; i < libs_.size(); ++i) {
    if (vdd <= libs_[i]->pvt().vdd) {
      b.lo = libs_[i - 1].get();
      b.hi = libs_[i].get();
      const double span = b.hi->pvt().vdd - b.lo->pvt().vdd;
      b.frac = span > 0 ? (vdd - b.lo->pvt().vdd) / span : 0.0;
      return b;
    }
  }
  b.lo = b.hi = libs_.back().get();
  return b;
}

Ps LibGroup::delayAt(Volt vdd, const std::string& cellName, int arcIndex,
                     bool outputRise, Ps inputSlew, Ff load) const {
  const Bracket b = bracket(vdd);
  auto arcDelay = [&](const Library* lib) -> Ps {
    const Cell& c = lib->cellByName(cellName);
    const TimingArc& arc = c.arcs[static_cast<std::size_t>(arcIndex)];
    return arc.surface(outputRise).delayAt(inputSlew, load);
  };
  if (b.lo == b.hi) return arcDelay(b.lo);
  return (1.0 - b.frac) * arcDelay(b.lo) + b.frac * arcDelay(b.hi);
}

}  // namespace tc
