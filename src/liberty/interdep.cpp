#include "liberty/interdep.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "device/latch.h"

namespace tc {

namespace {
constexpr Ps kLargeMargin = 300.0;
constexpr double kMaxExp = 30.0;

double boundedExp(double x) { return std::exp(std::min(x, kMaxExp)); }

/// Least-squares line fit y = a + b*x; returns {a, b}.
std::pair<double, double> lineFit(const std::vector<double>& xs,
                                  const std::vector<double>& ys) {
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return {sy / n, 0.0};
  const double b = (n * sxy - sx * sy) / denom;
  const double a = (sy - b * sx) / n;
  return {a, b};
}
}  // namespace

Ps InterdepFlopModel::clockToQ(Ps setup, Ps hold) const {
  const double pushS = aS * boundedExp(-(setup - s0) / tauS);
  const double pushH = aH * boundedExp(-(hold - h0) / tauH);
  return c2q0 + pushS + pushH;
}

Ps InterdepFlopModel::setupForC2q(Ps c2qBudget, Ps hold) const {
  const double pushH = aH * boundedExp(-(hold - h0) / tauH);
  const double remaining = c2qBudget - c2q0 - pushH;
  if (remaining <= 1e-9) return kLargeMargin;  // budget unattainable
  const Ps s = s0 - tauS * std::log(remaining / aS);
  return std::max(s, sMin);
}

Ps InterdepFlopModel::holdForC2q(Ps c2qBudget, Ps setup) const {
  const double pushS = aS * boundedExp(-(setup - s0) / tauS);
  const double remaining = c2qBudget - c2q0 - pushS;
  if (remaining <= 1e-9) return kLargeMargin;
  const Ps h = h0 - tauH * std::log(remaining / aH);
  return std::max(h, hMin);
}

Ps InterdepFlopModel::conventionalSetup(double pushoutFrac) const {
  return setupForC2q(c2q0 * (1.0 + pushoutFrac), kLargeMargin);
}

Ps InterdepFlopModel::conventionalHold(double pushoutFrac) const {
  return holdForC2q(c2q0 * (1.0 + pushoutFrac), kLargeMargin);
}

InterdepFlopModel fitInterdepModel(const LatchSim& sim, bool quick) {
  InterdepFlopModel m;
  m.c2q0 = sim.capture(kLargeMargin, kLargeMargin).clockToQ;

  // Two-phase sweep: coarse until measurable pushout appears, then fine
  // steps through the (narrow) exponential region down to capture failure.
  const Ps coarse = quick ? 12.0 : 8.0;
  const Ps fine = quick ? 2.5 : 1.5;

  // --- setup branch: sweep s downward at generous hold --------------------
  std::vector<double> xs, ys;
  Ps sMin = -60.0;
  {
    Ps step = coarse;
    Ps s = 90.0;
    while (s >= -60.0) {
      const LatchResult r = sim.capture(s, kLargeMargin);
      if (!r.captured) {
        sMin = s + step;
        break;
      }
      const double push = r.clockToQ - m.c2q0;
      if (push > 0.4) {
        step = fine;
        xs.push_back(s);
        ys.push_back(std::log(push));
      }
      s -= step;
    }
  }
  m.sMin = sMin;
  if (xs.size() >= 3) {
    const auto [a, b] = lineFit(xs, ys);
    if (b < -1e-6) {
      m.tauS = -1.0 / b;
      m.s0 = *std::min_element(xs.begin(), xs.end());
      m.aS = std::exp(a + b * m.s0);
    }
  } else {
    // Degenerate (very robust flop at this PVT): tie to pushout scale.
    m.tauS = 8.0;
    m.s0 = sMin + 5.0;
    m.aS = 0.5 * m.c2q0;
  }

  // --- hold branch: sweep h downward at generous setup --------------------
  xs.clear();
  ys.clear();
  Ps hMin = -60.0;
  {
    Ps step = coarse;
    Ps h = 90.0;
    while (h >= -60.0) {
      const LatchResult r = sim.capture(kLargeMargin, h);
      if (!r.captured) {
        hMin = h + step;
        break;
      }
      const double push = r.clockToQ - m.c2q0;
      if (push > 0.4) {
        step = fine;
        xs.push_back(h);
        ys.push_back(std::log(push));
      }
      h -= step;
    }
  }
  m.hMin = hMin;
  if (xs.size() >= 3) {
    const auto [a, b] = lineFit(xs, ys);
    if (b < -1e-6) {
      m.tauH = -1.0 / b;
      m.h0 = *std::min_element(xs.begin(), xs.end());
      m.aH = std::exp(a + b * m.h0);
    }
  } else {
    m.tauH = 8.0;
    m.h0 = hMin + 5.0;
    m.aH = 0.5 * m.c2q0;
  }
  return m;
}

}  // namespace tc
