#pragma once
/// \file library.h
/// \brief Characterized cell library at one PVT point, plus the multi-
/// voltage "lib group" container the paper's signoff tools interpolate
/// across ("improved support of voltage scaling (interpolation across lib
/// groups)", Sec. 4 Comment 1).

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "device/process.h"
#include "liberty/cell.h"

namespace tc {

/// The PVT point a library is characterized at.
struct LibraryPvt {
  ProcessCorner corner = ProcessCorner::kTT;
  Volt vdd = 0.9;
  Celsius temp = 25.0;

  std::string toString() const;
  bool operator<(const LibraryPvt& o) const;
  bool operator==(const LibraryPvt& o) const;
};

/// AOCV derate tables: depth- and distance-dependent late/early factors
/// (Sec. 3.1 — "stage counts of launch path, capture path, and datapath as
/// well as spatial extents").
struct AocvTables {
  std::vector<int> depths{1, 2, 4, 8, 16, 32};
  std::vector<double> lateDerate;   ///< >= 1, shrinks with depth
  std::vector<double> earlyDerate;  ///< <= 1, grows toward 1 with depth
  double distanceSlopePerMm = 0.01; ///< extra derate per mm of spread

  double late(int depth, Um spreadUm = 0.0) const;
  double early(int depth, Um spreadUm = 0.0) const;
};

class Library {
 public:
  Library(std::string name, LibraryPvt pvt)
      : name_(std::move(name)), pvt_(pvt) {}

  const std::string& name() const { return name_; }
  const LibraryPvt& pvt() const { return pvt_; }

  /// Add a cell; returns its index. Throws on duplicate name.
  int addCell(Cell cell);
  int cellCount() const { return static_cast<int>(cells_.size()); }
  const Cell& cell(int index) const { return cells_[static_cast<std::size_t>(index)]; }
  /// Mutable access for in-place repair passes (lintLibrary table clamping).
  /// Name/footprint must not change — the lookup maps are not rebuilt.
  Cell& mutableCell(int index) { return cells_[static_cast<std::size_t>(index)]; }
  /// Index of a cell by name, -1 if absent.
  int findCell(const std::string& name) const;
  const Cell& cellByName(const std::string& name) const;

  /// All cells sharing a footprint (the legal swap group for sizing and
  /// Vt-swap), sorted by (vt, drive).
  std::vector<int> variants(const std::string& footprint) const;
  /// The variant with the given vt/drive in a footprint group, -1 if absent.
  int variant(const std::string& footprint, VtClass vt, int drive) const;
  std::vector<std::string> footprints() const;

  AocvTables& aocv() { return aocv_; }
  const AocvTables& aocv() const { return aocv_; }

 private:
  std::string name_;
  LibraryPvt pvt_;
  std::vector<Cell> cells_;
  std::map<std::string, int> byName_;
  std::map<std::string, std::vector<int>> byFootprint_;
  AocvTables aocv_;
};

/// A set of libraries at the same process/temperature but different supply
/// voltages; delay queries interpolate linearly between the two nearest
/// characterized voltages.
class LibGroup {
 public:
  void add(std::shared_ptr<const Library> lib);
  std::size_t size() const { return libs_.size(); }
  /// The two bracketing libraries and the interpolation weight for `vdd`.
  struct Bracket {
    const Library* lo = nullptr;
    const Library* hi = nullptr;
    double frac = 0.0;  ///< 0 -> lo, 1 -> hi
  };
  Bracket bracket(Volt vdd) const;

  /// Interpolated arc delay for the named cell/arc at an arbitrary supply.
  Ps delayAt(Volt vdd, const std::string& cellName, int arcIndex,
             bool outputRise, Ps inputSlew, Ff load) const;

  const std::vector<std::shared_ptr<const Library>>& libraries() const {
    return libs_;
  }

 private:
  std::vector<std::shared_ptr<const Library>> libs_;  ///< sorted by vdd
};

}  // namespace tc
