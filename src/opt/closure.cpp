#include "opt/closure.h"

#include <chrono>
#include <memory>

#include "util/log.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace tc {

namespace {
double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Run one transform under a span, counting its edits. Transforms read the
/// iteration's (stale) STA snapshot, so attribution of WNS/TNS movement to
/// a single transform happens at iteration granularity (the qor_delta
/// instant after the next refresh) — never by inserting extra STA calls,
/// which would change the closure trajectory.
template <typename Fn>
int runTransform(const char* name, Fn&& fn) {
  TraceSpan span("closure.transform", name);
  const int edits = fn();
  span.arg("edits", static_cast<std::int64_t>(edits));
  span.arg("accepted", edits > 0 ? "yes" : "no");
  MetricsRegistry::global()
      .counter(std::string("closure.edits.") + name, "count")
      .add(static_cast<std::uint64_t>(edits > 0 ? edits : 0));
  return edits;
}
}  // namespace

ClosureLoop::ClosureLoop(Netlist& nl, Scenario setupScenario,
                         std::optional<Scenario> holdScenario,
                         std::optional<Floorplan> floorplan)
    : nl_(&nl),
      setupSc_(std::move(setupScenario)),
      holdSc_(std::move(holdScenario)),
      fp_(floorplan) {}

ClosureResult ClosureLoop::run(const ClosureConfig& cfg) {
  ClosureResult result;

  // Incremental mode keeps one engine per scenario alive for the whole
  // loop: the mutation hooks on Netlist mark the dirty frontier as the
  // transforms edit, and updateTiming() re-propagates only that region
  // (structural edits — buffering, pin swap — fall back to a full retime
  // inside the engine). Legacy mode rebuilds from scratch each iteration.
  std::unique_ptr<StaEngine> setupSta;
  std::unique_ptr<StaEngine> holdSta;
  auto refreshTiming = [&]() -> double {
    TC_SPAN("closure", "refresh_sta");
    const auto t0 = std::chrono::steady_clock::now();
    if (cfg.incrementalSta) {
      if (!setupSta) {
        setupSta = std::make_unique<StaEngine>(*nl_, setupSc_);
        setupSta->run();
      } else {
        setupSta->updateTiming();
      }
      if (holdSc_) {
        if (!holdSta) {
          holdSta = std::make_unique<StaEngine>(*nl_, *holdSc_);
          holdSta->run();
        } else {
          holdSta->updateTiming();
        }
      }
    } else {
      setupSta = std::make_unique<StaEngine>(*nl_, setupSc_);
      setupSta->run();
      if (holdSc_) {
        holdSta = std::make_unique<StaEngine>(*nl_, *holdSc_);
        holdSta->run();
      }
    }
    return msSince(t0);
  };

  std::optional<FailureBreakdown> prevQor;
  for (int iter = 0; iter < cfg.iterations; ++iter) {
    TC_SPAN_F(iterSpan, "closure", "iter_%d", iter + 1);
    IterationRecord rec;
    rec.iteration = iter + 1;
    rec.staMs = refreshTiming();
    result.staMs += rec.staMs;
    rec.before = breakdown(*setupSta);
    if (holdSta) {
      const auto hb = breakdown(*holdSta);
      rec.before.holdWns = hb.holdWns;
      rec.before.holdTns = hb.holdTns;
      rec.before.holdViolations = hb.holdViolations;
    }
    iterSpan.arg("wns", rec.before.setupWns);
    iterSpan.arg("tns", rec.before.setupTns);
    // Attribute the previous iteration's edits to the QoR movement the
    // refresh just revealed.
    if (traceEnabled() && prevQor) {
      std::string args;
      char buf[96];
      std::snprintf(buf, sizeof buf, "\"dwns\":%.6g,\"dtns\":%.6g",
                    rec.before.setupWns - prevQor->setupWns,
                    rec.before.setupTns - prevQor->setupTns);
      args = buf;
      traceInstant("closure", "qor_delta", args);
    }
    prevQor = rec.before;

    const bool clean = rec.before.setupViolations == 0 &&
                       rec.before.holdViolations == 0 &&
                       rec.before.maxTransViolations == 0 &&
                       rec.before.maxCapViolations == 0;
    if (clean && cfg.stopWhenClean) {
      result.iterations.push_back(rec);
      break;
    }

    std::optional<RowOccupancy> occ;
    PlacementCtx place;
    if (fp_) {
      occ.emplace(*nl_, *fp_);
      place.occ = &*occ;
      place.fp = &*fp_;
    }

    // DRV-first: while the design is buried in maxtrans/maxcap failures,
    // slews are garbage and timing repairs thrash -- clean the electrical
    // rules before optimizing timing, as production recipes do.
    const bool drvStorm =
        rec.before.maxTransViolations + rec.before.maxCapViolations > 60;
    if (drvStorm && cfg.enableBuffering) {
      rec.buffers = runTransform("buffering_drv", [&] {
        return bufferInsertionFix(*nl_, *setupSta, cfg.repair, place);
      });
      result.iterations.push_back(rec);
      continue;
    }

    // Repair, simplest-first, per [30].
    int minIaBefore = 0;
    if (cfg.fixMinIaAfterSwaps && occ)
      minIaBefore =
          static_cast<int>(checkMinIa(*nl_, *occ, cfg.minIaSites).size());

    if (cfg.enablePinSwap)
      rec.pinSwaps = runTransform(
          "pin_swap", [&] { return pinSwapFix(*nl_, *setupSta, cfg.repair); });
    if (cfg.enableVtSwap)
      rec.vtSwaps = runTransform("vt_swap", [&] {
        return vtSwapFix(*nl_, *setupSta, cfg.repair, place);
      });
    if (cfg.enableSizing)
      rec.resizes = runTransform("sizing", [&] {
        return gateSizingFix(*nl_, *setupSta, cfg.repair, place);
      });
    if (cfg.enableBuffering)
      rec.buffers = runTransform("buffering", [&] {
        return bufferInsertionFix(*nl_, *setupSta, cfg.repair, place);
      });
    if (cfg.enableNdr)
      rec.ndrPromotions = runTransform("ndr_promotion", [&] {
        return ndrPromotionFix(*nl_, *setupSta, cfg.repair);
      });
    if (cfg.enableUsefulSkew)
      rec.usefulSkews = runTransform("useful_skew", [&] {
        return usefulSkewFix(*nl_, *setupSta, cfg.repair);
      });
    if (cfg.enableHoldFix && holdSta)
      rec.holdBuffers = runTransform(
          "hold_fix", [&] { return holdFix(*nl_, *holdSta, cfg.repair, place); });

    // Sec. 2.4: at 20nm and below, the Vt swaps above may have created
    // implant islands; clean them with the minimal-perturbation fixer.
    if (cfg.fixMinIaAfterSwaps && occ) {
      TC_SPAN("closure.transform", "min_ia_fix");
      const int created =
          static_cast<int>(checkMinIa(*nl_, *occ, cfg.minIaSites).size());
      rec.minIaViolationsCreated = created - minIaBefore;
      MinIaFixConfig mcfg;
      mcfg.minSites = cfg.minIaSites;
      const auto fixRep = fixMinIa(*nl_, *occ, *fp_, setupSta.get(), mcfg);
      rec.minIaViolationsFixed =
          fixRep.violationsBefore - fixRep.violationsAfter;
    }

    result.iterations.push_back(rec);
    TC_DEBUG("closure iter %d: WNS %.1f -> edits vt=%d size=%d buf=%d",
             rec.iteration, rec.before.setupWns, rec.vtSwaps, rec.resizes,
             rec.buffers);
  }

  result.staMs += refreshTiming();
  result.final = breakdown(*setupSta);
  if (holdSta) {
    const auto hb = breakdown(*holdSta);
    result.final.holdWns = hb.holdWns;
    result.final.holdTns = hb.holdTns;
    result.final.holdViolations = hb.holdViolations;
  }
  result.closed = result.final.setupViolations == 0 &&
                  result.final.holdViolations == 0 &&
                  result.final.maxTransViolations == 0 &&
                  result.final.maxCapViolations == 0;
  return result;
}

}  // namespace tc
