#include "opt/closure.h"

#include <memory>

#include "util/log.h"

namespace tc {

ClosureLoop::ClosureLoop(Netlist& nl, Scenario setupScenario,
                         std::optional<Scenario> holdScenario,
                         std::optional<Floorplan> floorplan)
    : nl_(&nl),
      setupSc_(std::move(setupScenario)),
      holdSc_(std::move(holdScenario)),
      fp_(floorplan) {}

ClosureResult ClosureLoop::run(const ClosureConfig& cfg) {
  ClosureResult result;

  for (int iter = 0; iter < cfg.iterations; ++iter) {
    // Fresh engines each iteration: buffer insertion edits topology.
    StaEngine setupSta(*nl_, setupSc_);
    setupSta.run();
    std::unique_ptr<StaEngine> holdSta;
    if (holdSc_) {
      holdSta = std::make_unique<StaEngine>(*nl_, *holdSc_);
      holdSta->run();
    }

    IterationRecord rec;
    rec.iteration = iter + 1;
    rec.before = breakdown(setupSta);
    if (holdSta) {
      const auto hb = breakdown(*holdSta);
      rec.before.holdWns = hb.holdWns;
      rec.before.holdTns = hb.holdTns;
      rec.before.holdViolations = hb.holdViolations;
    }

    const bool clean = rec.before.setupViolations == 0 &&
                       rec.before.holdViolations == 0 &&
                       rec.before.maxTransViolations == 0 &&
                       rec.before.maxCapViolations == 0;
    if (clean && cfg.stopWhenClean) {
      result.iterations.push_back(rec);
      break;
    }

    std::optional<RowOccupancy> occ;
    PlacementCtx place;
    if (fp_) {
      occ.emplace(*nl_, *fp_);
      place.occ = &*occ;
      place.fp = &*fp_;
    }

    // DRV-first: while the design is buried in maxtrans/maxcap failures,
    // slews are garbage and timing repairs thrash -- clean the electrical
    // rules before optimizing timing, as production recipes do.
    const bool drvStorm =
        rec.before.maxTransViolations + rec.before.maxCapViolations > 60;
    if (drvStorm && cfg.enableBuffering) {
      rec.buffers = bufferInsertionFix(*nl_, setupSta, cfg.repair, place);
      result.iterations.push_back(rec);
      continue;
    }

    // Repair, simplest-first, per [30].
    int minIaBefore = 0;
    if (cfg.fixMinIaAfterSwaps && occ)
      minIaBefore =
          static_cast<int>(checkMinIa(*nl_, *occ, cfg.minIaSites).size());

    if (cfg.enableVtSwap)
      rec.vtSwaps = vtSwapFix(*nl_, setupSta, cfg.repair, place);
    if (cfg.enableSizing)
      rec.resizes = gateSizingFix(*nl_, setupSta, cfg.repair, place);
    if (cfg.enableBuffering)
      rec.buffers = bufferInsertionFix(*nl_, setupSta, cfg.repair, place);
    if (cfg.enableNdr)
      rec.ndrPromotions = ndrPromotionFix(*nl_, setupSta, cfg.repair);
    if (cfg.enableUsefulSkew)
      rec.usefulSkews = usefulSkewFix(*nl_, setupSta, cfg.repair);
    if (cfg.enableHoldFix && holdSta)
      rec.holdBuffers = holdFix(*nl_, *holdSta, cfg.repair, place);

    // Sec. 2.4: at 20nm and below, the Vt swaps above may have created
    // implant islands; clean them with the minimal-perturbation fixer.
    if (cfg.fixMinIaAfterSwaps && occ) {
      const int created =
          static_cast<int>(checkMinIa(*nl_, *occ, cfg.minIaSites).size());
      rec.minIaViolationsCreated = created - minIaBefore;
      MinIaFixConfig mcfg;
      mcfg.minSites = cfg.minIaSites;
      const auto fixRep = fixMinIa(*nl_, *occ, *fp_, &setupSta, mcfg);
      rec.minIaViolationsFixed =
          fixRep.violationsBefore - fixRep.violationsAfter;
    }

    result.iterations.push_back(rec);
    TC_DEBUG("closure iter %d: WNS %.1f -> edits vt=%d size=%d buf=%d",
             rec.iteration, rec.before.setupWns, rec.vtSwaps, rec.resizes,
             rec.buffers);
  }

  StaEngine finalSta(*nl_, setupSc_);
  finalSta.run();
  result.final = breakdown(finalSta);
  if (holdSc_) {
    StaEngine h(*nl_, *holdSc_);
    h.run();
    const auto hb = breakdown(h);
    result.final.holdWns = hb.holdWns;
    result.final.holdTns = hb.holdTns;
    result.final.holdViolations = hb.holdViolations;
  }
  result.closed = result.final.setupViolations == 0 &&
                  result.final.holdViolations == 0 &&
                  result.final.maxTransViolations == 0 &&
                  result.final.maxCapViolations == 0;
  return result;
}

}  // namespace tc
