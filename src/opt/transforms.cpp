#include "opt/transforms.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tc {

namespace {

/// Instances on failing paths, most critical first.
std::vector<std::pair<Ps, InstId>> criticalInstances(const Netlist& nl,
                                                     const StaEngine& sta,
                                                     Ps slackTarget) {
  std::vector<std::pair<Ps, InstId>> out;
  // Instances appended after the STA snapshot (fresh buffers) are unknown
  // to its graph; they are picked up by the next iteration's run.
  const int span = std::min(nl.instanceCount(), sta.graph().instanceSpan());
  for (InstId i = 0; i < span; ++i) {
    if (nl.instance(i).isClockTreeBuffer) continue;
    const VertexId v = sta.graph().outputVertex(i);
    if (v < 0) continue;
    const Ps slack = sta.vertexSlack(v);
    if (slack < slackTarget) out.push_back({slack, i});
  }
  std::sort(out.begin(), out.end());
  return out;
}

VtClass fasterVt(VtClass vt) {
  return vt == VtClass::kUlvt ? vt
                              : static_cast<VtClass>(static_cast<int>(vt) - 1);
}
VtClass slowerVt(VtClass vt) {
  return vt == VtClass::kHvt ? vt
                             : static_cast<VtClass>(static_cast<int>(vt) + 1);
}

bool isClockNet(const Netlist& nl, NetId n) {
  const Net& net = nl.net(n);
  if (net.driver >= 0) return nl.instance(net.driver).isClockTreeBuffer;
  if (net.driverPort >= 0) {
    for (const auto& c : nl.clocks())
      if (c.port == net.driverPort) return true;
  }
  return false;
}

/// Place a freshly created instance near (x, y), if a placement exists.
/// Falls back to the raw coordinates (unlegalized) rather than leaving the
/// cell at the origin, which would fabricate a chip-spanning wire.
void placeNewCell(Netlist& nl, PlacementCtx place, InstId inst, Um x, Um y) {
  if (!place.occ || !place.fp) return;
  const int row = place.fp->rowOf(y);
  const int site = place.fp->siteOf(x);
  const auto gap = place.occ->findGapNear(
      *place.fp, row, site, nl.cellOf(inst).widthSites,
      place.fp->sitesPerRow + 9 * place.fp->numRows);
  if (gap.row >= 0) {
    place.occ->moveCell(nl, *place.fp, inst, gap.row, gap.siteLo);
  } else {
    Instance& in = nl.instance(inst);
    in.x = place.fp->xOf(site);
    in.y = place.fp->yOf(row);
    nl.notifyPlacementChanged(inst);
  }
}

}  // namespace

int vtSwapFix(Netlist& nl, const StaEngine& sta, const RepairConfig& cfg,
              PlacementCtx place) {
  (void)place;  // Vt swap keeps the footprint; MinIA cleanup runs separately
  const Library& lib = nl.library();
  int edits = 0;
  for (const auto& [slack, inst] : criticalInstances(nl, sta, cfg.slackTarget)) {
    if (edits >= cfg.maxEdits) break;
    const Cell& cur = nl.cellOf(inst);
    const VtClass target = fasterVt(cur.vt);
    if (target == cur.vt) continue;
    const int cand = lib.variant(cur.footprint, target, cur.drive);
    if (cand < 0) continue;
    nl.swapCell(inst, cand);
    ++edits;
  }
  return edits;
}

int gateSizingFix(Netlist& nl, const StaEngine& sta, const RepairConfig& cfg,
                  PlacementCtx place) {
  const Library& lib = nl.library();
  int edits = 0;
  for (const auto& [slack, inst] : criticalInstances(nl, sta, cfg.slackTarget)) {
    if (edits >= cfg.maxEdits) break;
    const Cell& cur = nl.cellOf(inst);
    if (cur.drive >= cfg.maxDrive) continue;
    const int cand = lib.variant(cur.footprint, cur.vt, cur.drive * 2);
    if (cand < 0) continue;
    // Upsizing only pays when the stage is over-loaded (electrical effort
    // above the optimal-fanout region); otherwise the doubled input cap
    // slows the (equally critical) driver more than this stage speeds up.
    {
      const NetId out = nl.instance(inst).fanout;
      if (out < 0) continue;
      const Ff load = sta.delayCalc().parasitics(out).totalCap;
      const double effort = load / std::max(cur.pinCap, 0.1);
      if (effort < 5.0) continue;
    }
    const int newWidth = lib.cell(cand).widthSites;
    if (place.occ && place.fp && nl.instance(inst).row >= 0) {
      if (!place.occ->resizeCell(nl, *place.fp, inst, newWidth)) {
        // No room in place: relocate to a gap that fits the bigger cell.
        const auto gap = place.occ->findGapNear(
            *place.fp, nl.instance(inst).row, nl.instance(inst).siteLo,
            newWidth, 120);
        if (gap.row < 0) continue;  // skip rather than create overlap
        nl.swapCell(inst, cand);
        place.occ->moveCell(nl, *place.fp, inst, gap.row, gap.siteLo);
        ++edits;
        continue;
      }
    }
    nl.swapCell(inst, cand);
    ++edits;
  }
  return edits;
}

int bufferInsertionFix(Netlist& nl, const StaEngine& sta,
                       const RepairConfig& cfg, PlacementCtx place) {
  const Library& lib = nl.library();
  const int bufCell = lib.variant("BUF", VtClass::kSvt, 4);
  int edits = 0;

  // Victims: DRV nets first (eligible for relay chains), then critical
  // high-fanout nets (sink splitting only -- a relay buffer in a failing
  // path would make WNS worse).
  std::vector<std::pair<NetId, bool>> victims;  // (net, isDrv)
  for (const auto& v : sta.drvViolations()) victims.push_back({v.net, true});
  for (const auto& [slack, inst] : criticalInstances(nl, sta, cfg.slackTarget)) {
    (void)slack;
    const NetId n = nl.instance(inst).fanout;
    if (n >= 0 && nl.net(n).sinks.size() >= 6) victims.push_back({n, false});
  }
  std::vector<bool> seen(static_cast<std::size_t>(nl.netCount()), false);

  for (const auto& [n, isDrv] : victims) {
    if (edits >= cfg.maxEdits) break;
    if (n < 0 || static_cast<std::size_t>(n) >= seen.size() ||
        seen[static_cast<std::size_t>(n)])
      continue;
    seen[static_cast<std::size_t>(n)] = true;
    if (isClockNet(nl, n)) continue;
    // Copy what we need up front: net edits below reallocate net storage.
    const std::vector<Net::Sink> netSinks = nl.net(n).sinks;
    const InstId netDriver = nl.net(n).driver;
    if (netSinks.size() < 2) continue;

    // Sink ordering: DRV nets are split *geographically* (groups must be
    // spatially compact, or each group's wire still spans the die);
    // timing-driven splits keep the most-critical sinks on the direct net
    // (a buffer in a failing path would make WNS worse).
    std::vector<Net::Sink> sinks = netSinks;
    const bool placed = netDriver >= 0 && nl.instance(netDriver).row >= 0;
    auto sinkSlack = [&](const Net::Sink& s) -> Ps {
      if (s.inst >= sta.graph().instanceSpan()) return 1e18;
      const VertexId v = sta.graph().inputVertex(s.inst, s.pin);
      return sta.vertexSlack(v);
    };
    if (isDrv && placed) {
      std::sort(sinks.begin(), sinks.end(),
                [&](const Net::Sink& a, const Net::Sink& b) {
                  const Instance& ia = nl.instance(a.inst);
                  const Instance& ib = nl.instance(b.inst);
                  if (ia.x != ib.x) return ia.x < ib.x;
                  return ia.y < ib.y;
                });
    } else {
      std::sort(sinks.begin(), sinks.end(),
                [&](const Net::Sink& a, const Net::Sink& b) {
                  return sinkSlack(a) < sinkSlack(b);
                });
    }
    const Ff groupCapLimit =
        std::max(0.6 * sta.scenario().limits.maxCapacitance,
                 2.0 * lib.cell(bufCell).pinCap);
    // Keep the near sinks up to the cap budget (minus room for buffer pins).
    std::size_t keep = 0;
    Ff keepCap = 0.0;
    while (keep < sinks.size() / 2 + 1 && keep < sinks.size()) {
      const Ff c = nl.cellOf(sinks[keep].inst).pinCap;
      if (keepCap + c > 0.5 * groupCapLimit) break;
      keepCap += c;
      ++keep;
    }
    // Wire-dominated DRV nets with few sinks (a long route) cannot be
    // fixed by sink splitting: insert a *chain* of fast relay buffers along
    // the route so every segment's wire cap fits the limit in one pass.
    const Ff capLimit = sta.scenario().limits.maxCapacitance;
    const NetParasitics& para = sta.delayCalc().parasitics(n);
    const bool needRelay = isDrv && sinks.size() <= 3 &&
                           para.wireCap > 0.55 * capLimit;
    if (needRelay && placed) {
      const int hops = std::clamp(
          static_cast<int>(std::ceil(para.wireCap / (0.45 * capLimit))) - 1,
          1, 3);
      Um cx = 0.0, cy = 0.0;
      for (const auto& s : sinks) {
        cx += nl.instance(s.inst).x;
        cy += nl.instance(s.inst).y;
      }
      cx /= static_cast<double>(sinks.size());
      cy /= static_cast<double>(sinks.size());
      const Um dx = nl.instance(netDriver).x;
      const Um dy = nl.instance(netDriver).y;
      const int relayCell = lib.variant("BUF", VtClass::kSvt, 8);
      NetId cur = n;
      for (int j = 1; j <= hops; ++j) {
        const InstId buf = nl.addInstance(
            "relay_" + std::to_string(nl.instanceCount()),
            relayCell >= 0 ? relayCell : bufCell);
        const double f = static_cast<double>(j) / (hops + 1);
        nl.connectInput(buf, 0, cur);
        cur = nl.addNet("relayn_" + std::to_string(n) + "_" +
                        std::to_string(j));
        nl.connectOutput(buf, cur);
        placeNewCell(nl, place, buf, dx + (cx - dx) * f, dy + (cy - dy) * f);
      }
      for (const auto& s : sinks) {
        nl.disconnectInput(s.inst, s.pin);
        nl.connectInput(s.inst, s.pin, cur);
      }
      ++edits;
      continue;
    }
    if (keep >= sinks.size()) continue;

    std::size_t k = keep;
    while (k < sinks.size()) {
      const InstId buf = nl.addInstance(
          "rebuf_" + std::to_string(nl.instanceCount()), bufCell);
      const NetId newNet =
          nl.addNet("rebufn_" + std::to_string(n) + "_" + std::to_string(k));
      nl.connectOutput(buf, newNet);
      Um cx = 0.0, cy = 0.0;
      Um gx0 = 0.0, gy0 = 0.0;
      Ff groupCap = 0.0;
      std::size_t moved = 0;
      while (k < sinks.size()) {
        const Ff c = nl.cellOf(sinks[k].inst).pinCap;
        if (moved > 0 && groupCap + c > groupCapLimit) break;
        if (placed) {
          const Instance& si = nl.instance(sinks[k].inst);
          if (moved == 0) {
            gx0 = si.x;
            gy0 = si.y;
          } else if (isDrv && std::abs(si.x - gx0) + std::abs(si.y - gy0) >
                                  90.0) {
            break;  // keep DRV groups spatially compact
          }
        }
        nl.disconnectInput(sinks[k].inst, sinks[k].pin);
        nl.connectInput(sinks[k].inst, sinks[k].pin, newNet);
        cx += nl.instance(sinks[k].inst).x;
        cy += nl.instance(sinks[k].inst).y;
        groupCap += c;
        ++moved;
        ++k;
      }
      nl.connectInput(buf, 0, n);
      if (placed && moved > 0) {
        placeNewCell(nl, place, buf, cx / static_cast<double>(moved),
                     cy / static_cast<double>(moved));
      }
    }
    ++edits;
  }
  return edits;
}

int ndrPromotionFix(Netlist& nl, const StaEngine& sta,
                    const RepairConfig& cfg) {
  int edits = 0;
  for (const auto& [slack, inst] : criticalInstances(nl, sta, cfg.slackTarget)) {
    (void)slack;
    if (edits >= cfg.maxEdits) break;
    const NetId n = nl.instance(inst).fanout;
    if (n < 0 || nl.net(n).ndrClass != 0) continue;
    const NetParasitics& p = sta.delayCalc().parasitics(n);
    if (p.wirelength < 40.0) continue;  // NDR only pays on long wires
    nl.setNdrClass(n, 2);               // 2W2S
    ++edits;
  }
  return edits;
}

int usefulSkewFix(Netlist& nl, const StaEngine& sta, const RepairConfig& cfg,
                  Ps maxSkewStep) {
  int edits = 0;
  auto eps = sta.endpoints();
  std::sort(eps.begin(), eps.end(),
            [](const EndpointTiming& a, const EndpointTiming& b) {
              return a.setupSlack < b.setupSlack;
            });
  constexpr Ps kMaxTotalSkew = 60.0;  // ping-pong guard (Sec. 2.3)
  for (const auto& ep : eps) {
    if (edits >= cfg.maxEdits) break;
    if (ep.flop < 0 || ep.setupSlack >= cfg.slackTarget) continue;
    if (nl.instance(ep.flop).usefulSkew >= kMaxTotalSkew) continue;
    // Headroom: the flop's own hold slack, and the setup slack of paths it
    // launches (delaying its clock delays its Q).
    Ps launchHeadroom = std::numeric_limits<double>::infinity();
    const VertexId q = sta.graph().outputVertex(ep.flop);
    if (q >= 0) launchHeadroom = sta.vertexSlack(q);
    const Ps holdHeadroom =
        std::isfinite(ep.holdSlack) ? ep.holdSlack : maxSkewStep;
    Ps step = std::min({-ep.setupSlack + 2.0, maxSkewStep,
                        holdHeadroom - 5.0, launchHeadroom - 5.0});
    if (step <= 1.0) continue;
    nl.setUsefulSkew(ep.flop, nl.instance(ep.flop).usefulSkew + step);
    ++edits;
  }
  return edits;
}

int pinSwapFix(Netlist& nl, const StaEngine& sta, const RepairConfig& cfg) {
  // Commutative-input cells expose asymmetric arcs (the series-stack pin
  // is slower): steer the latest-arriving signal onto the fastest pin.
  // Restricted to footprints whose inputs are functionally interchangeable.
  auto commutative = [](const Cell& c) {
    return !c.isSequential && c.numInputs >= 2 &&
           (c.footprint == "NAND2" || c.footprint == "NAND3" ||
            c.footprint == "NOR2" || c.footprint == "NOR3");
  };
  constexpr Ps kProbeSlew = 50.0;  // fixed probe: pin ranking, not timing
  int edits = 0;
  for (const auto& [slack, inst] : criticalInstances(nl, sta, cfg.slackTarget)) {
    (void)slack;
    if (edits >= cfg.maxEdits) break;
    const Cell& cur = nl.cellOf(inst);
    if (!commutative(cur)) continue;
    if (nl.instance(inst).fanout < 0) continue;
    const int numIn = static_cast<int>(nl.instance(inst).fanin.size());
    int latePin = -1, fastPin = -1;
    Ps lateArr = -std::numeric_limits<double>::infinity();
    Ps fastDelay = std::numeric_limits<double>::infinity();
    bool usable = true;
    for (int pin = 0; pin < numIn; ++pin) {
      if (nl.instance(inst).fanin[static_cast<std::size_t>(pin)] < 0 ||
          nl.isPinQuarantined(inst, pin)) {
        usable = false;
        break;
      }
      const VertexId v = sta.graph().inputVertex(inst, pin);
      if (v < 0) {
        usable = false;
        break;
      }
      const Ps arr = sta.arrivalKey(v, Mode::kLate);
      if (!std::isfinite(arr)) {
        usable = false;
        break;
      }
      const auto rise = sta.delayCalc().cellArc(inst, pin, true, kProbeSlew);
      const auto fall = sta.delayCalc().cellArc(inst, pin, false, kProbeSlew);
      const Ps d = 0.5 * (rise.delay + fall.delay);
      if (arr > lateArr) {
        lateArr = arr;
        latePin = pin;
      }
      if (d < fastDelay) {
        fastDelay = d;
        fastPin = pin;
      }
    }
    if (!usable || latePin < 0 || fastPin < 0 || latePin == fastPin) continue;
    nl.swapPins(inst, latePin, fastPin);
    ++edits;
  }
  return edits;
}

int holdFix(Netlist& nl, const StaEngine& holdSta, const RepairConfig& cfg,
            PlacementCtx place) {
  const Library& lib = nl.library();
  const int delayCell = lib.variant("BUF", VtClass::kHvt, 1);
  int edits = 0;
  for (const auto& ep : holdSta.endpoints()) {
    if (edits >= cfg.maxEdits) break;
    if (ep.flop < 0 || ep.holdSlack >= 0.0) continue;
    // Do not eat into setup headroom that isn't there.
    if (ep.setupSlack < 40.0) continue;
    const NetId dNet = nl.instance(ep.flop).fanin[0];
    if (dNet < 0) continue;
    const InstId buf = nl.addInstance(
        "holdbuf_" + std::to_string(nl.instanceCount()), delayCell);
    const NetId newNet = nl.addNet("holdn_" + std::to_string(ep.flop));
    nl.disconnectInput(ep.flop, 0);
    nl.connectOutput(buf, newNet);
    nl.connectInput(buf, 0, dNet);
    nl.connectInput(ep.flop, 0, newNet);
    placeNewCell(nl, place, buf, nl.instance(ep.flop).x,
                 nl.instance(ep.flop).y);
    ++edits;
  }
  return edits;
}

int leakageRecovery(Netlist& nl, const StaEngine& sta,
                    const RepairConfig& cfg, double* recoveredUw) {
  const Library& lib = nl.library();
  // Highest-leakage cells with comfortable slack first.
  std::vector<std::pair<double, InstId>> order;
  const int span = std::min(nl.instanceCount(), sta.graph().instanceSpan());
  for (InstId i = 0; i < span; ++i) {
    if (nl.instance(i).isClockTreeBuffer) continue;
    const VertexId v = sta.graph().outputVertex(i);
    if (v < 0) continue;
    const Ps slack = sta.vertexSlack(v);
    if (!std::isfinite(slack) || slack < cfg.leakageSlackFloor) continue;
    order.push_back({-nl.cellOf(i).leakagePower, i});
  }
  std::sort(order.begin(), order.end());
  int edits = 0;
  double saved = 0.0;
  for (const auto& [negLeak, inst] : order) {
    (void)negLeak;
    if (edits >= cfg.maxEdits) break;
    const Cell& cur = nl.cellOf(inst);
    const VtClass target = slowerVt(cur.vt);
    if (target == cur.vt) continue;
    const int cand = lib.variant(cur.footprint, target, cur.drive);
    if (cand < 0) continue;
    saved += cur.leakagePower - lib.cell(cand).leakagePower;
    nl.swapCell(inst, cand);
    ++edits;
  }
  if (recoveredUw) *recoveredUw = saved;
  return edits;
}

}  // namespace tc
