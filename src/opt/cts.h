#pragma once
/// \file cts.h
/// \brief Post-placement clock-tree optimization and skew measurement.
///
/// The paper calls multi-corner multi-mode clock network synthesis "of
/// particular note" among the hard problems ("each of hundreds of
/// scenarios has different clock insertion delay and timing constraints"),
/// and cites the global-local framework of Han et al. [10] for
/// simultaneous multi-corner skew-variation reduction.
///
/// The generator's clock tree is built netlist-order-blind; after
/// placement its leaf clusters straddle the die and skew is dominated by
/// wire-length imbalance. optimizeClockTree() re-clusters flops
/// geometrically (k-means over the placement, seeded by the existing leaf
/// buffers), reconnects CK pins, and relocates every tree buffer to its
/// subtree centroid — the placement-aware CTO step. measureClockSkew()
/// reports insertion delays and skew from the engine's CK arrivals, and
/// skewAcrossScenarios() the [10]-style multi-corner skew spread.

#include <vector>

#include "place/placement.h"
#include "sta/engine.h"

namespace tc {

struct CtsResult {
  int leafBuffers = 0;
  int flopsReassigned = 0;
  int buffersMoved = 0;
  double meanClusterRadius = 0.0;  ///< um, after re-clustering
};

/// Geometric re-clustering + buffer relocation on a placed design.
/// Requires placement; occupancy (optional) keeps moves legal.
CtsResult optimizeClockTree(Netlist& nl, RowOccupancy* occ,
                            const Floorplan* fp, int kmeansIters = 8);

struct SkewReport {
  Ps insertionMin = 0.0;  ///< earliest CK arrival (early mode)
  Ps insertionMax = 0.0;  ///< latest CK arrival (late mode)
  Ps globalSkew = 0.0;    ///< max late - min early across all flops
  Ps localSkewMax = 0.0;  ///< worst launch/capture skew over flop pairs
                          ///< sharing a leaf buffer
  int flops = 0;
};

/// Skew from a completed engine run (useful-skew adjustments included).
SkewReport measureClockSkew(const StaEngine& engine);

/// STA-driven skew balancing: iteratively resize leaf clock buffers (and
/// stretch under-loaded leaf nets via their drive) so every leaf's
/// insertion delay approaches the median — the sizing half of classic CTS
/// balancing. Returns the number of buffer swaps applied.
int balanceClockTree(Netlist& nl, const Scenario& scenario,
                     int iterations = 3);

/// Multi-corner skew statement: global skew per scenario plus the
/// cross-scenario variation of each flop's insertion delay (the quantity
/// [10] minimizes). Engines must share one netlist.
struct McmmSkew {
  std::vector<Ps> globalSkewPerScenario;
  Ps worstCrossCornerVariation = 0.0;  ///< max over flops of (max-min
                                       ///< normalized insertion delay)
};
McmmSkew skewAcrossScenarios(const std::vector<const StaEngine*>& engines);

}  // namespace tc
