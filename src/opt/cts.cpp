#include "opt/cts.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace tc {

CtsResult optimizeClockTree(Netlist& nl, RowOccupancy* occ,
                            const Floorplan* fp, int kmeansIters) {
  CtsResult res;

  // Leaf buffers = clock buffers driving at least one flop CK pin.
  std::vector<InstId> leaves;
  std::vector<InstId> flops;
  for (InstId i = 0; i < nl.instanceCount(); ++i) {
    if (nl.isSequential(i)) {
      flops.push_back(i);
      continue;
    }
    if (!nl.instance(i).isClockTreeBuffer) continue;
    const NetId out = nl.instance(i).fanout;
    if (out < 0) continue;
    for (const auto& s : nl.net(out).sinks) {
      if (nl.isSequential(s.inst) && s.pin == 1) {
        leaves.push_back(i);
        break;
      }
    }
  }
  res.leafBuffers = static_cast<int>(leaves.size());
  if (leaves.empty() || flops.empty()) return res;

  // k-means over flop positions, seeded at current buffer locations.
  struct Cluster {
    double cx = 0.0, cy = 0.0;
    std::vector<InstId> members;
  };
  std::vector<Cluster> clusters(leaves.size());
  for (std::size_t k = 0; k < leaves.size(); ++k) {
    clusters[k].cx = nl.instance(leaves[k]).x;
    clusters[k].cy = nl.instance(leaves[k]).y;
  }
  const int cap = static_cast<int>(
      (flops.size() + leaves.size() - 1) / leaves.size());
  for (int iter = 0; iter < kmeansIters; ++iter) {
    for (auto& c : clusters) c.members.clear();
    // Capacitated greedy assignment: flops pick the nearest non-full
    // cluster (keeps leaf fanouts balanced).
    for (InstId f : flops) {
      const double fx = nl.instance(f).x;
      const double fy = nl.instance(f).y;
      std::size_t best = 0;
      double bestD = std::numeric_limits<double>::max();
      for (std::size_t k = 0; k < clusters.size(); ++k) {
        if (static_cast<int>(clusters[k].members.size()) >= cap + 1)
          continue;
        const double d = std::abs(clusters[k].cx - fx) +
                         std::abs(clusters[k].cy - fy);
        if (d < bestD) {
          bestD = d;
          best = k;
        }
      }
      clusters[best].members.push_back(f);
    }
    for (auto& c : clusters) {
      if (c.members.empty()) continue;
      double sx = 0.0, sy = 0.0;
      for (InstId f : c.members) {
        sx += nl.instance(f).x;
        sy += nl.instance(f).y;
      }
      c.cx = sx / static_cast<double>(c.members.size());
      c.cy = sy / static_cast<double>(c.members.size());
    }
  }

  // Reconnect CK pins and relocate leaf buffers to centroids.
  double radiusSum = 0.0;
  int radiusCnt = 0;
  for (std::size_t k = 0; k < clusters.size(); ++k) {
    const InstId buf = leaves[k];
    const NetId out = nl.instance(buf).fanout;
    for (InstId f : clusters[k].members) {
      const NetId cur = nl.instance(f).fanin[1];
      if (cur != out) {
        nl.disconnectInput(f, 1);
        nl.connectInput(f, 1, out);
        ++res.flopsReassigned;
      }
      radiusSum += std::abs(nl.instance(f).x - clusters[k].cx) +
                   std::abs(nl.instance(f).y - clusters[k].cy);
      ++radiusCnt;
    }
    if (fp) {
      const int row = fp->rowOf(clusters[k].cy);
      const int site = fp->siteOf(clusters[k].cx);
      if (occ) {
        const auto gap = occ->findGapNear(
            *fp, row, site, nl.cellOf(buf).widthSites,
            fp->sitesPerRow + 9 * fp->numRows);
        if (gap.row >= 0) {
          occ->moveCell(nl, *fp, buf, gap.row, gap.siteLo);
          ++res.buffersMoved;
        }
      } else {
        Instance& in = nl.instance(buf);
        in.x = fp->xOf(site);
        in.y = fp->yOf(row);
        nl.notifyPlacementChanged(buf);
        ++res.buffersMoved;
      }
    }
  }
  res.meanClusterRadius = radiusCnt ? radiusSum / radiusCnt : 0.0;

  // Relocate upper-level buffers to the centroid of their children.
  for (InstId i = 0; i < nl.instanceCount(); ++i) {
    if (!nl.instance(i).isClockTreeBuffer) continue;
    const NetId out = nl.instance(i).fanout;
    if (out < 0) continue;
    double sx = 0.0, sy = 0.0;
    int n = 0;
    bool drivesBuffers = false;
    for (const auto& s : nl.net(out).sinks) {
      if (nl.instance(s.inst).isClockTreeBuffer) drivesBuffers = true;
      sx += nl.instance(s.inst).x;
      sy += nl.instance(s.inst).y;
      ++n;
    }
    if (!drivesBuffers || n == 0 || !fp) continue;
    const int row = fp->rowOf(sy / n);
    const int site = fp->siteOf(sx / n);
    if (occ) {
      const auto gap =
          occ->findGapNear(*fp, row, site, nl.cellOf(i).widthSites,
                           fp->sitesPerRow + 9 * fp->numRows);
      if (gap.row >= 0) {
        occ->moveCell(nl, *fp, i, gap.row, gap.siteLo);
        ++res.buffersMoved;
      }
    } else {
      nl.instance(i).x = fp->xOf(site);
      nl.instance(i).y = fp->yOf(row);
      nl.notifyPlacementChanged(i);
      ++res.buffersMoved;
    }
  }
  return res;
}

SkewReport measureClockSkew(const StaEngine& engine) {
  SkewReport rep;
  const TimingGraph& g = engine.graph();
  const Netlist& nl = engine.netlist();
  rep.insertionMin = std::numeric_limits<double>::max();
  rep.insertionMax = -std::numeric_limits<double>::max();

  // Group flops by leaf buffer for local skew.
  std::map<NetId, std::pair<Ps, Ps>> leafRange;  // net -> (minEarly, maxLate)
  for (VertexId v : g.clockPins()) {
    const double early = engine.arrivalKey(v, Mode::kEarly);
    const double late = engine.arrivalKey(v, Mode::kLate);
    if (late == kNoTime || !std::isfinite(early)) continue;
    rep.insertionMin = std::min(rep.insertionMin, early);
    rep.insertionMax = std::max(rep.insertionMax, late);
    ++rep.flops;
    const NetId ck = nl.instance(g.vertex(v).inst).fanin[1];
    auto [it, fresh] = leafRange.try_emplace(
        ck, std::pair<Ps, Ps>{early, late});
    if (!fresh) {
      it->second.first = std::min(it->second.first, early);
      it->second.second = std::max(it->second.second, late);
    }
  }
  if (rep.flops == 0) return rep;
  rep.globalSkew = rep.insertionMax - rep.insertionMin;
  for (const auto& [net, range] : leafRange)
    rep.localSkewMax =
        std::max(rep.localSkewMax, range.second - range.first);
  return rep;
}

int balanceClockTree(Netlist& nl, const Scenario& scenario,
                     int iterations) {
  const Library& lib = nl.library();
  int swaps = 0;
  for (int iter = 0; iter < iterations; ++iter) {
    StaEngine eng(nl, scenario);
    eng.run();
    const TimingGraph& g = eng.graph();

    // Mean CK arrival per leaf net, and the buffer driving it.
    std::map<NetId, std::pair<double, int>> leafArr;  // net -> (sum, n)
    for (VertexId v : g.clockPins()) {
      const double late = eng.arrivalKey(v, Mode::kLate);
      if (late == kNoTime) continue;
      const NetId ck = nl.instance(g.vertex(v).inst).fanin[1];
      auto& acc = leafArr[ck];
      acc.first += late;
      acc.second += 1;
    }
    if (leafArr.size() < 2) break;
    std::vector<double> means;
    for (auto& [net, acc] : leafArr) means.push_back(acc.first / acc.second);
    std::nth_element(means.begin(), means.begin() + means.size() / 2,
                     means.end());
    const double median = means[means.size() / 2];

    int changed = 0;
    for (const auto& [net, acc] : leafArr) {
      const double mean = acc.first / acc.second;
      const InstId buf = nl.net(net).driver;
      if (buf < 0 || !nl.instance(buf).isClockTreeBuffer) continue;
      const Cell& cur = nl.cellOf(buf);
      int targetDrive = cur.drive;
      if (mean > median + 4.0 && cur.drive < 8) {
        targetDrive = cur.drive * 2;  // slow leaf: stronger driver
      } else if (mean < median - 4.0 && cur.drive > 1) {
        targetDrive = cur.drive / 2;  // fast leaf: weaker driver
      }
      if (targetDrive == cur.drive) continue;
      const int cand = lib.variant(cur.footprint, cur.vt, targetDrive);
      if (cand < 0) continue;
      nl.swapCell(buf, cand);
      ++swaps;
      ++changed;
    }
    if (changed == 0) break;
  }
  return swaps;
}

McmmSkew skewAcrossScenarios(const std::vector<const StaEngine*>& engines) {
  McmmSkew out;
  if (engines.empty()) return out;
  const TimingGraph& g = engines.front()->graph();

  for (const StaEngine* e : engines)
    out.globalSkewPerScenario.push_back(measureClockSkew(*e).globalSkew);

  // Cross-corner insertion-delay variation per flop, normalized per
  // scenario by the mean insertion delay (so faster corners don't trivially
  // dominate) — the skew-variation objective of [10].
  std::vector<double> meanIns(engines.size(), 0.0);
  for (std::size_t s = 0; s < engines.size(); ++s) {
    int n = 0;
    for (VertexId v : g.clockPins()) {
      const double late = engines[s]->arrivalKey(v, Mode::kLate);
      if (late == kNoTime) continue;
      meanIns[s] += late;
      ++n;
    }
    if (n) meanIns[s] /= n;
  }
  for (VertexId v : g.clockPins()) {
    double lo = std::numeric_limits<double>::max();
    double hi = -std::numeric_limits<double>::max();
    bool ok = true;
    for (std::size_t s = 0; s < engines.size(); ++s) {
      const double late = engines[s]->arrivalKey(v, Mode::kLate);
      if (late == kNoTime || meanIns[s] <= 0.0) {
        ok = false;
        break;
      }
      const double norm = late / meanIns[s];
      lo = std::min(lo, norm);
      hi = std::max(hi, norm);
    }
    if (ok)
      out.worstCrossCornerVariation =
          std::max(out.worstCrossCornerVariation, hi - lo);
  }
  return out;
}

}  // namespace tc
