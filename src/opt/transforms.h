#pragma once
/// \file transforms.h
/// \brief The timing-closure repair transforms of the Fig. 1 loop, in the
/// recommended application order of MacDonald [30]: Vt-swap first, then
/// gate sizing, buffer insertion, non-default routing rules, and useful
/// skew — plus hold fixing and leakage recovery.
///
/// Every transform takes the *latest* STA results for victim selection and
/// edits the netlist (and, when placed, the row occupancy, because at 20nm
/// and below "post-detailed-routing Vt-swap is no longer independent of
/// detailed placement" — Sec. 2.4). Callers re-run STA afterwards.

#include <optional>

#include "place/placement.h"
#include "sta/engine.h"

namespace tc {

/// Shared knobs for one repair pass.
struct RepairConfig {
  int maxEdits = 200;           ///< victim cap per pass
  Ps slackTarget = 0.0;         ///< fix endpoints below this slack
  Ps leakageSlackFloor = 40.0;  ///< recovery only above this slack
  int maxDrive = 8;
};

/// Placement context for legality-aware edits (nullptr = pre-placement).
struct PlacementCtx {
  RowOccupancy* occ = nullptr;
  const Floorplan* fp = nullptr;
};

/// Swap critical cells one Vt step faster (toward ULVT). Returns edits.
int vtSwapFix(Netlist& nl, const StaEngine& sta, const RepairConfig& cfg,
              PlacementCtx place = {});

/// Upsize critical cells one drive step (with in-row legalization).
int gateSizingFix(Netlist& nl, const StaEngine& sta, const RepairConfig& cfg,
                  PlacementCtx place = {});

/// Split heavily-loaded / slew-violating nets with a buffer; far sinks move
/// behind the new buffer. Also the maxtrans/maxcap DRV fix.
int bufferInsertionFix(Netlist& nl, const StaEngine& sta,
                       const RepairConfig& cfg, PlacementCtx place = {});

/// Promote long critical nets to a wide/spaced non-default routing rule.
int ndrPromotionFix(Netlist& nl, const StaEngine& sta,
                    const RepairConfig& cfg);

/// Borrow time at failing endpoints by delaying the capture clock (bounded
/// by the endpoint's own hold headroom and the *next* stage's setup slack).
int usefulSkewFix(Netlist& nl, const StaEngine& sta, const RepairConfig& cfg,
                  Ps maxSkewStep = 30.0);

/// Swap commutative input pins (NAND/NOR families) so the latest-arriving
/// signal drives the fastest arc. A structural edit: connectivity moves, so
/// a registered incremental timer falls back to a full retime.
int pinSwapFix(Netlist& nl, const StaEngine& sta, const RepairConfig& cfg);

/// Insert delay buffers in front of hold-violating D pins. `holdSta` should
/// be the hold-critical (fast) scenario's engine.
int holdFix(Netlist& nl, const StaEngine& holdSta, const RepairConfig& cfg,
            PlacementCtx place = {});

/// Power recovery: downswap Vt (slower, lower leakage) on cells whose path
/// slack comfortably exceeds the floor. Returns edits; reports recovered
/// leakage via `recoveredUw` when non-null.
int leakageRecovery(Netlist& nl, const StaEngine& sta,
                    const RepairConfig& cfg, double* recoveredUw = nullptr);

}  // namespace tc
