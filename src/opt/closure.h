#pragma once
/// \file closure.h
/// \brief The Figure-1 timing-closure loop: iterations of {STA, failure
/// breakdown, ordered repair}, with the repair order recommended by
/// MacDonald [30] — Vt-swap, gate sizing, buffer insertion, NDR, useful
/// skew — plus hold fixing against a fast scenario and optional MinIA
/// cleanup after Vt swaps (the Sec. 2.4 placement-sizing interference).

#include <optional>
#include <vector>

#include "place/minia.h"
#include "opt/transforms.h"
#include "sta/report.h"

namespace tc {

struct ClosureConfig {
  int iterations = 5;  ///< [30]: "three weeks ... permits five iterations"
  RepairConfig repair;
  bool enableVtSwap = true;
  bool enableSizing = true;
  bool enableBuffering = true;
  bool enableNdr = true;
  bool enableUsefulSkew = true;
  bool enableHoldFix = true;
  bool enablePinSwap = false;  ///< commutative pin swap (off by default to
                               ///< keep the paper exhibits unchanged)
  bool fixMinIaAfterSwaps = false;  ///< 20nm-and-below behaviour
  int minIaSites = 3;
  bool stopWhenClean = true;
  /// Keep one STA engine per scenario alive across iterations and let the
  /// netlist mutation hooks drive incremental updateTiming() instead of a
  /// from-scratch run. Bit-identical to fresh engines (structural edits
  /// fall back to a full retime internally); false restores the legacy
  /// rebuild-every-iteration behaviour for A/B measurement.
  bool incrementalSta = true;
};

/// Scoreboard for one loop iteration.
struct IterationRecord {
  int iteration = 0;
  FailureBreakdown before;  ///< STA state entering the iteration
  int vtSwaps = 0;
  int resizes = 0;
  int buffers = 0;
  int ndrPromotions = 0;
  int usefulSkews = 0;
  int pinSwaps = 0;
  int holdBuffers = 0;
  int minIaViolationsCreated = 0;
  int minIaViolationsFixed = 0;
  double staMs = 0.0;  ///< wall time spent in STA entering this iteration
};

struct ClosureResult {
  std::vector<IterationRecord> iterations;
  FailureBreakdown final;
  bool closed = false;  ///< no setup/hold/DRV violations remain
  double staMs = 0.0;   ///< total STA wall time across the loop
};

class ClosureLoop {
 public:
  /// `setupScenario` drives setup/DRV fixing; `holdScenario` (optional)
  /// drives hold checks/fixing at a fast corner — the minimal MCMM pair.
  ClosureLoop(Netlist& nl, Scenario setupScenario,
              std::optional<Scenario> holdScenario = std::nullopt,
              std::optional<Floorplan> floorplan = std::nullopt);

  ClosureResult run(const ClosureConfig& cfg);

 private:
  Netlist* nl_;
  Scenario setupSc_;
  std::optional<Scenario> holdSc_;
  std::optional<Floorplan> fp_;
};

}  // namespace tc
