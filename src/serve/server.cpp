#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>

#include "liberty/builder.h"
#include "signoff/prune.h"
#include "sta/report.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace tc::serve {

namespace {

Counter& requestsCtr() {
  static Counter& c = MetricsRegistry::global().counter(
      "serve.requests", "", MetricStability::kStable);
  return c;
}
Counter& protocolErrorsCtr() {
  static Counter& c = MetricsRegistry::global().counter(
      "serve.protocol_errors", "", MetricStability::kStable);
  return c;
}
// Connection count and byte totals depend on client scheduling (how reads
// coalesce, how many clients a run manages to start) — noisy by nature.
Counter& connectionsCtr() {
  static Counter& c = MetricsRegistry::global().counter(
      "serve.connections", "", MetricStability::kNoisy);
  return c;
}
Counter& bytesInCtr() {
  static Counter& c = MetricsRegistry::global().counter(
      "serve.bytes_in", "bytes", MetricStability::kNoisy);
  return c;
}
Counter& bytesOutCtr() {
  static Counter& c = MetricsRegistry::global().counter(
      "serve.bytes_out", "bytes", MetricStability::kNoisy);
  return c;
}
Counter& drainedBytesCtr() {
  static Counter& c = MetricsRegistry::global().counter(
      "serve.drained_bytes", "bytes", MetricStability::kNoisy);
  return c;
}

Status ioError(const std::string& what) {
  return Status::failure(DiagCode::kServeIo,
                         what + ": " + std::strerror(errno));
}

bool writeAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR)) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  bytesOutCtr().add(data.size());
  return true;
}

const char* checkName(Check check) {
  return check == Check::kSetup ? "setup" : "hold";
}

/// Parse the optional "check" field ("setup" default).
Result<Check> parseCheck(const Json& req) {
  if (!req.contains("check")) return Check::kSetup;
  const std::string& s = req["check"].asString();
  if (s == "setup") return Check::kSetup;
  if (s == "hold") return Check::kHold;
  return Status::failure(DiagCode::kServeBadRequest,
                         "\"check\" must be \"setup\" or \"hold\"");
}

Json scenarioSlackJson(const EpochReplica& rep, std::size_t i) {
  const StaEngine& eng = rep.engine(i);
  Json setup = Json::object();
  setup.set("wns", eng.wns(Check::kSetup))
      .set("tns", eng.tns(Check::kSetup))
      .set("violations", eng.violationCount(Check::kSetup));
  Json hold = Json::object();
  hold.set("wns", eng.wns(Check::kHold))
      .set("tns", eng.tns(Check::kHold))
      .set("violations", eng.violationCount(Check::kHold));
  Json s = Json::object();
  s.set("scenario", rep.scenario(i).name)
      .set("setup", std::move(setup))
      .set("hold", std::move(hold))
      .set("drv_violations",
           static_cast<std::uint64_t>(eng.drvViolations().size()))
      .set("nan_quarantined", eng.nanQuarantineCount());
  return s;
}

}  // namespace

Server::Server(ServeOptions opt) : opt_(std::move(opt)) {
  if (opt_.engineThreads > 0)
    pool_ = std::make_unique<ThreadPool>(opt_.engineThreads);
  if (::pipe(wakePipe_) != 0) wakePipe_[0] = wakePipe_[1] = -1;
  // Surface the prune.* and liberty.char.* counters in `metrics` output
  // from the first request on, not only after the first pruned pass or
  // characterization touches them.
  registerPruneMetrics();
  registerCharMetrics();
}

Server::~Server() {
  stop();
  if (wakePipe_[0] >= 0) ::close(wakePipe_[0]);
  if (wakePipe_[1] >= 0) ::close(wakePipe_[1]);
}

Status Server::addDesign(const std::string& name, DesignSnapshot snap) {
  TC_SPAN_F(span, "serve", "addDesign %s", name.c_str());
  if (name.empty())
    return Status::failure(DiagCode::kServeBadRequest, "empty design name");
  {
    std::lock_guard<std::mutex> lock(designsMu_);
    if (designs_.count(name))
      return Status::failure(DiagCode::kServeDuplicateDesign,
                             "design \"" + name + "\" already served");
  }
  PruneAuditInfo prune;
  prune.certificates = snap.pruneCerts.size();
  prune.predictor = snap.prunePredictor.valid;
  // Epoch 0 builds outside the lock: a full multi-scenario batch run can
  // take a while and must not block queries against other designs.
  auto mgr = std::make_unique<EpochManager>(std::move(snap), pool_.get());
  std::lock_guard<std::mutex> lock(designsMu_);
  if (designs_.count(name))
    return Status::failure(DiagCode::kServeDuplicateDesign,
                           "design \"" + name + "\" already served");
  designs_.emplace(name, std::move(mgr));
  pruneInfo_.emplace(name, prune);
  return Status::okStatus();
}

EpochManager* Server::design(const std::string& name) {
  std::lock_guard<std::mutex> lock(designsMu_);
  auto it = designs_.find(name);
  return it == designs_.end() ? nullptr : it->second.get();
}

Result<int> Server::start() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ioError("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opt_.port));
  if (::inet_pton(AF_INET, opt_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::failure(DiagCode::kServeIo,
                           "bad listen address " + opt_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    Status st = ioError("bind " + opt_.host);
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) != 0) {
    Status st = ioError("listen");
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);
  listenFd_ = fd;
  if (!opt_.portFile.empty()) {
    // Written atomically-enough for the CI handshake: tmp + rename, so a
    // poller never reads a half-written port number.
    const std::string tmp = opt_.portFile + ".tmp";
    if (std::FILE* f = std::fopen(tmp.c_str(), "w")) {
      std::fprintf(f, "%d\n", port_.load());
      std::fclose(f);
      std::rename(tmp.c_str(), opt_.portFile.c_str());
    }
  }
  acceptThread_ = std::thread(&Server::acceptLoop, this);
  return port_.load();
}

void Server::requestStop() {
  if (stopRequested_.exchange(true)) return;
  if (wakePipe_[1] >= 0) {
    const char b = 's';
    // Best-effort, async-signal-safe: wait()/acceptLoop() poll the read end.
    (void)!::write(wakePipe_[1], &b, 1);
  }
}

void Server::wait() {
  while (!stopRequested_.load()) {
    pollfd p{wakePipe_[0], POLLIN, 0};
    ::poll(&p, 1, 200);
  }
}

void Server::stop() {
  requestStop();
  if (stopped_.exchange(true)) return;
  const int lfd = listenFd_.exchange(-1);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  if (acceptThread_.joinable()) acceptThread_.join();
  std::vector<std::thread> sessions;
  {
    std::lock_guard<std::mutex> lock(stateMu_);
    for (int fd : sessionFds_) ::shutdown(fd, SHUT_RDWR);
    sessions.swap(sessionThreads_);
    finishedSessionIds_.clear();
  }
  for (auto& t : sessions)
    if (t.joinable()) t.join();
}

void Server::acceptLoop() {
  for (;;) {
    const int lfd = listenFd_.load();
    if (lfd < 0 || stopRequested_.load()) return;
    pollfd fds[2] = {{lfd, POLLIN, 0}, {wakePipe_[0], POLLIN, 0}};
    const int n = ::poll(fds, 2, 500);
    if (n < 0 && errno != EINTR) return;
    if (stopRequested_.load()) return;
    if (n <= 0 || !(fds[0].revents & POLLIN)) continue;
    const int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd < 0) continue;
    reapSessions();
    // Reserve the slot here, not in sessionLoop: incrementing after the
    // thread is spawned would let a burst of accepts overshoot maxClients
    // before any session gets around to counting itself.
    if (activeClients_.fetch_add(1) >= opt_.maxClients) {
      activeClients_.fetch_sub(1);
      Json err = Json::object();
      err.set("ok", false)
          .set("done", true)
          .set("code", "SERVE_IO")
          .set("error", "server at max clients");
      writeAll(cfd, err.dump() + "\n");
      ::close(cfd);
      continue;
    }
    std::lock_guard<std::mutex> lock(stateMu_);
    sessionFds_.push_back(cfd);
    sessionThreads_.emplace_back(&Server::sessionLoop, this, cfd);
  }
}

void Server::reapSessions() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(stateMu_);
    if (finishedSessionIds_.empty()) return;
    for (const std::thread::id id : finishedSessionIds_) {
      auto it = std::find_if(
          sessionThreads_.begin(), sessionThreads_.end(),
          [id](const std::thread& t) { return t.get_id() == id; });
      if (it != sessionThreads_.end()) {
        done.push_back(std::move(*it));
        sessionThreads_.erase(it);
      }
    }
    finishedSessionIds_.clear();
  }
  for (std::thread& t : done)
    if (t.joinable()) t.join();
}

void Server::sessionLoop(int fd) {
  // activeClients_ was already incremented by acceptLoop at admission.
  connectionsCtr().add(1);
  Session session;
  std::string buf;
  char chunk[4096];
  bool draining = false;  // discarding the remainder of an oversized line
  bool alive = true;
  while (alive && !stopRequested_.load()) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    bytesInCtr().add(static_cast<std::uint64_t>(n));
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    while (alive && (pos = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, pos);
      buf.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (draining) {  // tail of a request we already rejected
        draining = false;
        continue;
      }
      for (const std::string& out : processLine(session, line)) {
        if (!writeAll(fd, out + "\n")) {
          alive = false;
          break;
        }
      }
      if (session.wantShutdown) requestStop();
      if (session.wantClose) alive = false;
    }
    if (draining) {
      // Still inside the rejected line (no newline yet): every buffered
      // byte is tail to discard, or an endless unterminated line would
      // grow buf without bound.
      drainedBytesCtr().add(buf.size());
      buf.clear();
    } else if (alive && buf.size() > opt_.maxRequestBytes) {
      // Reject without killing the connection: answer now, then discard
      // bytes until the peer finishes the line.
      Json err = Json::object();
      err.set("ok", false)
          .set("done", true)
          .set("code", toString(DiagCode::kServeOversized))
          .set("error", "request exceeds " +
                            std::to_string(opt_.maxRequestBytes) + " bytes");
      protocolErrorsCtr().add(1);
      if (!writeAll(fd, err.dump() + "\n")) alive = false;
      buf.clear();
      draining = true;
    }
  }
  {
    // Deregister before closing so stop() never calls shutdown() on a
    // recycled descriptor number.
    std::lock_guard<std::mutex> lock(stateMu_);
    sessionFds_.erase(
        std::remove(sessionFds_.begin(), sessionFds_.end(), fd),
        sessionFds_.end());
    // Hand the (about-to-finish) thread handle to acceptLoop for joining;
    // without this a long-running daemon keeps one zombie std::thread per
    // connection ever served until stop().
    finishedSessionIds_.push_back(std::this_thread::get_id());
  }
  ::close(fd);
  activeClients_.fetch_sub(1);
}

// ---------------------------------------------------------------------------
// Protocol brain (socket-free)
// ---------------------------------------------------------------------------

std::vector<std::string> Server::processLine(Session& session,
                                             const std::string& line) {
  requestsCtr().add(1);
  std::vector<std::string> out;
  if (line.empty()) return out;  // blank keepalive lines are ignored
  if (line.size() > opt_.maxRequestBytes) {
    protocolErrorsCtr().add(1);
    out.push_back(
        makeError(Json(), Status::failure(DiagCode::kServeOversized,
                                          "request exceeds " +
                                              std::to_string(
                                                  opt_.maxRequestBytes) +
                                              " bytes"))
            .dump());
    return out;
  }
  Result<Json> parsed = Json::parse(line);
  if (!parsed.ok()) {
    protocolErrorsCtr().add(1);
    out.push_back(makeError(Json(), parsed.status()).dump());
    return out;
  }
  const Json req = std::move(parsed.value());
  if (!req.isObject() || !req["cmd"].isString()) {
    protocolErrorsCtr().add(1);
    out.push_back(makeError(req, Status::failure(
                                     DiagCode::kServeBadRequest,
                                     "request must be an object with a "
                                     "string \"cmd\" field"))
                      .dump());
    return out;
  }
  std::vector<std::string> extra;
  Json terminal = handleRequest(session, req, &extra);
  if (!terminal["ok"].asBool(true)) protocolErrorsCtr().add(1);
  for (auto& e : extra) out.push_back(std::move(e));
  out.push_back(terminal.dump());
  return out;
}

Json Server::handleRequest(Session& session, const Json& req,
                           std::vector<std::string>* extra) {
  const std::string& cmd = req["cmd"].asString();
  TC_SPAN_F(span, "serve", "cmd %s", cmd.c_str());
  if (cmd == "ping") return cmdPing(req);
  if (cmd == "designs") return cmdDesigns(req);
  if (cmd == "slack") return cmdSlack(req, session);
  if (cmd == "endpoints") return cmdEndpoints(req, session);
  if (cmd == "path") return cmdPath(req, session);
  if (cmd == "histogram") return cmdHistogram(req, session);
  if (cmd == "metrics") return cmdMetrics(req);
  if (cmd == "pin") return cmdPin(req, session);
  if (cmd == "unpin") return cmdUnpin(req, session);
  if (cmd == "eco") return cmdEco(req, session, extra);
  if (cmd == "txn_begin") return cmdTxnBegin(req, session);
  if (cmd == "txn_op") return cmdTxnOp(req, session);
  if (cmd == "txn_commit") return cmdTxnCommit(req, session, extra);
  if (cmd == "txn_abort") return cmdTxnAbort(req, session);
  if (cmd == "quit") {
    session.wantClose = true;
    return makeResponse(req, /*ok=*/true, /*done=*/true);
  }
  if (cmd == "shutdown") {
    session.wantShutdown = true;
    Json r = makeResponse(req, /*ok=*/true, /*done=*/true);
    r.set("stopping", true);
    return r;
  }
  return makeError(req, Status::failure(DiagCode::kServeUnknownCommand,
                                        "unknown command \"" + cmd + "\""));
}

Result<std::shared_ptr<const EpochReplica>> Server::resolveReplica(
    const Json& req, Session& session, EpochManager** mgrOut) {
  if (!req["design"].isString())
    return Status::failure(DiagCode::kServeBadRequest,
                           "missing string \"design\" field");
  const std::string& name = req["design"].asString();
  EpochManager* mgr = design(name);
  if (!mgr)
    return Status::failure(DiagCode::kServeUnknownDesign,
                           "design \"" + name + "\" is not served");
  if (mgrOut) *mgrOut = mgr;
  auto pin = session.pins.find(name);
  if (pin != session.pins.end()) return pin->second;
  return mgr->current();
}

Result<std::size_t> Server::resolveScenario(const Json& req,
                                            const EpochReplica& rep) const {
  const Json& sc = req["scenario"];
  if (sc.isNumber()) {
    const std::int64_t i = sc.asInt();
    if (i < 0 || i >= static_cast<std::int64_t>(rep.scenarioCount()))
      return Status::failure(DiagCode::kServeBadScenario,
                             "scenario index out of range");
    return static_cast<std::size_t>(i);
  }
  if (sc.isString()) {
    for (std::size_t i = 0; i < rep.scenarioCount(); ++i)
      if (rep.scenario(i).name == sc.asString()) return i;
    return Status::failure(DiagCode::kServeBadScenario,
                           "unknown scenario \"" + sc.asString() + "\"");
  }
  return Status::failure(DiagCode::kServeBadScenario,
                         "missing \"scenario\" (name or index)");
}

Json Server::cmdPing(const Json& req) {
  Json r = makeResponse(req, /*ok=*/true, /*done=*/true);
  r.set("pong", true).set("version", kProtocolVersion);
  return r;
}

Json Server::cmdDesigns(const Json& req) {
  std::vector<std::pair<std::string, EpochManager*>> all;
  std::map<std::string, PruneAuditInfo> prune;
  {
    std::lock_guard<std::mutex> lock(designsMu_);
    for (auto& kv : designs_) all.emplace_back(kv.first, kv.second.get());
    prune = pruneInfo_;
  }
  Json arr = Json::array();
  for (auto& [name, mgr] : all) {  // map order: name-sorted, deterministic
    const EpochStats st = mgr->stats();
    auto rep = mgr->current();
    Json scenarios = Json::array();
    for (std::size_t i = 0; i < rep->scenarioCount(); ++i)
      scenarios.push(rep->scenario(i).name);
    Json d = Json::object();
    d.set("name", name)
        .set("epoch", st.epoch)
        .set("ops_committed", static_cast<std::uint64_t>(st.opsCommitted))
        .set("replicas_built", st.replicasBuilt)
        .set("replicas_reused", st.replicasReused)
        .set("instances", rep->netlist().instanceCount())
        .set("nets", rep->netlist().netCount())
        .set("endpoints",
             static_cast<std::uint64_t>(
                 rep->scenarioCount()
                     ? rep->engine(0).endpoints().size()
                     : 0))
        .set("scenarios", std::move(scenarios));
    const auto pit = prune.find(name);
    d.set("prune_certificates",
          pit == prune.end() ? std::uint64_t{0} : pit->second.certificates)
        .set("prune_predictor",
             pit != prune.end() && pit->second.predictor);
    arr.push(std::move(d));
  }
  Json r = makeResponse(req, /*ok=*/true, /*done=*/true);
  r.set("designs", std::move(arr));
  return r;
}

Json Server::cmdSlack(const Json& req, Session& session) {
  auto rep = resolveReplica(req, session, nullptr);
  if (!rep.ok()) return makeError(req, rep.status());
  const EpochReplica& replica = *rep.value();
  Json r = makeResponse(req, /*ok=*/true, /*done=*/true);
  r.set("design", req["design"]).set("epoch", replica.epoch());
  if (req.contains("scenario")) {
    auto si = resolveScenario(req, replica);
    if (!si.ok()) return makeError(req, si.status());
    Json arr = Json::array();
    arr.push(scenarioSlackJson(replica, si.value()));
    r.set("scenarios", std::move(arr));
    return r;
  }
  Json arr = Json::array();
  double setupWns = std::numeric_limits<double>::infinity();
  double holdWns = std::numeric_limits<double>::infinity();
  std::int64_t violations = 0;
  for (std::size_t i = 0; i < replica.scenarioCount(); ++i) {
    const StaEngine& eng = replica.engine(i);
    setupWns = std::min(setupWns, eng.wns(Check::kSetup));
    holdWns = std::min(holdWns, eng.wns(Check::kHold));
    violations += eng.violationCount(Check::kSetup) +
                  eng.violationCount(Check::kHold);
    arr.push(scenarioSlackJson(replica, i));
  }
  Json merged = Json::object();
  merged.set("setup_wns", setupWns)
      .set("hold_wns", holdWns)
      .set("violations", violations);
  r.set("scenarios", std::move(arr)).set("merged", std::move(merged));
  return r;
}

Json Server::cmdEndpoints(const Json& req, Session& session) {
  auto rep = resolveReplica(req, session, nullptr);
  if (!rep.ok()) return makeError(req, rep.status());
  const EpochReplica& replica = *rep.value();
  auto si = resolveScenario(req, replica);
  if (!si.ok()) return makeError(req, si.status());
  auto check = parseCheck(req);
  if (!check.ok()) return makeError(req, check.status());
  int k = 10;
  if (req.contains("k")) {
    k = static_cast<int>(req["k"].asInt());
    if (k < 1 || k > 100000)
      return makeError(req, Status::failure(DiagCode::kServeBadRequest,
                                            "\"k\" out of range [1, 1e5]"));
  }
  const StaEngine& eng = replica.engine(si.value());
  Json arr = Json::array();
  for (int idx : worstEndpointIndices(eng, check.value(), k)) {
    const EndpointTiming& ep =
        eng.endpoints()[static_cast<std::size_t>(idx)];
    Json e = Json::object();
    e.set("index", idx)
        .set("vertex", ep.vertex)
        .set("flop", ep.flop)
        .set("setup_slack", ep.setupSlack)
        .set("hold_slack", ep.holdSlack);
    arr.push(std::move(e));
  }
  Json r = makeResponse(req, /*ok=*/true, /*done=*/true);
  r.set("design", req["design"])
      .set("epoch", replica.epoch())
      .set("scenario", replica.scenario(si.value()).name)
      .set("check", checkName(check.value()))
      .set("endpoints", std::move(arr));
  return r;
}

Json Server::cmdPath(const Json& req, Session& session) {
  auto rep = resolveReplica(req, session, nullptr);
  if (!rep.ok()) return makeError(req, rep.status());
  const EpochReplica& replica = *rep.value();
  auto si = resolveScenario(req, replica);
  if (!si.ok()) return makeError(req, si.status());
  auto check = parseCheck(req);
  if (!check.ok()) return makeError(req, check.status());
  const StaEngine& eng = replica.engine(si.value());
  if (!req["endpoint"].isNumber())
    return makeError(req, Status::failure(DiagCode::kServeBadEndpoint,
                                          "missing numeric \"endpoint\""));
  const std::int64_t idx = req["endpoint"].asInt();
  if (idx < 0 || idx >= static_cast<std::int64_t>(eng.endpoints().size()))
    return makeError(req,
                     Status::failure(DiagCode::kServeBadEndpoint,
                                     "endpoint index out of range (have " +
                                         std::to_string(
                                             eng.endpoints().size()) +
                                         ")"));
  const EndpointTiming& ep =
      eng.endpoints()[static_cast<std::size_t>(idx)];
  const bool setup = check.value() == Check::kSetup;
  const Mode mode = setup ? Mode::kLate : Mode::kEarly;
  const int trans = setup ? ep.setupTrans : ep.holdTrans;
  Json steps = Json::array();
  for (const PathStep& s : eng.tracePath(ep.vertex, mode, trans)) {
    Json j = Json::object();
    j.set("vertex", s.vertex)
        .set("trans", s.trans)
        .set("arrival", s.arrival)
        .set("delay", s.edgeDelay);
    steps.push(std::move(j));
  }
  Json r = makeResponse(req, /*ok=*/true, /*done=*/true);
  r.set("design", req["design"])
      .set("epoch", replica.epoch())
      .set("scenario", replica.scenario(si.value()).name)
      .set("check", checkName(check.value()))
      .set("endpoint", idx)
      .set("slack", setup ? ep.setupSlack : ep.holdSlack)
      .set("steps", std::move(steps));
  return r;
}

Json Server::cmdHistogram(const Json& req, Session& session) {
  auto rep = resolveReplica(req, session, nullptr);
  if (!rep.ok()) return makeError(req, rep.status());
  const EpochReplica& replica = *rep.value();
  auto si = resolveScenario(req, replica);
  if (!si.ok()) return makeError(req, si.status());
  auto check = parseCheck(req);
  if (!check.ok()) return makeError(req, check.status());
  int bins = 12;
  if (req.contains("bins")) {
    bins = static_cast<int>(req["bins"].asInt());
    if (bins < 1 || bins > 256)
      return makeError(req,
                       Status::failure(DiagCode::kServeBadRequest,
                                       "\"bins\" out of range [1, 256]"));
  }
  const SlackHistogramBins h =
      slackHistogramBins(replica.engine(si.value()), check.value(), bins);
  Json counts = Json::array();
  for (std::uint64_t c : h.counts) counts.push(c);
  Json r = makeResponse(req, /*ok=*/true, /*done=*/true);
  r.set("design", req["design"])
      .set("epoch", replica.epoch())
      .set("scenario", replica.scenario(si.value()).name)
      .set("check", checkName(check.value()))
      .set("lo", h.lo)
      .set("bin_width", h.binWidth)
      .set("min", h.min)
      .set("max", h.max)
      .set("total", h.total)
      .set("counts", std::move(counts));
  return r;
}

Json Server::cmdMetrics(const Json& req) {
  const std::string prefix =
      req.contains("prefix") ? req["prefix"].asString() : std::string();
  Json metrics = Json::object();
  for (const MetricSnapshot& s : MetricsRegistry::global().snapshot(prefix)) {
    if (s.kind == MetricSnapshot::Kind::kHistogram) {
      Json h = Json::object();
      h.set("count", s.count)
          .set("sum", s.sum)
          .set("min", s.min)
          .set("max", s.max);
      metrics.set(s.name, std::move(h));
    } else {
      metrics.set(s.name, s.value);
    }
  }
  Json r = makeResponse(req, /*ok=*/true, /*done=*/true);
  r.set("metrics", std::move(metrics));
  return r;
}

Json Server::cmdPin(const Json& req, Session& session) {
  EpochManager* mgr = nullptr;
  if (!req["design"].isString())
    return makeError(req, Status::failure(DiagCode::kServeBadRequest,
                                          "missing string \"design\" field"));
  const std::string& name = req["design"].asString();
  mgr = design(name);
  if (!mgr)
    return makeError(req,
                     Status::failure(DiagCode::kServeUnknownDesign,
                                     "design \"" + name + "\" is not served"));
  auto rep = mgr->current();
  const std::uint64_t epoch = rep->epoch();
  session.pins[name] = std::move(rep);
  Json r = makeResponse(req, /*ok=*/true, /*done=*/true);
  r.set("design", name).set("epoch", epoch).set("pinned", true);
  return r;
}

Json Server::cmdUnpin(const Json& req, Session& session) {
  if (!req["design"].isString())
    return makeError(req, Status::failure(DiagCode::kServeBadRequest,
                                          "missing string \"design\" field"));
  const std::string& name = req["design"].asString();
  const bool had = session.pins.erase(name) > 0;
  Json r = makeResponse(req, /*ok=*/true, /*done=*/true);
  r.set("design", name).set("pinned", false).set("was_pinned", had);
  return r;
}

/// Shared tail of `eco` and `txn_commit`: stream received/accepted, then
/// commit and answer applied/rejected.
Json Server::cmdEco(const Json& req, Session& session,
                    std::vector<std::string>* extra) {
  EpochManager* mgr = nullptr;
  auto repRes = resolveReplica(req, session, &mgr);
  if (!repRes.ok()) return makeError(req, repRes.status());
  if (!req["ops"].isArray())
    return makeError(req, Status::failure(DiagCode::kServeBadRequest,
                                          "missing \"ops\" array"));
  std::vector<EcoOp> ops;
  ops.reserve(req["ops"].size());
  for (std::size_t i = 0; i < req["ops"].size(); ++i) {
    auto op = ecoOpFromJson(req["ops"].at(i));
    if (!op.ok()) {
      Json r = makeError(req, op.status());
      r.set("status", toString(CmdStatus::kRejected));
      return r;
    }
    ops.push_back(op.value());
  }
  {
    Json r = makeResponse(req, /*ok=*/true, /*done=*/false);
    r.set("status", toString(CmdStatus::kReceived))
        .set("ops", static_cast<std::uint64_t>(ops.size()));
    extra->push_back(r.dump());
  }
  // Early validation gives the client the "accepted" state before the
  // (possibly slow) re-time; commit() re-validates under the writer lock,
  // so a racing commit that invalidates these ops still ends in a clean
  // rejection rather than a torn apply.
  Status st = validateOps(mgr->current()->netlist(), ops);
  if (!st.ok()) {
    Json r = makeError(req, st);
    r.set("status", toString(CmdStatus::kRejected));
    return r;
  }
  {
    Json r = makeResponse(req, /*ok=*/true, /*done=*/false);
    r.set("status", toString(CmdStatus::kAccepted));
    extra->push_back(r.dump());
  }
  auto epoch = mgr->commit(ops);
  if (!epoch.ok()) {
    Json r = makeError(req, epoch.status());
    r.set("status", toString(CmdStatus::kRejected));
    return r;
  }
  Json r = makeResponse(req, /*ok=*/true, /*done=*/true);
  r.set("status", toString(CmdStatus::kApplied)).set("epoch", epoch.value());
  return r;
}

Json Server::cmdTxnBegin(const Json& req, Session& session) {
  if (session.txnActive)
    return makeError(req, Status::failure(DiagCode::kServeTxnState,
                                          "transaction already open"));
  if (!req["design"].isString())
    return makeError(req, Status::failure(DiagCode::kServeBadRequest,
                                          "missing string \"design\" field"));
  const std::string& name = req["design"].asString();
  if (!design(name))
    return makeError(req,
                     Status::failure(DiagCode::kServeUnknownDesign,
                                     "design \"" + name + "\" is not served"));
  session.txnActive = true;
  session.txnDesign = name;
  session.txnOps.clear();
  Json r = makeResponse(req, /*ok=*/true, /*done=*/true);
  r.set("design", name).set("status", toString(CmdStatus::kReceived));
  return r;
}

Json Server::cmdTxnOp(const Json& req, Session& session) {
  if (!session.txnActive)
    return makeError(req, Status::failure(DiagCode::kServeTxnState,
                                          "no open transaction"));
  auto op = ecoOpFromJson(req);
  if (!op.ok()) return makeError(req, op.status());
  session.txnOps.push_back(op.value());
  Json r = makeResponse(req, /*ok=*/true, /*done=*/true);
  r.set("status", toString(CmdStatus::kReceived))
      .set("ops", static_cast<std::uint64_t>(session.txnOps.size()));
  return r;
}

Json Server::cmdTxnCommit(const Json& req, Session& session,
                          std::vector<std::string>* extra) {
  if (!session.txnActive)
    return makeError(req, Status::failure(DiagCode::kServeTxnState,
                                          "no open transaction"));
  // The commit consumes the transaction whatever happens next: a rejected
  // commit leaves the session back in the "no transaction" state.
  Json synth = Json::object();
  if (req.contains("id")) synth.set("id", req["id"]);
  synth.set("cmd", "eco").set("design", session.txnDesign);
  Json opsArr = Json::array();
  for (const EcoOp& op : session.txnOps) opsArr.push(toJson(op));
  synth.set("ops", std::move(opsArr));
  session.txnActive = false;
  session.txnDesign.clear();
  session.txnOps.clear();
  return cmdEco(synth, session, extra);
}

Json Server::cmdTxnAbort(const Json& req, Session& session) {
  if (!session.txnActive)
    return makeError(req, Status::failure(DiagCode::kServeTxnState,
                                          "no open transaction"));
  const std::size_t dropped = session.txnOps.size();
  session.txnActive = false;
  session.txnDesign.clear();
  session.txnOps.clear();
  Json r = makeResponse(req, /*ok=*/true, /*done=*/true);
  r.set("status", toString(CmdStatus::kRejected))
      .set("dropped", static_cast<std::uint64_t>(dropped));
  return r;
}

}  // namespace tc::serve
