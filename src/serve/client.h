#pragma once
/// \file client.h
/// \brief Blocking line-delimited-JSON client for the goalposts-server.
///
/// Thin by design: one socket, one request on the wire at a time. call()
/// writes a request line and collects response lines until the terminal
/// done=true one, which mirrors the lifecycle streaming of ECO commands
/// (the interim received/accepted lines arrive in order, the applied or
/// rejected line ends the exchange). Used by tools/goalposts_client, the
/// bench_server_qps harness, and the serve tests.

#include <string>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace tc::serve {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connect to host:port; retries until `timeoutMs` elapses so callers
  /// can race server startup (the CI handshake polls the port file, but
  /// the listener may still be a beat behind).
  Status connect(const std::string& host, int port, int timeoutMs = 5000);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// One full exchange: send `request`, read until done=true. Returns
  /// every response object in arrival order (terminal last).
  Result<std::vector<Json>> call(const Json& request);
  /// Convenience: call() and return just the terminal response.
  Result<Json> callOne(const Json& request);

  /// Raw framing, exposed for the protocol fuzz tests (send bytes that
  /// Json::dump() would never produce).
  Status sendLine(const std::string& line);
  Result<std::string> readLine();

 private:
  int fd_ = -1;
  std::string buf_;
};

}  // namespace tc::serve
