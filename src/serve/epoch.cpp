#include "serve/epoch.h"

#include <cmath>
#include <utility>

#include "interconnect/wire.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace tc::serve {

namespace {

Counter& epochsPublished() {
  static Counter& c = MetricsRegistry::global().counter(
      "serve.epochs_published", "", MetricStability::kStable);
  return c;
}
Counter& opsApplied() {
  static Counter& c = MetricsRegistry::global().counter(
      "serve.eco_ops_applied", "", MetricStability::kStable);
  return c;
}
// Whether a publish reuses a retired replica depends on when readers
// release their pins — scheduling, not workload — so both paths are noisy.
Counter& replicasReusedCtr() {
  static Counter& c = MetricsRegistry::global().counter(
      "serve.replica_reused", "", MetricStability::kNoisy);
  return c;
}
Counter& replicasBuiltCtr() {
  static Counter& c = MetricsRegistry::global().counter(
      "serve.replica_rebuilt", "", MetricStability::kNoisy);
  return c;
}

}  // namespace

const char* toString(EcoOp::Kind kind) {
  switch (kind) {
    case EcoOp::Kind::kSwapCell: return "swap_cell";
    case EcoOp::Kind::kSetUsefulSkew: return "set_useful_skew";
    case EcoOp::Kind::kSetNdrClass: return "set_ndr_class";
    case EcoOp::Kind::kSetMillerOverride: return "set_miller";
  }
  return "unknown";
}

Json toJson(const EcoOp& op) {
  Json j = Json::object();
  j.set("op", toString(op.kind));
  switch (op.kind) {
    case EcoOp::Kind::kSwapCell:
      j.set("inst", op.target).set("cell", op.intArg);
      break;
    case EcoOp::Kind::kSetUsefulSkew:
      j.set("inst", op.target).set("ps", op.dblArg);
      break;
    case EcoOp::Kind::kSetNdrClass:
      j.set("net", op.target).set("class", op.intArg);
      break;
    case EcoOp::Kind::kSetMillerOverride:
      j.set("net", op.target).set("factor", op.dblArg);
      break;
  }
  return j;
}

Result<EcoOp> ecoOpFromJson(const Json& j) {
  if (!j.isObject() || !j["op"].isString())
    return Status::failure(DiagCode::kServeBadRequest,
                           "ECO op must be an object with an \"op\" field");
  const std::string& kind = j["op"].asString();
  auto needNum = [&](const char* field, double* out) {
    if (!j[field].isNumber())
      return Status::failure(DiagCode::kServeBadRequest,
                             std::string("ECO op \"") + kind +
                                 "\" needs numeric \"" + field + "\"");
    *out = j[field].asDouble();
    return Status::okStatus();
  };
  EcoOp op;
  double a = 0.0, b = 0.0;
  if (kind == "swap_cell") {
    op.kind = EcoOp::Kind::kSwapCell;
    Status st = needNum("inst", &a);
    if (!st.ok()) return st;
    st = needNum("cell", &b);
    if (!st.ok()) return st;
    op.target = static_cast<int>(a);
    op.intArg = static_cast<int>(b);
  } else if (kind == "set_useful_skew") {
    op.kind = EcoOp::Kind::kSetUsefulSkew;
    Status st = needNum("inst", &a);
    if (!st.ok()) return st;
    st = needNum("ps", &b);
    if (!st.ok()) return st;
    op.target = static_cast<int>(a);
    op.dblArg = b;
  } else if (kind == "set_ndr_class") {
    op.kind = EcoOp::Kind::kSetNdrClass;
    Status st = needNum("net", &a);
    if (!st.ok()) return st;
    st = needNum("class", &b);
    if (!st.ok()) return st;
    op.target = static_cast<int>(a);
    op.intArg = static_cast<int>(b);
  } else if (kind == "set_miller") {
    op.kind = EcoOp::Kind::kSetMillerOverride;
    Status st = needNum("net", &a);
    if (!st.ok()) return st;
    st = needNum("factor", &b);
    if (!st.ok()) return st;
    op.target = static_cast<int>(a);
    op.dblArg = b;
  } else {
    return Status::failure(DiagCode::kServeBadRequest,
                           "unknown ECO op \"" + kind + "\"");
  }
  return op;
}

Status validateOps(const Netlist& nl, const std::vector<EcoOp>& ops) {
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const EcoOp& op = ops[i];
    const std::string where = "op " + std::to_string(i) + " (" +
                              toString(op.kind) + "): ";
    switch (op.kind) {
      case EcoOp::Kind::kSwapCell: {
        if (op.target < 0 || op.target >= nl.instanceCount())
          return Status::failure(DiagCode::kServeTxnRejected,
                                 where + "instance out of range");
        if (op.intArg < 0 || op.intArg >= nl.library().cellCount())
          return Status::failure(DiagCode::kServeTxnRejected,
                                 where + "cell index outside library");
        const Cell& oldCell = nl.cellOf(op.target);
        const Cell& newCell = nl.library().cell(op.intArg);
        if (newCell.footprint != oldCell.footprint)
          return Status::failure(
              DiagCode::kServeTxnRejected,
              where + "footprint mismatch " + oldCell.footprint + " -> " +
                  newCell.footprint);
        if (newCell.numInputs != oldCell.numInputs)
          return Status::failure(DiagCode::kServeTxnRejected,
                                 where + "pin count mismatch");
        break;
      }
      case EcoOp::Kind::kSetUsefulSkew: {
        if (op.target < 0 || op.target >= nl.instanceCount())
          return Status::failure(DiagCode::kServeTxnRejected,
                                 where + "instance out of range");
        if (!nl.isSequential(op.target))
          return Status::failure(
              DiagCode::kServeTxnRejected,
              where + "useful skew targets a non-sequential instance");
        if (!std::isfinite(op.dblArg) || std::fabs(op.dblArg) > 1e6)
          return Status::failure(DiagCode::kServeTxnRejected,
                                 where + "skew not finite / implausible");
        break;
      }
      case EcoOp::Kind::kSetNdrClass: {
        if (op.target < 0 || op.target >= nl.netCount())
          return Status::failure(DiagCode::kServeTxnRejected,
                                 where + "net out of range");
        const int rules = static_cast<int>(ndrRules().size());
        if (op.intArg < 0 || op.intArg >= rules)
          return Status::failure(
              DiagCode::kServeTxnRejected,
              where + "NDR class outside the rule table (0.." +
                  std::to_string(rules - 1) + ")");
        break;
      }
      case EcoOp::Kind::kSetMillerOverride: {
        if (op.target < 0 || op.target >= nl.netCount())
          return Status::failure(DiagCode::kServeTxnRejected,
                                 where + "net out of range");
        if (!std::isfinite(op.dblArg) || op.dblArg < 0.0 || op.dblArg > 8.0)
          return Status::failure(
              DiagCode::kServeTxnRejected,
              where + "Miller factor outside [0, 8] or not finite");
        break;
      }
    }
  }
  return Status::okStatus();
}

// ---------------------------------------------------------------------------
// EpochReplica
// ---------------------------------------------------------------------------

EpochReplica::EpochReplica(const Netlist& base,
                           const std::vector<Scenario>& scenarios,
                           const std::vector<EcoOp>& log,
                           std::size_t opCount, ThreadPool* pool)
    : nl_(base), scenarios_(scenarios) {
  TC_SPAN("serve", "replica_build");
  // Replay the committed prefix before any engine observes the netlist:
  // the batch construction below then times exactly "the netlist with L
  // ops applied", which is the oracle the serve tests compare against.
  for (std::size_t i = 0; i < opCount; ++i) applyOp(log[i]);
  opsApplied_ = opCount;
  sinks_.reserve(scenarios_.size());
  engines_.reserve(scenarios_.size());
  for (const Scenario& sc : scenarios_) {
    auto sink = std::make_unique<DiagnosticSink>();
    sink->setEcho(false);  // queried, not streamed to stderr
    auto engine = std::make_unique<StaEngine>(nl_, sc);
    engine->setThreadPool(pool);
    engine->setDiagnosticSink(sink.get());
    engine->run();
    sinks_.push_back(std::move(sink));
    engines_.push_back(std::move(engine));
  }
}

EpochReplica::~EpochReplica() = default;

void EpochReplica::applyOp(const EcoOp& op) {
  switch (op.kind) {
    case EcoOp::Kind::kSwapCell:
      nl_.swapCell(op.target, op.intArg);
      break;
    case EcoOp::Kind::kSetUsefulSkew:
      nl_.setUsefulSkew(op.target, op.dblArg);
      break;
    case EcoOp::Kind::kSetNdrClass:
      nl_.setNdrClass(op.target, op.intArg);
      break;
    case EcoOp::Kind::kSetMillerOverride:
      nl_.setMillerOverride(op.target, op.dblArg);
      break;
  }
}

void EpochReplica::replayTo(const std::vector<EcoOp>& log,
                            std::size_t opCount) {
  TC_SPAN("serve", "replica_replay");
  // The engines are registered listeners on nl_, so each notifying
  // mutation marks its own dirty frontier; updateTiming() then re-times
  // only the affected cones — bit-identical to a fresh batch run by the
  // incremental contract (DESIGN.md "Incremental timing & invalidation").
  for (std::size_t i = opsApplied_; i < opCount; ++i) applyOp(log[i]);
  opsApplied_ = opCount;
  for (auto& engine : engines_) engine->updateTiming();
}

// ---------------------------------------------------------------------------
// EpochManager
// ---------------------------------------------------------------------------

EpochManager::EpochManager(DesignSnapshot snap, ThreadPool* pool)
    : base_(std::move(snap)), pool_(pool) {
  published_ = std::make_shared<EpochReplica>(*base_.netlist, base_.scenarios,
                                              opLog_, 0, pool_);
  built_ = 1;
  replicasBuiltCtr().add(1);
}

std::shared_ptr<const EpochReplica> EpochManager::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<EpochReplica> keep = published_;
  keep->pins_.fetch_add(1, std::memory_order_acq_rel);
  // The returned handle aliases `keep` through a deleter capture: the pin
  // drops (release) exactly when the last copy of this handle dies, and
  // the captured shared_ptr keeps the replica alive even if the manager
  // prunes it from the pool meanwhile.
  return std::shared_ptr<const EpochReplica>(
      keep.get(), [keep](const EpochReplica* p) {
        p->pins_.fetch_sub(1, std::memory_order_release);
      });
}

std::shared_ptr<EpochReplica> EpochManager::takeReusable() {
  std::lock_guard<std::mutex> lock(mu_);
  // Retired replicas can only lose pins (pins are granted to published_
  // alone, under this same mutex), so pins_ == 0 is a stable verdict.
  // Prefer the replica closest to the log tip: shortest replay delta.
  int best = -1;
  for (int i = 0; i < static_cast<int>(retired_.size()); ++i) {
    if (retired_[i]->pins_.load(std::memory_order_acquire) != 0) continue;
    if (best < 0 || retired_[i]->opsApplied() > retired_[best]->opsApplied())
      best = i;
  }
  if (best < 0) return nullptr;
  std::shared_ptr<EpochReplica> out = std::move(retired_[best]);
  retired_.erase(retired_.begin() + best);
  return out;
}

Result<std::uint64_t> EpochManager::commit(const std::vector<EcoOp>& ops) {
  std::lock_guard<std::mutex> writer(writerMu_);
  TC_SPAN_F(span, "serve", "commit ops=%zu", ops.size());
  if (ops.empty())
    return Status::failure(DiagCode::kServeTxnRejected, "empty transaction");

  std::shared_ptr<EpochReplica> cur;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cur = published_;
  }
  Status st = validateOps(cur->netlist(), ops);
  if (!st.ok()) return st;

  opLog_.insert(opLog_.end(), ops.begin(), ops.end());
  const std::size_t target = opLog_.size();

  bool reusedReplica = false;
  std::shared_ptr<EpochReplica> next = takeReusable();
  if (next) {
    next->replayTo(opLog_, target);
    reusedReplica = true;
    replicasReusedCtr().add(1);
  } else {
    next = std::make_shared<EpochReplica>(*base_.netlist, base_.scenarios,
                                          opLog_, target, pool_);
    replicasBuiltCtr().add(1);
  }

  std::uint64_t e = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    e = ++epoch_;
    next->setEpoch(e);
    retired_.push_back(std::move(published_));
    published_ = std::move(next);
    opsCommitted_ = target;
    reusedReplica ? ++reused_ : ++built_;
    // Bound the pool: drop oldest spares first. A pinned spare may be
    // dropped too — the readers' deleter capture owns it, so it simply
    // dies with its last reader instead of coming back for reuse.
    while (retired_.size() > kMaxPooledReplicas)
      retired_.erase(retired_.begin());
  }
  epochsPublished().add(1);
  opsApplied().add(static_cast<std::uint64_t>(ops.size()));
  return e;
}

EpochStats EpochManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EpochStats s;
  s.epoch = epoch_;
  s.opsCommitted = opsCommitted_;
  s.replicasReused = reused_;
  s.replicasBuilt = built_;
  s.pooledReplicas = retired_.size();
  return s;
}

}  // namespace tc::serve
