#pragma once
/// \file epoch.h
/// \brief Epoch-based snapshot isolation for the timing-signoff service.
///
/// The serving problem: many reader threads answer path/slack queries at
/// interactive latency while a writer lands what-if ECO transactions —
/// and every answer must be *exactly* the answer a fresh batch StaEngine
/// run would give for the state the reader is looking at. Locking one
/// engine would serialize readers behind every ECO; letting readers see a
/// half-applied ECO would make answers non-reproducible.
///
/// The scheme here is copy-on-write over an append-only ECO op log:
///
///  - A design's committed history is a log of EcoOps (cell swaps, useful
///    skew, NDR class, Miller overrides — the in-place edits the
///    incremental timer handles without a structural rebuild).
///  - An EpochReplica is one materialization of a log prefix: its own
///    Netlist copy plus one persistent incremental StaEngine per scenario,
///    registered on that copy's mutation hooks. A replica at prefix L is
///    bit-identical to a fresh batch run of the netlist-with-L-ops — that
///    is PR 3's incremental contract, and the serve oracle test re-proves
///    it end to end through the protocol.
///  - The EpochManager publishes one replica as "current". Readers pin it
///    with a shared_ptr and query immutable state lock-free for as long
///    as they like; publication is a pointer swap, never an in-place edit.
///  - The single writer commits a transaction by (1) validating ops
///    against the current netlist, (2) appending to the log, (3) taking a
///    *retired* replica nobody reads anymore and replaying just the log
///    delta through its incremental engines — or building a fresh replica
///    from scratch when every old one is still pinned — and (4) publishing
///    it as the next epoch.
///
/// Readers therefore never wait on writers, writers never wait on readers,
/// and any two observers of epoch N see byte-identical timing, no matter
/// how many epochs ahead the writer is.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "signoff/snapshot.h"
#include "sta/engine.h"
#include "util/json.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace tc::serve {

/// One committed ECO operation. Only in-place, non-structural edits are
/// transportable: they are exactly the edits the incremental timer
/// re-times without a graph rebuild, which is what keeps commit latency
/// interactive.
struct EcoOp {
  enum class Kind {
    kSwapCell,         ///< target=InstId, intArg=new cell index
    kSetUsefulSkew,    ///< target=flop InstId, dblArg=skew ps
    kSetNdrClass,      ///< target=NetId, intArg=NDR rule index
    kSetMillerOverride ///< target=NetId, dblArg=factor (0 = default)
  };
  Kind kind = Kind::kSwapCell;
  int target = -1;
  int intArg = 0;
  double dblArg = 0.0;
};

const char* toString(EcoOp::Kind kind);

/// Wire codec for one op ({"op":"swap_cell","inst":3,"cell":17} etc.).
Json toJson(const EcoOp& op);
Result<EcoOp> ecoOpFromJson(const Json& j);

/// Validate `ops` against the current netlist state without mutating it.
/// Returns the first problem as a failure Status naming the op index —
/// the "accepted -> rejected" branch of the command lifecycle.
Status validateOps(const Netlist& nl, const std::vector<EcoOp>& ops);

/// One materialized, immutable-once-published timing state. All const
/// methods are safe to call from any number of threads concurrently; the
/// EpochManager only mutates a replica (replay) while it holds the sole
/// reference.
class EpochReplica {
 public:
  /// Build at log prefix `opCount`: copy `base`, replay ops [0, opCount),
  /// then construct and run one engine per scenario (batch path).
  EpochReplica(const Netlist& base, const std::vector<Scenario>& scenarios,
               const std::vector<EcoOp>& log, std::size_t opCount,
               ThreadPool* pool);
  ~EpochReplica();
  EpochReplica(const EpochReplica&) = delete;
  EpochReplica& operator=(const EpochReplica&) = delete;

  /// Advance from this replica's prefix to `opCount` by applying the log
  /// delta through the netlist's notifying mutators and re-timing every
  /// engine incrementally (writer-only; caller must hold the replica
  /// exclusively).
  void replayTo(const std::vector<EcoOp>& log, std::size_t opCount);

  std::uint64_t epoch() const { return epoch_; }
  void setEpoch(std::uint64_t e) { epoch_ = e; }
  std::size_t opsApplied() const { return opsApplied_; }

  const Netlist& netlist() const { return nl_; }
  std::size_t scenarioCount() const { return engines_.size(); }
  const Scenario& scenario(std::size_t i) const { return scenarios_[i]; }
  const StaEngine& engine(std::size_t i) const { return *engines_[i]; }

 private:
  friend class EpochManager;

  void applyOp(const EcoOp& op);

  Netlist nl_;  ///< declared before engines_: engines deregister first
  std::vector<Scenario> scenarios_;
  std::vector<std::unique_ptr<DiagnosticSink>> sinks_;
  std::vector<std::unique_ptr<StaEngine>> engines_;
  std::size_t opsApplied_ = 0;
  std::uint64_t epoch_ = 0;
  /// Outstanding reader pins. Deliberately not shared_ptr::use_count():
  /// that load carries no acquire semantics, so a writer reusing the
  /// replica after "use_count()==1" would race the readers' last reads.
  /// Pins are released with memory_order_release and checked with acquire,
  /// which orders every reader access before any writer replay — the
  /// property the TSan CI leg verifies.
  mutable std::atomic<long> pins_{0};
};

/// Supervision counters for one design's epoch chain (exported under
/// serve.* metrics too; this struct is for tests and the `designs`
/// protocol command).
struct EpochStats {
  std::uint64_t epoch = 0;          ///< current published epoch
  std::size_t opsCommitted = 0;     ///< op-log length
  std::uint64_t replicasReused = 0; ///< incremental-replay publishes
  std::uint64_t replicasBuilt = 0;  ///< from-scratch publishes (+1 for epoch 0)
  std::size_t pooledReplicas = 0;   ///< retired replicas waiting for reuse
};

/// Snapshot-isolated epoch chain of one served design. Thread contract:
/// current()/stats() from any thread; commit() serializes internally (one
/// writer at a time), and may run concurrently with any number of
/// readers.
class EpochManager {
 public:
  /// Takes ownership of the snapshot (netlist + scenarios + libraries) and
  /// publishes epoch 0. `pool` (may be null) is handed to writer-side
  /// engines for intra-scenario parallel re-timing.
  EpochManager(DesignSnapshot snap, ThreadPool* pool);

  /// Pin the latest published epoch. The returned replica is immutable
  /// and remains valid (and byte-stable) for as long as the pointer is
  /// held, however many epochs are published meanwhile.
  std::shared_ptr<const EpochReplica> current() const;

  /// Validate and commit one ECO transaction; on success the new epoch
  /// number is returned and current() serves it. On failure nothing is
  /// committed and the published epoch is untouched.
  Result<std::uint64_t> commit(const std::vector<EcoOp>& ops);

  EpochStats stats() const;
  const std::vector<Scenario>& scenarios() const { return base_.scenarios; }

  /// Retired replicas kept around for delta reuse (spares beyond this are
  /// dropped oldest-first once no reader holds them).
  static constexpr std::size_t kMaxPooledReplicas = 2;

 private:
  std::shared_ptr<EpochReplica> takeReusable();

  DesignSnapshot base_;
  ThreadPool* pool_;

  mutable std::mutex mu_;  ///< guards published_, pool of retirees, stats
  std::shared_ptr<EpochReplica> published_;
  std::vector<std::shared_ptr<EpochReplica>> retired_;

  std::mutex writerMu_;  ///< serializes commit(); opLog_ is writer-only
  std::vector<EcoOp> opLog_;
  std::uint64_t epoch_ = 0;       ///< under mu_
  std::size_t opsCommitted_ = 0;  ///< under mu_ (mirrors opLog_.size())
  std::uint64_t reused_ = 0;      ///< under mu_
  std::uint64_t built_ = 0;       ///< under mu_
};

}  // namespace tc::serve
