#include "serve/proto.h"

#include "util/diag.h"

namespace tc::serve {

const char* toString(CmdStatus status) {
  switch (status) {
    case CmdStatus::kReceived: return "received";
    case CmdStatus::kAccepted: return "accepted";
    case CmdStatus::kApplied: return "applied";
    case CmdStatus::kRejected: return "rejected";
  }
  return "unknown";
}

Json makeResponse(const Json& request, bool ok, bool done) {
  Json r = Json::object();
  if (request.contains("id")) r.set("id", request["id"]);
  r.set("ok", ok);
  r.set("done", done);
  return r;
}

Json makeError(const Json& request, const Status& status) {
  Json r = makeResponse(request, /*ok=*/false, /*done=*/true);
  r.set("code", toString(status.code()));
  r.set("error", status.message());
  return r;
}

}  // namespace tc::serve
