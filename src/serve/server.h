#pragma once
/// \file server.h
/// \brief The goalposts-server: timing signoff as a long-lived service.
///
/// One Server process loads designs (DesignSnapshot files or generated
/// blocks), keeps a persistent incremental timing state per design via an
/// EpochManager, and answers line-delimited-JSON requests over TCP from
/// many concurrent clients. Readers are snapshot-isolated (see epoch.h);
/// ECO transactions go through the received->accepted->applied/rejected
/// lifecycle (see proto.h).
///
/// Request vocabulary ("cmd" field; every request is one JSON line):
///
///   ping                              liveness + protocol version
///   designs                           served designs + epoch stats
///   slack      design [scenario]      WNS/TNS/violations per scenario
///   endpoints  design scenario check [k]   worst-k endpoints by slack
///   path       design scenario endpoint check    worst path, step list
///   histogram  design scenario check [bins]      numeric slack histogram
///   metrics    [prefix]               live MetricsRegistry dump
///   pin        design                 pin session to the current epoch
///   unpin      design                 release the session pin
///   eco        design ops[]           one-shot transaction (full lifecycle)
///   txn_begin  design                 open a buffered transaction
///   txn_op     op fields              buffer one op (received)
///   txn_commit                        validate + commit + publish
///   txn_abort                         drop the buffer
///   shutdown                          stop the server (CI convenience)
///
/// Every query answers against one *epoch*: the session's pinned replica
/// when `pin` is in effect for that design, else the latest published one
/// (pinned just for the request). Responses are rendered with sorted keys
/// and round-trip number formatting, so equal timing state implies
/// byte-equal response lines — which is what lets the oracle tests compare
/// a served answer against a fresh batch StaEngine run with string
/// equality.
///
/// Threading: one accept thread, one thread per connection, a shared
/// ThreadPool for engine-internal parallelism. Session::processLine() is
/// the whole protocol brain and is socket-free, so protocol tests (and the
/// fuzz tests) can drive it in-process.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/epoch.h"
#include "serve/proto.h"
#include "signoff/snapshot.h"
#include "util/thread_pool.h"

namespace tc::serve {

struct ServeOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = pick an ephemeral port (see Server::port())
  int maxClients = 64;
  std::size_t maxRequestBytes = kDefaultMaxRequestBytes;
  int engineThreads = 0;  ///< 0 = serial engines (still one thread/client)
  std::string portFile;   ///< when set, the bound port is written here
};

class Server {
 public:
  explicit Server(ServeOptions opt);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Register a design under `name`. Builds epoch 0 (full batch run per
  /// scenario) synchronously. Fails with kServeDuplicateDesign on reuse.
  Status addDesign(const std::string& name, DesignSnapshot snap);

  /// Bind, listen, and start accepting. Returns the bound port.
  Result<int> start();

  /// Block until shutdown is requested (signal handler or `shutdown` cmd).
  void wait();

  /// Ask the serving loop to wind down (safe from any thread / signal
  /// context via the self-pipe; idempotent).
  void requestStop();

  /// Stop accepting, unblock every session, join all threads. Idempotent.
  void stop();

  int port() const { return port_; }

  /// Per-connection protocol state. Socket-free on purpose: tests drive
  /// processLine() directly with hostile input, and the connection thread
  /// is nothing but a framing loop around it.
  struct Session {
    /// Pinned epochs, per design (the `pin` command).
    std::map<std::string, std::shared_ptr<const EpochReplica>> pins;
    /// Buffered transaction (txn_begin .. txn_commit/txn_abort).
    bool txnActive = false;
    std::string txnDesign;
    std::vector<EcoOp> txnOps;
    bool wantShutdown = false;  ///< set by the `shutdown` command
    bool wantClose = false;     ///< set when the peer asked to quit
  };

  /// Parse one request line and produce the full response line sequence
  /// (each entry one JSON object, no trailing newline). Never throws on
  /// hostile input: malformed requests produce one ok=false response.
  std::vector<std::string> processLine(Session& session,
                                       const std::string& line);

  /// Lookup for tests; nullptr when unknown. Managers live as long as the
  /// server, so the pointer stays valid.
  EpochManager* design(const std::string& name);

 private:
  void acceptLoop();
  void sessionLoop(int fd);
  /// Join session threads that have announced completion (acceptLoop calls
  /// this on every accept so a long-running daemon does not accumulate one
  /// zombie thread handle per connection ever served).
  void reapSessions();
  Json handleRequest(Session& session, const Json& req,
                     std::vector<std::string>* extra);

  // Command handlers (each returns the terminal response object).
  Json cmdPing(const Json& req);
  Json cmdDesigns(const Json& req);
  Json cmdSlack(const Json& req, Session& session);
  Json cmdEndpoints(const Json& req, Session& session);
  Json cmdPath(const Json& req, Session& session);
  Json cmdHistogram(const Json& req, Session& session);
  Json cmdMetrics(const Json& req);
  Json cmdPin(const Json& req, Session& session);
  Json cmdUnpin(const Json& req, Session& session);
  Json cmdEco(const Json& req, Session& session,
              std::vector<std::string>* extra);
  Json cmdTxnBegin(const Json& req, Session& session);
  Json cmdTxnOp(const Json& req, Session& session);
  Json cmdTxnCommit(const Json& req, Session& session,
                    std::vector<std::string>* extra);
  Json cmdTxnAbort(const Json& req, Session& session);

  /// Resolve design + the replica the request should read (session pin if
  /// present, else the latest epoch, pinned for the request's duration).
  Result<std::shared_ptr<const EpochReplica>> resolveReplica(
      const Json& req, Session& session, EpochManager** mgrOut);
  /// Resolve the "scenario" field against a replica (name, or index).
  Result<std::size_t> resolveScenario(const Json& req,
                                      const EpochReplica& rep) const;

  ServeOptions opt_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex designsMu_;
  std::map<std::string, std::unique_ptr<EpochManager>> designs_;
  /// Prune-audit summary captured at addDesign time (the snapshot itself
  /// moves into the EpochManager): certificate count + whether a fitted
  /// predictor rode along. Reported by the `designs` command.
  struct PruneAuditInfo {
    std::uint64_t certificates = 0;
    bool predictor = false;
  };
  std::map<std::string, PruneAuditInfo> pruneInfo_;  ///< under designsMu_

  std::atomic<int> port_{0};
  std::atomic<int> listenFd_{-1};
  std::atomic<bool> stopRequested_{false};
  std::atomic<bool> stopped_{false};
  int wakePipe_[2] = {-1, -1};  ///< self-pipe: signal-safe requestStop()

  std::mutex stateMu_;
  std::thread acceptThread_;
  std::vector<std::thread> sessionThreads_;  ///< under stateMu_
  std::vector<int> sessionFds_;              ///< under stateMu_
  /// Ids of session threads that finished and await joining, under
  /// stateMu_; drained by reapSessions().
  std::vector<std::thread::id> finishedSessionIds_;
  std::atomic<int> activeClients_{0};
};

}  // namespace tc::serve
