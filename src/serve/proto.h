#pragma once
/// \file proto.h
/// \brief Serving-protocol vocabulary: the command lifecycle state machine,
/// wire field names, and shared helpers for building response lines.
///
/// The goalposts-server speaks line-delimited JSON over TCP: one request
/// object per line in, one or more response objects per line out. Every
/// response carries:
///   "id"    echoed from the request when present,
///   "ok"    false only for protocol/validation failures,
///   "done"  true on the terminal response of a request (ECO transactions
///           stream interim lifecycle states with done=false first).
///
/// ECO command lifecycle (Sec. 4's "timing closure is a negotiation" made
/// literal — a what-if edit is a conversation with explicit states):
///
///   received -> accepted -> applied
///                 \-> rejected
///
///  - received: the transaction's ops are parsed and buffered (txn_begin /
///    txn_op, or the ops array of a one-shot eco request).
///  - accepted: commit-time validation passed against the design's current
///    netlist (ids in range, footprints compatible, finite values).
///  - applied: the ops landed, every scenario engine re-timed
///    incrementally, and a new epoch is published; the response names it.
///  - rejected: validation failed (or the epoch manager refused); the
///    design and its published epoch are untouched.
///
/// Readers are snapshot-isolated the whole time: a query runs against the
/// epoch its session pinned (or the latest published one), never against
/// the writer's in-flight state. See DESIGN.md "Serving model".

#include <string>

#include "util/json.h"

namespace tc::serve {

/// Command lifecycle states (cf. the CmdStatus idiom in SNIPPETS.md
/// snippet 1: every state has one stable lower-case wire string).
enum class CmdStatus {
  kReceived,
  kAccepted,
  kApplied,
  kRejected,
};

const char* toString(CmdStatus status);

/// Wire protocol constants.
inline constexpr int kProtocolVersion = 1;
/// Default cap on one request line (bytes, newline included). Oversized
/// requests are drained and rejected without killing the connection.
inline constexpr std::size_t kDefaultMaxRequestBytes = 1u << 20;

/// Build the common response skeleton: ok/done plus the echoed id (only
/// when the request carried one).
Json makeResponse(const Json& request, bool ok, bool done);

/// Failure response for `request` from a Status: ok=false, done=true,
/// "code" = stable SCREAMING_SNAKE diag code, "error" = message.
Json makeError(const Json& request, const Status& status);

}  // namespace tc::serve
