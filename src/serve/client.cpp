#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/diag.h"

namespace tc::serve {

namespace {
Status ioError(const std::string& what) {
  return Status::failure(DiagCode::kServeIo,
                         what + ": " + std::strerror(errno));
}
}  // namespace

ServeClient::~ServeClient() { close(); }

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

Status ServeClient::connect(const std::string& host, int port,
                            int timeoutMs) {
  close();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    return Status::failure(DiagCode::kServeIo, "bad address " + host);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeoutMs);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return ioError("socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      fd_ = fd;
      return Status::okStatus();
    }
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline)
      return ioError("connect " + host + ":" + std::to_string(port));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Status ServeClient::sendLine(const std::string& line) {
  if (fd_ < 0)
    return Status::failure(DiagCode::kServeIo, "not connected");
  std::string framed = line;
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return ioError("send");
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::okStatus();
}

Result<std::string> ServeClient::readLine() {
  if (fd_ < 0)
    return Status::failure(DiagCode::kServeIo, "not connected");
  for (;;) {
    const std::size_t pos = buf_.find('\n');
    if (pos != std::string::npos) {
      std::string line = buf_.substr(0, pos);
      buf_.erase(0, pos + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0)
      return Status::failure(DiagCode::kServeIo, "connection closed");
    if (n < 0) {
      if (errno == EINTR) continue;
      return ioError("recv");
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

Result<std::vector<Json>> ServeClient::call(const Json& request) {
  Status st = sendLine(request.dump());
  if (!st.ok()) return st;
  std::vector<Json> responses;
  for (;;) {
    auto line = readLine();
    if (!line.ok()) return line.status();
    auto parsed = Json::parse(line.value());
    if (!parsed.ok()) return parsed.status();
    // Missing "done" counts as terminal: a server that answered something
    // unframeable should not wedge the client in a read loop.
    const bool done = parsed.value()["done"].asBool(true);
    responses.push_back(std::move(parsed.value()));
    if (done) return responses;
  }
}

Result<Json> ServeClient::callOne(const Json& request) {
  auto all = call(request);
  if (!all.ok()) return all.status();
  return std::move(all.value().back());
}

}  // namespace tc::serve
