#include "signoff/flexflop.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace tc {

namespace {

/// Launch flop of an endpoint's worst setup path (-1 if PI-launched).
InstId launchFlopOf(const StaEngine& eng, const EndpointTiming& ep) {
  const auto path = eng.tracePath(ep.vertex, Mode::kLate, ep.setupTrans);
  for (const auto& step : path) {
    if (step.viaEdge < 0) continue;
    const auto& e = eng.graph().edge(step.viaEdge);
    if (e.kind == TimingGraph::EdgeKind::kClockToQ)
      return eng.graph().vertex(e.from).inst;
  }
  return -1;
}

}  // namespace

FlexFlopResult recoverFlexFlopMargin(const StaEngine& engine,
                                     const FlexFlopConfig& cfg) {
  FlexFlopResult result;

  // --- collect endpoints with finite setup slack ---------------------------
  struct Ep {
    Ps baseSlack = 0.0;
    InstId capture = -1;  ///< -1 for port endpoints
    InstId launch = -1;
  };
  std::vector<Ep> eps;
  for (const auto& ep : engine.endpoints()) {
    if (!std::isfinite(ep.setupSlack)) continue;
    Ep e;
    e.baseSlack = ep.setupSlack;
    e.capture = ep.flop;
    e.launch = launchFlopOf(engine, ep);
    eps.push_back(e);
  }
  if (eps.empty()) return result;

  result.wnsBefore = std::numeric_limits<double>::infinity();
  for (const auto& e : eps) {
    result.wnsBefore = std::min(result.wnsBefore, e.baseSlack);
    if (e.baseSlack < 0) result.tnsBefore += e.baseSlack;
  }

  // --- per-flop state --------------------------------------------------------
  struct FlopState {
    const InterdepFlopModel* model = nullptr;
    Ps su0 = 0.0;   ///< conventional setup
    Ps b0 = 0.0;    ///< conventional c2q (what the STA run assumed)
    Ps bMin = 0.0, bMax = 0.0;
    Ps su = 0.0, b = 0.0;  ///< current assignment
    Ps holdConv = 0.0;
    std::vector<int> captures;  ///< endpoint indices captured here
    std::vector<int> launches;  ///< endpoint indices launched here
  };
  std::map<InstId, FlopState> flops;
  for (std::size_t i = 0; i < eps.size(); ++i) {
    for (InstId f : {eps[i].capture, eps[i].launch}) {
      if (f < 0) continue;
      auto [it, fresh] = flops.try_emplace(f);
      FlopState& fs = it->second;
      if (fresh) {
        const Cell& cell = engine.delayCalc().cellOf(f);
        fs.model = &cell.flop->interdep;
        fs.su0 = cell.flop->setup;
        fs.b0 = fs.model->c2q0 * (1.0 + cfg.pushoutFrac);
        fs.bMin = fs.model->c2q0 * 1.01;
        fs.bMax = fs.model->c2q0 * cfg.maxC2qStretch;
        fs.su = fs.su0;
        fs.b = fs.b0;
        fs.holdConv = cell.flop->hold;
      }
    }
    if (eps[i].capture >= 0)
      flops[eps[i].capture].captures.push_back(static_cast<int>(i));
    if (eps[i].launch >= 0)
      flops[eps[i].launch].launches.push_back(static_cast<int>(i));
  }

  auto slackOf = [&](std::size_t i) -> Ps {
    const Ep& e = eps[i];
    Ps s = e.baseSlack;
    if (e.capture >= 0) {
      const FlopState& fs = flops[e.capture];
      s += fs.su0 - fs.su;
    }
    if (e.launch >= 0) {
      const FlopState& fs = flops[e.launch];
      s -= fs.b - fs.b0;
    }
    return s;
  };
  auto worstSlack = [&]() -> Ps {
    Ps w = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < eps.size(); ++i)
      w = std::min(w, slackOf(i));
    return w;
  };

  // --- coordinate descent -----------------------------------------------------
  Ps prevWns = worstSlack();
  for (int iter = 0; iter < cfg.maxIterations; ++iter) {
    ++result.iterations;
    for (auto& [fid, fs] : flops) {
      if (fs.captures.empty() && fs.launches.empty()) continue;
      // Affected-slack objective as a function of this flop's c2q budget:
      // maximize the min affected slack; tie-break on the sum of negative
      // slacks so WNS gains do not silently trade away TNS.
      Ps bestB = fs.b;
      Ps bestObj = -std::numeric_limits<double>::infinity();
      Ps bestTns = -std::numeric_limits<double>::infinity();
      const int kSamples = 25;
      for (int s = 0; s <= kSamples; ++s) {
        const Ps b = fs.bMin + (fs.bMax - fs.bMin) * s / kSamples;
        const Ps su = fs.model->setupForC2q(b, fs.holdConv);
        Ps obj = std::numeric_limits<double>::infinity();
        Ps tns = 0.0;
        auto account = [&](Ps slack) {
          obj = std::min(obj, slack);
          if (slack < 0) tns += slack;
        };
        for (int i : fs.captures) {
          const Ep& e = eps[static_cast<std::size_t>(i)];
          Ps slack = e.baseSlack + fs.su0 - su;
          if (e.launch >= 0 && e.launch != fid)
            slack -= flops[e.launch].b - flops[e.launch].b0;
          if (e.launch == fid) slack -= b - fs.b0;
          account(slack);
        }
        for (int i : fs.launches) {
          const Ep& e = eps[static_cast<std::size_t>(i)];
          if (e.capture == fid) continue;  // already counted above
          Ps slack = e.baseSlack - (b - fs.b0);
          if (e.capture >= 0) {
            const FlopState& cs = flops[e.capture];
            slack += cs.su0 - cs.su;
          }
          account(slack);
        }
        if (obj > bestObj + 1e-9 ||
            (obj > bestObj - 1e-9 && tns > bestTns + 1e-9)) {
          bestObj = obj;
          bestTns = tns;
          bestB = b;
        }
      }
      fs.b = bestB;
      fs.su = fs.model->setupForC2q(bestB, fs.holdConv);
    }
    const Ps wns = worstSlack();
    if (wns - prevWns < cfg.minImprovement && iter > 0) break;
    prevWns = wns;
  }

  result.wnsAfter = worstSlack();
  for (std::size_t i = 0; i < eps.size(); ++i) {
    const Ps s = slackOf(i);
    if (s < 0) result.tnsAfter += s;
  }
  for (const auto& [fid, fs] : flops) {
    if (std::abs(fs.b - fs.b0) < 0.25 && std::abs(fs.su - fs.su0) < 0.25)
      continue;
    FlexFlopAssignment a;
    a.flop = fid;
    a.setup = fs.su;
    a.c2q = fs.b;
    a.setupDelta = fs.su - fs.su0;
    a.c2qDelta = fs.b - fs.b0;
    result.assignments.push_back(a);
  }
  result.adjustedFlops = static_cast<int>(result.assignments.size());
  return result;
}

}  // namespace tc
