#include "signoff/etm.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tc {

Ps TimingModel::predictSetupWns(Ps period, Ps inputDelay) const {
  const Ps dT = period - refPeriod;
  const Ps dIn = inputDelay - refInputDelay;
  Ps wns = internalSlackRef + dT;
  for (const auto& in : inputs)
    wns = std::min(wns, in.slackRef + dT - dIn);
  for (const auto& out : outputs) wns = std::min(wns, out.slackRef + dT);
  return wns;
}

TimingModel extractTimingModel(const StaEngine& engine,
                               const std::string& name) {
  TimingModel m;
  m.name = name;
  const Netlist& nl = engine.netlist();
  const Scenario& sc = engine.scenario();
  m.refPeriod = engine.clockPeriod();
  m.refInputDelay =
      sc.inputDelay > 0.0 ? sc.inputDelay : 0.25 * m.refPeriod;
  m.flatVertexCount = engine.graph().vertexCount();

  // Internal view: an auxiliary run with data inputs silenced isolates the
  // register-launched timing (exactly — GBA's worst-only endpoints would
  // otherwise hide flop paths shadowed by port paths).
  Scenario internalSc = sc;
  internalSc.disableDataInputs = true;
  StaEngine internal(nl, internalSc);
  internal.run();
  m.internalSlackRef = std::numeric_limits<double>::infinity();
  m.internalHoldSlack = std::numeric_limits<double>::infinity();
  for (const auto& ep : internal.endpoints()) {
    if (ep.flop >= 0 && std::isfinite(ep.setupSlack))
      m.internalSlackRef = std::min(m.internalSlackRef, ep.setupSlack);
    if (ep.flop >= 0 && std::isfinite(ep.holdSlack))
      m.internalHoldSlack = std::min(m.internalHoldSlack, ep.holdSlack);
  }

  // Boundary view from the full run. Input arcs: the backward required time
  // at the port vertex covers *all* fanout paths of the port (not just the
  // ones winning at the endpoints).
  for (PortId p = 0; p < nl.portCount(); ++p) {
    const Port& port = nl.port(p);
    if (port.constant) continue;
    bool isClock = false;
    for (const auto& c : nl.clocks())
      if (c.port == p) isClock = true;
    if (isClock) continue;
    const VertexId v = engine.graph().portVertex(p);
    if (port.isInput) {
      const Ps slack = engine.vertexSlack(v);
      if (!std::isfinite(slack)) continue;
      TimingModel::InputArc arc;
      arc.port = p;
      arc.name = port.name;
      arc.slackRef = slack;
      arc.requiredArrival = m.refInputDelay + slack;
      m.inputs.push_back(arc);
    }
  }
  // Output arcs from the internal run (clock-launched component only; the
  // input->output feedthrough component is carried by the input arcs).
  for (const auto& ep : internal.endpoints()) {
    if (ep.flop >= 0) continue;
    const auto& vx = internal.graph().vertex(ep.vertex);
    TimingModel::OutputArc arc;
    arc.port = vx.port;
    arc.name = nl.port(vx.port).name;
    arc.clockToOut = ep.dataLate;
    arc.slackRef = ep.setupSlack;
    m.outputs.push_back(arc);
  }
  return m;
}

}  // namespace tc
