#include "signoff/corners.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "device/mosfet.h"
#include "device/tech.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace tc {

namespace {
Counter& scenariosRunCtr() {
  static Counter& c =
      MetricsRegistry::global().counter("mcmm.scenarios_run", "count");
  return c;
}
Counter& mergedDiagCtr() {
  static Counter& c =
      MetricsRegistry::global().counter("mcmm.merged_diagnostics", "count");
  return c;
}

/// Shared tail of runOne/updateOne: PBA over the scenario's critical tail.
/// Runs after the GBA pass with the scenario's own sink attached, so
/// retrace warnings join that scenario's stream (emitted in result order —
/// deterministic at any pool width).
void runScenarioPba(StaEngine& eng, DiagnosticSink* sink,
                    const McmmOptions& opt, ScenarioResult& r) {
  if (opt.pbaEndpoints <= 0) return;
  PbaAnalyzer pba(eng);
  pba.setDiagnosticSink(sink);
  r.pba = pba.recalcWorst(opt.pbaEndpoints, Check::kSetup, opt.pba,
                          opt.intraScenario ? opt.pool : nullptr);
  if (!r.pba.empty()) {
    r.pbaSetupWns = r.pba.front().pbaSlack;
    for (const auto& p : r.pba)
      r.pbaSetupWns = std::min(r.pbaSetupWns, p.pbaSlack);
  }
}
}  // namespace

std::string ViewDef::name() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s_%s_%.2fV_%.0fC_%s", mode.c_str(),
                tc::toString(process), vdd, temp, tc::toString(beol));
  return buf;
}

long CornerUniverse::totalViews() const {
  long n = static_cast<long>(modes.size()) * voltages.size() * temps.size() *
           process.size() * beol.size();
  // Each asynchronous domain pair forces cross-voltage views (launch domain
  // at one extreme, capture at the other), doubling per pair.
  for (int i = 0; i < asyncDomainPairs; ++i) n *= 2;
  return n;
}

std::vector<ViewDef> CornerUniverse::enumerate() const {
  std::vector<ViewDef> out;
  for (const auto& m : modes)
    for (Volt v : voltages)
      for (Celsius t : temps)
        for (ProcessCorner p : process)
          for (BeolCorner b : beol) out.push_back({m, v, t, p, b});
  return out;
}

CornerUniverse CornerUniverse::socUniverse(int techNm) {
  const TechNode& node = techNode(techNm);
  CornerUniverse u;
  u.modes = {"func", "func_od", "func_ud", "scan_shift", "scan_capture",
             "bist"};
  // Supply points: underdrive..overdrive across the node's range.
  u.voltages.clear();
  const int vSteps = node.finfet ? 5 : 3;  // FinFET: wide voltage scaling
  for (int i = 0; i < vSteps; ++i)
    u.voltages.push_back(node.vddMin +
                         (node.vddMax - node.vddMin) * i / (vSteps - 1));
  u.temps = {-40.0, 0.0, 25.0, 85.0, 125.0};
  u.process = {ProcessCorner::kSSG, ProcessCorner::kTT, ProcessCorner::kFFG,
               ProcessCorner::kFSG, ProcessCorner::kSFG};
  // BEOL corners multiply with double patterning: each DP layer adds its
  // own decorrelated Cw/Cb pair on top of the base set.
  u.beol = allBeolCorners();
  u.asyncDomainPairs = techNm <= 20 ? 3 : 1;
  return u;
}

double viewDelayScore(const ViewDef& view) {
  // FO4-ish stage delay estimate: C*V/Id with the real device model, so
  // temperature inversion and corner shifts are reflected.
  Mosfet m;
  m.params = makeNmosParams(VtClass::kSvt);
  m.width = 1.0;
  const ProcessCondition pc = ProcessCondition::at(view.process);
  m.vtShift = pc.nmosVtShift;
  m.kScale = pc.nmosKScale;
  const double id = m.current(view.vdd, view.vdd, view.temp);
  if (id <= 0.0) return 1e9;
  const double cLoad = 4.0;  // fF, FO4-ish
  return cLoad * view.vdd / id * kNsToPs;
}

std::vector<ViewDef> pruneForSetup(const CornerUniverse& u) {
  std::vector<ViewDef> out;
  for (const auto& mode : u.modes) {
    // Slowest (V, T, P) by the device score...
    ViewDef worst;
    double worstScore = -1.0;
    for (Volt v : u.voltages) {
      for (Celsius t : u.temps) {
        for (ProcessCorner p : u.process) {
          if (p == ProcessCorner::kFFG || p == ProcessCorner::kFF) continue;
          const ViewDef cand{mode, v, t, p, BeolCorner::kTypical};
          const double s = viewDelayScore(cand);
          if (s > worstScore) {
            worstScore = s;
            worst = cand;
          }
        }
      }
    }
    // ...plus the opposite-temperature twin (temperature inversion means
    // the *other* temperature extreme can dominate above Vtr).
    ViewDef twin = worst;
    twin.temp = worst.temp < 25.0 ? *std::max_element(u.temps.begin(),
                                                      u.temps.end())
                                  : *std::min_element(u.temps.begin(),
                                                      u.temps.end());
    // Both at Cw and RCw (gate- vs wire-dominated criticality).
    for (const ViewDef& base : {worst, twin}) {
      for (BeolCorner b : {BeolCorner::kCworst, BeolCorner::kRCworst}) {
        ViewDef v = base;
        v.beol = b;
        out.push_back(v);
      }
    }
  }
  return out;
}

Ps McmmResult::wns(Check check) const {
  double w = std::numeric_limits<double>::infinity();
  for (const auto& s : scenarios)
    w = std::min(w, check == Check::kSetup ? s.setupWns : s.holdWns);
  return w;
}

Ps McmmResult::tns(Check check) const {
  double t = 0.0;
  for (const auto& s : scenarios)
    t += check == Check::kSetup ? s.setupTns : s.holdTns;
  return t;
}

int McmmResult::violationCount(Check check) const {
  int n = 0;
  for (const auto& s : scenarios)
    n += check == Check::kSetup ? s.setupViolations : s.holdViolations;
  return n;
}

int McmmResult::worstScenario(Check check) const {
  int worst = -1;
  double w = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const double s = check == Check::kSetup ? scenarios[i].setupWns
                                            : scenarios[i].holdWns;
    if (s < w) {
      w = s;
      worst = static_cast<int>(i);
    }
  }
  return worst;
}

McmmRunner::McmmRunner(const Netlist& netlist, std::vector<Scenario> scenarios)
    : nl_(&netlist), scenarios_(std::move(scenarios)) {}

const McmmResult& McmmRunner::run(const McmmOptions& opt) {
  const std::size_t n = scenarios_.size();
  engines_.clear();
  engines_.resize(n);
  sinks_.clear();
  sinks_.resize(n);
  result_ = McmmResult{};
  result_.scenarios.resize(n);

  auto runOne = [this, &opt](std::size_t i) {
    TraceSpan span("mcmm", scenarios_[i].name);
    scenariosRunCtr().add();
    sinks_[i] = std::make_unique<DiagnosticSink>();
    sinks_[i]->setEcho(opt.echoDiagnostics);
    engines_[i] = std::make_unique<StaEngine>(*nl_, scenarios_[i]);
    StaEngine& eng = *engines_[i];
    eng.setDiagnosticSink(sinks_[i].get());
    if (opt.intraScenario) eng.setThreadPool(opt.pool);
    eng.run();

    ScenarioResult& r = result_.scenarios[i];
    r.scenario = scenarios_[i].name;
    r.setupWns = eng.wns(Check::kSetup);
    r.holdWns = eng.wns(Check::kHold);
    r.setupTns = eng.tns(Check::kSetup);
    r.holdTns = eng.tns(Check::kHold);
    r.setupViolations = eng.violationCount(Check::kSetup);
    r.holdViolations = eng.violationCount(Check::kHold);
    r.drvViolations = static_cast<int>(eng.drvViolations().size());
    r.nanQuarantined = eng.nanQuarantineCount();
    r.endpoints = eng.endpoints();
    runScenarioPba(eng, sinks_[i].get(), opt, r);
    r.diagnostics = sinks_[i]->diagnostics();
  };

  if (opt.pool && opt.pool->threadCount() > 0)
    opt.pool->parallelFor(n, runOne, /*grain=*/1);
  else
    for (std::size_t i = 0; i < n; ++i) runOne(i);

  // Deterministic merge: scenario input order, each scenario's sink in its
  // own (serial-equivalent) emission order.
  for (std::size_t i = 0; i < n; ++i) {
    for (Diagnostic d : result_.scenarios[i].diagnostics) {
      d.entity = result_.scenarios[i].scenario +
                 (d.entity.empty() ? "" : "/" + d.entity);
      result_.merged.push_back(std::move(d));
    }
  }
  mergedDiagCtr().add(result_.merged.size());
  return result_;
}

const McmmResult& McmmRunner::update(const McmmOptions& opt) {
  const std::size_t n = scenarios_.size();
  if (engines_.size() != n) return run(opt);
  for (const auto& e : engines_)
    if (!e) return run(opt);

  result_ = McmmResult{};
  result_.scenarios.resize(n);

  auto updateOne = [this, &opt](std::size_t i) {
    TraceSpan span("mcmm", scenarios_[i].name);
    scenariosRunCtr().add();
    StaEngine& eng = *engines_[i];
    eng.setThreadPool(opt.intraScenario ? opt.pool : nullptr);
    // The live stream of an incremental update only covers the recomputed
    // region; detach the sink and regenerate the canonical full stream
    // afterwards so the report matches a fresh run byte-for-byte.
    eng.setDiagnosticSink(nullptr);
    eng.updateTiming();
    sinks_[i] = std::make_unique<DiagnosticSink>();
    sinks_[i]->setEcho(opt.echoDiagnostics);
    eng.replayTimingDiagnostics(*sinks_[i]);

    ScenarioResult& r = result_.scenarios[i];
    r.scenario = scenarios_[i].name;
    r.setupWns = eng.wns(Check::kSetup);
    r.holdWns = eng.wns(Check::kHold);
    r.setupTns = eng.tns(Check::kSetup);
    r.holdTns = eng.tns(Check::kHold);
    r.setupViolations = eng.violationCount(Check::kSetup);
    r.holdViolations = eng.violationCount(Check::kHold);
    r.drvViolations = static_cast<int>(eng.drvViolations().size());
    r.nanQuarantined = eng.nanQuarantineCount();
    r.endpoints = eng.endpoints();
    runScenarioPba(eng, sinks_[i].get(), opt, r);
    r.diagnostics = sinks_[i]->diagnostics();
  };

  if (opt.pool && opt.pool->threadCount() > 0)
    opt.pool->parallelFor(n, updateOne, /*grain=*/1);
  else
    for (std::size_t i = 0; i < n; ++i) updateOne(i);

  for (std::size_t i = 0; i < n; ++i) {
    for (Diagnostic d : result_.scenarios[i].diagnostics) {
      d.entity = result_.scenarios[i].scenario +
                 (d.entity.empty() ? "" : "/" + d.entity);
      result_.merged.push_back(std::move(d));
    }
  }
  mergedDiagCtr().add(result_.merged.size());
  return result_;
}

McmmResult runMcmm(const Netlist& netlist, std::vector<Scenario> scenarios,
                   const McmmOptions& opt) {
  McmmRunner runner(netlist, std::move(scenarios));
  runner.run(opt);
  return runner.result();
}

std::vector<ViewDef> pruneForHold(const CornerUniverse& u) {
  std::vector<ViewDef> out;
  const Volt vMax = *std::max_element(u.voltages.begin(), u.voltages.end());
  for (const auto& mode : u.modes) {
    for (Celsius t : {u.temps.front(), u.temps.back()}) {
      for (BeolCorner b : {BeolCorner::kCbest, BeolCorner::kRCbest}) {
        out.push_back({mode, vMax, t, ProcessCorner::kFFG, b});
      }
    }
  }
  return out;
}

}  // namespace tc
