#include "signoff/corners.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>

#include "device/mosfet.h"
#include "device/tech.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace tc {

namespace {
Counter& scenariosRunCtr() {
  static Counter& c =
      MetricsRegistry::global().counter("mcmm.scenarios_run", "count");
  return c;
}
Counter& mergedDiagCtr() {
  static Counter& c =
      MetricsRegistry::global().counter("mcmm.merged_diagnostics", "count");
  return c;
}
// Noisy: whether a duplicate arrives depends on retry/straggler timing.
Counter& duplicateResultsCtr() {
  static Counter& c = MetricsRegistry::global().counter(
      "farm.duplicate_results", "count", MetricStability::kNoisy);
  return c;
}

double elapsedMsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Shared tail of runOne/updateOne: PBA over the scenario's critical tail.
/// Runs after the GBA pass with the scenario's own sink attached, so
/// retrace warnings join that scenario's stream (emitted in result order —
/// deterministic at any pool width).
void runScenarioPba(StaEngine& eng, DiagnosticSink* sink,
                    const McmmOptions& opt, ScenarioResult& r) {
  if (opt.pbaEndpoints <= 0) return;
  PbaAnalyzer pba(eng);
  pba.setDiagnosticSink(sink);
  r.pba = pba.recalcWorst(opt.pbaEndpoints, Check::kSetup, opt.pba,
                          opt.intraScenario ? opt.pool : nullptr);
  if (!r.pba.empty()) {
    r.pbaSetupWns = r.pba.front().pbaSlack;
    for (const auto& p : r.pba)
      r.pbaSetupWns = std::min(r.pbaSetupWns, p.pbaSlack);
  }
}
}  // namespace

std::string ViewDef::name() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s_%s_%.2fV_%.0fC_%s", mode.c_str(),
                tc::toString(process), vdd, temp, tc::toString(beol));
  return buf;
}

long CornerUniverse::totalViews() const {
  long n = static_cast<long>(modes.size()) * voltages.size() * temps.size() *
           process.size() * beol.size();
  // Each asynchronous domain pair forces cross-voltage views (launch domain
  // at one extreme, capture at the other), doubling per pair.
  for (int i = 0; i < asyncDomainPairs; ++i) n *= 2;
  return n;
}

std::vector<ViewDef> CornerUniverse::enumerate() const {
  std::vector<ViewDef> out;
  for (const auto& m : modes)
    for (Volt v : voltages)
      for (Celsius t : temps)
        for (ProcessCorner p : process)
          for (BeolCorner b : beol) out.push_back({m, v, t, p, b});
  return out;
}

CornerUniverse CornerUniverse::socUniverse(int techNm) {
  const TechNode& node = techNode(techNm);
  CornerUniverse u;
  u.modes = {"func", "func_od", "func_ud", "scan_shift", "scan_capture",
             "bist"};
  // Supply points: underdrive..overdrive across the node's range.
  u.voltages.clear();
  const int vSteps = node.finfet ? 5 : 3;  // FinFET: wide voltage scaling
  for (int i = 0; i < vSteps; ++i)
    u.voltages.push_back(node.vddMin +
                         (node.vddMax - node.vddMin) * i / (vSteps - 1));
  u.temps = {-40.0, 0.0, 25.0, 85.0, 125.0};
  u.process = {ProcessCorner::kSSG, ProcessCorner::kTT, ProcessCorner::kFFG,
               ProcessCorner::kFSG, ProcessCorner::kSFG};
  // BEOL corners multiply with double patterning: each DP layer adds its
  // own decorrelated Cw/Cb pair on top of the base set.
  u.beol = allBeolCorners();
  u.asyncDomainPairs = techNm <= 20 ? 3 : 1;
  return u;
}

double viewDelayScore(const ViewDef& view) {
  // FO4-ish stage delay estimate: C*V/Id with the real device model, so
  // temperature inversion and corner shifts are reflected.
  Mosfet m;
  m.params = makeNmosParams(VtClass::kSvt);
  m.width = 1.0;
  const ProcessCondition pc = ProcessCondition::at(view.process);
  m.vtShift = pc.nmosVtShift;
  m.kScale = pc.nmosKScale;
  const double id = m.current(view.vdd, view.vdd, view.temp);
  if (id <= 0.0) return 1e9;
  const double cLoad = 4.0;  // fF, FO4-ish
  return cLoad * view.vdd / id * kNsToPs;
}

std::vector<ViewDef> pruneForSetup(const CornerUniverse& u) {
  std::vector<ViewDef> out;
  for (const auto& mode : u.modes) {
    // Slowest (V, T, P) by the device score...
    ViewDef worst;
    double worstScore = -1.0;
    for (Volt v : u.voltages) {
      for (Celsius t : u.temps) {
        for (ProcessCorner p : u.process) {
          if (p == ProcessCorner::kFFG || p == ProcessCorner::kFF) continue;
          const ViewDef cand{mode, v, t, p, BeolCorner::kTypical};
          const double s = viewDelayScore(cand);
          if (s > worstScore) {
            worstScore = s;
            worst = cand;
          }
        }
      }
    }
    // ...plus the opposite-temperature twin (temperature inversion means
    // the *other* temperature extreme can dominate above Vtr).
    ViewDef twin = worst;
    twin.temp = worst.temp < 25.0 ? *std::max_element(u.temps.begin(),
                                                      u.temps.end())
                                  : *std::min_element(u.temps.begin(),
                                                      u.temps.end());
    // Both at Cw and RCw (gate- vs wire-dominated criticality).
    for (const ViewDef& base : {worst, twin}) {
      for (BeolCorner b : {BeolCorner::kCworst, BeolCorner::kRCworst}) {
        ViewDef v = base;
        v.beol = b;
        out.push_back(v);
      }
    }
  }
  return out;
}

Ps McmmResult::wns(Check check) const {
  double w = std::numeric_limits<double>::infinity();
  for (const auto& s : scenarios)
    w = std::min(w, check == Check::kSetup ? s.setupWns : s.holdWns);
  return w;
}

Ps McmmResult::tns(Check check) const {
  double t = 0.0;
  for (const auto& s : scenarios)
    t += check == Check::kSetup ? s.setupTns : s.holdTns;
  return t;
}

int McmmResult::violationCount(Check check) const {
  int n = 0;
  for (const auto& s : scenarios)
    n += check == Check::kSetup ? s.setupViolations : s.holdViolations;
  return n;
}

int McmmResult::worstScenario(Check check) const {
  int worst = -1;
  double w = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const double s = check == Check::kSetup ? scenarios[i].setupWns
                                            : scenarios[i].holdWns;
    if (s < w) {
      w = s;
      worst = static_cast<int>(i);
    }
  }
  return worst;
}

ScenarioResult runScenarioStandalone(const Netlist& nl, const Scenario& sc,
                                     const McmmOptions& opt,
                                     DiagnosticSink& sink,
                                     std::unique_ptr<StaEngine>* engineOut) {
  TraceSpan span("mcmm", sc.name);
  scenariosRunCtr().add();
  auto engine = std::make_unique<StaEngine>(nl, sc);
  StaEngine& eng = *engine;
  eng.setDiagnosticSink(&sink);
  if (opt.intraScenario) eng.setThreadPool(opt.pool);
  eng.run();

  ScenarioResult r;
  r.scenario = sc.name;
  r.setupWns = eng.wns(Check::kSetup);
  r.holdWns = eng.wns(Check::kHold);
  r.setupTns = eng.tns(Check::kSetup);
  r.holdTns = eng.tns(Check::kHold);
  r.setupViolations = eng.violationCount(Check::kSetup);
  r.holdViolations = eng.violationCount(Check::kHold);
  r.drvViolations = static_cast<int>(eng.drvViolations().size());
  r.nanQuarantined = eng.nanQuarantineCount();
  r.endpoints = eng.endpoints();
  runScenarioPba(eng, &sink, opt, r);
  r.diagnostics = sink.diagnostics();
  if (engineOut) *engineOut = std::move(engine);
  return r;
}

McmmMerger::McmmMerger(std::size_t scenarioCount)
    : slots_(scenarioCount), filled_(scenarioCount, 0) {}

bool McmmMerger::accept(std::size_t index, ScenarioResult result) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= slots_.size()) return false;
  if (filled_[index]) {
    ++duplicates_;
    duplicateResultsCtr().add();
    return false;
  }
  filled_[index] = 1;
  slots_[index] = std::move(result);
  return true;
}

bool McmmMerger::has(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index < filled_.size() && filled_[index];
}

int McmmMerger::duplicateCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return duplicates_;
}

std::vector<std::size_t> McmmMerger::missing() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < filled_.size(); ++i)
    if (!filled_[i]) out.push_back(i);
  return out;
}

McmmResult McmmMerger::finish() const {
  std::lock_guard<std::mutex> lock(mu_);
  McmmResult result;
  result.scenarios = slots_;
  // Deterministic merge: scenario input order, each scenario's sink in its
  // own (serial-equivalent) emission order.
  for (const ScenarioResult& s : result.scenarios) {
    for (Diagnostic d : s.diagnostics) {
      d.entity = s.scenario + (d.entity.empty() ? "" : "/" + d.entity);
      result.merged.push_back(std::move(d));
    }
  }
  mergedDiagCtr().add(result.merged.size());
  return result;
}

McmmRunner::McmmRunner(const Netlist& netlist, std::vector<Scenario> scenarios)
    : nl_(&netlist), scenarios_(std::move(scenarios)) {}

const McmmResult& McmmRunner::run(const McmmOptions& opt) {
  const std::size_t n = scenarios_.size();
  engines_.clear();
  engines_.resize(n);
  sinks_.clear();
  sinks_.resize(n);
  elapsedMs_.assign(n, 0.0);
  McmmMerger merger(n);

  auto runOne = [this, &opt, &merger](std::size_t i) {
    const auto t0 = std::chrono::steady_clock::now();
    sinks_[i] = std::make_unique<DiagnosticSink>();
    sinks_[i]->setEcho(opt.echoDiagnostics);
    merger.accept(i, runScenarioStandalone(*nl_, scenarios_[i], opt,
                                           *sinks_[i], &engines_[i]));
    elapsedMs_[i] = elapsedMsSince(t0);
  };

  if (opt.pool && opt.pool->threadCount() > 0)
    opt.pool->parallelFor(n, runOne, /*grain=*/1);
  else
    for (std::size_t i = 0; i < n; ++i) runOne(i);

  result_ = merger.finish();
  return result_;
}

const McmmResult& McmmRunner::update(const McmmOptions& opt) {
  const std::size_t n = scenarios_.size();
  if (engines_.size() != n) return run(opt);
  for (const auto& e : engines_)
    if (!e) return run(opt);

  elapsedMs_.assign(n, 0.0);
  McmmMerger merger(n);

  auto updateOne = [this, &opt, &merger](std::size_t i) {
    const auto t0 = std::chrono::steady_clock::now();
    TraceSpan span("mcmm", scenarios_[i].name);
    scenariosRunCtr().add();
    StaEngine& eng = *engines_[i];
    eng.setThreadPool(opt.intraScenario ? opt.pool : nullptr);
    // The live stream of an incremental update only covers the recomputed
    // region; detach the sink and regenerate the canonical full stream
    // afterwards so the report matches a fresh run byte-for-byte.
    eng.setDiagnosticSink(nullptr);
    eng.updateTiming();
    sinks_[i] = std::make_unique<DiagnosticSink>();
    sinks_[i]->setEcho(opt.echoDiagnostics);
    eng.replayTimingDiagnostics(*sinks_[i]);

    ScenarioResult r;
    r.scenario = scenarios_[i].name;
    r.setupWns = eng.wns(Check::kSetup);
    r.holdWns = eng.wns(Check::kHold);
    r.setupTns = eng.tns(Check::kSetup);
    r.holdTns = eng.tns(Check::kHold);
    r.setupViolations = eng.violationCount(Check::kSetup);
    r.holdViolations = eng.violationCount(Check::kHold);
    r.drvViolations = static_cast<int>(eng.drvViolations().size());
    r.nanQuarantined = eng.nanQuarantineCount();
    r.endpoints = eng.endpoints();
    runScenarioPba(eng, sinks_[i].get(), opt, r);
    r.diagnostics = sinks_[i]->diagnostics();
    merger.accept(i, std::move(r));
    elapsedMs_[i] = elapsedMsSince(t0);
  };

  if (opt.pool && opt.pool->threadCount() > 0)
    opt.pool->parallelFor(n, updateOne, /*grain=*/1);
  else
    for (std::size_t i = 0; i < n; ++i) updateOne(i);

  result_ = merger.finish();
  return result_;
}

McmmResult runMcmm(const Netlist& netlist, std::vector<Scenario> scenarios,
                   const McmmOptions& opt) {
  McmmRunner runner(netlist, std::move(scenarios));
  runner.run(opt);
  return runner.result();
}

std::vector<ViewDef> pruneForHold(const CornerUniverse& u) {
  std::vector<ViewDef> out;
  const Volt vMax = *std::max_element(u.voltages.begin(), u.voltages.end());
  for (const auto& mode : u.modes) {
    for (Celsius t : {u.temps.front(), u.temps.back()}) {
      for (BeolCorner b : {BeolCorner::kCbest, BeolCorner::kRCbest}) {
        out.push_back({mode, vMax, t, ProcessCorner::kFFG, b});
      }
    }
  }
  return out;
}

}  // namespace tc
