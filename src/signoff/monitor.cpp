#include "signoff/monitor.h"

#include <cmath>
#include <map>
#include <mutex>
#include <tuple>

namespace tc {

const std::vector<MonitorDesign::StageRef>& monitorStageMenu() {
  static const std::vector<MonitorDesign::StageRef> kMenu = {
      {StageKind::kInverter, 1, VtClass::kLvt},
      {StageKind::kInverter, 1, VtClass::kSvt},
      {StageKind::kInverter, 1, VtClass::kHvt},
      {StageKind::kNand, 2, VtClass::kSvt},
      {StageKind::kNand, 2, VtClass::kHvt},
      {StageKind::kNor, 2, VtClass::kSvt},
  };
  return kMenu;
}

MonitorDesign genericRingOscillator(int stages) {
  MonitorDesign m;
  m.name = "RO_INV" + std::to_string(stages);
  for (int i = 0; i < stages; ++i)
    m.stages.push_back({StageKind::kInverter, 1, VtClass::kSvt});
  return m;
}

namespace {

/// Nearest menu flavor: same structural family first, then nearest Vt.
MonitorDesign::StageRef quantizeToMenu(StageKind kind, int numInputs,
                                       VtClass vt) {
  // Structural family: inverter-like (INV/BUF), nand-like (NAND/OAI),
  // nor-like (NOR/AOI).
  StageKind family = StageKind::kInverter;
  if (kind == StageKind::kNand || kind == StageKind::kOai21)
    family = StageKind::kNand;
  if (kind == StageKind::kNor || kind == StageKind::kAoi21)
    family = StageKind::kNor;
  (void)numInputs;

  const MonitorDesign::StageRef* best = nullptr;
  int bestScore = 1 << 20;
  for (const auto& item : monitorStageMenu()) {
    int score = std::abs(static_cast<int>(item.vt) - static_cast<int>(vt));
    if (item.kind != family) score += 10;
    if (score < bestScore) {
      bestScore = score;
      best = &item;
    }
  }
  return *best;
}

/// Path stages as (kind, inputs, vt) triples from the worst-path trace.
std::vector<std::tuple<StageKind, int, VtClass>> pathStages(
    const StaEngine& eng, VertexId endpoint) {
  std::vector<std::tuple<StageKind, int, VtClass>> out;
  const EndpointTiming* ep = nullptr;
  for (const auto& e : eng.endpoints())
    if (e.vertex == endpoint) ep = &e;
  if (!ep) return out;
  const auto path = eng.tracePath(endpoint, Mode::kLate, ep->setupTrans);
  for (const auto& step : path) {
    if (step.viaEdge < 0) continue;
    const auto& e = eng.graph().edge(step.viaEdge);
    if (e.kind != TimingGraph::EdgeKind::kCellArc) continue;
    const Cell& c = eng.delayCalc().cellOf(eng.graph().vertex(e.from).inst);
    if (c.isBuffer) {
      out.push_back({StageKind::kInverter, 1, c.vt});
      out.push_back({StageKind::kInverter, 1, c.vt});
    } else {
      out.push_back({c.kind, c.numInputs, c.vt});
    }
  }
  return out;
}

}  // namespace

MonitorDesign synthesizeDdro(const StaEngine& engine, VertexId endpoint) {
  MonitorDesign m;
  m.name = "DDRO";
  for (const auto& [kind, inputs, vt] : pathStages(engine, endpoint))
    m.stages.push_back(quantizeToMenu(kind, inputs, vt));
  if (m.stages.empty()) m = genericRingOscillator();
  return m;
}

MonitorDesign pathComposition(const StaEngine& engine, VertexId endpoint) {
  MonitorDesign m;
  m.name = "path";
  for (const auto& [kind, inputs, vt] : pathStages(engine, endpoint))
    m.stages.push_back({kind, inputs, vt});
  return m;
}

namespace {
/// Memoized per-flavor stage delay at a PVT/aging point.
Ps stageDelayAt(const MonitorDesign::StageRef& ref, Volt vdd, Celsius temp,
                Volt dvt) {
  using Key = std::tuple<int, int, int, int, int, int>;
  static std::map<Key, Ps> cache;
  static std::mutex mu;
  const Key key{static_cast<int>(ref.kind), ref.numInputs,
                static_cast<int>(ref.vt),
                static_cast<int>(std::lround(vdd * 1000)),
                static_cast<int>(std::lround(temp)),
                static_cast<int>(std::lround(dvt * 10000))};
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }
  Stage s = Stage::make(ref.kind, ref.numInputs, ref.vt, 1.0);
  s.pullDown().shiftAllVt(dvt);
  s.pullUp().shiftAllVt(dvt);
  SimConditions c;
  c.vdd = vdd;
  c.temp = temp;
  c.load = 3.0;
  const auto rise = simulateArc(s, 0, false, 40.0, c);
  const auto fall = simulateArc(s, 0, true, 40.0, c);
  const Ps d = (rise.completed && fall.completed)
                   ? 0.5 * (rise.delay50 + fall.delay50)
                   : 1e9;
  std::lock_guard<std::mutex> lock(mu);
  cache[key] = d;
  return d;
}
}  // namespace

Ps monitorDelay(const MonitorDesign& m, Volt vdd, Celsius temp, Volt dvt) {
  Ps total = 0.0;
  for (const auto& ref : m.stages)
    total += stageDelayAt(ref, vdd, temp, dvt);
  return total;
}

TrackingResult evaluateTracking(const MonitorDesign& monitor,
                                const MonitorDesign& truth, Volt vddRef,
                                Celsius tempRef) {
  TrackingResult out;
  const Ps mRef = monitorDelay(monitor, vddRef, tempRef, 0.0);
  const Ps tRef = monitorDelay(truth, vddRef, tempRef, 0.0);
  if (mRef <= 0.0 || tRef <= 0.0) return out;

  double sum = 0.0;
  for (Volt v : {0.65, 0.75, 0.90, 1.05}) {
    for (Celsius t : {-30.0, 25.0, 105.0}) {
      for (Volt dvt : {0.0, 0.02, 0.04}) {
        TrackingPoint p;
        p.vdd = v;
        p.temp = t;
        p.dvt = dvt;
        p.monitorScale = monitorDelay(monitor, v, t, dvt) / mRef;
        p.truthScale = monitorDelay(truth, v, t, dvt) / tRef;
        p.errorPct =
            100.0 * std::abs(p.monitorScale - p.truthScale) / p.truthScale;
        out.maxErrorPct = std::max(out.maxErrorPct, p.errorPct);
        sum += p.errorPct;
        out.points.push_back(p);
      }
    }
  }
  out.meanErrorPct = out.points.empty() ? 0.0 : sum / out.points.size();
  return out;
}

}  // namespace tc
