#include "signoff/overdrive.h"

#include <algorithm>
#include <limits>

namespace tc {

std::vector<ShmooPoint> voltageFrequencyShmoo(
    Netlist& nl, const Scenario& baseScenario,
    const std::vector<std::shared_ptr<const Library>>& libsByVdd,
    Ps basePeriod) {
  std::vector<ShmooPoint> out;
  const Ps savedPeriod = nl.clocks().front().period;

  for (const auto& lib : libsByVdd) {
    Scenario sc = baseScenario;
    sc.lib = lib;
    sc.name = "shmoo_" + lib->pvt().toString();

    // Binary-search the smallest passing period. Seed the bracket from a
    // single run at the base period.
    nl.clocks().front().period = basePeriod;
    StaEngine probe(nl, sc);
    probe.run();
    const Ps slack0 = probe.wns(Check::kSetup);
    Ps lo = std::max(basePeriod - slack0 - 200.0, 50.0);  // failing side
    Ps hi = basePeriod - slack0 + 100.0;                  // passing side
    for (int it = 0; it < 12 && hi - lo > 2.0; ++it) {
      const Ps mid = 0.5 * (lo + hi);
      nl.clocks().front().period = mid;
      StaEngine eng(nl, sc);
      eng.run();
      if (eng.wns(Check::kSetup) >= 0.0) {
        hi = mid;
      } else {
        lo = mid;
      }
    }

    ShmooPoint pt;
    pt.vdd = lib->pvt().vdd;
    pt.minPeriod = hi;
    pt.fMaxGhz = 1000.0 / hi;
    {
      nl.clocks().front().period = hi;
      PowerOptions popt;
      popt.vddOverride = pt.vdd;
      // Leakage scales with the library's own PVT (already folded into the
      // per-library leakage numbers); use that library's view directly.
      // analyzePower reads the netlist's reference library; dynamic power
      // scales with vddOverride, while leakage is taken from the target
      // library's own characterization (it is strongly voltage-dependent).
      PowerReport pr = analyzePower(nl, popt);
      double leak = 0.0;
      for (InstId i = 0; i < nl.instanceCount(); ++i)
        leak += lib->cell(nl.instance(i).cellIndex).leakagePower;
      pt.power = pr.dynamicLogic + pr.dynamicClock + leak;
    }
    {
      nl.clocks().front().period = basePeriod;
      PowerOptions popt;
      popt.vddOverride = pt.vdd;
      PowerReport pr = analyzePower(nl, popt);
      double leak = 0.0;
      for (InstId i = 0; i < nl.instanceCount(); ++i)
        leak += lib->cell(nl.instance(i).cellIndex).leakagePower;
      pt.powerAtBase = pr.dynamicLogic + pr.dynamicClock + leak;
    }
    out.push_back(pt);
  }
  nl.clocks().front().period = savedPeriod;
  std::sort(out.begin(), out.end(),
            [](const ShmooPoint& a, const ShmooPoint& b) {
              return a.vdd < b.vdd;
            });
  return out;
}

int cheapestSupplyForFrequency(const std::vector<ShmooPoint>& shmoo,
                               double fTargetGhz) {
  int best = -1;
  double bestPower = std::numeric_limits<double>::max();
  for (int i = 0; i < static_cast<int>(shmoo.size()); ++i) {
    if (shmoo[static_cast<std::size_t>(i)].fMaxGhz < fTargetGhz) continue;
    // Power evaluated when *running at* the target frequency.
    const double p = shmoo[static_cast<std::size_t>(i)].power *
                     (fTargetGhz / shmoo[static_cast<std::size_t>(i)].fMaxGhz);
    if (p < bestPower) {
      bestPower = p;
      best = i;
    }
  }
  return best;
}

}  // namespace tc
