#pragma once
/// \file ir.h
/// \brief Dynamic IR-drop aware timing (the "-dynamic" analysis option the
/// paper's Comment 1 credits signoff STA tools with, and the "Dynamic IR"
/// entry of Figs. 2/3).
///
/// Supply droop is spatial: switching current drawn in a region sags the
/// local rail, and every cell in that region slows. The model here:
///  - bin the placement into a power grid;
///  - per-bin switching + leakage power -> bin current -> droop through an
///    effective grid resistance (plus a global package/regulator term);
///  - per-instance voltage = vdd - droop(bin);
///  - per-instance delay derate from the device-level DelayScaler,
///    injected into the engine through its per-instance factor hook.
///
/// This couples the power and timing views — the "closure of power
/// integrity ... loops with timing analysis" the paper lists among 3DIC
/// futures, in its planar form.

#include <vector>

#include "signoff/avs.h"
#include "sta/engine.h"

namespace tc {

struct IrOptions {
  Um binSize = 30.0;            ///< power-grid tile size
  double gridOhmPerBin = 28.0;  ///< effective rail resistance per tile (ohm)
  double globalOhm = 3.0;       ///< shared package/regulator resistance
  double dataActivity = 0.15;
};

struct IrDroopMap {
  int nx = 0, ny = 0;
  Um binSize = 0.0;
  std::vector<double> droopMv;   ///< per bin, millivolts
  double worstDroopMv = 0.0;
  double meanDroopMv = 0.0;

  double droopAt(Um x, Um y) const;
};

/// Build the droop map from the placed netlist's switching power.
IrDroopMap computeIrDroop(const Netlist& nl, const IrOptions& opt = {});

struct IrTimingResult {
  Ps setupWnsBefore = 0.0;
  Ps setupWnsAfter = 0.0;
  Ps holdWnsBefore = 0.0;
  Ps holdWnsAfter = 0.0;
  double worstDeratePct = 0.0;  ///< worst per-instance slowdown applied
  int instancesDerated = 0;
};

/// Run "-dynamic": fold the droop map into per-instance delay derates (via
/// the device-level voltage sensitivity) and re-run the engine.
IrTimingResult applyIrAwareTiming(StaEngine& engine, const IrDroopMap& map,
                                  const DelayScaler& scaler);

}  // namespace tc
