#pragma once
/// \file yield.h
/// \brief Slack-to-parametric-yield conversion.
///
/// Lutkemeyer's observation (paper footnote 7): the game is new — slacks
/// are now reported at a confidence tail of a slack distribution — but the
/// goalposts are old, because tools still close on absolute slack rather
/// than yield loss. This module provides the yield view: per-endpoint pass
/// probability from (mean slack, sigma), and the design-level parametric
/// yield product.

#include <vector>

#include "sta/engine.h"

namespace tc {

/// Pass probability of one endpoint whose slack is Gaussian(mean, sigma).
double endpointYield(Ps meanSlack, Ps sigma);

/// Design parametric yield: product over endpoints of pass probability.
/// Sigma per endpoint is taken from the engine's accumulated variance when
/// the scenario runs POCV/LVF; `fallbackSigma` covers other modes.
double designTimingYield(const StaEngine& engine, Ps fallbackSigma = 15.0);

/// The slack an endpoint must show (at mean) for a target yield — i.e.
/// where the paper's "sigmas are unstable" goalpost would move.
Ps slackForYield(double targetYield, Ps sigma);

/// Endpoint-level view used by reports: slack mean, sigma, pass prob.
struct YieldRecord {
  VertexId endpoint = -1;
  Ps meanSlack = 0.0;
  Ps sigma = 0.0;
  double passProbability = 1.0;
};
std::vector<YieldRecord> yieldBreakdown(const StaEngine& engine,
                                        Ps fallbackSigma = 15.0, int k = 20);

}  // namespace tc
