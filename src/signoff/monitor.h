#pragma once
/// \file monitor.h
/// \brief Critical-path-mimicking performance monitors (paper Sec. 4:
/// "design and deployment of (critical path-mimicking) process/aging
/// monitor circuits"; after Chan et al.'s DDRO work [3] and tunable
/// sensors [5]).
///
/// An AVS controller does not see the critical path — it sees a monitor.
/// The monitor's *tracking error* across (voltage, temperature, aging) is
/// margin the AVS loop must carry on top of everything else. A generic
/// inverter ring oscillator tracks poorly (critical paths mix Vt flavors
/// and stacked gates whose sensitivity to V/T/aging differs); a
/// design-dependent RO (DDRO) synthesized from the critical path's cell
/// mix — quantized to a small menu of monitorable stage flavors — tracks
/// far better. bench_monitor_tracking quantifies both.

#include <string>
#include <vector>

#include "device/mosfet.h"
#include "device/stage.h"
#include "sta/engine.h"

namespace tc {

/// A monitor is a chain (conceptually a ring) of characterized stages.
struct MonitorDesign {
  std::string name;
  struct StageRef {
    StageKind kind = StageKind::kInverter;
    int numInputs = 1;
    VtClass vt = VtClass::kSvt;
  };
  std::vector<StageRef> stages;
};

/// The implementable stage menu (real monitor IP offers a few flavors, not
/// the whole library).
const std::vector<MonitorDesign::StageRef>& monitorStageMenu();

/// Generic N-stage inverter ring oscillator (the conventional monitor).
MonitorDesign genericRingOscillator(int stages = 13);

/// Synthesize a DDRO for the worst setup path into `endpoint`: each path
/// stage is mapped to the nearest menu flavor (same topology class,
/// nearest Vt).
MonitorDesign synthesizeDdro(const StaEngine& engine, VertexId endpoint);

/// Exact composition of the path (used as the "silicon truth" proxy when
/// evaluating how well a monitor tracks it).
MonitorDesign pathComposition(const StaEngine& engine, VertexId endpoint);

/// Delay of a monitor chain at a (vdd, temp, aging) point, via device-level
/// transient simulation of each stage (memoized internally).
Ps monitorDelay(const MonitorDesign& m, Volt vdd, Celsius temp, Volt dvt);

/// Tracking evaluation: both monitor and truth are normalized to their
/// reference-point delay; the error at a grid point is the relative
/// mismatch of the normalized delays (this is the fraction the AVS margin
/// must absorb).
struct TrackingPoint {
  Volt vdd = 0.9;
  Celsius temp = 25.0;
  Volt dvt = 0.0;
  double monitorScale = 1.0;
  double truthScale = 1.0;
  double errorPct = 0.0;
};
struct TrackingResult {
  std::vector<TrackingPoint> points;
  double maxErrorPct = 0.0;
  double meanErrorPct = 0.0;
};
TrackingResult evaluateTracking(const MonitorDesign& monitor,
                                const MonitorDesign& truth,
                                Volt vddRef = 0.9, Celsius tempRef = 25.0);

}  // namespace tc
