#include "signoff/margin.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace tc {

std::vector<MarginComponent> defaultMarginRug() {
  return {
      {"pll_jitter", 18.0, true},
      {"cts_jitter", 10.0, true},
      {"foundry_jitter_adder", 12.0, false},  // contractual, kept flat
      {"dynamic_ir_droop", 22.0, true},
      {"aging_allowance", 15.0, false},
  };
}

Ps flatSum(const std::vector<MarginComponent>& components) {
  Ps s = 0.0;
  for (const auto& c : components) s += c.value;
  return s;
}

Ps detangledMargin(const std::vector<MarginComponent>& components) {
  Ps corr = 0.0;
  double rss = 0.0;
  for (const auto& c : components) {
    if (c.independent)
      rss += c.value * c.value;
    else
      corr += c.value;
  }
  return corr + std::sqrt(rss);
}

Ps requiredFlatMargin(const StaEngine& typical, const StaEngine& slow) {
  // Match endpoints by vertex id (same netlist => same graph layout).
  std::map<VertexId, Ps> slowSlack;
  for (const auto& ep : slow.endpoints())
    slowSlack[ep.vertex] = ep.setupSlack;
  Ps margin = 0.0;
  for (const auto& ep : typical.endpoints()) {
    auto it = slowSlack.find(ep.vertex);
    if (it == slowSlack.end()) continue;
    if (!std::isfinite(ep.setupSlack) || !std::isfinite(it->second)) continue;
    margin = std::max(margin, ep.setupSlack - it->second);
  }
  return margin;
}

SignoffStrategyComparison compareSignoffStrategies(
    const StaEngine& typical, const StaEngine& slow,
    const std::vector<MarginComponent>& rug) {
  SignoffStrategyComparison cmp;
  cmp.flatMargin = requiredFlatMargin(typical, slow) + flatSum(rug);
  cmp.detangled = requiredFlatMargin(typical, slow) + detangledMargin(rug);
  for (const auto& ep : slow.endpoints())
    if (ep.setupSlack < 0.0) ++cmp.slowCornerViolations;
  for (const auto& ep : typical.endpoints()) {
    if (!std::isfinite(ep.setupSlack)) continue;
    if (ep.setupSlack - cmp.flatMargin < 0.0) ++cmp.typicalFlatViolations;
    if (ep.setupSlack - cmp.detangled < 0.0)
      ++cmp.typicalDetangledViolations;
  }
  return cmp;
}

}  // namespace tc
