#pragma once
/// \file snapshot.h
/// \brief Design snapshot: versioned, checksummed binary serialization of a
/// netlist + scenario set + characterized libraries (+ SPEF parasitics) for
/// shipping MCMM work across process boundaries.
///
/// The scenario farm (signoff/farm.h) fans signoff views out across worker
/// *processes*; a worker must reconstruct the exact analysis context the
/// dispatcher holds so its results merge bit-identically with an in-process
/// run. The snapshot is that context, round-tripped exactly:
///  - doubles serialize as their in-memory representation (bitwise),
///  - netlist reconstruction replays construction in stored order, so every
///    id, sink order, and quarantine entry matches the original, and
///  - scenario libraries are embedded (deduplicated) so the worker never
///    re-characterizes — loading a snapshot is cheap and deterministic.
///
/// Integrity model (extends PR 1's zero-crash guarantee to files): a header
/// carries magic word, format version, payload size, and a CRC-32 of the
/// payload. The reader verifies the checksum BEFORE parsing a single
/// payload byte, so any truncation or bit flip anywhere in the payload is
/// reported as a clean tc::Status (kSnapTruncated / kSnapChecksumMismatch)
/// — never parsed into garbage, never a crash. Header corruption is caught
/// by the magic/version/size checks; parse-level surprises behind a valid
/// checksum (a format bug, not corruption) still fail soft as kSnapCorrupt.
/// snapshot_test.cpp proves every single-byte corruption is caught.

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "network/netlist.h"
#include "signoff/corners.h"
#include "sta/scenario.h"
#include "util/status.h"

namespace tc {

/// Everything one MCMM signoff pass needs, in transportable form.
struct DesignSnapshot {
  /// Deduplicated library table; scenarios reference entries by index.
  std::vector<std::shared_ptr<const Library>> libraries;
  /// The design, built over its reference library (one of `libraries`).
  std::shared_ptr<Netlist> netlist;
  /// The scenario set, lib pointers aliasing `libraries` entries.
  std::vector<Scenario> scenarios;
  /// SPEF text of the extracted parasitics at the first scenario's BEOL
  /// view (informational cross-check; workers re-extract from the netlist,
  /// which is what keeps farm results bit-identical to in-process runs).
  /// Validated through the recoverable SPEF reader on load when non-empty.
  std::string spef;
  /// Optional audit record of a pruned signoff pass over `scenarios`
  /// (signoff/prune.h, format v2): the predictor state and one bound
  /// certificate per pruned scenario, so the artifact a pruned pass ships
  /// carries the evidence for its skipped corners. Certificates are stored
  /// in strictly increasing scenario-index order (the canonical form the
  /// bitwise round-trip contract requires) and validated against the
  /// scenario count on load.
  PrunePredictor prunePredictor;
  std::vector<PruneCertificate> pruneCerts;
};

/// Bundle a netlist + scenario set into snapshot form. Deduplicates the
/// library table by pointer identity and (when `includeSpef`) renders the
/// SPEF blob at the first scenario's extraction context.
DesignSnapshot makeSnapshot(const Netlist& netlist,
                            std::vector<Scenario> scenarios,
                            bool includeSpef = true);

/// Serialize. Fails (kSnapUnsupported) when a scenario carries state a
/// snapshot cannot transport (an attached SadpModel), or on stream error.
Status writeSnapshot(const DesignSnapshot& snap, std::ostream& os);
Status writeSnapshotFile(const DesignSnapshot& snap, const std::string& path);

/// Deserialize. Corruption of any kind comes back as a failure Status with
/// the matching kSnap* code, with detail reported to `sink` (which may be
/// null); success round-trips bitwise: writeSnapshot(readSnapshot(bytes))
/// reproduces `bytes` exactly.
Result<DesignSnapshot> readSnapshot(std::istream& is, DiagnosticSink* sink);
Result<DesignSnapshot> readSnapshotFile(const std::string& path,
                                        DiagnosticSink* sink);

}  // namespace tc
