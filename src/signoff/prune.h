#pragma once
/// \file prune.h
/// \brief Active-learning corner pruning with auditable bound certificates.
///
/// The paper's corner super-explosion (Sec. 2.3) makes exact-everywhere
/// MCMM signoff scale linearly with a scenario count that grows every node.
/// The scenario farm (farm.h) pays that cost across processes; this layer
/// stops paying it at all for most corners, SetupKit-style: fit a cheap
/// deterministic regression over scenario features from a small seed set of
/// exact runs, then actively dispatch only the scenarios that are either
/// predicted critical or that the model is unsure about, in batched rounds,
/// until every remaining corner is confidently non-critical.
///
/// Soundness is NOT delegated to the regression. Every pruned corner gets a
/// PruneCertificate whose bound is the exact WNS of a *dominating* scenario
/// — identical analysis context, pessimistic-or-equal on every monotone
/// margin knob (flat derates, sigma count, clock uncertainty, extra
/// margins) — so per-endpoint monotonicity makes the bound provably <= the
/// corner's true WNS. The model only decides WHERE to spend exact runs
/// (bound tightness); a wrong prediction can cost pessimism, never
/// optimism. Scenarios with no dominating exact run are forced exact, and
/// quarantined (poison) exact runs are excluded from both training and
/// evidence, so a crashed corner cannot silently tighten another corner's
/// bound. See DESIGN.md "Corner pruning".
///
/// Determinism: seeds, batch membership, stopping, and certificates are
/// pure functions of the scenario list and the (deterministic) exact
/// results, so a pruned pass is bit-identical in-process vs farm, at any
/// worker count, and under the recoverable TC_FARM_FAULT matrix
/// (tests/prune_determinism_test.cpp).

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "signoff/corners.h"
#include "signoff/farm.h"
#include "signoff/snapshot.h"

namespace tc {

/// The predictor's feature space: PVT point (vdd, temp, device-model delay
/// score), wire model (BEOL corner), derate-ladder position (mode, flat
/// factors, sigma count), uncertainty/margin knobs, TBC factor, input slew.
constexpr int kPruneFeatureCount = 14;

std::array<double, kPruneFeatureCount> pruneFeatures(const Scenario& sc);

/// True when an exact run of `a` yields a provable lower bound on `b`'s
/// setup AND hold WNS (and TNS/violation counts): identical structural
/// context (library, BEOL, tech node, derate mode, CPPR, limits, boundary
/// conditions) with every monotone margin knob at least as harsh. Knobs a
/// derate mode ignores compare trivially equal-or-worse, so the relation
/// stays sound across the whole OCV ladder. Non-strict: a == b dominates
/// both ways.
bool dominatesForBound(const Scenario& a, const Scenario& b);

/// Derived-scenario generator shared by bench_corner_pruning and the prune
/// test suites: the OCV signoff ladder of a base corner, one scenario per
/// grid point of (paired flat late/early factors) x setup uncertainty x
/// extra setup margin x sigma count. Hold uncertainty tracks setup/5 like
/// the Scenario defaults. Names are "<base>@L<i>U<j>M<k>S<l>".
struct OcvLadderSpec {
  std::vector<double> lateFactors{1.03, 1.08, 1.13};
  std::vector<double> earlyFactors{0.97, 0.92, 0.87};  ///< paired by index
  std::vector<Ps> setupUncertainties{15.0, 25.0, 40.0};
  std::vector<Ps> extraSetupMargins{0.0, 10.0, 25.0};
  std::vector<double> sigmaCounts{3.0};
};

std::vector<Scenario> deriveOcvLadder(const std::vector<Scenario>& bases,
                                      const OcvLadderSpec& spec);

struct PruneOptions {
  /// Cap on how many scenarios may be closed by certificate instead of an
  /// exact run. 0 disables pruning entirely: runMcmmPruned degenerates to
  /// the plain runner and the McmmResult is byte-identical to
  /// McmmRunner::run() / runMcmmFarm() on the same inputs.
  int maxPruned = std::numeric_limits<int>::max();
  /// Exact runs in the seed round. All dominance-maximal scenarios are
  /// seeded regardless (they are nobody's evidence candidate, so they can
  /// never be pruned); farthest-point sampling over the normalized feature
  /// space fills the remainder.
  int seedRuns = 12;
  /// Exact dispatches per active-learning round after the seed.
  int batchSize = 8;
  /// Total exact-run budget. Mandatory runs (dominance-maximal scenarios,
  /// corners whose every dominator got quarantined, the maxPruned floor)
  /// override it — soundness is never traded for budget.
  int maxExactRuns = 40;
  /// Stopping rule: a corner stays pruned once its predicted WNS minus the
  /// model uncertainty clears the worst exact WNS by this margin (ps).
  Ps criticalMarginPs = 50.0;
  /// Ridge regularizer on the normalized-feature normal equations.
  double ridgeLambda = 1e-3;
  /// Recorded in the predictor state; decisions are already deterministic.
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;
};

/// A pruned MCMM pass: the merged result (pruned slots carry certificate
/// bounds), the certificates in scenario input order, and the final
/// predictor state for the audit trail.
struct PrunedMcmmResult {
  McmmResult result;
  std::vector<PruneCertificate> certificates;
  PrunePredictor predictor;
  int exactRuns = 0;
  int rounds = 0;          ///< active-learning rounds after the seed round
  int quarantinedExact = 0;  ///< exact runs excluded as poison
};

/// Executor the active-learning loop dispatches batches through: given
/// scenario input indices (ascending), return their ScenarioResults in the
/// same order. Must be deterministic — both built-in executors are.
using ExactBatchRunner = std::function<std::vector<ScenarioResult>(
    const std::vector<std::size_t>&)>;

/// The core loop, executor-agnostic (tests plug counting/poisoning
/// executors in here).
PrunedMcmmResult runPruned(const std::vector<Scenario>& scenarios,
                           const PruneOptions& opt,
                           const ExactBatchRunner& runExact);

/// In-process pruned MCMM: exact batches run through the exact per-scenario
/// body McmmRunner uses, so unpruned slots are bit-identical to an
/// all-exact run's.
PrunedMcmmResult runMcmmPruned(const Netlist& netlist,
                               std::vector<Scenario> scenarios,
                               const PruneOptions& popt,
                               const McmmOptions& mopt = {});

/// Farm-backed pruned MCMM: each batch ships as a sub-snapshot (shared
/// library table and netlist) across the crash-isolated worker farm.
/// Pruning decisions depend only on the merged results, which the farm
/// contract makes deterministic — so crashes, retries, and straggler
/// re-dispatch cannot change which corners get exact runs. Quarantined
/// corners keep their conservative -inf slot, are never pruned, and never
/// serve as training points or bound evidence. `stats` accumulates across
/// batches.
PrunedMcmmResult runMcmmFarmPruned(const DesignSnapshot& snap,
                                   const PruneOptions& popt,
                                   const FarmOptions& fopt,
                                   FarmStats* stats = nullptr);
PrunedMcmmResult runMcmmFarmPruned(const Netlist& netlist,
                                   std::vector<Scenario> scenarios,
                                   const PruneOptions& popt,
                                   const FarmOptions& fopt,
                                   FarmStats* stats = nullptr);

/// Stamp a pruned pass's audit state (predictor + certificates) into a
/// snapshot, for shipping/serving. Snapshot format v2 round-trips it
/// bitwise.
void attachPruneAudit(DesignSnapshot& snap, const PrunedMcmmResult& pruned);

/// Touch the prune.* stable counters so metrics listings (the server's
/// `metrics` command, bench JSON reports) surface them even before the
/// first pruned pass runs.
void registerPruneMetrics();

}  // namespace tc
