#include "signoff/avs.h"

#include <algorithm>
#include <cmath>

#include "device/stage.h"
#include "opt/closure.h"
#include "place/placement.h"
#include "util/log.h"

namespace tc {

DelayScaler::DelayScaler(Volt vddRef, Celsius temp, VtClass vt)
    : vddRef_(vddRef) {
  // FO4-ish inverter transient at each (vdd, dvt) grid point.
  std::vector<double> vGrid;
  for (Volt v = 0.55; v <= 1.30001; v += 0.05) vGrid.push_back(v);
  std::vector<double> dvtGrid{0.0, 0.01, 0.02, 0.035, 0.05, 0.08};

  auto stageDelay = [&](Volt vdd, Volt dvt) -> double {
    Stage inv = Stage::make(StageKind::kInverter, 1, vt, 1.0);
    inv.pullDown().shiftAllVt(dvt);
    inv.pullUp().shiftAllVt(dvt);
    SimConditions c;
    c.vdd = vdd;
    c.temp = temp;
    c.load = 4.0;
    const auto r = simulateArc(inv, 0, true, 40.0, c);
    return r.completed ? r.delay50 : 1e9;
  };

  const double ref = stageDelay(vddRef, 0.0);
  std::vector<double> vals;
  vals.reserve(vGrid.size() * dvtGrid.size());
  for (double v : vGrid)
    for (double d : dvtGrid) vals.push_back(stageDelay(v, d) / ref);
  table_ = Table2D(Axis(vGrid), Axis(dvtGrid), vals);
}

double DelayScaler::scale(Volt vdd, Volt dvt) const {
  return table_.lookup(vdd, std::max(dvt, 0.0));
}

AvsLifetimeResult simulateAvsLifetime(const Netlist& nl, Ps freshDelay,
                                      Ps periodBudget,
                                      const DelayScaler& scaler,
                                      const AvsConfig& cfg) {
  AvsLifetimeResult out;
  const double refScale = scaler.scale(cfg.vddNominal, 0.0);

  auto minVddMeetingTiming = [&](Volt dvt) -> Volt {
    for (Volt v = cfg.vddMin; v <= cfg.vddMax + 1e-9; v += cfg.vddStep) {
      const double d = freshDelay * scaler.scale(v, dvt) / refScale;
      if (d <= periodBudget) return v;
    }
    return -1.0;  // infeasible even at vddMax
  };

  // Log-spaced time steps (aging is t^n: early life moves fastest).
  Volt dvt = 0.0;
  double tPrev = 0.0;
  double energyYears = 0.0;  // integral of power dt
  for (int k = 1; k <= cfg.timeSteps; ++k) {
    const double frac =
        std::pow(static_cast<double>(k) / cfg.timeSteps, 3.0);
    const double t = cfg.lifetimeYears * frac;
    const double dt = t - tPrev;

    Volt v = minVddMeetingTiming(dvt);
    if (v < 0.0) {
      out.feasible = false;
      v = cfg.vddMax;
    }
    // Aging accrues at the chosen supply over this interval.
    dvt = cfg.bti.advance(dvt, v, cfg.temp, dt, cfg.dcStress);

    PowerOptions popt;
    popt.vddOverride = v;
    // Leakage falls as devices age (higher Vt) and scales with supply.
    popt.leakageScale = std::pow(10.0, -dvt / 0.095) *
                        (v / cfg.vddNominal) * (v / cfg.vddNominal);
    const PowerReport pr = analyzePower(nl, popt);

    out.points.push_back({t, v, dvt, pr.total()});
    energyYears += pr.total() * dt;
    tPrev = t;
  }
  out.avgPower = cfg.lifetimeYears > 0 ? energyYears / cfg.lifetimeYears : 0.0;
  return out;
}

std::vector<AgingCornerResult> agingSignoffStudy(
    std::shared_ptr<const Library> lib, const BlockProfile& profile,
    const std::vector<double>& assumedYears, const AvsConfig& cfg) {
  std::vector<AgingCornerResult> out;
  const DelayScaler scaler(cfg.vddNominal, cfg.temp);
  const double refScale = scaler.scale(cfg.vddNominal, 0.0);

  int cornerIdx = 0;
  for (double years : assumedYears) {
    ++cornerIdx;
    AgingCornerResult res;
    res.corner = cornerIdx;
    res.assumedYears = years;
    res.assumedDvt = cfg.bti.deltaVt(cfg.vddNominal, cfg.temp, years,
                                     cfg.dcStress);
    // Aging headroom the implementation must carry: the fresh design must
    // run fast enough that the aged design still meets the clock.
    const double agingFactor =
        scaler.scale(cfg.vddNominal, res.assumedDvt) / refScale;

    // Fresh netlist, tightened clock, closure sizes it.
    Netlist nl = generateBlock(lib, profile);
    nl.clocks().front().period = profile.clockPeriod / agingFactor;

    Scenario sc;
    sc.name = profile.name + "_corner" + std::to_string(cornerIdx);
    sc.lib = lib;
    sc.inputDelay = 150.0;  // fixed, so tightening T does not move PI arrivals
    ClosureConfig ccfg;
    ccfg.iterations = 4;
    ccfg.enableHoldFix = false;
    ccfg.repair.maxEdits = 400;
    ClosureLoop loop(nl, sc);
    const ClosureResult cres = loop.run(ccfg);

    // Effective fresh critical delay: the tightened budget minus whatever
    // slack closure left on the table (negative WNS adds to the delay).
    const Ps freshDelay = nl.clocks().front().period - cres.final.setupWns;

    const PowerReport base = analyzePower(nl);
    res.area = base.area;

    const AvsLifetimeResult life = simulateAvsLifetime(
        nl, freshDelay, profile.clockPeriod, scaler, cfg);
    res.avgLifetimePower = life.avgPower;
    res.feasible = life.feasible && cres.final.setupWns > -50.0;
    out.push_back(res);
    TC_DEBUG("aging corner %d (%.1fy): area %.0f um2, power %.1f uW%s",
             cornerIdx, years, res.area, res.avgLifetimePower,
             res.feasible ? "" : " (INFEASIBLE)");
  }
  return out;
}

}  // namespace tc
