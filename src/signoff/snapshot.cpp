#include "signoff/snapshot.h"

#include <cstdint>
#include <exception>
#include <fstream>
#include <map>
#include <sstream>

#include "device/tech.h"
#include "interconnect/extract.h"
#include "interconnect/spef.h"
#include "interconnect/wire.h"
#include "liberty/serialize.h"
#include "util/binio.h"
#include "util/checksum.h"

namespace tc {
namespace {

constexpr std::uint32_t kMagic = 0x5443534E;  // 'TCSN'
// v2: appended the corner-pruning audit section (predictor state + bound
// certificates, signoff/prune.h) after the SPEF blob.
constexpr std::uint32_t kVersion = 2;
/// Plausibility cap on the declared payload size (snapshots of the largest
/// designs this framework handles are a few hundred MB).
constexpr std::uint64_t kMaxPayload = 1ull << 31;
/// Cap on the embedded SPEF blob.
constexpr std::uint32_t kMaxSpef = 1u << 28;

// --- payload parse plumbing -------------------------------------------------
// The payload has already passed the CRC check when these run, so a short
// read or an out-of-range id here is a format inconsistency, not transport
// corruption; everything funnels into one kSnapCorrupt at the catch site.
// Exceptions stay confined to this translation unit.

struct SnapParseError {
  std::string what;
};

[[noreturn]] void parseFail(std::string what) {
  throw SnapParseError{std::move(what)};
}

void check(const Status& s) {
  if (!s.ok()) parseFail(s.str());
}

std::uint32_t rU32(std::istream& is) {
  std::uint32_t v = 0;
  if (!binio::getU32(is, v)) parseFail("payload ran dry reading u32");
  return v;
}
std::int32_t rI32(std::istream& is) {
  std::int32_t v = 0;
  if (!binio::getI32(is, v)) parseFail("payload ran dry reading i32");
  return v;
}
std::uint64_t rU64(std::istream& is) {
  std::uint64_t v = 0;
  if (!binio::getU64(is, v)) parseFail("payload ran dry reading u64");
  return v;
}
double rF64(std::istream& is) {
  double v = 0;
  if (!binio::getF64(is, v)) parseFail("payload ran dry reading f64");
  return v;
}
std::string rStr(std::istream& is, std::uint32_t maxLen = 1u << 20) {
  std::string s;
  if (!binio::getStr(is, s, maxLen))
    parseFail("payload ran dry or implausible length reading string");
  return s;
}
bool rBool(std::istream& is) {
  const std::uint32_t v = rU32(is);
  if (v > 1) parseFail("boolean field holds " + std::to_string(v));
  return v != 0;
}
int rIndex(std::istream& is, int count, const char* what) {
  const std::int32_t v = rI32(is);
  if (v < -1 || v >= count)
    parseFail(std::string(what) + " index " + std::to_string(v) +
              " outside [-1, " + std::to_string(count) + ")");
  return v;
}

void putBool(std::ostream& os, bool v) {
  binio::putU32(os, v ? 1u : 0u);
}

// --- netlist ----------------------------------------------------------------

void writeNetlist(std::ostream& os, const Netlist& nl) {
  using namespace binio;
  putU32(os, static_cast<std::uint32_t>(nl.portCount()));
  for (PortId p = 0; p < nl.portCount(); ++p) {
    const Port& port = nl.port(p);
    putStr(os, port.name);
    putBool(os, port.isInput);
    putBool(os, port.constant);
  }
  putU32(os, static_cast<std::uint32_t>(nl.netCount()));
  for (NetId n = 0; n < nl.netCount(); ++n) {
    const Net& net = nl.net(n);
    putStr(os, net.name);
    putI32(os, net.ndrClass);
    putI32(os, net.layer);
    putF64(os, net.millerOverride);
  }
  putU32(os, static_cast<std::uint32_t>(nl.instanceCount()));
  for (InstId i = 0; i < nl.instanceCount(); ++i) {
    const Instance& inst = nl.instance(i);
    putStr(os, inst.name);
    putI32(os, inst.cellIndex);
    putF64(os, inst.x);
    putF64(os, inst.y);
    putI32(os, inst.row);
    putI32(os, inst.siteLo);
    putBool(os, inst.fixed);
    putBool(os, inst.isClockTreeBuffer);
    putF64(os, inst.usefulSkew);
  }
  // Connectivity, net-major. Sink lists are written in stored order and
  // replayed through tryConnectInput in that same order: sink order decides
  // RC tree node order and endpoint enumeration order, so replaying it
  // exactly is part of the bitwise round-trip contract.
  for (NetId n = 0; n < nl.netCount(); ++n) {
    const Net& net = nl.net(n);
    putI32(os, net.driver);
    putI32(os, net.driverPort);
    putI32(os, net.loadPort);
    putU32(os, static_cast<std::uint32_t>(net.sinks.size()));
    for (const Net::Sink& s : net.sinks) {
      putI32(os, s.inst);
      putI32(os, s.pin);
    }
  }
  // Port->net as seen from the port side. Authoritative for port.net on
  // read: a net remembers only ONE loadPort (and driverPort), but several
  // primary outputs may share a net, so the net records alone cannot
  // reconstruct every port's connection.
  for (PortId p = 0; p < nl.portCount(); ++p) putI32(os, nl.port(p).net);
  putU32(os, static_cast<std::uint32_t>(nl.clocks().size()));
  for (const ClockDef& c : nl.clocks()) {
    putStr(os, c.name);
    putI32(os, c.port);
    putF64(os, c.period);
    putF64(os, c.jitter);
    putF64(os, c.sourceLatency);
  }
  putU32(os, static_cast<std::uint32_t>(nl.quarantinedPins().size()));
  for (const Netlist::PinRef& q : nl.quarantinedPins()) {
    putI32(os, q.inst);
    putI32(os, q.pin);
  }
}

std::shared_ptr<Netlist> readNetlist(std::istream& is,
                                     std::shared_ptr<const Library> lib) {
  auto nl = std::make_shared<Netlist>(std::move(lib));

  const std::uint32_t nPorts = rU32(is);
  for (std::uint32_t p = 0; p < nPorts; ++p) {
    const std::string name = rStr(is);
    const bool isInput = rBool(is);
    const bool constant = rBool(is);
    const PortId id = nl->addPort(name, isInput);
    nl->port(id).constant = constant;
  }
  const std::uint32_t nNets = rU32(is);
  for (std::uint32_t n = 0; n < nNets; ++n) {
    const NetId id = nl->addNet(rStr(is));
    Net& net = nl->net(id);
    net.ndrClass = rI32(is);
    net.layer = rI32(is);
    net.millerOverride = rF64(is);
  }
  const std::uint32_t nInsts = rU32(is);
  for (std::uint32_t i = 0; i < nInsts; ++i) {
    const std::string name = rStr(is);
    const std::int32_t cellIndex = rI32(is);
    InstId id = -1;
    check(nl->tryAddInstance(name, cellIndex, &id));
    Instance& inst = nl->instance(id);
    inst.x = rF64(is);
    inst.y = rF64(is);
    inst.row = rI32(is);
    inst.siteLo = rI32(is);
    inst.fixed = rBool(is);
    inst.isClockTreeBuffer = rBool(is);
    inst.usefulSkew = rF64(is);
  }
  for (std::uint32_t n = 0; n < nNets; ++n) {
    const NetId net = static_cast<NetId>(n);
    const int driver = rIndex(is, nl->instanceCount(), "net driver");
    const int driverPort = rIndex(is, nl->portCount(), "net driver port");
    const int loadPort = rIndex(is, nl->portCount(), "net load port");
    if (driver >= 0) check(nl->tryConnectOutput(driver, net));
    if (driverPort >= 0) check(nl->tryConnectPortToNet(driverPort, net));
    if (loadPort >= 0) check(nl->tryConnectPortToNet(loadPort, net));
    const std::uint32_t nSinks = rU32(is);
    for (std::uint32_t s = 0; s < nSinks; ++s) {
      const int inst = rIndex(is, nl->instanceCount(), "sink instance");
      const std::int32_t pin = rI32(is);
      check(nl->tryConnectInput(inst, pin, net));
    }
  }
  for (PortId p = 0; p < nl->portCount(); ++p) {
    const int net = rIndex(is, nl->netCount(), "port net");
    // The net-record replay above set port.net for the one port each net
    // remembers; the port-side table overrides it so ports that share a
    // net (several primary outputs on one net, or one primary input
    // driving several nets) restore exactly.
    nl->port(p).net = net;
  }
  const std::uint32_t nClocks = rU32(is);
  for (std::uint32_t c = 0; c < nClocks; ++c) {
    ClockDef clk;
    clk.name = rStr(is);
    clk.port = rIndex(is, nl->portCount(), "clock port");
    clk.period = rF64(is);
    clk.jitter = rF64(is);
    clk.sourceLatency = rF64(is);
    nl->defineClock(clk);
  }
  const std::uint32_t nQuar = rU32(is);
  for (std::uint32_t q = 0; q < nQuar; ++q) {
    const int inst = rIndex(is, nl->instanceCount(), "quarantined instance");
    const std::int32_t pin = rI32(is);
    nl->quarantinePin(inst, pin);
  }
  return nl;
}

// --- scenarios --------------------------------------------------------------

void writeScenario(std::ostream& os, const Scenario& sc,
                   std::uint32_t libIndex) {
  using namespace binio;
  putStr(os, sc.name);
  putU32(os, libIndex);
  putI32(os, static_cast<std::int32_t>(sc.beol));
  putF64(os, sc.tightenSigma);
  putI32(os, sc.techNm);
  putI32(os, static_cast<std::int32_t>(sc.derate.mode));
  putF64(os, sc.derate.flatLate);
  putF64(os, sc.derate.flatEarly);
  putF64(os, sc.derate.sigmaCount);
  putBool(os, sc.derate.cppr);
  putF64(os, sc.limits.maxTransition);
  putF64(os, sc.limits.maxCapacitance);
  putF64(os, sc.clockUncertaintySetup);
  putF64(os, sc.clockUncertaintyHold);
  putF64(os, sc.extraSetupMargin);
  putF64(os, sc.extraHoldMargin);
  putF64(os, sc.inputDelay);
  putBool(os, sc.disableDataInputs);
  putF64(os, sc.inputSlew);
  putBool(os, sc.misAware);
}

Scenario readScenario(
    std::istream& is,
    const std::vector<std::shared_ptr<const Library>>& libs) {
  Scenario sc;
  sc.name = rStr(is);
  const std::uint32_t libIndex = rU32(is);
  if (libIndex >= libs.size())
    parseFail("scenario " + sc.name + " references library " +
              std::to_string(libIndex) + " of " +
              std::to_string(libs.size()));
  sc.lib = libs[libIndex];
  const std::int32_t beol = rI32(is);
  if (beol < 0 || beol > static_cast<int>(BeolCorner::kRCbest))
    parseFail("scenario " + sc.name + " BEOL corner " +
              std::to_string(beol) + " out of range");
  sc.beol = static_cast<BeolCorner>(beol);
  sc.tightenSigma = rF64(is);
  sc.techNm = rI32(is);
  const std::int32_t mode = rI32(is);
  if (mode < 0 || mode > static_cast<int>(DerateMode::kLvf))
    parseFail("scenario " + sc.name + " derate mode " +
              std::to_string(mode) + " out of range");
  sc.derate.mode = static_cast<DerateMode>(mode);
  sc.derate.flatLate = rF64(is);
  sc.derate.flatEarly = rF64(is);
  sc.derate.sigmaCount = rF64(is);
  sc.derate.cppr = rBool(is);
  sc.limits.maxTransition = rF64(is);
  sc.limits.maxCapacitance = rF64(is);
  sc.clockUncertaintySetup = rF64(is);
  sc.clockUncertaintyHold = rF64(is);
  sc.extraSetupMargin = rF64(is);
  sc.extraHoldMargin = rF64(is);
  sc.inputDelay = rF64(is);
  sc.disableDataInputs = rBool(is);
  sc.inputSlew = rF64(is);
  sc.misAware = rBool(is);
  return sc;
}

// --- corner-pruning audit (format v2) ---------------------------------------

/// Cap on the predictor weight vector (the real dimension is
/// kPruneFeatureCount + 1; the format only promises "small").
constexpr std::uint32_t kMaxPruneWeights = 256;

void writePruneAudit(std::ostream& os, const DesignSnapshot& snap) {
  using namespace binio;
  const PrunePredictor& pp = snap.prunePredictor;
  putBool(os, pp.valid);
  putU64(os, pp.seed);
  putI32(os, pp.rounds);
  putU32(os, static_cast<std::uint32_t>(pp.trainingScenarios.size()));
  for (std::size_t i = 0; i < pp.trainingScenarios.size(); ++i) {
    putU32(os, pp.trainingScenarios[i]);
    putF64(os, pp.trainingSetupWns[i]);
    putF64(os, pp.trainingHoldWns[i]);
  }
  putU32(os, static_cast<std::uint32_t>(pp.setupWeights.size()));
  for (double w : pp.setupWeights) putF64(os, w);
  putU32(os, static_cast<std::uint32_t>(pp.holdWeights.size()));
  for (double w : pp.holdWeights) putF64(os, w);
  putF64(os, pp.setupResidual);
  putF64(os, pp.holdResidual);
  putU32(os, static_cast<std::uint32_t>(snap.pruneCerts.size()));
  for (const PruneCertificate& c : snap.pruneCerts) {
    putI32(os, c.scenario);
    putStr(os, c.scenarioName);
    putF64(os, c.predictedSetupWns);
    putF64(os, c.predictedHoldWns);
    putF64(os, c.boundSetupWns);
    putF64(os, c.boundHoldWns);
    putF64(os, c.uncertainty);
    putI32(os, c.evidenceSetup);
    putI32(os, c.evidenceHold);
    putStr(os, c.evidenceSetupName);
    putStr(os, c.evidenceHoldName);
    putI32(os, c.round);
  }
}

void readPruneAudit(std::istream& is, DesignSnapshot& snap) {
  PrunePredictor& pp = snap.prunePredictor;
  const int nScn = static_cast<int>(snap.scenarios.size());
  pp.valid = rBool(is);
  pp.seed = rU64(is);
  pp.rounds = rI32(is);
  if (pp.rounds < 0) parseFail("negative predictor round count");
  const std::uint32_t nTrain = rU32(is);
  if (nTrain > snap.scenarios.size())
    parseFail("predictor training set larger than the scenario set");
  for (std::uint32_t i = 0; i < nTrain; ++i) {
    const std::uint32_t scn = rU32(is);
    if (scn >= snap.scenarios.size())
      parseFail("predictor training scenario index out of range");
    pp.trainingScenarios.push_back(scn);
    pp.trainingSetupWns.push_back(rF64(is));
    pp.trainingHoldWns.push_back(rF64(is));
  }
  const std::uint32_t nSw = rU32(is);
  if (nSw > kMaxPruneWeights) parseFail("implausible predictor weight count");
  for (std::uint32_t i = 0; i < nSw; ++i)
    pp.setupWeights.push_back(rF64(is));
  const std::uint32_t nHw = rU32(is);
  if (nHw > kMaxPruneWeights) parseFail("implausible predictor weight count");
  for (std::uint32_t i = 0; i < nHw; ++i) pp.holdWeights.push_back(rF64(is));
  pp.setupResidual = rF64(is);
  pp.holdResidual = rF64(is);
  const std::uint32_t nCert = rU32(is);
  if (nCert > snap.scenarios.size())
    parseFail("more prune certificates than scenarios");
  std::int32_t prevIndex = -1;
  for (std::uint32_t i = 0; i < nCert; ++i) {
    PruneCertificate c;
    c.scenario = rI32(is);
    if (c.scenario <= prevIndex || c.scenario >= nScn)
      parseFail("prune certificate scenario indices not strictly "
                "increasing within range");
    prevIndex = c.scenario;
    c.scenarioName = rStr(is);
    c.predictedSetupWns = rF64(is);
    c.predictedHoldWns = rF64(is);
    c.boundSetupWns = rF64(is);
    c.boundHoldWns = rF64(is);
    c.uncertainty = rF64(is);
    c.evidenceSetup = rIndex(is, nScn, "prune setup evidence");
    c.evidenceHold = rIndex(is, nScn, "prune hold evidence");
    c.evidenceSetupName = rStr(is);
    c.evidenceHoldName = rStr(is);
    c.round = rI32(is);
    if (c.round < 0) parseFail("negative prune certificate round");
    snap.pruneCerts.push_back(std::move(c));
  }
}

Status failAndReport(DiagnosticSink* sink, DiagCode code,
                     std::string message) {
  if (sink) sink->error(code, message, "snapshot");
  return Status::failure(code, std::move(message));
}

}  // namespace

DesignSnapshot makeSnapshot(const Netlist& netlist,
                            std::vector<Scenario> scenarios,
                            bool includeSpef) {
  DesignSnapshot snap;
  std::map<const Library*, std::uint32_t> index;
  auto intern = [&](const std::shared_ptr<const Library>& lib) {
    if (!lib) return;
    if (index.emplace(lib.get(),
                      static_cast<std::uint32_t>(snap.libraries.size()))
            .second)
      snap.libraries.push_back(lib);
  };
  intern(netlist.libraryPtr());
  for (const Scenario& sc : scenarios) intern(sc.lib);

  snap.netlist = std::make_shared<Netlist>(netlist);
  snap.scenarios = std::move(scenarios);

  if (includeSpef && !snap.scenarios.empty()) {
    const Scenario& sc = snap.scenarios.front();
    Extractor ex(*snap.netlist, BeolStack::forNode(techNode(sc.techNm)));
    ExtractionOptions opt;
    opt.corner = sc.beol;
    opt.temp = sc.temp();
    opt.tightenSigma = sc.tightenSigma;
    snap.spef = toSpef(*snap.netlist, ex, opt);
  }
  return snap;
}

Status writeSnapshot(const DesignSnapshot& snap, std::ostream& os) {
  if (!snap.netlist)
    return Status::failure(DiagCode::kSnapUnsupported,
                           "snapshot has no netlist");
  std::map<const Library*, std::uint32_t> index;
  for (std::size_t i = 0; i < snap.libraries.size(); ++i)
    index.emplace(snap.libraries[i].get(), static_cast<std::uint32_t>(i));
  auto indexOf = [&](const std::shared_ptr<const Library>& lib,
                     std::uint32_t* out) {
    auto it = lib ? index.find(lib.get()) : index.end();
    if (it == index.end()) return false;
    *out = it->second;
    return true;
  };

  std::uint32_t netlistLib = 0;
  if (!indexOf(snap.netlist->libraryPtr(), &netlistLib))
    return Status::failure(DiagCode::kSnapUnsupported,
                           "netlist library missing from snapshot table");
  for (const Scenario& sc : snap.scenarios) {
    if (sc.sadp)
      return Status::failure(
          DiagCode::kSnapUnsupported,
          "scenario " + sc.name +
              " carries a SADP model, which snapshots cannot transport");
    std::uint32_t idx = 0;
    if (!indexOf(sc.lib, &idx))
      return Status::failure(DiagCode::kSnapUnsupported,
                             "scenario " + sc.name +
                                 " library missing from snapshot table");
  }
  if (snap.spef.size() > kMaxSpef)
    return Status::failure(DiagCode::kSnapUnsupported,
                           "SPEF blob exceeds the format cap");
  const PrunePredictor& pp = snap.prunePredictor;
  if (pp.trainingSetupWns.size() != pp.trainingScenarios.size() ||
      pp.trainingHoldWns.size() != pp.trainingScenarios.size() ||
      pp.setupWeights.size() > kMaxPruneWeights ||
      pp.holdWeights.size() > kMaxPruneWeights)
    return Status::failure(DiagCode::kSnapUnsupported,
                           "inconsistent prune predictor state");
  for (std::size_t i = 0; i < snap.pruneCerts.size(); ++i) {
    const PruneCertificate& c = snap.pruneCerts[i];
    const bool ordered =
        i == 0 || c.scenario > snap.pruneCerts[i - 1].scenario;
    if (!ordered || c.scenario < 0 ||
        c.scenario >= static_cast<std::int32_t>(snap.scenarios.size()))
      return Status::failure(
          DiagCode::kSnapUnsupported,
          "prune certificates not in strictly increasing scenario order");
  }

  std::ostringstream payload(std::ios::binary);
  binio::putU32(payload,
                static_cast<std::uint32_t>(snap.libraries.size()));
  for (const auto& lib : snap.libraries) writeLibraryBody(payload, *lib);
  binio::putU32(payload, netlistLib);
  writeNetlist(payload, *snap.netlist);
  binio::putU32(payload,
                static_cast<std::uint32_t>(snap.scenarios.size()));
  for (const Scenario& sc : snap.scenarios) {
    std::uint32_t idx = 0;
    indexOf(sc.lib, &idx);
    writeScenario(payload, sc, idx);
  }
  binio::putU32(payload, static_cast<std::uint32_t>(snap.spef.size()));
  payload.write(snap.spef.data(),
                static_cast<std::streamsize>(snap.spef.size()));
  writePruneAudit(payload, snap);

  const std::string bytes = payload.str();
  binio::putU32(os, kMagic);
  binio::putU32(os, kVersion);
  binio::putU64(os, bytes.size());
  binio::putU32(os, crc32(bytes.data(), bytes.size()));
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!os)
    return Status::failure(DiagCode::kSnapTruncated,
                           "short write emitting snapshot");
  return Status::okStatus();
}

Status writeSnapshotFile(const DesignSnapshot& snap,
                         const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os)
    return Status::failure(DiagCode::kSnapTruncated,
                           "cannot open " + path + " for writing");
  return writeSnapshot(snap, os);
}

Result<DesignSnapshot> readSnapshot(std::istream& is, DiagnosticSink* sink) {
  std::uint32_t magic = 0, version = 0, crc = 0;
  std::uint64_t size = 0;
  if (!binio::getU32(is, magic))
    return failAndReport(sink, DiagCode::kSnapTruncated,
                         "stream ends before the snapshot header");
  if (magic != kMagic)
    return failAndReport(sink, DiagCode::kSnapBadMagic,
                         "bad magic word: not a design snapshot");
  if (!binio::getU32(is, version) || !binio::getU64(is, size) ||
      !binio::getU32(is, crc))
    return failAndReport(sink, DiagCode::kSnapTruncated,
                         "stream ends inside the snapshot header");
  if (version != kVersion)
    return failAndReport(sink, DiagCode::kSnapVersionMismatch,
                         "snapshot format version " +
                             std::to_string(version) + ", expected " +
                             std::to_string(kVersion));
  if (size > kMaxPayload)
    return failAndReport(sink, DiagCode::kSnapCorrupt,
                         "implausible payload size " +
                             std::to_string(size));

  std::string bytes(static_cast<std::size_t>(size), '\0');
  is.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (static_cast<std::uint64_t>(is.gcount()) != size)
    return failAndReport(
        sink, DiagCode::kSnapTruncated,
        "payload truncated: " + std::to_string(is.gcount()) + " of " +
            std::to_string(size) + " bytes present");
  // Integrity first: no payload byte is interpreted until the whole blob
  // checks out, so a flipped bit anywhere surfaces here, not as a
  // mysterious parse artifact downstream.
  const std::uint32_t actual = crc32(bytes.data(), bytes.size());
  if (actual != crc)
    return failAndReport(
        sink, DiagCode::kSnapChecksumMismatch,
        "payload checksum mismatch: stored " + std::to_string(crc) +
            ", computed " + std::to_string(actual));

  try {
    std::istringstream ps(bytes, std::ios::binary);
    DesignSnapshot snap;
    const std::uint32_t nLibs = rU32(ps);
    if (nLibs > 4096) parseFail("implausible library count");
    for (std::uint32_t i = 0; i < nLibs; ++i) {
      auto lib = readLibraryBody(ps, sink, "snapshot lib " +
                                               std::to_string(i));
      if (!lib) parseFail("library body " + std::to_string(i) + " invalid");
      snap.libraries.push_back(std::move(lib));
    }
    const std::uint32_t netlistLib = rU32(ps);
    if (netlistLib >= snap.libraries.size())
      parseFail("netlist library index out of range");
    snap.netlist = readNetlist(ps, snap.libraries[netlistLib]);
    const std::uint32_t nScn = rU32(ps);
    if (nScn > 65536) parseFail("implausible scenario count");
    for (std::uint32_t i = 0; i < nScn; ++i)
      snap.scenarios.push_back(readScenario(ps, snap.libraries));
    snap.spef = rStr(ps, kMaxSpef);
    readPruneAudit(ps, snap);
    if (ps.peek() != std::istream::traits_type::eof())
      parseFail("trailing bytes after the snapshot payload");
    if (!snap.spef.empty()) {
      DiagnosticSink spefSink;
      auto parsed = parseSpef(snap.spef, spefSink);
      if (!parsed.ok())
        parseFail("embedded SPEF rejected: " + parsed.status().str());
    }
    return snap;
  } catch (const SnapParseError& e) {
    return failAndReport(sink, DiagCode::kSnapCorrupt,
                         "checksummed payload is inconsistent: " + e.what);
  } catch (const std::exception& e) {
    return failAndReport(
        sink, DiagCode::kSnapCorrupt,
        std::string("checksummed payload is inconsistent: ") + e.what());
  }
}

Result<DesignSnapshot> readSnapshotFile(const std::string& path,
                                        DiagnosticSink* sink) {
  std::ifstream is(path, std::ios::binary);
  if (!is)
    return failAndReport(sink, DiagCode::kSnapTruncated,
                         "cannot open " + path);
  return readSnapshot(is, sink);
}

}  // namespace tc
