#include "signoff/tbc.h"

#include <algorithm>

#include "sta/report.h"

namespace tc {

TbcAnalysis analyzeTbc(StaEngine& engine, const TbcConfig& cfg) {
  TbcAnalysis out;
  MonteCarloTiming mc(engine);

  const auto worst = worstEndpoints(engine, Check::kSetup, cfg.numPaths);
  for (const auto& ep : worst) {
    const PathModel path = mc.compilePath(ep.vertex, ep.setupTrans);
    if (path.stages.empty() || path.nominal <= 0.0) continue;

    TbcPathData d;
    d.endpoint = ep.vertex;
    d.nominal = path.nominal;

    McOptions opt = cfg.mc;
    opt.sampleGateMismatch = false;  // isolate the BEOL component, as [2]
    const SampleSet samples = mc.run(path, opt);
    d.sigma3 = samples.quantile(0.99865) - samples.mean();

    d.deltaCw =
        mc.pathDelayAtCorner(path, BeolCorner::kCworst) - path.nominal;
    d.deltaRcw =
        mc.pathDelayAtCorner(path, BeolCorner::kRCworst) - path.nominal;
    d.alphaCw = d.deltaCw > 1e-9 ? d.sigma3 / d.deltaCw : 99.0;
    d.alphaRcw = d.deltaRcw > 1e-9 ? d.sigma3 / d.deltaRcw : 99.0;
    d.normDeltaCw = d.deltaCw / d.nominal;
    d.normDeltaRcw = d.deltaRcw / d.nominal;
    // Eligible when the corner deltas are small (Fig. 8(b) thresholds) AND
    // the actually-evaluated tightened excursion still covers the
    // statistical requirement — the safety condition of [2].
    const Ps tCw =
        mc.pathDelayAtCorner(path, BeolCorner::kCworst, cfg.tightenedSigma) -
        path.nominal;
    const Ps tRcw = mc.pathDelayAtCorner(path, BeolCorner::kRCworst,
                                         cfg.tightenedSigma) -
                    path.nominal;
    const bool covered = std::max(tCw, tRcw) >= d.sigma3;
    d.tbcEligible = d.normDeltaCw < cfg.thresholdAcw &&
                    d.normDeltaRcw < cfg.thresholdArcw && covered;
    if (d.tbcEligible) {
      ++out.eligible;
      if (covered) ++out.eligibleCovered;
      out.totalPessimismTbc += std::max(tCw, tRcw) - d.sigma3;
    } else {
      out.totalPessimismTbc +=
          std::max(d.deltaCw, d.deltaRcw) - d.sigma3;
    }
    out.totalPessimismCbc += std::max(d.deltaCw, d.deltaRcw) - d.sigma3;
    out.paths.push_back(d);
  }
  return out;
}

TbcViolationComparison compareViolations(const TbcAnalysis& a,
                                         const StaEngine& engine,
                                         const TbcConfig& cfg) {
  TbcViolationComparison c;
  // A path "violates" under a methodology when nominal + demanded margin
  // exceeds the slack budget at the typical corner: i.e. the endpoint's
  // typical-corner slack minus the margin goes negative.
  // Map endpoints back to their typical slacks.
  for (const auto& d : a.paths) {
    Ps slack = 0.0;
    for (const auto& ep : engine.endpoints())
      if (ep.vertex == d.endpoint) slack = ep.setupSlack;
    const Ps marginCbc = std::max(d.deltaCw, d.deltaRcw);
    Ps marginTbc = marginCbc;
    if (d.tbcEligible) {
      // Tightened excursion scales ~ linearly with k/3.
      marginTbc = marginCbc * cfg.tightenedSigma / 3.0;
    }
    if (slack - marginCbc < 0.0) ++c.violationsCbc;
    if (slack - marginTbc < 0.0) ++c.violationsTbc;
    if (slack - d.sigma3 < 0.0) ++c.violationsStatistical;
  }
  return c;
}

}  // namespace tc
