#include "signoff/ir.h"

#include <algorithm>
#include <cmath>

namespace tc {

double IrDroopMap::droopAt(Um x, Um y) const {
  if (nx == 0 || ny == 0) return 0.0;
  int bx = static_cast<int>(x / binSize);
  int by = static_cast<int>(y / binSize);
  bx = std::clamp(bx, 0, nx - 1);
  by = std::clamp(by, 0, ny - 1);
  return droopMv[static_cast<std::size_t>(by) * nx + bx];
}

IrDroopMap computeIrDroop(const Netlist& nl, const IrOptions& opt) {
  IrDroopMap map;
  map.binSize = opt.binSize;
  Um maxX = 0.0, maxY = 0.0;
  for (InstId i = 0; i < nl.instanceCount(); ++i) {
    maxX = std::max(maxX, nl.instance(i).x);
    maxY = std::max(maxY, nl.instance(i).y);
  }
  map.nx = std::max(1, static_cast<int>(maxX / opt.binSize) + 1);
  map.ny = std::max(1, static_cast<int>(maxY / opt.binSize) + 1);
  std::vector<double> binPowerUw(
      static_cast<std::size_t>(map.nx) * map.ny, 0.0);

  const Library& lib = nl.library();
  const Volt vdd = lib.pvt().vdd;
  const Ps period = nl.clocks().empty() ? 1000.0 : nl.clocks().front().period;
  const double freqGhz = 1000.0 / period;

  for (InstId i = 0; i < nl.instanceCount(); ++i) {
    const Instance& inst = nl.instance(i);
    const Cell& cell = lib.cell(inst.cellIndex);
    Ff loadCap = 0.0;
    if (inst.fanout >= 0) loadCap = nl.netSinkCap(inst.fanout);
    const bool isClock = inst.isClockTreeBuffer || cell.isSequential;
    const double activity = isClock ? 1.0 : opt.dataActivity;
    const double uw =
        (cell.switchEnergy + 0.5 * loadCap * vdd * vdd) * activity *
            freqGhz +
        cell.leakagePower;
    int bx = std::clamp(static_cast<int>(inst.x / opt.binSize), 0,
                        map.nx - 1);
    int by = std::clamp(static_cast<int>(inst.y / opt.binSize), 0,
                        map.ny - 1);
    binPowerUw[static_cast<std::size_t>(by) * map.nx + bx] += uw;
  }

  // Droop per bin: local term through the tile's rail resistance plus a
  // shared term through the package impedance (total current).
  double totalUw = 0.0;
  for (double p : binPowerUw) totalUw += p;
  const double globalDroopMv =
      (totalUw / vdd) * 1e-6 * opt.globalOhm * 1000.0;  // uW/V=uA -> A*ohm
  map.droopMv.resize(binPowerUw.size());
  for (std::size_t b = 0; b < binPowerUw.size(); ++b) {
    const double localMv =
        (binPowerUw[b] / vdd) * 1e-6 * opt.gridOhmPerBin * 1000.0;
    map.droopMv[b] = localMv + globalDroopMv;
    map.worstDroopMv = std::max(map.worstDroopMv, map.droopMv[b]);
    map.meanDroopMv += map.droopMv[b];
  }
  if (!map.droopMv.empty())
    map.meanDroopMv /= static_cast<double>(map.droopMv.size());
  return map;
}

IrTimingResult applyIrAwareTiming(StaEngine& engine, const IrDroopMap& map,
                                  const DelayScaler& scaler) {
  IrTimingResult res;
  const Netlist& nl = engine.netlist();
  const Volt vdd = engine.scenario().vdd();
  res.setupWnsBefore = engine.wns(Check::kSetup);
  res.holdWnsBefore = engine.wns(Check::kHold);

  const double refScale = scaler.scale(vdd, 0.0);
  std::vector<std::array<double, 2>> late(
      static_cast<std::size_t>(nl.instanceCount()), {1.0, 1.0});
  std::vector<std::array<double, 2>> early = late;
  for (InstId i = 0; i < nl.instanceCount(); ++i) {
    const Instance& inst = nl.instance(i);
    const double droopV = map.droopAt(inst.x, inst.y) * 1e-3;
    if (droopV <= 1e-6) continue;
    const double derate =
        scaler.scale(std::max(vdd - droopV, 0.5), 0.0) / refScale;
    if (derate <= 1.0 + 1e-9) continue;
    late[static_cast<std::size_t>(i)] = {derate, derate};
    // Droop only ever slows cells: the early/hold view keeps the nominal
    // (fast) delays, which is the conservative signoff choice.
    ++res.instancesDerated;
    res.worstDeratePct =
        std::max(res.worstDeratePct, (derate - 1.0) * 100.0);
  }
  engine.setMisFactors(std::move(late), std::move(early));
  engine.run();
  res.setupWnsAfter = engine.wns(Check::kSetup);
  res.holdWnsAfter = engine.wns(Check::kHold);
  return res;
}

}  // namespace tc
