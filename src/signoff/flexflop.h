#pragma once
/// \file flexflop.h
/// \brief Margin recovery with flexible flip-flop timing (Sec. 3.4,
/// Fig. 10; after Kahng-Lee [23]).
///
/// Conventional characterization freezes each flop at one
/// (setup, hold, c2q) point chosen by a fixed pushout criterion (e.g. 10%).
/// In reality the three trade off along the interdependent surface
/// c2q(s, h). Giving each flop its own operating point on that surface
/// recovers "free" margin at the timing-path boundaries: a capture flop on
/// a critical path can run at a smaller setup time (paying c2q it doesn't
/// launch with), while a launch flop with lazy downstream paths can pay
/// c2q to relax nothing. The optimizer below is the coordinate-descent /
/// sequential-linear flavor of [23]: endpoint slacks are decomposed as
/// linear functions of per-flop setup and c2q deviations from the
/// conventional point, and budgets are rebalanced until the worst slack
/// stops improving.

#include <vector>

#include "sta/engine.h"

namespace tc {

struct FlexFlopConfig {
  int maxIterations = 12;
  double maxC2qStretch = 1.45;  ///< budget cap: c2q <= stretch * c2q0
  Ps minImprovement = 0.5;      ///< stop when WNS gain per sweep drops below
  double pushoutFrac = 0.10;    ///< the conventional point being improved on
};

struct FlexFlopAssignment {
  InstId flop = -1;
  Ps setup = 0.0;   ///< assigned setup time
  Ps c2q = 0.0;     ///< assigned clock-to-q budget
  Ps setupDelta = 0.0;  ///< vs conventional (negative = tightened)
  Ps c2qDelta = 0.0;
};

struct FlexFlopResult {
  Ps wnsBefore = 0.0;
  Ps wnsAfter = 0.0;
  Ps tnsBefore = 0.0;
  Ps tnsAfter = 0.0;
  int adjustedFlops = 0;
  int iterations = 0;
  std::vector<FlexFlopAssignment> assignments;

  Ps wnsGain() const { return wnsAfter - wnsBefore; }
};

/// Run flexible-flop margin recovery against a completed engine run.
/// Purely analytical (no netlist edits): slacks are re-evaluated from the
/// linear decomposition, which callers can verify with a full STA by
/// materializing the assignments into per-instance constraint overrides.
FlexFlopResult recoverFlexFlopMargin(const StaEngine& engine,
                                     const FlexFlopConfig& cfg = {});

}  // namespace tc
