#pragma once
/// \file corners.h
/// \brief The MCMM "corner super-explosion" (Sec. 2.3) and corner pruning.
///
/// Signoff views multiply: functional/test modes x supply voltages x
/// temperatures x FEOL process corners x BEOL corners (per multi-patterned
/// layer). The central engineering team's choice of the subset to actually
/// close "has enormous influence on the balance between product quality,
/// design effort, and schedule" — and some factors are *unavoidable*:
/// temperature inversion forces both temperatures near Vtr, and gate-wire
/// balance forces both Cw and RCw (footnote 10: low-V critical paths are
/// gate-dominated -> Cw dominates; high-V paths are wire-dominated -> RCw
/// dominates).

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "device/process.h"
#include "interconnect/wire.h"
#include "sta/engine.h"
#include "sta/pba.h"
#include "util/diag.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace tc {

/// One signoff view.
struct ViewDef {
  std::string mode;
  Volt vdd = 0.9;
  Celsius temp = 25.0;
  ProcessCorner process = ProcessCorner::kTT;
  BeolCorner beol = BeolCorner::kTypical;

  std::string name() const;
};

/// The axes a design must in principle be signed off across.
struct CornerUniverse {
  std::vector<std::string> modes{"func"};
  std::vector<Volt> voltages{0.9};
  std::vector<Celsius> temps{25.0};
  std::vector<ProcessCorner> process{ProcessCorner::kTT};
  std::vector<BeolCorner> beol{BeolCorner::kTypical};
  /// Cross-corner voltage-domain pairs for asynchronous interfaces
  /// (each pair of independently-scalable domains multiplies views).
  int asyncDomainPairs = 0;

  long totalViews() const;
  std::vector<ViewDef> enumerate() const;

  /// A realistic SoC universe at a given node: overdrive/underdrive and
  /// test modes, the supply range and BEOL corner list of the node.
  static CornerUniverse socUniverse(int techNm);
};

/// Device-model-backed view scoring: estimated FO4-ish stage delay at the
/// view's (V, T, process). Used by the pruner to find dominant views.
double viewDelayScore(const ViewDef& view);

/// Prune to the dominant setup views: per mode, the slowest (V,T,process)
/// combination for gate-dominated paths plus the temperature-inversion
/// counterpart, each at both Cw and RCw BEOL corners.
std::vector<ViewDef> pruneForSetup(const CornerUniverse& u);
/// Dominant hold views: fastest process/voltage, both temperatures, Cb/RCb.
std::vector<ViewDef> pruneForHold(const CornerUniverse& u);

// ---------------------------------------------------------------------------
// MCMM analysis runtime: the paper's corner super-explosion, paid in
// parallel. Scenarios are independent (immutable netlist, immutable
// per-PVT libraries shared through characterizedLibrary's cache), so the
// runner fans each Scenario's full STA run out across a thread pool and
// merges results deterministically in scenario input order.
// ---------------------------------------------------------------------------

struct McmmOptions {
  /// Pool the scenario runs are dispatched across. Null => serial loop
  /// (the `--serial` reference the determinism tests compare against).
  ThreadPool* pool = nullptr;
  /// Also hand the pool to each engine for intra-scenario (level/endpoint)
  /// parallelism. Nested parallelFor is deadlock-free by construction, so
  /// this is on by default; turn it off to measure pure scenario scaling.
  bool intraScenario = true;
  /// Echo per-scenario diagnostics through tc::logf as they happen.
  /// Default off: concurrent scenario sinks would interleave on stderr in
  /// a thread-dependent order, and everything is surfaced (deterministic)
  /// in McmmResult anyway.
  bool echoDiagnostics = false;
  /// After each scenario's GBA pass, run PBA on this many GBA-worst setup
  /// endpoints (0 = off). Results land in ScenarioResult::pba; retrace
  /// inconsistencies join the scenario's diagnostic stream in result order.
  int pbaEndpoints = 0;
  /// Enumeration options for that PBA pass (K-worst / exhaustive).
  PbaOptions pba;
};

/// Auditable evidence for a scenario the pruner (signoff/prune.h) closed
/// WITHOUT an exact run — the corner-level sibling of PbaCertificate. The
/// bound fields are provable: they are the exact WNS of a scenario whose
/// knobs dominate this one (pessimistic-or-equal on every monotone margin
/// axis, identical otherwise), so the skipped corner's true WNS can only be
/// >= the bound. The predictions are the regression's best guess and carry
/// no guarantee; they exist so an audit can see *why* the corner looked
/// safe to skip. All fields are deterministic — certificates are part of
/// the farm's bit-identical merge contract.
struct PruneCertificate {
  std::int32_t scenario = -1;   ///< scenario input index
  std::string scenarioName;
  Ps predictedSetupWns = 0.0, predictedHoldWns = 0.0;  ///< model estimate
  Ps boundSetupWns = 0.0, boundHoldWns = 0.0;  ///< provable lower bounds
  /// Model uncertainty (ps) at the decision: train residual + distance term.
  Ps uncertainty = 0.0;
  /// Input indices of the exact runs whose WNS is the bound.
  std::int32_t evidenceSetup = -1, evidenceHold = -1;
  std::string evidenceSetupName, evidenceHoldName;
  std::int32_t round = 0;  ///< active-learning round that closed the corner
};

/// Serializable state of the corner-pruning predictor: which exact runs it
/// trained on and the fitted ridge coefficients over normalized scenario
/// features. Rides in DesignSnapshot (format v2) so the artifact a pruned
/// pass ships is auditable offline — bound certificates plus the model
/// that chose them.
struct PrunePredictor {
  bool valid = false;
  std::uint64_t seed = 0;
  std::int32_t rounds = 0;
  /// Exact-run training set, dispatch order (quarantined runs excluded).
  std::vector<std::uint32_t> trainingScenarios;
  std::vector<double> trainingSetupWns, trainingHoldWns;
  /// Ridge weights over normalized features, bias last.
  std::vector<double> setupWeights, holdWeights;
  double setupResidual = 0.0, holdResidual = 0.0;  ///< training RMS, ps
};

/// Outcome of one scenario's STA run.
struct ScenarioResult {
  std::string scenario;
  Ps setupWns = 0.0, holdWns = 0.0;
  Ps setupTns = 0.0, holdTns = 0.0;
  int setupViolations = 0, holdViolations = 0;
  int drvViolations = 0;
  int nanQuarantined = 0;
  std::vector<EndpointTiming> endpoints;  ///< engine endpoint order
  std::vector<Diagnostic> diagnostics;    ///< this scenario's sink contents
  /// PBA over the GBA-worst setup endpoints (when McmmOptions::pbaEndpoints
  /// > 0), in GBA slack order — the signoff "PBA on the critical tail".
  std::vector<PbaResult> pba;
  /// min pbaSlack over `pba` (0.0 when PBA is off or found no endpoints).
  Ps pbaSetupWns = 0.0;
  /// True when this slot was closed by the corner pruner instead of an
  /// exact run: the WNS/TNS fields hold the certificate's conservative
  /// bounds (copied from the dominating evidence runs), endpoints are
  /// empty, and `certificate` records the audit trail.
  bool pruned = false;
  PruneCertificate certificate;
};

/// Merged MCMM outcome, reduced in scenario input order (bit-identical
/// whatever the pool width — see DESIGN.md "Concurrency model").
struct McmmResult {
  std::vector<ScenarioResult> scenarios;  ///< input order
  /// Scenario-order concatenation of every sink, each diagnostic's entity
  /// prefixed "scenario/entity" so one stream stays attributable.
  std::vector<Diagnostic> merged;

  Ps wns(Check check) const;
  Ps tns(Check check) const;  ///< sum over scenarios (MCMM closure metric)
  int violationCount(Check check) const;
  /// Index of the scenario holding the worst WNS (-1 when empty).
  int worstScenario(Check check) const;
};

/// One scenario, end to end: construct an engine over (nl, sc), attach
/// `sink`, run GBA (plus the PBA tail per `opt`), and collect the
/// ScenarioResult. This is the exact per-scenario body McmmRunner::run
/// dispatches across its pool; the farm worker (tools/goalposts_worker)
/// calls it too, so a farmed scenario and an in-process one execute
/// identical code — the root of the farm's bit-identical-merge contract.
/// `engineOut`, when non-null, receives the engine (the runner keeps it
/// alive for incremental update and cross-scenario reads).
ScenarioResult runScenarioStandalone(
    const Netlist& nl, const Scenario& sc, const McmmOptions& opt,
    DiagnosticSink& sink, std::unique_ptr<StaEngine>* engineOut = nullptr);

/// Deterministic MCMM reduction with duplicate rejection, shared by the
/// in-process runner and the process farm so the two merges can never
/// drift. Results are accepted keyed by scenario input index; the FIRST
/// result accepted for an index wins, later arrivals are counted
/// (farm.duplicate_results) and dropped — retry and straggler re-dispatch
/// can legitimately deliver one scenario twice. finish() reduces in
/// scenario input order, prefixing each diagnostic's entity
/// "scenario/entity", so the merged stream is bit-identical to a serial
/// run whatever the arrival order. Thread-safe.
class McmmMerger {
 public:
  explicit McmmMerger(std::size_t scenarioCount);

  /// True when accepted; false for a duplicate (counted, dropped) or an
  /// out-of-range index.
  bool accept(std::size_t index, ScenarioResult result);
  bool has(std::size_t index) const;
  int duplicateCount() const;
  /// Indices still unfilled (the farm quarantines these).
  std::vector<std::size_t> missing() const;
  /// Reduce the accepted slots into a McmmResult.
  McmmResult finish() const;

 private:
  mutable std::mutex mu_;
  std::vector<ScenarioResult> slots_;
  std::vector<char> filled_;
  int duplicates_ = 0;
};

/// Owns the per-scenario engines and sinks of one MCMM signoff pass.
/// Scenarios are fixed at construction (engines keep pointers into the
/// stored vector); run() may be called repeatedly with different options
/// and rebuilds the engines each time.
class McmmRunner {
 public:
  McmmRunner(const Netlist& netlist, std::vector<Scenario> scenarios);

  const McmmResult& run(const McmmOptions& opt = {});

  /// Incremental refresh after netlist edits: every engine built by the
  /// last run() stays registered on the netlist's mutation hooks, so this
  /// just drives each scenario's updateTiming() and re-merges. Results are
  /// bit-identical to a fresh run() (the engines' incremental contract);
  /// diagnostics are regenerated through replayTimingDiagnostics so the
  /// merged stream also matches byte-for-byte. Falls back to run() when no
  /// engines exist yet.
  const McmmResult& update(const McmmOptions& opt = {});

  const McmmResult& result() const { return result_; }
  std::size_t scenarioCount() const { return scenarios_.size(); }
  const Scenario& scenario(std::size_t i) const { return scenarios_[i]; }
  /// Engine of scenario i (null before run()). Stays alive until the next
  /// run() — cross-scenario analyses (CTS skew, margin comparison) read
  /// these directly.
  StaEngine* engine(std::size_t i) const { return engines_[i].get(); }
  /// Wall-clock of each scenario's last run()/update() pass, ms, scenario
  /// input order (empty before the first run). A side channel — not part
  /// of McmmResult, so the determinism contracts never see it. The corner
  /// bench reports the spread (min/mean/p95/max) to expose per-view cost
  /// imbalance, which is what the farm's straggler re-dispatch exploits.
  const std::vector<double>& scenarioElapsedMs() const { return elapsedMs_; }

 private:
  const Netlist* nl_;
  std::vector<Scenario> scenarios_;
  std::vector<std::unique_ptr<StaEngine>> engines_;
  std::vector<std::unique_ptr<DiagnosticSink>> sinks_;
  std::vector<double> elapsedMs_;
  McmmResult result_;
};

/// One-shot convenience: run the scenario set and return the merged result.
McmmResult runMcmm(const Netlist& netlist, std::vector<Scenario> scenarios,
                   const McmmOptions& opt = {});

}  // namespace tc
