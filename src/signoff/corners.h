#pragma once
/// \file corners.h
/// \brief The MCMM "corner super-explosion" (Sec. 2.3) and corner pruning.
///
/// Signoff views multiply: functional/test modes x supply voltages x
/// temperatures x FEOL process corners x BEOL corners (per multi-patterned
/// layer). The central engineering team's choice of the subset to actually
/// close "has enormous influence on the balance between product quality,
/// design effort, and schedule" — and some factors are *unavoidable*:
/// temperature inversion forces both temperatures near Vtr, and gate-wire
/// balance forces both Cw and RCw (footnote 10: low-V critical paths are
/// gate-dominated -> Cw dominates; high-V paths are wire-dominated -> RCw
/// dominates).

#include <string>
#include <vector>

#include "device/process.h"
#include "interconnect/wire.h"
#include "util/units.h"

namespace tc {

/// One signoff view.
struct ViewDef {
  std::string mode;
  Volt vdd = 0.9;
  Celsius temp = 25.0;
  ProcessCorner process = ProcessCorner::kTT;
  BeolCorner beol = BeolCorner::kTypical;

  std::string name() const;
};

/// The axes a design must in principle be signed off across.
struct CornerUniverse {
  std::vector<std::string> modes{"func"};
  std::vector<Volt> voltages{0.9};
  std::vector<Celsius> temps{25.0};
  std::vector<ProcessCorner> process{ProcessCorner::kTT};
  std::vector<BeolCorner> beol{BeolCorner::kTypical};
  /// Cross-corner voltage-domain pairs for asynchronous interfaces
  /// (each pair of independently-scalable domains multiplies views).
  int asyncDomainPairs = 0;

  long totalViews() const;
  std::vector<ViewDef> enumerate() const;

  /// A realistic SoC universe at a given node: overdrive/underdrive and
  /// test modes, the supply range and BEOL corner list of the node.
  static CornerUniverse socUniverse(int techNm);
};

/// Device-model-backed view scoring: estimated FO4-ish stage delay at the
/// view's (V, T, process). Used by the pruner to find dominant views.
double viewDelayScore(const ViewDef& view);

/// Prune to the dominant setup views: per mode, the slowest (V,T,process)
/// combination for gate-dominated paths plus the temperature-inversion
/// counterpart, each at both Cw and RCw BEOL corners.
std::vector<ViewDef> pruneForSetup(const CornerUniverse& u);
/// Dominant hold views: fastest process/voltage, both temperatures, Cb/RCb.
std::vector<ViewDef> pruneForHold(const CornerUniverse& u);

}  // namespace tc
