#include "signoff/yield.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace tc {

double endpointYield(Ps meanSlack, Ps sigma) {
  if (sigma <= 0.0) return meanSlack >= 0.0 ? 1.0 : 0.0;
  return normalCdf(meanSlack / sigma);
}

namespace {
Ps endpointSigma(const StaEngine& engine, const EndpointTiming& ep,
                 Ps fallbackSigma) {
  const auto mode = engine.scenario().derate.mode;
  if (mode == DerateMode::kPocv || mode == DerateMode::kLvf) {
    const auto& t = engine.timing(ep.vertex);
    const double var = t.var[0][ep.setupTrans];
    if (var > 0.0) return std::sqrt(var);
  }
  return fallbackSigma;
}
}  // namespace

double designTimingYield(const StaEngine& engine, Ps fallbackSigma) {
  double logY = 0.0;
  for (const auto& ep : engine.endpoints()) {
    if (!std::isfinite(ep.setupSlack)) continue;
    // Mean slack: remove the k*sigma the derated key already carries so
    // the statistical view doesn't double-count.
    Ps mean = ep.setupSlack;
    const Ps sigma = endpointSigma(engine, ep, fallbackSigma);
    const auto mode = engine.scenario().derate.mode;
    if (mode == DerateMode::kPocv || mode == DerateMode::kLvf)
      mean += engine.scenario().derate.sigmaCount * sigma;
    const double y = endpointYield(mean, sigma);
    logY += std::log(std::max(y, 1e-300));
  }
  return std::exp(logY);
}

Ps slackForYield(double targetYield, Ps sigma) {
  const double y = std::clamp(targetYield, 1e-12, 1.0 - 1e-12);
  return normalInverseCdf(y) * sigma;
}

std::vector<YieldRecord> yieldBreakdown(const StaEngine& engine,
                                        Ps fallbackSigma, int k) {
  std::vector<YieldRecord> out;
  for (const auto& ep : engine.endpoints()) {
    if (!std::isfinite(ep.setupSlack)) continue;
    YieldRecord r;
    r.endpoint = ep.vertex;
    r.sigma = endpointSigma(engine, ep, fallbackSigma);
    r.meanSlack = ep.setupSlack;
    const auto mode = engine.scenario().derate.mode;
    if (mode == DerateMode::kPocv || mode == DerateMode::kLvf)
      r.meanSlack += engine.scenario().derate.sigmaCount * r.sigma;
    r.passProbability = endpointYield(r.meanSlack, r.sigma);
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const YieldRecord& a, const YieldRecord& b) {
              return a.passProbability < b.passProbability;
            });
  if (static_cast<int>(out.size()) > k) out.resize(static_cast<std::size_t>(k));
  return out;
}

}  // namespace tc
