#pragma once
/// \file tbc.h
/// \brief Tightened BEOL corners (Sec. 3.2, Fig. 8; after Chan-Dobre-Kahng
/// [2]).
///
/// Signing off every path at homogeneous worst-case BEOL corners is
/// pessimistic because per-layer variations are not fully correlated. The
/// pessimism metric for path j at conventional BEOL corner Y is
///
///     alpha_j = 3*sigma_j / (d_j(Y) - d_j(typ))
///
/// where 3*sigma_j comes from a per-layer-decorrelated Monte Carlo. Small
/// alpha => the corner is pessimistic for that path. Paths with small
/// normalized corner deltas at BOTH Cw and RCw (below thresholds A_cw,
/// A_rcw) can be signed off at *tightened* corners (k-sigma excursions,
/// k < 3) without losing statistical coverage.

#include <vector>

#include "sta/mc.h"

namespace tc {

struct TbcPathData {
  VertexId endpoint = -1;
  Ps nominal = 0.0;      ///< path delay at the typical corner
  Ps sigma3 = 0.0;       ///< 3-sigma statistical delay increase (MC)
  Ps deltaCw = 0.0;      ///< d(Cw) - d(typ)
  Ps deltaRcw = 0.0;
  double alphaCw = 0.0;   ///< 3sigma / deltaCw
  double alphaRcw = 0.0;
  double normDeltaCw = 0.0;   ///< deltaCw / nominal (Fig 8 x-axis)
  double normDeltaRcw = 0.0;
  bool tbcEligible = false;
};

struct TbcConfig {
  int numPaths = 200;       ///< worst-slack endpoints analyzed
  double thresholdAcw = 0.04;   ///< normalized-delta threshold at Cw
  double thresholdArcw = 0.04;  ///< at RCw
  double tightenedSigma = 1.8;  ///< k for the tightened corners
  McOptions mc;
};

struct TbcAnalysis {
  std::vector<TbcPathData> paths;
  int eligible = 0;
  /// Safety: eligible paths whose tightened-corner delay still covers the
  /// statistical 3-sigma delay (should be all of them).
  int eligibleCovered = 0;
  /// Pessimism accounting, summed over analyzed paths: how much margin the
  /// conventional corners demand beyond the statistical requirement.
  Ps totalPessimismCbc = 0.0;
  Ps totalPessimismTbc = 0.0;
};

/// Run the full Fig. 8 analysis on the worst setup endpoints of a typical-
/// corner engine (the engine must have run).
TbcAnalysis analyzeTbc(StaEngine& typicalEngine, const TbcConfig& cfg);

/// Violation counts when the same paths must meet `period` with margin
/// demanded by conventional vs tightened corners (the closure-effort
/// reduction [2] reports).
struct TbcViolationComparison {
  int violationsCbc = 0;
  int violationsTbc = 0;
  int violationsStatistical = 0;  ///< the "true" requirement
};
TbcViolationComparison compareViolations(const TbcAnalysis& a,
                                         const StaEngine& engine,
                                         const TbcConfig& cfg);

}  // namespace tc
