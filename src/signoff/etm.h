#pragma once
/// \file etm.h
/// \brief Extracted timing models (ETMs) for hierarchical signoff.
///
/// Paper Comment 3: "strategies and methodology for timing budgeting,
/// constraints evolution, and coordination of top- vs block-level effort
/// (and, flat vs ETM-based/hierarchical analysis and optimization) all
/// affect design schedule and QOR". An ETM abstracts a closed block to its
/// boundary timing: per-input-port required times (setup constraints),
/// per-output-port clock-to-out delays, feedthrough arcs, and the internal
/// worst slack — everything expressed at a reference (period, input-delay)
/// point plus exact linear sensitivities, so top-level what-if questions
/// ("can this block absorb 50 ps more input delay? a 5% faster clock?")
/// are answered in microseconds instead of a flat STA run.

#include <string>
#include <vector>

#include "sta/engine.h"

namespace tc {

struct TimingModel {
  std::string name;
  Ps refPeriod = 0.0;      ///< extraction reference clock period
  Ps refInputDelay = 0.0;  ///< extraction reference set_input_delay
  /// Worst internal (reg-to-reg) setup slack at the reference point.
  Ps internalSlackRef = 0.0;
  Ps internalHoldSlack = 0.0;  ///< period-independent

  /// Input-port boundary condition: slack at the reference point of the
  /// worst path launched at this port (moves 1:1 with period and -1:1 with
  /// input delay).
  struct InputArc {
    PortId port = -1;
    std::string name;
    Ps slackRef = 0.0;
    /// The classic ETM view: latest allowed arrival at the reference period.
    Ps requiredArrival = 0.0;
  };
  /// Output-port boundary: clock-to-output delay (and the port's slack
  /// against the period constraint at reference).
  struct OutputArc {
    PortId port = -1;
    std::string name;
    Ps clockToOut = 0.0;
    Ps slackRef = 0.0;
  };
  std::vector<InputArc> inputs;
  std::vector<OutputArc> outputs;

  /// Model size vs the flat view (the hierarchical win).
  int flatVertexCount = 0;
  int modelArcCount() const {
    return static_cast<int>(inputs.size() + outputs.size()) + 1;
  }

  /// Top-level what-if: predicted setup WNS at a different clock period /
  /// input delay. Exact for flat/no-derate scenarios (checks are linear in
  /// both knobs); approximate under statistical derating.
  Ps predictSetupWns(Ps period, Ps inputDelay) const;
};

/// Extract the ETM from a completed engine run.
TimingModel extractTimingModel(const StaEngine& engine,
                               const std::string& name = "block");

}  // namespace tc
