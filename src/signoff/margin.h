#pragma once
/// \file margin.h
/// \brief Flat-margin bookkeeping and the "signoff at typical + flat
/// margin" strategy (Sec. 1.3 and footnote 5).
///
/// Flat margins "model what cannot be modeled": PLL jitter, CTS jitter,
/// foundry-dictated jitter margin and dynamic IR droop are all "swept under
/// a single jitter margin rug". Decomposing them (and RSS-combining the
/// independent ones) recovers pessimism; the module also computes the flat
/// margin a typical-corner signoff must carry to cover a slow global
/// corner, the AVS-era strategy ("signoff at typical").

#include <string>
#include <vector>

#include "sta/engine.h"

namespace tc {

/// One contributor to the clock-uncertainty rug.
struct MarginComponent {
  std::string name;
  Ps value = 0.0;
  bool independent = true;  ///< eligible for RSS combination
};

/// Typical production rug at 28nm-class: PLL jitter, CTS skew residue,
/// foundry jitter adder, dynamic IR droop allowance, aging allowance.
std::vector<MarginComponent> defaultMarginRug();

/// Sum of all components (the conventional flat rug).
Ps flatSum(const std::vector<MarginComponent>& components);
/// Correlated components summed, independent components RSS'd: the
/// detangled margin of footnote 5.
Ps detangledMargin(const std::vector<MarginComponent>& components);

/// The flat margin a typical-corner signoff needs so that every endpoint
/// that passes at typical-with-margin also passes at the slow scenario:
/// max over endpoints of (typSlack - slowSlack), clamped at >= 0.
/// Both engines must have run on the same netlist.
Ps requiredFlatMargin(const StaEngine& typical, const StaEngine& slow);

/// Violation counts for the three signoff strategies on the same design:
/// full slow-corner signoff, typical + flat margin, typical + detangled
/// margin. Quantifies the overdesign the paper says "is synonymous with
/// cost and loss of competitiveness".
struct SignoffStrategyComparison {
  int slowCornerViolations = 0;
  int typicalFlatViolations = 0;
  int typicalDetangledViolations = 0;
  Ps flatMargin = 0.0;
  Ps detangled = 0.0;
};
SignoffStrategyComparison compareSignoffStrategies(
    const StaEngine& typical, const StaEngine& slow,
    const std::vector<MarginComponent>& rug);

}  // namespace tc
