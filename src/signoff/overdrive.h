#pragma once
/// \file overdrive.h
/// \brief Overdrive / underdrive signoff optimization (after Chan, Kahng,
/// Li, Nath, Park [4]; the paper's footnote 3 notes foundry 16/14nm logic
/// supplies scalable 0.46-1.25 V, and Sec. 1 that "whether a part is
/// binned" shapes the whole closure strategy).
///
/// Given a closed design and a lib group (libraries characterized at
/// several supply voltages), this module answers the binning questions:
/// what frequency does each supply point sustain (the voltage-frequency
/// shmoo), what is the energy cost of signing off an overdrive mode, and
/// which supply minimizes power for a required frequency bin.

#include <memory>
#include <vector>

#include "liberty/library.h"
#include "network/netlist.h"
#include "power/power.h"
#include "sta/engine.h"

namespace tc {

/// One row of the voltage-frequency shmoo.
struct ShmooPoint {
  Volt vdd = 0.0;
  Ps minPeriod = 0.0;       ///< smallest period with WNS >= 0 at this supply
  double fMaxGhz = 0.0;
  MicroWatt power = 0.0;    ///< total power at (vdd, fMax)
  MicroWatt powerAtBase = 0.0;  ///< total power at (vdd, base frequency)
};

/// Sweep the supply points of a lib group: at each voltage, binary-search
/// the smallest passing clock period for the design, and account power.
/// The scenario's library is replaced per point; all other settings are
/// kept.
std::vector<ShmooPoint> voltageFrequencyShmoo(
    Netlist& nl, const Scenario& baseScenario,
    const std::vector<std::shared_ptr<const Library>>& libsByVdd,
    Ps basePeriod);

/// The [4] question: cheapest supply meeting a frequency bin. Returns the
/// index into the shmoo (-1 if no point meets it).
int cheapestSupplyForFrequency(const std::vector<ShmooPoint>& shmoo,
                               double fTargetGhz);

}  // namespace tc
