#include "signoff/farm.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <limits>
#include <sstream>

#include "util/binio.h"
#include "util/checksum.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace tc {
namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

Counter& attemptsCtr() {
  static Counter& c = MetricsRegistry::global().counter(
      "farm.attempts", "count", MetricStability::kNoisy);
  return c;
}
Counter& crashesCtr() {
  static Counter& c = MetricsRegistry::global().counter(
      "farm.crashes", "count", MetricStability::kNoisy);
  return c;
}
Counter& timeoutsCtr() {
  static Counter& c = MetricsRegistry::global().counter(
      "farm.timeouts", "count", MetricStability::kNoisy);
  return c;
}
Counter& hangsCtr() {
  static Counter& c = MetricsRegistry::global().counter(
      "farm.hangs", "count", MetricStability::kNoisy);
  return c;
}
Counter& frameErrorsCtr() {
  static Counter& c = MetricsRegistry::global().counter(
      "farm.frame_errors", "count", MetricStability::kNoisy);
  return c;
}
Counter& retriesCtr() {
  static Counter& c = MetricsRegistry::global().counter(
      "farm.retries", "count", MetricStability::kNoisy);
  return c;
}
// Stable: a quarantined corner is part of the signoff verdict, not a
// scheduling artifact — the perf gate pins it exactly (normally 0).
Counter& quarantinedCtr() {
  static Counter& c = MetricsRegistry::global().counter(
      "farm.quarantined", "count", MetricStability::kStable);
  return c;
}

}  // namespace

namespace farmproto {
namespace {

struct CodecError {
  std::string what;
};
[[noreturn]] void codecFail(std::string what) {
  throw CodecError{std::move(what)};
}

std::uint32_t rU32(std::istream& is) {
  std::uint32_t v = 0;
  if (!binio::getU32(is, v)) codecFail("payload ran dry reading u32");
  return v;
}
std::int32_t rI32(std::istream& is) {
  std::int32_t v = 0;
  if (!binio::getI32(is, v)) codecFail("payload ran dry reading i32");
  return v;
}
std::uint64_t rU64(std::istream& is) {
  std::uint64_t v = 0;
  if (!binio::getU64(is, v)) codecFail("payload ran dry reading u64");
  return v;
}
double rF64(std::istream& is) {
  double v = 0;
  if (!binio::getF64(is, v)) codecFail("payload ran dry reading f64");
  return v;
}
std::string rStr(std::istream& is) {
  std::string s;
  if (!binio::getStr(is, s))
    codecFail("payload ran dry or implausible length reading string");
  return s;
}

}  // namespace

std::string encodeFrame(FrameType type, const std::string& payload) {
  std::ostringstream os(std::ios::binary);
  binio::putU32(os, kFrameMagic);
  binio::putU32(os, static_cast<std::uint32_t>(type));
  binio::putU32(os, static_cast<std::uint32_t>(payload.size()));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  binio::putU32(os, crc32(payload.data(), payload.size()));
  return os.str();
}

std::string encodeScenarioResult(const ScenarioResult& r) {
  using namespace binio;
  std::ostringstream os(std::ios::binary);
  putStr(os, r.scenario);
  putF64(os, r.setupWns);
  putF64(os, r.holdWns);
  putF64(os, r.setupTns);
  putF64(os, r.holdTns);
  putI32(os, r.setupViolations);
  putI32(os, r.holdViolations);
  putI32(os, r.drvViolations);
  putI32(os, r.nanQuarantined);
  putU32(os, static_cast<std::uint32_t>(r.endpoints.size()));
  for (const EndpointTiming& e : r.endpoints) {
    putI32(os, e.vertex);
    putI32(os, e.flop);
    putF64(os, e.setupSlack);
    putF64(os, e.holdSlack);
    putI32(os, e.setupTrans);
    putI32(os, e.holdTrans);
    putF64(os, e.dataLate);
    putF64(os, e.dataEarly);
    putF64(os, e.captureEarly);
    putF64(os, e.captureLate);
    putF64(os, e.cpprSetup);
    putF64(os, e.cpprHold);
    putF64(os, e.setupConstraint);
    putF64(os, e.holdConstraint);
  }
  putU32(os, static_cast<std::uint32_t>(r.diagnostics.size()));
  for (const Diagnostic& d : r.diagnostics) {
    putU32(os, static_cast<std::uint32_t>(d.severity));
    putU32(os, static_cast<std::uint32_t>(d.code));
    putStr(os, d.message);
    putStr(os, d.entity);
    putI32(os, d.line);
  }
  putU32(os, static_cast<std::uint32_t>(r.pba.size()));
  for (const PbaResult& p : r.pba) {
    putI32(os, p.endpoint);
    putI32(os, p.flop);
    putF64(os, p.gbaSlack);
    putF64(os, p.pbaSlack);
    putF64(os, p.exactArrival);
    putF64(os, p.retraceGap);
    putU32(os, p.cert.complete ? 1u : 0u);
    putF64(os, p.cert.frontierBound);
    putI32(os, p.cert.pathsEvaluated);
    putU64(os, static_cast<std::uint64_t>(p.cert.pathsPruned));
  }
  putF64(os, r.pbaSetupWns);
  putU32(os, r.pruned ? 1u : 0u);
  putI32(os, r.certificate.scenario);
  putStr(os, r.certificate.scenarioName);
  putF64(os, r.certificate.predictedSetupWns);
  putF64(os, r.certificate.predictedHoldWns);
  putF64(os, r.certificate.boundSetupWns);
  putF64(os, r.certificate.boundHoldWns);
  putF64(os, r.certificate.uncertainty);
  putI32(os, r.certificate.evidenceSetup);
  putI32(os, r.certificate.evidenceHold);
  putStr(os, r.certificate.evidenceSetupName);
  putStr(os, r.certificate.evidenceHoldName);
  putI32(os, r.certificate.round);
  return os.str();
}

Result<ScenarioResult> decodeScenarioResult(const std::string& payload) {
  try {
    std::istringstream is(payload, std::ios::binary);
    ScenarioResult r;
    r.scenario = rStr(is);
    r.setupWns = rF64(is);
    r.holdWns = rF64(is);
    r.setupTns = rF64(is);
    r.holdTns = rF64(is);
    r.setupViolations = rI32(is);
    r.holdViolations = rI32(is);
    r.drvViolations = rI32(is);
    r.nanQuarantined = rI32(is);
    const std::uint32_t nEp = rU32(is);
    if (nEp > (1u << 24)) codecFail("implausible endpoint count");
    r.endpoints.resize(nEp);
    for (EndpointTiming& e : r.endpoints) {
      e.vertex = rI32(is);
      e.flop = rI32(is);
      e.setupSlack = rF64(is);
      e.holdSlack = rF64(is);
      e.setupTrans = rI32(is);
      e.holdTrans = rI32(is);
      e.dataLate = rF64(is);
      e.dataEarly = rF64(is);
      e.captureEarly = rF64(is);
      e.captureLate = rF64(is);
      e.cpprSetup = rF64(is);
      e.cpprHold = rF64(is);
      e.setupConstraint = rF64(is);
      e.holdConstraint = rF64(is);
    }
    const std::uint32_t nDiag = rU32(is);
    if (nDiag > (1u << 22)) codecFail("implausible diagnostic count");
    r.diagnostics.resize(nDiag);
    for (Diagnostic& d : r.diagnostics) {
      const std::uint32_t sev = rU32(is);
      if (sev > static_cast<std::uint32_t>(Severity::kError))
        codecFail("diagnostic severity out of range");
      d.severity = static_cast<Severity>(sev);
      const std::uint32_t code = rU32(is);
      if (code >= kDiagCodeCount) codecFail("diagnostic code out of range");
      d.code = static_cast<DiagCode>(code);
      d.message = rStr(is);
      d.entity = rStr(is);
      d.line = rI32(is);
    }
    const std::uint32_t nPba = rU32(is);
    if (nPba > (1u << 22)) codecFail("implausible PBA result count");
    r.pba.resize(nPba);
    for (PbaResult& p : r.pba) {
      p.endpoint = rI32(is);
      p.flop = rI32(is);
      p.gbaSlack = rF64(is);
      p.pbaSlack = rF64(is);
      p.exactArrival = rF64(is);
      p.retraceGap = rF64(is);
      p.cert.complete = rU32(is) != 0;
      p.cert.frontierBound = rF64(is);
      p.cert.pathsEvaluated = rI32(is);
      p.cert.pathsPruned = static_cast<std::int64_t>(rU64(is));
    }
    r.pbaSetupWns = rF64(is);
    const std::uint32_t pruned = rU32(is);
    if (pruned > 1) codecFail("pruned flag out of range");
    r.pruned = pruned != 0;
    r.certificate.scenario = rI32(is);
    r.certificate.scenarioName = rStr(is);
    r.certificate.predictedSetupWns = rF64(is);
    r.certificate.predictedHoldWns = rF64(is);
    r.certificate.boundSetupWns = rF64(is);
    r.certificate.boundHoldWns = rF64(is);
    r.certificate.uncertainty = rF64(is);
    r.certificate.evidenceSetup = rI32(is);
    r.certificate.evidenceHold = rI32(is);
    r.certificate.evidenceSetupName = rStr(is);
    r.certificate.evidenceHoldName = rStr(is);
    r.certificate.round = rI32(is);
    if (is.peek() != std::istream::traits_type::eof())
      codecFail("trailing bytes after the result payload");
    return r;
  } catch (const CodecError& e) {
    return Status::failure(DiagCode::kFarmFrameCorrupt,
                           "result payload inconsistent: " + e.what);
  }
}

FrameParser::Outcome FrameParser::next(FrameType* type, std::string* payload,
                                       std::string* error) {
  constexpr std::size_t kHeader = 12;  // magic + type + payloadLen
  if (buf_.size() < kHeader) return Outcome::kNeedMore;
  std::uint32_t magic = 0, rawType = 0, len = 0;
  std::memcpy(&magic, buf_.data(), 4);
  std::memcpy(&rawType, buf_.data() + 4, 4);
  std::memcpy(&len, buf_.data() + 8, 4);
  if (magic != kFrameMagic) {
    if (error) *error = "bad frame magic";
    return Outcome::kCorrupt;
  }
  if (rawType != static_cast<std::uint32_t>(FrameType::kHeartbeat) &&
      rawType != static_cast<std::uint32_t>(FrameType::kResult)) {
    if (error) *error = "unknown frame type " + std::to_string(rawType);
    return Outcome::kCorrupt;
  }
  if (len > kMaxFramePayload) {
    if (error)
      *error = "implausible frame payload size " + std::to_string(len);
    return Outcome::kCorrupt;
  }
  const std::size_t total = kHeader + len + 4;
  if (buf_.size() < total) return Outcome::kNeedMore;
  std::uint32_t storedCrc = 0;
  std::memcpy(&storedCrc, buf_.data() + kHeader + len, 4);
  const std::uint32_t actual = crc32(buf_.data() + kHeader, len);
  if (storedCrc != actual) {
    if (error) *error = "frame checksum mismatch";
    return Outcome::kCorrupt;
  }
  if (type) *type = static_cast<FrameType>(rawType);
  if (payload) payload->assign(buf_, kHeader, len);
  buf_.erase(0, total);
  return Outcome::kFrame;
}

}  // namespace farmproto

namespace {

/// Locate the worker binary: explicit option, $TC_FARM_WORKER, then next
/// to the running executable (build trees put tests under tests/ or bench/
/// and the worker under tools/, so sibling directories are searched too).
std::string findWorker(const FarmOptions& opt) {
  // An explicit path is authoritative: a typo in configuration should
  // surface as kFarmWorkerMissing, not silently run some other binary.
  if (!opt.workerPath.empty())
    return access(opt.workerPath.c_str(), X_OK) == 0 ? opt.workerPath
                                                     : std::string{};
  std::vector<std::string> candidates;
  if (const char* env = std::getenv("TC_FARM_WORKER"))
    if (*env) candidates.push_back(env);
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    std::string dir(buf);
    const std::size_t slash = dir.rfind('/');
    if (slash != std::string::npos) {
      dir.resize(slash);
      candidates.push_back(dir + "/goalposts_worker");
      candidates.push_back(dir + "/../tools/goalposts_worker");
      candidates.push_back(dir + "/tools/goalposts_worker");
    }
  }
  for (const std::string& c : candidates)
    if (access(c.c_str(), X_OK) == 0) return c;
  return {};
}

std::string scratchSnapshotPath(const FarmOptions& opt) {
  std::string dir = opt.scratchDir;
  if (dir.empty()) {
    const char* env = std::getenv("TMPDIR");
    dir = env && *env ? env : "/tmp";
  }
  static std::atomic<int> seq{0};
  return dir + "/tc_farm_" + std::to_string(getpid()) + "_" +
         std::to_string(seq.fetch_add(1)) + ".tcsn";
}

/// The conservative slot a quarantined scenario contributes: -inf WNS (the
/// same bounded-pessimism doctrine as the NaN quarantine of PR 1 — a
/// skipped corner must look worse than any real one, never clean) plus the
/// quarantine diagnostic. The message is deterministic (attempt count, no
/// timing), so a quarantined pass is still reproducible byte-for-byte.
ScenarioResult quarantinedResult(const std::string& scenarioName,
                                 const std::string& reason) {
  ScenarioResult r;
  r.scenario = scenarioName;
  r.setupWns = -std::numeric_limits<double>::infinity();
  r.holdWns = -std::numeric_limits<double>::infinity();
  Diagnostic d;
  d.severity = Severity::kError;
  d.code = DiagCode::kFarmScenarioQuarantined;
  d.message = reason + "; conservative -inf WNS substituted";
  r.diagnostics.push_back(std::move(d));
  return r;
}

/// One live worker attempt under supervision.
struct Attempt {
  pid_t pid = -1;
  int fd = -1;
  std::size_t scn = 0;
  int attempt = 1;
  Clock::time_point start, lastByte;
  double startUs = 0.0;  ///< trace clock at launch
  farmproto::FrameParser parser;
  bool gotResult = false;  ///< a valid result frame arrived from this pid
  bool benign = false;     ///< killed because the scenario resolved
  DiagCode failCode = DiagCode::kOk;  ///< classification when killed by us
  std::string failDetail;
};

class Dispatcher {
 public:
  Dispatcher(const DesignSnapshot& snap, const FarmOptions& opt,
             const std::string& worker, const std::string& snapPath,
             McmmMerger& merger, FarmStats& stats)
      : snap_(snap),
        opt_(opt),
        worker_(worker),
        snapPath_(snapPath),
        merger_(merger),
        stats_(stats),
        attemptsUsed_(snap.scenarios.size(), 0),
        resolved_(snap.scenarios.size(), 0) {}

  void run() {
    const std::size_t n = snap_.scenarios.size();
    for (std::size_t i = 0; i < n; ++i)
      pending_.push_back({i, 1, Clock::now()});
    while (resolvedCount_ < n) {
      launchDue();
      maybeRedispatchStraggler();
      pumpPipes();
      enforceDeadlines();
      reap();
    }
    // The pass is decided; sweep up any straggler/duplicate workers.
    for (Attempt& a : inflight_) {
      a.benign = true;
      kill(a.pid, SIGKILL);
    }
    while (!inflight_.empty()) reap(/*block=*/true);
  }

 private:
  void report(Severity sev, DiagCode code, const std::string& msg,
              const std::string& entity) {
    if (!opt_.sink) return;
    if (sev == Severity::kError)
      opt_.sink->error(code, msg, entity);
    else if (sev == Severity::kWarning)
      opt_.sink->warn(code, msg, entity);
    else
      opt_.sink->note(code, msg, entity);
  }

  bool launch(std::size_t scn, int attempt) {
    // argv is assembled before fork(): the parent may be running inside a
    // thread pool, and allocating between fork and exec is undefined there.
    const std::string scnArg = std::to_string(scn);
    const std::string attemptArg = std::to_string(attempt);
    const std::string hbArg =
        std::to_string(static_cast<int>(opt_.heartbeatSec * 1000.0));
    const std::string pbaEpArg = std::to_string(opt_.mcmm.pbaEndpoints);
    const std::string pbaMaxArg = std::to_string(opt_.mcmm.pba.maxPaths);
    const std::string pbaEpsArg = std::to_string(opt_.mcmm.pba.epsilon);
    const std::string pbaCapArg =
        std::to_string(opt_.mcmm.pba.enumerationCap);
    std::vector<const char*> argv = {
        worker_.c_str(),    "--snapshot",     snapPath_.c_str(),
        "--scenario",       scnArg.c_str(),   "--attempt",
        attemptArg.c_str(), "--heartbeat-ms", hbArg.c_str(),
        "--pba-endpoints",  pbaEpArg.c_str(), "--pba-max-paths",
        pbaMaxArg.c_str(),  "--pba-epsilon",  pbaEpsArg.c_str(),
        "--pba-enum-cap",   pbaCapArg.c_str()};
    if (opt_.mcmm.pba.exhaustive) argv.push_back("--pba-exhaustive");
    argv.push_back(nullptr);

    int fds[2];
    if (pipe(fds) != 0) return false;
    const pid_t pid = fork();
    if (pid < 0) {
      close(fds[0]);
      close(fds[1]);
      return false;
    }
    if (pid == 0) {
      // Child: result/heartbeat frames flow over stdout; stderr passes
      // through for worker-side logging.
      dup2(fds[1], STDOUT_FILENO);
      close(fds[0]);
      close(fds[1]);
      execv(worker_.c_str(), const_cast<char* const*>(argv.data()));
      _exit(127);
    }
    close(fds[1]);
    fcntl(fds[0], F_SETFL, O_NONBLOCK);
    Attempt a;
    a.pid = pid;
    a.fd = fds[0];
    a.scn = scn;
    a.attempt = attempt;
    a.start = a.lastByte = Clock::now();
    a.startUs = traceNowUs();
    inflight_.push_back(std::move(a));
    ++stats_.attemptsLaunched;
    attemptsCtr().add();
    return true;
  }

  int inflightFor(std::size_t scn) const {
    int n = 0;
    for (const Attempt& a : inflight_)
      if (a.scn == scn) ++n;
    return n;
  }

  void launchDue() {
    const auto now = Clock::now();
    for (auto it = pending_.begin();
         it != pending_.end() &&
         static_cast<int>(inflight_.size()) < opt_.workers;) {
      if (resolved_[it->scn]) {
        it = pending_.erase(it);
        continue;
      }
      if (it->notBefore > now) {
        ++it;
        continue;
      }
      if (!launch(it->scn, it->attempt)) {
        // fork/pipe pressure: try again shortly, don't lose the scenario.
        it->notBefore = now + std::chrono::milliseconds(100);
        ++it;
        continue;
      }
      attemptsUsed_[it->scn] = std::max(attemptsUsed_[it->scn], it->attempt);
      it = pending_.erase(it);
    }
  }

  void maybeRedispatchStraggler() {
    if (!opt_.stragglerRedispatch || completedSec_.empty()) return;
    if (static_cast<int>(inflight_.size()) >= opt_.workers) return;
    // Only when nothing real is waiting: straggler copies are opportunistic.
    for (const PendingAttempt& p : pending_)
      if (!resolved_[p.scn]) return;
    std::vector<double> sorted = completedSec_;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    const double median = sorted[sorted.size() / 2];
    const double threshold =
        std::max(opt_.stragglerFactor * median, 10.0 * opt_.heartbeatSec);
    Attempt* worst = nullptr;
    double worstElapsed = threshold;
    for (Attempt& a : inflight_) {
      if (resolved_[a.scn] || inflightFor(a.scn) > 1) continue;
      const double elapsed = secondsSince(a.start);
      if (elapsed >= worstElapsed) {
        worstElapsed = elapsed;
        worst = &a;
      }
    }
    if (!worst) return;
    report(Severity::kNote, DiagCode::kFarmWorkerTimeout,
           "straggler re-dispatch after " + std::to_string(worstElapsed) +
               "s; first result wins",
           snap_.scenarios[worst->scn].name);
    // Straggler copies live in the 100+ attempt namespace: they never
    // consume the retry budget, and attempt-filtered fault injections
    // (TC_FARM_FAULT ...:attempt=N) don't re-fire in the copy.
    launch(worst->scn, 100 + worst->attempt);
  }

  void acceptResult(Attempt& a, ScenarioResult result) {
    a.gotResult = true;
    if (resolved_[a.scn]) {
      merger_.accept(a.scn, std::move(result));  // counted as duplicate
      return;
    }
    merger_.accept(a.scn, std::move(result));
    resolved_[a.scn] = 1;
    ++resolvedCount_;
    completedSec_.push_back(secondsSince(a.start));
    traceComplete("farm", "worker:" + snap_.scenarios[a.scn].name, "",
                  a.startUs, traceNowUs() - a.startUs);
    for (Attempt& b : inflight_) {
      if (&b != &a && b.scn == a.scn) {
        b.benign = true;
        kill(b.pid, SIGKILL);
      }
    }
  }

  void pumpPipes() {
    std::vector<pollfd> fds;
    fds.reserve(inflight_.size());
    for (const Attempt& a : inflight_)
      fds.push_back({a.fd, POLLIN, 0});
    if (fds.empty()) {
      usleep(5000);  // everything is in backoff; don't spin
      return;
    }
    const int timeoutMs = 20;
    if (poll(fds.data(), fds.size(), timeoutMs) <= 0) return;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      Attempt& a = inflight_[i];
      if (a.failCode != DiagCode::kOk || a.benign) continue;
      char buf[65536];
      for (;;) {
        const ssize_t got = read(a.fd, buf, sizeof buf);
        if (got <= 0) break;  // EAGAIN / EOF; EOF resolves via waitpid
        a.lastByte = Clock::now();
        a.parser.feed(buf, static_cast<std::size_t>(got));
      }
      drainFrames(a);
    }
  }

  void drainFrames(Attempt& a) {
    using farmproto::FrameParser;
    using farmproto::FrameType;
    for (;;) {
      FrameType type;
      std::string payload, err;
      const FrameParser::Outcome out = a.parser.next(&type, &payload, &err);
      if (out == FrameParser::Outcome::kNeedMore) return;
      if (out == FrameParser::Outcome::kCorrupt) {
        ++stats_.frameErrors;
        frameErrorsCtr().add();
        a.failCode = DiagCode::kFarmFrameCorrupt;
        a.failDetail = err;
        kill(a.pid, SIGKILL);
        return;
      }
      if (type == FrameType::kHeartbeat) continue;
      auto decoded = farmproto::decodeScenarioResult(payload);
      if (!decoded.ok()) {
        ++stats_.frameErrors;
        frameErrorsCtr().add();
        a.failCode = DiagCode::kFarmFrameCorrupt;
        a.failDetail = decoded.status().message();
        kill(a.pid, SIGKILL);
        return;
      }
      acceptResult(a, std::move(decoded).take());
    }
  }

  void enforceDeadlines() {
    for (Attempt& a : inflight_) {
      if (a.gotResult || a.benign || a.failCode != DiagCode::kOk) continue;
      if (secondsSince(a.start) > opt_.scenarioTimeoutSec) {
        a.failCode = DiagCode::kFarmWorkerTimeout;
        a.failDetail = "exceeded the per-scenario wall clock";
        ++stats_.timeouts;
        timeoutsCtr().add();
        kill(a.pid, SIGKILL);
      } else if (secondsSince(a.lastByte) > opt_.heartbeatTimeoutSec) {
        a.failCode = DiagCode::kFarmWorkerHung;
        a.failDetail = "heartbeat silence";
        ++stats_.hangs;
        hangsCtr().add();
        kill(a.pid, SIGKILL);
      }
    }
  }

  void reap(bool block = false) {
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      int status = 0;
      const pid_t got = waitpid(it->pid, &status, block ? 0 : WNOHANG);
      if (got != it->pid) {
        ++it;
        continue;
      }
      // A final burst may still sit in the pipe after exit.
      if (!it->benign && !it->gotResult &&
          it->failCode == DiagCode::kOk) {
        char buf[65536];
        for (;;) {
          const ssize_t n = read(it->fd, buf, sizeof buf);
          if (n <= 0) break;
          it->parser.feed(buf, static_cast<std::size_t>(n));
        }
        drainFrames(*it);
      }
      close(it->fd);
      Attempt done = std::move(*it);
      it = inflight_.erase(it);
      finishAttempt(done, status);
    }
  }

  void finishAttempt(const Attempt& a, int status) {
    if (a.gotResult || a.benign || resolved_[a.scn]) return;
    const std::string& name = snap_.scenarios[a.scn].name;
    DiagCode code = a.failCode;
    std::string detail = a.failDetail;
    if (code == DiagCode::kOk) {
      code = DiagCode::kFarmWorkerCrashed;
      ++stats_.crashes;
      crashesCtr().add();
      if (WIFSIGNALED(status))
        detail = "killed by signal " + std::to_string(WTERMSIG(status));
      else if (WIFEXITED(status) && WEXITSTATUS(status) != 0)
        detail = "exit status " + std::to_string(WEXITSTATUS(status));
      else
        detail = "exited without delivering a result";
    }
    traceComplete("farm", "worker:" + name + ":failed", "", a.startUs,
                  traceNowUs() - a.startUs);
    report(Severity::kWarning, code,
           "attempt " + std::to_string(a.attempt) + " failed: " + detail,
           name);
    if (a.attempt > 100) return;  // straggler copy: original still runs
    if (inflightFor(a.scn) > 0) return;  // a sibling copy is still alive
    if (attemptsUsed_[a.scn] >= opt_.maxAttempts) {
      quarantine(a.scn);
      return;
    }
    const int nextAttempt = attemptsUsed_[a.scn] + 1;
    const double delay =
        opt_.backoffBaseSec * static_cast<double>(1 << (nextAttempt - 2));
    ++stats_.retries;
    retriesCtr().add();
    report(Severity::kNote, code,
           "retry " + std::to_string(nextAttempt) + " scheduled after " +
               std::to_string(delay) + "s backoff",
           name);
    pending_.push_back(
        {a.scn, nextAttempt,
         Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(delay))});
  }

  void quarantine(std::size_t scn) {
    const std::string& name = snap_.scenarios[scn].name;
    merger_.accept(
        scn, quarantinedResult(
                 name, "scenario quarantined after " +
                           std::to_string(attemptsUsed_[scn]) +
                           " failed attempts"));
    resolved_[scn] = 1;
    ++resolvedCount_;
    ++stats_.quarantined;
    quarantinedCtr().add();
    report(Severity::kError, DiagCode::kFarmScenarioQuarantined,
           "quarantined after " + std::to_string(attemptsUsed_[scn]) +
               " failed attempts",
           name);
  }

  struct PendingAttempt {
    std::size_t scn;
    int attempt;
    Clock::time_point notBefore;
  };

  const DesignSnapshot& snap_;
  const FarmOptions& opt_;
  const std::string& worker_;
  const std::string& snapPath_;
  McmmMerger& merger_;
  FarmStats& stats_;
  std::deque<PendingAttempt> pending_;
  std::vector<Attempt> inflight_;
  std::vector<int> attemptsUsed_;
  std::vector<char> resolved_;
  std::size_t resolvedCount_ = 0;
  std::vector<double> completedSec_;
};

}  // namespace

McmmResult runMcmmFarm(const DesignSnapshot& snap, const FarmOptions& opt,
                       FarmStats* statsOut) {
  TraceSpan span("farm", "dispatch");
  // Register the stable counter up front: the perf gate pins
  // farm.quarantined exactly (normally 0), so it must appear in the
  // metrics export even for a fault-free pass.
  quarantinedCtr();
  const std::size_t n = snap.scenarios.size();
  McmmMerger merger(n);
  FarmStats stats;

  auto quarantineAll = [&](DiagCode code, const std::string& why) {
    for (std::size_t i = 0; i < n; ++i) {
      if (opt.sink) opt.sink->error(code, why, snap.scenarios[i].name);
      merger.accept(i, quarantinedResult(snap.scenarios[i].name, why));
      ++stats.quarantined;
      quarantinedCtr().add();
    }
  };

  const std::string worker = findWorker(opt);
  if (worker.empty()) {
    quarantineAll(DiagCode::kFarmWorkerMissing,
                  "no goalposts_worker binary found (set $TC_FARM_WORKER "
                  "or FarmOptions::workerPath)");
  } else {
    const std::string snapPath = scratchSnapshotPath(opt);
    const Status ws = writeSnapshotFile(snap, snapPath);
    if (!ws.ok()) {
      quarantineAll(ws.code(), "snapshot handoff failed: " + ws.message());
    } else {
      Dispatcher d(snap, opt, worker, snapPath, merger, stats);
      d.run();
    }
    unlink(snapPath.c_str());
  }

  stats.duplicates = merger.duplicateCount();
  if (statsOut) *statsOut = stats;
  return merger.finish();
}

McmmResult runMcmmFarm(const Netlist& netlist,
                       std::vector<Scenario> scenarios,
                       const FarmOptions& opt, FarmStats* statsOut) {
  const DesignSnapshot snap =
      makeSnapshot(netlist, std::move(scenarios), /*includeSpef=*/false);
  return runMcmmFarm(snap, opt, statsOut);
}

}  // namespace tc
