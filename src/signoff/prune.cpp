#include "signoff/prune.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "util/metrics.h"
#include "util/trace.h"

namespace tc {

namespace {

Counter& scenariosCtr() {
  static Counter& c =
      MetricsRegistry::global().counter("prune.scenarios", "count");
  return c;
}
Counter& exactRunsCtr() {
  static Counter& c =
      MetricsRegistry::global().counter("prune.exact_runs", "count");
  return c;
}
Counter& prunedCtr() {
  static Counter& c =
      MetricsRegistry::global().counter("prune.pruned", "count");
  return c;
}
Counter& roundsCtr() {
  static Counter& c =
      MetricsRegistry::global().counter("prune.rounds", "count");
  return c;
}
Counter& quarantinedEvidenceCtr() {
  static Counter& c = MetricsRegistry::global().counter(
      "prune.quarantined_evidence", "count");
  return c;
}

constexpr int kDim = kPruneFeatureCount + 1;  // + bias

/// A quarantined farm slot: the conservative -inf marker plus the
/// FARM_SCENARIO_QUARANTINED error (farm.cpp quarantinedResult).
bool isQuarantined(const ScenarioResult& r) {
  for (const Diagnostic& d : r.diagnostics)
    if (d.code == DiagCode::kFarmScenarioQuarantined) return true;
  return false;
}

/// Per-check ridge model over normalized features. Everything runs in a
/// fixed order (index-ascending training set, deterministic pivoting), so
/// the fit is bit-stable for a given training set.
struct RidgeModel {
  bool valid = false;
  std::array<double, kDim> w{};
  double residual = 0.0;  ///< training RMS error, ps
  double spread = 0.0;    ///< max - min of the training targets
};

RidgeModel fitRidge(const std::vector<std::array<double, kDim>>& rows,
                    const std::vector<double>& y, double lambda) {
  RidgeModel m;
  if (rows.size() < 2) return m;
  double a[kDim][kDim] = {};
  double b[kDim] = {};
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (int i = 0; i < kDim; ++i) {
      b[i] += rows[r][i] * y[r];
      for (int j = 0; j < kDim; ++j) a[i][j] += rows[r][i] * rows[r][j];
    }
  }
  for (int i = 0; i < kDim; ++i) a[i][i] += lambda;
  // Gaussian elimination with partial pivoting; the pivot choice (max
  // magnitude, first on ties) is deterministic.
  int perm[kDim];
  for (int i = 0; i < kDim; ++i) perm[i] = i;
  for (int col = 0; col < kDim; ++col) {
    int pivot = col;
    for (int r = col + 1; r < kDim; ++r)
      if (std::fabs(a[perm[r]][col]) > std::fabs(a[perm[pivot]][col]))
        pivot = r;
    std::swap(perm[col], perm[pivot]);
    const double diag = a[perm[col]][col];
    if (std::fabs(diag) < 1e-12) return m;  // singular despite the ridge
    for (int r = col + 1; r < kDim; ++r) {
      const double f = a[perm[r]][col] / diag;
      if (f == 0.0) continue;
      for (int c = col; c < kDim; ++c) a[perm[r]][c] -= f * a[perm[col]][c];
      b[perm[r]] -= f * b[perm[col]];
    }
  }
  for (int col = kDim - 1; col >= 0; --col) {
    double v = b[perm[col]];
    for (int c = col + 1; c < kDim; ++c) v -= a[perm[col]][c] * m.w[c];
    m.w[col] = v / a[perm[col]][col];
  }
  double se = 0.0, lo = y[0], hi = y[0];
  for (std::size_t r = 0; r < rows.size(); ++r) {
    double p = 0.0;
    for (int i = 0; i < kDim; ++i) p += m.w[i] * rows[r][i];
    se += (p - y[r]) * (p - y[r]);
    lo = std::min(lo, y[r]);
    hi = std::max(hi, y[r]);
  }
  m.residual = std::sqrt(se / static_cast<double>(rows.size()));
  m.spread = hi - lo;
  m.valid = true;
  return m;
}

double predict(const RidgeModel& m, const std::array<double, kDim>& row) {
  double p = 0.0;
  for (int i = 0; i < kDim; ++i) p += m.w[i] * row[i];
  return p;
}

}  // namespace

std::array<double, kPruneFeatureCount> pruneFeatures(const Scenario& sc) {
  ViewDef view;
  view.vdd = sc.vdd();
  view.temp = sc.temp();
  view.process = sc.lib ? sc.lib->pvt().corner : ProcessCorner::kTT;
  view.beol = sc.beol;
  return {sc.vdd(),
          sc.temp(),
          viewDelayScore(view),
          static_cast<double>(sc.beol),
          static_cast<double>(sc.derate.mode),
          sc.derate.flatLate,
          sc.derate.flatEarly,
          sc.derate.sigmaCount,
          sc.clockUncertaintySetup,
          sc.clockUncertaintyHold,
          sc.extraSetupMargin,
          sc.extraHoldMargin,
          sc.tightenSigma,
          sc.inputSlew};
}

bool dominatesForBound(const Scenario& a, const Scenario& b) {
  // Structural context must match exactly: these knobs change WHAT is
  // analyzed, not how much margin is stacked on it, so no ordering between
  // two different values is sound.
  if (a.lib.get() != b.lib.get()) return false;
  if (a.beol != b.beol) return false;
  if (a.techNm != b.techNm) return false;
  if (a.tightenSigma != b.tightenSigma) return false;
  if (a.derate.mode != b.derate.mode) return false;
  if (a.derate.cppr != b.derate.cppr) return false;
  if (a.limits.maxTransition != b.limits.maxTransition) return false;
  if (a.limits.maxCapacitance != b.limits.maxCapacitance) return false;
  if (a.inputDelay != b.inputDelay) return false;
  if (a.disableDataInputs != b.disableDataInputs) return false;
  if (a.inputSlew != b.inputSlew) return false;
  if (a.sadp != b.sadp) return false;
  if (a.misAware != b.misAware) return false;
  // Monotone margin knobs: every endpoint's setup AND hold slack is
  // weakly worse under `a`, hence so are WNS, TNS and violation counts.
  return a.derate.flatLate >= b.derate.flatLate &&
         a.derate.flatEarly <= b.derate.flatEarly &&
         a.derate.sigmaCount >= b.derate.sigmaCount &&
         a.clockUncertaintySetup >= b.clockUncertaintySetup &&
         a.clockUncertaintyHold >= b.clockUncertaintyHold &&
         a.extraSetupMargin >= b.extraSetupMargin &&
         a.extraHoldMargin >= b.extraHoldMargin;
}

std::vector<Scenario> deriveOcvLadder(const std::vector<Scenario>& bases,
                                      const OcvLadderSpec& spec) {
  std::vector<Scenario> out;
  const std::size_t nFlat =
      std::min(spec.lateFactors.size(), spec.earlyFactors.size());
  for (const Scenario& base : bases) {
    for (std::size_t l = 0; l < nFlat; ++l) {
      for (std::size_t u = 0; u < spec.setupUncertainties.size(); ++u) {
        for (std::size_t m = 0; m < spec.extraSetupMargins.size(); ++m) {
          for (std::size_t s = 0; s < spec.sigmaCounts.size(); ++s) {
            Scenario sc = base;
            sc.derate.flatLate = spec.lateFactors[l];
            sc.derate.flatEarly = spec.earlyFactors[l];
            sc.derate.sigmaCount = spec.sigmaCounts[s];
            sc.clockUncertaintySetup = spec.setupUncertainties[u];
            sc.clockUncertaintyHold = spec.setupUncertainties[u] / 5.0;
            sc.extraSetupMargin = spec.extraSetupMargins[m];
            sc.name = base.name + "@L" + std::to_string(l) + "U" +
                      std::to_string(u) + "M" + std::to_string(m) + "S" +
                      std::to_string(s);
            out.push_back(std::move(sc));
          }
        }
      }
    }
  }
  return out;
}

PrunedMcmmResult runPruned(const std::vector<Scenario>& scenarios,
                           const PruneOptions& opt,
                           const ExactBatchRunner& runExact) {
  TraceSpan span("prune", "active-learning pass");
  const std::size_t n = scenarios.size();
  PrunedMcmmResult out;
  out.predictor.seed = opt.seed;
  scenariosCtr().add(n);
  if (n == 0) return out;

  // Normalized feature rows (bias last). The normalization window is the
  // whole scenario set, not the training subset, so rows never change as
  // training grows.
  std::vector<std::array<double, kDim>> rows(n);
  {
    std::vector<std::array<double, kPruneFeatureCount>> raw(n);
    std::array<double, kPruneFeatureCount> lo{}, hi{};
    for (std::size_t i = 0; i < n; ++i) raw[i] = pruneFeatures(scenarios[i]);
    lo = hi = raw[0];
    for (std::size_t i = 1; i < n; ++i) {
      for (int d = 0; d < kPruneFeatureCount; ++d) {
        lo[d] = std::min(lo[d], raw[i][d]);
        hi[d] = std::max(hi[d], raw[i][d]);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (int d = 0; d < kPruneFeatureCount; ++d)
        rows[i][d] = hi[d] > lo[d] ? (raw[i][d] - lo[d]) / (hi[d] - lo[d])
                                   : 0.0;
      rows[i][kDim - 1] = 1.0;
    }
  }

  // Dominance structure. Equal scenarios dominate both ways; the
  // lowest-index copy is the canonical representative (only it counts as
  // the others' dominator), so duplicates cannot erase each other from the
  // maximal set.
  std::vector<std::vector<std::size_t>> dominators(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j || !dominatesForBound(scenarios[j], scenarios[i])) continue;
      if (dominatesForBound(scenarios[i], scenarios[j]) && j > i) continue;
      dominators[i].push_back(j);
    }
  }

  std::vector<char> isExact(n, 0), poisoned(n, 0);
  std::vector<ScenarioResult> exact(n);
  std::vector<std::uint32_t> exactOrder;

  auto runBatch = [&](std::vector<std::size_t> batch) {
    std::sort(batch.begin(), batch.end());
    batch.erase(std::unique(batch.begin(), batch.end()), batch.end());
    const std::vector<ScenarioResult> results = runExact(batch);
    for (std::size_t k = 0; k < batch.size() && k < results.size(); ++k) {
      const std::size_t i = batch[k];
      exact[i] = results[k];
      isExact[i] = 1;
      poisoned[i] = isQuarantined(exact[i]) ? 1 : 0;
      exactOrder.push_back(static_cast<std::uint32_t>(i));
    }
  };

  // --- Seed round: every dominance-maximal scenario (nothing can bound
  // it, so it can never be pruned), then farthest-point sampling over the
  // feature space up to seedRuns.
  {
    std::vector<std::size_t> seed;
    std::vector<char> inSeed(n, 0);
    for (std::size_t i = 0; i < n; ++i)
      if (dominators[i].empty()) {
        seed.push_back(i);
        inSeed[i] = 1;
      }
    const std::size_t want =
        std::min<std::size_t>(n, static_cast<std::size_t>(
                                     std::max(opt.seedRuns, 1)));
    std::vector<double> minDist(n, std::numeric_limits<double>::infinity());
    auto relax = [&](std::size_t picked) {
      for (std::size_t i = 0; i < n; ++i) {
        double d2 = 0.0;
        for (int d = 0; d < kDim - 1; ++d) {
          const double df = rows[i][d] - rows[picked][d];
          d2 += df * df;
        }
        minDist[i] = std::min(minDist[i], d2);
      }
    };
    for (std::size_t s : seed) relax(s);
    while (seed.size() < want) {
      std::size_t best = n;
      for (std::size_t i = 0; i < n; ++i) {
        if (inSeed[i]) continue;
        if (best == n || minDist[i] > minDist[best]) best = i;
      }
      if (best == n) break;
      seed.push_back(best);
      inSeed[best] = 1;
      relax(best);
    }
    runBatch(seed);
  }

  // --- Active-learning rounds.
  RidgeModel setupModel, holdModel;
  std::vector<std::size_t> training;
  auto refit = [&] {
    training.clear();
    for (std::size_t i = 0; i < n; ++i)
      if (isExact[i] && !poisoned[i]) training.push_back(i);
    std::vector<std::array<double, kDim>> x;
    std::vector<double> ys, yh;
    for (std::size_t i : training) {
      x.push_back(rows[i]);
      ys.push_back(exact[i].setupWns);
      yh.push_back(exact[i].holdWns);
    }
    setupModel = fitRidge(x, ys, opt.ridgeLambda);
    holdModel = fitRidge(x, yh, opt.ridgeLambda);
  };
  // Distance-aware uncertainty: the training residual plus the target
  // spread scaled by how far (normalized feature space) the scenario sits
  // from its nearest training point.
  auto uncertainty = [&](std::size_t i, const RidgeModel& m) {
    double nearest = std::numeric_limits<double>::infinity();
    for (std::size_t t : training) {
      double d2 = 0.0;
      for (int d = 0; d < kDim - 1; ++d) {
        const double df = rows[i][d] - rows[t][d];
        d2 += df * df;
      }
      nearest = std::min(nearest, d2);
    }
    const double dist = training.empty()
                            ? 1.0
                            : std::sqrt(nearest /
                                        static_cast<double>(kDim - 1));
    return m.residual + m.spread * dist;
  };

  for (std::size_t iter = 0; iter <= n; ++iter) {
    refit();
    std::vector<std::size_t> needEvidence, contenders;
    std::vector<double> key;  // predicted min slack, contenders order
    double worstSetup = std::numeric_limits<double>::infinity();
    double worstHold = std::numeric_limits<double>::infinity();
    for (std::size_t t : training) {
      worstSetup = std::min(worstSetup, exact[t].setupWns);
      worstHold = std::min(worstHold, exact[t].holdWns);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (isExact[i]) continue;
      bool hasEvidence = false;
      for (std::size_t j : dominators[i])
        if (isExact[j] && !poisoned[j]) {
          hasEvidence = true;
          break;
        }
      if (!hasEvidence) {
        // Un-boundable (its dominators were quarantined, or it never had
        // any that reached training): exact dispatch is mandatory —
        // soundness overrides the budget.
        needEvidence.push_back(i);
        continue;
      }
      if (!setupModel.valid || !holdModel.valid) {
        contenders.push_back(i);
        key.push_back(0.0);
        continue;
      }
      const double ps = predict(setupModel, rows[i]);
      const double ph = predict(holdModel, rows[i]);
      const double us = uncertainty(i, setupModel);
      const double uh = uncertainty(i, holdModel);
      // Stopping rule, per corner: pruned only when both checks clear the
      // worst exact WNS by the margin even after subtracting uncertainty.
      if (ps - us <= worstSetup + opt.criticalMarginPs ||
          ph - uh <= worstHold + opt.criticalMarginPs) {
        contenders.push_back(i);
        key.push_back(std::min(ps, ph));
      }
    }
    std::vector<std::size_t> batch = needEvidence;
    std::vector<std::size_t> order(contenders.size());
    for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return key[a] < key[b];
                     });
    for (std::size_t k : order) {
      if (static_cast<int>(batch.size()) >= opt.batchSize) break;
      if (static_cast<int>(exactOrder.size() + batch.size()) >=
          opt.maxExactRuns)
        break;
      batch.push_back(contenders[k]);
    }
    if (batch.empty()) break;
    runBatch(std::move(batch));
    ++out.rounds;
  }

  // --- maxPruned floor: if more corners remain pruned than allowed, run
  // the worst-looking ones exactly (mandatory, budget notwithstanding).
  {
    std::vector<std::size_t> rest;
    for (std::size_t i = 0; i < n; ++i)
      if (!isExact[i]) rest.push_back(i);
    const long excess =
        static_cast<long>(rest.size()) - static_cast<long>(std::max(
                                             opt.maxPruned, 0));
    if (excess > 0) {
      refit();
      std::stable_sort(rest.begin(), rest.end(),
                       [&](std::size_t a, std::size_t b) {
                         const double ka =
                             setupModel.valid
                                 ? std::min(predict(setupModel, rows[a]),
                                            predict(holdModel, rows[a]))
                                 : 0.0;
                         const double kb =
                             setupModel.valid
                                 ? std::min(predict(setupModel, rows[b]),
                                            predict(holdModel, rows[b]))
                                 : 0.0;
                         return ka < kb;
                       });
      rest.resize(static_cast<std::size_t>(excess));
      runBatch(std::move(rest));
      ++out.rounds;
    }
  }

  refit();

  // --- Assemble: exact slots verbatim (quarantined ones annotated),
  // pruned slots from certificates backed by dominating evidence.
  McmmMerger merger(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (isExact[i]) {
      ScenarioResult slot = exact[i];
      if (poisoned[i]) {
        Diagnostic d;
        d.severity = Severity::kNote;
        d.code = DiagCode::kPruneQuarantinedEvidence;
        d.message =
            "quarantined exact run excluded from predictor training and "
            "bound evidence";
        slot.diagnostics.push_back(std::move(d));
        ++out.quarantinedExact;
      }
      merger.accept(i, std::move(slot));
      continue;
    }
    // Tightest sound bounds: among exact (un-poisoned) dominators, the one
    // with the greatest WNS per check. Ties break on the lowest index.
    std::size_t evS = n, evH = n;
    for (std::size_t j : dominators[i]) {
      if (!isExact[j] || poisoned[j]) continue;
      if (evS == n || exact[j].setupWns > exact[evS].setupWns) evS = j;
      if (evH == n || exact[j].holdWns > exact[evH].holdWns) evH = j;
    }
    // The loop above only leaves a scenario unresolved when it has
    // evidence, so evS/evH are always found.
    PruneCertificate cert;
    cert.scenario = static_cast<std::int32_t>(i);
    cert.scenarioName = scenarios[i].name;
    cert.boundSetupWns = exact[evS].setupWns;
    cert.boundHoldWns = exact[evH].holdWns;
    cert.evidenceSetup = static_cast<std::int32_t>(evS);
    cert.evidenceHold = static_cast<std::int32_t>(evH);
    cert.evidenceSetupName = scenarios[evS].name;
    cert.evidenceHoldName = scenarios[evH].name;
    cert.round = out.rounds;
    if (setupModel.valid && holdModel.valid) {
      cert.predictedSetupWns = predict(setupModel, rows[i]);
      cert.predictedHoldWns = predict(holdModel, rows[i]);
      cert.uncertainty = std::max(uncertainty(i, setupModel),
                                  uncertainty(i, holdModel));
    } else {
      cert.predictedSetupWns = cert.boundSetupWns;
      cert.predictedHoldWns = cert.boundHoldWns;
      cert.uncertainty = std::numeric_limits<double>::infinity();
    }

    ScenarioResult slot;
    slot.scenario = scenarios[i].name;
    slot.pruned = true;
    slot.certificate = cert;
    // Conservative per-endpoint monotonicity: the dominating run's
    // aggregates bound this corner's from below (WNS/TNS) / above
    // (violations), so the merged metrics stay pessimistic-or-equal.
    slot.setupWns = exact[evS].setupWns;
    slot.setupTns = exact[evS].setupTns;
    slot.setupViolations = exact[evS].setupViolations;
    slot.holdWns = exact[evH].holdWns;
    slot.holdTns = exact[evH].holdTns;
    slot.holdViolations = exact[evH].holdViolations;
    slot.drvViolations = exact[evS].drvViolations;
    Diagnostic d;
    d.severity = Severity::kNote;
    d.code = DiagCode::kPruneScenarioPruned;
    d.message = "corner closed by certificate: setup bounded by exact run "
                "of '" +
                cert.evidenceSetupName + "', hold by '" +
                cert.evidenceHoldName + "'";
    slot.diagnostics.push_back(std::move(d));
    out.certificates.push_back(std::move(cert));
    merger.accept(i, std::move(slot));
  }
  out.result = merger.finish();
  out.exactRuns = static_cast<int>(exactOrder.size());

  out.predictor.valid = setupModel.valid && holdModel.valid;
  out.predictor.rounds = out.rounds;
  for (std::uint32_t i : exactOrder)
    if (!poisoned[i]) {
      out.predictor.trainingScenarios.push_back(i);
      out.predictor.trainingSetupWns.push_back(exact[i].setupWns);
      out.predictor.trainingHoldWns.push_back(exact[i].holdWns);
    }
  if (out.predictor.valid) {
    out.predictor.setupWeights.assign(setupModel.w.begin(),
                                      setupModel.w.end());
    out.predictor.holdWeights.assign(holdModel.w.begin(), holdModel.w.end());
    out.predictor.setupResidual = setupModel.residual;
    out.predictor.holdResidual = holdModel.residual;
  }

  exactRunsCtr().add(exactOrder.size());
  prunedCtr().add(out.certificates.size());
  roundsCtr().add(static_cast<std::uint64_t>(out.rounds));
  quarantinedEvidenceCtr().add(
      static_cast<std::uint64_t>(out.quarantinedExact));
  return out;
}

PrunedMcmmResult runMcmmPruned(const Netlist& netlist,
                               std::vector<Scenario> scenarios,
                               const PruneOptions& popt,
                               const McmmOptions& mopt) {
  if (popt.maxPruned <= 0) {
    // Pruning off: delegate wholesale so the result is byte-identical to
    // the plain runner's, diagnostics included.
    PrunedMcmmResult out;
    out.predictor.seed = popt.seed;
    out.exactRuns = static_cast<int>(scenarios.size());
    out.result = runMcmm(netlist, std::move(scenarios), mopt);
    return out;
  }
  const std::vector<Scenario>& scn = scenarios;
  ExactBatchRunner runner = [&](const std::vector<std::size_t>& batch) {
    std::vector<ScenarioResult> results(batch.size());
    std::vector<std::unique_ptr<DiagnosticSink>> sinks(batch.size());
    auto runOne = [&](std::size_t k) {
      sinks[k] = std::make_unique<DiagnosticSink>();
      sinks[k]->setEcho(mopt.echoDiagnostics);
      results[k] =
          runScenarioStandalone(netlist, scn[batch[k]], mopt, *sinks[k]);
    };
    if (mopt.pool && mopt.pool->threadCount() > 0)
      mopt.pool->parallelFor(batch.size(), runOne, /*grain=*/1);
    else
      for (std::size_t k = 0; k < batch.size(); ++k) runOne(k);
    return results;
  };
  return runPruned(scn, popt, runner);
}

PrunedMcmmResult runMcmmFarmPruned(const DesignSnapshot& snap,
                                   const PruneOptions& popt,
                                   const FarmOptions& fopt,
                                   FarmStats* stats) {
  if (popt.maxPruned <= 0) {
    PrunedMcmmResult out;
    out.predictor.seed = popt.seed;
    out.exactRuns = static_cast<int>(snap.scenarios.size());
    out.result = runMcmmFarm(snap, fopt, stats);
    return out;
  }
  ExactBatchRunner runner = [&](const std::vector<std::size_t>& batch) {
    // Ship the batch as a sub-snapshot sharing the library table and
    // netlist; workers re-extract parasitics, exactly like a full pass.
    DesignSnapshot sub;
    sub.libraries = snap.libraries;
    sub.netlist = snap.netlist;
    for (std::size_t i : batch) sub.scenarios.push_back(snap.scenarios[i]);
    FarmStats batchStats;
    McmmResult merged = runMcmmFarm(sub, fopt, &batchStats);
    if (stats) {
      stats->attemptsLaunched += batchStats.attemptsLaunched;
      stats->crashes += batchStats.crashes;
      stats->timeouts += batchStats.timeouts;
      stats->hangs += batchStats.hangs;
      stats->frameErrors += batchStats.frameErrors;
      stats->retries += batchStats.retries;
      stats->duplicates += batchStats.duplicates;
      stats->quarantined += batchStats.quarantined;
    }
    return merged.scenarios;
  };
  return runPruned(snap.scenarios, popt, runner);
}

PrunedMcmmResult runMcmmFarmPruned(const Netlist& netlist,
                                   std::vector<Scenario> scenarios,
                                   const PruneOptions& popt,
                                   const FarmOptions& fopt,
                                   FarmStats* stats) {
  return runMcmmFarmPruned(
      makeSnapshot(netlist, std::move(scenarios), /*includeSpef=*/false),
      popt, fopt, stats);
}

void attachPruneAudit(DesignSnapshot& snap, const PrunedMcmmResult& pruned) {
  snap.prunePredictor = pruned.predictor;
  snap.pruneCerts = pruned.certificates;
}

void registerPruneMetrics() {
  scenariosCtr();
  exactRunsCtr();
  prunedCtr();
  roundsCtr();
  quarantinedEvidenceCtr();
}

}  // namespace tc
