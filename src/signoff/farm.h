#pragma once
/// \file farm.h
/// \brief Crash-isolated multi-process scenario farm.
///
/// The paper's corner super-explosion (Sec. 2.3) is usually paid across a
/// compute farm, and at farm scale the failure modes stop being
/// exceptional: workers crash, hang, get OOM-killed, or return corrupted
/// bytes, and one poisoned corner must not sink the whole signoff pass.
/// This module runs each Scenario in its own worker *process*
/// (tools/goalposts_worker), supervised by a dispatcher that:
///
///  - ships the analysis context as a checksummed DesignSnapshot file,
///  - reads checksummed result frames off a pipe, rejecting corruption at
///    the frame level (kFarmFrameCorrupt) before any byte is interpreted,
///  - detects death (waitpid), hangs (heartbeat silence), and overruns
///    (per-scenario wall clock), SIGKILLs the offender, and retries with
///    exponential backoff,
///  - re-dispatches stragglers when workers sit idle (first result wins;
///    the loser is counted in farm.duplicate_results and dropped), and
///  - quarantines a scenario after maxAttempts failures: its slot gets a
///    conservative degraded marker (-inf WNS — same bounded-pessimism
///    doctrine as PR 1's NaN quarantine) plus a FARM_SCENARIO_QUARANTINED
///    error in the merged stream, and the pass completes.
///
/// Determinism contract: results merge through the same McmmMerger the
/// in-process runner uses, so when every scenario eventually succeeds —
/// whatever crashed, hung, or raced along the way — the McmmResult is
/// byte-identical to McmmRunner::run() on the same inputs, at any worker
/// count. tests/farm_faultinject_test.cpp proves this under an injected
/// fault matrix (TC_FARM_FAULT, see tools/goalposts_worker).

#include <cstdint>
#include <string>
#include <vector>

#include "signoff/corners.h"
#include "signoff/snapshot.h"

namespace tc {

struct FarmOptions {
  /// Worker process slots.
  int workers = 4;
  /// Per-attempt wall-clock budget, seconds. Exceeded => SIGKILL + retry
  /// (kFarmWorkerTimeout).
  double scenarioTimeoutSec = 300.0;
  /// Heartbeat period the workers are asked to emit at, seconds.
  double heartbeatSec = 0.1;
  /// Pipe silence longer than this while within the wall-clock budget =>
  /// the worker is declared hung, SIGKILLed and retried (kFarmWorkerHung).
  double heartbeatTimeoutSec = 10.0;
  /// Attempts per scenario before quarantine.
  int maxAttempts = 3;
  /// Retry k (k >= 1) waits backoffBaseSec * 2^(k-1) before re-dispatch.
  double backoffBaseSec = 0.05;
  /// With idle slots and nothing pending, duplicate the longest-running
  /// in-flight scenario once it exceeds stragglerFactor x the median
  /// completed-attempt time. First accepted result wins.
  bool stragglerRedispatch = true;
  double stragglerFactor = 3.0;
  /// Worker executable. Empty => $TC_FARM_WORKER, then goalposts_worker
  /// next to the current executable (and in a sibling tools/ directory).
  /// Non-empty is authoritative: if it isn't executable, the farm reports
  /// kFarmWorkerMissing instead of silently running something else.
  std::string workerPath;
  /// Directory for the snapshot handoff file. Empty => $TMPDIR or /tmp.
  std::string scratchDir;
  /// Per-scenario analysis knobs forwarded to the workers (pbaEndpoints
  /// and pba enumeration options; the pool is process-local and ignored).
  McmmOptions mcmm;
  /// Farm-level events (crash/hang/timeout/retry notices) are reported
  /// here, NOT into the merged result — transient failures must leave the
  /// deterministic merge untouched. May be null.
  DiagnosticSink* sink = nullptr;
};

/// Supervision tally of one farm pass. Everything here is timing-dependent
/// except `quarantined`, which is part of the result contract.
struct FarmStats {
  int attemptsLaunched = 0;
  int crashes = 0;    ///< workers that died or returned no valid result
  int timeouts = 0;   ///< wall-clock overruns (SIGKILLed)
  int hangs = 0;      ///< heartbeat-silence kills
  int frameErrors = 0;  ///< corrupt frames rejected by magic/size/CRC
  int retries = 0;
  int duplicates = 0;  ///< extra results dropped first-accepted-wins
  int quarantined = 0;
};

/// Run the snapshot's scenario set across worker processes and merge.
/// The snapshot must already validate (it is written to a scratch file and
/// handed to every worker). Never throws on worker misbehavior; the only
/// failure mode is being unable to set the farm up at all (no worker
/// binary, unwritable scratch dir), which quarantines *every* scenario
/// rather than failing the pass.
McmmResult runMcmmFarm(const DesignSnapshot& snap, const FarmOptions& opt,
                       FarmStats* stats = nullptr);

/// Convenience: snapshot (without the SPEF blob — workers re-extract) and
/// run.
McmmResult runMcmmFarm(const Netlist& netlist,
                       std::vector<Scenario> scenarios,
                       const FarmOptions& opt, FarmStats* stats = nullptr);

// ---------------------------------------------------------------------------
// Wire protocol, shared with tools/goalposts_worker. A worker writes
// length-prefixed checksummed frames to stdout:
//   [magic u32 'TCFR'][type u32][payloadLen u32][payload][crc32(payload) u32]
// Heartbeats carry an empty payload; the result frame carries an encoded
// ScenarioResult. The dispatcher treats ANY malformed byte stream as a
// worker failure — corruption can cost a retry, never the pass.
// ---------------------------------------------------------------------------

namespace farmproto {

constexpr std::uint32_t kFrameMagic = 0x54434652;  // 'TCFR'
constexpr std::uint32_t kMaxFramePayload = 1u << 28;

enum class FrameType : std::uint32_t {
  kHeartbeat = 1,
  kResult = 2,
};

/// Encode a complete frame (header + payload + trailing CRC).
std::string encodeFrame(FrameType type, const std::string& payload);

/// ScenarioResult payload codec. Doubles round-trip bitwise — the merge
/// determinism contract rides on this.
std::string encodeScenarioResult(const ScenarioResult& r);
Result<ScenarioResult> decodeScenarioResult(const std::string& payload);

/// Incremental frame extractor over a growing byte buffer. feed() bytes as
/// they arrive, then next() until it returns kNeedMore / kCorrupt.
class FrameParser {
 public:
  enum class Outcome { kFrame, kNeedMore, kCorrupt };

  void feed(const char* data, std::size_t len) { buf_.append(data, len); }
  /// On kFrame, `type` and `payload` hold the (CRC-verified) frame.
  Outcome next(FrameType* type, std::string* payload, std::string* error);

 private:
  std::string buf_;
};

}  // namespace farmproto

}  // namespace tc
